(* The benchmark harness: regenerates every table and figure of the paper
   (Table 1, Figure 1) and measures every quantitative design claim
   (experiments E3-E10 of DESIGN.md / EXPERIMENTS.md).

   Absolute numbers depend on the host; the *shapes* — who wins, by what
   factor, where the crossovers sit — are the reproduction targets. *)

open Rae_vfs
module Base = Rae_basefs.Base
module Bug_registry = Rae_basefs.Bug_registry
module Shadow = Rae_shadowfs.Shadow
module Controller = Rae_core.Controller
module Report = Rae_core.Report
module Spec = Rae_specfs.Spec
module Disk = Rae_block.Disk
module Device = Rae_block.Device
module Layout = Rae_format.Layout
module W = Rae_workload.Workload

let p = Path.parse_exn
let ok = Result.get_ok
let bs = Layout.block_size

let section title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

let subsection title = Printf.printf "\n--- %s ---\n" title

(* --quick: smoke-test scaling so the whole harness runs in seconds (the
   bench-smoke alias); shapes survive, absolute numbers are noise. *)
let quick = ref false
let sc n = if !quick then max 1 (n / 8) else n
let reps r = if !quick then 1 else r

(* Machine-readable results (--json <path>).  Each printed measurement that
   matters is also recorded as (section, sample, unit, value); the writer
   groups samples by section in first-appearance order.  Hand-rolled output:
   the container has no JSON library, and the value space is just ASCII
   names and finite floats. *)
let json_samples : (string * string * string * float) list ref = ref []
let json_note ~sec ~name ~unit v = json_samples := (sec, name, unit, v) :: !json_samples

(* One metrics-registry snapshot (Rae_obs.Metrics.to_json), captured by
   E-obs/b from a post-recovery controller, embedded next to the
   provenance block so a BENCH_*.json can be read cold. *)
let json_metrics : string option ref = ref None

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v = if Float.is_finite v then Printf.sprintf "%.6g" v else "0"

(* BENCH_*.json files outlive the tree they were captured from, so embed
   enough provenance to read them cold: the git rev, a monotonic run id,
   and the configuration knobs the numbers depend on. *)
let git_rev () =
  let read_line path =
    try
      let ic = open_in path in
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      Some (String.trim line)
    with Sys_error _ -> None
  in
  let rec find dir depth =
    if depth > 8 then None
    else
      let head = Filename.concat dir (Filename.concat ".git" "HEAD") in
      match read_line head with
      | Some line ->
          let ref_prefix = "ref: " in
          if String.starts_with ~prefix:ref_prefix line then
            let r = String.sub line 5 (String.length line - 5) in
            read_line (Filename.concat dir (Filename.concat ".git" r))
          else Some line
      | None ->
          let parent = Filename.dirname dir in
          if parent = dir then None else find parent (depth + 1)
  in
  (* The bench may run from _build/default/bench (the bench-smoke alias):
     walk up until a .git appears. *)
  match find (Sys.getcwd ()) 0 with Some rev when rev <> "" -> rev | _ -> "unknown"

let json_config () =
  let c = Rae_basefs.Base.default_config in
  let pol = Rae_core.Controller.default_policy in
  Printf.sprintf
    "{ \"cache_policy\": \"%s\", \"bcache_capacity\": %d, \"icache_capacity\": %d, \
     \"dcache_capacity\": %d, \"commit_interval\": %d, \"ckpt_fold_interval\": %d }"
    (match c.Rae_basefs.Base.cache_policy with `Lru -> "lru" | `Two_q -> "2q")
    c.Rae_basefs.Base.bcache_capacity c.Rae_basefs.Base.icache_capacity
    c.Rae_basefs.Base.dcache_capacity c.Rae_basefs.Base.commit_interval
    pol.Rae_core.Controller.ckpt_fold_interval

let write_json path =
  let samples = List.rev !json_samples in
  let sections =
    List.fold_left
      (fun acc (sec, _, _, _) -> if List.mem sec acc then acc else acc @ [ sec ])
      [] samples
  in
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"bench\": \"rae-shadowfs\",\n  \"quick\": %b,\n" !quick;
  out "  \"rev\": \"%s\",\n" (json_escape (git_rev ()));
  (* Monotonic across runs on one host: wall-clock nanoseconds. *)
  out "  \"run_id\": %.0f,\n" (Unix.gettimeofday () *. 1e9);
  out "  \"config\": %s,\n" (json_config ());
  out "  \"metrics\": %s,\n" (match !json_metrics with Some m -> m | None -> "{}");
  out "  \"sections\": [\n";
  List.iteri
    (fun si sec ->
      out "    {\n      \"name\": \"%s\",\n      \"samples\": [\n" (json_escape sec);
      let mine = List.filter (fun (s, _, _, _) -> s = sec) samples in
      List.iteri
        (fun i (_, name, unit, v) ->
          out "        { \"name\": \"%s\", \"unit\": \"%s\", \"value\": %s }%s\n"
            (json_escape name) (json_escape unit) (json_float v)
            (if i = List.length mine - 1 then "" else ","))
        mine;
      out "      ]\n    }%s\n" (if si = List.length sections - 1 then "" else ","))
    sections;
  out "  ]\n}\n";
  close_out oc;
  Printf.printf "\nWrote %d samples in %d sections to %s\n" (List.length samples)
    (List.length sections) path

(* Median-of-reps wall timing (CPU seconds; the workloads are CPU-bound).
   One warmup run plus a compaction isolate each measurement from garbage
   left behind by earlier bench sections. *)
let time_runs ~reps f =
  ignore (f ());
  Gc.compact ();
  let samples =
    List.init reps (fun _ ->
        Gc.major ();
        let t0 = Sys.time () in
        f ();
        Sys.time () -. t0)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (reps / 2)

(* Median-of-reps timing for competing arms whose results will be
   compared against each other.  Measuring each arm's reps back to back
   lets slow allocator/collector drift land entirely in the A-vs-B
   margin, so the reps are interleaved round-robin across the arms —
   drift then shifts all arms together and cancels in the paired
   comparison.  Returns the per-arm medians. *)
let time_interleaved ~reps fs =
  Array.iter (fun f -> f ()) fs;
  Gc.compact ();
  let samples = Array.map (fun _ -> ref []) fs in
  for _ = 1 to reps do
    Array.iteri
      (fun i f ->
        Gc.major ();
        let t0 = Sys.time () in
        f ();
        samples.(i) := (Sys.time () -. t0) :: !(samples.(i)))
      fs
  done;
  Array.map
    (fun s ->
      let sorted = List.sort compare !s in
      List.nth sorted (List.length sorted / 2))
    samples

(* Like [time_runs], but the measured function reports the simulated
   device time its run accrued.  Returns the median (combined, device)
   pair: combined = CPU + device time, the elapsed time of a synchronous
   single-threaded execution; device = the virtual-clock share alone, so
   --json can report simulated time separately from wall time. *)
let time_runs_with_device ~reps f =
  ignore (f ());
  Gc.compact ();
  let samples =
    List.init reps (fun _ ->
        Gc.major ();
        let t0 = Sys.time () in
        let device_ns = f () in
        let device = Int64.to_float device_ns /. 1e9 in
        (Sys.time () -. t0 +. device, device))
  in
  let sorted = List.sort compare samples in
  List.nth sorted (reps / 2)

let mk_disk ?(nblocks = 8192) () =
  Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks ()

let fresh_base ?config ?bugs ?(nblocks = 8192) () =
  let disk = mk_disk ~nblocks () in
  let dev = Device.of_disk disk in
  ignore (ok (Base.mkfs dev ~ninodes:1024 ()));
  (disk, dev, ok (Base.mount ?config ?bugs dev))

let fresh_shadow ?(checks = true) ?(fast_paths = true) ?(nblocks = 8192) () =
  let disk = mk_disk ~nblocks () in
  let dev = Device.of_disk disk in
  ignore (ok (Rae_format.Mkfs.format dev ~ninodes:1024 ()));
  let config = { Shadow.default_config with Shadow.checks; fast_paths } in
  (disk, ok (Shadow.attach ~config dev))

let run_ops exec fs ops = List.iter (fun op -> ignore (exec fs op)) ops

(* ---------------------------------------------------------------- *)
(* E1: Table 1                                                       *)
(* ---------------------------------------------------------------- *)

let e1_table1 () =
  section "E1 | Table 1: study of filesystem bugs (Linux ext4), 256 bugs since 2013";
  let corpus = Rae_bugstudy.Corpus.records () in
  let table = Rae_bugstudy.Study.table1 corpus in
  Format.printf "%a@." Rae_bugstudy.Study.pp_table1 table;
  Printf.printf
    "\nHeadline claims: %d/%d deterministic; %d/%d deterministic bugs cause\n\
     crashes or warnings that are detected as runtime errors.\n"
    (Rae_bugstudy.Study.cell_total table.Rae_bugstudy.Study.deterministic)
    (Rae_bugstudy.Study.grand_total table)
    (Rae_bugstudy.Study.detectable_deterministic table)
    (Rae_bugstudy.Study.cell_total table.Rae_bugstudy.Study.deterministic)

(* ---------------------------------------------------------------- *)
(* E2: Figure 1                                                      *)
(* ---------------------------------------------------------------- *)

let e2_fig1 () =
  section "E2 | Figure 1: number of deterministic bugs by year";
  let corpus = Rae_bugstudy.Corpus.records () in
  Format.printf "%a@." Rae_bugstudy.Study.pp_fig1 (Rae_bugstudy.Study.fig1 corpus)

(* ---------------------------------------------------------------- *)
(* E3: common-case performance, base vs shadow-style execution       *)
(* ---------------------------------------------------------------- *)

let e3_base_vs_shadow () =
  subsection
    "E3b | sustained workloads (simulated elapsed = CPU + device time, 10us rd / 20us wr)";
  Printf.printf
    "Caveat: the shadow never writes to the device and its overlay acts as an\n\
     unbounded in-memory cache with no durability, which flatters it on\n\
     write/fsync-heavy profiles; the micro table above is the per-op claim.\n";
  Printf.printf "%-12s %14s %14s %10s\n" "workload" "base (op/s)" "shadow (op/s)" "base adv.";
  let profiles = [ W.Varmail; W.Fileserver; W.Webserver; W.Metadata ] in
  List.iter
    (fun profile ->
      let ops = W.ops profile (Rae_util.Rng.create 42L) ~count:(sc 2000) in
      let n = float_of_int (List.length ops) in
      let base_t, base_sim =
        time_runs_with_device ~reps:(reps 2) (fun () ->
            let disk = Disk.create ~block_size:bs ~nblocks:8192 () in
            let dev = Device.of_disk disk in
            ignore (ok (Base.mkfs dev ~ninodes:1024 ()));
            let b = ok (Base.mount dev) in
            run_ops Base.exec b ops;
            Rae_util.Vclock.now (Disk.clock disk))
      in
      let shadow_t, shadow_sim =
        time_runs_with_device ~reps:(reps 2) (fun () ->
            let disk = Disk.create ~block_size:bs ~nblocks:8192 () in
            let dev = Device.of_disk disk in
            ignore (ok (Rae_format.Mkfs.format dev ~ninodes:1024 ()));
            let s = ok (Shadow.attach dev) in
            run_ops Shadow.exec s ops;
            Rae_util.Vclock.now (Disk.clock disk))
      in
      json_note ~sec:"E3" ~name:(W.profile_name profile ^ "/base") ~unit:"ops_per_s" (n /. base_t);
      json_note ~sec:"E3" ~name:(W.profile_name profile ^ "/shadow") ~unit:"ops_per_s"
        (n /. shadow_t);
      json_note ~sec:"E3" ~name:(W.profile_name profile ^ "/base-sim") ~unit:"s" base_sim;
      json_note ~sec:"E3" ~name:(W.profile_name profile ^ "/shadow-sim") ~unit:"s" shadow_sim;
      Printf.printf "%-12s %14.0f %14.0f %9.1fx\n" (W.profile_name profile) (n /. base_t)
        (n /. shadow_t) (shadow_t /. base_t))
    profiles;
  Printf.printf
    "\nExpected shape: since the PR 6 fast paths, the default shadow serves\n\
     cached lookups at or below the base's cost, and it issues no writes at\n\
     all (it is not a durable filesystem), so raw op/s comparisons flatter\n\
     it on write/fsync-heavy profiles.  The paper's base-vs-shadow asymmetry\n\
     — the shadow as the simple, slow, checks-everything implementation —\n\
     is preserved against the naive shadow; E-shadow-a carries that\n\
     comparison (naive micro-ops are tens to hundreds of us).\n"

(* Bechamel micro-benchmarks for the idempotent operations. *)
(* Runs the bechamel measurement and returns sorted (name, ns/op) rows.
   Called only from the forked child in [e3_micro]. *)
let e3_micro_measure () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  let _, _, base = fresh_base () in
  let _, shadow = fresh_shadow () in
  let setup exec fs =
    ignore (exec fs (Op.Mkdir (p "/a", 0o755)));
    ignore (exec fs (Op.Mkdir (p "/a/b", 0o755)));
    ignore (exec fs (Op.Create (p "/a/b/leaf", 0o644)));
    ignore (exec fs (Op.Open (p "/a/b/leaf", Types.flags_rw)));
    ignore (exec fs (Op.Pwrite (0, 0, String.make 8192 'x')));
    ignore (exec fs Op.Sync)
  in
  setup Base.exec base;
  setup Shadow.exec shadow;
  let tests =
    [
      Test.make ~name:"base/lookup" (Staged.stage (fun () -> Base.lookup base (p "/a/b/leaf")));
      Test.make ~name:"shadow/lookup" (Staged.stage (fun () -> Shadow.lookup shadow (p "/a/b/leaf")));
      Test.make ~name:"base/stat" (Staged.stage (fun () -> Base.stat base (p "/a/b/leaf")));
      Test.make ~name:"shadow/stat" (Staged.stage (fun () -> Shadow.stat shadow (p "/a/b/leaf")));
      Test.make ~name:"base/pread-4k" (Staged.stage (fun () -> Base.pread base 0 ~off:0 ~len:4096));
      Test.make ~name:"shadow/pread-4k"
        (Staged.stage (fun () -> Shadow.pread shadow 0 ~off:0 ~len:4096));
      Test.make ~name:"base/readdir" (Staged.stage (fun () -> Base.readdir base (p "/a/b")));
      Test.make ~name:"shadow/readdir" (Staged.stage (fun () -> Shadow.readdir shadow (p "/a/b")));
    ]
  in
  let grouped = Test.make_grouped ~name:"micro" tests in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second (if !quick then 0.02 else 0.25)) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) results [] |> List.sort compare in
  List.map
    (fun name ->
      match Analyze.OLS.estimates (Hashtbl.find results name) with
      | Some (est :: _) -> (name, Some est)
      | Some [] | None -> (name, None))
    names

let e3_micro () =
  section "E3 | Figure 2 (design): common-case performance, base vs shadow execution";
  subsection "E3a | micro-operations, warm caches (bechamel OLS estimate, ns/op)";
  (* A bechamel run corrupts the OCaml 5.1 runtime's GC accounting:
     afterwards Gc.stat reports a zero-word heap and the major collector
     stops completing cycles, so every later allocation-heavy section
     accumulates unswept garbage (the crash sweep ran 30-60x slower with
     RSS in the gigabytes).  Quarantine the measurement in a forked
     child and read the estimates back over a pipe — the damaged
     runtime dies with the child. *)
  flush stdout;
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close rd;
      let oc = Unix.out_channel_of_descr wr in
      Marshal.to_channel oc (e3_micro_measure ()) [];
      flush oc;
      Unix._exit 0
  | child ->
      Unix.close wr;
      let ic = Unix.in_channel_of_descr rd in
      let rows : (string * float option) list = Marshal.from_channel ic in
      close_in ic;
      ignore (Unix.waitpid [] child);
      List.iter
        (fun (name, est) ->
          match est with
          | Some est ->
              json_note ~sec:"E3" ~name ~unit:"ns_per_op" est;
              Printf.printf "%-24s %12.0f ns/op\n" name est
          | None -> Printf.printf "%-24s %12s\n" name "n/a")
        rows

(* ---------------------------------------------------------------- *)
(* E4: operation-recording overhead                                  *)
(* ---------------------------------------------------------------- *)

let e4_record_overhead () =
  section "E4 | RAE common-path overhead: operation recording on vs off";
  Printf.printf "%-12s %14s %14s %10s\n" "workload" "raw base" "base+RAE" "overhead";
  List.iter
    (fun profile ->
      let ops = W.ops profile (Rae_util.Rng.create 7L) ~count:(sc 2000) in
      let n = float_of_int (List.length ops) in
      let raw_t =
        time_runs ~reps:(reps 3) (fun () ->
            let _, _, b = fresh_base () in
            run_ops Base.exec b ops)
      in
      let rae_t =
        time_runs ~reps:(reps 3) (fun () ->
            let _, dev, b = fresh_base () in
            let ctl = Controller.make ~device:dev b in
            run_ops Controller.exec ctl ops)
      in
      json_note ~sec:"E4" ~name:(W.profile_name profile ^ "/raw") ~unit:"ops_per_s" (n /. raw_t);
      json_note ~sec:"E4" ~name:(W.profile_name profile ^ "/rae") ~unit:"ops_per_s" (n /. rae_t);
      Printf.printf "%-12s %12.0f/s %12.0f/s %9.1f%%\n" (W.profile_name profile) (n /. raw_t)
        (n /. rae_t)
        ((rae_t -. raw_t) /. raw_t *. 100.))
    [ W.Varmail; W.Fileserver; W.Metadata ];
  Printf.printf
    "\nExpected shape: recording is an in-memory append; overhead within a few\n\
     percent (measurement noise dominates at these run lengths).\n"

(* ---------------------------------------------------------------- *)
(* E5: recovery latency vs recorded-window length                    *)
(* ---------------------------------------------------------------- *)

(* One recovery measurement: run [window] commit-free metadata ops under a
   controller with [policy], trip a deterministic panic, and report the
   recovery along with simulated device time and device reads.  Shared by
   E5 (latency-vs-window, both arms) and E-ckpt (the speedup floor). *)
let recovery_run ~policy window =
  let bugs =
    Bug_registry.arm
      [
        {
          Bug_registry.id = "bench-panic";
          determinism = Bug_registry.Deterministic;
          trigger = Bug_registry.Path_component "trigger";
          consequence = Bug_registry.Panic;
          modeled_after = "bench";
        };
      ]
  in
  (* Simulated device latency on, so recovery has a virtual-clock cost
     (journal replay + shadow reads) alongside the CPU cost. *)
  let disk = Disk.create ~latency:Disk.default_latency ~block_size:bs ~nblocks:8192 () in
  let dev, counts = Device.counting (Device.of_disk disk) in
  ignore (ok (Base.mkfs dev ~ninodes:1024 ~journal_len:1024 ()));
  let b =
    ok (Base.mount ~config:{ Base.default_config with Base.commit_interval = max_int } ~bugs dev)
  in
  let ctl = Controller.make ~policy ~device:dev b in
  let ops = W.ops W.Metadata (Rae_util.Rng.create 3L) ~count:window in
  let ops = List.filter (fun op -> not (Op.is_sync op)) ops in
  run_ops Controller.exec ctl ops;
  (* The recovery wall time below must not absorb a major collection of
     garbage left by the setup ops or by earlier bench sections. *)
  Gc.full_major ();
  let reads_before, _ = counts () in
  let sim_before = Rae_util.Vclock.now (Disk.clock disk) in
  ignore (Controller.exec ctl (Op.Create (p "/trigger", 0o644)));
  let sim_ms =
    Int64.to_float (Int64.sub (Rae_util.Vclock.now (Disk.clock disk)) sim_before) /. 1e6
  in
  let reads_after, _ = counts () in
  (Controller.last_recovery ctl, sim_ms, reads_after - reads_before, List.length ops)

let ckpt_policy = { Controller.default_policy with Controller.ckpt_enabled = true }

let e5_recovery_latency () =
  section "E5 | Recovery latency vs in-flight window (paper 4.3: time to recover)";
  Printf.printf "%-8s %12s %12s %12s %10s %10s %14s\n" "window" "recovery" "ckpt-wall" "simulated"
    "replayed" "handoff" "device reads";
  List.iter
    (fun window ->
      let cold, sim_ms, reads, nops = recovery_run ~policy:Controller.default_policy window in
      let warm, _, _, _ = recovery_run ~policy:ckpt_policy window in
      match (cold, warm) with
      | Some r, Some rc ->
          Printf.printf "%-8d %10.2fms %10.2fms %10.2fms %10d %10d %14d\n" nops
            (r.Report.r_wall_seconds *. 1000.)
            (rc.Report.r_wall_seconds *. 1000.)
            sim_ms r.Report.r_replayed r.Report.r_handoff_blocks reads;
          let w = string_of_int window in
          json_note ~sec:"E5" ~name:("window-" ^ w ^ "/wall") ~unit:"ms"
            (r.Report.r_wall_seconds *. 1000.);
          json_note ~sec:"E5" ~name:("window-" ^ w ^ "/ckpt-wall") ~unit:"ms"
            (rc.Report.r_wall_seconds *. 1000.);
          json_note ~sec:"E5" ~name:("window-" ^ w ^ "/sim") ~unit:"ms" sim_ms;
          json_note ~sec:"E5" ~name:("window-" ^ w ^ "/replayed") ~unit:"ops"
            (float_of_int r.Report.r_replayed);
          json_note ~sec:"E5" ~name:("window-" ^ w ^ "/ckpt-replayed") ~unit:"ops"
            (float_of_int rc.Report.r_replayed)
      | _ -> Printf.printf "%-8d (no recovery?)\n" window)
    (if !quick then [ 8; 32; 128 ] else [ 8; 16; 32; 64; 128; 256; 512; 1024 ]);
  Printf.printf
    "\nExpected shape: cold recovery time grows roughly linearly with the recorded\n\
     window (constrained-mode replay dominates); the checkpoint arm replays only\n\
     the suffix past the last fold, so its wall time stays near-flat (E-ckpt\n\
     enforces the floor).\n"

(* ---------------------------------------------------------------- *)
(* E-ckpt: warm-shadow checkpointing, the O(window) -> O(delta) claim *)
(* ---------------------------------------------------------------- *)

let e_ckpt () =
  section "E-ckpt | Warm-shadow checkpointing: recovery replays O(delta), not O(window)";
  Printf.printf "%-8s %12s %12s %9s %11s %11s %8s\n" "window" "cold-wall" "ckpt-wall" "speedup"
    "replayed" "d-replayed" "seeded";
  let floor_violations = ref [] in
  (* Each recovery is a single event on freshly built state, so one
     stray scheduler hiccup or GC slice lands squarely in the number:
     take the best of a few full rebuild+recover rounds per arm. *)
  let best_recovery ~policy window =
    let rounds = if !quick then 1 else 3 in
    let best = ref None in
    for _ = 1 to rounds do
      match recovery_run ~policy window with
      | Some r, _, _, _ -> (
          match !best with
          | Some b when b.Report.r_wall_seconds <= r.Report.r_wall_seconds -> ()
          | _ -> best := Some r)
      | None, _, _, _ -> ()
    done;
    !best
  in
  List.iter
    (fun window ->
      let cold = best_recovery ~policy:Controller.default_policy window in
      let warm = best_recovery ~policy:ckpt_policy window in
      match (cold, warm) with
      | Some r, Some rc ->
          let speedup =
            if rc.Report.r_wall_seconds > 0. then r.Report.r_wall_seconds /. rc.Report.r_wall_seconds
            else Float.infinity
          in
          Printf.printf "%-8d %10.2fms %10.2fms %8.1fx %11d %11d %8b\n" window
            (r.Report.r_wall_seconds *. 1000.)
            (rc.Report.r_wall_seconds *. 1000.)
            speedup r.Report.r_replayed rc.Report.r_replayed rc.Report.r_seeded;
          let w = string_of_int window in
          json_note ~sec:"E-ckpt" ~name:("window-" ^ w ^ "/cold-wall") ~unit:"ms"
            (r.Report.r_wall_seconds *. 1000.);
          json_note ~sec:"E-ckpt" ~name:("window-" ^ w ^ "/ckpt-wall") ~unit:"ms"
            (rc.Report.r_wall_seconds *. 1000.);
          json_note ~sec:"E-ckpt" ~name:("window-" ^ w ^ "/speedup") ~unit:"x" speedup;
          if not rc.Report.r_seeded then
            floor_violations :=
              Printf.sprintf "window %d: checkpoint arm did not seed" window :: !floor_violations;
          if window >= 64 && speedup < 2.0 then
            floor_violations :=
              Printf.sprintf "window %d: speedup %.2fx < 2x" window speedup :: !floor_violations
      | _ -> floor_violations := Printf.sprintf "window %d: no recovery" window :: !floor_violations)
    (if !quick then [ 64 ] else [ 64; 256; 1024 ]);
  if !floor_violations <> [] then begin
    List.iter (fun v -> Printf.eprintf "E-ckpt: %s\n" v) (List.rev !floor_violations);
    exit 1
  end;
  Printf.printf
    "\nExpected shape: the checkpoint arm seeds the shadow from the warm overlay\n\
     and replays only the ops past the fold cursor, so its wall time is bounded\n\
     by the fold interval while the cold arm pays fsck + O(window) replay;\n\
     >=2x at window>=64 is the enforced floor.\n"

(* ---------------------------------------------------------------- *)
(* E-shadow: the fast path — caches, hints and batching vs naive     *)
(* ---------------------------------------------------------------- *)

(* Both arms run in this process on the same images, so the speedup is a
   host-independent shape (same local-replication scheme as E-alloc and
   E-txn): [fast_paths=false] is the seed's literal walk-and-scan
   execution, [fast_paths=true] the cached one, property-tested
   equivalent in test_shadowfs. *)
let e_shadow () =
  section "E-shadow | shadow fast path: resolution caches, alloc hints, batched folds";
  let naive_config = { Shadow.default_config with Shadow.fast_paths = false } in
  let fresh_with config =
    let disk = mk_disk () in
    let dev = Device.of_disk disk in
    ignore (ok (Rae_format.Mkfs.format dev ~ninodes:1024 ()));
    (disk, ok (Shadow.attach ~config dev))
  in
  let floor_violations = ref [] in

  subsection "E-shadow-a | micro-operations, fast vs naive (>=5x floor enforced)";
  let micro_setup sh =
    ignore (ok (Shadow.mkdir sh (p "/a") ~mode:0o755));
    ignore (ok (Shadow.mkdir sh (p "/a/b") ~mode:0o755));
    ignore (ok (Shadow.create sh (p "/a/b/leaf") ~mode:0o644));
    let fd = ok (Shadow.openf sh (p "/a/b/leaf") Types.flags_rw) in
    ignore (ok (Shadow.pwrite sh fd ~off:0 (String.make 8192 'x')))
  in
  let _, fast = fresh_with Shadow.default_config in
  let _, naive = fresh_with naive_config in
  micro_setup fast;
  micro_setup naive;
  let leaf = p "/a/b/leaf" and dir = p "/a/b" in
  let iters = sc 50_000 in
  let measure sh op =
    time_runs ~reps:(reps 3) (fun () ->
        match op with
        | `Lookup -> for _ = 1 to iters do ignore (Shadow.lookup sh leaf) done
        | `Stat -> for _ = 1 to iters do ignore (Shadow.stat sh leaf) done
        | `Readdir -> for _ = 1 to iters do ignore (Shadow.readdir sh dir) done)
  in
  Printf.printf "%-10s %12s %12s %9s\n" "op" "naive ns/op" "fast ns/op" "speedup";
  List.iter
    (fun (name, op) ->
      let t_naive = measure naive op and t_fast = measure fast op in
      let per t = t /. float_of_int iters *. 1e9 in
      let speedup = if t_fast > 0. then t_naive /. t_fast else Float.infinity in
      Printf.printf "%-10s %12.0f %12.0f %8.1fx\n" name (per t_naive) (per t_fast) speedup;
      json_note ~sec:"E-shadow" ~name:("micro/" ^ name ^ "-naive") ~unit:"ns_per_op" (per t_naive);
      json_note ~sec:"E-shadow" ~name:("micro/" ^ name ^ "-fast") ~unit:"ns_per_op" (per t_fast);
      json_note ~sec:"E-shadow" ~name:("micro/" ^ name ^ "-speedup") ~unit:"x" speedup;
      if speedup < 5.0 then
        floor_violations :=
          Printf.sprintf "micro %s: speedup %.2fx < 5x" name speedup :: !floor_violations)
    [ ("lookup", `Lookup); ("stat", `Stat); ("readdir", `Readdir) ];

  subsection "E-shadow-b | sustained shadow workloads, fast vs naive";
  Printf.printf "%-12s %14s %14s %9s\n" "workload" "naive (op/s)" "fast (op/s)" "speedup";
  List.iter
    (fun profile ->
      let ops = W.ops profile (Rae_util.Rng.create 42L) ~count:(sc 2000) in
      let n = float_of_int (List.length ops) in
      let run config =
        time_runs ~reps:(reps 2) (fun () ->
            let _, sh = fresh_with config in
            run_ops Shadow.exec sh ops)
      in
      let t_naive = run naive_config and t_fast = run Shadow.default_config in
      let speedup = if t_fast > 0. then t_naive /. t_fast else Float.infinity in
      Printf.printf "%-12s %14.0f %14.0f %8.1fx\n" (W.profile_name profile) (n /. t_naive)
        (n /. t_fast) speedup;
      json_note ~sec:"E-shadow" ~name:(W.profile_name profile ^ "/naive") ~unit:"ops_per_s"
        (n /. t_naive);
      json_note ~sec:"E-shadow" ~name:(W.profile_name profile ^ "/fast") ~unit:"ops_per_s"
        (n /. t_fast);
      json_note ~sec:"E-shadow" ~name:(W.profile_name profile ^ "/speedup") ~unit:"x" speedup)
    [ W.Varmail; W.Fileserver; W.Metadata ];

  subsection "E-shadow-c | hot-path fold overhead, ckpt_fold_interval=8 vs ckpt off";
  (* The fold executes every recorded op a second time on the warm
     shadow, so on a zero-latency device its overhead is bounded below by
     shadow-op cost / base-op cost.  Two profiles bracket the range:
     Metadata is all mutations (worst case — nothing in the replay is a
     cheap cached read), Varmail is the realistic serving mix.  The naive
     column folds with [ckpt_fast_paths = false], pricing the same fold
     before the fast-path work. *)
  Printf.printf "%-10s %12s %14s %14s %10s %10s\n" "workload" "off (op/s)" "fold8-naive"
    "fold8-fast" "naive ovh" "fast ovh";
  List.iter
    (fun profile ->
      let ops = W.ops profile (Rae_util.Rng.create 9L) ~count:(sc 8000) in
      let n = float_of_int (List.length ops) in
      let fold8 = { ckpt_policy with Controller.ckpt_fold_interval = 8 } in
      (* The floors below compare arms of this table against each other,
         so the reps are interleaved (see [time_interleaved]). *)
      let one policy () =
        let _, dev, b = fresh_base () in
        let ctl = Controller.make ~policy ~device:dev b in
        run_ops Controller.exec ctl ops
      in
      let medians =
        time_interleaved ~reps:(reps 5)
          [|
            one Controller.default_policy;
            one { fold8 with Controller.ckpt_fast_paths = false };
            one fold8;
          |]
      in
      let t_off = medians.(0) and t_naive = medians.(1) and t_fast = medians.(2) in
      let ovh t = (t -. t_off) /. t_off *. 100. in
      let pname = W.profile_name profile in
      Printf.printf "%-10s %12.0f %14.0f %14.0f %+9.1f%% %+9.1f%%\n" pname (n /. t_off)
        (n /. t_naive) (n /. t_fast) (ovh t_naive) (ovh t_fast);
      json_note ~sec:"E-shadow" ~name:("fold8/" ^ pname ^ "/off") ~unit:"ops_per_s" (n /. t_off);
      json_note ~sec:"E-shadow" ~name:("fold8/" ^ pname ^ "/naive") ~unit:"ops_per_s" (n /. t_naive);
      json_note ~sec:"E-shadow" ~name:("fold8/" ^ pname ^ "/fast") ~unit:"ops_per_s" (n /. t_fast);
      json_note ~sec:"E-shadow" ~name:("fold8/" ^ pname ^ "/overhead-naive") ~unit:"pct"
        (ovh t_naive);
      json_note ~sec:"E-shadow" ~name:("fold8/" ^ pname ^ "/overhead-fast") ~unit:"pct"
        (ovh t_fast);
      (* Shape floors.  Folding re-executes every op on the warm shadow,
         so overhead is bounded below by shadow-cost/base-cost and can
         never be literally free on a zero-latency device.  What the fast
         path must deliver: (a) on the all-mutation worst case — where
         the replay is pure shadow-mutation work — strictly less overhead
         than the naive fold (measured +16–35% vs +49–71% across runs);
         (b) on every profile, overhead within 10pp of the naive fold's
         (on the lighter varmail mix the shared fold bookkeeping
         dominates, leaving fast only a few points below naive).
         Both floors compare two noisy arms of the same run, so they are
         meaningless at --quick scale (1/8 ops, single rep) and only
         enforced on full runs; the large-margin micro floors above guard
         the smoke run. *)
      let worst_case = match profile with W.Metadata -> true | _ -> false in
      if (not !quick) && worst_case && ovh t_fast >= ovh t_naive then
        floor_violations :=
          Printf.sprintf "fold8 %s: fast overhead %+.1f%% not below naive %+.1f%%" pname
            (ovh t_fast) (ovh t_naive)
          :: !floor_violations;
      if (not !quick) && ovh t_fast > ovh t_naive +. 10. then
        floor_violations :=
          Printf.sprintf "fold8 %s: fast overhead %+.1f%% worse than naive %+.1f%%" pname
            (ovh t_fast) (ovh t_naive)
          :: !floor_violations)
    [ W.Metadata; W.Varmail ];

  subsection "E-shadow-d | chunked file contents: append, O(chunk) vs O(file) splice";
  let module Chunked = Rae_specfs.Chunked in
  let appends = sc 2000 in
  let piece = String.make 256 'z' in
  (* The seed representation, replicated locally: contents as one flat
     string, every write re-copies the whole file to splice. *)
  let naive_splice s ~off data =
    let len = String.length data in
    let b = Bytes.make (max (String.length s) (off + len)) '\000' in
    Bytes.blit_string s 0 b 0 (String.length s);
    Bytes.blit_string data 0 b off len;
    Bytes.unsafe_to_string b
  in
  let t_string =
    time_runs ~reps:(reps 3) (fun () ->
        let s = ref "" in
        for i = 0 to appends - 1 do
          s := naive_splice !s ~off:(i * 256) piece
        done)
  in
  let t_chunked =
    time_runs ~reps:(reps 3) (fun () ->
        let c = ref Chunked.empty in
        for i = 0 to appends - 1 do
          c := Chunked.write !c ~off:(i * 256) piece
        done)
  in
  let speedup = if t_chunked > 0. then t_string /. t_chunked else Float.infinity in
  Printf.printf "%d appends of 256 B:\n" appends;
  Printf.printf "  flat-string splice: %10.0f appends/s\n" (float_of_int appends /. t_string);
  Printf.printf "  chunked contents  : %10.0f appends/s  (%.1fx)\n"
    (float_of_int appends /. t_chunked)
    speedup;
  json_note ~sec:"E-shadow" ~name:"append/string" ~unit:"appends_per_s"
    (float_of_int appends /. t_string);
  json_note ~sec:"E-shadow" ~name:"append/chunked" ~unit:"appends_per_s"
    (float_of_int appends /. t_chunked);
  json_note ~sec:"E-shadow" ~name:"append/speedup" ~unit:"x" speedup;

  if !floor_violations <> [] then begin
    List.iter (fun v -> Printf.eprintf "E-shadow: %s\n" v) (List.rev !floor_violations);
    exit 1
  end;
  Printf.printf
    "\nExpected shape: the cached walk resolves from the generation-guarded path\n\
     cache and per-directory index instead of re-reading and re-checking every\n\
     block on the path, so micro-ops gain >=5x (enforced); sustained workloads\n\
     gain a smaller multiple (mutations still pay full validation).  The fold\n\
     replays every recorded op once on the warm shadow, so on a zero-latency\n\
     in-memory device its overhead has a hard floor of shadow-cost/base-cost\n\
     — it can never be literally free here, only on devices whose I/O\n\
     latency dwarfs the shadow's in-memory replay.  Enforced shape (full\n\
     runs): on the all-mutation worst case (metadata) the fast fold costs\n\
     strictly less than the naive fold, and on no profile is it more than\n\
     10pp worse.  Chunked appends stop re-copying the file.\n"

(* ---------------------------------------------------------------- *)
(* E6: the cost of extensive runtime checks                          *)
(* ---------------------------------------------------------------- *)

let e6_check_cost () =
  section "E6 | Extensive runtime checks: affordable for the shadow, not the base";
  let ops = W.ops W.Metadata (Rae_util.Rng.create 5L) ~count:(sc 6000) in
  let n = float_of_int (List.length ops) in
  (* Both tables here are on/off A-vs-B comparisons, so the reps are
     interleaved (see [time_interleaved]). *)
  let shadow_arm checks () =
    let _, s = fresh_shadow ~checks () in
    run_ops Shadow.exec s ops
  in
  let medians =
    time_interleaved ~reps:(reps 5) [| shadow_arm true; shadow_arm false |]
  in
  let with_checks = medians.(0) and without_checks = medians.(1) in
  let _, counted = fresh_shadow ~checks:true () in
  run_ops Shadow.exec counted ops;
  Printf.printf "shadow, checks ON : %10.0f op/s\n" (n /. with_checks);
  Printf.printf "shadow, checks OFF: %10.0f op/s\n" (n /. without_checks);
  Printf.printf "check slowdown    : %10.1f%%  (%d checks executed)\n"
    ((with_checks -. without_checks) /. without_checks *. 100.)
    (Shadow.checks_performed counted);
  let base_arm on () =
    let _, _, b =
      fresh_base ~config:{ Base.default_config with Base.validate_on_commit = on } ()
    in
    run_ops Base.exec b ops
  in
  let medians = time_interleaved ~reps:(reps 5) [| base_arm true; base_arm false |] in
  let v_on = medians.(0) and v_off = medians.(1) in
  Printf.printf "base, validate-on-commit ON : %10.0f op/s\n" (n /. v_on);
  Printf.printf "base, validate-on-commit OFF: %10.0f op/s (validation overhead %.1f%%)\n"
    (n /. v_off)
    ((v_on -. v_off) /. v_off *. 100.)

(* ---------------------------------------------------------------- *)
(* E7: dentry cache vs full-path walks                               *)
(* ---------------------------------------------------------------- *)

let e7_lookup_depth () =
  section "E7 | Path lookup vs depth: base (dentry cache) vs shadow (walk from root)";
  Printf.printf "%-8s %16s %16s %10s\n" "depth" "base (ns/op)" "shadow (ns/op)" "ratio";
  List.iter
    (fun depth ->
      let _, _, b = fresh_base () in
      (* The paper's claim is about the shadow that omits the dentry
         cache, i.e. the naive shadow; the default (fast-path) shadow
         carries a resolution cache that removes this asymmetry — its
         flat profile is measured in e-shadow. *)
      let _, s = fresh_shadow ~fast_paths:false () in
      let rec build exec fs prefix d =
        if d > 0 then begin
          let dir = prefix ^ "/d" in
          ignore (exec fs (Op.Mkdir (p dir, 0o755)));
          build exec fs dir (d - 1)
        end
        else ignore (exec fs (Op.Create (p (prefix ^ "/leaf"), 0o644)))
      in
      build Base.exec b "" depth;
      build Shadow.exec s "" depth;
      let leaf = p (String.concat "" (List.init depth (fun _ -> "/d")) ^ "/leaf") in
      let iters = sc 8000 in
      let tb =
        time_runs ~reps:(reps 2) (fun () ->
            for _ = 1 to iters do
              ignore (Base.lookup b leaf)
            done)
      in
      let ts =
        time_runs ~reps:(reps 2) (fun () ->
            for _ = 1 to iters do
              ignore (Shadow.lookup s leaf)
            done)
      in
      let per x = x /. float_of_int iters *. 1e9 in
      Printf.printf "%-8d %16.0f %16.0f %9.1fx\n" depth (per tb) (per ts) (ts /. tb))
    (if !quick then [ 1; 4; 16 ] else [ 1; 2; 4; 8; 16 ]);
  Printf.printf
    "\nExpected shape: both costs grow with depth, but the naive shadow pays\n\
     a full block read plus dirent scan per component (~us/component) while\n\
     the base's dentry cache reduces each component to a hash hit (~0.1\n\
     us/component) — a large, roughly depth-independent ratio.  The default\n\
     fast-path shadow resolves whole paths from its generation-guarded\n\
     cache and drops below the base (bench e-shadow).\n"

(* ---------------------------------------------------------------- *)
(* E8: end-to-end availability under injected bugs                   *)
(* ---------------------------------------------------------------- *)

let e8_availability () =
  section "E8 | Availability: injected bug classes masked under live workloads";
  let ids =
    [
      "dx-hash-panic";
      "extent-status-warn";
      "mballoc-freecount";
      "dirent-reclen-zero";
      "orphan-close-uaf";
      "fsync-deadlock";
    ]
  in
  Printf.printf "%-12s %8s %11s %12s %13s %11s\n" "workload" "ops" "recoveries" "mismatches"
    "app errors" "fsck";
  List.iter
    (fun profile ->
      let bugs =
        Bug_registry.arm ~rng:(Rae_util.Rng.create 9L) (List.filter_map Bug_registry.find ids)
      in
      let _, dev, b =
        fresh_base ~config:{ Base.default_config with Base.commit_interval = 16 } ~bugs ()
      in
      let ctl = Controller.make ~device:dev b in
      let sp = Spec.make () in
      let ops = W.ops profile (Rae_util.Rng.create 77L) ~count:(sc 1200) in
      let mismatches = ref 0 and eio = ref 0 in
      List.iter
        (fun op ->
          let want = Spec.exec sp op in
          let got = Controller.exec ctl op in
          if not (Op.outcome_equal want got) then incr mismatches;
          match got with Error Errno.EIO -> incr eio | _ -> ())
        ops;
      ignore (Controller.sync ctl);
      let clean = Rae_fsck.Fsck.clean (Rae_fsck.Fsck.check_device dev) in
      Printf.printf "%-12s %8d %11d %12d %13d %11s\n" (W.profile_name profile) (List.length ops)
        (Controller.stats ctl).Controller.recoveries !mismatches !eio
        (if clean then "clean" else "DIRTY"))
    W.all_profiles;
  Printf.printf
    "\nExpected shape: recoveries > 0, zero spec mismatches, zero app-visible EIO,\n\
     clean images — detected runtime errors fully masked (the availability claim).\n"

(* ---------------------------------------------------------------- *)
(* E9: the shadow as a post-error testing tool                       *)
(* ---------------------------------------------------------------- *)

let e9_cross_check () =
  section "E9 | Cross-checking: discrepancy detection (paper 4.3, post-error testing)";
  let run ~cross_check =
    let bugs =
      Bug_registry.arm ~rng:(Rae_util.Rng.create 9L)
        (List.filter_map Bug_registry.find [ "stat-size-skew"; "crafted-name-panic" ])
    in
    let _, dev, b = fresh_base ~bugs () in
    let policy = { Controller.default_policy with Controller.cross_check } in
    let ctl = Controller.make ~policy ~device:dev b in
    let fd = ok (Controller.openf ctl (p "/f") Types.flags_create) in
    ignore (ok (Controller.pwrite ctl fd ~off:0 "12345"));
    ignore (ok (Controller.close ctl fd));
    for _ = 1 to 20 do
      ignore (Controller.stat ctl (p "/f"))
    done;
    ignore (Controller.create ctl (p "/pwn") ~mode:0o644);
    List.length (Controller.discrepancies ctl)
  in
  Printf.printf "wrong-result bugs exposed with cross-check ON : %d discrepancy report(s)\n"
    (run ~cross_check:true);
  Printf.printf "wrong-result bugs exposed with cross-check OFF: %d discrepancy report(s)\n"
    (run ~cross_check:false);
  Printf.printf
    "\nExpected shape: the wrong-result bug (invisible to in-line detection) is\n\
     surfaced by constrained-mode cross-checking during an unrelated recovery.\n"

(* ---------------------------------------------------------------- *)
(* E10 ablation: block cache replacement policy (LRU vs 2Q)          *)
(* ---------------------------------------------------------------- *)

let e10_cache_policy () =
  section "E10 | Ablation: block cache policy (LRU vs 2Q) under hot-set + scan";
  Printf.printf
    "A small hot file is re-read between full scans of a large cold set; the\n\
     cache is sized so the scan footprint exceeds it.  2Q's probation queue\n\
     keeps scans from washing out the hot set.\n";
  let misses policy =
    let _, _, b =
      fresh_base
        ~config:{ Base.default_config with Base.cache_policy = policy; bcache_capacity = 24 }
        ()
    in
    (* Cold population: 600 files across one directory. *)
    let ncold = if !quick then 150 else 600 in
    for i = 0 to ncold - 1 do
      ignore (Base.exec b (Op.Create (p (Printf.sprintf "/cold%03d" i), 0o644)))
    done;
    let fd = ok (Base.openf b (p "/hot") Types.flags_create) in
    ignore (ok (Base.pwrite b fd ~off:0 (String.make 16384 'h')));
    ignore (ok (Base.sync b));
    (* Warm up, then measure. *)
    ignore (ok (Base.pread b fd ~off:0 ~len:16384));
    let s0 = Base.bcache_stats b in
    for _round = 1 to if !quick then 2 else 10 do
      for _ = 1 to 5 do
        ignore (ok (Base.pread b fd ~off:0 ~len:16384))
      done;
      for i = 0 to ncold - 1 do
        ignore (Base.exec b (Op.Stat (p (Printf.sprintf "/cold%03d" i))))
      done
    done;
    let s1 = Base.bcache_stats b in
    ( s1.Rae_cache.Lru.misses - s0.Rae_cache.Lru.misses,
      s1.Rae_cache.Lru.hits - s0.Rae_cache.Lru.hits )
  in
  let report name policy =
    let m, h = misses policy in
    Printf.printf "%-4s: %6d block-cache misses, %6d hits (hit rate %5.1f%%)\n" name m h
      (100. *. float_of_int h /. float_of_int (h + m))
  in
  report "LRU" `Lru;
  report "2Q" `Two_q;
  Printf.printf
    "\nFull-stack finding: the dentry and inode caches absorb most of the scan,\n\
     so at the block-cache level the policies converge — one reason the paper\n\
     calls these stacked caching policies hard to reason about.\n";
  subsection "E10b | the policies in isolation (synthetic hot-set + scan reference string)";
  let module K = struct
    type t = int

    let equal = Int.equal
    let hash = Hashtbl.hash
  end in
  let module L = Rae_cache.Lru.Make (K) in
  let module Q = Rae_cache.Two_q.Make (K) in
  let trace =
    (* 8-page hot set re-referenced between 128-page scans, 50 rounds. *)
    List.concat
      (List.init 50 (fun round ->
           List.init 8 Fun.id @ List.init 8 Fun.id
           @ List.init 128 (fun i -> 1000 + (round * 128) + i)))
  in
  let run find put =
    let hits = ref 0 in
    List.iter
      (fun k ->
        match find k with
        | Some _ -> incr hits
        | None -> put k ())
      trace;
    100. *. float_of_int !hits /. float_of_int (List.length trace)
  in
  let l = L.create ~capacity:32 () in
  let lru_rate = run (L.find l) (L.put l) in
  let q = Q.create ~capacity:32 ~kout_ratio:8.0 () in
  let twoq_rate = run (Q.find q) (Q.put q) in
  Printf.printf "LRU hit rate: %5.1f%%\n2Q  hit rate: %5.1f%%\n" lru_rate twoq_rate;
  Printf.printf "Expected shape: 2Q retains the hot set across scans; LRU does not.\n"

(* ---------------------------------------------------------------- *)
(* E11: RAE vs the restart-only baseline                             *)
(* ---------------------------------------------------------------- *)

let e11_vs_restart_only () =
  section "E11 | RAE vs restart-only recovery (the paper's crash-and-recover baseline)";
  let ids = [ "dx-hash-panic"; "orphan-close-uaf"; "fsync-deadlock" ] in
  Printf.printf "%-14s %-10s %11s %12s %11s %10s\n" "workload" "mode" "recoveries" "mismatches"
    "app EIO" "lost ops";
  List.iter
    (fun profile ->
      let ops = W.ops profile (Rae_util.Rng.create 77L) ~count:(sc 1200) in
      let measure mode =
        let bugs =
          Bug_registry.arm ~rng:(Rae_util.Rng.create 9L) (List.filter_map Bug_registry.find ids)
        in
        let _, dev, b =
          fresh_base ~config:{ Base.default_config with Base.commit_interval = 16 } ~bugs ()
        in
        let sp = Spec.make () in
        let mismatches = ref 0 and eio = ref 0 in
        let run exec_one recoveries lost =
          List.iter
            (fun op ->
              let want = Spec.exec sp op in
              let got = exec_one op in
              if not (Op.outcome_equal want got) then incr mismatches;
              match got with Error Errno.EIO -> incr eio | _ -> ())
            ops;
          (recoveries (), !mismatches, !eio, lost ())
        in
        match mode with
        | `Rae ->
            let ctl = Controller.make ~device:dev b in
            run (Controller.exec ctl)
              (fun () -> (Controller.stats ctl).Controller.recoveries)
              (fun () -> 0)
        | `Restart ->
            let ctl = Rae_core.Restart_only.make b in
            run (Rae_core.Restart_only.exec ctl)
              (fun () -> (Rae_core.Restart_only.stats ctl).Rae_core.Restart_only.restarts)
              (fun () -> (Rae_core.Restart_only.stats ctl).Rae_core.Restart_only.lost_window_ops)
      in
      List.iter
        (fun (name, mode) ->
          let recoveries, mismatches, eio, lost = measure mode in
          Printf.printf "%-14s %-10s %11d %12d %11d %10d\n" (W.profile_name profile) name
            recoveries mismatches eio lost)
        [ ("RAE", `Rae); ("restart", `Restart) ])
    [ W.Varmail; W.Fileserver; W.Metadata ];
  Printf.printf
    "\nExpected shape: identical error load, but restart-only recovery loses the\n\
     volatile window and every open descriptor — applications see wrong results\n\
     and EIO storms — while RAE masks everything.  This is the availability gap\n\
     the shadow filesystem exists to close.\n"

(* ---------------------------------------------------------------- *)
(* E-alloc: bitmap allocator, seed bit-scan vs word-scan vs rotor    *)
(* ---------------------------------------------------------------- *)

let e_alloc () =
  section "E-alloc | block allocator: bit-at-a-time scan vs word scan vs next-fit rotor";
  let module Bitmap = Rae_format.Bitmap in
  let nbits = 8192 in
  let allocs = sc 4096 in
  (* The seed allocator: probe each bit from [from] upward.  Kept here as
     the before-side of the comparison. *)
  let naive_find_free bm ~from =
    let n = Bitmap.nbits bm in
    let rec go i = if i >= n then None else if not (Bitmap.test bm i) then Some i else go (i + 1) in
    if from >= n then None else go from
  in
  let drain find =
    let bm = Bitmap.create ~nbits in
    fun () ->
      Bitmap.reset_cursor bm;
      for i = 0 to nbits - 1 do
        if Bitmap.test bm i then Bitmap.clear bm i
      done;
      for _ = 1 to allocs do
        match find bm with Some i -> Bitmap.set bm i | None -> failwith "bitmap full"
      done
  in
  let n = float_of_int allocs in
  let t_seed = time_runs ~reps:(reps 3) (drain (fun bm -> naive_find_free bm ~from:0)) in
  let t_word = time_runs ~reps:(reps 3) (drain (fun bm -> Bitmap.find_free bm ~from:0)) in
  let t_rotor = time_runs ~reps:(reps 3) (drain (fun bm -> Bitmap.find_free_next bm ~lo:0)) in
  Printf.printf "%d allocations, %d-bit bitmap (first-fit fills a growing prefix):\n" allocs nbits;
  Printf.printf "  seed bit-scan first-fit : %12.0f allocs/s\n" (n /. t_seed);
  Printf.printf "  word-scan first-fit     : %12.0f allocs/s  (%.1fx)\n" (n /. t_word)
    (t_seed /. t_word);
  Printf.printf "  word-scan next-fit rotor: %12.0f allocs/s  (%.1fx)\n" (n /. t_rotor)
    (t_seed /. t_rotor);
  json_note ~sec:"E-alloc" ~name:"seed-bit-scan" ~unit:"allocs_per_s" (n /. t_seed);
  json_note ~sec:"E-alloc" ~name:"word-scan" ~unit:"allocs_per_s" (n /. t_word);
  json_note ~sec:"E-alloc" ~name:"word-scan+rotor" ~unit:"allocs_per_s" (n /. t_rotor);
  json_note ~sec:"E-alloc" ~name:"rotor-speedup-vs-seed" ~unit:"ratio" (t_seed /. t_rotor);
  Printf.printf
    "\nExpected shape: the seed scan re-walks the allocated prefix on every probe\n\
     (quadratic in allocations); the word scan skips it 64 bits at a time and the\n\
     rotor resumes where the last allocation left off (near-constant per alloc).\n"

(* ---------------------------------------------------------------- *)
(* E-txn: journal transaction buffering, list walks vs Hashtbl index *)
(* ---------------------------------------------------------------- *)

let e_txn () =
  section "E-txn | journal txn buffering: list filter/append vs Hashtbl-indexed slots";
  let module Journal = Rae_journal.Journal in
  let nhomes = 400 in
  let passes = sc 8 in
  let img = Bytes.make bs 'j' in
  (* The seed txn_write: drop any earlier image of the block from the list,
     append the new one at the tail — O(n) filter + O(n) append per call. *)
  let seed_pass () =
    let writes = ref [] in
    for _pass = 1 to passes do
      for home = 0 to nhomes - 1 do
        writes := List.filter (fun (b, _) -> b <> home) !writes @ [ (home, Bytes.copy img) ]
      done
    done;
    ignore (List.length !writes)
  in
  let disk = mk_disk ~nblocks:512 () in
  let dev = Device.of_disk disk in
  let g = ok (Layout.compute ~nblocks:512 ~ninodes:64 ~journal_len:16 ()) in
  Journal.format dev g;
  let j = ok (Journal.attach dev g) in
  let indexed_pass () =
    let txn = Journal.begin_txn j in
    for _pass = 1 to passes do
      for home = 0 to nhomes - 1 do
        Journal.txn_write txn (g.Layout.data_start + home) img
      done
    done;
    Journal.abort j txn
  in
  let calls = float_of_int (nhomes * passes) in
  let t_seed = time_runs ~reps:(reps 3) seed_pass in
  let t_indexed = time_runs ~reps:(reps 3) indexed_pass in
  Printf.printf "%d txn_write calls (%d homes, %d rewrite passes):\n" (nhomes * passes) nhomes
    passes;
  Printf.printf "  seed list filter+append : %12.0f writes/s\n" (calls /. t_seed);
  Printf.printf "  Hashtbl-indexed slots   : %12.0f writes/s  (%.1fx)\n" (calls /. t_indexed)
    (t_seed /. t_indexed);
  json_note ~sec:"E-txn" ~name:"seed-list" ~unit:"writes_per_s" (calls /. t_seed);
  json_note ~sec:"E-txn" ~name:"indexed" ~unit:"writes_per_s" (calls /. t_indexed);
  json_note ~sec:"E-txn" ~name:"speedup" ~unit:"ratio" (t_seed /. t_indexed);
  Printf.printf
    "\nExpected shape: rewriting hot metadata blocks inside one transaction is the\n\
     common journaling pattern; the list walk pays O(buffered blocks) per write,\n\
     the index overwrites a slot in place.\n"

(* ---------------------------------------------------------------- *)
(* E-oplog: op recording, list cons + List.length vs growable array  *)
(* ---------------------------------------------------------------- *)

let e_oplog () =
  section "E-oplog | op-log recording: list + List.length vs growable array + counter";
  let module Oplog = Rae_core.Oplog in
  let nops = sc 20000 in
  (* The seed oplog: cons onto a list; [length] (polled by the controller's
     commit policy) re-walked the whole window. *)
  let seed_pass () =
    let entries = ref [] in
    for i = 1 to nops do
      entries := (Op.Sync, (Ok Op.Unit : Op.outcome), i) :: !entries;
      ignore (List.length !entries)
    done;
    ignore (List.rev !entries)
  in
  let array_pass () =
    let log = Oplog.create () in
    for _ = 1 to nops do
      Oplog.record log Op.Sync (Ok Op.Unit);
      ignore (Oplog.length log)
    done;
    ignore (Oplog.entries log);
    Oplog.checkpoint log ~fds:[]
  in
  let n = float_of_int nops in
  let t_seed = time_runs ~reps:(reps 3) seed_pass in
  let t_array = time_runs ~reps:(reps 3) array_pass in
  Printf.printf "%d records, window length polled after each (commit-policy pattern):\n" nops;
  Printf.printf "  seed list + List.length  : %12.0f records/s\n" (n /. t_seed);
  Printf.printf "  array + running counter  : %12.0f records/s  (%.1fx)\n" (n /. t_array)
    (t_seed /. t_array);
  json_note ~sec:"E-oplog" ~name:"seed-list" ~unit:"records_per_s" (n /. t_seed);
  json_note ~sec:"E-oplog" ~name:"array-counter" ~unit:"records_per_s" (n /. t_array);
  json_note ~sec:"E-oplog" ~name:"speedup" ~unit:"ratio" (t_seed /. t_array);
  Printf.printf
    "\nExpected shape: the window is polled once per operation, so the seed pays\n\
     O(window) per record — quadratic across a commit interval; the counter makes\n\
     recording flat regardless of window length.\n"

(* ---------------------------------------------------------------- *)
(* E-obs: observability — instrumentation cost and trace validity    *)
(* ---------------------------------------------------------------- *)

let e_obs () =
  section "E-obs | Observability: instrumentation overhead and trace well-formedness";
  subsection "E-obs/a | common-path throughput: obs off / registered / traced / recorder";
  (* The claim is "within noise", so the noise floor has to sit well under
     the couple-percent acceptance band.  Machine speed drifts over seconds,
     which would bias back-to-back [time_runs] calls; instead the
     configurations are interleaved within each repetition so drift hits all
     of them equally, and the per-config median is taken across rounds. *)
  let ops = W.ops W.Varmail (Rae_util.Rng.create 11L) ~count:(sc 16_000) in
  let n = float_of_int (List.length ops) in
  let run_off () =
    let _, dev, b = fresh_base () in
    let ctl = Controller.make ~device:dev b in
    run_ops Controller.exec ctl ops
  in
  (* The common case: metrics registered (pull-based, sampled once at the
     end) and a tracer attached but with no sink enabled. *)
  let run_cfg ~traced () =
    let _, dev, b = fresh_base () in
    let tracer = Rae_obs.Tracer.create () in
    if traced then Rae_obs.Tracer.enable tracer;
    let ctl = Controller.make ~tracer ~device:dev b in
    let reg = Rae_obs.Metrics.create () in
    Controller.register_obs reg ctl;
    run_ops Controller.exec ctl ops;
    ignore (Rae_obs.Metrics.snapshot reg)
  in
  (* The always-on flight recorder: every op completion lands in the
     pre-allocated ring.  This arm prices exactly that write. *)
  let run_recorder () =
    let _, dev, b = fresh_base () in
    let events = Rae_obs.Events.create ~capacity:1024 () in
    let ctl = Controller.make ~events ~device:dev b in
    run_ops Controller.exec ctl ops
  in
  let configs = [| run_off; run_cfg ~traced:false; run_cfg ~traced:true; run_recorder |] in
  Array.iter (fun f -> f ()) configs;
  Gc.compact ();
  let rounds = reps 5 in
  let samples = Array.map (fun _ -> ref []) configs in
  for _ = 1 to rounds do
    Array.iteri
      (fun i f ->
        Gc.major ();
        let t0 = Sys.time () in
        f ();
        samples.(i) := (Sys.time () -. t0) :: !(samples.(i)))
      configs
  done;
  let median i =
    let sorted = List.sort compare !(samples.(i)) in
    List.nth sorted (rounds / 2)
  in
  let t_off = median 0 and t_reg = median 1 and t_trace = median 2 and t_rec = median 3 in
  let pct t = (t -. t_off) /. t_off *. 100. in
  Printf.printf "%-28s %12.0f ops/s\n" "obs off" (n /. t_off);
  Printf.printf "%-28s %12.0f ops/s  (%+.1f%%)\n" "registry + disabled tracer" (n /. t_reg)
    (pct t_reg);
  Printf.printf "%-28s %12.0f ops/s  (%+.1f%%)\n" "tracing enabled" (n /. t_trace) (pct t_trace);
  Printf.printf "%-28s %12.0f ops/s  (%+.1f%%)\n" "flight recorder on" (n /. t_rec) (pct t_rec);
  json_note ~sec:"E-obs" ~name:"off" ~unit:"ops_per_s" (n /. t_off);
  json_note ~sec:"E-obs" ~name:"registered" ~unit:"ops_per_s" (n /. t_reg);
  json_note ~sec:"E-obs" ~name:"traced" ~unit:"ops_per_s" (n /. t_trace);
  json_note ~sec:"E-obs" ~name:"recorder" ~unit:"ops_per_s" (n /. t_rec);
  json_note ~sec:"E-obs" ~name:"registered-overhead" ~unit:"pct" (pct t_reg);
  json_note ~sec:"E-obs" ~name:"traced-overhead" ~unit:"pct" (pct t_trace);
  json_note ~sec:"E-obs" ~name:"recorder-overhead" ~unit:"pct" (pct t_rec);
  (* The recorder is meant to be always-on: enforce the "within noise"
     claim on full runs (quick runs take one unpaired sample per arm, far
     too noisy for a floor). *)
  if (not !quick) && pct t_rec > 10. then begin
    Printf.eprintf "E-obs: flight recorder overhead %.1f%% exceeds the 10%% floor\n" (pct t_rec);
    exit 1
  end;
  subsection "E-obs/b | recovery trace + black box: emit, validate, check coverage";
  let bugs =
    Bug_registry.arm
      [
        {
          Bug_registry.id = "bench-panic";
          determinism = Bug_registry.Deterministic;
          trigger = Bug_registry.Path_component "trigger";
          consequence = Bug_registry.Panic;
          modeled_after = "bench";
        };
      ]
  in
  let disk = mk_disk () in
  let dev = Device.of_disk disk in
  ignore (ok (Base.mkfs dev ~ninodes:1024 ()));
  let b = ok (Base.mount ~bugs dev) in
  let clock () =
    Int64.add
      (Rae_util.Vclock.now (Disk.clock disk))
      (Int64.of_float (Sys.time () *. 1e9))
  in
  let tracer = Rae_obs.Tracer.create ~clock () in
  Rae_obs.Tracer.enable tracer;
  let events = Rae_obs.Events.create ~capacity:1024 () in
  let ctl =
    Controller.make ~tracer ~events ~bundle_dir:"bench-bundles" ~run_id:"bench-e-obs" ~device:dev
      b
  in
  let reg = Rae_obs.Metrics.create () in
  Controller.register_obs reg ctl;
  run_ops Controller.exec ctl (W.ops W.Metadata (Rae_util.Rng.create 3L) ~count:(sc 400));
  ignore (Controller.exec ctl (Op.Create (p "/trigger", 0o644)));
  (* The recovery must have left a validating black-box bundle behind. *)
  (match Controller.bundles ctl with
  | [] ->
      prerr_endline "E-obs: recovery emitted no black-box bundle";
      exit 1
  | path :: _ -> (
      match Rae_obs.Blackbox.check_file path with
      | Ok summary ->
          Printf.printf "black box: %s validates (%d events, health %s)\n"
            (Filename.basename path) summary.Rae_obs.Blackbox.s_events
            summary.Rae_obs.Blackbox.s_health;
          json_note ~sec:"E-obs" ~name:"bundle-events" ~unit:"count"
            (float_of_int summary.Rae_obs.Blackbox.s_events)
      | Error violations ->
          Printf.eprintf "E-obs: bundle %s is invalid:\n" path;
          List.iter (fun v -> Printf.eprintf "  - %s\n" v) violations;
          exit 1));
  json_metrics := Some (Rae_obs.Metrics.to_json reg);
  let trace = Rae_obs.Tracer.to_chrome tracer in
  (match Rae_obs.Tracer.validate_chrome trace with
  | Ok nev ->
      Printf.printf "trace: %d events, balanced and monotone\n" nev;
      json_note ~sec:"E-obs" ~name:"trace-events" ~unit:"count" (float_of_int nev)
  | Error msg ->
      Printf.eprintf "E-obs: malformed trace: %s\n" msg;
      exit 1);
  let begun = Rae_obs.Tracer.events tracer in
  let has_span name =
    List.exists
      (function Rae_obs.Tracer.Begin { name = n; _ } -> n = name | _ -> false)
      begun
  in
  (* The in-flight op is a create, so delegated-sync legitimately never
     runs; this is a default-policy (cold) recovery, so neither does the
     checkpoint-seeded [seed] phase. *)
  let expected =
    "recovery"
    :: List.filter (fun nm -> nm <> "delegated-sync" && nm <> "seed") Controller.phase_names
  in
  let missing = List.filter (fun nm -> not (has_span nm)) expected in
  if missing <> [] then begin
    Printf.eprintf "E-obs: missing recovery spans: %s\n" (String.concat ", " missing);
    exit 1
  end;
  (match Controller.last_recovery ctl with
  | Some r when r.Report.r_phases <> [] -> ()
  | _ ->
      prerr_endline "E-obs: recovery report carries no phase timings";
      exit 1);
  Printf.printf "all %d expected recovery spans present; report carries %d phase timings\n"
    (List.length expected)
    (match Controller.last_recovery ctl with
    | Some r -> List.length r.Report.r_phases
    | None -> 0)

(* ---------------------------------------------------------------- *)
(* E-srv: the serving layer                                          *)
(* ---------------------------------------------------------------- *)

module Srv = Rae_srv.Server
module Loopback = Rae_srv.Loopback
module SrvClient = Rae_srv.Srv_client
module SWire = Rae_srv.Wire

(* A raw pipelined client over one loopback endpoint.  Srv_client is
   synchronous (one outstanding request); to give the scheduler real
   cross-session batches to build, the throughput bench speaks the wire
   protocol directly with a window of in-flight requests per session. *)
type pipelined = {
  plc_ep : Loopback.endpoint;
  plc_send : string -> unit;
  mutable plc_rx : string;
  mutable plc_next_req : int;
  mutable plc_inflight : int;
  mutable plc_remaining : int;
  mutable plc_completed : int;
  mutable plc_busy : int;
  mutable plc_vfd : int;
}

let pl_drain st =
  let fresh = Loopback.recv st.plc_ep in
  st.plc_rx <- (if st.plc_rx = "" then fresh else st.plc_rx ^ fresh);
  let buf = Bytes.unsafe_of_string st.plc_rx in
  let len = Bytes.length buf in
  let pos = ref 0 in
  let frames = ref [] in
  let continue = ref true in
  while !continue do
    match SWire.decode buf ~pos:!pos ~len:(len - !pos) with
    | SWire.Frame (f, consumed) ->
        frames := f :: !frames;
        pos := !pos + consumed
    | SWire.Need_more -> continue := false
    | SWire.Fail e -> failwith (Format.asprintf "e-srv: wire failure: %a" SWire.pp_error e)
  done;
  st.plc_rx <- String.sub st.plc_rx !pos (len - !pos);
  List.rev !frames

let pl_req st =
  let r = st.plc_next_req in
  st.plc_next_req <- r + 1;
  r

let pl_await hub st accept =
  let result = ref None in
  let guard = ref 0 in
  while !result = None && !guard < 100_000 do
    incr guard;
    (match List.filter_map accept (pl_drain st) with
    | v :: _ -> result := Some v
    | [] -> ignore (Loopback.pump hub))
  done;
  match !result with Some v -> v | None -> failwith "e-srv: no reply"

let pl_window = 8 (* matches the per-session rate quota *)
let pl_data = String.make 256 's'

(* Attach, create, open and prime this session's private file. *)
let pl_setup hub i =
  let ep = Loopback.connect hub in
  let io = Loopback.io ep in
  let st =
    {
      plc_ep = ep;
      plc_send = io.SrvClient.io_send;
      plc_rx = "";
      plc_next_req = 1;
      plc_inflight = 0;
      plc_remaining = 0;
      plc_completed = 0;
      plc_busy = 0;
      plc_vfd = -1;
    }
  in
  st.plc_send (SWire.encode (SWire.Hello { version = SWire.protocol_version }));
  pl_await hub st (function SWire.Hello_ok _ -> Some () | _ -> None);
  let path = p (Printf.sprintf "/srv%d" i) in
  st.plc_send (SWire.encode (SWire.Op_req { req = pl_req st; corr = 0; op = Op.Create (path, 0o644) }));
  pl_await hub st (function SWire.Op_reply _ -> Some () | _ -> None);
  st.plc_send
    (SWire.encode (SWire.Op_req { req = pl_req st; corr = 0; op = Op.Open (path, Rae_vfs.Types.flags_rw) }));
  st.plc_vfd <-
    pl_await hub st (function
      | SWire.Op_reply { outcome = Ok (Op.Fd fd); _ } -> Some fd
      | SWire.Op_reply _ -> failwith "e-srv: setup open failed"
      | _ -> None);
  st.plc_send (SWire.encode (SWire.Op_req { req = pl_req st; corr = 0; op = Op.Pwrite (st.plc_vfd, 0, pl_data) }));
  pl_await hub st (function SWire.Op_reply _ -> Some () | _ -> None);
  st

let pl_issue st =
  while st.plc_inflight < pl_window && st.plc_remaining > 0 do
    let op =
      if st.plc_remaining land 1 = 0 then Op.Fstat st.plc_vfd
      else Op.Pread (st.plc_vfd, st.plc_remaining * 256 mod 65536, 256)
    in
    st.plc_send (SWire.encode (SWire.Op_req { req = pl_req st; corr = 0; op }));
    st.plc_remaining <- st.plc_remaining - 1;
    st.plc_inflight <- st.plc_inflight + 1
  done

let pl_settle st =
  List.iter
    (function
      | SWire.Op_reply _ ->
          st.plc_inflight <- st.plc_inflight - 1;
          st.plc_completed <- st.plc_completed + 1
      | SWire.Busy _ ->
          st.plc_inflight <- st.plc_inflight - 1;
          st.plc_remaining <- st.plc_remaining + 1;
          st.plc_busy <- st.plc_busy + 1
      | _ -> ())
    (pl_drain st)

(* One throughput configuration: [sessions] pipelined clients, [total]
   operations split evenly, over a loopback hub charging 200us of simulated
   dispatch latency per turn that does work — the per-wakeup cost a real
   event loop pays regardless of batch size, i.e. exactly what batching
   amortizes.  Reported throughput is against combined CPU + simulated
   time (the E3b convention). *)
let e_srv_run ~sessions ~batching ~total =
  let _, dev, base = fresh_base () in
  let ctl = Controller.make ~device:dev base in
  let config =
    { Srv.default_config with Srv.batch_max = (if batching then Srv.default_config.Srv.batch_max else 1) }
  in
  let server = Srv.create ~config ctl in
  let clock = Rae_util.Vclock.create () in
  let hub = Loopback.create ~turn_latency_ns:200_000L ~clock server in
  let sts = Array.init sessions (fun i -> pl_setup hub i) in
  let per = max 1 (total / sessions) in
  Array.iter (fun st -> st.plc_remaining <- per) sts;
  let finished () =
    Array.for_all (fun st -> st.plc_remaining = 0 && st.plc_inflight = 0) sts
  in
  let cpu0 = Sys.time () in
  let sim0 = Rae_util.Vclock.now clock in
  let guard = ref 0 in
  while (not (finished ())) && !guard < 10_000_000 do
    incr guard;
    Array.iter pl_issue sts;
    ignore (Loopback.pump hub);
    Array.iter pl_settle sts
  done;
  if not (finished ()) then failwith "e-srv: throughput run stalled";
  let cpu = Sys.time () -. cpu0 in
  let sim = Int64.to_float (Int64.sub (Rae_util.Vclock.now clock) sim0) /. 1e9 in
  let n = Array.fold_left (fun acc st -> acc + st.plc_completed) 0 sts in
  let busy = Array.fold_left (fun acc st -> acc + st.plc_busy) 0 sts in
  (float_of_int n /. (cpu +. sim), busy)

let median_of l =
  let sorted = List.sort compare l in
  List.nth sorted (List.length sorted / 2)

let e_srv_throughput () =
  subsection
    "E-srv/a | throughput vs client count (loopback, 200us/turn dispatch latency, window 8)";
  let total = sc 4096 in
  let rounds = reps 3 in
  let measure ~sessions ~batching =
    median_of (List.init rounds (fun _ -> fst (e_srv_run ~sessions ~batching ~total)))
  in
  Printf.printf "%-10s %16s %16s %10s\n" "sessions" "batched (op/s)" "unbatched (op/s)"
    "batch adv.";
  let batched1 = ref 0. and batched16 = ref 0. in
  List.iter
    (fun sessions ->
      let b = measure ~sessions ~batching:true in
      let u = measure ~sessions ~batching:false in
      if sessions = 1 then batched1 := b;
      if sessions = 16 then batched16 := b;
      json_note ~sec:"E-srv" ~name:(Printf.sprintf "c%d/batched" sessions) ~unit:"ops_per_s" b;
      json_note ~sec:"E-srv" ~name:(Printf.sprintf "c%d/unbatched" sessions) ~unit:"ops_per_s" u;
      Printf.printf "%-10d %16.0f %16.0f %9.1fx\n" sessions b u (b /. u))
    [ 1; 4; 16; 64 ];
  let speedup = !batched16 /. !batched1 in
  json_note ~sec:"E-srv" ~name:"speedup-16v1-batched" ~unit:"x" speedup;
  Printf.printf
    "\n16-session vs single-session throughput (batched): %.1fx\n\
     Expected shape: batching amortizes the per-turn dispatch cost across up\n\
     to batch_max requests, so throughput scales with sessions until the\n\
     batch cap (64 = 8 sessions x window 8) and then plateaus; unbatched\n\
     dispatch pays the full turn cost per op at every session count.\n"
    speedup;
  if speedup < 2.0 then begin
    Printf.eprintf "E-srv: 16-session speedup %.2fx below the 2x floor\n" speedup;
    exit 1
  end

let e_srv_recovery () =
  subsection "E-srv/b | mid-run injected BUG: recovery transparency across sessions";
  let bugs =
    Bug_registry.arm
      [
        {
          Bug_registry.id = "srv-panic";
          determinism = Bug_registry.Deterministic;
          trigger = Bug_registry.Path_component "trigger";
          consequence = Bug_registry.Panic;
          modeled_after = "bench";
        };
      ]
  in
  let _, dev, base = fresh_base ~bugs () in
  (* Checkpointing on, as rfsd runs it: the mid-serving recovery replays
     only the suffix past the last fold, shrinking the Busy window. *)
  let ctl = Controller.make ~policy:ckpt_policy ~device:dev base in
  let server = Srv.create ctl in
  let hub = Loopback.create server in
  let clients =
    Array.init 4 (fun i ->
        match SrvClient.connect ~dial:(Loopback.dial hub) () with
        | Ok c -> c
        | Error msg -> failwith (Printf.sprintf "e-srv: client %d attach: %s" i msg))
  in
  let rounds = sc 64 in
  let errors = ref 0 in
  let total = ref 0 in
  let check r =
    incr total;
    match r with Ok _ -> () | Error _ -> incr errors
  in
  for k = 0 to rounds - 1 do
    Array.iteri
      (fun i c ->
        (* the BUG fires mid-run, from one session, while the others are
           mid-stream: the panic must be invisible to all of them *)
        if i = 0 && k = rounds / 2 then check (SrvClient.create c (p "/trigger") ~mode:0o644);
        let path = p (Printf.sprintf "/f%d_%d" i k) in
        check (SrvClient.create c path ~mode:0o644);
        match SrvClient.openf c path Rae_vfs.Types.flags_rw with
        | Ok fd ->
            incr total;
            check (SrvClient.pwrite c fd ~off:0 (String.make 128 'y'));
            check (SrvClient.pread c fd ~off:0 ~len:64);
            check (SrvClient.fstat c fd);
            check (SrvClient.close c fd)
        | Error _ ->
            incr total;
            incr errors)
      clients
  done;
  let recoveries = (Controller.stats ctl).Controller.recoveries in
  let notices = Array.map SrvClient.recovered_seen clients in
  Printf.printf "%d ops across 4 sessions: %d client-visible errors, %d recover%s\n" !total
    !errors recoveries
    (if recoveries = 1 then "y" else "ies");
  Array.iteri
    (fun i n -> Printf.printf "client %d observed %d Note_recovered push%s\n" i n
        (if n = 1 then "" else "es"))
    notices;
  json_note ~sec:"E-srv" ~name:"bug-ops" ~unit:"count" (float_of_int !total);
  json_note ~sec:"E-srv" ~name:"bug-client-errors" ~unit:"count" (float_of_int !errors);
  json_note ~sec:"E-srv" ~name:"bug-recoveries" ~unit:"count" (float_of_int recoveries);
  json_note ~sec:"E-srv" ~name:"bug-min-notices" ~unit:"count"
    (float_of_int (Array.fold_left min max_int notices));
  if !errors > 0 || recoveries < 1 || Array.exists (fun n -> n < 1) notices then begin
    Printf.eprintf
      "E-srv: recovery transparency violated (%d errors, %d recoveries, notices %s)\n" !errors
      recoveries
      (String.concat "," (Array.to_list (Array.map string_of_int notices)));
    exit 1
  end

let e_srv () =
  section "E-srv | serving layer: multi-client throughput, batching, recovery transparency";
  e_srv_throughput ();
  e_srv_recovery ()

(* The lint engine rides the inner loop of CI (`dune build @lint` runs on
   every `dune runtest`), so its cost is a budget like any other: a full
   interprocedural scan of lib/ must stay under 10 s of wall time or the
   alias stops being something developers keep enabled.  The scan reads
   the .cmt files of the libraries this binary already links, so they are
   guaranteed to be built. *)
let e_lint () =
  section "E-lint | rae_lint full-repo scan: interprocedural effects + typestate";
  (* cwd is _build/default/bench under the bench-smoke alias, the repo
     root under `dune exec bench/main.exe`. *)
  let candidates = [ "../lib"; "_build/default/lib" ] in
  match List.find_opt Sys.file_exists candidates with
  | None -> Printf.printf "  no built lib/ tree next to the benchmark; skipping\n"
  | Some dir -> (
      let t0 = Unix.gettimeofday () in
      match Rae_lint.Engine.run ~dirs:[ dir ] () with
      | Error msg ->
          Printf.eprintf "E-lint: %s\n" msg;
          exit 1
      | Ok r ->
          let wall = Unix.gettimeofday () -. t0 in
          let s = r.Rae_lint.Engine.stats in
          Printf.printf "  %d units, %d rules, %d findings in %.3fs (floor: < 10 s wall)\n"
            s.Rae_lint.Engine.units_loaded s.Rae_lint.Engine.rules_run
            s.Rae_lint.Engine.findings wall;
          json_note ~sec:"E-lint" ~name:"wall" ~unit:"s" wall;
          json_note ~sec:"E-lint" ~name:"units" ~unit:"count"
            (float_of_int s.Rae_lint.Engine.units_loaded);
          json_note ~sec:"E-lint" ~name:"findings" ~unit:"count"
            (float_of_int s.Rae_lint.Engine.findings);
          if wall >= 10.0 then begin
            Printf.eprintf "E-lint: full-repo scan took %.2fs, over the 10 s floor\n" wall;
            exit 1
          end)

(* E-crash: the B3-style crash-consistency sweep.  The engine enumerates
   every persistence boundary (and bounded-depth reordered subsets) of
   bounded, targeted and crash-mid-recovery workloads, and the oracle
   must judge every image consistent or repaired — zero diverging.  The
   seeded fixture (a device that ignores flush barriers) must diverge and
   minimize to a tiny reproducer, or the oracle has gone blind.  Floors
   enforced on the full run: >= 500 crash points, 0 diverging, fixture
   caught and minimized to <= 3 ops. *)
let e_crash () =
  section "E-crash | crash-consistency sweep: every crash image recovers to a legal state";
  let module CE = Rae_crash.Engine in
  let floor_violations = ref [] in
  let t0 = Unix.gettimeofday () in
  let stats = ref CE.empty_stats in
  let sweep name s =
    Printf.printf "  %-14s %s\n" name (Format.asprintf "%a" CE.pp_stats s);
    List.iter
      (fun d ->
        Printf.printf "    diverging %s at %s: %s\n" d.CE.d_label d.CE.d_key d.CE.d_reason)
      (List.rev s.CE.s_diverging);
    stats := CE.merge !stats s
  in
  let cfg =
    {
      CE.default_config with
      CE.prefix_stride = (if !quick then 2 else 1);
      samples_per_epoch = (if !quick then 6 else 12);
    }
  in
  sweep "bounded" (CE.sweep_bounded ~cfg ~max_workloads:(sc 48) ());
  sweep "targeted"
    (CE.sweep_targeted ~cfg ~count:(sc 48)
       ~seeds:(if !quick then [ 1L ] else [ 1L; 2L; 3L ])
       ());
  sweep "recovery-cold" (CE.sweep_recovery ~cfg ~count:(sc 24) ~ckpt:false ());
  sweep "recovery-ckpt" (CE.sweep_recovery ~cfg ~count:(sc 24) ~ckpt:true ());
  let s = !stats in
  let wall = Unix.gettimeofday () -. t0 in
  let diverging = List.length s.CE.s_diverging in
  Printf.printf "  %-14s %s  (%.2fs wall)\n" "total" (Format.asprintf "%a" CE.pp_stats s) wall;
  json_note ~sec:"E-crash" ~name:"points" ~unit:"count" (float_of_int s.CE.s_points);
  json_note ~sec:"E-crash" ~name:"workloads" ~unit:"count" (float_of_int s.CE.s_workloads);
  json_note ~sec:"E-crash" ~name:"consistent" ~unit:"count" (float_of_int s.CE.s_consistent);
  json_note ~sec:"E-crash" ~name:"repaired" ~unit:"count" (float_of_int s.CE.s_repaired);
  json_note ~sec:"E-crash" ~name:"diverging" ~unit:"count" (float_of_int diverging);
  json_note ~sec:"E-crash" ~name:"wall" ~unit:"s" wall;
  (* The seeded divergence: the oracle must catch a barrier-ignoring
     device and shrink the workload to a tiny reproducer. *)
  let fixture = [ Rae_vfs.Op.Create (Rae_vfs.Path.parse_exn "/a", 0o644); Rae_vfs.Op.Sync ] in
  (match CE.first_divergence ~cfg ~barriers:false fixture with
  | None -> floor_violations := "seeded broken-barriers fixture not detected" :: !floor_violations
  | Some d ->
      Printf.printf "  fixture        caught at %s (%s)\n" d.CE.d_key d.CE.d_reason;
      (match CE.minimize ~cfg ~barriers:false fixture with
      | Some min_ops when List.length min_ops <= 3 ->
          Printf.printf "  fixture        minimized to %d op(s): %s\n" (List.length min_ops)
            (CE.render_ops min_ops);
          json_note ~sec:"E-crash" ~name:"fixture-reproducer" ~unit:"ops"
            (float_of_int (List.length min_ops))
      | Some min_ops ->
          floor_violations :=
            Printf.sprintf "fixture reproducer has %d ops, over the 3-op floor"
              (List.length min_ops)
            :: !floor_violations
      | None -> floor_violations := "fixture diverged but would not minimize" :: !floor_violations));
  if diverging > 0 then
    floor_violations := Printf.sprintf "%d diverging crash points" diverging :: !floor_violations;
  if (not !quick) && s.CE.s_points < 500 then
    floor_violations :=
      Printf.sprintf "only %d crash points enumerated, under the 500 floor" s.CE.s_points
      :: !floor_violations;
  if !floor_violations <> [] then begin
    List.iter (fun v -> Printf.eprintf "E-crash: %s\n" v) (List.rev !floor_violations);
    exit 1
  end;
  print_string
    "\nExpected shape: every enumerated crash image — prefix and reordered-subset\n\
     points, including those inside the recovery pipeline's own write stream —\n\
     mounts, replays and fscks clean, and matches a legal durable boundary\n\
     (diverging = 0).  Only the seeded broken-barriers fixture diverges, and it\n\
     shrinks to a reproducer of at most 3 ops.\n"

(* ---------------------------------------------------------------- *)
(* E-par: OCaml 5 domain parallelism across the four layers           *)
(* ---------------------------------------------------------------- *)

(* Parallel arms are compared on wall-clock (Unix.gettimeofday): the
   process-CPU clock the other sections use charges every domain's work
   to one meter, which by construction cannot show a parallel speedup.
   Reps are interleaved round-robin like [time_interleaved]. *)
let wall_interleaved ~reps fs =
  Array.iter (fun f -> f ()) fs;
  Gc.compact ();
  let samples = Array.map (fun _ -> ref []) fs in
  for _ = 1 to reps do
    Array.iteri
      (fun i f ->
        Gc.major ();
        let t0 = Unix.gettimeofday () in
        f ();
        samples.(i) := (Unix.gettimeofday () -. t0) :: !(samples.(i)))
      fs
  done;
  Array.map
    (fun s ->
      let sorted = List.sort compare !s in
      List.nth sorted (List.length sorted / 2))
    samples

(* E-par floors: fsck >= 1.5x at 4 domains, hot-path fold enqueue <= the
   synchronous fold it replaces, full crash sweep 0 diverging.  The
   speedup/overhead floors are only meaningful with real parallelism, so
   they are enforced on full runs on hosts whose
   [Domain.recommended_domain_count] is >= 2 and reported (with an
   explicit skip notice) elsewhere; the correctness floors — par = seq
   verdicts, byte-equal destage, zero diverging — are enforced always. *)
let e_par () =
  section "E-par | domain parallelism: fsck, replay destage, background fold, crash sweep";
  let module Pool = Rae_par.Pool in
  let module F = Rae_fsck.Fsck in
  let module Journal = Rae_journal.Journal in
  let module Checkpoint = Rae_core.Checkpoint in
  let module CE = Rae_crash.Engine in
  let cores = Domain.recommended_domain_count () in
  let enforce_perf = (not !quick) && cores >= 2 in
  Printf.printf "recommended_domain_count = %d\n" cores;
  if not enforce_perf then
    Printf.printf
      "(speedup/overhead floors reported but NOT enforced: %s; correctness floors still apply)\n"
      (if !quick then "--quick run"
       else
         Printf.sprintf "host recommends %d domain(s), wall-clock gains are not meaningful here"
           cores);
  json_note ~sec:"E-par" ~name:"recommended-domains" ~unit:"count" (float_of_int cores);
  let floor_violations = ref [] in
  let perf_floor msg ok =
    if not ok then
      if enforce_perf then floor_violations := msg :: !floor_violations
      else Printf.printf "  floor skipped (not enforced on this run): %s\n" msg
  in
  let hard_floor msg ok = if not ok then floor_violations := msg :: !floor_violations in
  let pool2 = Pool.create ~domains:2 () and pool4 = Pool.create ~domains:4 () in

  (* -- a) fsck: per-range passes across domains ------------------- *)
  subsection "E-par-a | fsck passes, 1 vs 2 vs 4 domains (>=1.5x at 4 floor)";
  let disk, _, fsbase =
    fresh_base ~config:{ Base.default_config with Base.commit_interval = 1 } ()
  in
  run_ops Base.exec fsbase (W.ops W.Metadata (Rae_util.Rng.create 7L) ~count:(sc 4000));
  let fdev = Device.of_disk disk in
  let normalized r =
    ( F.clean r,
      r.F.inodes_checked,
      r.F.dirs_walked,
      List.sort compare (List.map (fun f -> Format.asprintf "%a" F.pp_finding f) r.F.findings) )
  in
  let reports = Array.make 3 None in
  let fsck_arm i pool () =
    let r = match pool with None -> F.check_device fdev | Some pl -> F.check_device ~pool:pl fdev in
    reports.(i) <- Some (normalized r)
  in
  let m =
    wall_interleaved ~reps:(reps 5)
      [| fsck_arm 0 None; fsck_arm 1 (Some pool2); fsck_arm 2 (Some pool4) |]
  in
  let fsck_speedup = m.(0) /. m.(2) in
  Printf.printf "  fsck seq   : %8.1f ms\n" (m.(0) *. 1e3);
  Printf.printf "  fsck par=2 : %8.1f ms  (%.2fx)\n" (m.(1) *. 1e3) (m.(0) /. m.(1));
  Printf.printf "  fsck par=4 : %8.1f ms  (%.2fx)\n" (m.(2) *. 1e3) fsck_speedup;
  json_note ~sec:"E-par" ~name:"fsck-seq" ~unit:"s" m.(0);
  json_note ~sec:"E-par" ~name:"fsck-par2" ~unit:"s" m.(1);
  json_note ~sec:"E-par" ~name:"fsck-par4" ~unit:"s" m.(2);
  json_note ~sec:"E-par" ~name:"fsck-speedup4" ~unit:"x" fsck_speedup;
  hard_floor "fsck par reports differ from sequential"
    (reports.(0) = reports.(1) && reports.(0) = reports.(2) && reports.(0) <> None);
  perf_floor (Printf.sprintf "fsck speedup %.2fx at 4 domains under the 1.5x floor" fsck_speedup)
    (fsck_speedup >= 1.5);

  (* -- b) journal replay: parallel destage ------------------------ *)
  subsection "E-par-b | replay destage, 1 vs 4 domains (byte-equal enforced)";
  (* Committed-but-undestaged journal: commit through a device that keeps
     the journal record writes but drops the home writes and the tail
     advance — the on-medium state of a crash right after the journal
     flush, which is exactly what recovery's contained reboot replays. *)
  let nblocks = 4096 and journal_len = 512 in
  let jdisk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks () in
  let raw = Device.of_disk jdisk in
  let g = ok (Layout.compute ~nblocks ~ninodes:256 ~journal_len ()) in
  Journal.format raw g;
  let jlo = g.Layout.journal_start in
  let drop_homes =
    {
      raw with
      Device.dev_write =
        (fun b data -> if b > jlo && b < jlo + journal_len then Device.write raw b data);
    }
  in
  let j = ok (Journal.attach drop_homes g) in
  let jrng = Rae_util.Rng.create 11L in
  for _ = 1 to sc 24 do
    let txn = Journal.begin_txn j in
    for _ = 1 to 16 do
      Journal.txn_write txn
        (g.Layout.data_start + Rae_util.Rng.int jrng 1024)
        (Bytes.make bs (Char.chr (Rae_util.Rng.int jrng 256)))
    done;
    Journal.commit j txn
  done;
  let crashed = Disk.snapshot jdisk in
  let images = Array.make 2 None in
  let replay_arm i pool =
    (* The restore is setup, not replay: timed by hand to keep it out. *)
    Disk.restore jdisk crashed;
    Gc.major ();
    let t0 = Unix.gettimeofday () in
    (match Journal.replay ?pool (Device.of_disk jdisk) g with
    | Ok _ -> ()
    | Error e -> failwith ("E-par destage replay: " ^ e));
    let dt = Unix.gettimeofday () -. t0 in
    images.(i) <- Some (Disk.snapshot jdisk);
    dt
  in
  ignore (replay_arm 0 None);
  ignore (replay_arm 1 (Some pool4));
  let dest_samples = Array.map (fun _ -> ref []) images in
  for _ = 1 to reps 5 do
    dest_samples.(0) := replay_arm 0 None :: !(dest_samples.(0));
    dest_samples.(1) := replay_arm 1 (Some pool4) :: !(dest_samples.(1))
  done;
  let dmed =
    Array.map
      (fun s ->
        let sorted = List.sort compare !s in
        List.nth sorted (List.length sorted / 2))
      dest_samples
  in
  let byte_equal =
    match (images.(0), images.(1)) with
    | Some a, Some b ->
        Array.length a = Array.length b
        && Array.for_all2 (fun x y -> Bytes.equal x y) a b
    | _ -> false
  in
  Printf.printf "  destage seq   : %8.2f ms\n" (dmed.(0) *. 1e3);
  Printf.printf "  destage par=4 : %8.2f ms  (%.2fx, byte-equal: %b)\n" (dmed.(1) *. 1e3)
    (dmed.(0) /. dmed.(1))
    byte_equal;
  json_note ~sec:"E-par" ~name:"destage-seq" ~unit:"s" dmed.(0);
  json_note ~sec:"E-par" ~name:"destage-par4" ~unit:"s" dmed.(1);
  hard_floor "parallel destage image differs from sequential" byte_equal;

  (* -- c) checkpoint fold: hot-path enqueue vs synchronous fold ---- *)
  subsection "E-par-c | background fold: hot-path cost of enqueue vs sync fold";
  let fold_dev, fold_entries =
    let fdisk = mk_disk ~nblocks:8192 () in
    let dev = Device.of_disk fdisk in
    ignore (ok (Base.mkfs dev ~ninodes:1024 ()));
    let b =
      ok (Base.mount ~config:{ Base.default_config with Base.commit_interval = max_int } dev)
    in
    let ops =
      List.filter
        (fun op -> not (Op.is_sync op))
        (W.ops W.Metadata (Rae_util.Rng.create 13L) ~count:(sc 2500))
    in
    ( dev,
      List.filter Op.is_mutation ops
      |> List.mapi (fun seq op -> { Op.op; outcome = Base.exec b op; seq }) )
  in
  let nentries = List.length fold_entries in
  let batch = 32 in
  let fold_rep ~async () =
    let ck = Checkpoint.create ~shadow_checks:false ~fold_interval:batch fold_dev in
    (* Queue cap sized to the trace: the production cap (4) exists to
       bound memory; here it would just re-serialize the arms through
       backpressure and measure the worker, not the enqueue. *)
    if async then Checkpoint.start_async_fold ck ~queue_cap:((nentries / batch) + 2);
    ok (Checkpoint.cut ck ~window:0 ~fds:[] ~next_seq:0 ~commit_seq:0L);
    let arr = Array.of_list fold_entries in
    Gc.major ();
    let t0 = Unix.gettimeofday () in
    let i = ref 0 in
    while !i < nentries do
      let hi = min nentries (!i + batch) in
      Checkpoint.fold ck ~entries:(Array.to_list (Array.sub arr !i (hi - !i))) ~next_seq:hi;
      i := hi
    done;
    let hot = Unix.gettimeofday () -. t0 in
    let t1 = Unix.gettimeofday () in
    Checkpoint.checkpoint_barrier ck;
    let drain = Unix.gettimeofday () -. t1 in
    Checkpoint.shutdown ck;
    (hot, drain)
  in
  ignore (fold_rep ~async:false ());
  ignore (fold_rep ~async:true ());
  let sync_hot = ref [] and async_hot = ref [] and async_drain = ref [] in
  for _ = 1 to reps 5 do
    let h, _ = fold_rep ~async:false () in
    sync_hot := h :: !sync_hot;
    let h, d = fold_rep ~async:true () in
    async_hot := h :: !async_hot;
    async_drain := d :: !async_drain
  done;
  let med l =
    let sorted = List.sort compare !l in
    List.nth sorted (List.length sorted / 2)
  in
  let t_sync = med sync_hot and t_enq = med async_hot and t_drain = med async_drain in
  Printf.printf "  sync fold (hot path)    : %8.2f ms for %d ops\n" (t_sync *. 1e3) nentries;
  Printf.printf "  async enqueue (hot path): %8.2f ms  (%.1fx cheaper; drain %.2f ms)\n"
    (t_enq *. 1e3) (t_sync /. t_enq) (t_drain *. 1e3);
  json_note ~sec:"E-par" ~name:"fold-sync-hot" ~unit:"s" t_sync;
  json_note ~sec:"E-par" ~name:"fold-enqueue-hot" ~unit:"s" t_enq;
  json_note ~sec:"E-par" ~name:"fold-drain" ~unit:"s" t_drain;
  perf_floor
    (Printf.sprintf "hot-path enqueue %.2f ms exceeds the synchronous fold %.2f ms" (t_enq *. 1e3)
       (t_sync *. 1e3))
    (t_enq <= t_sync);

  (* -- d) crash sweep across domains ------------------------------ *)
  subsection "E-par-d | crash sweep: 1 vs 4 domains, plus the exhaustive space";
  let cfg =
    {
      CE.default_config with
      CE.prefix_stride = (if !quick then 2 else 1);
      samples_per_epoch = (if !quick then 6 else 12);
    }
  in
  let nsample = sc 120 in
  let sweep_stats = Array.make 2 CE.empty_stats in
  let sweep_arm i pool () = sweep_stats.(i) <- CE.sweep_bounded ~cfg ?pool ~max_workloads:nsample () in
  let smed =
    wall_interleaved ~reps:(reps 3) [| sweep_arm 0 None; sweep_arm 1 (Some pool4) |]
  in
  let fingerprint (s : CE.stats) =
    ( s.CE.s_workloads,
      s.CE.s_points,
      s.CE.s_consistent,
      s.CE.s_repaired,
      List.sort compare
        (List.map (fun d -> (d.CE.d_label, d.CE.d_key, d.CE.d_reason)) s.CE.s_diverging) )
  in
  Printf.printf "  sweep seq   (%3d workloads): %8.2f s\n" nsample smed.(0);
  Printf.printf "  sweep par=4 (%3d workloads): %8.2f s  (%.2fx)\n" nsample smed.(1)
    (smed.(0) /. smed.(1));
  json_note ~sec:"E-par" ~name:"sweep-seq" ~unit:"s" smed.(0);
  json_note ~sec:"E-par" ~name:"sweep-par4" ~unit:"s" smed.(1);
  hard_floor "parallel sweep verdicts differ from sequential"
    (fingerprint sweep_stats.(0) = fingerprint sweep_stats.(1));
  (* The exhaustive arm: every deduplicated bounded workload.  Skipped
     under --quick (it is the single most expensive measurement in the
     harness); on full runs the 0-diverging floor covers the whole
     space, not a sample. *)
  if !quick then Printf.printf "  exhaustive sweep skipped under --quick\n"
  else begin
    let t0 = Unix.gettimeofday () in
    let full = CE.sweep_full ~cfg ~pool:pool4 () in
    let wall = Unix.gettimeofday () -. t0 in
    let diverging = List.length full.CE.s_diverging in
    Printf.printf "  exhaustive  (%d workloads, %d points): %.1f s, %d diverging\n"
      full.CE.s_workloads full.CE.s_points wall diverging;
    json_note ~sec:"E-par" ~name:"full-sweep-workloads" ~unit:"count"
      (float_of_int full.CE.s_workloads);
    json_note ~sec:"E-par" ~name:"full-sweep-points" ~unit:"count" (float_of_int full.CE.s_points);
    json_note ~sec:"E-par" ~name:"full-sweep-wall" ~unit:"s" wall;
    json_note ~sec:"E-par" ~name:"full-sweep-diverging" ~unit:"count" (float_of_int diverging);
    hard_floor
      (Printf.sprintf "exhaustive sweep: %d diverging crash points" diverging)
      (diverging = 0);
    hard_floor
      (Printf.sprintf "exhaustive sweep covered only %d workloads" full.CE.s_workloads)
      (full.CE.s_workloads > 2000)
  end;
  let pstats = Pool.stats pool4 in
  Printf.printf "  pool4: %d chunks run, %d steals, %d parallel batches\n" pstats.Pool.tasks_run
    pstats.Pool.steals pstats.Pool.batches;
  json_note ~sec:"E-par" ~name:"pool4-steals" ~unit:"count" (float_of_int pstats.Pool.steals);
  Pool.shutdown pool2;
  Pool.shutdown pool4;
  if !floor_violations <> [] then begin
    List.iter (fun v -> Printf.eprintf "E-par: %s\n" v) (List.rev !floor_violations);
    exit 1
  end;
  print_string
    "\nExpected shape: par = seq everywhere it must be — fsck findings, destaged\n\
     images (byte-equal), crash verdict sets — while the wall-clock side scales:\n\
     fsck >= 1.5x at 4 domains, the hot path pays an enqueue instead of a fold,\n\
     and the exhaustive bounded crash space still has zero diverging points.\n\
     On hosts without >= 2 recommended domains the perf floors are reported\n\
     but not enforced (there is nothing to win on one core).\n"

let () =
  Printf.printf "RAE / Shadow Filesystems — benchmark harness\n";
  Printf.printf "(HotStorage '24 reproduction; see EXPERIMENTS.md for the experiment index)\n";
  let rec parse json sels = function
    | [] -> (json, List.rev sels)
    | "--json" :: path :: rest -> parse (Some path) sels rest
    | [ "--json" ] ->
        prerr_endline "bench: --json requires a path";
        exit 2
    | "--quick" :: rest ->
        quick := true;
        parse json sels rest
    | sel :: rest -> parse json (sel :: sels) rest
  in
  let json_path, sels = parse None [] (List.tl (Array.to_list Sys.argv)) in
  if !quick then Printf.printf "(--quick: scaled-down smoke run; numbers are noise)\n";
  let want name = sels = [] || List.mem name sels in
  if want "e1" then e1_table1 ();
  if want "e2" then e2_fig1 ();
  if want "e3" then begin
    e3_micro ();
    e3_base_vs_shadow ()
  end;
  if want "e4" then e4_record_overhead ();
  if want "e5" then e5_recovery_latency ();
  if want "e-ckpt" then e_ckpt ();
  if want "e-shadow" then e_shadow ();
  if want "e6" then e6_check_cost ();
  if want "e7" then e7_lookup_depth ();
  if want "e8" then e8_availability ();
  if want "e9" then e9_cross_check ();
  if want "e10" then e10_cache_policy ();
  if want "e11" then e11_vs_restart_only ();
  if want "e-alloc" then e_alloc ();
  if want "e-txn" then e_txn ();
  if want "e-oplog" then e_oplog ();
  if want "e-obs" then e_obs ();
  if want "e-srv" then e_srv ();
  if want "e-lint" then e_lint ();
  if want "e-crash" then e_crash ();
  if want "e-par" then e_par ();
  Printf.printf "\nAll requested benches complete.\n";
  Option.iter
    (fun path ->
      try write_json path
      with Sys_error msg ->
        Printf.eprintf "bench: cannot write JSON results: %s\n" msg;
        exit 1)
    json_path
