(** Warm-shadow checkpointing: O(Δ) recovery replay.

    Cold recovery reconstructs application-visible state by replaying the
    {e whole} recorded op window against the trusted on-disk state S0, so
    its latency grows linearly with the window.  This module keeps a
    {b warm shadow}: a background {!Rae_shadowfs.Shadow} instance that is

    - {b cut} (re-based) at journal-commit boundaries — a fresh read-only
      attach to the just-committed S0 plus the S0 descriptor table, and
    - {b folded} forward every [fold_interval] recorded operations, by
      constrained re-execution of the oplog suffix it has not seen yet.

    On a detected bug, {!seed} exports the warm instance's state (COW
    overlay + fd table + clock, {!Rae_shadowfs.Shadow.export_state}) into
    a fresh shadow, and recovery replays only the Δ suffix past the fold
    {!cursor}.  Because the warm overlay holds exactly the blocks dirtied
    since the last commit, the hand-off download stays precisely the
    differential set — identical to what cold replay would reconstruct.

    The warm shadow never writes to disk: it is an ordinary shadow over a
    read-only device handle, and this module is under the shadow-purity
    lint rule.  Any fold or seed failure {e poisons} the checkpoint
    (drops the warm instance); the controller then falls back to cold
    recovery, so checkpointing can only ever change recovery latency,
    never its semantics. *)

type t

type stats = {
  cuts : int;  (** re-bases onto a freshly committed S0 *)
  folds : int;  (** background fold batches applied to the warm shadow *)
  folded_ops : int;  (** operations folded across all batches *)
  fold_divergences : int;  (** constrained-mode mismatches seen while folding *)
  seeded : int;  (** recoveries seeded from the checkpoint *)
  fallbacks : int;  (** seeded recoveries that fell back to the cold path *)
  poisons : int;  (** checkpoints discarded after a fold/seed failure *)
}

val create :
  ?tracer:Rae_obs.Tracer.t ->
  ?events:Rae_obs.Events.t ->
  ?fast_paths:bool ->
  shadow_checks:bool ->
  fold_interval:int ->
  Rae_block.Device.t ->
  t
(** No checkpoint exists until the first {!cut}.  [shadow_checks] is the
    controller's shadow-check policy; the warm instance always attaches
    without fsck (the fold's continuous validation substitutes).
    [fast_paths] (default [true]) controls the warm shadow's caching fast
    paths — disabling it reproduces the naive shadow, which the benches
    use to price the fold before/after the fast-path work.  [events] is
    the flight recorder: cuts, folds and poisons land in it as
    [Ckpt_cut]/[Ckpt_fold]/[Ckpt_poison] events. *)

val cut :
  t ->
  window:int ->
  fds:(Rae_vfs.Types.fd * Rae_vfs.Types.ino * Rae_vfs.Types.open_flags) list ->
  next_seq:int ->
  commit_seq:int64 ->
  (unit, string) result
(** Re-base the checkpoint on the current on-disk state.  Sound only at a
    journal-commit boundary, so it {b refuses} when [window > 0]: a
    non-empty window means the disk does not yet reflect the recorded
    suffix and a cut would capture an S0 the oplog is not relative to.
    [fds] is the S0 descriptor snapshot, [next_seq] the oplog's next
    sequence number, [commit_seq] the journal's durable commit sequence.
    On error the previous checkpoint (if any) is poisoned. *)

val due : t -> next_seq:int -> bool
(** Has the unfolded suffix reached [fold_interval]?  False when no valid
    checkpoint exists. *)

val fold : t -> entries:Rae_vfs.Op.recorded list -> next_seq:int -> unit
(** Advance the warm shadow through the oplog entries with
    [seq >= cursor] (constrained mode, divergences counted, same
    keep-going policy as recovery replay), then move the cursor to
    [next_seq].  A {!Rae_shadowfs.Shadow.Violation} poisons the
    checkpoint instead of escaping — the hot path never observes fold
    failures.  Emits a [ckpt-fold] span. *)

val seed : t -> (Rae_shadowfs.Shadow.t * int, string) result
(** Build a fresh shadow from the warm instance's exported state and
    return it with the fold cursor: recovery replays only entries with
    [seq >= cursor].  The warm instance itself is untouched (a failed
    recovery can seed again).  Fails, poisoning the checkpoint, if no
    valid checkpoint exists or the state import is rejected. *)

val poison : t -> unit
(** Discard the warm instance (counted when one existed).  Subsequent
    recoveries take the cold path until the next {!cut}.  In async mode,
    discards the queued folds and waits out the in-flight one first. *)

(** {2 Background (off-domain) folding}

    With {!start_async_fold}, {!fold} no longer executes the window on
    the calling (hot-path) domain: it snapshots the request into a
    bounded queue and returns, and a dedicated background domain drains
    the queue and runs the folds ([par-fold] spans).  The hot path pays
    only the enqueue — unless the queue is at capacity, where it blocks
    (backpressure) rather than let the backlog grow without bound.

    Lifecycle safety is a generation guard: every {!cut}/{!poison} bumps
    the warm-shadow generation, each request records the generation it
    was scheduled against, and the worker discards stale requests — a
    window recorded against a previous warm instance is never folded
    into a fresh one (whose fast-path caches it could silently corrupt;
    oplog sequence numbers restart across contained reboots, so they
    cannot catch this).  {!cut} and {!poison} discard the queue and wait
    out the in-flight fold; {!seed} awaits {!checkpoint_barrier} so
    recovery starts from the furthest recorded window. *)

val start_async_fold : t -> queue_cap:int -> unit
(** Spawn the background fold domain (idempotent).  [queue_cap] bounds
    the request queue; enqueues at capacity block the caller. *)

val async_fold : t -> bool
(** Is a background fold domain attached? *)

val checkpoint_barrier : t -> unit
(** Block until every queued fold request has been executed and the
    worker is idle.  No-op in synchronous mode. *)

val shutdown : t -> unit
(** Drain the queue (barrier), stop and join the background domain.
    Afterwards {!fold} degrades to the synchronous path.  Idempotent;
    no-op in synchronous mode. *)

type fold_queue_stats = {
  fq_depth : int;  (** current queue depth *)
  fq_hwm : int;  (** high-water mark since the last reset *)
  fq_enqueued : int;  (** fold windows enqueued *)
  fq_blocked : int;  (** enqueues stalled by backpressure *)
  fq_dropped : int;  (** stale-generation windows discarded *)
}

val fold_queue : t -> fold_queue_stats option
(** Queue counters; [None] in synchronous mode. *)

val note_fallback : t -> unit
(** Record that a seeded recovery fell back to the cold path. *)

val valid : t -> bool
val cursor : t -> int

val base_seq : t -> int64
(** Journal commit sequence of the S0 the checkpoint is based on. *)

val stats : t -> stats
val reset_stats : t -> unit

val register_obs : Rae_obs.Metrics.t -> t -> unit
(** Register the [rae_ckpt_*] counter/gauge family; in async mode also
    the [rae_par_fold_*] queue family (depth, backlog high-water mark,
    enqueued/backpressure/dropped totals). *)
