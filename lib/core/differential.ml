open Rae_vfs
module Base = Rae_basefs.Base
module Shadow = Rae_shadowfs.Shadow
module Detector = Rae_basefs.Detector

type mismatch = {
  m_index : int;
  m_op : Op.t;
  m_base : Op.outcome;
  m_shadow : Op.outcome;
}

type result = {
  ops_run : int;
  mismatches : mismatch list;
  base_crashed : string option;
  shadow_violation : string option;
  final_state_equal : bool;
}

let agreement r =
  r.mismatches = [] && r.base_crashed = None && r.shadow_violation = None && r.final_state_equal

let pp_mismatch ppf m =
  Format.fprintf ppf "op %d %a: base %a, shadow %a" m.m_index Op.pp m.m_op Op.pp_outcome m.m_base
    Op.pp_outcome m.m_shadow

let pp_result ppf r =
  Format.fprintf ppf "@[<v>differential: %d ops, %d mismatches%s%s, final states %s@,"
    r.ops_run (List.length r.mismatches)
    (match r.base_crashed with Some m -> ", base crashed: " ^ m | None -> "")
    (match r.shadow_violation with Some m -> ", shadow violation: " ^ m | None -> "")
    (if r.final_state_equal then "equal" else "DIFFER");
  List.iter (fun m -> Format.fprintf ppf "  %a@," pp_mismatch m) r.mismatches;
  Format.fprintf ppf "@]"

(* Walk two trees through their public APIs and compare contents.  The
   walk is generic over a read-only [view] so it can compare base vs
   shadow (the differential harness) and shadow vs shadow (the
   checkpoint-equivalence property). *)
type view = {
  v_readdir : Path.t -> (string list, Errno.t) Stdlib.result;
  v_stat : Path.t -> (Types.stat, Errno.t) Stdlib.result;
  v_read : Path.t -> int -> string option;  (* open / pread whole / close *)
  v_readlink : Path.t -> (string, Errno.t) Stdlib.result;
  (* Descriptor tables are compared by count + probe, not by building and
     sorting snapshot lists on both sides. *)
  v_fd_count : unit -> int;
  v_fd_iter : (Types.fd -> Types.ino -> Types.open_flags -> unit) -> unit;
  v_fd_lookup : Types.fd -> (Types.ino * Types.open_flags) option;
}

let base_view base =
  {
    v_readdir = (fun p -> Base.readdir base p);
    v_stat = (fun p -> Base.stat base p);
    v_read =
      (fun p len ->
        match Base.openf base p Types.flags_ro with
        | Ok fd ->
            let data = Base.pread base fd ~off:0 ~len in
            ignore (Base.close base fd);
            Result.to_option data
        | Error _ -> None);
    v_readlink = (fun p -> Base.readlink base p);
    v_fd_count = (fun () -> Base.fd_count base);
    v_fd_iter = (fun f -> Base.fd_iter base f);
    v_fd_lookup = (fun fd -> Base.fd_lookup base fd);
  }

let shadow_view shadow =
  {
    v_readdir = (fun p -> Shadow.readdir shadow p);
    v_stat = (fun p -> Shadow.stat shadow p);
    v_read =
      (fun p len ->
        match Shadow.openf shadow p Types.flags_ro with
        | Ok fd ->
            let data = Shadow.pread shadow fd ~off:0 ~len in
            ignore (Shadow.close shadow fd);
            Result.to_option data
        | Error _ -> None);
    v_readlink = (fun p -> Shadow.readlink shadow p);
    v_fd_count = (fun () -> Shadow.fd_count shadow);
    v_fd_iter = (fun f -> Shadow.fd_iter shadow f);
    v_fd_lookup = (fun fd -> Shadow.fd_lookup shadow fd);
  }

(* Equal sizes + left ⊆ right (keys are unique) ⇒ equal tables, so one
   iterate-and-probe pass replaces two sorted snapshot lists. *)
let fds_equal l r =
  let exception Differ in
  l.v_fd_count () = r.v_fd_count ()
  &&
  match
    l.v_fd_iter (fun fd ino flags ->
        match r.v_fd_lookup fd with
        | Some (ino', flags') when ino = ino' && flags = flags' -> ()
        | _ -> raise Differ)
  with
  | () -> true
  | exception Differ -> false

let views_equal l r =
  let exception Differ in
  let rec walk path =
    match (l.v_readdir path, r.v_readdir path) with
    | Ok b, Ok s ->
        if b <> s then raise Differ;
        List.iter
          (fun name ->
            let child = Path.append path name in
            match (l.v_stat child, r.v_stat child) with
            | Ok b, Ok s ->
                if not (Types.stat_equal b s) then raise Differ;
                (match b.Types.st_kind with
                | Types.Directory -> walk child
                | Types.Regular ->
                    let get v =
                      match v.v_read child b.Types.st_size with
                      | Some data -> data
                      | None -> raise Differ
                    in
                    if get l <> get r then raise Differ
                | Types.Symlink ->
                    (* stat follows; a symlink kind here is unreachable,
                       but compare targets via readlink when both agree. *)
                    if l.v_readlink child <> r.v_readlink child then raise Differ)
            | Error e1, Error e2 when Errno.equal e1 e2 ->
                (* A dangling symlink: compare the link itself. *)
                if l.v_readlink child <> r.v_readlink child then raise Differ
            | _ -> raise Differ)
          b
    | Error e1, Error e2 when Errno.equal e1 e2 -> ()
    | _ -> raise Differ
  in
  match walk [] with () -> fds_equal l r | exception Differ -> false

let states_equal base shadow = views_equal (base_view base) (shadow_view shadow)
let shadow_states_equal a b = views_equal (shadow_view a) (shadow_view b)

(* ---- crash-image equivalence (the rae_crash oracle) ---- *)

let spec_view sp =
  let module Spec = Rae_specfs.Spec in
  {
    v_readdir = (fun p -> Spec.readdir sp p);
    v_stat = (fun p -> Spec.stat sp p);
    v_read =
      (fun p len ->
        match Spec.openf sp p Types.flags_ro with
        | Ok fd ->
            let data = Spec.pread sp fd ~off:0 ~len in
            ignore (Spec.close sp fd);
            Result.to_option data
        | Error _ -> None);
    v_readlink = (fun p -> Spec.readlink sp p);
    v_fd_count = (fun () -> List.length (Spec.open_fds sp));
    v_fd_iter =
      (fun f -> List.iter (fun (fd, ino, flags) -> f fd ino flags) (Spec.open_fds sp));
    v_fd_lookup =
      (fun fd ->
        List.find_map
          (fun (fd', ino, flags) -> if fd = fd' then Some (ino, flags) else None)
          (Spec.open_fds sp));
  }

let crash_states_equal ~dirty spec shadow =
  (* Compare a recovered crash image (under the shadow) against one legal
     durable state (a spec snapshot at a journal-commit boundary).

     Descriptor tables are volatile — a power cut forgets them — so they
     are not compared.  Metadata is journal-protected and therefore
     compared strictly; file contents take the ordered-data route to the
     medium outside the transaction, so for inodes the suffix beyond the
     crash point's durable bound touched ([dirty]) the bytes may legally
     be torn: their content (and, for directories freed-and-reused in
     that suffix, the subtree) is skipped, exactly the data=ordered
     contract B3 checks against. *)
  let l = spec_view spec and r = shadow_view shadow in
  let exception Differ in
  let rec walk path =
    match (l.v_readdir path, r.v_readdir path) with
    | Ok b, Ok s ->
        if b <> s then raise Differ;
        List.iter
          (fun name ->
            let child = Path.append path name in
            match (l.v_stat child, r.v_stat child) with
            | Ok b, Ok s ->
                if not (Types.stat_equal b s) then raise Differ;
                let torn = dirty b.Types.st_ino in
                (match b.Types.st_kind with
                | Types.Directory -> if not torn then walk child
                | Types.Regular ->
                    if not torn then
                      let get v =
                        match v.v_read child b.Types.st_size with
                        | Some data -> data
                        | None -> raise Differ
                      in
                      if get l <> get r then raise Differ
                | Types.Symlink ->
                    if (not torn) && l.v_readlink child <> r.v_readlink child then raise Differ)
            | Error e1, Error e2 when Errno.equal e1 e2 ->
                if l.v_readlink child <> r.v_readlink child then raise Differ
            | _ -> raise Differ)
          b
    | Error e1, Error e2 when Errno.equal e1 e2 -> ()
    | _ -> raise Differ
  in
  match walk [] with () -> true | exception Differ -> false

let run ?(nblocks = 8192) ?(ninodes = 1024) ?base_config ?bugs ops =
  let fresh () =
    let disk =
      Rae_block.Disk.create ~latency:Rae_block.Disk.zero_latency
        ~block_size:Rae_format.Layout.block_size ~nblocks ()
    in
    let dev = Rae_block.Device.of_disk disk in
    match Rae_basefs.Base.mkfs dev ~ninodes () with
    | Ok () -> dev
    | Error msg -> invalid_arg ("Differential.run: mkfs failed: " ^ msg)
  in
  let base_dev = fresh () and shadow_dev = fresh () in
  let base =
    match Base.mount ?config:base_config ?bugs base_dev with
    | Ok b -> b
    | Error msg -> invalid_arg ("Differential.run: mount failed: " ^ msg)
  in
  let shadow =
    match Shadow.attach shadow_dev with
    | Ok s -> s
    | Error msg -> invalid_arg ("Differential.run: shadow attach failed: " ^ msg)
  in
  let mismatches = ref [] in
  let base_crashed = ref None and shadow_violation = ref None in
  let ran = ref 0 in
  (try
     List.iteri
       (fun i op ->
         let b_out =
           match Base.exec base op with
           | o -> o
           | exception Detector.Base_bug { bug; msg } ->
               base_crashed := Some (Printf.sprintf "[%s] %s (at op %d)" bug msg i);
               raise Exit
           | exception Detector.Hang { bug; msg } ->
               base_crashed := Some (Printf.sprintf "hang [%s] %s (at op %d)" bug msg i);
               raise Exit
           | exception Detector.Validation_failed { context; msg } ->
               base_crashed := Some (Printf.sprintf "validation [%s] %s (at op %d)" context msg i);
               raise Exit
         in
         let s_out =
           match Shadow.exec shadow op with
           | o -> o
           | exception Shadow.Violation msg ->
               shadow_violation := Some (Printf.sprintf "%s (at op %d)" msg i);
               raise Exit
         in
         incr ran;
         if not (Op.outcome_equal b_out s_out) then
           mismatches := { m_index = i; m_op = op; m_base = b_out; m_shadow = s_out } :: !mismatches)
       ops
   with Exit -> ());
  let final_state_equal =
    if !base_crashed = None && !shadow_violation = None then states_equal base shadow else false
  in
  {
    ops_run = !ran;
    mismatches = List.rev !mismatches;
    base_crashed = !base_crashed;
    shadow_violation = !shadow_violation;
    final_state_equal;
  }

let run_seeded ?(count = 1000) ?profile ~seed () =
  let rng = Rae_util.Rng.create seed in
  let ops =
    match profile with
    | Some p -> Rae_workload.Workload.ops p rng ~count
    | None -> Rae_workload.Workload.uniform rng ~count
  in
  run ops
