open Rae_vfs
module Base = Rae_basefs.Base
module Detector = Rae_basefs.Detector

type t = {
  base : Base.t;
  mutable window : int;  (* acknowledged ops since the last commit *)
  mutable s_ops : int;
  mutable s_restarts : int;
  mutable s_lost : int;
}

type stats = { ops : int; restarts : int; lost_window_ops : int }

let make base =
  let t = { base; window = 0; s_ops = 0; s_restarts = 0; s_lost = 0 } in
  Base.on_commit base (fun ~commit_seq:_ -> t.window <- 0);
  t

let restart t =
  t.s_restarts <- t.s_restarts + 1;
  t.s_lost <- t.s_lost + t.window;
  t.window <- 0;
  (* Contained reboot only: back to S0, descriptors and the volatile
     window are simply gone. *)
  (match Base.contained_reboot t.base with Ok () -> () | Error _ -> ());
  Error Errno.EIO

let exec t op =
  t.s_ops <- t.s_ops + 1;
  match Base.exec t.base op with
  | outcome ->
      Detector.clear (Base.detector t.base);
      (match outcome with
      | Ok _ when Op.is_mutation op -> t.window <- t.window + 1
      | Ok _ | Error _ -> ());
      outcome
  | exception Detector.Base_bug _ -> restart t
  | exception Detector.Hang _ -> restart t
  | exception Detector.Validation_failed _ -> restart t

let stats t = { ops = t.s_ops; restarts = t.s_restarts; lost_window_ops = t.s_lost }
