open Rae_vfs
module Base = Rae_basefs.Base
module Detector = Rae_basefs.Detector
module Shadow = Rae_shadowfs.Shadow

type policy = {
  treat_warnings_as_errors : bool;
  fsck_before_recovery : bool;
  cross_check : bool;
  abort_on_discrepancy : bool;
  max_recovery_attempts : int;
  shadow_checks : bool;
  ckpt_enabled : bool;
  ckpt_fold_interval : int;
  ckpt_fast_paths : bool;
  slow_op_ns : int;
  par_domains : int;
      (* > 1: create a domain pool of this size and use it for recovery
         fsck and replay destage, move the checkpoint fold onto a
         background domain, and expose the pool to callers.  1 (default)
         keeps every path on the calling domain, bit-for-bit. *)
}

let default_policy =
  {
    treat_warnings_as_errors = true;
    fsck_before_recovery = true;
    cross_check = true;
    abort_on_discrepancy = false;
    max_recovery_attempts = 3;
    shadow_checks = true;
    ckpt_enabled = false;
    ckpt_fold_interval = 32;
    ckpt_fast_paths = true;
    slow_op_ns = 10_000_000;
    par_domains = 1;
  }

type stats = {
  ops : int;
  recoveries : int;
  recoveries_failed : int;
  discrepancies : int;
  window : int;
  max_window : int;
  total_recorded : int;
  total_discarded : int;
}

(* §3.2 pipeline steps, in order; each gets a span, a [Report.phase] entry
   and a latency histogram.  [delegated-sync] runs after the report is
   built, so it appears in spans and histograms but not in [r_phases].
   A checkpoint-seeded recovery runs [seed] in place of [shadow-attach] +
   [fd-reinstate]; a cold recovery never emits [seed]. *)
let phase_names =
  [
    "contained-reboot";
    "shadow-attach";
    "fd-reinstate";
    "seed";
    "constrained-replay";
    "inflight-autonomous";
    "metadata-download";
    "resume";
    "delegated-sync";
  ]

type t = {
  base : Base.t;
  device : Rae_block.Device.t;
  policy : policy;
  oplog : Oplog.t;
  tracer : Rae_obs.Tracer.t option;
  now : unit -> int64;
  recovery_hist : Rae_obs.Metrics.histogram;
  ph_hists : (string * Rae_obs.Metrics.histogram) list;
  ckpt : Checkpoint.t option;
  pool : Rae_par.Pool.t option;  (* par_domains > 1; shared with base + recovery fsck *)
  events : Rae_obs.Events.t option;  (* flight recorder, shared with base/ckpt/srv *)
  run_id : string;
  rev : string;  (* resolved once; "" when bundles are off *)
  bundle_dir : string option;
  mutable bundle_seq : int;
  mutable bundle_log : string list;  (* written bundle paths, newest first *)
  mutable bundle_extra : (unit -> (string * Rae_obs.Jsonx.t) list) option;
  mutable metrics : Rae_obs.Metrics.t option;  (* set by register_obs, embedded in bundles *)
  mutable in_recovery : bool;
  mutable last_commit_seq : int64;
  mutable committed_during_op : bool;
  mutable degraded : string option;
  mutable recovery_log : Report.recovery list;  (* newest first *)
  mutable s_ops : int;
  mutable s_recoveries : int;
  mutable s_failed : int;
  mutable s_discrepancies : int;
  mutable s_bundles : int;
  mutable s_bundle_errors : int;
}

let make ?(policy = default_policy) ?tracer ?events ?bundle_dir ?(run_id = "") ~device base =
  let now =
    match tracer with
    | Some tr -> fun () -> Rae_obs.Tracer.now tr
    | None -> fun () -> Int64.of_float (Sys.time () *. 1e9)
  in
  (* The recorder shares the controller's clock so recovery spans and op
     events land on one timeline. *)
  (match events with
  | Some ev -> Rae_obs.Events.set_clock ev (fun () -> Int64.to_int (now ()))
  | None -> ());
  let pool =
    if policy.par_domains > 1 then Some (Rae_par.Pool.create ~domains:policy.par_domains ())
    else None
  in
  let ckpt =
    if policy.ckpt_enabled then begin
      let c =
        Checkpoint.create ?tracer ?events ~fast_paths:policy.ckpt_fast_paths
          ~shadow_checks:policy.shadow_checks ~fold_interval:policy.ckpt_fold_interval device
      in
      (* With a pool in play the fold moves off the hot path entirely: the
         record step enqueues, a dedicated domain folds.  The queue stays
         shallow — each entry pins an oplog-suffix snapshot, and recovery's
         seed phase must drain whatever is left. *)
      if policy.par_domains > 1 then Checkpoint.start_async_fold c ~queue_cap:4;
      Some c
    end
    else None
  in
  let t =
    {
      base;
      device;
      policy;
      oplog = Oplog.create ();
      tracer;
      now;
      recovery_hist = Rae_obs.Metrics.histogram ();
      ph_hists = List.map (fun n -> (n, Rae_obs.Metrics.histogram ())) phase_names;
      ckpt;
      pool;
      events;
      run_id;
      rev = (match bundle_dir with Some _ -> Rae_obs.Blackbox.git_rev () | None -> "");
      bundle_dir;
      bundle_seq = 0;
      bundle_log = [];
      bundle_extra = None;
      metrics = None;
      in_recovery = false;
      last_commit_seq = 0L;
      committed_during_op = false;
      degraded = None;
      recovery_log = [];
      s_ops = 0;
      s_recoveries = 0;
      s_failed = 0;
      s_discrepancies = 0;
      s_bundles = 0;
      s_bundle_errors = 0;
    }
  in
  (match tracer with Some tr -> Base.set_tracer base tr | None -> ());
  (match events with Some ev -> Base.set_events base ev | None -> ());
  (* Contained reboots replay the journal with the pool's domains. *)
  (match pool with Some _ -> Base.set_par_pool base pool | None -> ());
  Base.on_commit base (fun ~commit_seq ->
      t.committed_during_op <- true;
      t.last_commit_seq <- commit_seq);
  (* Initial cut: mount time is a commit boundary (empty window over S0),
     so checkpointed controllers are warm before the first commit too. *)
  (match ckpt with
  | Some c -> ignore (Checkpoint.cut c ~window:0 ~fds:[] ~next_seq:0 ~commit_seq:0L)
  | None -> ());
  t

let base t = t.base
let pool t = t.pool
let degraded t = t.degraded
let events t = t.events
let bundle_dir t = t.bundle_dir

(* Derived liveness: FAILSTOP dominates, then an in-progress recovery,
   then a last recovery that left cross-check discrepancies. *)
let health t =
  if t.degraded <> None then Rae_obs.Events.Failstop
  else if t.in_recovery then Rae_obs.Events.Recovering
  else
    match t.recovery_log with
    | r :: _ when r.Report.r_discrepancies <> [] -> Rae_obs.Events.Degraded
    | _ -> Rae_obs.Events.Healthy

let set_bundle_context t f = t.bundle_extra <- Some f
let bundles t = List.rev t.bundle_log

(* ---- black-box bundle assembly ----

   The obs layer owns only the container ({!Rae_obs.Blackbox}); the
   content — report, checkpoint stats, journal window, policy — is
   serialized here where the core types live. *)

module J = Rae_obs.Jsonx

let policy_json p =
  J.Obj
    [
      ("treat_warnings_as_errors", J.Bool p.treat_warnings_as_errors);
      ("fsck_before_recovery", J.Bool p.fsck_before_recovery);
      ("cross_check", J.Bool p.cross_check);
      ("abort_on_discrepancy", J.Bool p.abort_on_discrepancy);
      ("max_recovery_attempts", J.Int p.max_recovery_attempts);
      ("shadow_checks", J.Bool p.shadow_checks);
      ("ckpt_enabled", J.Bool p.ckpt_enabled);
      ("ckpt_fold_interval", J.Int p.ckpt_fold_interval);
      ("ckpt_fast_paths", J.Bool p.ckpt_fast_paths);
      ("slow_op_ns", J.Int p.slow_op_ns);
      ("par_domains", J.Int p.par_domains);
    ]

let report_json (r : Report.recovery) =
  let outcome, error =
    match r.Report.r_outcome with
    | Report.Recovered -> ("recovered", J.Null)
    | Report.Recovery_failed msg -> ("failed", J.Str msg)
  in
  J.Obj
    [
      ("trigger", J.Str (Report.trigger_to_string r.Report.r_trigger));
      ("outcome", J.Str outcome);
      ("error", error);
      ("window", J.Int r.Report.r_window);
      ("replayed", J.Int r.Report.r_replayed);
      ("skipped", J.Int r.Report.r_skipped);
      ( "discrepancies",
        J.List
          (List.map
             (fun d ->
               J.Obj
                 [
                   ("seq", J.Int d.Report.d_seq);
                   ("op", J.Str (Op.kind_to_string (Op.kind d.Report.d_op)));
                 ])
             r.Report.r_discrepancies) );
      ("handoff_blocks", J.Int r.Report.r_handoff_blocks);
      ("delegated_sync", J.Bool r.Report.r_delegated_sync);
      ("seeded", J.Bool r.Report.r_seeded);
      ("wall_seconds", J.Float r.Report.r_wall_seconds);
      ( "phases",
        J.List
          (List.map
             (fun ph ->
               J.Obj
                 [
                   ("name", J.Str ph.Report.ph_name);
                   ("ns", J.Int (Int64.to_int ph.Report.ph_ns));
                 ])
             r.Report.r_phases) );
    ]

let ckpt_json t =
  match t.ckpt with
  | None -> J.Null
  | Some c ->
      let s = Checkpoint.stats c in
      J.Obj
        [
          ("valid", J.Bool (Checkpoint.valid c));
          ("cursor", J.Int (Checkpoint.cursor c));
          ("base_seq", J.Int (Int64.to_int (Checkpoint.base_seq c)));
          ("cuts", J.Int s.Checkpoint.cuts);
          ("folds", J.Int s.Checkpoint.folds);
          ("folded_ops", J.Int s.Checkpoint.folded_ops);
          ("fold_divergences", J.Int s.Checkpoint.fold_divergences);
          ("seeded", J.Int s.Checkpoint.seeded);
          ("fallbacks", J.Int s.Checkpoint.fallbacks);
          ("poisons", J.Int s.Checkpoint.poisons);
        ]

let journal_json t =
  J.Obj
    [
      ("window", J.Int (Oplog.length t.oplog));
      ("next_seq", J.Int (Oplog.next_seq t.oplog));
      ("commit_seq", J.Int (Int64.to_int t.last_commit_seq));
      ("open_fds", J.Int (List.length (Oplog.fd_snapshot t.oplog)));
      ("total_recorded", J.Int (Oplog.total_recorded t.oplog));
      ("total_discarded", J.Int (Oplog.total_discarded t.oplog));
      ("max_window", J.Int (Oplog.max_window t.oplog));
    ]

let bundle_json t ~kind ~report =
  let extra = match t.bundle_extra with Some f -> f () | None -> [] in
  let impacted =
    match List.assoc_opt "impacted_sessions" extra with Some v -> v | None -> J.List []
  in
  let extra = List.filter (fun (k, _) -> k <> "impacted_sessions") extra in
  J.Obj
    ([
       ("schema", J.Str Rae_obs.Blackbox.schema_version);
       ("kind", J.Str kind);
       ("seq", J.Int (t.bundle_seq + 1));
       ("ts_ns", J.Int (Int64.to_int (t.now ())));
       ("rev", J.Str t.rev);
       ("run_id", J.Str t.run_id);
       ("health", J.Str (Rae_obs.Events.health_to_string (health t)));
       ("policy", policy_json t.policy);
       ("recovery", report_json report);
       ("checkpoint", ckpt_json t);
       ("journal", journal_json t);
       ( "metrics",
         match t.metrics with Some reg -> Rae_obs.Metrics.json reg | None -> J.Obj [] );
       ("events", match t.events with Some ev -> Rae_obs.Events.to_json ev | None -> J.List []);
       ("impacted_sessions", impacted);
     ]
    @ extra)

let emit_bundle t ~kind ~report =
  match t.bundle_dir with
  | None -> ()
  | Some dir -> (
      let json = bundle_json t ~kind ~report in
      t.bundle_seq <- t.bundle_seq + 1;
      match Rae_obs.Blackbox.write ~dir ~seq:t.bundle_seq ~kind json with
      | Ok path ->
          t.s_bundles <- t.s_bundles + 1;
          t.bundle_log <- path :: t.bundle_log
      | Error _ ->
          (* A failed write must never take recovery down with it; the
             error is visible through rae_blackbox_errors_total. *)
          t.s_bundle_errors <- t.s_bundle_errors + 1)

(* Re-base the warm checkpoint; sound only when the window is empty (both
   call sites run right after an oplog prune). *)
let ckpt_cut t =
  match t.ckpt with
  | None -> ()
  | Some c ->
      ignore
        (Checkpoint.cut c ~window:(Oplog.length t.oplog) ~fds:(Oplog.fd_snapshot t.oplog)
           ~next_seq:(Oplog.next_seq t.oplog) ~commit_seq:t.last_commit_seq)

(* Advance the warm shadow if the unfolded suffix is long enough. *)
let ckpt_fold t =
  match t.ckpt with
  | None -> ()
  | Some c ->
      let next_seq = Oplog.next_seq t.oplog in
      if Checkpoint.due c ~next_seq then
        Checkpoint.fold c ~entries:(Oplog.entries_from t.oplog ~seq:(Checkpoint.cursor c)) ~next_seq

(* ---- recovery ---- *)

exception Recovery_error of string

let run_constrained t shadow entries =
  let replayed = ref 0 and skipped = ref 0 and discrepancies = ref [] in
  let step recorded =
    (* Per-op replay spans (cheap static names from the op kind). *)
    match t.tracer with
    | Some tr ->
        Rae_obs.Tracer.with_span tr ~cat:"replay"
          (Op.kind_to_string (Op.kind recorded.Op.op))
          (fun () -> Shadow.exec_constrained shadow recorded)
    | None -> Shadow.exec_constrained shadow recorded
  in
  List.iter
    (fun ({ Op.op; outcome; seq } as recorded) ->
      match step recorded with
      | Shadow.Skipped_error | Shadow.Skipped_sync -> incr skipped
      | Shadow.Matches -> incr replayed
      | Shadow.Divergence shadow_outcome ->
          incr replayed;
          if t.policy.cross_check then begin
            let d =
              { Report.d_seq = seq; d_op = op; d_base = outcome; d_shadow = shadow_outcome }
            in
            discrepancies := d :: !discrepancies;
            if t.policy.abort_on_discrepancy then
              raise
                (Recovery_error
                   (Format.asprintf "cross-check mismatch: %a" Report.pp_discrepancy d))
          end)
    entries;
  (!replayed, !skipped, List.rev !discrepancies)

(* The full §3.2 protocol.  Returns the in-flight operation's outcome. *)
let recover t ~trigger ~inflight ~attempt =
  let started = Sys.time () in
  let t0 = t.now () in
  t.s_recoveries <- t.s_recoveries + 1;
  t.in_recovery <- true;
  (match t.events with
  | Some ev ->
      Rae_obs.Events.record_recovery_begin ev ~trigger:(Report.trigger_to_string trigger)
  | None -> ());
  let entries = Oplog.entries t.oplog in
  let window = List.length entries in
  let phases = ref [] in
  (* Time one pipeline step: span on the tracer, duration into the phase
     histogram and the [phases] accumulator (closed on exception too, so a
     failed recovery's report still shows where time went). *)
  let phase name f =
    let p0 = t.now () in
    (match t.tracer with Some tr -> Rae_obs.Tracer.span_begin tr ~cat:"recovery" name | None -> ());
    Fun.protect
      ~finally:(fun () ->
        (match t.tracer with Some tr -> Rae_obs.Tracer.span_end tr | None -> ());
        let d = Int64.sub (t.now ()) p0 in
        phases := { Report.ph_name = name; ph_ns = d } :: !phases;
        (match t.events with
        | Some ev -> Rae_obs.Events.record_recovery_phase ev ~phase:name ~ns:(Int64.to_int d)
        | None -> ());
        match List.assoc_opt name t.ph_hists with
        | Some h -> Rae_obs.Metrics.observe h d
        | None -> ())
      f
  in
  let fail_report msg ~replayed ~skipped ~discrepancies ~handoff ~delegated ~seeded =
    Rae_obs.Metrics.observe t.recovery_hist (Int64.sub (t.now ()) t0);
    {
      Report.r_trigger = trigger;
      r_window = window;
      r_replayed = replayed;
      r_skipped = skipped;
      r_discrepancies = discrepancies;
      r_handoff_blocks = handoff;
      r_delegated_sync = delegated;
      r_seeded = seeded;
      r_wall_seconds = Sys.time () -. started;
      r_phases = List.rev !phases;
      r_outcome = (match msg with None -> Report.Recovered | Some m -> Report.Recovery_failed m);
    }
  in
  let append report =
    t.recovery_log <- report :: t.recovery_log;
    t.s_discrepancies <- t.s_discrepancies + List.length report.Report.r_discrepancies
  in
  (* 1. Contained reboot: discard the base's untrusted memory, recover the
     trusted on-disk state S0 via journal replay.  Both reconstruction
     strategies start here (the fallback re-runs it to wipe any partial
     hand-off a failed seeded attempt left in the base's caches). *)
  let contained_reboot () =
    phase "contained-reboot" (fun () ->
        match Base.contained_reboot t.base with
        | Ok () -> ()
        | Error msg -> raise (Recovery_error ("contained reboot: " ^ msg)))
  in
  (* Steps 4-8, shared by the cold and checkpoint-seeded strategies: the
     strategies differ only in how the shadow reaches the replay start
     point ([entries] for cold, the Δ suffix for seeded). *)
  let finish shadow replay_entries ~seeded =
    (* 4. Constrained mode: replay the recorded suffix, cross-checking. *)
    let replayed, skipped, discrepancies =
      phase "constrained-replay" (fun () ->
          try run_constrained t shadow replay_entries
          with Shadow.Violation msg ->
            raise (Recovery_error ("shadow violation in replay: " ^ msg)))
    in
    (* 5. Autonomous mode: the in-flight operation, whose result the
       application has not seen.  Sync operations are not handled by the
       shadow — they are delegated to the rebooted base after hand-off. *)
    let delegated = Op.is_sync inflight in
    let inflight_outcome =
      phase "inflight-autonomous" (fun () ->
          if delegated then Ok Op.Unit
          else
            try Shadow.exec shadow inflight
            with Shadow.Violation msg ->
              raise (Recovery_error ("shadow violation on in-flight op: " ^ msg)))
    in
    (* 6. Hand-off: the base absorbs the shadow's overlay and descriptor
       table through its own well-tested interfaces, then commits.  A
       seeded shadow's overlay carries the imported checkpoint dirt plus
       the Δ replay — exactly the blocks dirtied since the last commit,
       so the download is differential by construction. *)
    let dirty = Shadow.dirty_blocks shadow in
    phase "metadata-download" (fun () ->
        match
          Base.download_metadata t.base ~blocks:dirty ~fd_table:(Shadow.fd_table shadow)
            ~time:(Shadow.time shadow)
        with
        | Ok () -> ()
        | Error msg -> raise (Recovery_error ("metadata download: " ^ msg)));
    (* 7. Resume: prune the log to the recovered state, and re-base the
       warm checkpoint on it (the download's commit is a boundary). *)
    phase "resume" (fun () ->
        Oplog.checkpoint t.oplog ~fds:(Base.fd_table t.base);
        t.committed_during_op <- false;
        ckpt_cut t);
    let report =
      fail_report None ~replayed ~skipped ~discrepancies ~handoff:(List.length dirty) ~delegated
        ~seeded
    in
    append report;
    (* Recovery-completion hook: close the recorder's recovery bracket
       first so the bundle's health gauge reflects the post-recovery
       state, then snapshot everything into a black-box bundle. *)
    t.in_recovery <- false;
    (match t.events with
    | Some ev -> Rae_obs.Events.record_recovery_end ev ~ok:true ~seeded ~replayed
    | None -> ());
    emit_bundle t ~kind:Rae_obs.Blackbox.kind_recovery ~report;
    (* 8. Delegated sync: re-issue on the recovered base. *)
    if delegated then begin
      ignore attempt;
      (* Catch only genuine device failures; detector signals (Base_bug,
         Hang, Validation_failed) must propagate so a second fault during
         the delegated replay is not silently degraded to EIO. *)
      phase "delegated-sync" (fun () ->
          try Base.exec t.base inflight
          with Rae_block.Device.Io_error _ -> Error Errno.EIO)
    end
    else inflight_outcome
  in
  let go_cold () =
    contained_reboot ();
    (* 2. Launch the shadow on S0 (read-only, full checks, optional fsck —
       the liveness precondition). *)
    let config =
      {
        Shadow.default_config with
        Shadow.checks = t.policy.shadow_checks;
        fsck_on_attach = t.policy.fsck_before_recovery;
        fsck_pool = t.pool;
      }
    in
    let shadow =
      phase "shadow-attach" (fun () ->
          match Shadow.attach ~config ?tracer:t.tracer t.device with
          | Ok s -> s
          | Error msg -> raise (Recovery_error ("shadow attach: " ^ msg)))
    in
    (* 3. Reinstate the descriptors that were open at S0. *)
    phase "fd-reinstate" (fun () ->
        List.iter
          (fun (fd, ino, flags) ->
            match Shadow.install_fd shadow ~fd ~ino flags with
            | Ok () -> ()
            | Error msg -> raise (Recovery_error ("fd reinstatement: " ^ msg)))
          (Oplog.fd_snapshot t.oplog));
    finish shadow entries ~seeded:false
  in
  (* The O(Δ) strategy: seed a fresh shadow from the warm checkpoint (its
     overlay already reflects the folded prefix of the window) and replay
     only the suffix past the fold cursor. *)
  let go_seeded c =
    contained_reboot ();
    let shadow, from_seq =
      phase "seed" (fun () ->
          match Checkpoint.seed c with
          | Ok (s, cursor) -> (s, cursor)
          | Error msg -> raise (Recovery_error msg))
    in
    let delta = List.filter (fun r -> r.Op.seq >= from_seq) entries in
    finish shadow delta ~seeded:true
  in
  let go () =
    try
      match t.ckpt with
      | Some c when Checkpoint.valid c -> (
          try go_seeded c
          with Recovery_error reason ->
            (* The checkpoint let us down: poison it, note the fallback,
               and reconstruct the slow, trusted way — from S0. *)
            Checkpoint.note_fallback c;
            Checkpoint.poison c;
            (match t.tracer with
            | Some tr -> Rae_obs.Tracer.instant tr ~cat:"ckpt" ("ckpt-fallback:" ^ reason)
            | None -> ());
            go_cold ())
      | _ -> go_cold ()
    with Recovery_error msg ->
      t.s_failed <- t.s_failed + 1;
      t.degraded <- Some msg;
      let report =
        fail_report (Some msg) ~replayed:0 ~skipped:0 ~discrepancies:[] ~handoff:0
          ~delegated:false ~seeded:false
      in
      append report;
      (* Fail-stop hook: the last thing a dying controller does is leave
         a black box behind. *)
      t.in_recovery <- false;
      (match t.events with
      | Some ev ->
          Rae_obs.Events.record_degraded ev ~reason:msg;
          Rae_obs.Events.record_recovery_end ev ~ok:false ~seeded:false ~replayed:0
      | None -> ());
      emit_bundle t ~kind:Rae_obs.Blackbox.kind_failstop ~report;
      Error Errno.EIO
  in
  match t.tracer with
  | Some tr ->
      Rae_obs.Tracer.instant tr ~cat:"recovery" ("detect:" ^ Report.trigger_to_string trigger);
      Rae_obs.Tracer.with_span tr ~cat:"recovery" "recovery" go
  | None -> go ()

(* ---- the execution wrapper ---- *)

let rec exec_attempt t op ~attempt =
  if attempt > t.policy.max_recovery_attempts then Error Errno.EIO
  else
    match Base.exec t.base op with
    | outcome -> (
        (* If a group commit ran inside this op, the whole window —
           including this op — is durable: prune the log first, whatever
           else happened. *)
        let committed = t.committed_during_op in
        t.committed_during_op <- false;
        if committed then begin
          Oplog.checkpoint t.oplog ~fds:(Base.fd_table t.base);
          ckpt_cut t
        end;
        let warned = Detector.warnings (Base.detector t.base) in
        Detector.clear (Base.detector t.base);
        match warned with
        | { Detector.w_bug; w_msg } :: _ when t.policy.treat_warnings_as_errors && not committed ->
            (* WARN before durability: distrust the base's answer, let the
               shadow re-execute the op in autonomous mode. *)
            let trigger = Report.Warning_storm { bug = w_bug; msg = w_msg } in
            recover t ~trigger ~inflight:op ~attempt
        | _ :: _ when t.policy.treat_warnings_as_errors ->
            (* WARN on an op whose effects already committed (and passed
               the commit-barrier validation): the durable state is
               verified, so re-execution could only diverge — log and
               continue.  The warning stays counted in the detector. *)
            outcome
        | _ ->
            if not committed then begin
              Oplog.record t.oplog op outcome;
              ckpt_fold t
            end;
            outcome)
    | exception Detector.Base_bug { bug; msg } ->
        recover_and_maybe_retry t op ~attempt (Report.Panic { bug; msg })
    | exception Detector.Hang { bug; msg } ->
        recover_and_maybe_retry t op ~attempt (Report.Hang_detected { bug; msg })
    | exception Detector.Validation_failed { context; msg } ->
        recover_and_maybe_retry t op ~attempt (Report.Validation { context; msg })

and recover_and_maybe_retry t op ~attempt trigger =
  t.committed_during_op <- false;
  recover t ~trigger ~inflight:op ~attempt:(attempt + 1)

(* [exec] with an origin: [corr] is the client-supplied correlation id
   (0 = none), [session] the serving-layer session (0 = local/embedded).
   With a recorder attached every completion lands in the ring; the
   strings stored are the constant [kind]/[errno] literals, so the added
   fast-path cost is two clock reads and one ring write. *)
let exec_for t ~corr ~session op =
  t.s_ops <- t.s_ops + 1;
  match t.degraded with
  | Some _ ->
      (match t.events with
      | Some ev ->
          Rae_obs.Events.record_op ev
            ~kind:(Op.kind_to_string (Op.kind op))
            ~errno:(Errno.to_string Errno.EIO) ~lat_ns:0 ~corr ~session
      | None -> ());
      Error Errno.EIO
  | None -> (
      match t.events with
      | None -> exec_attempt t op ~attempt:0
      | Some ev ->
          let t0 = Int64.to_int (t.now ()) in
          let outcome = exec_attempt t op ~attempt:0 in
          let lat_ns = Int64.to_int (t.now ()) - t0 in
          let kind = Op.kind_to_string (Op.kind op) in
          let errno = match outcome with Ok _ -> "" | Error e -> Errno.to_string e in
          Rae_obs.Events.record_op ev ~kind ~errno ~lat_ns ~corr ~session;
          if lat_ns >= t.policy.slow_op_ns then
            Rae_obs.Events.record_slow_op ev ~kind ~lat_ns ~threshold_ns:t.policy.slow_op_ns ~corr
              ~session;
          outcome)

let exec t op = exec_for t ~corr:0 ~session:0 op

(* ---- the named API, routed through exec ---- *)

let ino_of = function Ok (Op.Ino i) -> Ok i | Ok _ -> Error Errno.EIO | Error e -> Error e
let unit_of = function Ok Op.Unit -> Ok () | Ok _ -> Error Errno.EIO | Error e -> Error e
let fd_of = function Ok (Op.Fd f) -> Ok f | Ok _ -> Error Errno.EIO | Error e -> Error e
let data_of = function Ok (Op.Data d) -> Ok d | Ok _ -> Error Errno.EIO | Error e -> Error e
let len_of = function Ok (Op.Len n) -> Ok n | Ok _ -> Error Errno.EIO | Error e -> Error e
let st_of = function Ok (Op.St s) -> Ok s | Ok _ -> Error Errno.EIO | Error e -> Error e
let names_of = function Ok (Op.Names n) -> Ok n | Ok _ -> Error Errno.EIO | Error e -> Error e

let create t path ~mode = ino_of (exec t (Op.Create (path, mode)))
let mkdir t path ~mode = ino_of (exec t (Op.Mkdir (path, mode)))
let unlink t path = unit_of (exec t (Op.Unlink path))
let rmdir t path = unit_of (exec t (Op.Rmdir path))
let openf t path flags = fd_of (exec t (Op.Open (path, flags)))
let close t fd = unit_of (exec t (Op.Close fd))
let pread t fd ~off ~len = data_of (exec t (Op.Pread (fd, off, len)))
let pwrite t fd ~off data = len_of (exec t (Op.Pwrite (fd, off, data)))
let lookup t path = ino_of (exec t (Op.Lookup path))
let stat t path = st_of (exec t (Op.Stat path))
let fstat t fd = st_of (exec t (Op.Fstat fd))
let readdir t path = names_of (exec t (Op.Readdir path))
let rename t src dst = unit_of (exec t (Op.Rename (src, dst)))
let truncate t path ~size = unit_of (exec t (Op.Truncate (path, size)))
let link t src dst = unit_of (exec t (Op.Link (src, dst)))
let symlink t ~target path = ino_of (exec t (Op.Symlink (target, path)))
let readlink t path = data_of (exec t (Op.Readlink path))
let chmod t path ~mode = unit_of (exec t (Op.Chmod (path, mode)))
let fsync t fd = unit_of (exec t (Op.Fsync fd))
let sync t = unit_of (exec t Op.Sync)

(* ---- introspection ---- *)

let stats t =
  {
    ops = t.s_ops;
    recoveries = t.s_recoveries;
    recoveries_failed = t.s_failed;
    discrepancies = t.s_discrepancies;
    window = Oplog.length t.oplog;
    max_window = Oplog.max_window t.oplog;
    total_recorded = Oplog.total_recorded t.oplog;
    total_discarded = Oplog.total_discarded t.oplog;
  }

let reset_stats t =
  t.s_ops <- 0;
  t.s_recoveries <- 0;
  t.s_failed <- 0;
  t.s_discrepancies <- 0;
  Oplog.reset_stats t.oplog;
  Rae_obs.Metrics.h_reset t.recovery_hist;
  List.iter (fun (_, h) -> Rae_obs.Metrics.h_reset h) t.ph_hists;
  (match t.pool with Some p -> Rae_par.Pool.reset_stats p | None -> ());
  match t.ckpt with Some c -> Checkpoint.reset_stats c | None -> ()

(* Join the parallel runtime: the checkpoint's background fold domain
   (drained first — shutdown doubles as a barrier) and the pool's worker
   domains.  Controllers without [par_domains > 1] have nothing to join.
   Call when retiring a controller; domains are a bounded OS resource. *)
let shutdown t =
  (match t.ckpt with Some c -> Checkpoint.shutdown c | None -> ());
  match t.pool with
  | Some p ->
      Base.set_par_pool t.base None;
      Rae_par.Pool.shutdown p
  | None -> ()

let checkpoint_now t =
  match t.ckpt with
  | None -> Error "checkpointing is disabled by policy"
  | Some c ->
      Checkpoint.cut c ~window:(Oplog.length t.oplog) ~fds:(Oplog.fd_snapshot t.oplog)
        ~next_seq:(Oplog.next_seq t.oplog) ~commit_seq:t.last_commit_seq

let checkpoint_stats t = Option.map Checkpoint.stats t.ckpt
let checkpoint_valid t = match t.ckpt with Some c -> Checkpoint.valid c | None -> false

let recoveries t = List.rev t.recovery_log

let discrepancies t =
  List.concat_map (fun r -> r.Report.r_discrepancies) (List.rev t.recovery_log)

let last_recovery t = match t.recovery_log with [] -> None | r :: _ -> Some r

let register_obs reg t =
  let module M = Rae_obs.Metrics in
  (* Remember the registry: bundles embed its snapshot at emission time. *)
  t.metrics <- Some reg;
  M.register_gauge reg ~help:"derived health: 0 OK, 1 RECOVERING, 2 DEGRADED, 3 FAILSTOP"
    "rae_health" (fun () -> float_of_int (Rae_obs.Events.health_code (health t)));
  M.register_counter reg ~help:"black-box bundles written"
    ~reset:(fun () -> t.s_bundles <- 0)
    "rae_blackbox_written_total"
    (fun () -> t.s_bundles);
  M.register_counter reg ~help:"black-box bundle write failures"
    ~reset:(fun () -> t.s_bundle_errors <- 0)
    "rae_blackbox_errors_total"
    (fun () -> t.s_bundle_errors);
  (match t.events with
  | Some ev ->
      M.register_counter reg ~help:"flight-recorder events recorded" "rae_flight_events_total"
        (fun () -> Rae_obs.Events.total ev);
      M.register_counter reg ~help:"flight-recorder events overwritten (ring wrap)"
        "rae_flight_dropped_total"
        (fun () -> Rae_obs.Events.dropped ev)
  | None -> ());
  M.register_counter reg ~help:"operations executed through the controller"
    ~reset:(fun () -> t.s_ops <- 0)
    "rae_ops_total"
    (fun () -> t.s_ops);
  M.register_counter reg ~help:"recoveries attempted"
    ~reset:(fun () -> t.s_recoveries <- 0)
    "rae_recoveries_total"
    (fun () -> t.s_recoveries);
  M.register_counter reg ~help:"recoveries that degraded to fail-stop"
    ~reset:(fun () -> t.s_failed <- 0)
    "rae_recoveries_failed_total"
    (fun () -> t.s_failed);
  M.register_counter reg ~help:"base/shadow cross-check mismatches"
    ~reset:(fun () -> t.s_discrepancies <- 0)
    "rae_discrepancies_total"
    (fun () -> t.s_discrepancies);
  M.register_counter reg ~help:"operations ever recorded in the oplog"
    ~reset:(fun () -> Oplog.reset_stats t.oplog)
    "rae_oplog_recorded_total"
    (fun () -> Oplog.total_recorded t.oplog);
  M.register_counter reg ~help:"oplog operations discarded at checkpoints" "rae_oplog_discarded_total"
    (fun () -> Oplog.total_discarded t.oplog);
  M.register_gauge reg ~help:"currently recorded (volatile) operations" "rae_oplog_window" (fun () ->
      float_of_int (Oplog.length t.oplog));
  M.register_gauge reg ~help:"largest oplog window observed" "rae_oplog_max_window" (fun () ->
      float_of_int (Oplog.max_window t.oplog));
  M.register_gauge reg ~help:"1 once the controller is in fail-stop mode" "rae_degraded" (fun () ->
      match t.degraded with Some _ -> 1. | None -> 0.);
  M.register_histogram reg ~help:"end-to-end recovery latency (ns)" "rae_recovery_ns"
    t.recovery_hist;
  List.iter
    (fun (name, h) ->
      M.register_histogram reg
        ~help:(Printf.sprintf "recovery phase %s latency (ns)" name)
        (Printf.sprintf "rae_phase_%s_ns" (String.map (fun c -> if c = '-' then '_' else c) name))
        h)
    t.ph_hists;
  (match t.pool with
  | Some p ->
      M.register_gauge reg ~help:"domain-pool size (participants)" "rae_par_domains" (fun () ->
          float_of_int (Rae_par.Pool.size p));
      M.register_counter reg ~help:"domain-pool chunk executions"
        ~reset:(fun () -> Rae_par.Pool.reset_stats p)
        "rae_par_tasks_total"
        (fun () -> (Rae_par.Pool.stats p).Rae_par.Pool.tasks_run);
      M.register_counter reg ~help:"domain-pool chunks stolen across deques" "rae_par_steals_total"
        (fun () -> (Rae_par.Pool.stats p).Rae_par.Pool.steals);
      M.register_counter reg ~help:"parallel batches dispatched to the pool" "rae_par_batches_total"
        (fun () -> (Rae_par.Pool.stats p).Rae_par.Pool.batches)
  | None -> ());
  (match t.ckpt with Some c -> Checkpoint.register_obs reg c | None -> ());
  Base.register_obs reg t.base
