(** The testing phase (paper §4.3).

    "The system must ensure the base and shadow filesystems produce
    equivalent output for a sequence of operations.  Verification alone is
    insufficient for this property, therefore, testing is necessary before
    using the shadow.  The testing phase uses the base as a reference
    filesystem to test the shadow by running a large volume of workloads
    and monitoring for discrepancies."

    This module is that phase as a library: it drives the same operation
    stream into a base and a shadow mounted on identical fresh images and
    reports every disagreement, plus an end-of-run comparison of the
    essential state (tree contents and descriptor tables). *)

type mismatch = {
  m_index : int;
  m_op : Rae_vfs.Op.t;
  m_base : Rae_vfs.Op.outcome;
  m_shadow : Rae_vfs.Op.outcome;
}

type result = {
  ops_run : int;
  mismatches : mismatch list;
  base_crashed : string option;  (** the base hit a runtime error mid-test *)
  shadow_violation : string option;  (** the shadow's checks fired mid-test *)
  final_state_equal : bool;
}

val agreement : result -> bool
(** No mismatches, no crashes, final states equal. *)

val pp_mismatch : Format.formatter -> mismatch -> unit
val pp_result : Format.formatter -> result -> unit

val run :
  ?nblocks:int ->
  ?ninodes:int ->
  ?base_config:Rae_basefs.Base.config ->
  ?bugs:Rae_basefs.Bug_registry.t ->
  Rae_vfs.Op.t list ->
  result
(** [run ops] builds two identical fresh images, mounts the base on one
    and attaches the shadow to the other, executes [ops] on both, and
    compares.  Sync operations are compared too (both sides accept them).
    With [bugs] armed this doubles as a bug-hunting harness: the report
    localises the first op whose outcome diverged. *)

val run_seeded :
  ?count:int -> ?profile:Rae_workload.Workload.profile -> seed:int64 -> unit -> result
(** Convenience: generate a workload and {!run} it. *)

val states_equal : Rae_basefs.Base.t -> Rae_shadowfs.Shadow.t -> bool
(** The end-of-run comparison on its own: walk both trees through their
    public APIs and compare structure, metadata, file contents and the
    descriptor tables. *)

val shadow_states_equal : Rae_shadowfs.Shadow.t -> Rae_shadowfs.Shadow.t -> bool
(** The same walk over two shadow instances — the comparator behind the
    checkpoint-equivalence property (replay-from-checkpoint must be
    indistinguishable from replay-from-S0 through the public API). *)

val crash_states_equal :
  dirty:(Rae_vfs.Types.ino -> bool) -> Rae_specfs.Spec.t -> Rae_shadowfs.Shadow.t -> bool
(** The comparator behind the {!Rae_crash} oracle: walk a recovered crash
    image (attached read-only under the shadow) against one legal durable
    state (a spec snapshot captured at a journal-commit boundary).
    Descriptor tables and clocks are volatile across a power cut and are
    not compared.  Metadata is compared strictly — it is journal-protected
    and must survive exactly.  File contents reach the medium outside the
    transaction (ordered data), so inodes flagged [dirty] — content
    touched, unlinked or overwritten after the crash point's durable
    bound — have their content (for directories: their subtree) excluded,
    mirroring the guarantee set B3-style checkers test against. *)
