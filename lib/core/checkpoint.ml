open Rae_vfs
module Shadow = Rae_shadowfs.Shadow

(* The warm shadow below is an ordinary [Shadow.t]: it holds a read-only
   device handle and funnels every update into its COW overlay, so the
   shadow-purity lint rule covers this module end to end — nothing here
   may reach a write-path sink.  The controller feeds us oplog suffixes
   and fd snapshots; we never see the base or the journal directly. *)

type stats = {
  cuts : int;  (** re-bases onto a freshly committed S0 *)
  folds : int;  (** background fold batches applied to the warm shadow *)
  folded_ops : int;  (** operations folded across all batches *)
  fold_divergences : int;  (** constrained-mode mismatches seen while folding *)
  seeded : int;  (** recoveries seeded from the checkpoint *)
  fallbacks : int;  (** seeded recoveries that fell back to the cold path *)
  poisons : int;  (** checkpoints discarded after a fold/seed failure *)
}

(* A fold request carries the oplog suffix snapshot plus the warm-shadow
   generation it was scheduled against.  The generation guard is what
   makes the off-domain fold safe against the hot path's own lifecycle:
   a cut (or poison) bumps [warm_gen], so a request enqueued against a
   previous warm instance is discarded instead of being folded into a
   fresh shadow whose caches (fast-path resolution cache included) it
   was never scheduled for — oplog sequence numbers alone cannot carry
   that burden because a contained reboot resets them. *)
type fold_req = { fr_entries : Rae_vfs.Op.recorded list; fr_next : int; fr_gen : int }

type async_st = {
  amu : Mutex.t;
  a_not_full : Condition.t;  (* queue fell below capacity *)
  a_not_empty : Condition.t;  (* work available (or stopping) *)
  a_idle : Condition.t;  (* queue empty and worker not folding *)
  aq : fold_req Queue.t;  (* guarded by [amu] *)
  a_cap : int;  (* bounded queue: enqueue blocks at this watermark *)
  mutable a_busy : bool;  (* worker currently executing a fold *)
  mutable a_stop : bool;
  mutable a_hwm : int;  (* high-water mark of queue depth *)
  mutable a_enqueued : int;
  mutable a_blocked : int;  (* enqueues that hit backpressure *)
  mutable a_dropped : int;  (* stale-generation requests discarded *)
  mutable a_domain : unit Domain.t option;
}

type t = {
  device : Rae_block.Device.t;
  config : Shadow.config;
  tracer : Rae_obs.Tracer.t option;
  events : Rae_obs.Events.t option;
  fold_interval : int;
  mutable warm : Shadow.t option;  (* None: poisoned or never cut *)
  mutable cursor : int;  (* first oplog seq the warm shadow has NOT folded *)
  mutable base_seq : int64;  (* journal commit seq of the S0 we are based on *)
  mutable warm_gen : int;  (* bumped on every cut/poison; guards stale folds *)
  mutable sched_cursor : int;  (* async: cursor the *enqueued* folds reach *)
  mutable async : async_st option;  (* Some = background fold domain *)
  mutable s_cuts : int;
  mutable s_folds : int;
  mutable s_folded_ops : int;
  mutable s_fold_divergences : int;
  mutable s_seeded : int;
  mutable s_fallbacks : int;
  mutable s_poisons : int;
}

(* Domain discipline for the mutable fields above: [warm]/[cursor]/the
   [s_*] counters are written by the background worker only while
   [a_busy] is set, and by the owner only after quiescing the worker
   ([cut], [seed], [poison], [shutdown] all drain or discard first), so
   the two domains never write concurrently.  The owner's unsynchronized
   hot-path reads ([due], [valid], [stats]) may observe a stale value,
   which only ever delays a fold or staleness a metric sample — never
   corrupts the shadow, because every fold re-filters entries against
   the true [cursor] and the generation guard under [amu]. *)

let create ?tracer ?events ?(fast_paths = true) ~shadow_checks ~fold_interval device =
  {
    device;
    (* Never fsck on the warm path: the cut re-reads only the superblock
       and bitmaps (strict), and every folded op runs under the shadow's
       full runtime checks — continuous validation in place of the cold
       path's up-front scan. *)
    config =
      {
        Shadow.default_config with
        Shadow.checks = shadow_checks;
        fsck_on_attach = false;
        fast_paths;
      };
    tracer;
    events;
    fold_interval = max 1 fold_interval;
    warm = None;
    cursor = 0;
    base_seq = 0L;
    warm_gen = 0;
    sched_cursor = 0;
    async = None;
    s_cuts = 0;
    s_folds = 0;
    s_folded_ops = 0;
    s_fold_divergences = 0;
    s_seeded = 0;
    s_fallbacks = 0;
    s_poisons = 0;
  }

let valid t = t.warm <> None
let cursor t = t.cursor
let base_seq t = t.base_seq

let with_span t name f =
  match t.tracer with Some tr -> Rae_obs.Tracer.with_span tr ~cat:"ckpt" name f | None -> f ()

(* Poison without quiescing: called by the worker itself (it *is* the
   in-flight fold) and by owner paths that have already quiesced. *)
let poison_unsafe t =
  if t.warm <> None then begin
    t.warm <- None;
    t.warm_gen <- t.warm_gen + 1;
    t.s_poisons <- t.s_poisons + 1;
    match t.events with Some ev -> Rae_obs.Events.record_ckpt_poison ev | None -> ()
  end

(* ---- background-fold quiescence ---- *)

(* Discard everything queued and wait out the in-flight fold.  Used by
   [cut] and [poison]: queued windows are either subsumed by the fresh
   S0 (cut) or pointless (poison), so there is no reason to execute
   them — only the currently-executing fold must finish before the
   owner may touch [warm]/[cursor]. *)
let quiesce_discard t =
  match t.async with
  | None -> ()
  | Some a ->
      Mutex.lock a.amu;
      Queue.clear a.aq;
      Condition.broadcast a.a_not_full;
      while a.a_busy do
        Condition.wait a.a_idle a.amu
      done;
      Mutex.unlock a.amu

(* Drain: wait until every queued fold has been executed.  Recovery's
   seed phase awaits this so the warm shadow reaches the furthest
   enqueued cursor before its state is exported. *)
let checkpoint_barrier t =
  match t.async with
  | None -> ()
  | Some a ->
      Mutex.lock a.amu;
      while a.a_busy || not (Queue.is_empty a.aq) do
        Condition.wait a.a_idle a.amu
      done;
      Mutex.unlock a.amu

let poison t =
  quiesce_discard t;
  poison_unsafe t

(* ---- cut: re-base the checkpoint on a freshly committed S0 ---- *)

let cut t ~window ~fds ~next_seq ~commit_seq =
  quiesce_discard t;
  if window > 0 then
    Error
      (Printf.sprintf "refusing checkpoint cut: op window holds %d uncommitted operation(s)"
         window)
  else
    with_span t "ckpt-cut" (fun () ->
        match Shadow.attach ~config:t.config t.device with
        | Error msg ->
            poison t;
            Error ("warm attach: " ^ msg)
        | Ok warm -> (
            let rec install = function
              | [] -> Ok ()
              | (fd, ino, flags) :: rest -> (
                  match Shadow.install_fd warm ~fd ~ino flags with
                  | Ok () -> install rest
                  | Error msg -> Error ("warm fd reinstatement: " ^ msg))
            in
            match install fds with
            | Error _ as e ->
                poison t;
                e
            | Ok () ->
                t.warm <- Some warm;
                t.cursor <- next_seq;
                t.sched_cursor <- next_seq;
                t.warm_gen <- t.warm_gen + 1;
                t.base_seq <- commit_seq;
                t.s_cuts <- t.s_cuts + 1;
                (match t.events with
                | Some ev -> Rae_obs.Events.record_ckpt_cut ev
                | None -> ());
                Ok ()))

(* ---- fold: advance the warm shadow through the recorded suffix ---- *)

let due t ~next_seq =
  match t.warm with
  | None -> false
  | Some _ ->
      (* In async mode schedule against the furthest *enqueued* cursor,
         not the folded one — otherwise every hot-path op past the
         interval would enqueue another copy of the same window while
         the worker chews on the first. *)
      let c = match t.async with Some _ -> t.sched_cursor | None -> t.cursor in
      next_seq - c >= t.fold_interval

let fold_now t ~entries ~next_seq =
  match t.warm with
  | None -> ()
  | Some warm ->
      with_span t "ckpt-fold" (fun () ->
          try
            (* The whole window goes to the shadow in one batched pass:
               the shadow amortizes superblock/bitmap write-back and the
               summary re-check across the window instead of paying them
               per op.  Divergences keep the shadow's own answer, same
               policy as cold constrained replay; the count surfaces
               through stats/metrics. *)
            let window = List.filter (fun r -> r.Op.seq >= t.cursor) entries in
            let res = Shadow.exec_constrained_window warm window in
            t.cursor <- next_seq;
            t.s_folds <- t.s_folds + 1;
            t.s_folded_ops <- t.s_folded_ops + res.Shadow.w_ops;
            t.s_fold_divergences <- t.s_fold_divergences + res.Shadow.w_divergences;
            match t.events with
            | Some ev -> Rae_obs.Events.record_ckpt_fold ev ~ops:res.Shadow.w_ops
            | None -> ()
          with Shadow.Violation _ ->
            (* The warm replica refuses the fold — don't disturb the hot
               path; recovery will take the cold route until the next cut. *)
            poison_unsafe t)

let fold t ~entries ~next_seq =
  match t.async with
  | None -> fold_now t ~entries ~next_seq
  | Some a ->
      if t.warm <> None then begin
        Mutex.lock a.amu;
        if a.a_stop then begin
          (* Worker gone (shutdown): degrade to the synchronous fold. *)
          Mutex.unlock a.amu;
          fold_now t ~entries ~next_seq
        end
        else begin
          if Queue.length a.aq >= a.a_cap then begin
            (* Backpressure: the hot path stalls rather than letting the
               fold backlog (and the memory pinned by its snapshots)
               grow without bound. *)
            a.a_blocked <- a.a_blocked + 1;
            while Queue.length a.aq >= a.a_cap && not a.a_stop do
              Condition.wait a.a_not_full a.amu
            done
          end;
          if a.a_stop then begin
            (* The worker died while we were waiting: don't enqueue into
               a queue nobody drains. *)
            Mutex.unlock a.amu;
            fold_now t ~entries ~next_seq
          end
          else begin
            Queue.push { fr_entries = entries; fr_next = next_seq; fr_gen = t.warm_gen } a.aq;
            a.a_enqueued <- a.a_enqueued + 1;
            if Queue.length a.aq > a.a_hwm then a.a_hwm <- Queue.length a.aq;
            if next_seq > t.sched_cursor then t.sched_cursor <- next_seq;
            Condition.broadcast a.a_not_empty;
            Mutex.unlock a.amu
          end
        end
      end

let worker_loop t a =
  let rec loop () =
    Mutex.lock a.amu;
    let rec await () =
      if a.a_stop then None
      else if Queue.is_empty a.aq then begin
        Condition.wait a.a_not_empty a.amu;
        await ()
      end
      else Some (Queue.pop a.aq)
    in
    match await () with
    | None -> Mutex.unlock a.amu
    | Some req ->
        a.a_busy <- true;
        Condition.broadcast a.a_not_full;
        Mutex.unlock a.amu;
        (* The generation guard: a request scheduled against a warm
           shadow that has since been replaced (cut) or dropped (poison)
           must not touch the new one — its window is meaningless there,
           and the new shadow's fast-path caches were never invalidated
           for it. *)
        if req.fr_gen = t.warm_gen then begin
          try with_span t "par-fold" (fun () -> fold_now t ~entries:req.fr_entries ~next_seq:req.fr_next)
          with
          | Shadow.Violation _ ->
              (* Belt and braces: [fold_now] converts violations to a
                 poison itself, but if one still escapes the policy is
                 identical — forfeit the checkpoint, keep serving. *)
              poison_unsafe t
          | e ->
              (* A non-signal exception is a genuine bug.  Forfeit the
                 checkpoint, flip the engine off so [fold] degrades to
                 the synchronous path (enqueuers must never block on a
                 dead worker), restore the worker invariants, and let
                 the exception surface at [shutdown]'s join. *)
              poison_unsafe t;
              Mutex.lock a.amu;
              a.a_stop <- true;
              a.a_busy <- false;
              Queue.clear a.aq;
              Condition.broadcast a.a_not_full;
              Condition.broadcast a.a_idle;
              Mutex.unlock a.amu;
              raise e
        end
        else a.a_dropped <- a.a_dropped + 1;
        Mutex.lock a.amu;
        a.a_busy <- false;
        if Queue.is_empty a.aq then Condition.broadcast a.a_idle;
        Mutex.unlock a.amu;
        loop ()
  in
  loop ()

let start_async_fold t ~queue_cap =
  match t.async with
  | Some _ -> ()
  | None ->
      let a =
        {
          amu = Mutex.create ();
          a_not_full = Condition.create ();
          a_not_empty = Condition.create ();
          a_idle = Condition.create ();
          aq = Queue.create ();
          a_cap = max 1 queue_cap;
          a_busy = false;
          a_stop = false;
          a_hwm = 0;
          a_enqueued = 0;
          a_blocked = 0;
          a_dropped = 0;
          a_domain = None;
        }
      in
      t.async <- Some a;
      a.a_domain <- Some (Domain.spawn (fun () -> worker_loop t a))

let async_fold t = t.async <> None

let shutdown t =
  match t.async with
  | None -> ()
  | Some a ->
      Mutex.lock a.amu;
      (* Finish queued work first, so shutdown doubles as a barrier. *)
      while a.a_busy || not (Queue.is_empty a.aq) do
        Condition.wait a.a_idle a.amu
      done;
      a.a_stop <- true;
      Condition.broadcast a.a_not_empty;
      Mutex.unlock a.amu;
      (match a.a_domain with Some d -> Domain.join d | None -> ());
      a.a_domain <- None

(* ---- seed: hand recovery a shadow pre-advanced to the cursor ---- *)

let seed t =
  (* Await the in-flight and queued background folds: the exported state
     must include every window the hot path recorded before the panic,
     or recovery's Δ replay would re-execute ops the warm shadow is
     about to fold concurrently. *)
  checkpoint_barrier t;
  match t.warm with
  | None -> Error "no warm checkpoint"
  | Some warm -> (
      match Shadow.attach_from ~config:t.config (Shadow.export_state warm) t.device with
      | Ok shadow ->
          t.s_seeded <- t.s_seeded + 1;
          Ok (shadow, t.cursor)
      | Error msg ->
          poison t;
          Error ("checkpoint seed: " ^ msg))

let note_fallback t = t.s_fallbacks <- t.s_fallbacks + 1

(* ---- introspection ---- *)

let stats t =
  {
    cuts = t.s_cuts;
    folds = t.s_folds;
    folded_ops = t.s_folded_ops;
    fold_divergences = t.s_fold_divergences;
    seeded = t.s_seeded;
    fallbacks = t.s_fallbacks;
    poisons = t.s_poisons;
  }

type fold_queue_stats = {
  fq_depth : int;
  fq_hwm : int;
  fq_enqueued : int;
  fq_blocked : int;
  fq_dropped : int;
}

let fold_queue t =
  match t.async with
  | None -> None
  | Some a ->
      Mutex.lock a.amu;
      let s =
        {
          fq_depth = Queue.length a.aq;
          fq_hwm = a.a_hwm;
          fq_enqueued = a.a_enqueued;
          fq_blocked = a.a_blocked;
          fq_dropped = a.a_dropped;
        }
      in
      Mutex.unlock a.amu;
      Some s

let reset_stats t =
  t.s_cuts <- 0;
  t.s_folds <- 0;
  t.s_folded_ops <- 0;
  t.s_fold_divergences <- 0;
  t.s_seeded <- 0;
  t.s_fallbacks <- 0;
  t.s_poisons <- 0;
  match t.async with
  | None -> ()
  | Some a ->
      Mutex.lock a.amu;
      a.a_hwm <- 0;
      a.a_enqueued <- 0;
      a.a_blocked <- 0;
      a.a_dropped <- 0;
      Mutex.unlock a.amu

let register_obs reg t =
  let module M = Rae_obs.Metrics in
  M.register_counter reg ~help:"warm checkpoint cuts (re-bases on a committed S0)"
    ~reset:(fun () -> t.s_cuts <- 0)
    "rae_ckpt_cuts_total"
    (fun () -> t.s_cuts);
  M.register_counter reg ~help:"background fold batches applied to the warm shadow"
    ~reset:(fun () -> t.s_folds <- 0)
    "rae_ckpt_folds_total"
    (fun () -> t.s_folds);
  M.register_counter reg ~help:"operations folded into the warm shadow"
    ~reset:(fun () -> t.s_folded_ops <- 0)
    "rae_ckpt_folded_ops_total"
    (fun () -> t.s_folded_ops);
  M.register_counter reg ~help:"constrained-mode divergences observed while folding"
    ~reset:(fun () -> t.s_fold_divergences <- 0)
    "rae_ckpt_fold_divergences_total"
    (fun () -> t.s_fold_divergences);
  M.register_counter reg ~help:"recoveries seeded from the warm checkpoint"
    ~reset:(fun () -> t.s_seeded <- 0)
    "rae_ckpt_seeded_total"
    (fun () -> t.s_seeded);
  M.register_counter reg ~help:"seeded recoveries that fell back to the cold path"
    ~reset:(fun () -> t.s_fallbacks <- 0)
    "rae_ckpt_fallbacks_total"
    (fun () -> t.s_fallbacks);
  M.register_counter reg ~help:"checkpoints discarded after a fold or seed failure"
    ~reset:(fun () -> t.s_poisons <- 0)
    "rae_ckpt_poisons_total"
    (fun () -> t.s_poisons);
  M.register_gauge reg ~help:"1 while a warm checkpoint is available" "rae_ckpt_valid" (fun () ->
      if valid t then 1. else 0.);
  match t.async with
  | None -> ()
  | Some a ->
      M.register_gauge reg ~help:"background-fold queue depth" "rae_par_fold_queue_depth"
        (fun () -> float_of_int (Queue.length a.aq));
      M.register_gauge reg ~help:"background-fold queue depth high-water mark"
        "rae_par_fold_backlog_hwm" (fun () -> float_of_int a.a_hwm);
      M.register_counter reg ~help:"fold windows enqueued to the background domain"
        ~reset:(fun () -> a.a_enqueued <- 0)
        "rae_par_fold_enqueued_total"
        (fun () -> a.a_enqueued);
      M.register_counter reg ~help:"hot-path enqueues stalled by fold-queue backpressure"
        ~reset:(fun () -> a.a_blocked <- 0)
        "rae_par_fold_backpressure_total"
        (fun () -> a.a_blocked);
      M.register_counter reg ~help:"stale-generation fold windows discarded unexecuted"
        ~reset:(fun () -> a.a_dropped <- 0)
        "rae_par_fold_dropped_total"
        (fun () -> a.a_dropped)
