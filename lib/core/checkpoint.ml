open Rae_vfs
module Shadow = Rae_shadowfs.Shadow

(* The warm shadow below is an ordinary [Shadow.t]: it holds a read-only
   device handle and funnels every update into its COW overlay, so the
   shadow-purity lint rule covers this module end to end — nothing here
   may reach a write-path sink.  The controller feeds us oplog suffixes
   and fd snapshots; we never see the base or the journal directly. *)

type stats = {
  cuts : int;  (** re-bases onto a freshly committed S0 *)
  folds : int;  (** background fold batches applied to the warm shadow *)
  folded_ops : int;  (** operations folded across all batches *)
  fold_divergences : int;  (** constrained-mode mismatches seen while folding *)
  seeded : int;  (** recoveries seeded from the checkpoint *)
  fallbacks : int;  (** seeded recoveries that fell back to the cold path *)
  poisons : int;  (** checkpoints discarded after a fold/seed failure *)
}

type t = {
  device : Rae_block.Device.t;
  config : Shadow.config;
  tracer : Rae_obs.Tracer.t option;
  events : Rae_obs.Events.t option;
  fold_interval : int;
  mutable warm : Shadow.t option;  (* None: poisoned or never cut *)
  mutable cursor : int;  (* first oplog seq the warm shadow has NOT folded *)
  mutable base_seq : int64;  (* journal commit seq of the S0 we are based on *)
  mutable s_cuts : int;
  mutable s_folds : int;
  mutable s_folded_ops : int;
  mutable s_fold_divergences : int;
  mutable s_seeded : int;
  mutable s_fallbacks : int;
  mutable s_poisons : int;
}

let create ?tracer ?events ?(fast_paths = true) ~shadow_checks ~fold_interval device =
  {
    device;
    (* Never fsck on the warm path: the cut re-reads only the superblock
       and bitmaps (strict), and every folded op runs under the shadow's
       full runtime checks — continuous validation in place of the cold
       path's up-front scan. *)
    config =
      {
        Shadow.default_config with
        Shadow.checks = shadow_checks;
        fsck_on_attach = false;
        fast_paths;
      };
    tracer;
    events;
    fold_interval = max 1 fold_interval;
    warm = None;
    cursor = 0;
    base_seq = 0L;
    s_cuts = 0;
    s_folds = 0;
    s_folded_ops = 0;
    s_fold_divergences = 0;
    s_seeded = 0;
    s_fallbacks = 0;
    s_poisons = 0;
  }

let valid t = t.warm <> None
let cursor t = t.cursor
let base_seq t = t.base_seq

let with_span t name f =
  match t.tracer with Some tr -> Rae_obs.Tracer.with_span tr ~cat:"ckpt" name f | None -> f ()

let poison t =
  if t.warm <> None then begin
    t.warm <- None;
    t.s_poisons <- t.s_poisons + 1;
    match t.events with Some ev -> Rae_obs.Events.record_ckpt_poison ev | None -> ()
  end

(* ---- cut: re-base the checkpoint on a freshly committed S0 ---- *)

let cut t ~window ~fds ~next_seq ~commit_seq =
  if window > 0 then
    Error
      (Printf.sprintf "refusing checkpoint cut: op window holds %d uncommitted operation(s)"
         window)
  else
    with_span t "ckpt-cut" (fun () ->
        match Shadow.attach ~config:t.config t.device with
        | Error msg ->
            poison t;
            Error ("warm attach: " ^ msg)
        | Ok warm -> (
            let rec install = function
              | [] -> Ok ()
              | (fd, ino, flags) :: rest -> (
                  match Shadow.install_fd warm ~fd ~ino flags with
                  | Ok () -> install rest
                  | Error msg -> Error ("warm fd reinstatement: " ^ msg))
            in
            match install fds with
            | Error _ as e ->
                poison t;
                e
            | Ok () ->
                t.warm <- Some warm;
                t.cursor <- next_seq;
                t.base_seq <- commit_seq;
                t.s_cuts <- t.s_cuts + 1;
                (match t.events with
                | Some ev -> Rae_obs.Events.record_ckpt_cut ev
                | None -> ());
                Ok ()))

(* ---- fold: advance the warm shadow through the recorded suffix ---- *)

let due t ~next_seq =
  match t.warm with Some _ -> next_seq - t.cursor >= t.fold_interval | None -> false

let fold t ~entries ~next_seq =
  match t.warm with
  | None -> ()
  | Some warm ->
      with_span t "ckpt-fold" (fun () ->
          try
            (* The whole window goes to the shadow in one batched pass:
               the shadow amortizes superblock/bitmap write-back and the
               summary re-check across the window instead of paying them
               per op.  Divergences keep the shadow's own answer, same
               policy as cold constrained replay; the count surfaces
               through stats/metrics. *)
            let window = List.filter (fun r -> r.Op.seq >= t.cursor) entries in
            let res = Shadow.exec_constrained_window warm window in
            t.cursor <- next_seq;
            t.s_folds <- t.s_folds + 1;
            t.s_folded_ops <- t.s_folded_ops + res.Shadow.w_ops;
            t.s_fold_divergences <- t.s_fold_divergences + res.Shadow.w_divergences;
            match t.events with
            | Some ev -> Rae_obs.Events.record_ckpt_fold ev ~ops:res.Shadow.w_ops
            | None -> ()
          with Shadow.Violation _ ->
            (* The warm replica refuses the fold — don't disturb the hot
               path; recovery will take the cold route until the next cut. *)
            poison t)

(* ---- seed: hand recovery a shadow pre-advanced to the cursor ---- *)

let seed t =
  match t.warm with
  | None -> Error "no warm checkpoint"
  | Some warm -> (
      match Shadow.attach_from ~config:t.config (Shadow.export_state warm) t.device with
      | Ok shadow ->
          t.s_seeded <- t.s_seeded + 1;
          Ok (shadow, t.cursor)
      | Error msg ->
          poison t;
          Error ("checkpoint seed: " ^ msg))

let note_fallback t = t.s_fallbacks <- t.s_fallbacks + 1

(* ---- introspection ---- *)

let stats t =
  {
    cuts = t.s_cuts;
    folds = t.s_folds;
    folded_ops = t.s_folded_ops;
    fold_divergences = t.s_fold_divergences;
    seeded = t.s_seeded;
    fallbacks = t.s_fallbacks;
    poisons = t.s_poisons;
  }

let reset_stats t =
  t.s_cuts <- 0;
  t.s_folds <- 0;
  t.s_folded_ops <- 0;
  t.s_fold_divergences <- 0;
  t.s_seeded <- 0;
  t.s_fallbacks <- 0;
  t.s_poisons <- 0

let register_obs reg t =
  let module M = Rae_obs.Metrics in
  M.register_counter reg ~help:"warm checkpoint cuts (re-bases on a committed S0)"
    ~reset:(fun () -> t.s_cuts <- 0)
    "rae_ckpt_cuts_total"
    (fun () -> t.s_cuts);
  M.register_counter reg ~help:"background fold batches applied to the warm shadow"
    ~reset:(fun () -> t.s_folds <- 0)
    "rae_ckpt_folds_total"
    (fun () -> t.s_folds);
  M.register_counter reg ~help:"operations folded into the warm shadow"
    ~reset:(fun () -> t.s_folded_ops <- 0)
    "rae_ckpt_folded_ops_total"
    (fun () -> t.s_folded_ops);
  M.register_counter reg ~help:"constrained-mode divergences observed while folding"
    ~reset:(fun () -> t.s_fold_divergences <- 0)
    "rae_ckpt_fold_divergences_total"
    (fun () -> t.s_fold_divergences);
  M.register_counter reg ~help:"recoveries seeded from the warm checkpoint"
    ~reset:(fun () -> t.s_seeded <- 0)
    "rae_ckpt_seeded_total"
    (fun () -> t.s_seeded);
  M.register_counter reg ~help:"seeded recoveries that fell back to the cold path"
    ~reset:(fun () -> t.s_fallbacks <- 0)
    "rae_ckpt_fallbacks_total"
    (fun () -> t.s_fallbacks);
  M.register_counter reg ~help:"checkpoints discarded after a fold or seed failure"
    ~reset:(fun () -> t.s_poisons <- 0)
    "rae_ckpt_poisons_total"
    (fun () -> t.s_poisons);
  M.register_gauge reg ~help:"1 while a warm checkpoint is available" "rae_ckpt_valid" (fun () ->
      if valid t then 1. else 0.)
