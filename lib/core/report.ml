type discrepancy = {
  d_seq : int;
  d_op : Rae_vfs.Op.t;
  d_base : Rae_vfs.Op.outcome;
  d_shadow : Rae_vfs.Op.outcome;
}

type trigger =
  | Panic of { bug : string; msg : string }
  | Hang_detected of { bug : string; msg : string }
  | Validation of { context : string; msg : string }
  | Warning_storm of { bug : string; msg : string }

type outcome = Recovered | Recovery_failed of string

type phase = { ph_name : string; ph_ns : int64 }

type recovery = {
  r_trigger : trigger;
  r_window : int;
  r_replayed : int;
  r_skipped : int;
  r_discrepancies : discrepancy list;
  r_handoff_blocks : int;
  r_delegated_sync : bool;
  r_seeded : bool;
  r_wall_seconds : float;
  r_phases : phase list;
  r_outcome : outcome;
}

let trigger_to_string = function
  | Panic { bug; _ } -> Printf.sprintf "panic(%s)" bug
  | Hang_detected { bug; _ } -> Printf.sprintf "hang(%s)" bug
  | Validation { context; _ } -> Printf.sprintf "validation(%s)" context
  | Warning_storm { bug; _ } -> Printf.sprintf "warning(%s)" bug

let pp_discrepancy ppf d =
  Format.fprintf ppf "#%d %a: base %a, shadow %a" d.d_seq Rae_vfs.Op.pp d.d_op
    Rae_vfs.Op.pp_outcome d.d_base Rae_vfs.Op.pp_outcome d.d_shadow

let pp_recovery ppf r =
  Format.fprintf ppf
    "@[<v 2>recovery [%s]: %s@,window=%d replayed=%d%s skipped=%d handoff=%d blocks%s (%.4fs)"
    (trigger_to_string r.r_trigger)
    (match r.r_outcome with Recovered -> "recovered" | Recovery_failed msg -> "FAILED: " ^ msg)
    r.r_window r.r_replayed
    (if r.r_seeded then " (seeded)" else "")
    r.r_skipped r.r_handoff_blocks
    (if r.r_delegated_sync then " +delegated fsync" else "")
    r.r_wall_seconds;
  if r.r_phases <> [] then begin
    Format.fprintf ppf "@,phases:";
    List.iter
      (fun p -> Format.fprintf ppf " %s=%a" p.ph_name Rae_util.Vclock.pp_duration p.ph_ns)
      r.r_phases
  end;
  List.iter (fun d -> Format.fprintf ppf "@,discrepancy %a" pp_discrepancy d) r.r_discrepancies;
  Format.fprintf ppf "@]"
