(** The operation log: RAE's record of "the gap between the applications'
    view and the on-disk state" (paper §3.2).

    Every operation the base executes is recorded together with its
    outcome (return value, new file descriptors, new inode numbers).  When
    the base commits — making the window durable — the log is discarded
    and the descriptor table is snapshotted, so the log is always exactly
    the suffix of operations whose effects live only in the base's
    volatile memory.

    The log lives in the RAE controller, outside the base filesystem's
    untrusted state: a contained reboot wipes the base, not the log. *)

type t

val create : unit -> t

val record : t -> Rae_vfs.Op.t -> Rae_vfs.Op.outcome -> unit
(** Append one executed operation with the outcome the application saw. *)

val entries : t -> Rae_vfs.Op.recorded list
(** The current window, oldest first. *)

val length : t -> int

val next_seq : t -> int
(** The seq the next {!record} will assign.  Monotonic across
    {!checkpoint}s (pruning discards entries, not numbering), so a caller
    can remember a seq and later ask for the suffix recorded since. *)

val entries_from : t -> seq:int -> Rae_vfs.Op.recorded list
(** The window entries with [r.seq >= seq], oldest first — the Δ suffix a
    checkpoint-seeded recovery replays.  O(Δ), not O(window).  A [seq]
    older than the window start returns the whole window. *)

val checkpoint :
  t -> fds:(Rae_vfs.Types.fd * Rae_vfs.Types.ino * Rae_vfs.Types.open_flags) list -> unit
(** The base committed: discard the window and snapshot the descriptor
    table as of the new trusted state. *)

val fd_snapshot : t -> (Rae_vfs.Types.fd * Rae_vfs.Types.ino * Rae_vfs.Types.open_flags) list
(** Descriptors open at the last commit (the S0 descriptor table). *)

val total_recorded : t -> int
(** Operations ever recorded (monotonic). *)

val total_discarded : t -> int
(** Operations discarded by checkpoints (monotonic). *)

val max_window : t -> int
(** Largest window length observed — bounds worst-case recovery work. *)

val reset_stats : t -> unit
(** Zero the monotonic counters and re-seat [max_window] at the current
    window length.  The window itself is untouched. *)
