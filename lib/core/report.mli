(** Recovery and discrepancy reporting.

    Discrepancies — the base and the shadow disagreeing on an operation's
    outcome — are the paper's §4.3 signal: "disagreements between the base
    and shadow indicate bugs in the base or missing conditions in the
    shadow.  Either way, reporting the discrepancies is necessary."  Every
    recovery produces a {!recovery} record usable both for operations
    (what happened, how long it took) and for post-error testing (which
    outputs disagreed). *)

type discrepancy = {
  d_seq : int;  (** position in the recorded window *)
  d_op : Rae_vfs.Op.t;
  d_base : Rae_vfs.Op.outcome;  (** what the base originally returned *)
  d_shadow : Rae_vfs.Op.outcome;  (** what the shadow computed *)
}

type trigger =
  | Panic of { bug : string; msg : string }
  | Hang_detected of { bug : string; msg : string }
  | Validation of { context : string; msg : string }
  | Warning_storm of { bug : string; msg : string }

type outcome = Recovered | Recovery_failed of string

type phase = { ph_name : string; ph_ns : int64 }
(** One timed step of the §3.2 recovery pipeline (combined virtual-clock +
    CPU nanoseconds). *)

type recovery = {
  r_trigger : trigger;
  r_window : int;  (** recorded operations at the time of the error *)
  r_replayed : int;  (** constrained-mode operations re-executed *)
  r_skipped : int;  (** error-outcome operations omitted (paper §3.2) *)
  r_discrepancies : discrepancy list;
  r_handoff_blocks : int;  (** dirty blocks downloaded into the base *)
  r_delegated_sync : bool;  (** an in-flight fsync was handed back to the base *)
  r_seeded : bool;
      (** replay was seeded from the warm checkpoint: [r_replayed] counts
          only the Δ suffix past the fold cursor, not the whole window *)
  r_wall_seconds : float;
  r_phases : phase list;  (** per-phase durations, pipeline order *)
  r_outcome : outcome;
}

val trigger_to_string : trigger -> string
val pp_discrepancy : Format.formatter -> discrepancy -> unit
val pp_recovery : Format.formatter -> recovery -> unit
