open Rae_vfs

type t = {
  mutable entries : Op.recorded list;  (* newest first *)
  mutable window : int;  (* List.length entries, maintained *)
  mutable next_seq : int;
  mutable fds : (Types.fd * Types.ino * Types.open_flags) list;
  mutable total : int;
  mutable discarded : int;
  mutable max_window : int;
}

let create () =
  { entries = []; window = 0; next_seq = 0; fds = []; total = 0; discarded = 0; max_window = 0 }

let record t op outcome =
  t.entries <- { Op.op; outcome; seq = t.next_seq } :: t.entries;
  t.next_seq <- t.next_seq + 1;
  t.total <- t.total + 1;
  t.window <- t.window + 1;
  if t.window > t.max_window then t.max_window <- t.window

let entries t = List.rev t.entries
let length t = t.window

let checkpoint t ~fds =
  t.discarded <- t.discarded + t.window;
  t.entries <- [];
  t.window <- 0;
  t.fds <- fds

let fd_snapshot t = t.fds
let total_recorded t = t.total
let total_discarded t = t.discarded
let max_window t = t.max_window
