open Rae_vfs

(* The window is a growable array in record order, so [record], [length]
   and [checkpoint] are O(1) (amortised for the occasional doubling) and
   [entries] is a single oldest-first copy-out with no List.rev. *)
type t = {
  mutable buf : Op.recorded array;  (* slots [0, window) are live, oldest first *)
  mutable window : int;
  mutable next_seq : int;
  mutable fds : (Types.fd * Types.ino * Types.open_flags) list;
  mutable total : int;
  mutable discarded : int;
  mutable max_window : int;
}

let create () =
  { buf = [||]; window = 0; next_seq = 0; fds = []; total = 0; discarded = 0; max_window = 0 }

let record t op outcome =
  let r = { Op.op; outcome; seq = t.next_seq } in
  if t.window = Array.length t.buf then begin
    let grown = Array.make (max 16 (2 * t.window)) r in
    Array.blit t.buf 0 grown 0 t.window;
    t.buf <- grown
  end;
  t.buf.(t.window) <- r;
  t.window <- t.window + 1;
  t.next_seq <- t.next_seq + 1;
  t.total <- t.total + 1;
  if t.window > t.max_window then t.max_window <- t.window

let entries t = Array.to_list (Array.sub t.buf 0 t.window)
let length t = t.window
let next_seq t = t.next_seq

(* Window slots carry consecutive seqs ending at [next_seq - 1], so the
   suffix from [seq] starts at a computable offset: no scan, O(Δ) copy. *)
let entries_from t ~seq =
  let first = t.next_seq - t.window in
  let start = max 0 (seq - first) in
  Array.to_list (Array.sub t.buf start (t.window - start))

let checkpoint t ~fds =
  t.discarded <- t.discarded + t.window;
  t.window <- 0;
  t.buf <- [||] (* drop references so discarded records can be collected *);
  t.fds <- fds

let fd_snapshot t = t.fds
let total_recorded t = t.total
let total_discarded t = t.discarded
let max_window t = t.max_window

let reset_stats t =
  t.total <- 0;
  t.discarded <- 0;
  t.max_window <- t.window
