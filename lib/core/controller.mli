(** The RAE controller: Robust Alternative Execution.

    This module is the paper's contribution.  It wraps a mounted base
    filesystem and exposes the same API; in the common case every call
    goes straight to the base at full speed, with RAE recording the
    operation and its outcome.  When the base hits a runtime error —
    a BUG/panic, a detected hang, a WARN (configurable), or a failed
    commit-barrier validation — the controller runs the recovery protocol
    of paper §3.2:

    + {b contained reboot} — the base's volatile state is discarded and
      rebuilt from the trusted on-disk state S0 (journal replay included);
      applications and their descriptors are preserved by RAE, not by the
      base;
    + {b state reconstruction} — a fresh shadow filesystem is attached to
      the device (read-only; optionally behind a full fsck of S0).  The
      descriptor table recorded at the last commit is reinstated, then the
      recorded window replays in {e constrained mode}: operations that
      failed in the base are omitted, successful ones are re-executed and
      their outcomes cross-checked against the record (discrepancies are
      reported; policy decides whether to abort).  The in-flight operation
      — whose result the application has not yet seen — runs in
      {e autonomous mode}: the shadow makes its own policy decisions and
      its outcome is what the application receives;
    + {b error avoidance} — the base never re-executes the triggering
      sequence.  It absorbs the shadow's overlay via
      {!Rae_basefs.Base.download_metadata} (metadata installed dirty
      through the base's own logic, then committed) and resumes.  An
      in-flight [fsync]/[sync] is delegated back to the rebooted base
      after hand-off, since the shadow never persists anything.

    If recovery itself fails (the image is corrupt beyond the journal, or
    the shadow's invariant checks reject the replay), the controller
    degrades to fail-stop: the triggering operation and all subsequent
    ones return [EIO], but the process survives — availability degrades
    gracefully instead of crashing the machine. *)

type policy = {
  treat_warnings_as_errors : bool;  (** WARN triggers recovery (default true) *)
  fsck_before_recovery : bool;
      (** run the full image check before trusting S0 (paper §4.3's
          verified-fsck liveness requirement; default true) *)
  cross_check : bool;  (** compare shadow outcomes against the record (default true) *)
  abort_on_discrepancy : bool;
      (** treat a cross-check mismatch as a failed recovery instead of
          preferring the shadow's answer (default false) *)
  max_recovery_attempts : int;  (** per-operation bound on recursive recoveries (default 3) *)
  shadow_checks : bool;  (** the shadow's runtime invariant checking (default true) *)
  ckpt_enabled : bool;
      (** maintain a warm shadow {!Checkpoint} so recovery replays only
          the Δ suffix past the last fold instead of the whole window
          (default false) *)
  ckpt_fold_interval : int;
      (** fold the warm shadow forward every this-many recorded
          operations (default 32) *)
  ckpt_fast_paths : bool;
      (** let the warm shadow use its caching fast paths while folding
          (default true); disabling reproduces the naive shadow for
          overhead measurements *)
  slow_op_ns : int;
      (** flight-recorder threshold: an op completing slower than this
          earns a [Slow_op] event next to its [Op_done]
          (default 10ms) *)
  par_domains : int;
      (** size of the OCaml 5 domain pool (default 1: no pool, every
          path bit-for-bit identical to the single-domain controller).
          With [> 1]: recovery's attach-time fsck and the contained
          reboot's journal-replay destage run on the pool, and the
          checkpoint fold moves onto a dedicated background domain (the
          record step only enqueues; recovery's seed phase awaits the
          in-flight fold).  Retire such a controller with {!shutdown}. *)
}

val default_policy : policy

type stats = {
  ops : int;  (** operations executed through the controller *)
  recoveries : int;
  recoveries_failed : int;
  discrepancies : int;
  window : int;  (** currently recorded (volatile) operations *)
  max_window : int;
  total_recorded : int;
  total_discarded : int;
}

type t

val make :
  ?policy:policy ->
  ?tracer:Rae_obs.Tracer.t ->
  ?events:Rae_obs.Events.t ->
  ?bundle_dir:string ->
  ?run_id:string ->
  device:Rae_block.Device.t ->
  Rae_basefs.Base.t ->
  t
(** Wrap a mounted base.  The controller registers itself on the base's
    commit hook to prune the oplog.  When [tracer] is given it is also
    attached to the base (commit/destage/replay spans), and every recovery
    emits one [recovery] span containing one child span per §3.2 phase
    plus per-op replay spans.

    When [events] is given the flight recorder is attached to the whole
    stack (controller op/recovery events, checkpoint cut/fold/poison,
    base bug-registry triggers) and its clock is slaved to the
    controller's.  When [bundle_dir] is given, every recovery completion
    and every fail-stop entry writes a postmortem black-box bundle there
    (see {!Rae_obs.Blackbox}); [run_id] is stamped into each bundle. *)

val exec : t -> Rae_vfs.Op.t -> Rae_vfs.Op.outcome
(** Execute one operation with transparent recovery.  Never raises the
    base's runtime-error exceptions.  Equivalent to
    [exec_for ~corr:0 ~session:0]. *)

val exec_for : t -> corr:int -> session:int -> Rae_vfs.Op.t -> Rae_vfs.Op.outcome
(** {!exec} with an origin for the flight recorder: [corr] is the
    client-supplied end-to-end correlation id (0 = none), [session] the
    serving-layer session id (0 = local).  Both land in the [Op_done] /
    [Slow_op] events so a postmortem bundle can name the requests a
    recovery impacted. *)

include Rae_vfs.Fs_intf.S with type t := t
(** The full filesystem API, routed through {!exec}. *)

val base : t -> Rae_basefs.Base.t

val pool : t -> Rae_par.Pool.t option
(** The domain pool ([policy.par_domains > 1]), for callers that want to
    reuse it (benches, sweeps). *)

val degraded : t -> string option
(** [Some reason] once the controller has entered fail-stop mode. *)

val events : t -> Rae_obs.Events.t option
(** The attached flight recorder, if any. *)

val health : t -> Rae_obs.Events.health
(** Derived liveness: [Failstop] once degraded, [Recovering] inside a
    recovery, [Degraded] when the last recovery left cross-check
    discrepancies, [Healthy] otherwise.  Exported as the [rae_health]
    gauge by {!register_obs}. *)

val bundles : t -> string list
(** Paths of every black-box bundle written so far, oldest first. *)

val bundle_dir : t -> string option

val set_bundle_context : t -> (unit -> (string * Rae_obs.Jsonx.t) list) -> unit
(** Register a provider of embedder-specific bundle fields, sampled at
    emission time.  An ["impacted_sessions"] key replaces the bundle's
    (otherwise empty) impacted-sessions list — the serving layer uses
    this to name the sessions and in-flight requests a recovery hit;
    any other keys are appended to the bundle object as-is. *)

val stats : t -> stats
val recoveries : t -> Report.recovery list
(** All recovery reports, oldest first. *)

val discrepancies : t -> Report.discrepancy list
(** All cross-check mismatches ever observed (the §4.3 testing signal). *)

val last_recovery : t -> Report.recovery option

val reset_stats : t -> unit
(** Zero the controller's counters and oplog/latency statistics so
    before/after windows can be compared (parity with
    {!Rae_block.Blkmq.reset_stats} and the cache stats API): the op and
    recovery counters, the oplog totals, the end-to-end recovery and
    per-phase latency histograms, the checkpoint counters (including the
    background-fold queue counters), and the domain pool's task/steal
    counters.  The recovery log itself — {!recoveries},
    {!discrepancies} — is retained. *)

val shutdown : t -> unit
(** Join the parallel runtime: drain and stop the checkpoint's
    background fold domain, then the pool's worker domains.  No-op for
    [par_domains = 1] controllers.  Live domains are a bounded OS
    resource — call this when retiring a [par_domains > 1] controller. *)

val checkpoint_now : t -> (unit, string) result
(** Force a checkpoint cut.  Fails when checkpointing is disabled by
    policy, or when the op window is non-empty — a checkpoint is only
    sound at a journal-commit boundary (call {!sync} first). *)

val checkpoint_stats : t -> Checkpoint.stats option
(** [None] when checkpointing is disabled by policy. *)

val checkpoint_valid : t -> bool
(** A warm checkpoint is available to seed the next recovery. *)

val phase_names : string list
(** The §3.2 pipeline step names, in order, as they appear in spans,
    [Report.phase] entries and phase-histogram metric names.  [seed] is
    emitted only by checkpoint-seeded recoveries (it replaces
    [shadow-attach] + [fd-reinstate]); cold recoveries emit the rest. *)

val register_obs : Rae_obs.Metrics.t -> t -> unit
(** Register the whole stack's metrics: the controller's counters and
    recovery/phase latency histograms ([rae_*]), the domain-pool
    [rae_par_*] family when a pool is attached (tasks, steals, batches,
    pool size; the checkpoint adds the [rae_par_fold_*] queue family),
    plus everything {!Rae_basefs.Base.register_obs} registers for the
    wrapped base. *)
