(** The crash oracle: mount, replay, fsck, compare.

    For each enumerated crash point the oracle materializes the image,
    mounts the base over it (journal replay runs), unmounts, fscks, then
    attaches the shadow read-only and compares the recovered tree against
    every legal durable boundary of the recording. *)

type verdict =
  | Consistent  (** raw image already fsck-clean before replay *)
  | Repaired  (** replay needed; clean and equivalent afterwards *)
  | Diverging of string
      (** mount failure, escaped runtime error, post-replay fsck
          findings, or no legal boundary matches *)

type outcome = {
  o_key : string;
  o_verdict : verdict;
  o_matched : int option;
      (** boundary index the image recovered to, when one matched *)
  o_candidates : int * int;  (** the legal window in boundary indices *)
}

val verdict_to_string : verdict -> string
val is_diverging : outcome -> bool

val window : Recording.t -> Enumerate.point -> int * int
(** Legal boundary window [lo, hi] for a point: [lo] is the last boundary
    certainly durable (recovering below it would lose promised data — a
    durability violation), [hi] the last boundary started plus one (an
    in-flight commit may be completed by replay), clamped. *)

val judge : Recording.t -> Enumerate.point -> outcome
