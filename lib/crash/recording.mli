(** Recording phase of the crash-point enumerator.

    Runs a bounded workload over a crashsim-traced device and captures
    everything the offline enumerator needs: the device-level write/flush
    stream, the base image the stream starts from, and one spec snapshot
    per journal-commit boundary — the legal durable states any crash
    image materialized from the stream may recover to. *)

type boundary = {
  b_index : int;
  b_commit_seq : int64;
  b_op : int;  (** ops covered by this commit (1-origin count) *)
  b_event : int;  (** events recorded when the commit completed *)
  b_spec : Rae_specfs.Spec.t;
}

type t = {
  events : Rae_block.Crashsim.event array;
  boundaries : boundary array;  (** [boundaries.(0)] is the fresh image *)
  base_image : bytes array;
  nblocks : int;
  ninodes : int;
  commit_interval : int;
  ops : Rae_vfs.Op.t array;
  hazards : int list array;
      (** per op: inos whose on-medium content the op may tear once the
          op is no longer covered by a fully flushed commit *)
  barriers : bool;
      (** [false]: enumerate as if the device ignored flush barriers
          (the seeded-divergence fixture) *)
  recovery_from : int option;
      (** first event of the recovery-pipeline write suffix, when the
          recording drove a crash-mid-recovery run *)
  seeded_recovery : bool;  (** that recovery seeded from a checkpoint *)
}

val block_size : int

val record :
  ?nblocks:int ->
  ?ninodes:int ->
  ?commit_interval:int ->
  ?barriers:bool ->
  Rae_vfs.Op.t list ->
  t
(** Format a fresh image, mount the base over a tracing crashsim, run the
    workload in lockstep with a spec model, and snapshot the spec at every
    group-commit boundary.  The snapshot taken when a commit fires already
    includes the op the commit ran inside (the base commits {e after} the
    mutation). *)

val record_recovery :
  ?nblocks:int ->
  ?ninodes:int ->
  ?commit_interval:int ->
  ?ckpt:bool ->
  ?fold_interval:int ->
  Rae_vfs.Op.t list ->
  t
(** Same lockstep run through the controller with a deterministic panic
    armed on a reserved path component ({!trigger_component}); the
    workload is extended with one op that touches it.  Events past
    [recovery_from] are the recovery pipeline's own writes (journal replay
    inside the contained reboot, then the download-metadata commit), so
    crash points in that suffix model power failing {e during} recovery.
    With [ckpt] the recovery seeds from the warm checkpoint, covering the
    crash-mid-checkpoint-fold path.  @raise Invalid_argument if the run
    degrades to fail-stop or the panic never triggers. *)

val trigger_component : string

val hazard_inos : Rae_specfs.Spec.t -> Rae_vfs.Op.t -> int list
(** Inos whose on-medium bytes [op] may tear (content writes, truncates,
    and frees that allow block reuse), resolved against the pre-op spec. *)

val dirty_after : t -> boundary -> Rae_vfs.Types.ino -> bool
(** [dirty_after t lo] flags every ino a post-[lo] op may have torn —
    the relaxation set handed to {!Rae_core.Differential.crash_states_equal}
    when comparing against boundary [lo] or later. *)

val write_count : t -> int
(** Number of write events in the recorded stream. *)
