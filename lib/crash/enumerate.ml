(* Crash-point enumeration over a recorded write/flush stream.

   Two families of points, both addressed by a replayable string key:

   - prefix points [p:<i>]: the first [i] events applied in issue order.
     This models in-order destage — the device lost power having made
     some prefix of the stream durable.  Everything a fully flushed
     commit wrote is in the image, so the durability lower bound is the
     last boundary recorded at or before [i].

   - subset points [s:<start>:<len>:<mask>]: all events before [start]
     applied, then an arbitrary subset of the writes in
     [start, start+len) — one barrier epoch.  Within an epoch the device
     may destage buffered writes in any order; since per block only the
     last buffered version can land (the crashsim buffers newest-first
     and destages oldest-first, overwriting), every image an arbitrary
     destage reordering could produce is reached by some subset applied
     in issue order.  The durability bound drops to the epoch's start;
     the application upper bound extends to its end.

   Epochs are the flush-free runs of the stream.  A recording with
   [barriers = false] is enumerated as one giant epoch — the
   seeded-divergence fixture modelling a device that ignores barriers. *)

module Crashsim = Rae_block.Crashsim
module Disk = Rae_block.Disk

type point = {
  p_key : string;
  p_guaranteed : int;  (* events certainly durable: indices < p_guaranteed *)
  p_applied_hi : int;  (* no event at index >= p_applied_hi is in the image *)
}

let is_write ev = match ev with Crashsim.Write _ -> true | Crashsim.Flush -> false

(* Flush-free maximal runs as (start, len) in event indices. *)
let epochs (t : Recording.t) =
  let n = Array.length t.events in
  if not t.barriers then if n = 0 then [] else [ (0, n) ]
  else begin
    let out = ref [] in
    let start = ref 0 in
    for i = 0 to n - 1 do
      if not (is_write t.events.(i)) then begin
        if i > !start then out := (!start, i - !start) :: !out;
        start := i + 1
      end
    done;
    if n > !start then out := (!start, n - !start) :: !out;
    List.rev !out
  end

let prefix_key i = Printf.sprintf "p:%d" i

let subset_key ~start ~len mask =
  Printf.sprintf "s:%d:%d:%s" start len (Crashsim.mask_to_hex mask)

let subset_point (t : Recording.t) ~start ~len mask =
  ignore t;
  {
    p_key = subset_key ~start ~len mask;
    p_guaranteed = start;
    p_applied_hi = start + len;
  }

let plan ?(prefix_stride = 1) ?(max_subset_bits = 5) ?(samples_per_epoch = 12)
    ?(seed = 0xC4A5DL) ?(from_event = 0) (t : Recording.t) =
  let n = Array.length t.events in
  let points = ref [] in
  let add p = points := p :: !points in
  (* Prefix points: after every event (strided), plus the endpoints.  A
     point right after a flush carries a strictly higher durability bound
     than the image-identical point before it, so flush positions stay. *)
  let want_prefix i =
    i = from_event || i = n || (i - from_event) mod prefix_stride = 0
  in
  for i = from_event to n do
    if want_prefix i then add { p_key = prefix_key i; p_guaranteed = i; p_applied_hi = i }
  done;
  (* Subset points per epoch.  Writes-only indices matter for the mask;
     flush positions inside a barrier-less pseudo-epoch stay unset. *)
  let rng = Rae_util.Rng.create seed in
  List.iter
    (fun (start, len) ->
      if start + len > from_event then begin
        let widx = ref [] in
        for j = len - 1 downto 0 do
          if is_write t.events.(start + j) then widx := j :: !widx
        done;
        let widx = Array.of_list !widx in
        let m = Array.length widx in
        if m >= 2 then
          if m <= max_subset_bits then
            (* exhaustive, skipping empty (= p:start) and full (= p:start+len) *)
            for bits = 1 to (1 lsl m) - 2 do
              let mask = Array.make len false in
              for b = 0 to m - 1 do
                if bits land (1 lsl b) <> 0 then mask.(widx.(b)) <- true
              done;
              add (subset_point t ~start ~len mask)
            done
          else begin
            let seen = Hashtbl.create 16 in
            let tries = samples_per_epoch * 4 in
            let found = ref 0 in
            let attempt = ref 0 in
            while !found < samples_per_epoch && !attempt < tries do
              incr attempt;
              let mask = Array.make len false in
              let bits = ref 0 in
              for b = 0 to m - 1 do
                if Rae_util.Rng.bool rng then begin
                  mask.(widx.(b)) <- true;
                  incr bits
                end
              done;
              if !bits > 0 && !bits < m then begin
                let key = Crashsim.mask_to_hex mask in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  incr found;
                  add (subset_point t ~start ~len mask)
                end
              end
            done
          end
      end)
    (epochs t);
  List.rev !points

(* ---- materialization ---- *)

let parse_key (t : Recording.t) key =
  let n = Array.length t.events in
  match String.split_on_char ':' key with
  | [ "p"; i ] -> (
      match int_of_string_opt i with
      | Some i when i >= 0 && i <= n -> Ok (`Prefix i)
      | _ -> Error (Printf.sprintf "bad prefix point %S (stream has %d events)" key n))
  | [ "s"; start; len; hex ] -> (
      match (int_of_string_opt start, int_of_string_opt len) with
      | Some start, Some len when start >= 0 && len >= 0 && start + len <= n -> (
          match Crashsim.mask_of_hex ~n:len hex with
          | Some mask -> Ok (`Subset (start, len, mask))
          | None -> Error (Printf.sprintf "bad subset mask in %S" key))
      | _ -> Error (Printf.sprintf "bad subset point %S (stream has %d events)" key n))
  | _ -> Error (Printf.sprintf "unparseable crash-point key %S" key)

let bounds_of_key t key =
  match parse_key t key with
  | Error _ -> None
  | Ok (`Prefix i) -> Some (i, i)
  | Ok (`Subset (start, len, _)) -> Some (start, start + len)

(* Build the crash image: fresh disk, restore the post-mkfs snapshot,
   then apply the selected writes in issue order. *)
let apply (t : Recording.t) key =
  match parse_key t key with
  | Error _ as e -> e
  | Ok sel ->
      let disk =
        Disk.create ~latency:Disk.zero_latency ~block_size:Recording.block_size
          ~nblocks:t.nblocks ()
      in
      Disk.restore disk t.base_image;
      let put i =
        match t.events.(i) with
        | Crashsim.Write (blk, data) -> Disk.write disk blk (Bytes.copy data)
        | Crashsim.Flush -> ()
      in
      (match sel with
      | `Prefix upto -> for i = 0 to upto - 1 do put i done
      | `Subset (start, len, mask) ->
          for i = 0 to start - 1 do put i done;
          for j = 0 to len - 1 do if mask.(j) then put (start + j) done);
      Ok disk
