(** The B3-style crash-consistency scenario engine.

    Glues {!Recording}, {!Enumerate} and {!Oracle} into sweeps over
    bounded, targeted and crash-during-recovery workloads, and carries
    the operator workflows: postmortem bundles per divergence, replay of
    a single crash point by key, and greedy workload minimization. *)

type config = {
  prefix_stride : int;  (** thin out prefix points by this stride *)
  max_subset_bits : int;
      (** exhaustive subset enumeration up to this many writes/epoch *)
  samples_per_epoch : int;  (** rng-drawn masks for bigger epochs *)
  seed : int64;
  bundle_dir : string option;
      (** when set, write one [kind="crash"] postmortem bundle per
          diverging crash image (best-effort) *)
  run_id : string;
}

val default_config : config

type divergence = { d_label : string; d_key : string; d_reason : string }

type stats = {
  s_workloads : int;
  s_points : int;
  s_consistent : int;
  s_repaired : int;
  s_diverging : divergence list;
}

val empty_stats : stats
val merge : stats -> stats -> stats
val pp_stats : Format.formatter -> stats -> unit
val render_ops : Rae_vfs.Op.t list -> string

val sweep_recording :
  ?cfg:config -> ?from_event:int -> label:string -> Recording.t -> stats
(** Enumerate and judge every crash point of one recording. *)

val sweep_ops :
  ?cfg:config -> ?barriers:bool -> label:string -> Rae_vfs.Op.t list -> stats
(** Record a workload and sweep it.  [barriers:false] enumerates as if
    the device ignored flush barriers — the seeded-divergence fixture. *)

val sweep_bounded :
  ?cfg:config -> ?pool:Rae_par.Pool.t -> max_workloads:int -> unit -> stats
(** Sweep a deterministic sample of the deduplicated seq-3 space.  With a
    [pool] of size > 1 the workloads (each self-contained: fresh image,
    fresh mounts per crash point) are dealt across domains and the per-
    workload stats merged back in workload order, so the result —
    including the divergence list — is identical to the sequential
    sweep's. *)

val sweep_full : ?cfg:config -> ?pool:Rae_par.Pool.t -> unit -> stats
(** Sweep {e every} workload of the deduplicated bounded space
    ({!Bounded.all}, 2103 workloads at seq ≤ 3) — the exhaustive arm of
    the crash study, practical only with a [pool].  Same determinism
    contract as {!sweep_bounded}. *)

val sweep_targeted :
  ?cfg:config ->
  ?count:int ->
  ?seeds:int64 list ->
  ?profiles:Rae_workload.Workload.profile list ->
  unit ->
  stats
(** Sweep generated application-shaped workloads (default: varmail and
    metadata profiles) on a larger image. *)

val sweep_recovery : ?cfg:config -> ?count:int -> ?seed:int64 -> ckpt:bool -> unit -> stats
(** Crash during recovery: run a workload through the controller with a
    deterministic panic armed, then enumerate crash points only in the
    recovery pipeline's own write suffix.  With [ckpt] the recovery
    seeds from the warm checkpoint (crash-mid-checkpoint-fold coverage);
    raises [Invalid_argument] if that run did not actually seed. *)

val first_divergence :
  ?cfg:config -> ?barriers:bool -> Rae_vfs.Op.t list -> divergence option
(** Sweep one workload and return its first diverging point, if any. *)

val minimize :
  ?cfg:config -> ?barriers:bool -> Rae_vfs.Op.t list -> Rae_vfs.Op.t list option
(** Greedy delta-debugging: repeatedly drop ops while some crash point
    still diverges.  [None] if the input never diverged. *)

val repro :
  ?barriers:bool -> key:string -> Rae_vfs.Op.t list -> (Oracle.outcome, string) result
(** Re-record the workload and judge exactly one crash point by key. *)
