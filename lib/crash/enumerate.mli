(** Crash-point enumeration over a recorded write/flush stream.

    A crash point is addressed by a replayable string key:

    - [p:<i>] — prefix point: the first [i] events applied in issue
      order (in-order destage up to a power cut);
    - [s:<start>:<len>:<mask>] — subset point: everything before
      [start] applied, then the hex-masked subset of the writes in one
      barrier epoch [start, start+len).  Per block only the last
      buffered version can land, so subsets applied in issue order reach
      every image arbitrary intra-epoch destage reordering could
      produce.

    Keys are stable for a given recording (same workload, same
    geometry), which is what makes [--repro KEY] work. *)

type point = {
  p_key : string;
  p_guaranteed : int;
      (** events certainly durable: all indices < [p_guaranteed] *)
  p_applied_hi : int;
      (** no event at index >= [p_applied_hi] reached the image *)
}

val epochs : Recording.t -> (int * int) list
(** Flush-free maximal runs of the stream as [(start, len)] pairs; a
    [barriers = false] recording yields a single run spanning the whole
    stream. *)

val plan :
  ?prefix_stride:int ->
  ?max_subset_bits:int ->
  ?samples_per_epoch:int ->
  ?seed:int64 ->
  ?from_event:int ->
  Recording.t ->
  point list
(** Enumerate: a (strided) prefix point after every event plus both
    endpoints, and per-epoch subset points — exhaustive when the epoch
    holds at most [max_subset_bits] writes, otherwise
    [samples_per_epoch] distinct rng-drawn masks ([seed] makes the
    sample deterministic).  [from_event] restricts to points at or past
    that stream position — the crash-mid-recovery sweeps pass the
    recording's [recovery_from]. *)

val apply : Recording.t -> string -> (Rae_block.Disk.t, string) result
(** Materialize the crash image for a key on a fresh disk: restore the
    post-mkfs snapshot, then apply the selected writes in issue order. *)

val bounds_of_key : Recording.t -> string -> (int * int) option
(** [(guaranteed, applied_hi)] for a key, or [None] if unparseable. *)
