(* Recording phase of the crash-point enumerator: run a bounded workload
   over a crashsim-traced device and capture everything the offline
   enumerator needs — the device-level write/flush stream, the base image
   the stream starts from, and one spec snapshot per journal-commit
   boundary (the legal durable states a crash image may recover to).

   The spec model runs in lockstep with the base, one op ahead of the
   commit hook, so the snapshot taken when a group commit fires already
   includes the op the commit ran inside (base.ml finish_mutation commits
   *after* the mutation). *)

module Disk = Rae_block.Disk
module Device = Rae_block.Device
module Crashsim = Rae_block.Crashsim
module Base = Rae_basefs.Base
module Bug_registry = Rae_basefs.Bug_registry
module Controller = Rae_core.Controller
module Spec = Rae_specfs.Spec
module Op = Rae_vfs.Op
module Types = Rae_vfs.Types

type boundary = {
  b_index : int;
  b_commit_seq : int64;
  b_op : int;  (* ops covered by this commit (1-origin count) *)
  b_event : int;  (* events recorded when the commit completed *)
  b_spec : Spec.t;
}

type t = {
  events : Crashsim.event array;
  boundaries : boundary array;  (* [0] is the freshly formatted image *)
  base_image : bytes array;
  nblocks : int;
  ninodes : int;
  commit_interval : int;
  ops : Op.t array;
  hazards : int list array;
      (* per op: inos whose on-medium bytes the op may tear once the op is
         no longer covered by a fully flushed commit — content writes,
         plus frees that allow block reuse *)
  barriers : bool;  (* false: pretend the device ignored flush barriers *)
  recovery_from : int option;  (* first event of the recovery write suffix *)
  seeded_recovery : bool;
}

let block_size = Rae_format.Layout.block_size

let hazard_inos spec op =
  let stat_ino p =
    match Spec.stat spec p with Ok st -> [ st.Types.st_ino ] | Error _ -> []
  in
  let fstat_ino fd =
    match Spec.fstat spec fd with Ok st -> [ st.Types.st_ino ] | Error _ -> []
  in
  match op with
  | Op.Pwrite (fd, _, _) -> fstat_ino fd
  | Op.Truncate (p, _) -> stat_ino p
  | Op.Open (p, flags) when flags.Types.trunc -> stat_ino p
  | Op.Unlink p -> stat_ino p
  | Op.Rename (_, dst) -> stat_ino dst
  | Op.Rmdir p -> stat_ino p
  | _ -> []

(* Inos that may be torn in an image whose durable bound is boundary
   [lo]: every hazard recorded by an op past lo's covered prefix. *)
let dirty_after t lo =
  let acc = Hashtbl.create 8 in
  for i = lo.b_op to Array.length t.hazards - 1 do
    List.iter (fun ino -> Hashtbl.replace acc ino ()) t.hazards.(i)
  done;
  fun ino -> Hashtbl.mem acc ino

let fresh_run ~nblocks ~ninodes =
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size ~nblocks () in
  let raw = Device.of_disk disk in
  (match Base.mkfs raw ~ninodes () with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Rae_crash.Recording: mkfs failed: " ^ msg));
  let base_image = Disk.snapshot disk in
  let sim, dev = Crashsim.create ~trace:true raw in
  (base_image, sim, dev)

let record ?(nblocks = 512) ?(ninodes = 64) ?(commit_interval = 2) ?(barriers = true) ops =
  let base_image, sim, dev = fresh_run ~nblocks ~ninodes in
  let b =
    match Base.mount ~config:{ Base.default_config with Base.commit_interval } dev with
    | Ok b -> b
    | Error msg -> invalid_arg ("Rae_crash.Recording: mount failed: " ^ msg)
  in
  let spec = Spec.make () in
  let ops = Array.of_list ops in
  let hazards = Array.make (max 1 (Array.length ops)) [] in
  let boundaries = ref [] in
  let covered = ref 0 in
  let push ~commit_seq =
    boundaries :=
      {
        b_index = List.length !boundaries;
        b_commit_seq = commit_seq;
        b_op = !covered;
        b_event = Array.length (Crashsim.events sim);
        b_spec = Spec.copy spec;
      }
      :: !boundaries
  in
  push ~commit_seq:0L;
  Base.on_commit b (fun ~commit_seq -> push ~commit_seq);
  Array.iteri
    (fun i op ->
      hazards.(i) <- hazard_inos spec op;
      ignore (Spec.exec spec op);
      covered := i + 1;
      ignore (Base.exec b op))
    ops;
  Base.commit b;
  {
    events = Crashsim.events sim;
    boundaries = Array.of_list (List.rev !boundaries);
    base_image;
    nblocks;
    ninodes;
    commit_interval;
    ops;
    hazards;
    barriers;
    recovery_from = None;
    seeded_recovery = false;
  }

(* The crash-during-recovery recorder: same lockstep run, but through the
   controller, with a deterministic panic armed on a reserved path name.
   The write stream past [recovery_from] is the §3.2 pipeline's own
   persistence activity (journal replay inside the contained reboot, then
   the download-metadata commit), so enumerating crash points in that
   suffix is exactly "power fails while recovery is writing".  With
   [ckpt] the recovery seeds from the warm checkpoint first, covering the
   crash-mid-fold path (the fold itself never writes — lint-enforced —
   so its crash surface *is* the seeded recovery's write stream). *)
let trigger_component = "boom"

let record_recovery ?(nblocks = 2048) ?(ninodes = 256) ?(commit_interval = 8) ?(ckpt = false)
    ?(fold_interval = 4) ops =
  let base_image, sim, dev = fresh_run ~nblocks ~ninodes in
  let bug =
    {
      Bug_registry.id = "crash-sweep-panic";
      determinism = Bug_registry.Deterministic;
      trigger = Bug_registry.Path_component trigger_component;
      consequence = Bug_registry.Panic;
      modeled_after = "deterministic BUG() on a crafted path (Table 1 crash class)";
    }
  in
  let bugs = Bug_registry.arm [ bug ] in
  let b =
    match Base.mount ~config:{ Base.default_config with Base.commit_interval } ~bugs dev with
    | Ok b -> b
    | Error msg -> invalid_arg ("Rae_crash.Recording: mount failed: " ^ msg)
  in
  let policy =
    {
      Controller.default_policy with
      Controller.ckpt_enabled = ckpt;
      ckpt_fold_interval = fold_interval;
    }
  in
  let ctrl = Controller.make ~policy ~device:dev b in
  let spec = Spec.make () in
  let trigger_op = Op.Create (Rae_vfs.Path.parse_exn ("/" ^ trigger_component), 0o644) in
  let ops = Array.of_list (ops @ [ trigger_op ]) in
  let hazards = Array.make (max 1 (Array.length ops)) [] in
  let boundaries = ref [] in
  let covered = ref 0 in
  let push ~commit_seq =
    boundaries :=
      {
        b_index = List.length !boundaries;
        b_commit_seq = commit_seq;
        b_op = !covered;
        b_event = Array.length (Crashsim.events sim);
        b_spec = Spec.copy spec;
      }
      :: !boundaries
  in
  push ~commit_seq:0L;
  (* Registered after Controller.make, so the controller's oplog-pruning
     hook runs first at every boundary. *)
  Base.on_commit b (fun ~commit_seq -> push ~commit_seq);
  let recovery_from = ref None in
  Array.iteri
    (fun i op ->
      hazards.(i) <- hazard_inos spec op;
      ignore (Spec.exec spec op);
      covered := i + 1;
      if i = Array.length ops - 1 then
        recovery_from := Some (Array.length (Crashsim.events sim));
      ignore (Controller.exec ctrl op))
    ops;
  (match Controller.degraded ctrl with
  | Some reason -> invalid_arg ("Rae_crash.Recording: recovery fail-stopped: " ^ reason)
  | None -> ());
  let seeded =
    match Controller.last_recovery ctrl with
    | Some r -> r.Rae_core.Report.r_seeded
    | None -> invalid_arg "Rae_crash.Recording: armed panic did not trigger a recovery"
  in
  {
    events = Crashsim.events sim;
    boundaries = Array.of_list (List.rev !boundaries);
    base_image;
    nblocks;
    ninodes;
    commit_interval;
    ops;
    hazards;
    barriers = true;
    recovery_from = !recovery_from;
    seeded_recovery = seeded;
  }

let write_count t =
  Array.fold_left
    (fun acc ev -> match ev with Crashsim.Write _ -> acc + 1 | Crashsim.Flush -> acc)
    0 t.events
