(* The scenario engine: glue the recorder, the enumerator and the oracle
   into sweeps, and handle the operator-facing workflows — divergence
   bundles, key replay, and greedy workload minimization. *)

module Op = Rae_vfs.Op
module Workload = Rae_workload.Workload
module Blackbox = Rae_obs.Blackbox
module Jsonx = Rae_obs.Jsonx

type config = {
  prefix_stride : int;
  max_subset_bits : int;
  samples_per_epoch : int;
  seed : int64;
  bundle_dir : string option;  (* write a postmortem bundle per divergence *)
  run_id : string;
}

let default_config =
  {
    prefix_stride = 1;
    max_subset_bits = 5;
    samples_per_epoch = 12;
    seed = 0xC4A5DL;
    bundle_dir = None;
    run_id = "crashstudy";
  }

type divergence = { d_label : string; d_key : string; d_reason : string }

type stats = {
  s_workloads : int;
  s_points : int;
  s_consistent : int;
  s_repaired : int;
  s_diverging : divergence list;
}

let empty_stats =
  { s_workloads = 0; s_points = 0; s_consistent = 0; s_repaired = 0; s_diverging = [] }

let merge a b =
  {
    s_workloads = a.s_workloads + b.s_workloads;
    s_points = a.s_points + b.s_points;
    s_consistent = a.s_consistent + b.s_consistent;
    s_repaired = a.s_repaired + b.s_repaired;
    s_diverging = a.s_diverging @ b.s_diverging;
  }

let pp_op = Op.pp
let render_ops ops = Format.asprintf "%a" (Fmt.list ~sep:(Fmt.any "; ") pp_op) ops

(* ---- divergence bundles (PR 7 postmortem format, kind "crash") ---- *)

let bundle_seq = Atomic.make 0 (* atomic: parallel sweeps emit bundles concurrently *)

let emit_bundle cfg ~label (t : Recording.t) (o : Oracle.outcome) =
  match cfg.bundle_dir with
  | None -> ()
  | Some dir ->
      let seq = Atomic.fetch_and_add bundle_seq 1 in
      let reason =
        match o.Oracle.o_verdict with Oracle.Diverging r -> r | _ -> "not-diverging"
      in
      let lo, hi = o.Oracle.o_candidates in
      let json =
        Jsonx.Obj
          [
            ("schema", Jsonx.Str Blackbox.schema_version);
            ("kind", Jsonx.Str Blackbox.kind_crash);
            ("seq", Jsonx.Int seq);
            ("ts_ns", Jsonx.Int 0);
            ("rev", Jsonx.Str (Blackbox.git_rev ()));
            ("run_id", Jsonx.Str cfg.run_id);
            ("health", Jsonx.Str "DEGRADED");
            ( "policy",
              Jsonx.Obj
                [
                  ("workload", Jsonx.Str label);
                  ("ops", Jsonx.List (Array.to_list t.Recording.ops |> List.map (fun op -> Jsonx.Str (Format.asprintf "%a" pp_op op))));
                  ("barriers", Jsonx.Bool t.Recording.barriers);
                  ("nblocks", Jsonx.Int t.Recording.nblocks);
                  ("ninodes", Jsonx.Int t.Recording.ninodes);
                  ("commit_interval", Jsonx.Int t.Recording.commit_interval);
                ] );
            ("checkpoint", Jsonx.Null);
            ("journal", Jsonx.Null);
            ("metrics", Jsonx.Obj [ ("events", Jsonx.Int (Array.length t.Recording.events)) ]);
            ( "events",
              Jsonx.List
                [
                  Jsonx.Obj
                    [
                      ("seq", Jsonx.Int 0);
                      ("ts_ns", Jsonx.Int 0);
                      ("kind", Jsonx.Str "crash-divergence");
                      ("key", Jsonx.Str o.Oracle.o_key);
                    ];
                ] );
            ( "recovery",
              Jsonx.Obj
                [
                  ("trigger", Jsonx.Str ("crash-divergence:" ^ o.Oracle.o_key));
                  ("outcome", Jsonx.Str reason);
                  ("window", Jsonx.Int (hi - lo + 1));
                  ("replayed", Jsonx.Int 0);
                  ("skipped", Jsonx.Int 0);
                  ("seeded", Jsonx.Bool t.Recording.seeded_recovery);
                  ("phases", Jsonx.List []);
                ] );
            ("impacted_sessions", Jsonx.List []);
          ]
      in
      (* Best-effort, like the controller's bundle writer: a sweep must
         not fail because the bundle directory is unwritable. *)
      (match Blackbox.write ~dir ~seq ~kind:Blackbox.kind_crash json with
      | Ok _ | Error _ -> ())

(* ---- sweeps ---- *)

let sweep_recording ?(cfg = default_config) ?(from_event = 0) ~label (t : Recording.t) =
  let points =
    Enumerate.plan ~prefix_stride:cfg.prefix_stride ~max_subset_bits:cfg.max_subset_bits
      ~samples_per_epoch:cfg.samples_per_epoch ~seed:cfg.seed ~from_event t
  in
  List.fold_left
    (fun acc p ->
      let o = Oracle.judge t p in
      match o.Oracle.o_verdict with
      | Oracle.Consistent -> { acc with s_points = acc.s_points + 1; s_consistent = acc.s_consistent + 1 }
      | Oracle.Repaired -> { acc with s_points = acc.s_points + 1; s_repaired = acc.s_repaired + 1 }
      | Oracle.Diverging reason ->
          emit_bundle cfg ~label t o;
          {
            acc with
            s_points = acc.s_points + 1;
            s_diverging =
              { d_label = label; d_key = o.Oracle.o_key; d_reason = reason } :: acc.s_diverging;
          })
    { empty_stats with s_workloads = 1 }
    points

let sweep_ops ?cfg ?(barriers = true) ~label ops =
  sweep_recording ?cfg ~label (Recording.record ~barriers ops)

(* Workloads are pairwise independent — each sweep records onto its own
   fresh image and judges each crash point against a fresh mount — so
   the sweep parallelizes at workload granularity: one chunk per
   workload, stolen freely across domains.  The merged stats fold in
   workload order either way, so the result (divergence list included)
   is identical to the sequential sweep's. *)
let sweep_workloads ?cfg ?pool workloads =
  match pool with
  | Some p when Rae_par.Pool.size p > 1 ->
      let outs =
        Rae_par.Pool.map_array p ~chunk:1
          (fun (label, ops) -> sweep_ops ?cfg ~label ops)
          (Array.of_list workloads)
      in
      Array.fold_left merge empty_stats outs
  | Some _ | None ->
      List.fold_left
        (fun acc (label, ops) -> merge acc (sweep_ops ?cfg ~label ops))
        empty_stats workloads

let sweep_bounded ?cfg ?pool ~max_workloads () =
  sweep_workloads ?cfg ?pool (Bounded.sample ~max:max_workloads)

let sweep_full ?cfg ?pool () =
  sweep_workloads ?cfg ?pool
    (List.map (fun ops -> (Bounded.label ops, ops)) (Bounded.all ()))

let sweep_targeted ?cfg ?(count = 40) ?(seeds = [ 1L; 2L ]) ?(profiles = [ Workload.Varmail; Workload.Metadata ]) () =
  List.fold_left
    (fun acc profile ->
      List.fold_left
        (fun acc seed ->
          let rng = Rae_util.Rng.create seed in
          let ops = Workload.ops profile rng ~count in
          let label =
            Printf.sprintf "%s:%Ld:%d" (Workload.profile_name profile) seed count
          in
          merge acc
            (sweep_recording ?cfg ~label
               (Recording.record ~nblocks:2048 ~ninodes:256 ~commit_interval:8 ops)))
        acc seeds)
    empty_stats profiles

(* Crash during recovery / during the checkpoint-fold-seeded recovery:
   record through the controller with the armed panic, then enumerate
   only the recovery pipeline's own write suffix. *)
let sweep_recovery ?cfg ?(count = 24) ?(seed = 7L) ~ckpt () =
  let rng = Rae_util.Rng.create seed in
  let ops = Workload.ops Workload.Varmail rng ~count in
  let t = Recording.record_recovery ~ckpt ops in
  if ckpt && not t.Recording.seeded_recovery then
    invalid_arg "Rae_crash.Engine.sweep_recovery: checkpointed run did not seed from the checkpoint";
  let from_event =
    match t.Recording.recovery_from with
    | Some e -> e
    | None -> invalid_arg "Rae_crash.Engine.sweep_recovery: recording has no recovery suffix"
  in
  let label = Printf.sprintf "recovery:%s:%Ld:%d" (if ckpt then "ckpt" else "cold") seed count in
  sweep_recording ?cfg ~from_event ~label t

(* ---- operator workflows ---- *)

let first_divergence ?cfg ?(barriers = true) ops =
  let stats = sweep_ops ?cfg ~barriers ~label:(render_ops ops) ops in
  match List.rev stats.s_diverging with d :: _ -> Some d | [] -> None

(* Greedy delta-debugging: drop one op at a time while the workload still
   diverges somewhere.  Bounded workloads are tiny, so the quadratic scan
   is fine. *)
let minimize ?cfg ?(barriers = true) ops =
  let diverges ops = ops <> [] && first_divergence ?cfg ~barriers ops <> None in
  let rec shrink ops =
    let n = List.length ops in
    let rec try_drop i =
      if i >= n then ops
      else
        let cand = List.filteri (fun j _ -> j <> i) ops in
        if diverges cand then shrink cand else try_drop (i + 1)
    in
    try_drop 0
  in
  if diverges ops then Some (shrink ops) else None

let repro ?(barriers = true) ~key ops =
  let t = Recording.record ~barriers ops in
  match Enumerate.bounds_of_key t key with
  | None -> Error (Printf.sprintf "key %S does not parse against this recording" key)
  | Some (guaranteed, applied_hi) ->
      Ok (Oracle.judge t { Enumerate.p_key = key; p_guaranteed = guaranteed; p_applied_hi = applied_hi })

let pp_stats ppf s =
  Format.fprintf ppf "workloads=%d points=%d consistent=%d repaired=%d diverging=%d"
    s.s_workloads s.s_points s.s_consistent s.s_repaired (List.length s.s_diverging)
