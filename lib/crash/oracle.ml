(* The crash oracle: mount a materialized crash image, let journal replay
   repair it, fsck it, then check the recovered state against the legal
   durable states the recording captured.

   Verdict lattice:

   - [Consistent]: the raw image fscks clean even before replay, and the
     recovered state matches a legal boundary;
   - [Repaired]: replay was needed, and afterwards the image fscks clean
     and matches a legal boundary;
   - [Diverging]: anything else — mount failure, a runtime error escaping
     the base or the shadow, post-replay fsck findings, or a recovered
     state matching no boundary in the legal window.

   The legal window for a point with bounds (guaranteed, applied_hi):

   - lower bound [lo]: the last boundary whose writes are certainly
     durable (b_event <= guaranteed).  Recovering to anything older loses
     data the filesystem promised was stable — that is a durability
     violation and judged Diverging, which subsumes the
     fsynced-data-survives property;
   - upper bound: the last boundary that had even started
     (b_event <= applied_hi), plus one — a commit whose writes are only
     partially in the image may still be completable by journal replay.

   Comparison against each candidate uses the crash comparator with the
   per-point dirty-ino relaxation derived from [lo] (ordered-data
   semantics: file content reaches the medium outside the transaction). *)

module Device = Rae_block.Device
module Base = Rae_basefs.Base
module Detector = Rae_basefs.Detector
module Shadow = Rae_shadowfs.Shadow
module Fsck = Rae_fsck.Fsck
module Differential = Rae_core.Differential

type verdict = Consistent | Repaired | Diverging of string

type outcome = {
  o_key : string;
  o_verdict : verdict;
  o_matched : int option;  (* index of the boundary the image recovered to *)
  o_candidates : int * int;  (* legal window [lo .. hi] in boundary indices *)
}

let verdict_to_string = function
  | Consistent -> "consistent"
  | Repaired -> "repaired"
  | Diverging reason -> "diverging: " ^ reason

let is_diverging o = match o.o_verdict with Diverging _ -> true | _ -> false

let fsck_errors report =
  Fsck.errors report
  |> List.map (fun f -> Fsck.code_to_string f.Fsck.code)
  |> List.sort_uniq compare |> String.concat ","

(* Boundary window for a point: see header comment. *)
let window (t : Recording.t) (p : Enumerate.point) =
  let nb = Array.length t.boundaries in
  let last_with pred =
    let best = ref 0 in
    for i = 0 to nb - 1 do
      if pred t.boundaries.(i) then best := i
    done;
    !best
  in
  let lo = last_with (fun b -> b.Recording.b_event <= p.Enumerate.p_guaranteed) in
  let started = last_with (fun b -> b.Recording.b_event <= p.Enumerate.p_applied_hi) in
  (lo, min (started + 1) (nb - 1))

let judge (t : Recording.t) (p : Enumerate.point) =
  let fail reason =
    { o_key = p.Enumerate.p_key; o_verdict = Diverging reason; o_matched = None;
      o_candidates = window t p }
  in
  match Enumerate.apply t p.Enumerate.p_key with
  | Error msg -> fail ("materialize: " ^ msg)
  | Ok disk -> (
      let dev = Device.of_disk disk in
      let raw_clean = Fsck.clean (Fsck.check_device (Device.read_only dev)) in
      (* Journal replay + attach.  A crash image is untrusted input: the
         base parses leniently, but arbitrary torn states can still
         surface as runtime errors; those are verdicts, not crashes of
         the harness itself. *)
      let mounted =
        match Base.mount dev with
        | Ok b -> Ok b
        | Error msg -> Error ("mount: " ^ msg)
        | exception Detector.Base_bug { bug; msg } ->
            Error (Printf.sprintf "mount: base bug %s: %s" bug msg)
        | exception Detector.Hang { bug; msg } ->
            Error (Printf.sprintf "mount: hang %s: %s" bug msg)
        | exception Detector.Validation_failed { context; msg } ->
            Error (Printf.sprintf "mount: validation %s: %s" context msg)
        | exception Device.Io_error msg -> Error ("mount: io: " ^ msg)
        | exception Invalid_argument msg -> Error ("mount: " ^ msg)
      in
      match mounted with
      | Error reason -> fail reason
      | Ok b -> (
          match Base.unmount b with
          | Error msg -> fail ("unmount: " ^ msg)
          | exception Device.Io_error msg -> fail ("unmount: io: " ^ msg)
          | Ok () -> (
              let report = Fsck.check_device (Device.read_only dev) in
              if not (Fsck.clean report) then
                fail ("post-replay fsck: " ^ fsck_errors report)
              else
                match Shadow.attach (Device.read_only dev) with
                | Error msg -> fail ("shadow attach: " ^ msg)
                | exception Shadow.Violation msg -> fail ("shadow attach: " ^ msg)
                | Ok shadow -> (
                    let lo, hi = window t p in
                    let dirty = Recording.dirty_after t t.boundaries.(lo) in
                    let matches i =
                      let spec = t.boundaries.(i).Recording.b_spec in
                      match Differential.crash_states_equal ~dirty spec shadow with
                      | eq -> eq
                      | exception Shadow.Violation _ -> false
                    in
                    (* Most crashes recover to the newest legal state;
                       scan from the top. *)
                    let rec scan i = if i < lo then None else if matches i then Some i else scan (i - 1) in
                    match scan hi with
                    | Some i ->
                        {
                          o_key = p.Enumerate.p_key;
                          o_verdict = (if raw_clean then Consistent else Repaired);
                          o_matched = Some i;
                          o_candidates = (lo, hi);
                        }
                    | None ->
                        fail
                          (Printf.sprintf
                             "recovered state matches no legal boundary (window %d..%d of %d)"
                             lo hi
                             (Array.length t.boundaries))))))
