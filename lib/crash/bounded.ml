(* Bounded workload generation, after B3's seq-N strategy: every operation
   sequence of length <= 3 drawn from a small vocabulary over a closed
   name/fd space.  B3's insight is that crash-consistency bugs in mature
   filesystems are overwhelmingly reproducible with tiny workloads on
   small name sets, so exhaustively sweeping this space beats random
   fuzzing per CPU-hour.

   Sequences are deduplicated by canonical footprint: path components and
   descriptors are renamed in order of first appearance, so two sequences
   differing only in which concrete names they touch collapse into one.
   Later ops must mention a name or descriptor an earlier op introduced
   (or be a barrier): sequences of independent ops are exactly covered by
   the shorter sweeps already in the set. *)

module Op = Rae_vfs.Op
module Path = Rae_vfs.Path
module Types = Rae_vfs.Types

let p = Path.parse_exn
let payload = "crash-consistency payload: must be atomic with its metadata"

let vocabulary : Op.t array =
  [|
    Op.Create (p "/a", 0o644);
    Op.Create (p "/b", 0o644);
    Op.Create (p "/d/f", 0o644);
    Op.Mkdir (p "/d", 0o755);
    Op.Unlink (p "/a");
    Op.Unlink (p "/d/f");
    Op.Rmdir (p "/d");
    Op.Rename (p "/a", p "/b");
    Op.Rename (p "/a", p "/d/f");
    Op.Link (p "/a", p "/b");
    Op.Symlink ("/a", p "/b");
    Op.Truncate (p "/a", 0);
    Op.Truncate (p "/a", 6000);
    Op.Open (p "/a", Types.flags_create);
    Op.Open (p "/a", { Types.flags_create with Types.trunc = true });
    Op.Pwrite (0, 0, payload);
    Op.Pwrite (0, 4090, "straddling the first block boundary");
    Op.Fsync 0;
    Op.Close 0;
    Op.Sync;
  |]

(* ---- canonical footprint ---- *)

let op_names op =
  let path_names = List.concat_map (fun c -> [ c ]) in
  match op with
  | Op.Create (path, _) | Op.Mkdir (path, _) | Op.Unlink path | Op.Rmdir path
  | Op.Open (path, _) | Op.Lookup path | Op.Stat path | Op.Readdir path
  | Op.Truncate (path, _) | Op.Readlink path | Op.Chmod (path, _) ->
      path_names path
  | Op.Rename (a, b) | Op.Link (a, b) -> path_names a @ path_names b
  | Op.Symlink (target, link) -> (
      path_names link
      @ match Path.parse target with Ok t -> path_names t | Error _ -> [])
  | Op.Close _ | Op.Pread _ | Op.Pwrite _ | Op.Fstat _ | Op.Fsync _ | Op.Sync -> []

let op_fds = function
  | Op.Close fd | Op.Pread (fd, _, _) | Op.Pwrite (fd, _, _) | Op.Fstat fd | Op.Fsync fd ->
      [ fd ]
  | _ -> []

let introduces_fd = function Op.Open _ -> true | _ -> false
let is_barrier = function Op.Fsync _ | Op.Sync -> true | _ -> false

(* Rename names/fds in order of first appearance and print; equal strings
   mean the sequences exercise the same shape. *)
let canonical_key ops =
  let names = Hashtbl.create 8 and fds = Hashtbl.create 4 in
  let cname n =
    match Hashtbl.find_opt names n with
    | Some c -> c
    | None ->
        let c = Printf.sprintf "n%d" (Hashtbl.length names) in
        Hashtbl.add names n c;
        c
  in
  let cfd fd =
    match Hashtbl.find_opt fds fd with
    | Some c -> c
    | None ->
        let c = Printf.sprintf "f%d" (Hashtbl.length fds) in
        Hashtbl.add fds fd c;
        c
  in
  let cpath path = "/" ^ String.concat "/" (List.map cname path) in
  let one op =
    match op with
    | Op.Create (path, mode) -> Printf.sprintf "create(%s,%o)" (cpath path) mode
    | Op.Mkdir (path, mode) -> Printf.sprintf "mkdir(%s,%o)" (cpath path) mode
    | Op.Unlink path -> Printf.sprintf "unlink(%s)" (cpath path)
    | Op.Rmdir path -> Printf.sprintf "rmdir(%s)" (cpath path)
    | Op.Open (path, f) ->
        Printf.sprintf "open(%s,%s)" (cpath path) (Format.asprintf "%a" Types.pp_flags f)
    | Op.Close fd -> Printf.sprintf "close(%s)" (cfd fd)
    | Op.Pread (fd, off, len) -> Printf.sprintf "pread(%s,%d,%d)" (cfd fd) off len
    | Op.Pwrite (fd, off, data) ->
        Printf.sprintf "pwrite(%s,%d,%d)" (cfd fd) off (String.length data)
    | Op.Lookup path -> Printf.sprintf "lookup(%s)" (cpath path)
    | Op.Stat path -> Printf.sprintf "stat(%s)" (cpath path)
    | Op.Fstat fd -> Printf.sprintf "fstat(%s)" (cfd fd)
    | Op.Readdir path -> Printf.sprintf "readdir(%s)" (cpath path)
    | Op.Rename (a, b) -> Printf.sprintf "rename(%s,%s)" (cpath a) (cpath b)
    | Op.Truncate (path, size) -> Printf.sprintf "truncate(%s,%d)" (cpath path) size
    | Op.Link (a, b) -> Printf.sprintf "link(%s,%s)" (cpath a) (cpath b)
    | Op.Symlink (target, link) ->
        let t =
          match Path.parse target with Ok tp -> cpath tp | Error _ -> target
        in
        Printf.sprintf "symlink(%s,%s)" t (cpath link)
    | Op.Readlink path -> Printf.sprintf "readlink(%s)" (cpath path)
    | Op.Chmod (path, mode) -> Printf.sprintf "chmod(%s,%o)" (cpath path) mode
    | Op.Fsync fd -> Printf.sprintf "fsync(%s)" (cfd fd)
    | Op.Sync -> "sync"
  in
  String.concat ";" (List.map one ops)

(* Every op past the first must build on what came before (shared name,
   live descriptor, or a barrier); independent tails are covered by the
   shorter sequences. *)
let connected ops =
  let seen_names = Hashtbl.create 8 in
  let fd_live = ref false in
  let ok = ref true in
  List.iteri
    (fun i op ->
      let names = op_names op and fds = op_fds op in
      if i > 0 then begin
        let touches_known =
          List.exists (Hashtbl.mem seen_names) names || (!fd_live && fds <> [])
        in
        if not (touches_known || is_barrier op) then ok := false;
        if fds <> [] && not !fd_live then ok := false
      end
      else if fds <> [] then ok := false;
      List.iter (fun n -> Hashtbl.replace seen_names n ()) names;
      if introduces_fd op then fd_live := true)
    ops;
  !ok

let all () =
  let seen = Hashtbl.create 1024 in
  let out = ref [] in
  let consider ops =
    if connected ops then begin
      let key = canonical_key ops in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        out := ops :: !out
      end
    end
  in
  let n = Array.length vocabulary in
  for i = 0 to n - 1 do
    consider [ vocabulary.(i) ]
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      consider [ vocabulary.(i); vocabulary.(j) ]
    done
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for k = 0 to n - 1 do
        consider [ vocabulary.(i); vocabulary.(j); vocabulary.(k) ]
      done
    done
  done;
  List.rev !out

(* Deterministic spread across the deduplicated space: every [stride]-th
   sequence, so a budgeted sweep still sees 1-op, 2-op and 3-op shapes. *)
let sample ~max =
  let every = all () in
  let total = List.length every in
  if max <= 0 || total = 0 then []
  else
    let stride = Stdlib.max 1 (total / max) in
    List.filteri (fun i _ -> i mod stride = 0) every
    |> List.filteri (fun i _ -> i < max)
    |> List.map (fun ops -> (canonical_key ops, ops))

let label ops = canonical_key ops
