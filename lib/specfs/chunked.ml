module Imap = Map.Make (Int)

let chunk_size = 4096

(* Invariants (see the .mli): stored chunks are exactly [chunk_size] bytes;
   an absent chunk reads as zeros; stored bytes at logical offsets >= [size]
   are zero, so growing the file never has to scrub a stale tail. *)
type t = { size : int; chunks : string Imap.t }

let empty = { size = 0; chunks = Imap.empty }
let zeros = String.make chunk_size '\000'
let length t = t.size

let get_chunk t c = match Imap.find_opt c t.chunks with Some s -> s | None -> zeros

let write t ~off data =
  if off < 0 then invalid_arg "Chunked.write: negative offset";
  let len = String.length data in
  if len = 0 then t
  else begin
    let new_size = max t.size (off + len) in
    let c0 = off / chunk_size and c1 = (off + len - 1) / chunk_size in
    let chunks = ref t.chunks in
    for c = c0 to c1 do
      let cbase = c * chunk_size in
      let lo = max off cbase and hi = min (off + len) (cbase + chunk_size) in
      if hi - lo = chunk_size then
        (* The write covers the whole chunk: no read-modify-write. *)
        chunks := Imap.add c (String.sub data (lo - off) chunk_size) !chunks
      else begin
        let buf = Bytes.of_string (get_chunk t c) in
        Bytes.blit_string data (lo - off) buf (lo - cbase) (hi - lo);
        chunks := Imap.add c (Bytes.unsafe_to_string buf) !chunks
      end
    done;
    { size = new_size; chunks = !chunks }
  end

let read t ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Chunked.read: negative offset or length";
  if off >= t.size || len = 0 then ""
  else begin
    let len = min len (t.size - off) in
    let buf = Bytes.create len in
    let c0 = off / chunk_size and c1 = (off + len - 1) / chunk_size in
    for c = c0 to c1 do
      let cbase = c * chunk_size in
      let lo = max off cbase and hi = min (off + len) (cbase + chunk_size) in
      match Imap.find_opt c t.chunks with
      | Some s -> Bytes.blit_string s (lo - cbase) buf (lo - off) (hi - lo)
      | None -> Bytes.fill buf (lo - off) (hi - lo) '\000'
    done;
    Bytes.unsafe_to_string buf
  end

let to_string t = read t ~off:0 ~len:t.size
let of_string s = write empty ~off:0 s

let truncate t n =
  if n < 0 then invalid_arg "Chunked.truncate: negative size";
  if n >= t.size then { t with size = n }
  else if n = 0 then empty
  else begin
    let last = (n - 1) / chunk_size in
    let below, _, _ = Imap.split (last + 1) t.chunks in
    let r = n - (last * chunk_size) in
    (* Zero the cut tail of the boundary chunk so a later size extension
       reads zeros there (the >= size invariant). *)
    let chunks =
      if r = chunk_size then below
      else
        match Imap.find_opt last below with
        | None -> below
        | Some s ->
            let buf = Bytes.of_string s in
            Bytes.fill buf r (chunk_size - r) '\000';
            Imap.add last (Bytes.unsafe_to_string buf) below
    in
    { size = n; chunks }
  end

let equal a b = a.size = b.size && String.equal (to_string a) (to_string b)
