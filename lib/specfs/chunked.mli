(** Persistent chunked file contents.

    The spec used to model file data as a flat [string], which makes every
    [pwrite] O(file size): the whole string is copied to splice a few bytes
    in.  This module stores the same logical byte sequence as fixed-size
    chunks in a persistent map, so a write touches only the chunks it
    overlaps — O(chunk) per write — while sharing every untouched chunk
    with prior versions (checkpoint copies stay cheap).

    Invariants:
    - stored chunks are exactly {!chunk_size} bytes;
    - a chunk absent from the map reads as zeros;
    - bytes at logical offsets >= [size] are zero in any stored chunk, so
      extending the file (truncate up, or a write past EOF) exposes zeros
      without touching the tail chunk.

    Semantics are observationally identical to the flat string — the
    [chunked ≡ string] qcheck property in [test_specfs] pins this down at
    chunk boundaries. *)

type t

val chunk_size : int
(** Fixed chunk granularity (4096, matching the block size). *)

val empty : t

val of_string : string -> t
val to_string : t -> string

val length : t -> int

val read : t -> off:int -> len:int -> string
(** [read t ~off ~len] is pread semantics: the bytes in
    [\[off, min (off+len) (length t))], or [""] when [off >= length t].
    [off] and [len] must be non-negative. *)

val write : t -> off:int -> string -> t
(** [write t ~off data] splices [data] at [off], zero-filling any gap
    between the old end and [off], and growing the file as needed.
    [off] must be non-negative. *)

val truncate : t -> int -> t
(** [truncate t n] shrinks or zero-extends to exactly [n] bytes. *)

val equal : t -> t -> bool
(** Logical equality of contents. *)
