open Rae_vfs
module Imap = Map.Make (Int)
module Dmap = Map.Make (Int)

(* Directory entries are keyed by interned name symbols (see
   {!Rae_vfs.Intern}): lookups hash the component once instead of comparing
   strings down a [Map.Make (String)] spine, and the interner is global and
   append-only, so interned maps survive [copy] untouched.  File contents
   are chunked ({!Chunked}) so [pwrite] is O(chunk), not O(file size). *)
type node = File of Chunked.t | Dir of Types.ino Dmap.t | Symlink of string

type info = { node : node; mode : int; nlink : int; mtime : int64; ctime : int64 }

type fdinfo = { fino : Types.ino; fflags : Types.open_flags }

type state = { nodes : info Imap.t; fds : fdinfo Imap.t; time : int64 }

type t = {
  mutable st : state;
  max_fds : int;
  max_file_size : int;
  (* Fast-path machinery.  [gen] counts namespace generations: it bumps on
     every commit that adds, removes or moves a directory entry, and the
     resolution cache below is only believed when its recorded generation
     matches.  [ino_hint]/[fd_hint] are lowest-free allocation hints: every
     id strictly below the hint is allocated, so the scan starts there
     instead of at the origin — the allocator still returns the exact
     lowest free id, which the spec/shadow/base agreement depends on. *)
  mutable gen : int;
  rcache : (string list * bool, Types.ino * int) Hashtbl.t;
  mutable ino_hint : int;
  mutable fd_hint : int;
}

let max_symlink_target = 4095

let root_info = { node = Dir Dmap.empty; mode = 0o755; nlink = 2; mtime = 0L; ctime = 0L }

let make ?(max_fds = 1024) ?(max_file_size = Rae_format.Layout.max_file_size) () =
  {
    st = { nodes = Imap.singleton Types.root_ino root_info; fds = Imap.empty; time = 0L };
    max_fds;
    max_file_size;
    gen = 0;
    rcache = Hashtbl.create 64;
    ino_hint = 1;
    fd_hint = 0;
  }

let time t = t.st.time
let set_time t v = t.st <- { t.st with time = v }

(* The state is persistent, so copying is one record.  The resolution
   cache is the only mutable structure that would otherwise be shared:
   give the copy a fresh one.  The hints copy by value and remain valid
   lower bounds for the copied state. *)
let copy t = { t with st = t.st; rcache = Hashtbl.create 64 }

let open_fds t =
  (* [to_rev_seq] walks descending, so consing yields the ascending list
     directly — no build-then-[List.rev]. *)
  Seq.fold_left
    (fun acc (fd, f) -> (fd, f.fino, f.fflags) :: acc)
    []
    (Imap.to_rev_seq t.st.fds)

(* ---- allocation ---- *)

let alloc_ino t nodes =
  let rec go i = if Imap.mem i nodes then go (i + 1) else i in
  let i = go (max 1 t.ino_hint) in
  (* Every id in [1, i) was just observed (or previously known) allocated,
     so advancing the hint to [i] is safe even if the caller aborts and
     never claims [i]. *)
  t.ino_hint <- i;
  i

let alloc_fd t fds =
  let rec go i = if Imap.mem i fds then go (i + 1) else i in
  let i = go (max 0 t.fd_hint) in
  t.fd_hint <- i;
  i

let note_ino_freed t ino = if ino < t.ino_hint then t.ino_hint <- ino
let note_fd_freed t fd = if fd < t.fd_hint then t.fd_hint <- fd

(* [Map.exists] already stops at the first hit (the [||] spine
   short-circuits), so unlike the shadow's old [Hashtbl.fold] version this
   needs no early-exit fix. *)
let fd_refs st ino = Imap.exists (fun _ f -> f.fino = ino) st.fds

(* Reclaim a zero-linked, unreferenced non-directory node. *)
let reclaim t st ino =
  match Imap.find_opt ino st.nodes with
  | Some info when info.nlink = 0 && not (fd_refs st ino) ->
      note_ino_freed t ino;
      { st with nodes = Imap.remove ino st.nodes }
  | Some _ | None -> st

(* ---- path resolution ---- *)

let get st ino = Imap.find_opt ino st.nodes

let get_exn st ino =
  match get st ino with
  | Some info -> info
  | None -> invalid_arg (Printf.sprintf "Spec: dangling inode %d" ino)

(* Probe a directory map without ever growing the intern table: a name
   nobody ever inserted has no symbol and therefore no entry. *)
let dir_find entries name =
  match Intern.find name with None -> None | Some k -> Dmap.find_opt k entries

(* Walk [components] from [ino], following intermediate symlinks always and
   the final one iff [follow_last].  [budget] bounds total symlink
   expansions. *)
let rec walk st ino components ~follow_last ~budget : (Types.ino, Errno.t) Stdlib.result =
  match components with
  | [] -> Ok ino
  | name :: rest -> (
      match get st ino with
      | None -> Error Errno.EIO
      | Some { node = File _; _ } | Some { node = Symlink _; _ } -> Error Errno.ENOTDIR
      | Some { node = Dir entries; _ } -> (
          match dir_find entries name with
          | None -> Error Errno.ENOENT
          | Some child_ino -> (
              match get st child_ino with
              | None -> Error Errno.EIO
              | Some { node = Symlink target; _ } when rest <> [] || follow_last ->
                  if budget <= 0 then Error Errno.ELOOP
                  else (
                    match Path.parse target with
                    | Error _ -> Error Errno.ENOENT
                    | Ok target_components ->
                        walk st Types.root_ino (target_components @ rest) ~follow_last
                          ~budget:(budget - 1))
              | Some _ -> walk st child_ino rest ~follow_last ~budget)))

let resolve st path ~follow_last =
  walk st Types.root_ino path ~follow_last ~budget:Types.max_symlink_depth

(* Generation-guarded resolution cache.  Only successful resolutions are
   cached (negative entries would have to be invalidated on creation too);
   a stale generation means some entry moved since, so fall back to the
   walk.  Symlink targets are immutable once created, so a cached
   resolution through a symlink can only be invalidated by namespace
   changes — which bump [gen]. *)
let resolve_cached t path ~follow_last =
  match Hashtbl.find_opt t.rcache (path, follow_last) with
  | Some (ino, g) when g = t.gen -> Ok ino
  | Some _ | None -> (
      let r = resolve t.st path ~follow_last in
      match r with
      | Ok ino ->
          if Hashtbl.length t.rcache > 512 then Hashtbl.reset t.rcache;
          Hashtbl.replace t.rcache (path, follow_last) (ino, t.gen);
          r
      | Error _ -> r)

(* Resolve the parent directory of [path]; returns [(parent_ino, name)]. *)
let resolve_parent t path =
  let st = t.st in
  match Path.split_last path with
  | None -> Error Errno.EEXIST (* the root: no parent; callers map as needed *)
  | Some (parent, name) -> (
      match resolve_cached t parent ~follow_last:true with
      | Error e -> Error e
      | Ok pino -> (
          match get st pino with
          | Some { node = Dir _; _ } -> Ok (pino, name)
          | Some _ -> Error Errno.ENOTDIR
          | None -> Error Errno.EIO))

let dir_entries info = match info.node with Dir e -> Some e | File _ | Symlink _ -> None

(* Update helpers: all build a fresh state. *)
let put st ino info = { st with nodes = Imap.add ino info st.nodes }

let touch_parent st pino ~time =
  let p = get_exn st pino in
  put st pino { p with mtime = time; ctime = time }

let add_entry st pino name ino =
  let p = get_exn st pino in
  match p.node with
  | Dir entries -> put st pino { p with node = Dir (Dmap.add (Intern.id name) ino entries) }
  | File _ | Symlink _ -> invalid_arg "Spec.add_entry: parent is not a directory"

let remove_entry st pino name =
  let p = get_exn st pino in
  match p.node with
  | Dir entries -> put st pino { p with node = Dir (Dmap.remove (Intern.id name) entries) }
  | File _ | Symlink _ -> invalid_arg "Spec.remove_entry: parent is not a directory"

let bump_nlink st ino delta =
  let i = get_exn st ino in
  put st ino { i with nlink = i.nlink + delta }

(* ---- operations ---- *)

let commit t st' = t.st <- st'

(* Commit a state whose directory entries changed: invalidate the
   resolution cache by bumping the namespace generation. *)
let commit_ns t st' =
  t.gen <- t.gen + 1;
  commit t st'

let create t path ~mode =
  let st = t.st in
  if path = [] then Error Errno.EEXIST
  else if mode land lnot 0o777 <> 0 then Error Errno.EINVAL
  else
    match resolve_parent t path with
    | Error e -> Error e
    | Ok (pino, name) -> (
        match dir_entries (get_exn st pino) with
        | None -> Error Errno.ENOTDIR
        | Some entries ->
            if dir_find entries name <> None then Error Errno.EEXIST
            else begin
              let time = Int64.add st.time 1L in
              let ino = alloc_ino t st.nodes in
              let st =
                put st ino { node = File Chunked.empty; mode; nlink = 1; mtime = time; ctime = time }
              in
              let st = add_entry st pino name ino in
              let st = touch_parent st pino ~time in
              commit_ns t { st with time };
              Ok ino
            end)

let mkdir t path ~mode =
  let st = t.st in
  if path = [] then Error Errno.EEXIST
  else if mode land lnot 0o777 <> 0 then Error Errno.EINVAL
  else
    match resolve_parent t path with
    | Error e -> Error e
    | Ok (pino, name) -> (
        match dir_entries (get_exn st pino) with
        | None -> Error Errno.ENOTDIR
        | Some entries ->
            if dir_find entries name <> None then Error Errno.EEXIST
            else begin
              let time = Int64.add st.time 1L in
              let ino = alloc_ino t st.nodes in
              let st =
                put st ino { node = Dir Dmap.empty; mode; nlink = 2; mtime = time; ctime = time }
              in
              let st = add_entry st pino name ino in
              let st = bump_nlink st pino 1 in
              let st = touch_parent st pino ~time in
              commit_ns t { st with time };
              Ok ino
            end)

let find_child st pino name =
  match dir_entries (get_exn st pino) with
  | None -> Error Errno.ENOTDIR
  | Some entries -> (
      match dir_find entries name with
      | None -> Error Errno.ENOENT
      | Some ino -> Ok ino)

let unlink t path =
  let st = t.st in
  if path = [] then Error Errno.EISDIR
  else
    match resolve_parent t path with
    | Error e -> Error e
    | Ok (pino, name) -> (
        match find_child st pino name with
        | Error e -> Error e
        | Ok ino -> (
            match get_exn st ino with
            | { node = Dir _; _ } -> Error Errno.EISDIR
            | info ->
                let time = Int64.add st.time 1L in
                let st = remove_entry st pino name in
                let st = put st ino { info with nlink = info.nlink - 1; ctime = time } in
                let st = touch_parent st pino ~time in
                let st = reclaim t st ino in
                commit_ns t { st with time };
                Ok ()))

let rmdir t path =
  let st = t.st in
  if path = [] then Error Errno.EINVAL
  else
    match resolve_parent t path with
    | Error e -> Error e
    | Ok (pino, name) -> (
        match find_child st pino name with
        | Error e -> Error e
        | Ok ino -> (
            match get_exn st ino with
            | { node = File _; _ } | { node = Symlink _; _ } -> Error Errno.ENOTDIR
            | { node = Dir entries; _ } ->
                if not (Dmap.is_empty entries) then Error Errno.ENOTEMPTY
                else begin
                  let time = Int64.add st.time 1L in
                  let st = remove_entry st pino name in
                  let st = { st with nodes = Imap.remove ino st.nodes } in
                  note_ino_freed t ino;
                  let st = bump_nlink st pino (-1) in
                  let st = touch_parent st pino ~time in
                  commit_ns t { st with time };
                  Ok ()
                end))

let flags_valid (f : Types.open_flags) =
  (f.rd || f.wr)
  && (not (f.trunc && not f.wr))
  && (not (f.excl && not f.creat))
  && not (f.append && not f.wr)

let openf t path flags =
  let st = t.st in
  if not (flags_valid flags) then Error Errno.EINVAL
  else if Imap.cardinal st.fds >= t.max_fds then Error Errno.EMFILE
  else
    match resolve_cached t path ~follow_last:true with
    | Ok ino -> (
        if flags.excl then Error Errno.EEXIST
        else
          match get_exn st ino with
          | { node = Dir _; _ } -> Error Errno.EISDIR
          | { node = Symlink _; _ } -> Error Errno.ELOOP (* unreachable: followed *)
          | { node = File data; _ } as info ->
              let st, time =
                if flags.trunc && Chunked.length data > 0 then begin
                  let time = Int64.add st.time 1L in
                  (put st ino { info with node = File Chunked.empty; mtime = time; ctime = time }, time)
                end
                else (st, st.time)
              in
              let fd = alloc_fd t st.fds in
              let st = { st with fds = Imap.add fd { fino = ino; fflags = flags } st.fds; time } in
              commit t st;
              Ok fd)
    | Error Errno.ENOENT when flags.creat -> (
        match resolve_parent t path with
        | Error e -> Error e
        | Ok (pino, name) -> (
            match find_child st pino name with
            | Ok _ ->
                (* The final component is a dangling symlink: open(2) with
                   O_CREAT on it fails ENOENT in our model. *)
                Error Errno.ENOENT
            | Error Errno.ENOENT ->
                let time = Int64.add st.time 1L in
                let ino = alloc_ino t st.nodes in
                let st =
                  put st ino
                    { node = File Chunked.empty; mode = 0o644; nlink = 1; mtime = time; ctime = time }
                in
                let st = add_entry st pino name ino in
                let st = touch_parent st pino ~time in
                let fd = alloc_fd t st.fds in
                let st = { st with fds = Imap.add fd { fino = ino; fflags = flags } st.fds; time } in
                commit_ns t st;
                Ok fd
            | Error e -> Error e))
    | Error e -> Error e

let close t fd =
  let st = t.st in
  match Imap.find_opt fd st.fds with
  | None -> Error Errno.EBADF
  | Some { fino; _ } ->
      let st = { st with fds = Imap.remove fd st.fds } in
      note_fd_freed t fd;
      let st = reclaim t st fino in
      commit t st;
      Ok ()

let pread t fd ~off ~len =
  let st = t.st in
  match Imap.find_opt fd st.fds with
  | None -> Error Errno.EBADF
  | Some { fino; fflags } -> (
      if not fflags.rd then Error Errno.EBADF
      else if off < 0 || len < 0 then Error Errno.EINVAL
      else
        match get_exn st fino with
        | { node = File data; _ } -> Ok (Chunked.read data ~off ~len)
        | { node = Dir _; _ } | { node = Symlink _; _ } -> Error Errno.EISDIR)

let pwrite t fd ~off data =
  let st = t.st in
  match Imap.find_opt fd st.fds with
  | None -> Error Errno.EBADF
  | Some { fino; fflags } -> (
      if not fflags.wr then Error Errno.EBADF
      else if off < 0 then Error Errno.EINVAL
      else
        match get_exn st fino with
        | { node = Dir _; _ } | { node = Symlink _; _ } -> Error Errno.EISDIR
        | { node = File old; _ } as info ->
            let len = String.length data in
            if len = 0 then Ok 0
            else
              let eff_off = if fflags.append then Chunked.length old else off in
              if eff_off + len > t.max_file_size then Error Errno.EFBIG
              else begin
                let time = Int64.add st.time 1L in
                let st =
                  put st fino
                    { info with node = File (Chunked.write old ~off:eff_off data); mtime = time; ctime = time }
                in
                commit t { st with time };
                Ok len
              end)

let lookup t path = resolve_cached t path ~follow_last:true

let stat_of st ino =
  let info = get_exn st ino in
  let kind, size =
    match info.node with
    | File data -> (Types.Regular, Chunked.length data)
    | Dir _ -> (Types.Directory, 0)
    | Symlink target -> (Types.Symlink, String.length target)
  in
  {
    Types.st_ino = ino;
    st_kind = kind;
    st_size = size;
    st_nlink = info.nlink;
    st_mode = info.mode;
    st_mtime = info.mtime;
    st_ctime = info.ctime;
  }

let stat t path =
  match resolve_cached t path ~follow_last:true with
  | Error e -> Error e
  | Ok ino -> Ok (stat_of t.st ino)

let fstat t fd =
  match Imap.find_opt fd t.st.fds with
  | None -> Error Errno.EBADF
  | Some { fino; _ } -> Ok (stat_of t.st fino)

let readdir t path =
  match resolve_cached t path ~follow_last:true with
  | Error e -> Error e
  | Ok ino -> (
      match get_exn t.st ino with
      | { node = Dir entries; _ } ->
          (* Interned keys sort by symbol id, not alphabetically: collect
             and sort by name to keep the documented ordering. *)
          Ok
            (Dmap.fold (fun k _ acc -> Intern.name k :: acc) entries []
            |> List.sort String.compare)
      | { node = File _; _ } | { node = Symlink _; _ } -> Error Errno.ENOTDIR)

let is_dir st ino = match get st ino with Some { node = Dir _; _ } -> true | _ -> false

let rename t src dst =
  let st = t.st in
  if src = [] || dst = [] then Error Errno.EINVAL
  else if Path.equal src dst then (
    (* Same path: succeed without change iff the source exists. *)
    match resolve_parent t src with
    | Error e -> Error e
    | Ok (pino, name) -> (
        match find_child st pino name with Error e -> Error e | Ok _ -> Ok ()))
  else
    match resolve_parent t src with
    | Error e -> Error e
    | Ok (spino, sname) -> (
        match find_child st spino sname with
        | Error e -> Error e
        | Ok sino ->
            if is_dir st sino && Path.is_prefix src ~of_:dst then Error Errno.EINVAL
            else (
              match resolve_parent t dst with
              | Error e -> Error e
              | Ok (dpino, dname) -> (
                  let dst_existing = Result.to_option (find_child st dpino dname) in
                  match dst_existing with
                  | Some dino when dino = sino ->
                      (* Hard links to the same inode: POSIX rename is a no-op. *)
                      Ok ()
                  | _ -> (
                      let src_is_dir = is_dir st sino in
                      let proceed st =
                        let time = Int64.add st.time 1L in
                        let st = remove_entry st spino sname in
                        let st = add_entry st dpino dname sino in
                        (* Directory moves shift the ".." accounting. *)
                        let st =
                          if src_is_dir && spino <> dpino then
                            bump_nlink (bump_nlink st spino (-1)) dpino 1
                          else st
                        in
                        let sinfo = get_exn st sino in
                        let st = put st sino { sinfo with ctime = time } in
                        let st = touch_parent st spino ~time in
                        let st = touch_parent st dpino ~time in
                        commit_ns t { st with time };
                        Ok ()
                      in
                      match dst_existing with
                      | None -> proceed st
                      | Some dino -> (
                          match (src_is_dir, get_exn st dino) with
                          | true, { node = File _; _ } | true, { node = Symlink _; _ } ->
                              Error Errno.ENOTDIR
                          | true, { node = Dir dentries; _ } ->
                              if not (Dmap.is_empty dentries) then Error Errno.ENOTEMPTY
                              else
                                (* Replace empty dir: drop it first. *)
                                let st = { st with nodes = Imap.remove dino st.nodes } in
                                let () = note_ino_freed t dino in
                                let st = remove_entry st dpino dname in
                                let st = bump_nlink st dpino (-1) in
                                proceed st
                          | false, { node = Dir _; _ } -> Error Errno.EISDIR
                          | false, dinfo ->
                              let st = remove_entry st dpino dname in
                              let st = put st dino { dinfo with nlink = dinfo.nlink - 1 } in
                              let st = reclaim t st dino in
                              proceed st)))))

let truncate t path ~size =
  let st = t.st in
  if size < 0 then Error Errno.EINVAL
  else if size > t.max_file_size then Error Errno.EFBIG
  else
    match resolve_cached t path ~follow_last:true with
    | Error e -> Error e
    | Ok ino -> (
        match get_exn st ino with
        | { node = Dir _; _ } -> Error Errno.EISDIR
        | { node = Symlink _; _ } -> Error Errno.EINVAL
        | { node = File data; _ } as info ->
            let time = Int64.add st.time 1L in
            let st =
              put st ino { info with node = File (Chunked.truncate data size); mtime = time; ctime = time }
            in
            commit t { st with time };
            Ok ())

let link t src dst =
  let st = t.st in
  if src = [] || dst = [] then Error Errno.EINVAL
  else
    match resolve_parent t src with
    | Error e -> Error e
    | Ok (spino, sname) -> (
        match find_child st spino sname with
        | Error e -> Error e
        | Ok sino ->
            if is_dir st sino then Error Errno.EISDIR
            else (
              match resolve_parent t dst with
              | Error e -> Error e
              | Ok (dpino, dname) -> (
                  match find_child st dpino dname with
                  | Ok _ -> Error Errno.EEXIST
                  | Error Errno.ENOENT ->
                      let time = Int64.add st.time 1L in
                      let st = add_entry st dpino dname sino in
                      let sinfo = get_exn st sino in
                      let st = put st sino { sinfo with nlink = sinfo.nlink + 1; ctime = time } in
                      let st = touch_parent st dpino ~time in
                      commit_ns t { st with time };
                      Ok ()
                  | Error e -> Error e)))

let symlink t ~target path =
  let st = t.st in
  if path = [] then Error Errno.EEXIST
  else if String.length target = 0 then Error Errno.ENOENT
  else if String.length target > max_symlink_target then Error Errno.ENAMETOOLONG
  else
    match resolve_parent t path with
    | Error e -> Error e
    | Ok (pino, name) -> (
        match find_child st pino name with
        | Ok _ -> Error Errno.EEXIST
        | Error Errno.ENOENT ->
            let time = Int64.add st.time 1L in
            let ino = alloc_ino t st.nodes in
            let st =
              put st ino { node = Symlink target; mode = 0o777; nlink = 1; mtime = time; ctime = time }
            in
            let st = add_entry st pino name ino in
            let st = touch_parent st pino ~time in
            commit_ns t { st with time };
            Ok ino
        | Error e -> Error e)

let readlink t path =
  let st = t.st in
  match resolve_cached t path ~follow_last:false with
  | Error e -> Error e
  | Ok ino -> (
      match get_exn st ino with
      | { node = Symlink target; _ } -> Ok target
      | { node = File _; _ } | { node = Dir _; _ } -> Error Errno.EINVAL)

let chmod t path ~mode =
  let st = t.st in
  if mode land lnot 0o777 <> 0 then Error Errno.EINVAL
  else
    match resolve_cached t path ~follow_last:true with
    | Error e -> Error e
    | Ok ino ->
        let time = Int64.add st.time 1L in
        let info = get_exn st ino in
        let st = put st ino { info with mode; ctime = time } in
        commit t { st with time };
        Ok ()

let fsync t fd =
  match Imap.find_opt fd t.st.fds with None -> Error Errno.EBADF | Some _ -> Ok ()

let sync _t = Ok ()

module Self = struct
  type nonrec t = t

  let create = create
  let mkdir = mkdir
  let unlink = unlink
  let rmdir = rmdir
  let openf = openf
  let close = close
  let pread = pread
  let pwrite = pwrite
  let lookup = lookup
  let stat = stat
  let fstat = fstat
  let readdir = readdir
  let rename = rename
  let truncate = truncate
  let link = link
  let symlink = symlink
  let readlink = readlink
  let chmod = chmod
  let fsync = fsync
  let sync = sync
end

module D = Fs_intf.Dispatch (Self)

let exec = D.exec

(* ---- snapshots ---- *)

module State = struct
  type entry = {
    e_path : string;
    e_ino : Types.ino;
    e_kind : Types.kind;
    e_size : int;
    e_nlink : int;
    e_mode : int;
    e_content : string;
  }

  type fd_entry = { f_fd : Types.fd; f_ino : Types.ino; f_flags : Types.open_flags }

  type t = { entries : entry list; fds : fd_entry list; time : int64 }

  let entry_equal ?(ignore_times = false) a b =
    ignore ignore_times;
    a.e_path = b.e_path && a.e_ino = b.e_ino && a.e_kind = b.e_kind && a.e_size = b.e_size
    && a.e_nlink = b.e_nlink && a.e_mode = b.e_mode && String.equal a.e_content b.e_content

  let fd_equal a b = a.f_fd = b.f_fd && a.f_ino = b.f_ino && a.f_flags = b.f_flags

  let equal ?(ignore_times = false) a b =
    ignore ignore_times;
    List.equal (entry_equal ~ignore_times) a.entries b.entries
    && List.equal fd_equal a.fds b.fds

  let pp_entry ppf e =
    Format.fprintf ppf "%s ino=%d %a size=%d nlink=%d mode=%03o" e.e_path e.e_ino Types.pp_kind
      e.e_kind e.e_size e.e_nlink e.e_mode

  let pp ppf t =
    Format.fprintf ppf "@[<v>time=%Ld@," t.time;
    List.iter (fun e -> Format.fprintf ppf "%a@," pp_entry e) t.entries;
    List.iter
      (fun f -> Format.fprintf ppf "fd %d -> ino %d (%a)@," f.f_fd f.f_ino Types.pp_flags f.f_flags)
      t.fds;
    Format.fprintf ppf "@]"

  let diff a b =
    let index entries = List.map (fun e -> (e.e_path, e)) entries in
    let ia = index a.entries and ib = index b.entries in
    let diffs = ref [] in
    let note fmt = Format.kasprintf (fun s -> diffs := s :: !diffs) fmt in
    List.iter
      (fun (path, ea) ->
        match List.assoc_opt path ib with
        | None -> note "only in first: %s" path
        | Some eb ->
            if not (entry_equal ea eb) then
              note "mismatch at %s: (%a) vs (%a)" path pp_entry ea pp_entry eb)
      ia;
    List.iter
      (fun (path, _) -> if not (List.mem_assoc path ia) then note "only in second: %s" path)
      ib;
    let fa = List.map (fun f -> (f.f_fd, f)) a.fds and fb = List.map (fun f -> (f.f_fd, f)) b.fds in
    List.iter
      (fun (fd, f1) ->
        match List.assoc_opt fd fb with
        | None -> note "fd %d only in first" fd
        | Some f2 -> if not (fd_equal f1 f2) then note "fd %d differs (ino %d vs %d)" fd f1.f_ino f2.f_ino)
      fa;
    List.iter (fun (fd, _) -> if not (List.mem_assoc fd fa) then note "fd %d only in second" fd) fb;
    List.rev !diffs
end

let snapshot t =
  let st = t.st in
  let entries = ref [] in
  let reached = Hashtbl.create 64 in
  let rec visit path ino =
    Hashtbl.replace reached ino ();
    let info = get_exn st ino in
    let kind, size, content =
      match info.node with
      | File data -> (Types.Regular, Chunked.length data, Chunked.to_string data)
      | Dir _ -> (Types.Directory, 0, "")
      | Symlink target -> (Types.Symlink, String.length target, target)
    in
    entries :=
      {
        State.e_path = path;
        e_ino = ino;
        e_kind = kind;
        e_size = size;
        e_nlink = info.nlink;
        e_mode = info.mode;
        e_content = content;
      }
      :: !entries;
    match info.node with
    | Dir children ->
        Dmap.iter
          (fun k child ->
            let name = Intern.name k in
            visit (if path = "/" then "/" ^ name else path ^ "/" ^ name) child)
          children
    | File _ | Symlink _ -> ()
  in
  visit "/" Types.root_ino;
  (* Orphans: nlink = 0 nodes kept alive by open descriptors. *)
  Imap.iter
    (fun ino info ->
      if not (Hashtbl.mem reached ino) then begin
        let kind, size, content =
          match info.node with
          | File data -> (Types.Regular, Chunked.length data, Chunked.to_string data)
          | Dir _ -> (Types.Directory, 0, "")
          | Symlink target -> (Types.Symlink, String.length target, target)
        in
        entries :=
          {
            State.e_path = Printf.sprintf "!orphan:%d" ino;
            e_ino = ino;
            e_kind = kind;
            e_size = size;
            e_nlink = info.nlink;
            e_mode = info.mode;
            e_content = content;
          }
          :: !entries
      end)
    st.nodes;
  let entries = List.sort (fun a b -> compare a.State.e_path b.State.e_path) !entries in
  let fds =
    Seq.fold_left
      (fun acc (fd, f) -> { State.f_fd = fd; f_ino = f.fino; f_flags = f.fflags } :: acc)
      []
      (Imap.to_rev_seq st.fds)
  in
  { State.entries; fds; time = st.time }
