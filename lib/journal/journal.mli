(** A JBD2-style physical metadata journal.

    The journal occupies the region [journal_start, journal_start +
    journal_len) of the device.  Block 0 of the region is the journal
    superblock holding the replay tail; transactions are appended after it
    as [descriptor, data*, commit] groups and checkpointed synchronously
    (home-location writes behind a flush barrier), after which the tail
    advances.

    Like JBD2, data blocks whose first word collides with the journal magic
    are *escaped* in the journal copy (flag bit in the descriptor tag), and
    *revoke* records suppress replay of earlier writes to blocks that were
    subsequently freed.

    Recovery (journal {!replay}) is the base filesystem's half of the
    paper's contained reboot: it brings the on-disk state to the last
    committed transaction boundary — the trusted state S0 from which the
    shadow reconstructs (paper §2.2, §3.2). *)

type t

type stats = {
  commits : int;
  blocks_logged : int;
  escapes : int;
  revokes : int;
  tail_resets : int;
}

exception Journal_full of { needed : int; capacity : int }
(** A single transaction larger than the journal region is a configuration
    error, reported eagerly at commit. *)

val format : Rae_block.Device.t -> Rae_format.Layout.geometry -> unit
(** Write a fresh (empty) journal superblock; part of mkfs. *)

val attach : Rae_block.Device.t -> Rae_format.Layout.geometry -> (t, string) result
(** Open the journal of a formatted device.  Fails when the journal
    superblock is unreadable (run {!replay} — which tolerates any tail state
    — or re-{!format} first). *)

type txn

val begin_txn : t -> txn
val txn_write : txn -> int -> bytes -> unit
(** Buffer a full-block metadata write to home block [blk].  A later write
    to the same block within the transaction supersedes the earlier one. *)

val txn_revoke : txn -> int -> unit
(** Record that [blk] was freed: earlier journalled images of it must not
    be replayed. *)

val txn_block_count : txn -> int

val txn_writes : txn -> (int * bytes) list
(** The buffered (home-block, image) pairs, oldest first — exposed so the
    base filesystem can validate dirty metadata at the commit barrier
    before it becomes durable ("validate upon sync", paper §3.1). *)

val commit : t -> txn -> unit
(** Make the transaction durable and checkpoint it.  On return the home
    locations contain the transaction and the tail has advanced.
    @raise Journal_full per above. *)

val abort : t -> txn -> unit
(** Discard a built-but-uncommitted transaction (contained reboot path). *)

val commit_seq : t -> int64
(** The durable transaction sequence: the seq the {e next} commit will be
    assigned, advanced once per successful {!commit}.  Monotonic over the
    life of the image (it is persisted in the journal superblock), so two
    equal readings bracket a commit-free interval — the property the
    warm-checkpoint cut relies on. *)

val replay :
  ?pool:Rae_par.Pool.t -> Rae_block.Device.t -> Rae_format.Layout.geometry -> (int, string) result
(** Crash recovery: scan from the tail, apply every complete committed
    transaction (respecting revokes), flush, and advance the tail.  Returns
    the number of transactions replayed.  Safe to run on a clean journal
    (returns [Ok 0]).  Idempotent.

    With [?pool] of size > 1 the destage step collapses the committed
    write stream to its last-write-wins home map and issues the (pairwise
    disjoint) home writes across the pool's domains; the resulting image
    is byte-equal to the sequential destage.  Without a pool the exact
    sequential write stream runs unchanged. *)

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val register_obs : Rae_obs.Metrics.t -> ?prefix:string -> (unit -> t) -> unit
(** Register the journal's counters with a metrics registry; the instance is
    re-read through the getter at each sample.  [prefix] defaults to
    ["journal"]. *)
