open Rae_util
module Device = Rae_block.Device
module Layout = Rae_format.Layout

let jmagic = 0x4C4E524AL (* "JRNL" little-endian *)

(* Journal block types. *)
let bt_superblock = 4
let bt_descriptor = 1
let bt_commit = 2

(* Tag flags. *)
let flag_escaped = 1

type stats = {
  commits : int;
  blocks_logged : int;
  escapes : int;
  revokes : int;
  tail_resets : int;
}

exception Journal_full of { needed : int; capacity : int }

type t = {
  dev : Device.t;
  geo : Layout.geometry;
  mutable tail_seq : int64;
  mutable tail_ptr : int;  (* absolute block number of the next append *)
  mutable s_commits : int;
  mutable s_blocks_logged : int;
  mutable s_escapes : int;
  mutable s_revokes : int;
  mutable s_tail_resets : int;
}

(* A transaction buffers writes in first-write order with a Hashtbl index
   from home block to slot, so the supersede-on-rewrite rule and revoke
   dedup are O(1) instead of the O(n) list filter/membership walks the
   write path used to pay per buffered block. *)
type txn = {
  mutable w_slots : (int * bytes) array;  (* (home, image), first-write order *)
  mutable w_len : int;
  w_index : (int, int) Hashtbl.t;  (* home block -> slot in w_slots *)
  r_index : (int, unit) Hashtbl.t;  (* revoked homes, for O(1) dedup *)
  mutable r_rev : int list;  (* revoked homes, newest first *)
}

let txn_slot txn i = txn.w_slots.(i)

let txn_push txn home data =
  if txn.w_len = Array.length txn.w_slots then begin
    let grown = Array.make (max 8 (2 * txn.w_len)) (home, data) in
    Array.blit txn.w_slots 0 grown 0 txn.w_len;
    txn.w_slots <- grown
  end;
  txn.w_slots.(txn.w_len) <- (home, data);
  Hashtbl.replace txn.w_index home txn.w_len;
  txn.w_len <- txn.w_len + 1

let txn_reset txn =
  txn.w_len <- 0;
  txn.w_slots <- [||];
  Hashtbl.reset txn.w_index;
  Hashtbl.reset txn.r_index;
  txn.r_rev <- []

let txn_revoked txn = List.rev txn.r_rev

let region_start g = g.Layout.journal_start
let region_end g = g.Layout.journal_start + g.Layout.journal_len

(* ---- block encoding ---- *)

let header ~btype ~seq =
  let b = Bytes.make Layout.block_size '\000' in
  Codec.set_u32 b 0 jmagic;
  Codec.set_u32_int b 4 btype;
  Codec.set_u64 b 8 seq;
  b

let parse_header b =
  if not (Int64.equal (Codec.get_u32 b 0) jmagic) then None
  else Some (Codec.get_u32_int b 4, Codec.get_u64 b 8)

let encode_jsb ~tail_seq ~tail_ptr =
  let b = header ~btype:bt_superblock ~seq:0L in
  Codec.set_u64 b 16 tail_seq;
  Codec.set_u32_int b 24 tail_ptr;
  Codec.set_i32 b 4092 (Checksum.crc32c b ~pos:0 ~len:4092);
  b

let decode_jsb b =
  match parse_header b with
  | Some (btype, _) when btype = bt_superblock ->
      if Checksum.verify b ~pos:0 ~len:4092 ~expect:(Codec.get_i32 b 4092) then
        Some (Codec.get_u64 b 16, Codec.get_u32_int b 24)
      else None
  | Some _ | None -> None

(* Descriptor: count at 16, tags (home u32, flags u32, revoked-home list
   afterwards) from 20.  Revokes ride in the descriptor: count_revokes at
   20 + 8*count. *)
let max_tags = (Layout.block_size - 24) / 8 - 16 (* leave room for a few revokes *)

let encode_descriptor ~seq ~tags ~revokes =
  let b = header ~btype:bt_descriptor ~seq in
  Codec.set_u32_int b 16 (List.length tags);
  List.iteri
    (fun i (home, flags) ->
      Codec.set_u32_int b (20 + (8 * i)) home;
      Codec.set_u32_int b (24 + (8 * i)) flags)
    tags;
  let rev_off = 20 + (8 * List.length tags) in
  Codec.set_u32_int b rev_off (List.length revokes);
  List.iteri (fun i home -> Codec.set_u32_int b (rev_off + 4 + (4 * i)) home) revokes;
  b

let decode_descriptor b =
  let count = Codec.get_u32_int b 16 in
  if count < 0 || count > (Layout.block_size - 24) / 8 then None
  else
    let tags = List.init count (fun i -> (Codec.get_u32_int b (20 + (8 * i)), Codec.get_u32_int b (24 + (8 * i)))) in
    let rev_off = 20 + (8 * count) in
    if rev_off + 4 > Layout.block_size then None
    else
      let nrev = Codec.get_u32_int b rev_off in
      if nrev < 0 || rev_off + 4 + (4 * nrev) > Layout.block_size then None
      else
        let revokes = List.init nrev (fun i -> Codec.get_u32_int b (rev_off + 4 + (4 * i))) in
        Some (tags, revokes)

let encode_commit ~seq ~count ~data_csum =
  let b = header ~btype:bt_commit ~seq in
  Codec.set_u32_int b 16 count;
  Codec.set_i32 b 20 data_csum;
  b

let decode_commit b = (Codec.get_u32_int b 16, Codec.get_i32 b 20)

(* ---- lifecycle ---- *)

let format dev geo =
  if geo.Layout.journal_len < 4 then invalid_arg "Journal.format: journal region too small";
  Device.write dev (region_start geo) (encode_jsb ~tail_seq:1L ~tail_ptr:(region_start geo + 1));
  Device.flush dev

let attach dev geo =
  match decode_jsb (Device.read dev (region_start geo)) with
  | Some (tail_seq, tail_ptr) ->
      if tail_ptr <= region_start geo || tail_ptr > region_end geo then
        Error (Printf.sprintf "journal superblock tail pointer %d out of region" tail_ptr)
      else
        Ok
          {
            dev;
            geo;
            tail_seq;
            tail_ptr;
            s_commits = 0;
            s_blocks_logged = 0;
            s_escapes = 0;
            s_revokes = 0;
            s_tail_resets = 0;
          }
  | None -> Error "journal superblock unreadable (not formatted or corrupt)"

let begin_txn t =
  ignore t;
  {
    w_slots = [||];
    w_len = 0;
    w_index = Hashtbl.create 32;
    r_index = Hashtbl.create 8;
    r_rev = [];
  }

let txn_write txn blk data =
  if Bytes.length data <> Layout.block_size then invalid_arg "Journal.txn_write: not a full block";
  (* Supersede an earlier buffered write to the same block: overwrite the
     slot in place, preserving first-write order. *)
  match Hashtbl.find_opt txn.w_index blk with
  | Some slot -> txn.w_slots.(slot) <- (blk, Bytes.copy data)
  | None -> txn_push txn blk (Bytes.copy data)

let txn_revoke txn blk =
  if not (Hashtbl.mem txn.r_index blk) then begin
    Hashtbl.replace txn.r_index blk ();
    txn.r_rev <- blk :: txn.r_rev
  end

let txn_block_count txn = txn.w_len
let txn_writes txn = List.init txn.w_len (fun i ->
    let blk, data = txn_slot txn i in
    (blk, Bytes.copy data))

let escape_if_needed t data =
  if Int64.equal (Codec.get_u32 data 0) jmagic then begin
    t.s_escapes <- t.s_escapes + 1;
    let copy = Bytes.copy data in
    Codec.set_u32 copy 0 0L;
    (copy, flag_escaped)
  end
  else (data, 0)

let write_jsb t =
  Device.write t.dev (region_start t.geo) (encode_jsb ~tail_seq:t.tail_seq ~tail_ptr:t.tail_ptr)

let commit t txn =
  if txn.w_len = 0 && txn.r_rev = [] then ()
  else begin
    let n = txn.w_len in
    if n > max_tags then raise (Journal_full { needed = n; capacity = max_tags });
    let needed = n + 2 in
    let capacity = region_end t.geo - (region_start t.geo + 1) in
    if needed > capacity then raise (Journal_full { needed; capacity });
    (* All prior transactions are checkpointed (synchronous journaling), so
       wrapping is a simple tail reset. *)
    if t.tail_ptr + needed > region_end t.geo then begin
      t.tail_ptr <- region_start t.geo + 1;
      t.s_tail_resets <- t.s_tail_resets + 1;
      write_jsb t;
      Device.flush t.dev
    end;
    let seq = t.tail_seq in
    (* Bound the revoke records to what fits in the descriptor after the
       tags.  Dropping overflow revokes is safe here: with synchronous
       checkpointing the replay window never spans more than one
       transaction, so cross-transaction revocation can only matter when a
       journal superblock update was itself lost — and within a single
       transaction the write-supersede rule already prevents stale
       replays.  (The descriptor keeps as many as fit for the benefit of
       pathological-tail recovery.) *)
    let max_revokes = (Layout.block_size - 20 - (8 * n) - 4) / 4 in
    let revokes = List.filteri (fun i _ -> i < max_revokes) (txn_revoked txn) in
    let escaped =
      List.init n (fun i ->
          let home, data = txn_slot txn i in
          let journal_copy, flags = escape_if_needed t data in
          (home, flags, data, journal_copy))
    in
    let tags = List.map (fun (home, flags, _, _) -> (home, flags)) escaped in
    (* Checksum over the journal copies, in tag order. *)
    let csum =
      List.fold_left
        (fun acc (_, _, _, jcopy) -> Checksum.crc32c ~init:acc jcopy ~pos:0 ~len:(Bytes.length jcopy))
        0l escaped
    in
    (* 1. Journal writes. *)
    Device.write t.dev t.tail_ptr (encode_descriptor ~seq ~tags ~revokes);
    List.iteri (fun i (_, _, _, jcopy) -> Device.write t.dev (t.tail_ptr + 1 + i) jcopy) escaped;
    Device.write t.dev (t.tail_ptr + 1 + n) (encode_commit ~seq ~count:n ~data_csum:csum);
    Device.flush t.dev;
    (* 2. Checkpoint: home-location writes. *)
    List.iter (fun (home, _, data, _) -> Device.write t.dev home data) escaped;
    Device.flush t.dev;
    (* 3. Advance the tail. *)
    t.tail_ptr <- t.tail_ptr + needed;
    t.tail_seq <- Int64.add t.tail_seq 1L;
    write_jsb t;
    Device.flush t.dev;
    t.s_commits <- t.s_commits + 1;
    t.s_blocks_logged <- t.s_blocks_logged + n;
    t.s_revokes <- t.s_revokes + List.length revokes;
    txn_reset txn
  end

let abort _t txn = txn_reset txn
let commit_seq t = t.tail_seq

(* ---- replay ---- *)

type replay_txn = { r_seq : int64; r_writes : (int * int * bytes) list; r_revokes : int list }

let scan_transactions dev geo ~tail_seq ~tail_ptr =
  let rec go ptr seq acc =
    if ptr + 2 > region_end geo then List.rev acc
    else
      let blk = Device.read dev ptr in
      match parse_header blk with
      | Some (btype, bseq) when btype = bt_descriptor && Int64.equal bseq seq -> (
          match decode_descriptor blk with
          | None -> List.rev acc
          | Some (tags, revokes) ->
              let n = List.length tags in
              if ptr + 1 + n + 1 > region_end geo then List.rev acc
              else
                let datas = List.mapi (fun i (home, flags) -> (home, flags, Device.read dev (ptr + 1 + i))) tags in
                let commit_blk = Device.read dev (ptr + 1 + n) in
                (match parse_header commit_blk with
                | Some (cbtype, cseq) when cbtype = bt_commit && Int64.equal cseq seq ->
                    let count, expect_csum = decode_commit commit_blk in
                    let csum =
                      List.fold_left
                        (fun acc (_, _, data) ->
                          Checksum.crc32c ~init:acc data ~pos:0 ~len:(Bytes.length data))
                        0l datas
                    in
                    if count = n && Int32.equal csum expect_csum then
                      go (ptr + n + 2) (Int64.add seq 1L)
                        ({ r_seq = seq; r_writes = datas; r_revokes = revokes } :: acc)
                    else List.rev acc
                | Some _ | None -> List.rev acc)
          )
      | Some _ | None -> List.rev acc
  in
  go tail_ptr tail_seq []

let unescape flags data =
  if flags land flag_escaped <> 0 then begin
    let d = Bytes.copy data in
    Codec.set_u32 d 0 jmagic;
    d
  end
  else data

(* Destage the journaled writes to their home locations on the pool.  The
   final image is what matters (later transactions overwrite earlier
   writes to the same home block), so collapse the write stream to its
   last-write-wins home -> data map first and issue exactly one write per
   home block; the homes are pairwise disjoint, so the parallel writes
   never touch the same block.  Only the write *stream* differs from the
   sequential destage (fewer, reordered writes); the resulting image is
   byte-equal, which the par ≡ seq qcheck property pins down. *)
let destage_parallel pool dev txns ~suppressed =
  let final = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun txn ->
      List.iter
        (fun (home, flags, data) ->
          if not (suppressed home txn.r_seq) then begin
            if not (Hashtbl.mem final home) then order := home :: !order;
            Hashtbl.replace final home (unescape flags data)
          end)
        txn.r_writes)
    txns;
  let homes = Array.of_list (List.rev !order) in
  Rae_par.Pool.parallel_for pool ~n:(Array.length homes) (fun i ->
      let home = homes.(i) in
      match Hashtbl.find_opt final home with
      | Some data -> Device.write dev home data
      | None -> () (* unreachable: [homes] lists exactly [final]'s keys *))

let destage_sequential dev txns ~suppressed =
  List.iter
    (fun txn ->
      List.iter
        (fun (home, flags, data) ->
          if not (suppressed home txn.r_seq) then Device.write dev home (unescape flags data))
        txn.r_writes)
    txns

let replay ?pool dev geo =
  match decode_jsb (Device.read dev (region_start geo)) with
  | None -> Error "journal superblock unreadable; cannot replay"
  | Some (tail_seq, tail_ptr) ->
      if tail_ptr <= region_start geo || tail_ptr > region_end geo then
        Error "journal tail pointer out of region"
      else begin
        let txns = scan_transactions dev geo ~tail_seq ~tail_ptr in
        (* Revocation: a write in txn s to block b is suppressed when b is
           revoked in any txn with seq >= s. *)
        let revoked_at =
          List.concat_map (fun txn -> List.map (fun b -> (b, txn.r_seq)) txn.r_revokes) txns
        in
        let suppressed home seq =
          List.exists (fun (b, s) -> b = home && Int64.compare s seq >= 0) revoked_at
        in
        (match pool with
        | Some p when Rae_par.Pool.size p > 1 -> destage_parallel p dev txns ~suppressed
        | Some _ | None -> destage_sequential dev txns ~suppressed);
        Device.flush dev;
        (match txns with
        | [] -> ()
        | first :: rest ->
            let last = List.fold_left (fun _ txn -> txn) first rest in
            let consumed =
              List.fold_left (fun acc txn -> acc + List.length txn.r_writes + 2) 0 txns
            in
            Device.write dev (region_start geo)
              (encode_jsb ~tail_seq:(Int64.add last.r_seq 1L) ~tail_ptr:(tail_ptr + consumed));
            Device.flush dev);
        Ok (List.length txns)
      end

let stats t =
  {
    commits = t.s_commits;
    blocks_logged = t.s_blocks_logged;
    escapes = t.s_escapes;
    revokes = t.s_revokes;
    tail_resets = t.s_tail_resets;
  }

let pp_stats ppf s =
  Format.fprintf ppf "journal { commits=%d; blocks=%d; escapes=%d; revokes=%d; tail_resets=%d }"
    s.commits s.blocks_logged s.escapes s.revokes s.tail_resets

let register_obs reg ?(prefix = "journal") get =
  let c name help sample =
    Rae_obs.Metrics.register_counter reg ~help (prefix ^ "_" ^ name) (fun () -> sample (get ()))
  in
  c "commits_total" "transactions committed" (fun t -> t.s_commits);
  c "blocks_logged_total" "metadata blocks written to the log" (fun t -> t.s_blocks_logged);
  c "escapes_total" "magic-collision blocks escaped" (fun t -> t.s_escapes);
  c "revokes_total" "revoke records written" (fun t -> t.s_revokes);
  c "tail_resets_total" "checkpoints advancing the log tail" (fun t -> t.s_tail_resets)
