(** Fixed-size domain pool with chunked deal-out and work stealing.

    The pool spawns [size - 1] worker domains once at [create] time; the
    caller of [parallel_for]/[run] is always participant 0, so a pool of
    size [n] uses exactly [n] domains per batch.  Iteration ranges are cut
    into contiguous chunks and dealt round-robin onto per-participant
    deques; a participant pops from its own deque head and steals from
    other participants' tails when it runs dry.  [parallel_for] is a
    structured join: it returns only once every chunk has finished, and
    re-raises the first exception any participant observed (remaining
    chunks are drained without running once an exception is recorded).

    A pool of size <= 1 — or [None] where an [?pool] parameter is taken —
    degrades to plain sequential iteration in ascending index order, which
    keeps the [par_domains = 1] policy bitwise-identical to the
    pre-parallel code paths. *)

type t

(** [create ?domains ()] builds a pool of [domains] participants
    (default [Domain.recommended_domain_count ()], clamped to [1, 64]).
    [domains - 1] worker domains are spawned immediately and live until
    [shutdown]. *)
val create : ?domains:int -> unit -> t

(** Number of participants (caller + workers); always >= 1. *)
val size : t -> int

(** [parallel_for t ?chunk ~n f] runs [f i] for every [0 <= i < n].
    [chunk] bounds the number of indices per dealt chunk (default:
    [max 1 (n / (4 * size))]).  Sequential in ascending order when
    [size t <= 1].  Not reentrant from inside a task body. *)
val parallel_for : t -> ?chunk:int -> n:int -> (int -> unit) -> unit

(** [map_array t ?chunk f xs] is [Array.map f xs] with the index space
    parallelized like [parallel_for]. *)
val map_array : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

(** [run t thunks] executes each thunk once (chunk size 1). *)
val run : t -> (unit -> unit) list -> unit

type stats = {
  tasks_run : int;      (** chunk executions, across all batches *)
  steals : int;         (** chunks taken from another participant's deque *)
  batches : int;        (** parallel_for/run invocations that went parallel *)
  seq_batches : int;    (** invocations that degraded to sequential *)
}

val stats : t -> stats
val reset_stats : t -> unit

(** Join the worker domains.  The pool is unusable afterwards (batches
    degrade to sequential).  Idempotent. *)
val shutdown : t -> unit
