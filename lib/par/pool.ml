(* Fixed-size domain pool.  See pool.mli for the contract.

   Shape: one deque of contiguous-index chunks per participant
   (participant 0 is the caller of [parallel_for]; participants 1..n-1
   are spawned worker domains).  Chunks are dealt round-robin at batch
   start; owners pop their own deque's head, thieves take the tail, so
   steals grab the work farthest from what the owner is about to touch.
   Join is an atomic remaining-chunk counter: the participant that
   retires the last chunk broadcasts [idle], which the caller awaits.
   The first exception a chunk body raises is recorded with a CAS;
   later chunks are drained without running, and the caller re-raises
   after the join — a structured fork/join, nothing escapes. *)

type chunk = { lo : int; hi : int; body : int -> unit }

type deque = { dmu : Mutex.t; mutable items : chunk list }
(* Head of [items] is the owner end; thieves take from the tail.  Deques
   hold at most a handful of chunks, so the O(length) tail removal is
   cheaper than a ring buffer would be. *)

let deque_make () = { dmu = Mutex.create (); items = [] }

let deque_push d c =
  Mutex.lock d.dmu;
  d.items <- c :: d.items;
  Mutex.unlock d.dmu

let deque_pop d =
  Mutex.lock d.dmu;
  let r =
    match d.items with
    | [] -> None
    | c :: rest ->
        d.items <- rest;
        Some c
  in
  Mutex.unlock d.dmu;
  r

let deque_steal d =
  Mutex.lock d.dmu;
  let r =
    match List.rev d.items with
    | [] -> None
    | c :: rest_rev ->
        d.items <- List.rev rest_rev;
        Some c
  in
  Mutex.unlock d.dmu;
  r

type batch = {
  id : int;
  deques : deque array;
  remaining : int Atomic.t;
  failed : exn option Atomic.t;
}

type t = {
  size : int;
  mu : Mutex.t;
  work : Condition.t; (* new batch published, or stopping *)
  idle : Condition.t; (* last chunk of the current batch retired *)
  mutable current : batch option; (* guarded by [mu] *)
  mutable next_id : int; (* guarded by [exec_mu] *)
  mutable stopping : bool; (* guarded by [mu] *)
  mutable workers : unit Domain.t list; (* set once in [create], cleared in [shutdown] *)
  exec_mu : Mutex.t; (* serializes concurrent parallel_for callers *)
  c_tasks : int Atomic.t;
  c_steals : int Atomic.t;
  c_batches : int Atomic.t;
  c_seq : int Atomic.t;
}

type stats = { tasks_run : int; steals : int; batches : int; seq_batches : int }

let size t = t.size

let run_chunk t b c =
  if Atomic.get b.failed = None then begin
    (try
       for i = c.lo to c.hi do
         c.body i
       done
     with e -> ignore (Atomic.compare_and_set b.failed None (Some e)));
    Atomic.incr t.c_tasks
  end;
  if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
    (* Last chunk retired; wake the joining caller. *)
    Mutex.lock t.mu;
    Condition.broadcast t.idle;
    Mutex.unlock t.mu
  end

let work_on t b ~me =
  let n = Array.length b.deques in
  let next () =
    match deque_pop b.deques.(me) with
    | Some c -> Some c
    | None ->
        let rec scan k =
          if k >= n then None
          else
            match deque_steal b.deques.((me + k) mod n) with
            | Some c ->
                Atomic.incr t.c_steals;
                Some c
            | None -> scan (k + 1)
        in
        scan 1
  in
  let rec go () =
    match next () with
    | None -> ()
    | Some c ->
        run_chunk t b c;
        go ()
  in
  go ()

let rec worker_loop t ~me ~last =
  Mutex.lock t.mu;
  let rec await () =
    if t.stopping then None
    else
      match t.current with
      | Some b when b.id <> !last -> Some b
      | _ ->
          Condition.wait t.work t.mu;
          await ()
  in
  match await () with
  | None -> Mutex.unlock t.mu
  | Some b ->
      last := b.id;
      Mutex.unlock t.mu;
      work_on t b ~me;
      worker_loop t ~me ~last

let create ?domains () =
  let n =
    match domains with
    | Some d -> d
    | None -> Domain.recommended_domain_count ()
  in
  let n = max 1 (min 64 n) in
  let t =
    {
      size = n;
      mu = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      current = None;
      next_id = 0;
      stopping = false;
      workers = [];
      exec_mu = Mutex.create ();
      c_tasks = Atomic.make 0;
      c_steals = Atomic.make 0;
      c_batches = Atomic.make 0;
      c_seq = Atomic.make 0;
    }
  in
  if n > 1 then
    t.workers <-
      List.init (n - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop t ~me:(i + 1) ~last:(ref 0)));
  t

let sequential_for t ~n body =
  Atomic.incr t.c_seq;
  for i = 0 to n - 1 do
    body i
  done

let parallel_for t ?chunk ~n body =
  if n <= 0 then ()
  else if t.size <= 1 || t.workers = [] then sequential_for t ~n body
  else begin
    let per =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (n / (4 * t.size))
    in
    Mutex.lock t.exec_mu;
    t.next_id <- t.next_id + 1;
    let nchunks = (n + per - 1) / per in
    let deques = Array.init t.size (fun _ -> deque_make ()) in
    let b =
      {
        id = t.next_id;
        deques;
        remaining = Atomic.make nchunks;
        failed = Atomic.make None;
      }
    in
    for k = 0 to nchunks - 1 do
      let lo = k * per in
      let hi = min (n - 1) (lo + per - 1) in
      deque_push deques.(k mod t.size) { lo; hi; body }
    done;
    Mutex.lock t.mu;
    t.current <- Some b;
    Condition.broadcast t.work;
    Mutex.unlock t.mu;
    work_on t b ~me:0;
    Mutex.lock t.mu;
    while Atomic.get b.remaining > 0 do
      Condition.wait t.idle t.mu
    done;
    t.current <- None;
    Mutex.unlock t.mu;
    Atomic.incr t.c_batches;
    Mutex.unlock t.exec_mu;
    match Atomic.get b.failed with Some e -> raise e | None -> ()
  end

let map_array t ?chunk f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for t ?chunk ~n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let run t thunks =
  let a = Array.of_list thunks in
  parallel_for t ~chunk:1 ~n:(Array.length a) (fun i -> a.(i) ())

let stats t =
  {
    tasks_run = Atomic.get t.c_tasks;
    steals = Atomic.get t.c_steals;
    batches = Atomic.get t.c_batches;
    seq_batches = Atomic.get t.c_seq;
  }

let reset_stats t =
  Atomic.set t.c_tasks 0;
  Atomic.set t.c_steals 0;
  Atomic.set t.c_batches 0;
  Atomic.set t.c_seq 0

let shutdown t =
  Mutex.lock t.mu;
  let was = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mu;
  if not was then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end
