open Rae_format
module Types = Rae_vfs.Types

type severity = Error | Warning

type code =
  | Sb_invalid
  | Ibmap_invalid
  | Bbmap_invalid
  | Inode_invalid
  | Root_invalid
  | Dirent_invalid
  | Dot_mismatch
  | Bad_pointer
  | Double_ref
  | Bitmap_leak
  | Bitmap_missing
  | Nlink_mismatch
  | Unreachable_inode
  | Orphan_inode
  | Size_invalid
  | Count_mismatch
  | Io_failure

type finding = { severity : severity; code : code; detail : string }

type report = {
  findings : finding list;
  inodes_checked : int;
  dirs_walked : int;
  blocks_referenced : int;
}

let code_to_string = function
  | Sb_invalid -> "sb-invalid"
  | Ibmap_invalid -> "inode-bitmap-invalid"
  | Bbmap_invalid -> "block-bitmap-invalid"
  | Inode_invalid -> "inode-invalid"
  | Root_invalid -> "root-invalid"
  | Dirent_invalid -> "dirent-invalid"
  | Dot_mismatch -> "dot-entry-mismatch"
  | Bad_pointer -> "bad-block-pointer"
  | Double_ref -> "block-double-referenced"
  | Bitmap_leak -> "block-bitmap-leak"
  | Bitmap_missing -> "block-bitmap-missing"
  | Nlink_mismatch -> "nlink-mismatch"
  | Unreachable_inode -> "unreachable-inode"
  | Orphan_inode -> "orphan-inode"
  | Size_invalid -> "size-invalid"
  | Count_mismatch -> "free-count-mismatch"
  | Io_failure -> "io-failure"

let pp_finding ppf f =
  Format.fprintf ppf "[%s] %s: %s"
    (match f.severity with Error -> "error" | Warning -> "warn")
    (code_to_string f.code) f.detail

let pp_report ppf r =
  Format.fprintf ppf "@[<v>fsck: %d inodes, %d dirs, %d blocks referenced@,"
    r.inodes_checked r.dirs_walked r.blocks_referenced;
  List.iter (fun f -> Format.fprintf ppf "%a@," pp_finding f) r.findings;
  Format.fprintf ppf "%s@]" (if r.findings = [] then "clean" else "")

let clean r = not (List.exists (fun f -> f.severity = Error) r.findings)
let errors r = List.filter (fun f -> f.severity = Error) r.findings

type ctx = {
  mutable findings : finding list;
  mutable inodes_checked : int;
  mutable dirs_walked : int;
  refs : (int, int) Hashtbl.t;  (* phys block -> reference count *)
  link_counts : (int, int) Hashtbl.t;  (* ino -> observed references *)
  visited_dirs : (int, unit) Hashtbl.t;
}

let fresh_ctx () =
  {
    findings = [];
    inodes_checked = 0;
    dirs_walked = 0;
    refs = Hashtbl.create 256;
    link_counts = Hashtbl.create 256;
    visited_dirs = Hashtbl.create 64;
  }

let note ctx severity code fmt =
  Format.kasprintf (fun detail -> ctx.findings <- { severity; code; detail } :: ctx.findings) fmt

let add_ref ctx blk = Hashtbl.replace ctx.refs blk ((try Hashtbl.find ctx.refs blk with Not_found -> 0) + 1)

let bump_link ctx ino =
  Hashtbl.replace ctx.link_counts ino ((try Hashtbl.find ctx.link_counts ino with Not_found -> 0) + 1)

(* Collect all allocated inodes; invalid slots are reported and skipped. *)
let scan_inodes ctx reader =
  let g = Reader.geometry reader in
  let table = Hashtbl.create 256 in
  for ino = 1 to g.Layout.ninodes do
    match Reader.read_inode_opt reader ino with
    | Ok None -> ()
    | Ok (Some inode) ->
        ctx.inodes_checked <- ctx.inodes_checked + 1;
        Hashtbl.replace table ino inode
    | Error e -> note ctx Error Inode_invalid "%s" (Reader.error_to_string e)
  done;
  table

let check_inode_bitmap ctx reader table =
  let g = Reader.geometry reader in
  match Reader.load_inode_bitmap reader with
  | Error e ->
      note ctx Error Ibmap_invalid "%s" (Reader.error_to_string e);
      None
  | Ok bm ->
      for ino = 1 to g.Layout.ninodes do
        let allocated = Hashtbl.mem table ino in
        let marked = Bitmap.test bm ino in
        if allocated && not marked then
          note ctx Error Ibmap_invalid "inode %d in use but marked free" ino
        else if (not allocated) && marked then
          note ctx Error Ibmap_invalid "inode %d marked in use but slot is free or invalid" ino
      done;
      Some bm

(* Walk a directory inode's blocks, validating structure and recording
   references.  Returns the child directories to recurse into. *)
let walk_dir ctx reader table ~ino ~parent inode =
  ctx.dirs_walked <- ctx.dirs_walked + 1;
  let g = Reader.geometry reader in
  if inode.Inode.size mod Layout.block_size <> 0 then
    note ctx Error Size_invalid "directory %d size %d not block-aligned" ino inode.Inode.size;
  let nblocks = Inode.blocks_for_size inode.Inode.size in
  let subdirs = ref [] in
  let seen_dot = ref false and seen_dotdot = ref false in
  let seen_names = Hashtbl.create 16 in
  for idx = 0 to nblocks - 1 do
    match Reader.read_file_block reader inode idx with
    | Error e -> note ctx Error Bad_pointer "dir %d: %s" ino (Reader.error_to_string e)
    | Ok block -> (
        match Dirent.list block with
        | Error e ->
            note ctx Error Dirent_invalid "dir %d block %d: %s" ino idx (Dirent.error_to_string e)
        | Ok entries ->
            List.iter
              (fun { Dirent.ino = child; kind_code; name } ->
                if Hashtbl.mem seen_names name then
                  note ctx Error Dirent_invalid "dir %d: duplicate name %S" ino name
                else Hashtbl.replace seen_names name ();
                if String.equal name "." then begin
                  seen_dot := true;
                  if child <> ino then note ctx Error Dot_mismatch "dir %d: \".\" points to %d" ino child
                end
                else if String.equal name ".." then begin
                  seen_dotdot := true;
                  if child <> parent then
                    note ctx Error Dot_mismatch "dir %d: \"..\" points to %d, parent is %d" ino child parent
                end
                else if child < 1 || child > g.Layout.ninodes then
                  note ctx Error Dirent_invalid "dir %d: entry %S points to invalid inode %d" ino name child
                else
                  match Hashtbl.find_opt table child with
                  | None ->
                      note ctx Error Dirent_invalid "dir %d: entry %S points to free inode %d" ino name child
                  | Some child_inode ->
                      bump_link ctx child;
                      (match Types.kind_of_code kind_code with
                      | Some k when k = child_inode.Inode.kind -> ()
                      | Some k ->
                          note ctx Error Dirent_invalid
                            "dir %d: entry %S kind %s but inode %d is %s" ino name
                            (Types.kind_to_string k) child
                            (Types.kind_to_string child_inode.Inode.kind)
                      | None ->
                          note ctx Error Dirent_invalid "dir %d: entry %S has invalid kind" ino name);
                      if child_inode.Inode.kind = Types.Directory then begin
                        if Hashtbl.mem ctx.visited_dirs child then
                          note ctx Error Double_ref
                            "directory %d referenced from multiple parents (via %d)" child ino
                        else begin
                          Hashtbl.replace ctx.visited_dirs child ();
                          subdirs := (child, ino, child_inode) :: !subdirs
                        end
                      end)
              entries)
  done;
  if not !seen_dot then note ctx Error Dot_mismatch "dir %d: missing \".\"" ino;
  if not !seen_dotdot then note ctx Error Dot_mismatch "dir %d: missing \"..\"" ino;
  !subdirs

let check_tree ctx reader table =
  match Hashtbl.find_opt table Types.root_ino with
  | None ->
      note ctx Error Root_invalid "root inode %d is not allocated" Types.root_ino;
      ()
  | Some root when root.Inode.kind <> Types.Directory ->
      note ctx Error Root_invalid "root inode is a %s" (Types.kind_to_string root.Inode.kind)
  | Some root ->
      Hashtbl.replace ctx.visited_dirs Types.root_ino ();
      let rec go = function
        | [] -> ()
        | (ino, parent, inode) :: rest ->
            let subdirs = walk_dir ctx reader table ~ino ~parent inode in
            go (subdirs @ rest)
      in
      go [ (Types.root_ino, Types.root_ino, root) ]

let check_blocks ctx reader table =
  Hashtbl.iter
    (fun ino inode ->
      (if inode.Inode.kind = Types.Symlink then
         if inode.Inode.size = 0 || inode.Inode.size > 4095 then
           note ctx Error Size_invalid "symlink %d has size %d" ino inode.Inode.size);
      match
        Reader.iter_file_blocks reader inode ~f:(fun ~idx:_ ~phys ->
            add_ref ctx phys;
            Ok ())
      with
      | Ok () -> ()
      | Error e -> note ctx Error Bad_pointer "inode %d: %s" ino (Reader.error_to_string e))
    table;
  Hashtbl.iter
    (fun blk count ->
      if count > 1 then note ctx Error Double_ref "block %d referenced %d times" blk count)
    ctx.refs

let check_block_bitmap ctx reader =
  match Reader.load_block_bitmap reader with
  | Error e ->
      note ctx Error Bbmap_invalid "%s" (Reader.error_to_string e);
      None
  | Ok bm ->
      let g = Reader.geometry reader in
      for blk = g.Layout.data_start to g.Layout.nblocks - 1 do
        let referenced = Hashtbl.mem ctx.refs blk in
        let marked = Bitmap.test bm blk in
        if referenced && not marked then
          note ctx Error Bitmap_missing "block %d referenced but marked free" blk
        else if (not referenced) && marked then
          note ctx Warning Bitmap_leak "block %d marked allocated but referenced by nothing" blk
      done;
      Some bm

let check_links ctx table =
  Hashtbl.iter
    (fun ino inode ->
      let observed = try Hashtbl.find ctx.link_counts ino with Not_found -> 0 in
      match inode.Inode.kind with
      | Types.Directory ->
          (* Exact directory nlink accounting happens in check_dir_nlinks;
             here only reachability. *)
          if not (Hashtbl.mem ctx.visited_dirs ino) then
            note ctx Error Unreachable_inode "directory %d allocated but unreachable" ino
      | Types.Regular | Types.Symlink ->
          if observed = 0 then begin
            if inode.Inode.nlink = 0 then
              note ctx Warning Orphan_inode "inode %d allocated with nlink 0 (crash leftover)" ino
            else
              note ctx Error Unreachable_inode "inode %d (nlink %d) allocated but unreachable" ino
                inode.Inode.nlink
          end
          else if observed <> inode.Inode.nlink then
            note ctx Error Nlink_mismatch "inode %d has nlink %d but %d references" ino
              inode.Inode.nlink observed)
    table

(* Directory nlink accounting needs the subdir census; do it as a separate
   pass over the visited tree. *)
let check_dir_nlinks ctx table parents =
  Hashtbl.iter
    (fun ino inode ->
      if inode.Inode.kind = Types.Directory && Hashtbl.mem ctx.visited_dirs ino then begin
        let subdirs =
          Hashtbl.fold (fun _child parent acc -> if parent = ino then acc + 1 else acc) parents 0
        in
        let expected = 2 + subdirs in
        if inode.Inode.nlink <> expected then
          note ctx Error Nlink_mismatch "directory %d has nlink %d, expected %d" ino
            inode.Inode.nlink expected
      end)
    table

let check_counts ctx reader ibm bbm =
  let sb = reader.Reader.sb in
  (match ibm with
  | Some bm ->
      let free = Bitmap.count_free bm in
      if free <> sb.Superblock.free_inodes then
        note ctx Error Count_mismatch "superblock free_inodes=%d, bitmap says %d"
          sb.Superblock.free_inodes free
  | None -> ());
  match bbm with
  | Some bm ->
      let g = Reader.geometry reader in
      (* Free data blocks only: metadata blocks are always allocated. *)
      let free = Bitmap.count_free bm in
      ignore g;
      if free <> sb.Superblock.free_blocks then
        note ctx Error Count_mismatch "superblock free_blocks=%d, bitmap says %d"
          sb.Superblock.free_blocks free
  | None -> ()

(* ---- parallel passes (pFSCK-style per-range decomposition) ----

   Every parallel pass follows the same shape: cut the index space (inode
   numbers, block numbers, directory frontier, inode-table slices) into
   contiguous ranges, run the *existing* per-item check against a fresh
   per-range [ctx] on the pool, then merge the per-range contexts
   sequentially in ascending range order.  Because the sequential passes
   also iterate those index spaces in ascending order, the merged findings
   of the range-partitioned passes (inode scan, both bitmap cross-checks)
   come out in the identical order; only the tree walk (BFS frontier
   levels vs. the sequential DFS) and the block-reference pass (sorted-ino
   order vs. Hashtbl iteration order) can permute findings, which the
   par ≡ seq qcheck properties account for by comparing normalized
   multisets.  Workers only read shared state ([reader], the inode
   [table], bitmaps, [ctx.refs] after its merge) and write their own
   [ctx]; the merge points are the only writers of shared tables. *)

module Pool = Rae_par.Pool

(* Split the inclusive range [lo, hi] into at most [pieces] contiguous
   inclusive subranges, in ascending order. *)
let split_ranges ~lo ~hi ~pieces =
  let n = hi - lo + 1 in
  if n <= 0 then [||]
  else begin
    let pieces = max 1 (min pieces n) in
    let per = (n + pieces - 1) / pieces in
    Array.init ((n + per - 1) / per) (fun k ->
        let a = lo + (k * per) in
        (a, min hi (a + per - 1)))
  end

(* Append a per-range context's results onto the global one.  Findings are
   kept reversed in [ctx.findings], so prepending [l.findings] as ranges
   merge in ascending order yields the same final (re-reversed) order as a
   sequential ascending pass. *)
let merge_ctx g l =
  g.findings <- l.findings @ g.findings;
  g.inodes_checked <- g.inodes_checked + l.inodes_checked;
  g.dirs_walked <- g.dirs_walked + l.dirs_walked;
  Hashtbl.iter
    (fun ino n ->
      Hashtbl.replace g.link_counts ino
        ((try Hashtbl.find g.link_counts ino with Not_found -> 0) + n))
    l.link_counts;
  Hashtbl.iter
    (fun blk n ->
      Hashtbl.replace g.refs blk ((try Hashtbl.find g.refs blk with Not_found -> 0) + n))
    l.refs

(* Run [f lo hi] on the pool for each subrange of [lo,hi] and return the
   per-range results in ascending range order. *)
let over_ranges pool ~lo ~hi f =
  let ranges = split_ranges ~lo ~hi ~pieces:(4 * Pool.size pool) in
  Pool.map_array pool ~chunk:1 (fun (a, b) -> f a b) ranges

let par_scan_inodes pool ctx reader =
  let g = Reader.geometry reader in
  let table = Hashtbl.create 256 in
  let outs =
    over_ranges pool ~lo:1 ~hi:g.Layout.ninodes (fun lo hi ->
        let l = fresh_ctx () in
        let found = ref [] in
        for ino = lo to hi do
          match Reader.read_inode_opt reader ino with
          | Ok None -> ()
          | Ok (Some inode) ->
              l.inodes_checked <- l.inodes_checked + 1;
              found := (ino, inode) :: !found
          | Error e -> note l Error Inode_invalid "%s" (Reader.error_to_string e)
        done;
        (l, List.rev !found))
  in
  Array.iter
    (fun (l, found) ->
      merge_ctx ctx l;
      List.iter (fun (ino, inode) -> Hashtbl.replace table ino inode) found)
    outs;
  table

let par_check_inode_bitmap pool ctx reader table =
  let g = Reader.geometry reader in
  match Reader.load_inode_bitmap reader with
  | Error e ->
      note ctx Error Ibmap_invalid "%s" (Reader.error_to_string e);
      None
  | Ok bm ->
      let outs =
        over_ranges pool ~lo:1 ~hi:g.Layout.ninodes (fun lo hi ->
            let l = fresh_ctx () in
            for ino = lo to hi do
              let allocated = Hashtbl.mem table ino in
              let marked = Bitmap.test bm ino in
              if allocated && not marked then
                note l Error Ibmap_invalid "inode %d in use but marked free" ino
              else if (not allocated) && marked then
                note l Error Ibmap_invalid "inode %d marked in use but slot is free or invalid" ino
            done;
            l)
      in
      Array.iter (fun l -> merge_ctx ctx l) outs;
      Some bm

(* BFS tree walk: every directory of the current frontier is walked on the
   pool against a fresh local context (so [walk_dir]'s within-directory
   duplicate detection still works), then the frontier's edges are merged
   sequentially — global double-ref detection and the [parents] census
   live only in the merge, so parallel walkers can never race them. *)
let par_walk pool ctx reader table parents =
  match Hashtbl.find_opt table Types.root_ino with
  | None -> note ctx Error Root_invalid "root inode %d is not allocated" Types.root_ino
  | Some root when root.Inode.kind <> Types.Directory ->
      note ctx Error Root_invalid "root inode is a %s" (Types.kind_to_string root.Inode.kind)
  | Some root ->
      Hashtbl.replace ctx.visited_dirs Types.root_ino ();
      let frontier = ref [ (Types.root_ino, Types.root_ino, root) ] in
      while !frontier <> [] do
        let arr = Array.of_list !frontier in
        let outs =
          Pool.map_array pool ~chunk:1
            (fun (ino, parent, inode) ->
              let l = fresh_ctx () in
              let subdirs = walk_dir l reader table ~ino ~parent inode in
              (l, List.rev subdirs))
            arr
        in
        let next = ref [] in
        Array.iter
          (fun (l, subdirs) ->
            merge_ctx ctx l;
            List.iter
              (fun (child, via, child_inode) ->
                if Hashtbl.mem ctx.visited_dirs child then
                  note ctx Error Double_ref
                    "directory %d referenced from multiple parents (via %d)" child via
                else begin
                  Hashtbl.replace ctx.visited_dirs child ();
                  Hashtbl.replace parents child via;
                  next := (child, via, child_inode) :: !next
                end)
              subdirs)
          outs;
        frontier := List.rev !next
      done

let par_check_blocks pool ctx reader table =
  let inos =
    Hashtbl.fold (fun ino inode acc -> (ino, inode) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> Array.of_list
  in
  let n = Array.length inos in
  if n > 0 then begin
    let outs =
      over_ranges pool ~lo:0 ~hi:(n - 1) (fun lo hi ->
          let l = fresh_ctx () in
          for k = lo to hi do
            let ino, inode = inos.(k) in
            (if inode.Inode.kind = Types.Symlink then
               if inode.Inode.size = 0 || inode.Inode.size > 4095 then
                 note l Error Size_invalid "symlink %d has size %d" ino inode.Inode.size);
            match
              Reader.iter_file_blocks reader inode ~f:(fun ~idx:_ ~phys ->
                  add_ref l phys;
                  Ok ())
            with
            | Ok () -> ()
            | Error e -> note l Error Bad_pointer "inode %d: %s" ino (Reader.error_to_string e)
          done;
          l)
    in
    Array.iter (fun l -> merge_ctx ctx l) outs
  end;
  Hashtbl.iter
    (fun blk count ->
      if count > 1 then note ctx Error Double_ref "block %d referenced %d times" blk count)
    ctx.refs

let par_check_block_bitmap pool ctx reader =
  match Reader.load_block_bitmap reader with
  | Error e ->
      note ctx Error Bbmap_invalid "%s" (Reader.error_to_string e);
      None
  | Ok bm ->
      let g = Reader.geometry reader in
      let outs =
        over_ranges pool ~lo:g.Layout.data_start ~hi:(g.Layout.nblocks - 1) (fun lo hi ->
            let l = fresh_ctx () in
            for blk = lo to hi do
              let referenced = Hashtbl.mem ctx.refs blk in
              let marked = Bitmap.test bm blk in
              if referenced && not marked then
                note l Error Bitmap_missing "block %d referenced but marked free" blk
              else if (not referenced) && marked then
                note l Warning Bitmap_leak "block %d marked allocated but referenced by nothing" blk
            done;
            l)
      in
      Array.iter (fun l -> merge_ctx ctx l) outs;
      Some bm

let check ?pool read =
  let par =
    match pool with Some p when Pool.size p > 1 -> Some p | Some _ | None -> None
  in
  let ctx = fresh_ctx () in
  let finish () =
    {
      findings = List.rev ctx.findings;
      inodes_checked = ctx.inodes_checked;
      dirs_walked = ctx.dirs_walked;
      blocks_referenced = Hashtbl.length ctx.refs;
    }
  in
  match Reader.attach read with
  | exception Rae_block.Device.Io_error msg ->
      note ctx Error Io_failure "device error reading superblock: %s" msg;
      finish ()
  | Error e ->
      note ctx Error Sb_invalid "%s" (Reader.error_to_string e);
      finish ()
  | Ok reader -> (
      try
        let table =
          match par with
          | Some p -> par_scan_inodes p ctx reader
          | None -> scan_inodes ctx reader
        in
        let ibm =
          match par with
          | Some p -> par_check_inode_bitmap p ctx reader table
          | None -> check_inode_bitmap ctx reader table
        in
        (* Track parent edges alongside the walk for dir-nlink accounting. *)
        let parents = Hashtbl.create 64 in
        (match par with
        | Some p -> par_walk p ctx reader table parents
        | None -> (
            match Hashtbl.find_opt table Types.root_ino with
            | Some root when root.Inode.kind = Types.Directory ->
                Hashtbl.replace ctx.visited_dirs Types.root_ino ();
                let rec go = function
                  | [] -> ()
                  | (ino, parent, inode) :: rest ->
                      let subdirs = walk_dir ctx reader table ~ino ~parent inode in
                      List.iter (fun (child, p, _) -> Hashtbl.replace parents child p) subdirs;
                      go (subdirs @ rest)
                in
                go [ (Types.root_ino, Types.root_ino, root) ]
            | Some _ | None -> check_tree ctx reader table));
        (match par with
        | Some p -> par_check_blocks p ctx reader table
        | None -> check_blocks ctx reader table);
        let bbm =
          match par with
          | Some p -> par_check_block_bitmap p ctx reader
          | None -> check_block_bitmap ctx reader
        in
        check_links ctx table;
        check_dir_nlinks ctx table parents;
        check_counts ctx reader ibm bbm;
        finish ()
      with
      | Rae_util.Codec.Decode_error msg ->
          note ctx Error Io_failure "decode error during check: %s" msg;
          finish ()
      | Rae_block.Device.Io_error msg ->
          note ctx Error Io_failure "device error during check: %s" msg;
          finish ())

let check_device ?pool dev =
  let ro = Rae_block.Device.read_only dev in
  check ?pool (fun blk -> Rae_block.Device.read ro blk)
