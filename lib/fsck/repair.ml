open Rae_format
module Device = Rae_block.Device
module Types = Rae_vfs.Types

type action =
  | Fixed_free_counts of { free_inodes : int; free_blocks : int }
  | Released_orphan of { ino : int; blocks_freed : int }
  | Released_unreachable of { ino : int; nlink : int; blocks_freed : int }
  | Freed_leaked_block of int
  | Fixed_nlink of { ino : int; was : int; now : int }

let pp_action ppf = function
  | Fixed_free_counts { free_inodes; free_blocks } ->
      Format.fprintf ppf "fixed superblock free counts (inodes=%d, blocks=%d)" free_inodes
        free_blocks
  | Released_orphan { ino; blocks_freed } ->
      Format.fprintf ppf "released orphan inode %d (%d blocks freed)" ino blocks_freed
  | Released_unreachable { ino; nlink; blocks_freed } ->
      Format.fprintf ppf "released unreachable inode %d (nlink was %d; %d blocks freed)" ino nlink
        blocks_freed
  | Freed_leaked_block blk -> Format.fprintf ppf "freed leaked block %d" blk
  | Fixed_nlink { ino; was; now } ->
      Format.fprintf ppf "fixed inode %d nlink %d -> %d" ino was now

(* A full census of the image: allocated inodes, reachable set, observed
   reference counts, referenced blocks. *)
type census = {
  table : (int, Inode.t) Hashtbl.t;
  reachable : (int, unit) Hashtbl.t;
  refs : (int, int) Hashtbl.t;  (* ino -> dir-entry references *)
  blocks : (int, unit) Hashtbl.t;  (* referenced physical blocks *)
}

let take_census reader =
  let g = Reader.geometry reader in
  let c =
    {
      table = Hashtbl.create 64;
      reachable = Hashtbl.create 64;
      refs = Hashtbl.create 64;
      blocks = Hashtbl.create 256;
    }
  in
  let ( let* ) = Result.bind in
  let* () =
    let rec scan ino =
      if ino > g.Layout.ninodes then Ok ()
      else
        match Reader.read_inode_opt reader ino with
        | Error e -> Error (Reader.error_to_string e)
        | Ok None -> scan (ino + 1)
        | Ok (Some inode) ->
            Hashtbl.replace c.table ino inode;
            scan (ino + 1)
    in
    scan 1
  in
  (* Block references for every allocated inode. *)
  let* () =
    Hashtbl.fold
      (fun ino inode acc ->
        let* () = acc in
        Result.map_error
          (fun e -> Printf.sprintf "inode %d: %s" ino (Reader.error_to_string e))
          (Reader.iter_file_blocks reader inode ~f:(fun ~idx:_ ~phys ->
               Hashtbl.replace c.blocks phys ();
               Ok ())))
      c.table (Ok ())
  in
  (* Reachability walk. *)
  let* root =
    match Hashtbl.find_opt c.table Types.root_ino with
    | Some r when r.Inode.kind = Types.Directory -> Ok r
    | Some _ | None -> Error "root inode missing or not a directory"
  in
  let rec walk ino inode =
    Hashtbl.replace c.reachable ino ();
    let nblocks = Inode.blocks_for_size inode.Inode.size in
    let rec blocks idx =
      if idx >= nblocks then Ok ()
      else
        let* b = Result.map_error Reader.error_to_string (Reader.read_file_block reader inode idx) in
        let* entries = Result.map_error Dirent.error_to_string (Dirent.list b) in
        let* () =
          List.fold_left
            (fun acc { Dirent.ino = child; name; _ } ->
              let* () = acc in
              if name = "." || name = ".." then Ok ()
              else (
                Hashtbl.replace c.refs child ((try Hashtbl.find c.refs child with Not_found -> 0) + 1);
                match Hashtbl.find_opt c.table child with
                | None -> Error (Printf.sprintf "entry %S points to free inode %d" name child)
                | Some ci when ci.Inode.kind = Types.Directory ->
                    if Hashtbl.mem c.reachable child then Ok () else walk child ci
                | Some _ -> Ok ()))
            (Ok ()) entries
        in
        blocks (idx + 1)
    in
    blocks 0
  in
  let* () = walk Types.root_ino root in
  Ok c

let repair dev =
  let read blk = Device.read dev blk in
  match Reader.attach read with
  | Error e -> Error (Reader.error_to_string e)
  | Ok reader -> (
      let g = Reader.geometry reader in
      match (Reader.load_inode_bitmap reader, Reader.load_block_bitmap reader) with
      | Error e, _ | _, Error e -> Error (Reader.error_to_string e)
      | Ok ibm, Ok bbm -> (
          match take_census reader with
          | Error msg -> Error ("structural damage, refusing to repair: " ^ msg)
          | Ok c ->
              let actions = ref [] in
              let note a = actions := a :: !actions in
              (* Release an inode: free its blocks, clear its slot + bit. *)
              let release ino inode =
                let freed = ref 0 in
                (match
                   Reader.iter_file_blocks reader inode ~f:(fun ~idx:_ ~phys ->
                       if Bitmap.test bbm phys then begin
                         Bitmap.clear bbm phys;
                         incr freed
                       end;
                       Ok ())
                 with
                | Ok () | Error _ -> ());
                let blk, pos = Layout.inode_location g ino in
                let b = Device.read dev blk in
                Bytes.fill b pos Layout.inode_size '\000';
                Device.write dev blk b;
                if Bitmap.test ibm ino then Bitmap.clear ibm ino;
                Hashtbl.remove c.table ino;
                !freed
              in
              (* 1. Orphans and unreachable inodes. *)
              Hashtbl.iter
                (fun ino inode ->
                  if ino <> Types.root_ino && not (Hashtbl.mem c.reachable ino) then
                    let observed = try Hashtbl.find c.refs ino with Not_found -> 0 in
                    if observed = 0 then begin
                      let blocks_freed = release ino inode in
                      if inode.Inode.nlink = 0 then note (Released_orphan { ino; blocks_freed })
                      else
                        note
                          (Released_unreachable { ino; nlink = inode.Inode.nlink; blocks_freed })
                    end)
                (Hashtbl.copy c.table);
              (* 2. nlink corrections for surviving non-directories. *)
              Hashtbl.iter
                (fun ino inode ->
                  match Hashtbl.find_opt c.refs ino with
                  | Some observed when inode.Inode.kind <> Types.Directory ->
                    if observed > 0 && observed <> inode.Inode.nlink then begin
                      let blk, pos = Layout.inode_location g ino in
                      let b = Device.read dev blk in
                      Inode.encode { inode with Inode.nlink = observed } ~ino b ~pos;
                      Device.write dev blk b;
                      note (Fixed_nlink { ino; was = inode.Inode.nlink; now = observed })
                    end
                  | _ -> ())
                c.table;
              (* 3. Leaked blocks: recompute references post-release. *)
              let referenced = Hashtbl.create 256 in
              Hashtbl.iter
                (fun ino inode ->
                  ignore ino;
                  ignore
                    (Reader.iter_file_blocks reader inode ~f:(fun ~idx:_ ~phys ->
                         Hashtbl.replace referenced phys ();
                         Ok ())))
                c.table;
              for blk = g.Layout.data_start to g.Layout.nblocks - 1 do
                if Bitmap.test bbm blk && not (Hashtbl.mem referenced blk) then begin
                  Bitmap.clear bbm blk;
                  note (Freed_leaked_block blk)
                end
              done;
              (* 4. Write back bitmaps and recomputed superblock counts. *)
              List.iteri
                (fun i b -> Device.write dev (g.Layout.inode_bitmap_start + i) b)
                (Bitmap.to_blocks ibm ~block_size:Layout.block_size);
              List.iteri
                (fun i b -> Device.write dev (g.Layout.block_bitmap_start + i) b)
                (Bitmap.to_blocks bbm ~block_size:Layout.block_size);
              let free_inodes = Bitmap.count_free ibm and free_blocks = Bitmap.count_free bbm in
              let sb = reader.Reader.sb in
              if
                sb.Superblock.free_inodes <> free_inodes
                || sb.Superblock.free_blocks <> free_blocks
                || !actions <> []
              then begin
                Device.write dev 0
                  (Superblock.encode { sb with Superblock.free_inodes; free_blocks });
                if
                  sb.Superblock.free_inodes <> free_inodes
                  || sb.Superblock.free_blocks <> free_blocks
                then note (Fixed_free_counts { free_inodes; free_blocks })
              end;
              Device.flush dev;
              (* 5. Verify. *)
              let post = Fsck.check read in
              if Fsck.clean post then Ok (List.rev !actions)
              else
                Error
                  (match Fsck.errors post with
                  | [] -> "repairs applied but errors remain"
                  | f :: _ ->
                      Format.asprintf "repairs applied but errors remain: %a" Fsck.pp_finding f)))
