(** The filesystem checker.

    A full read-only consistency check of an rfs image.  The paper argues a
    verified shadow needs "a verified version of the filesystem checker"
    because its liveness guarantee only holds on valid input images (§4.3):
    accordingly the shadow runs {!check} on the trusted on-disk state before
    reconstructing, and refuses to recover from an image that fails.

    The checker validates, in order:
    + superblock (magic, version, checksum, geometry, counts);
    + both allocation bitmaps (strict parse, metadata blocks allocated);
    + every allocated inode (checksum, kind, size, link count fields);
    + the directory tree from the root: directory block structure, "." and
      ".." entries, entry kinds matching inode kinds, no entry pointing to a
      free inode, every tree edge counted;
    + block pointers: in-range, no block referenced twice, referenced set
      equal to the block bitmap;
    + inode reachability and link counts: every allocated inode reachable,
      [nlink] equal to the observed reference count (directories:
      2 + subdirectories);
    + superblock free counts equal to the bitmap populations. *)

type severity = Error | Warning

type code =
  | Sb_invalid
  | Ibmap_invalid
  | Bbmap_invalid
  | Inode_invalid
  | Root_invalid
  | Dirent_invalid
  | Dot_mismatch
  | Bad_pointer
  | Double_ref
  | Bitmap_leak  (** block marked allocated but referenced by nothing *)
  | Bitmap_missing  (** block referenced but marked free *)
  | Nlink_mismatch
  | Unreachable_inode
  | Orphan_inode  (** allocated inode with nlink = 0 (crash leftover; warning) *)
  | Size_invalid
  | Count_mismatch
  | Io_failure

type finding = { severity : severity; code : code; detail : string }

type report = {
  findings : finding list;
  inodes_checked : int;
  dirs_walked : int;
  blocks_referenced : int;
}

val clean : report -> bool
(** No [Error]-severity findings ([Warning]s allowed). *)

val errors : report -> finding list
val code_to_string : code -> string
val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit

val check : ?pool:Rae_par.Pool.t -> (int -> bytes) -> report
(** Run the full check over a block-read function (device or overlay).

    With [?pool] of size > 1 the expensive passes — inode scan, both
    bitmap cross-checks, the directory-tree walk (BFS by frontier level),
    and the block-reference pass — are decomposed per contiguous range
    (pFSCK-style) and run on the pool, with all shared-table updates
    confined to sequential merge points.  The finding *set* is identical
    to the sequential check; only the tree-walk and block-reference
    passes may permute finding order (frontier/sorted-ino order instead
    of DFS/Hashtbl order).  Without a pool (or with a size-1 pool) the
    sequential code paths run unchanged. *)

val check_device : ?pool:Rae_par.Pool.t -> Rae_block.Device.t -> report
(** {!check} over a read-only view of the device; read errors surface as
    [Io_failure] findings rather than exceptions. *)
