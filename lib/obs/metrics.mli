(** The unified metrics registry.

    One registration surface for every subsystem's counters, gauges and
    latency histograms, replacing the per-subsystem ad-hoc [stats] records
    as the way to observe a running RAE stack.  Metrics are {e pull-based}:
    registering a metric stores a sampling closure over the subsystem's own
    mutable counters, so the hot path pays nothing — no metric objects are
    touched per operation; state is read only when {!snapshot} (or the
    prometheus exporter) runs.

    Histograms are the exception: they own their state (log-bucketed
    counts) and are fed explicitly via {!observe} — RAE uses them for
    recovery and recovery-phase latencies, which are off the common path by
    definition. *)

(** {1 Log-bucketed histograms} *)

type histogram
(** Power-of-two bucketed histogram of non-negative [int64] samples
    (nanoseconds, typically).  Bucket [i] holds samples in
    [[2{^i}, 2{^i+1})]; bucket 0 also absorbs zero.  Fixed footprint, no
    allocation per {!observe}. *)

val histogram : unit -> histogram
val observe : histogram -> int64 -> unit
(** Record one sample.  Negative samples are clamped to zero. *)

val h_count : histogram -> int
val h_sum : histogram -> float
val h_max : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0 <= q <= 1]) by linear
    interpolation inside the covering bucket.  Monotone in [q]; returns 0
    on an empty histogram. *)

val h_reset : histogram -> unit

(** {1 The registry} *)

type value =
  | Counter of int
  | Gauge of float
  | Histo of { count : int; sum : float; p50 : float; p90 : float; p99 : float; max : float }

type t

val create : unit -> t

val register_counter : t -> ?help:string -> ?reset:(unit -> unit) -> string -> (unit -> int) -> unit
(** Register a monotone counter sampled by the closure.  [reset] is invoked
    by {!reset} (subsystems pass their own [reset_stats]).  Re-registering
    a name replaces the previous metric — reboot-style re-registration is
    legal. *)

val register_gauge : t -> ?help:string -> ?reset:(unit -> unit) -> string -> (unit -> float) -> unit

val register_histogram : t -> ?help:string -> string -> histogram -> unit
(** The registered histogram is cleared by {!reset}. *)

val snapshot : t -> (string * value) list
(** Sample every registered metric, sorted by name. *)

val find : t -> string -> value option

val reset : t -> unit
(** Run every registered reset hook and clear registered histograms, so
    before/after windows can be compared. *)

val names : t -> string list

val to_prometheus : t -> string
(** Prometheus text exposition: counters and gauges as single samples,
    histograms as summaries ([_count]/[_sum] plus 0.5/0.9/0.99 quantile
    lines).  Metric names are sanitised to [[a-zA-Z0-9_:]]. *)

(** {1 JSON snapshot export} *)

val value_json : value -> Jsonx.t

val json : t -> Jsonx.t
(** {!snapshot} as a JSON object keyed by metric name; counters and
    gauges carry a [value], histograms their count/sum/quantiles.  This
    is what black-box bundles embed. *)

val to_json : t -> string

val value_of_json : Jsonx.t -> value option
val snapshot_of_json : Jsonx.t -> (string * value) list option
(** Inverse of {!json}, for tools reading a bundle back; [None] on any
    shape mismatch. *)
