(* ---- log-bucketed histograms ---- *)

let nbuckets = 63 (* bucket i covers [2^i, 2^(i+1)); covers the OCaml int range *)

type histogram = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable max : float;
}

let histogram () = { buckets = Array.make nbuckets 0; count = 0; sum = 0.; max = 0. }

(* Index of the most significant set bit: [v] in [2^i, 2^(i+1)) lands in
   bucket [i]; 0 and 1 both land in bucket 0. *)
let bucket_of v =
  let rec go b n = if n <= 1 then b else go (b + 1) (n lsr 1) in
  if v <= 0 then 0 else go 0 v

let observe h v =
  let v = if Int64.compare v 0L < 0 then 0 else Int64.to_int v in
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.count <- h.count + 1;
  let f = float_of_int v in
  h.sum <- h.sum +. f;
  if f > h.max then h.max <- f

let h_count h = h.count
let h_sum h = h.sum
let h_max h = h.max

let bucket_lo i = if i = 0 then 0. else Float.of_int (1 lsl i)
let bucket_hi i = Float.of_int (1 lsl (i + 1))

let quantile h q =
  if h.count = 0 then 0.
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let rank = q *. float_of_int h.count in
    let rec go i cum =
      if i >= nbuckets then h.max
      else
        let n = h.buckets.(i) in
        if n = 0 || cum +. float_of_int n < rank then go (i + 1) (cum +. float_of_int n)
        else
          (* rank falls inside bucket i: interpolate linearly. *)
          let frac = (rank -. cum) /. float_of_int n in
          bucket_lo i +. (frac *. (bucket_hi i -. bucket_lo i))
    in
    go 0 0.
  end

let h_reset h =
  Array.fill h.buckets 0 nbuckets 0;
  h.count <- 0;
  h.sum <- 0.;
  h.max <- 0.

(* ---- the registry ---- *)

type value =
  | Counter of int
  | Gauge of float
  | Histo of { count : int; sum : float; p50 : float; p90 : float; p99 : float; max : float }

type metric = {
  m_help : string;
  m_kind : [ `Counter | `Gauge | `Histogram ];
  m_sample : unit -> value;
  m_reset : unit -> unit;
}

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let register t name m = Hashtbl.replace t.tbl name m

let register_counter t ?(help = "") ?(reset = fun () -> ()) name sample =
  register t name
    { m_help = help; m_kind = `Counter; m_sample = (fun () -> Counter (sample ())); m_reset = reset }

let register_gauge t ?(help = "") ?(reset = fun () -> ()) name sample =
  register t name
    { m_help = help; m_kind = `Gauge; m_sample = (fun () -> Gauge (sample ())); m_reset = reset }

let register_histogram t ?(help = "") name h =
  let sample () =
    Histo
      {
        count = h.count;
        sum = h.sum;
        p50 = quantile h 0.5;
        p90 = quantile h 0.9;
        p99 = quantile h 0.99;
        max = h.max;
      }
  in
  register t name
    { m_help = help; m_kind = `Histogram; m_sample = sample; m_reset = (fun () -> h_reset h) }

let snapshot t =
  Hashtbl.fold (fun name m acc -> (name, m.m_sample ()) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find t name = Option.map (fun m -> m.m_sample ()) (Hashtbl.find_opt t.tbl name)
let reset t = Hashtbl.iter (fun _ m -> m.m_reset ()) t.tbl
let names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.tbl [] |> List.sort String.compare

(* ---- prometheus text exposition ---- *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_prometheus t =
  let b = Buffer.create 1024 in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.tbl name with
      | None -> ()
      | Some m ->
      let pname = sanitize name in
      if m.m_help <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" pname m.m_help);
      (match m.m_kind with
      | `Counter -> Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" pname)
      | `Gauge -> Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" pname)
      | `Histogram -> Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" pname));
      match m.m_sample () with
      | Counter v -> Buffer.add_string b (Printf.sprintf "%s %d\n" pname v)
      | Gauge v -> Buffer.add_string b (Printf.sprintf "%s %s\n" pname (fmt_float v))
      | Histo { count; sum; p50; p90; p99; max = _ } ->
          Buffer.add_string b
            (Printf.sprintf "%s{quantile=\"0.5\"} %s\n" pname (fmt_float p50));
          Buffer.add_string b
            (Printf.sprintf "%s{quantile=\"0.9\"} %s\n" pname (fmt_float p90));
          Buffer.add_string b
            (Printf.sprintf "%s{quantile=\"0.99\"} %s\n" pname (fmt_float p99));
          Buffer.add_string b (Printf.sprintf "%s_sum %s\n" pname (fmt_float sum));
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" pname count))
    (names t);
  Buffer.contents b

(* ---- JSON snapshot export ---- *)

let value_json v =
  match v with
  | Counter n -> Jsonx.Obj [ ("type", Jsonx.Str "counter"); ("value", Jsonx.Int n) ]
  | Gauge g -> Jsonx.Obj [ ("type", Jsonx.Str "gauge"); ("value", Jsonx.Float g) ]
  | Histo { count; sum; p50; p90; p99; max } ->
      Jsonx.Obj
        [
          ("type", Jsonx.Str "histogram");
          ("count", Jsonx.Int count);
          ("sum", Jsonx.Float sum);
          ("p50", Jsonx.Float p50);
          ("p90", Jsonx.Float p90);
          ("p99", Jsonx.Float p99);
          ("max", Jsonx.Float max);
        ]

let json t = Jsonx.Obj (List.map (fun (name, v) -> (name, value_json v)) (snapshot t))
let to_json t = Jsonx.to_string (json t)

let value_of_json j =
  let num f = Jsonx.to_float_opt f in
  match Jsonx.member "type" j with
  | Some (Jsonx.Str "counter") -> Option.map (fun n -> Counter n) (Option.bind (Jsonx.member "value" j) Jsonx.to_int_opt)
  | Some (Jsonx.Str "gauge") -> Option.map (fun g -> Gauge g) (Option.bind (Jsonx.member "value" j) num)
  | Some (Jsonx.Str "histogram") -> (
      match
        ( Option.bind (Jsonx.member "count" j) Jsonx.to_int_opt,
          Option.bind (Jsonx.member "sum" j) num,
          Option.bind (Jsonx.member "p50" j) num,
          Option.bind (Jsonx.member "p90" j) num,
          Option.bind (Jsonx.member "p99" j) num,
          Option.bind (Jsonx.member "max" j) num )
      with
      | Some count, Some sum, Some p50, Some p90, Some p99, Some max ->
          Some (Histo { count; sum; p50; p90; p99; max })
      | _ -> None)
  | _ -> None

let snapshot_of_json j =
  match j with
  | Jsonx.Obj fields ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | (name, v) :: rest -> (
            match value_of_json v with Some v -> go ((name, v) :: acc) rest | None -> None)
      in
      go [] fields
  | _ -> None
