(** Span-based tracing for the recovery pipeline.

    A tracer records [B]egin/[E]nd span events and [i]nstant markers against
    a caller-supplied nanosecond clock (typically the virtual device clock
    plus CPU time, so spans have both ordering and non-zero extent).  The
    buffer is a growable array; a disabled tracer records nothing and the
    instrumentation sites cost one option check — safe to leave compiled
    into hot paths.

    Events export to the Chrome [trace_event] JSON format, viewable in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)

type t

type event =
  | Begin of { name : string; cat : string; ts : int64 }
  | End of { name : string; ts : int64 }
  | Instant of { name : string; cat : string; ts : int64 }

val create : ?clock:(unit -> int64) -> ?max_events:int -> unit -> t
(** [clock] supplies nanosecond timestamps; defaults to CPU time
    ([Sys.time]).  The tracer starts {e disabled}.

    [max_events] caps the buffer: once full it becomes a ring that
    overwrites the oldest events, so a long soak run (e.g. an [rfsd]
    daemon) holds bounded memory.  Default [0] keeps the historical
    unbounded doubling, which bench runs rely on for complete traces.
    Values below 16 are clamped to 16. *)

val set_clock : t -> (unit -> int64) -> unit

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val now : t -> int64
(** Read the tracer's clock (works even when disabled). *)

val span_begin : t -> ?cat:string -> string -> unit
(** Open a span.  Balanced against {!span_end} even across enable/disable
    toggles: a span opened while disabled records nothing when closed. *)

val span_end : t -> unit
(** Close the innermost open span.  No-op if none is open. *)

val with_span : t -> ?cat:string -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span; the span is closed on exception too. *)

val instant : t -> ?cat:string -> string -> unit

val depth : t -> int
(** Number of currently open spans. *)

val events : t -> event list
(** Recorded events, oldest first (the retained window when capped). *)

val dropped : t -> int
(** Events overwritten by the ring since creation (always [0] when
    unbounded). *)

val clear : t -> unit
(** Drop recorded events (open-span bookkeeping is kept). *)

(** {1 Chrome trace_event export} *)

val to_chrome : t -> string
(** Serialise to Chrome [trace_event] JSON ([{"traceEvents":[...]}], one
    event per line, timestamps in microseconds).  Spans still open at
    export time are closed at the current clock, and [E] events whose
    [B] was overwritten by a capped ring are dropped, so the output is
    always balanced. *)

val write_chrome : t -> string -> unit
(** [write_chrome t path] writes {!to_chrome} output to [path]. *)

(** {1 Minimal parser / validator} *)

type chrome_event = { ph : char; ev_name : string; ts_us : float }

val parse_chrome : string -> (chrome_event list, string) result
(** Line-oriented parse of the writer's own output format (not a general
    JSON parser). *)

val validate_chrome : string -> (int, string) result
(** Check a Chrome trace for well-formedness: parses, [B]/[E] events
    balance like brackets, and timestamps are monotone non-decreasing.
    Returns the event count. *)
