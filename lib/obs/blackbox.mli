(** Postmortem black-box bundles.

    On every recovery completion and every fail-stop entry the
    controller emits one self-contained JSON file — flight-recorder
    tail, metrics snapshot, recovery report, checkpoint stats, journal
    window summary, policy and provenance — so the event can be triaged
    long after the process is gone.  This module owns the {e container}
    (schema constant, durable write, validation, diff); the controller
    assembles the content, keeping the obs layer free of core types. *)

val schema_version : string
(** Current bundle schema, ["rae-blackbox/1"]. *)

val kind_recovery : string
val kind_failstop : string

val kind_crash : string
(** Crash-divergence bundles written by the {!Rae_crash} sweeps: one per
    enumerated crash image whose recovered state the oracle judged
    diverging, carrying the replayable crash-point key. *)

type summary = {
  s_path : string;  (** source path, [""] when checked from memory *)
  s_schema : string;
  s_kind : string;
  s_seq : int;
  s_rev : string;
  s_health : string;
  s_events : int;
  s_trigger : string option;
  s_outcome : string;
  s_sessions : int;  (** impacted sessions named in the bundle *)
}

val git_rev : unit -> string
(** Commit hash of the enclosing checkout (walks up to [.git/HEAD]),
    or ["unknown"]. *)

val bundle_name : seq:int -> kind:string -> string

val write : dir:string -> seq:int -> kind:string -> Jsonx.t -> (string, string) result
(** Create [dir] if needed and durably write
    [blackbox-<seq>-<kind>.json] (temp file + rename).  Returns the
    path.  Never raises: bundle emission must not take down serving. *)

val check : ?path:string -> Jsonx.t -> (summary, string list) result
(** Validate a bundle against the schema; returns every violation. *)

val check_file : string -> (summary, string list) result
val read_file : string -> (string, string) result
val pp_summary : Format.formatter -> summary -> unit

val diff : Jsonx.t -> Jsonx.t -> string list
(** Structural field-wise diff, one ["path: a vs b"] line per leaf
    difference. *)
