(** Always-on flight recorder: a fixed-memory ring of structured events.

    The recorder keeps the last [capacity] events that led up to {e now}
    — op completions with errno and latency, recovery phase
    transitions, checkpoint cut/fold/poison, bug-registry triggers,
    session lifecycle, degradation notes and slow-op records — so a
    postmortem bundle ({!Blackbox}) can show what the system was doing
    when a recovery or fail-stop hit.

    Recording is allocation-free: the ring is struct-of-arrays over
    pre-allocated [int]/[string] slots, and every [record_*] writes
    scalars plus {e existing} strings (op kinds and errnos are constant
    literals).  Cost is bounded by the clock read.  The typed {!event}
    view is built only on the read side. *)

type body =
  | Op_done of { kind : string; errno : string; lat_ns : int; corr : int; session : int }
      (** one executed operation; [errno = ""] means success *)
  | Slow_op of { kind : string; lat_ns : int; threshold_ns : int; corr : int; session : int }
      (** an op whose latency crossed the policy threshold *)
  | Recovery_begin of { trigger : string }
  | Recovery_phase of { phase : string; ns : int }
  | Recovery_end of { ok : bool; seeded : bool; replayed : int }
  | Ckpt_cut
  | Ckpt_fold of { ops : int }
  | Ckpt_poison
  | Bug_fired of { id : string }
  | Session_event of { action : [ `Attach | `Evict | `Retry | `Detach ]; session : int }
  | Degradation of { reason : string }
  | Note of { msg : string }

type event = { seq : int;  (** global event number, monotone from 0 *) ts_ns : int; body : body }

(** Derived liveness state, exported as the [rae_health] gauge for the
    future per-shard fleet: [Failstop] once the controller degrades,
    [Recovering] inside a recovery, [Degraded] when the last recovery
    left discrepancies, [Healthy] otherwise. *)
type health = Healthy | Recovering | Degraded | Failstop

val health_to_string : health -> string
(** ["OK"] / ["RECOVERING"] / ["DEGRADED"] / ["FAILSTOP"]. *)

val health_of_string : string -> health option
val health_code : health -> int

type t

val create : ?capacity:int -> ?clock:(unit -> int) -> unit -> t
(** [capacity] (default 1024) rounds up to a power of two; [clock]
    returns nanoseconds (defaults to [Sys.time]-derived). *)

val set_clock : t -> (unit -> int) -> unit
val capacity : t -> int

val total : t -> int
(** Events ever recorded (≥ {!retained}). *)

val retained : t -> int
val dropped : t -> int
val clear : t -> unit

(** {1 Recording — allocation-free} *)

val record_op : t -> kind:string -> errno:string -> lat_ns:int -> corr:int -> session:int -> unit
val record_slow_op :
  t -> kind:string -> lat_ns:int -> threshold_ns:int -> corr:int -> session:int -> unit

val record_recovery_begin : t -> trigger:string -> unit
val record_recovery_phase : t -> phase:string -> ns:int -> unit
val record_recovery_end : t -> ok:bool -> seeded:bool -> replayed:int -> unit
val record_ckpt_cut : t -> unit
val record_ckpt_fold : t -> ops:int -> unit
val record_ckpt_poison : t -> unit
val record_bug_fired : t -> id:string -> unit
val record_session : t -> [ `Attach | `Evict | `Retry | `Detach ] -> session:int -> unit
val record_degraded : t -> reason:string -> unit
val record_note : t -> string -> unit

(** {1 Read side} *)

val tail : ?n:int -> t -> event list
(** The last [n] (default: all retained) events, oldest first. *)

val body_kind_string : body -> string
val event_json : event -> Jsonx.t
val to_json : ?n:int -> t -> Jsonx.t
val pp_event : Format.formatter -> event -> unit
