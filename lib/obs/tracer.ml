type event =
  | Begin of { name : string; cat : string; ts : int64 }
  | End of { name : string; ts : int64 }
  | Instant of { name : string; cat : string; ts : int64 }

type t = {
  mutable clock : unit -> int64;
  mutable on : bool;
  mutable buf : event array;
  mutable len : int;
  mutable start : int;  (* index of the oldest retained event *)
  max_events : int;  (* 0 = unbounded *)
  mutable s_dropped : int;
  (* (name, was_recorded): the stack stays balanced across enable/disable
     toggles — a span opened while disabled must not emit an E on close. *)
  mutable stack : (string * bool) list;
  mutable last_ts : int64;
  lock : Mutex.t;
      (* serializes every public mutator (and export, which touches the
         monotone clock cache): tracers are shared across the controller
         and the subsystems it drives, which the domain-safety lint
         wants runnable on separate domains.  [now]/[push] are internal
         and only ever run under the lock. *)
}

let default_clock () = Int64.of_float (Sys.time () *. 1e9)

let create ?(clock = default_clock) ?(max_events = 0) () =
  {
    clock;
    on = false;
    buf = [||];
    len = 0;
    start = 0;
    max_events = (if max_events <= 0 then 0 else max 16 max_events);
    s_dropped = 0;
    stack = [];
    last_ts = 0L;
    lock = Mutex.create ();
  }

let locked t f = Mutex.protect t.lock f
let set_clock t clock = locked t (fun () -> t.clock <- clock)
let enable t = locked t (fun () -> t.on <- true)
let disable t = locked t (fun () -> t.on <- false)
let enabled t = t.on

(* Timestamps are clamped monotone: combined virtual+CPU clocks can wobble
   backwards across clock swaps, and trace viewers reject that. *)
let now t =
  let ts = t.clock () in
  if Int64.compare ts t.last_ts > 0 then t.last_ts <- ts;
  t.last_ts

let push t ev =
  let cap = Array.length t.buf in
  if t.len < cap then begin
    t.buf.((t.start + t.len) mod cap) <- ev;
    t.len <- t.len + 1
  end
  else if t.max_events > 0 && cap >= t.max_events then begin
    (* At the cap the buffer becomes a ring: overwrite the oldest event
       and advance — a long soak run holds [max_events] slots, forever. *)
    t.buf.(t.start) <- ev;
    t.start <- (t.start + 1) mod cap;
    t.s_dropped <- t.s_dropped + 1
  end
  else begin
    let ncap = max 64 (2 * t.len) in
    let ncap = if t.max_events > 0 then min ncap t.max_events else ncap in
    let buf = Array.make ncap ev in
    for i = 0 to t.len - 1 do
      buf.(i) <- t.buf.((t.start + i) mod cap)
    done;
    t.buf <- buf;
    t.start <- 0;
    t.buf.(t.len) <- ev;
    t.len <- t.len + 1
  end

let span_begin t ?(cat = "rae") name =
  locked t (fun () ->
      if t.on then begin
        push t (Begin { name; cat; ts = now t });
        t.stack <- (name, true) :: t.stack
      end
      else t.stack <- (name, false) :: t.stack)

let span_end t =
  locked t (fun () ->
      match t.stack with
      | [] -> ()
      | (name, recorded) :: rest ->
          t.stack <- rest;
          if recorded then push t (End { name; ts = now t }))

let with_span t ?cat name f =
  span_begin t ?cat name;
  Fun.protect ~finally:(fun () -> span_end t) f

let instant t ?(cat = "rae") name =
  locked t (fun () -> if t.on then push t (Instant { name; cat; ts = now t }))

let depth t = locked t (fun () -> List.length t.stack)

let nth_event t i =
  let cap = Array.length t.buf in
  t.buf.((t.start + i) mod cap)

let events t = locked t (fun () -> List.init t.len (fun i -> nth_event t i))
let dropped t = t.s_dropped

let clear t =
  locked t (fun () ->
      t.buf <- [||];
      t.len <- 0;
      t.start <- 0;
      t.s_dropped <- 0)

(* ---- Chrome trace_event export ---- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us_of_ns ns = Int64.to_float ns /. 1000.

let event_line ~ph ~name ~cat ~ts =
  Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":1,\"tid\":1%s}"
    (json_escape name) (json_escape cat) ph (us_of_ns ts)
    (if ph = 'i' then ",\"s\":\"t\"" else "")

let to_chrome t =
  locked t @@ fun () ->
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b line
  in
  (* [open_spans] mirrors the B/E bracketing of what we actually emit:
     after a capped ring wraps, the tail can start with E events whose B
     was overwritten — those are dropped so the export stays balanced,
     and only spans whose B survived are synthetically closed at the
     end. *)
  let open_spans = ref [] in
  for i = 0 to t.len - 1 do
    match nth_event t i with
    | Begin { name; cat; ts } ->
        open_spans := name :: !open_spans;
        emit (event_line ~ph:'B' ~name ~cat ~ts)
    | End { name; ts } -> (
        match !open_spans with
        | top :: rest when top = name ->
            open_spans := rest;
            emit (event_line ~ph:'E' ~name ~cat:"rae" ~ts)
        | _ -> ())
    | Instant { name; cat; ts } -> emit (event_line ~ph:'i' ~name ~cat ~ts)
  done;
  (* Close anything still open so the trace always balances. *)
  let ts = now t in
  List.iter (fun name -> emit (event_line ~ph:'E' ~name ~cat:"rae" ~ts)) !open_spans;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write_chrome t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_chrome t))

(* ---- minimal parser / validator ---- *)

type chrome_event = { ph : char; ev_name : string; ts_us : float }

(* Pull the value of a ["key":...] field out of one event line.  Values we
   care about are either quoted strings or bare numbers; this is only ever
   pointed at our own writer's output. *)
let field line key =
  let pat = "\"" ^ key ^ "\":" in
  let plen = String.length pat in
  let llen = String.length line in
  let rec find i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      if start < llen && line.[start] = '"' then begin
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= llen then None
          else
            match line.[j] with
            | '"' -> Some (Buffer.contents buf)
            | '\\' when j + 1 < llen ->
                (match line.[j + 1] with
                | '"' -> Buffer.add_char buf '"'
                | '\\' -> Buffer.add_char buf '\\'
                | 'n' -> Buffer.add_char buf '\n'
                | c ->
                    Buffer.add_char buf '\\';
                    Buffer.add_char buf c);
                scan (j + 2)
            | c ->
                Buffer.add_char buf c;
                scan (j + 1)
        in
        scan (start + 1)
      end
      else begin
        let rec stop j =
          if j >= llen then j
          else match line.[j] with ',' | '}' | ']' -> j | _ -> stop (j + 1)
        in
        let j = stop start in
        if j = start then None else Some (String.sub line start (j - start))
      end

let parse_chrome s =
  if String.trim s = "" then Error "empty trace file"
  else
    let lines = String.split_on_char '\n' s in
    let rec go acc seen_header = function
      | [] -> if seen_header then Ok (List.rev acc) else Error "missing traceEvents header"
      | line :: rest ->
          let line = String.trim line in
          let line =
            (* strip the inter-event separator *)
            if String.length line > 0 && line.[String.length line - 1] = ',' then
              String.sub line 0 (String.length line - 1)
            else line
          in
          if line = "" then go acc seen_header rest
          else if String.length line >= 15 && String.sub line 0 15 = "{\"traceEvents\":" then
            go acc true rest
          else if String.length line > 0 && line.[0] = '{' then (
            match (field line "ph", field line "name", field line "ts") with
            | Some ph, Some name, Some ts when String.length ph = 1 -> (
                match float_of_string_opt ts with
                | Some ts_us -> go ({ ph = ph.[0]; ev_name = name; ts_us } :: acc) seen_header rest
                | None -> Error (Printf.sprintf "bad ts in event %S" line))
            | _ -> Error (Printf.sprintf "malformed event %S" line))
          else if line = "],\"displayTimeUnit\":\"ms\"}" || line = "]}" then
            go acc seen_header rest
          else Error (Printf.sprintf "unexpected line %S" line)
    in
    go [] false lines

let validate_chrome s =
  match parse_chrome s with
  | Error _ as e -> e
  | Ok evs ->
      let rec check stack last = function
        | [] -> if stack = [] then Ok (List.length evs) else Error "unclosed B events"
        | { ph; ev_name; ts_us } :: rest ->
            if ts_us < last then Error (Printf.sprintf "non-monotone ts at %S" ev_name)
            else (
              match ph with
              | 'B' -> check (ev_name :: stack) ts_us rest
              | 'E' -> (
                  match stack with
                  | top :: stack' ->
                      if top = ev_name then check stack' ts_us rest
                      else Error (Printf.sprintf "E %S does not match open span %S" ev_name top)
                  | [] -> Error (Printf.sprintf "E %S with no open span" ev_name))
              | 'i' -> check stack ts_us rest
              | c -> Error (Printf.sprintf "unknown phase %C" c))
      in
      check [] neg_infinity evs
