(* Postmortem black-box bundles.

   One self-contained JSON file per recovery completion or fail-stop
   entry: flight-recorder tail, metrics snapshot, recovery report,
   checkpoint stats, journal window summary, policy and provenance
   (git rev + run id).  This module owns the {e container} — schema
   constants, durable write, validation and diff; the controller owns
   the content (layering: obs depends only on util, so nothing here may
   know about reports or checkpoints beyond their JSON shape). *)

let schema_version = "rae-blackbox/1"
let kind_recovery = "recovery"
let kind_failstop = "failstop"
let kind_crash = "crash"

type summary = {
  s_path : string;  (** source path, [""] when checked from memory *)
  s_schema : string;
  s_kind : string;
  s_seq : int;
  s_rev : string;
  s_health : string;
  s_events : int;
  s_trigger : string option;
  s_outcome : string;
  s_sessions : int;  (** impacted sessions named in the bundle *)
}

(* ---- provenance ---- *)

let read_first_line path =
  match open_in path with
  | ic ->
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      Some (String.trim line)
  | exception Sys_error _ -> None

(* Same resolution the bench uses for its provenance block: walk up to
   the enclosing .git and chase HEAD one level. *)
let git_rev () =
  let rec find dir depth =
    if depth > 8 then None
    else
      let head = Filename.concat (Filename.concat dir ".git") "HEAD" in
      if Sys.file_exists head then Some (dir, head)
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else find parent (depth + 1)
  in
  match find (Sys.getcwd ()) 0 with
  | None -> "unknown"
  | Some (root, head) -> (
      match read_first_line head with
      | None | Some "" -> "unknown"
      | Some line ->
          if String.length line > 5 && String.sub line 0 5 = "ref: " then
            let refname = String.sub line 5 (String.length line - 5) in
            let reffile = Filename.concat (Filename.concat root ".git") refname in
            match read_first_line reffile with
            | Some rev when rev <> "" -> rev
            | _ -> line
          else line)

(* ---- durable write ---- *)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    match Sys.mkdir dir 0o755 with
    | () -> ()
    | exception Sys_error _ -> ()  (* raced or exists; the open below reports real failures *)
  end

let bundle_name ~seq ~kind = Printf.sprintf "blackbox-%06d-%s.json" seq kind

let write ~dir ~seq ~kind json =
  let path = Filename.concat dir (bundle_name ~seq ~kind) in
  let tmp = path ^ ".tmp" in
  match
    mkdir_p dir;
    let oc = open_out_bin tmp in
    output_string oc (Jsonx.to_string ~pretty:true json);
    output_char oc '\n';
    close_out oc;
    Sys.rename tmp path
  with
  | () -> Ok path
  | exception Sys_error msg -> Error msg

(* ---- validation ---- *)

let known_kinds = [ kind_recovery; kind_failstop; kind_crash ]
let known_health = [ "OK"; "RECOVERING"; "DEGRADED"; "FAILSTOP" ]

let check ?(path = "") json =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let str_field name =
    match Jsonx.member name json with
    | Some (Jsonx.Str s) -> Some s
    | Some _ ->
        err "field %S must be a string" name;
        None
    | None ->
        err "missing field %S" name;
        None
  in
  let int_field name =
    match Jsonx.member name json with
    | Some (Jsonx.Int n) -> Some n
    | Some _ ->
        err "field %S must be an integer" name;
        None
    | None ->
        err "missing field %S" name;
        None
  in
  let obj_field ?(nullable = false) name =
    match Jsonx.member name json with
    | Some (Jsonx.Obj o) -> Some o
    | Some Jsonx.Null when nullable -> None
    | Some _ ->
        err "field %S must be an object%s" name (if nullable then " or null" else "");
        None
    | None ->
        err "missing field %S" name;
        None
  in
  let schema = Option.value ~default:"" (str_field "schema") in
  if schema <> "" && schema <> schema_version then
    err "unknown schema %S (expected %S)" schema schema_version;
  let kind = Option.value ~default:"" (str_field "kind") in
  if kind <> "" && not (List.mem kind known_kinds) then err "unknown bundle kind %S" kind;
  let seq = Option.value ~default:0 (int_field "seq") in
  ignore (int_field "ts_ns");
  let rev = Option.value ~default:"" (str_field "rev") in
  ignore (str_field "run_id");
  let health = Option.value ~default:"" (str_field "health") in
  if health <> "" && not (List.mem health known_health) then err "unknown health %S" health;
  ignore (obj_field "policy");
  ignore (obj_field ~nullable:true "checkpoint");
  ignore (obj_field ~nullable:true "journal");
  ignore (obj_field "metrics");
  let events =
    match Jsonx.member "events" json with
    | Some (Jsonx.List evs) ->
        List.iteri
          (fun i ev ->
            match ev with
            | Jsonx.Obj _ ->
                let want_int f =
                  match Jsonx.member f ev with
                  | Some (Jsonx.Int _) -> ()
                  | _ -> err "events[%d]: missing integer %S" i f
                in
                want_int "seq";
                want_int "ts_ns";
                (match Jsonx.member "kind" ev with
                | Some (Jsonx.Str _) -> ()
                | _ -> err "events[%d]: missing string \"kind\"" i)
            | _ -> err "events[%d] must be an object" i)
          evs;
        List.length evs
    | Some _ ->
        err "field \"events\" must be a list";
        0
    | None ->
        err "missing field \"events\"";
        0
  in
  let trigger, outcome =
    match obj_field "recovery" with
    | None -> (None, "")
    | Some _ -> (
        let r = Option.value ~default:Jsonx.Null (Jsonx.member "recovery" json) in
        let r_str name =
          match Jsonx.member name r with
          | Some (Jsonx.Str s) -> Some s
          | Some Jsonx.Null -> None
          | Some _ ->
              err "recovery.%s must be a string or null" name;
              None
          | None ->
              err "missing field recovery.%s" name;
              None
        in
        let r_int name =
          match Jsonx.member name r with
          | Some (Jsonx.Int _) -> ()
          | _ -> err "missing integer recovery.%s" name
        in
        r_int "window";
        r_int "replayed";
        r_int "skipped";
        (match Jsonx.member "seeded" r with
        | Some (Jsonx.Bool _) -> ()
        | _ -> err "missing boolean recovery.seeded");
        (match Jsonx.member "phases" r with
        | Some (Jsonx.List _) -> ()
        | _ -> err "missing list recovery.phases");
        let trigger = r_str "trigger" in
        let outcome = Option.value ~default:"" (r_str "outcome") in
        (trigger, outcome))
  in
  let sessions =
    match Jsonx.member "impacted_sessions" json with
    | Some (Jsonx.List l) -> List.length l
    | Some _ ->
        err "field \"impacted_sessions\" must be a list";
        0
    | None ->
        err "missing field \"impacted_sessions\"";
        0
  in
  if kind = kind_failstop && health <> "" && health <> "FAILSTOP" then
    err "failstop bundle must report health FAILSTOP (got %S)" health;
  match !errs with
  | [] ->
      Ok
        {
          s_path = path;
          s_schema = schema;
          s_kind = kind;
          s_seq = seq;
          s_rev = rev;
          s_health = health;
          s_events = events;
          s_trigger = trigger;
          s_outcome = outcome;
          s_sessions = sessions;
        }
  | errs -> Error (List.rev errs)

let read_file path =
  match open_in_bin path with
  | ic ->
      let len = in_channel_length ic in
      let data = really_input_string ic len in
      close_in ic;
      Ok data
  | exception Sys_error msg -> Error msg

let check_file path =
  match read_file path with
  | Error msg -> Error [ Printf.sprintf "%s: %s" path msg ]
  | Ok data -> (
      match Jsonx.parse data with
      | Error msg -> Error [ Printf.sprintf "%s: parse error: %s" path msg ]
      | Ok json -> (
          match check ~path json with
          | Ok s -> Ok s
          | Error errs -> Error (List.map (fun e -> Printf.sprintf "%s: %s" path e) errs)))

let pp_summary ppf s =
  Format.fprintf ppf "%s bundle #%d: health %s, %d event(s), %d session(s)%s, outcome %s [%s]"
    s.s_kind s.s_seq s.s_health s.s_events s.s_sessions
    (match s.s_trigger with Some t -> ", trigger " ^ t | None -> "")
    (if s.s_outcome = "" then "-" else s.s_outcome)
    (if s.s_rev = "" then "unknown" else s.s_rev)

(* ---- structural diff ---- *)

let rec diff_at path a b acc =
  let leaf () = Printf.sprintf "%s: %s vs %s" path (Jsonx.to_string a) (Jsonx.to_string b) :: acc in
  match (a, b) with
  | Jsonx.Obj fa, Jsonx.Obj fb ->
      let keys =
        List.sort_uniq compare (List.map fst fa @ List.map fst fb)
      in
      List.fold_left
        (fun acc k ->
          let sub = if path = "" then k else path ^ "." ^ k in
          match (List.assoc_opt k fa, List.assoc_opt k fb) with
          | Some va, Some vb -> diff_at sub va vb acc
          | Some _, None -> Printf.sprintf "%s: only in first" sub :: acc
          | None, Some _ -> Printf.sprintf "%s: only in second" sub :: acc
          | None, None -> acc)
        acc keys
  | Jsonx.List la, Jsonx.List lb ->
      let n = max (List.length la) (List.length lb) in
      let get l i = List.nth_opt l i in
      let rec go i acc =
        if i >= n then acc
        else
          let sub = Printf.sprintf "%s[%d]" path i in
          let acc =
            match (get la i, get lb i) with
            | Some va, Some vb -> diff_at sub va vb acc
            | Some _, None -> Printf.sprintf "%s: only in first" sub :: acc
            | None, Some _ -> Printf.sprintf "%s: only in second" sub :: acc
            | None, None -> acc
          in
          go (i + 1) acc
      in
      go 0 acc
  | _ -> if a = b then acc else leaf ()

let diff a b = List.rev (diff_at "" a b [])
