(* Minimal JSON — just enough for black-box bundles and metric snapshots.
   The toolchain ships no JSON library, and the bench already hand-rolls
   its emitter; this module gives the obs layer one shared AST so the
   bundle writer, the checker and the tools agree on a grammar. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
        if Float.is_nan f || Float.is_integer (f /. 0.) then Buffer.add_string buf "null"
        else Buffer.add_string buf (float_repr f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then begin
              Buffer.add_char buf '\n';
              pad (depth + 1)
            end;
            go (depth + 1) item)
          items;
        if pretty then begin
          Buffer.add_char buf '\n';
          pad depth
        end;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then begin
              Buffer.add_char buf '\n';
              pad (depth + 1)
            end;
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf (if pretty then "\": " else "\":");
            go (depth + 1) item)
          fields;
        if pretty then begin
          Buffer.add_char buf '\n';
          pad depth
        end;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of string

let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit in \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> ()
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' ->
                Buffer.add_char buf '"';
                go ()
            | '\\' ->
                Buffer.add_char buf '\\';
                go ()
            | '/' ->
                Buffer.add_char buf '/';
                go ()
            | 'n' ->
                Buffer.add_char buf '\n';
                go ()
            | 'r' ->
                Buffer.add_char buf '\r';
                go ()
            | 't' ->
                Buffer.add_char buf '\t';
                go ()
            | 'b' ->
                Buffer.add_char buf '\b';
                go ()
            | 'f' ->
                Buffer.add_char buf '\012';
                go ()
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let code =
                  (hex_digit s.[!pos] lsl 12)
                  lor (hex_digit s.[!pos + 1] lsl 8)
                  lor (hex_digit s.[!pos + 2] lsl 4)
                  lor hex_digit s.[!pos + 3]
                in
                pos := !pos + 4;
                (* Our own emitter only produces \u for control bytes; decode
                   the BMP point as UTF-8 so foreign input stays readable. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end;
                go ()
            | _ -> fail "unknown escape")
        | c ->
            Buffer.add_char buf c;
            go ()
      end
    in
    go ();
    Buffer.contents buf
  in
  let parse_literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected '%s'" lit)
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number '%s'" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some 't' -> parse_literal "true" (Bool true)
    | Some 'f' -> parse_literal "false" (Bool false)
    | Some 'n' -> parse_literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s = match parse_exn s with v -> Ok v | exception Parse_error msg -> Error msg

(* ---- accessors ---- *)

let member k v = match v with Obj fields -> List.assoc_opt k fields | _ -> None
let to_int_opt = function Int n -> Some n | _ -> None
let to_float_opt = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None
let to_str_opt = function Str s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
let to_obj_opt = function Obj o -> Some o | _ -> None
