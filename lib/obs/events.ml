(* Always-on flight recorder: a fixed-memory ring of structured events.

   The recorder must be cheap enough to leave enabled on the hot path,
   so the ring is laid out struct-of-arrays over pre-allocated [int]
   and [string] slots: recording writes scalars and {e existing}
   strings (op kinds and errnos are constant literals) into the slot —
   it never allocates.  The typed {!event} view is materialized only on
   read, by {!tail} and the bundle writer. *)

type body =
  | Op_done of { kind : string; errno : string; lat_ns : int; corr : int; session : int }
      (** one executed operation; [errno = ""] means success *)
  | Slow_op of { kind : string; lat_ns : int; threshold_ns : int; corr : int; session : int }
      (** an op whose latency crossed the policy threshold *)
  | Recovery_begin of { trigger : string }
  | Recovery_phase of { phase : string; ns : int }
  | Recovery_end of { ok : bool; seeded : bool; replayed : int }
  | Ckpt_cut
  | Ckpt_fold of { ops : int }
  | Ckpt_poison
  | Bug_fired of { id : string }
  | Session_event of { action : [ `Attach | `Evict | `Retry | `Detach ]; session : int }
  | Degradation of { reason : string }
  | Note of { msg : string }

type event = { seq : int; ts_ns : int; body : body }
type health = Healthy | Recovering | Degraded | Failstop

let health_to_string = function
  | Healthy -> "OK"
  | Recovering -> "RECOVERING"
  | Degraded -> "DEGRADED"
  | Failstop -> "FAILSTOP"

let health_of_string = function
  | "OK" -> Some Healthy
  | "RECOVERING" -> Some Recovering
  | "DEGRADED" -> Some Degraded
  | "FAILSTOP" -> Some Failstop
  | _ -> None

let health_code = function Healthy -> 0 | Recovering -> 1 | Degraded -> 2 | Failstop -> 3

(* Event tag codes for the packed representation. *)
let k_op = 0
let k_slow = 1
let k_rbegin = 2
let k_rphase = 3
let k_rend = 4
let k_cut = 5
let k_fold = 6
let k_poison = 7
let k_bug = 8
let k_attach = 9
let k_evict = 10
let k_retry = 11
let k_detach = 12
let k_degraded = 13
let k_note = 14

type t = {
  mask : int;  (* capacity - 1; capacity is a power of two *)
  e_kind : int array;
  e_ts : int array;
  e_a : int array;
  e_b : int array;
  e_c : int array;
  e_d : int array;
  e_s1 : string array;
  e_s2 : string array;
  mutable clock : unit -> int;  (* nanoseconds *)
  total : int Atomic.t;  (* events ever recorded; head = total land mask *)
}

let default_clock () = int_of_float (Sys.time () *. 1e9)

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let create ?(capacity = 1024) ?(clock = default_clock) () =
  let cap = pow2_at_least (max 2 capacity) 2 in
  {
    mask = cap - 1;
    e_kind = Array.make cap 0;
    e_ts = Array.make cap 0;
    e_a = Array.make cap 0;
    e_b = Array.make cap 0;
    e_c = Array.make cap 0;
    e_d = Array.make cap 0;
    e_s1 = Array.make cap "";
    e_s2 = Array.make cap "";
    clock;
    total = Atomic.make 0;
  }

let set_clock t clock = t.clock <- clock
let capacity t = t.mask + 1
let total t = Atomic.get t.total
let retained t = min (total t) (t.mask + 1)
let dropped t = total t - retained t
let clear t = Atomic.set t.total 0

(* The single write path: every record_* fills one slot completely so no
   field carries a stale value from an overwritten event.  The slot
   index comes from an atomic fetch-and-add, so concurrent recorders
   claim disjoint slots (the per-slot stores need no further ordering —
   a reader racing the writer of a live slot sees a torn event at worst,
   which the bounded [tail] views tolerate by construction). *)
let[@inline] put t kind a b c d s1 s2 =
  let i = Atomic.fetch_and_add t.total 1 land t.mask in
  t.e_kind.(i) <- kind;
  t.e_ts.(i) <- t.clock ();
  t.e_a.(i) <- a;
  t.e_b.(i) <- b;
  t.e_c.(i) <- c;
  t.e_d.(i) <- d;
  t.e_s1.(i) <- s1;
  t.e_s2.(i) <- s2

let record_op t ~kind ~errno ~lat_ns ~corr ~session =
  put t k_op lat_ns corr session 0 kind errno

let record_slow_op t ~kind ~lat_ns ~threshold_ns ~corr ~session =
  put t k_slow lat_ns corr session threshold_ns kind ""

let record_recovery_begin t ~trigger = put t k_rbegin 0 0 0 0 trigger ""
let record_recovery_phase t ~phase ~ns = put t k_rphase ns 0 0 0 phase ""

let record_recovery_end t ~ok ~seeded ~replayed =
  put t k_rend (if ok then 1 else 0) (if seeded then 1 else 0) replayed 0 "" ""

let record_ckpt_cut t = put t k_cut 0 0 0 0 "" ""
let record_ckpt_fold t ~ops = put t k_fold ops 0 0 0 "" ""
let record_ckpt_poison t = put t k_poison 0 0 0 0 "" ""
let record_bug_fired t ~id = put t k_bug 0 0 0 0 id ""

let record_session t action ~session =
  let kind =
    match action with `Attach -> k_attach | `Evict -> k_evict | `Retry -> k_retry | `Detach -> k_detach
  in
  put t kind 0 0 session 0 "" ""

let record_degraded t ~reason = put t k_degraded 0 0 0 0 reason ""
let record_note t msg = put t k_note 0 0 0 0 msg ""

(* ---- read side: materialize typed views ---- *)

let body_at t i =
  let a = t.e_a.(i)
  and b = t.e_b.(i)
  and c = t.e_c.(i)
  and d = t.e_d.(i)
  and s1 = t.e_s1.(i)
  and s2 = t.e_s2.(i) in
  let kind = t.e_kind.(i) in
  if kind = k_op then Op_done { kind = s1; errno = s2; lat_ns = a; corr = b; session = c }
  else if kind = k_slow then
    Slow_op { kind = s1; lat_ns = a; threshold_ns = d; corr = b; session = c }
  else if kind = k_rbegin then Recovery_begin { trigger = s1 }
  else if kind = k_rphase then Recovery_phase { phase = s1; ns = a }
  else if kind = k_rend then Recovery_end { ok = a = 1; seeded = b = 1; replayed = c }
  else if kind = k_cut then Ckpt_cut
  else if kind = k_fold then Ckpt_fold { ops = a }
  else if kind = k_poison then Ckpt_poison
  else if kind = k_bug then Bug_fired { id = s1 }
  else if kind = k_attach then Session_event { action = `Attach; session = c }
  else if kind = k_evict then Session_event { action = `Evict; session = c }
  else if kind = k_retry then Session_event { action = `Retry; session = c }
  else if kind = k_detach then Session_event { action = `Detach; session = c }
  else if kind = k_degraded then Degradation { reason = s1 }
  else Note { msg = s1 }

let tail ?n t =
  let total = total t in
  let retained = min total (t.mask + 1) in
  let want = match n with Some n -> min (max 0 n) retained | None -> retained in
  let first = total - want in
  List.init want (fun j ->
      let seq = first + j in
      let i = seq land t.mask in
      { seq; ts_ns = t.e_ts.(i); body = body_at t i })

let body_kind_string = function
  | Op_done _ -> "op"
  | Slow_op _ -> "slow-op"
  | Recovery_begin _ -> "recovery-begin"
  | Recovery_phase _ -> "recovery-phase"
  | Recovery_end _ -> "recovery-end"
  | Ckpt_cut -> "ckpt-cut"
  | Ckpt_fold _ -> "ckpt-fold"
  | Ckpt_poison -> "ckpt-poison"
  | Bug_fired _ -> "bug-fired"
  | Session_event { action = `Attach; _ } -> "session-attach"
  | Session_event { action = `Evict; _ } -> "session-evict"
  | Session_event { action = `Retry; _ } -> "session-retry"
  | Session_event { action = `Detach; _ } -> "session-detach"
  | Degradation _ -> "degraded"
  | Note _ -> "note"

let event_json ev =
  let base = [ ("seq", Jsonx.Int ev.seq); ("ts_ns", Jsonx.Int ev.ts_ns) ] in
  let kind = ("kind", Jsonx.Str (body_kind_string ev.body)) in
  let rest =
    match ev.body with
    | Op_done { kind; errno; lat_ns; corr; session } ->
        [
          ("op", Jsonx.Str kind);
          ("errno", if errno = "" then Jsonx.Null else Jsonx.Str errno);
          ("lat_ns", Jsonx.Int lat_ns);
          ("corr", Jsonx.Int corr);
          ("session", Jsonx.Int session);
        ]
    | Slow_op { kind; lat_ns; threshold_ns; corr; session } ->
        [
          ("op", Jsonx.Str kind);
          ("lat_ns", Jsonx.Int lat_ns);
          ("threshold_ns", Jsonx.Int threshold_ns);
          ("corr", Jsonx.Int corr);
          ("session", Jsonx.Int session);
        ]
    | Recovery_begin { trigger } -> [ ("trigger", Jsonx.Str trigger) ]
    | Recovery_phase { phase; ns } -> [ ("phase", Jsonx.Str phase); ("ns", Jsonx.Int ns) ]
    | Recovery_end { ok; seeded; replayed } ->
        [ ("ok", Jsonx.Bool ok); ("seeded", Jsonx.Bool seeded); ("replayed", Jsonx.Int replayed) ]
    | Ckpt_cut | Ckpt_poison -> []
    | Ckpt_fold { ops } -> [ ("ops", Jsonx.Int ops) ]
    | Bug_fired { id } -> [ ("bug", Jsonx.Str id) ]
    | Session_event { session; _ } -> [ ("session", Jsonx.Int session) ]
    | Degradation { reason } -> [ ("reason", Jsonx.Str reason) ]
    | Note { msg } -> [ ("msg", Jsonx.Str msg) ]
  in
  Jsonx.Obj ((base @ [ kind ]) @ rest)

let to_json ?n t = Jsonx.List (List.map event_json (tail ?n t))

let pp_event ppf ev =
  let j = event_json ev in
  Format.pp_print_string ppf (Jsonx.to_string j)
