(** Minimal JSON AST, printer and parser.

    The toolchain ships no JSON library; this is the shared grammar for
    black-box bundles ({!Blackbox}), metric snapshots
    ({!Metrics.to_json}) and the offline tools.  The printer emits
    canonical JSON (object order preserved, floats round-trippable); the
    parser is a total recursive-descent reader used by the bundle
    checker and the round-trip tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** [pretty] uses two-space indentation; default is compact. NaN and
    infinities print as [null] (JSON has no spelling for them). *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

exception Parse_error of string

val parse_exn : string -> t
val parse : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** [Int] widens to float. *)

val to_str_opt : t -> string option
val to_list_opt : t -> t list option
val to_obj_opt : t -> (string * t) list option
