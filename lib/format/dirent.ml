open Rae_util

type entry = { ino : int; kind_code : int; name : string }

type error =
  | Misaligned of { offset : int }
  | Bad_rec_len of { offset : int; rec_len : int }
  | Overrun of { offset : int; rec_len : int }
  | Bad_name_len of { offset : int; name_len : int; rec_len : int }
  | Bad_name of { offset : int; name : string }
  | Bad_kind_code of { offset : int; code : int }

let error_to_string = function
  | Misaligned { offset } -> Printf.sprintf "misaligned record at %d" offset
  | Bad_rec_len { offset; rec_len } -> Printf.sprintf "bad rec_len %d at %d" rec_len offset
  | Overrun { offset; rec_len } ->
      Printf.sprintf "record at %d with rec_len %d overruns the block" offset rec_len
  | Bad_name_len { offset; name_len; rec_len } ->
      Printf.sprintf "name_len %d exceeds rec_len %d at %d" name_len rec_len offset
  | Bad_name { offset; name } -> Printf.sprintf "invalid name %S at %d" name offset
  | Bad_kind_code { offset; code } -> Printf.sprintf "invalid kind code %d at %d" code offset

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let header_size = 8
let pad4 n = (n + 3) land lnot 3
let record_size name = header_size + pad4 (String.length name)

let empty_block () =
  let b = Bytes.make Layout.block_size '\000' in
  (* ino = 0, rec_len = block_size, name_len = 0, kind = 0 *)
  Codec.set_u16 b 4 Layout.block_size;
  b

let read_header b off =
  (Codec.get_u32_int b off, Codec.get_u16 b (off + 4), Codec.get_u8 b (off + 6), Codec.get_u8 b (off + 7))

let name_ok name =
  name = "." || name = ".."
  || (name <> "" && not (String.exists (fun c -> c = '/' || c = '\000') name))

(* Validated record walk: calls [f acc ~off ~ino ~rec_len ~name ~kind] for
   every record (live and free), or returns the first structural error. *)
let walk b ~init ~f =
  let len = Bytes.length b in
  let rec go off acc =
    if off = len then Ok acc
    else if off > len || off land 3 <> 0 then Error (Misaligned { offset = off })
    else if off + header_size > len then Error (Overrun { offset = off; rec_len = header_size })
    else
      let ino, rec_len, name_len, kind_code = read_header b off in
      if rec_len < header_size || rec_len land 3 <> 0 then
        Error (Bad_rec_len { offset = off; rec_len })
      else if off + rec_len > len then Error (Overrun { offset = off; rec_len })
      else if ino <> 0 && header_size + name_len > rec_len then
        Error (Bad_name_len { offset = off; name_len; rec_len })
      else
        let name = if ino = 0 then "" else Codec.get_string b ~pos:(off + header_size) ~len:name_len in
        if ino <> 0 && not (name_ok name) then Error (Bad_name { offset = off; name })
        else if ino <> 0 && Rae_vfs.Types.kind_of_code kind_code = None then
          Error (Bad_kind_code { offset = off; code = kind_code })
        else go (off + rec_len) (f acc ~off ~ino ~rec_len ~name ~kind_code)
  in
  go 0 init

let fold b ~init ~f =
  walk b ~init ~f:(fun acc ~off:_ ~ino ~rec_len:_ ~name ~kind_code ->
      if ino = 0 then acc else f acc { ino; kind_code; name })

let list b = Result.map List.rev (fold b ~init:[] ~f:(fun acc e -> e :: acc))

let list_nocheck b =
  let len = Bytes.length b in
  let rec go off acc =
    if off + header_size > len then List.rev acc
    else
      let ino, rec_len, name_len, kind_code = read_header b off in
      if rec_len < header_size || off + rec_len > len then List.rev acc
      else
        let acc =
          if ino = 0 || header_size + name_len > rec_len then acc
          else
            { ino; kind_code; name = Codec.get_string b ~pos:(off + header_size) ~len:name_len }
            :: acc
        in
        go (off + rec_len) acc
  in
  go 0 []

let find b name =
  match list b with
  | Error e -> Some (Error e)
  | Ok entries -> (
      match List.find_opt (fun e -> String.equal e.name name) entries with
      | Some e -> Some (Ok e)
      | None -> None)

let find_nocheck b name =
  List.find_opt (fun e -> String.equal e.name name) (list_nocheck b)

let write_record b ~off ~ino ~rec_len ~name ~kind_code =
  Codec.set_u32_int b off ino;
  Codec.set_u16 b (off + 4) rec_len;
  Codec.set_u8 b (off + 6) (String.length name);
  Codec.set_u8 b (off + 7) kind_code;
  Codec.set_string b ~pos:(off + header_size) name;
  (* Zero the padding after the name for deterministic images. *)
  let name_end = off + header_size + String.length name in
  let pad_end = off + min rec_len (header_size + pad4 (String.length name)) in
  if pad_end > name_end then Bytes.fill b name_end (pad_end - name_end) '\000'

(* The mutators below walk headers only — no name extraction, no name or
   kind validation.  They operate on blocks that were validated when first
   read from the medium ([validate]/[list] on the read path) or freshly
   created by [empty_block]; extracting a heap string per record just to
   measure or compare it made every insert into a fullish block cost tens
   of microseconds.  On a structurally bad block (bad rec_len) they stop
   and return [false], same as the validated walk did. *)

(* In-place comparison of [name] against the name stored at [off] (whose
   name_len already matched [String.length name]). *)
let name_at_equals b off name =
  let n = String.length name in
  let rec eq i =
    i = n || (Bytes.unsafe_get b (off + header_size + i) = String.unsafe_get name i && eq (i + 1))
  in
  eq 0

let rec_len_ok ~len off rec_len =
  rec_len >= header_size && rec_len land 3 = 0 && off + rec_len <= len

let insert b ~name ~ino ~kind_code =
  let len = Bytes.length b in
  let needed = record_size name in
  (* Walk records looking for a free record big enough, or a live record
     whose slack after its own name can hold the new record. *)
  let rec go off =
    if off + header_size > len then false
    else
      let rec_len = Codec.get_u16 b (off + 4) in
      if not (rec_len_ok ~len off rec_len) then false
      else
        let rec_ino = Codec.get_u32_int b off in
        if rec_ino = 0 then
          if rec_len >= needed then begin
            write_record b ~off ~ino ~rec_len ~name ~kind_code;
            true
          end
          else go (off + rec_len)
        else begin
          let used = header_size + pad4 (Codec.get_u8 b (off + 6)) in
          if rec_len - used >= needed then begin
            (* Shrink the live record to its needed size, put the new
               record in the freed tail. *)
            Codec.set_u16 b (off + 4) used;
            write_record b ~off:(off + used) ~ino ~rec_len:(rec_len - used) ~name ~kind_code;
            true
          end
          else go (off + rec_len)
        end
  in
  go 0

let remove b name =
  let len = Bytes.length b in
  let nlen = String.length name in
  let rec go off prev =
    if off + header_size > len then false
    else
      let rec_len = Codec.get_u16 b (off + 4) in
      if not (rec_len_ok ~len off rec_len) then false
      else
        let rec_ino = Codec.get_u32_int b off in
        if rec_ino <> 0 && Codec.get_u8 b (off + 6) = nlen && name_at_equals b off name then begin
          (match prev with
          | Some (prev_off, prev_rec_len) when prev_off + prev_rec_len = off ->
              (* Merge into the predecessor, ext2-style. *)
              Codec.set_u16 b (prev_off + 4) (prev_rec_len + rec_len)
          | Some _ | None ->
              (* First record of the block: mark free. *)
              Codec.set_u32_int b off 0;
              Codec.set_u8 b (off + 6) 0;
              Codec.set_u8 b (off + 7) 0);
          true
        end
        else go (off + rec_len) (Some (off, rec_len))
  in
  go 0 None

let set_entry_ino b name ino =
  let len = Bytes.length b in
  let nlen = String.length name in
  let rec go off =
    if off + header_size > len then false
    else
      let rec_len = Codec.get_u16 b (off + 4) in
      if not (rec_len_ok ~len off rec_len) then false
      else if
        Codec.get_u32_int b off <> 0
        && Codec.get_u8 b (off + 6) = nlen
        && name_at_equals b off name
      then begin
        Codec.set_u32_int b off ino;
        true
      end
      else go (off + rec_len)
  in
  go 0

let count b =
  match fold b ~init:0 ~f:(fun n _ -> n + 1) with Ok n -> n | Error _ -> 0

let free_bytes b =
  let r =
    walk b ~init:0 ~f:(fun acc ~off:_ ~ino ~rec_len ~name ~kind_code:_ ->
        if ino = 0 then acc + rec_len else acc + (rec_len - record_size name))
  in
  match r with Ok n -> n | Error _ -> 0

let validate b = Result.map (fun _ -> ()) (walk b ~init:() ~f:(fun () ~off:_ ~ino:_ ~rec_len:_ ~name:_ ~kind_code:_ -> ()))
