(** Allocation bitmaps (inode and block), ext-style: one bit per object,
    packed little-endian within bytes, spanning one or more disk blocks.

    The in-memory form is loaded from the bitmap region at mount and written
    back through the journal on allocation changes.  The shadow rebuilds its
    own copy from disk during recovery and *validates* the base's allocation
    decisions against it (constrained mode, paper §3.2). *)

type t

val create : nbits:int -> t
(** All bits clear. *)

val nbits : t -> int
val copy : t -> t
val test : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val set_result : t -> int -> (unit, string) result
(** Like {!set} but reports double-allocation instead of silently setting —
    the shadow's invariant-checking allocator uses this. *)

val clear_result : t -> int -> (unit, string) result

val find_free : t -> from:int -> int option
(** First clear bit at index >= [from] (wrapping is the caller's policy).
    Word-level scan: full bytes/words are skipped without touching
    individual bits. *)

val find_free_next : t -> lo:int -> int option
(** Next-fit allocation probe: scan from the bitmap's rotor (where the last
    successful [find_free_next] left off), wrapping once back to [lo].
    Returns a free bit iff one exists in [[lo], [nbits]) and advances the
    rotor past it.  The rotor is in-memory only — it never affects the
    serialised form, and a freshly created or parsed bitmap starts at 0,
    making allocation sequences deterministic from any mount. *)

val cursor : t -> int
(** The rotor's current position (for tests and introspection). *)

val reset_cursor : t -> unit

val count_set : t -> int
(** O(1): the population count is maintained across {!set}/{!clear}. *)

val count_free : t -> int
(** O(1); see {!count_set}. *)

val to_blocks : t -> block_size:int -> bytes list
(** Serialise; the tail of the last block (bits beyond [nbits]) is all-ones,
    matching ext2's convention that out-of-range bits read as allocated. *)

val of_blocks : bytes list -> nbits:int -> (t, string) result
(** Parse; fails if the blocks cannot hold [nbits] or padding bits are not
    all-ones (a corruption signal fsck reports). *)

val of_blocks_lenient : bytes list -> nbits:int -> (t, string) result
(** Like {!of_blocks} but ignores padding bits — the base filesystem's mount
    path, which (deliberately, per the paper's contrast) checks less. *)

val equal : t -> t -> bool
val iter_set : t -> (int -> unit) -> unit
val pp : Format.formatter -> t -> unit
