type t = {
  bits : Bytes.t;
  nbits : int;
  (* Maintained population count: [count_set]/[count_free] are O(1) and the
     superblock cross-checks stop re-counting the whole bitmap. *)
  mutable nset : int;
  (* Next-fit rotor: one past the most recent [find_free_next] hit.  Purely
     an in-memory search accelerator — never serialized. *)
  mutable cursor : int;
}

let create ~nbits =
  if nbits <= 0 then invalid_arg "Bitmap.create: nbits must be positive";
  { bits = Bytes.make ((nbits + 7) / 8) '\000'; nbits; nset = 0; cursor = 0 }

let nbits t = t.nbits
let copy t = { t with bits = Bytes.copy t.bits }

let check t i what =
  if i < 0 || i >= t.nbits then
    invalid_arg (Printf.sprintf "Bitmap.%s: index %d outside [0,%d)" what i t.nbits)

let test t i =
  check t i "test";
  Char.code (Bytes.get t.bits (i / 8)) land (1 lsl (i mod 8)) <> 0

let set t i =
  check t i "set";
  let byte = i / 8 in
  let v = Char.code (Bytes.get t.bits byte) in
  let mask = 1 lsl (i mod 8) in
  if v land mask = 0 then begin
    Bytes.set t.bits byte (Char.chr (v lor mask));
    t.nset <- t.nset + 1
  end

let clear t i =
  check t i "clear";
  let byte = i / 8 in
  let v = Char.code (Bytes.get t.bits byte) in
  let mask = 1 lsl (i mod 8) in
  if v land mask <> 0 then begin
    Bytes.set t.bits byte (Char.chr (v land lnot mask land 0xFF));
    t.nset <- t.nset - 1
  end

let set_result t i =
  if i < 0 || i >= t.nbits then Error (Printf.sprintf "bit %d out of range" i)
  else if test t i then Error (Printf.sprintf "bit %d already set (double allocation)" i)
  else begin
    set t i;
    Ok ()
  end

let clear_result t i =
  if i < 0 || i >= t.nbits then Error (Printf.sprintf "bit %d out of range" i)
  else if not (test t i) then Error (Printf.sprintf "bit %d already clear (double free)" i)
  else begin
    clear t i;
    Ok ()
  end

(* First clear bit in [a, b), or -1.  Word-level scan: bytes that read 0xFF
   are skipped with one compare, and interior runs of full bytes are skipped
   eight at a time through 64-bit loads.  Padding bits past [nbits] are kept
   zero in memory, so a byte straddling the boundary can never read 0xFF by
   accident; the [b] bound still guards the bit-level pick. *)
let scan_range t a b =
  if a >= b then -1
  else begin
    let bits = t.bits in
    let len = Bytes.length bits in
    let first_byte = a lsr 3 and last_byte = (b - 1) lsr 3 in
    let rec pick v base j hi =
      if j >= hi then -1
      else if v land (1 lsl j) = 0 then base + j
      else pick v base (j + 1) hi
    in
    let rec go bi =
      if bi > last_byte then -1
      else
        let v = Char.code (Bytes.unsafe_get bits bi) in
        if v = 0xFF then begin
          let bi = ref (bi + 1) in
          while
            !bi + 8 <= len && !bi + 7 <= last_byte && Int64.equal (Bytes.get_int64_le bits !bi) (-1L)
          do
            bi := !bi + 8
          done;
          go !bi
        end
        else
          let lo = if bi = first_byte then a land 7 else 0 in
          let hi = if bi = last_byte then ((b - 1) land 7) + 1 else 8 in
          let r = pick v (bi lsl 3) lo hi in
          if r >= 0 then r else go (bi + 1)
    in
    go first_byte
  end

let find_free t ~from =
  if from < 0 || from >= t.nbits then None
  else match scan_range t from t.nbits with -1 -> None | i -> Some i

(* Next-fit: resume at the rotor, wrap once back to [lo].  Finds a free bit
   iff one exists in [lo, nbits); amortized O(1) for append-dominated
   allocation patterns where first-fit re-scans the allocated prefix. *)
let find_free_next t ~lo =
  if lo < 0 || lo >= t.nbits then None
  else begin
    let start = if t.cursor < lo || t.cursor >= t.nbits then lo else t.cursor in
    let i =
      match scan_range t start t.nbits with
      | -1 -> scan_range t lo start
      | i -> i
    in
    if i < 0 then None
    else begin
      t.cursor <- i + 1;
      Some i
    end
  end

let cursor t = t.cursor
let reset_cursor t = t.cursor <- 0

let count_set t = t.nset
let count_free t = t.nbits - t.nset

let popcount_bytes bits =
  let popcount_byte c =
    let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
    go (Char.code c) 0
  in
  let total = ref 0 in
  for byte = 0 to Bytes.length bits - 1 do
    total := !total + popcount_byte (Bytes.get bits byte)
  done;
  !total

let to_blocks t ~block_size =
  let nblocks = (Bytes.length t.bits + block_size - 1) / block_size in
  let nblocks = max nblocks 1 in
  let out = List.init nblocks (fun _ -> Bytes.make block_size '\xff') in
  List.iteri
    (fun bi block ->
      let src_off = bi * block_size in
      let len = min block_size (Bytes.length t.bits - src_off) in
      if len > 0 then Bytes.blit t.bits src_off block 0 len)
    out;
  (* Mask padding bits inside the last partially-used byte: in-range bits
     keep their value, out-of-range bits are forced to 1. *)
  let last_byte = (t.nbits - 1) / 8 in
  let used_bits = ((t.nbits - 1) mod 8) + 1 in
  if used_bits < 8 then begin
    let bi = last_byte / block_size and off = last_byte mod block_size in
    match List.nth_opt out bi with
    | None -> ()
    | Some block ->
        let v = Char.code (Bytes.get block off) in
        let mask_high = lnot ((1 lsl used_bits) - 1) land 0xFF in
        Bytes.set block off (Char.chr (v lor mask_high))
  end;
  out

let parse blocks ~nbits ~strict =
  if nbits <= 0 then Error "nbits must be positive"
  else
    let needed_bytes = (nbits + 7) / 8 in
    let total_bytes = List.fold_left (fun acc b -> acc + Bytes.length b) 0 blocks in
    if total_bytes < needed_bytes then
      Error (Printf.sprintf "bitmap blocks hold %d bytes, need %d" total_bytes needed_bytes)
    else begin
      let flat = Bytes.create total_bytes in
      let off = ref 0 in
      List.iter
        (fun b ->
          Bytes.blit b 0 flat !off (Bytes.length b);
          off := !off + Bytes.length b)
        blocks;
      let bits = Bytes.sub flat 0 needed_bytes in
      (* Clear the in-memory padding bits of the final byte. *)
      let used_bits = ((nbits - 1) mod 8) + 1 in
      let padding_ok = ref true in
      if used_bits < 8 then begin
        let v = Char.code (Bytes.get bits (needed_bytes - 1)) in
        let mask_high = lnot ((1 lsl used_bits) - 1) land 0xFF in
        if v land mask_high <> mask_high then padding_ok := false;
        Bytes.set bits (needed_bytes - 1) (Char.chr (v land ((1 lsl used_bits) - 1)))
      end;
      let t = { bits; nbits; nset = popcount_bytes bits; cursor = 0 } in
      (* Bytes past needed_bytes must be all-ones in strict mode. *)
      if strict then begin
        for i = needed_bytes to total_bytes - 1 do
          if Bytes.get flat i <> '\xff' then padding_ok := false
        done;
        if not !padding_ok then Error "bitmap padding bits are not all-ones" else Ok t
      end
      else Ok t
    end

let of_blocks blocks ~nbits = parse blocks ~nbits ~strict:true
let of_blocks_lenient blocks ~nbits = parse blocks ~nbits ~strict:false

let equal a b = a.nbits = b.nbits && Bytes.equal a.bits b.bits

let iter_set t f =
  for i = 0 to t.nbits - 1 do
    if test t i then f i
  done

let pp ppf t =
  Format.fprintf ppf "bitmap<%d bits, %d set>" t.nbits (count_set t)
