(** Global path-component interner.

    Maps path components (and symlink targets, or any other short string)
    to small dense integers so that directory maps can be keyed by [int]
    instead of [string].  The table is append-only and process-global:
    symbols are never recycled, so an id obtained anywhere stays valid for
    the lifetime of the process and equal strings always intern to equal
    ids.  This is what makes it safe to share the table between the spec,
    the shadow and any number of checkpoint copies — an interned directory
    map survives {!Rae_specfs.Spec.copy} verbatim.

    Interning is cheap (one hash lookup) but not free, so read paths that
    merely probe for a name should use {!find}, which never grows the
    table: a lookup of a name nobody ever inserted cannot allocate an id
    (and therefore adversarial lookups cannot balloon the table). *)

val id : string -> int
(** Intern [s], allocating a fresh id on first sight. *)

val find : string -> int option
(** The id of [s] if it was ever interned; never allocates. *)

val name : int -> string
(** The string for an id previously returned by {!id}.
    @raise Invalid_argument on an id this process never allocated. *)

val count : unit -> int
(** Number of symbols interned so far (diagnostics). *)
