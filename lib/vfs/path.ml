type t = string list

type error = Not_absolute | Empty_component | Bad_component of string | Too_long of string

let pp_error ppf = function
  | Not_absolute -> Format.pp_print_string ppf "path is not absolute"
  | Empty_component -> Format.pp_print_string ppf "empty path component"
  | Bad_component s -> Format.fprintf ppf "bad path component %S" s
  | Too_long s -> Format.fprintf ppf "path component too long: %S" s

let component_ok name =
  name <> "" && name <> "." && name <> ".."
  && String.length name <= Types.max_name_len
  && not (String.exists (fun c -> c = '/' || c = '\000') name)

let parse s =
  if String.length s = 0 || s.[0] <> '/' then Error Not_absolute
  else
    let parts = String.split_on_char '/' s in
    (* First element is "" from the leading slash. *)
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | "" :: rest ->
          (* Collapse duplicate and trailing slashes. *)
          if rest = [] || List.for_all (( = ) "") rest then Ok (List.rev acc)
          else go acc rest
      | "." :: rest -> go acc rest
      | ".." :: rest -> go (match acc with [] -> [] | _ :: tl -> tl) rest
      | name :: rest ->
          if String.length name > Types.max_name_len then Error (Too_long name)
          else if component_ok name then go (name :: acc) rest
          else Error (Bad_component name)
    in
    (* split_on_char never returns []; the leading "" comes from the
       initial slash checked above. *)
    match parts with [] -> Ok [] | _leading :: rest -> go [] rest

let parse_exn s =
  match parse s with
  | Ok p -> p
  | Error e -> invalid_arg (Format.asprintf "Path.parse_exn %S: %a" s pp_error e)

let to_string = function [] -> "/" | parts -> "/" ^ String.concat "/" parts
let pp ppf p = Format.pp_print_string ppf (to_string p)
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b

let split_last p =
  match List.rev p with [] -> None | last :: rev_parent -> Some (List.rev rev_parent, last)

let append p name = p @ [ name ]

let rec is_prefix p ~of_ =
  match (p, of_) with
  | [], _ -> true
  | _, [] -> false
  | a :: p', b :: q' -> String.equal a b && is_prefix p' ~of_:q'

let depth = List.length
