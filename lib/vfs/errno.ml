type t =
  | ENOENT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | EBADF
  | EINVAL
  | ENOSPC
  | EFBIG
  | ENAMETOOLONG
  | EMFILE
  | EROFS
  | EIO
  | EACCES
  | ELOOP
  | EXDEV
  | EAGAIN
  | EPROTO
  | ENOSYS

let equal = ( = )
let compare = Stdlib.compare

let to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EBADF -> "EBADF"
  | EINVAL -> "EINVAL"
  | ENOSPC -> "ENOSPC"
  | EFBIG -> "EFBIG"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | EMFILE -> "EMFILE"
  | EROFS -> "EROFS"
  | EIO -> "EIO"
  | EACCES -> "EACCES"
  | ELOOP -> "ELOOP"
  | EXDEV -> "EXDEV"
  | EAGAIN -> "EAGAIN"
  | EPROTO -> "EPROTO"
  | ENOSYS -> "ENOSYS"

let pp ppf e = Format.pp_print_string ppf (to_string e)

let all =
  [
    ENOENT;
    EEXIST;
    ENOTDIR;
    EISDIR;
    ENOTEMPTY;
    EBADF;
    EINVAL;
    ENOSPC;
    EFBIG;
    ENAMETOOLONG;
    EMFILE;
    EROFS;
    EIO;
    EACCES;
    ELOOP;
    EXDEV;
    EAGAIN;
    EPROTO;
    ENOSYS;
  ]

(* Wire codes are assigned once and frozen: new constructors take fresh
   codes, old codes are never reused, so peers speaking different protocol
   versions still agree on the codes both sides know. *)
let to_wire = function
  | ENOENT -> 1
  | EEXIST -> 2
  | ENOTDIR -> 3
  | EISDIR -> 4
  | ENOTEMPTY -> 5
  | EBADF -> 6
  | EINVAL -> 7
  | ENOSPC -> 8
  | EFBIG -> 9
  | ENAMETOOLONG -> 10
  | EMFILE -> 11
  | EROFS -> 12
  | EIO -> 13
  | EACCES -> 14
  | ELOOP -> 15
  | EXDEV -> 16
  | EAGAIN -> 17
  | EPROTO -> 18
  | ENOSYS -> 19

let of_wire = function
  | 1 -> ENOENT
  | 2 -> EEXIST
  | 3 -> ENOTDIR
  | 4 -> EISDIR
  | 5 -> ENOTEMPTY
  | 6 -> EBADF
  | 7 -> EINVAL
  | 8 -> ENOSPC
  | 9 -> EFBIG
  | 10 -> ENAMETOOLONG
  | 11 -> EMFILE
  | 12 -> EROFS
  | 13 -> EIO
  | 14 -> EACCES
  | 15 -> ELOOP
  | 16 -> EXDEV
  | 17 -> EAGAIN
  | 18 -> EPROTO
  | 19 -> ENOSYS
  | _ -> EIO

type 'a result = ('a, t) Stdlib.result
