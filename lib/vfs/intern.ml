(* Append-only global symbol table.  [ids] maps string -> id; [names] is
   the inverse, a growable array indexed by id.  Ids are dense from 0.

   The table is process-global shared mutable state: every shadow (and a
   parallel constrained replay would mean several at once) interns path
   components through it, so the whole lookup-or-insert step runs under
   one mutex.  The fast path is a single Hashtbl probe; contention is
   not a concern at the call rates involved. *)

let lock = Mutex.create ()
let ids : (string, int) Hashtbl.t = Hashtbl.create 256
let names : string array ref = ref (Array.make 256 "")
let next = ref 0

let id s =
  Mutex.protect lock @@ fun () ->
  match Hashtbl.find_opt ids s with
  | Some i -> i
  | None ->
      let i = !next in
      incr next;
      let cap = Array.length !names in
      if i >= cap then begin
        let bigger = Array.make (2 * cap) "" in
        Array.blit !names 0 bigger 0 cap;
        names := bigger
      end;
      !names.(i) <- s;
      Hashtbl.replace ids s i;
      i

let find s = Mutex.protect lock (fun () -> Hashtbl.find_opt ids s)

let name i =
  Mutex.protect lock @@ fun () ->
  if i < 0 || i >= !next then
    invalid_arg (Printf.sprintf "Intern.name: unknown symbol id %d" i)
  else !names.(i)

let count () = Mutex.protect lock (fun () -> !next)
