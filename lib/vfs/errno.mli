(** POSIX-style error codes returned at the filesystem API boundary.

    These are the *application-visible* errors: a base filesystem returning
    one of these has behaved legally (the operation failed per POSIX
    semantics).  Runtime errors — BUG/WARN paths, panics, invariant
    violations — are a separate channel (see {!Rae_basefs.Detector}) and are
    what triggers Robust Alternative Execution. *)

type t =
  | ENOENT  (** no such file or directory *)
  | EEXIST  (** file exists *)
  | ENOTDIR  (** a path component is not a directory *)
  | EISDIR  (** target is a directory *)
  | ENOTEMPTY  (** directory not empty *)
  | EBADF  (** bad file descriptor *)
  | EINVAL  (** invalid argument *)
  | ENOSPC  (** no space left on device *)
  | EFBIG  (** file too large *)
  | ENAMETOOLONG  (** path component too long *)
  | EMFILE  (** too many open files *)
  | EROFS  (** read-only filesystem *)
  | EIO  (** input/output error *)
  | EACCES  (** permission denied *)
  | ELOOP  (** too many levels of symbolic links *)
  | EXDEV  (** cross-device link (unused rename corner) *)
  | EAGAIN  (** resource temporarily unavailable (serving-layer backpressure) *)
  | EPROTO  (** protocol error at a serving boundary *)
  | ENOSYS  (** operation not supported by this implementation *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val all : t list
(** Every constructor, for exhaustive test generators. *)

val to_wire : t -> int
(** Stable small-integer code for serialization (wire protocol, traces).
    Injective over {!all}; codes fit one byte and never change meaning
    across protocol versions. *)

val of_wire : int -> t
(** Total inverse of {!to_wire}.  Codes that no constructor claims decode
    to [EIO] — a malformed or future-version error code must surface as an
    I/O error, never as an exception. *)

type 'a result = ('a, t) Stdlib.result
(** Shorthand used across every filesystem signature. *)
