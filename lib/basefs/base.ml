open Rae_vfs
open Rae_format
module Device = Rae_block.Device
module Blkmq = Rae_block.Blkmq
module Journal = Rae_journal.Journal

type config = {
  commit_interval : int;
  cache_policy : [ `Lru | `Two_q ];
  bcache_capacity : int;
  icache_capacity : int;
  dcache_capacity : int;
  validate_on_commit : bool;
  max_fds : int;
}

let default_config =
  {
    commit_interval = 64;
    cache_policy = `Two_q;
    bcache_capacity = 512;
    icache_capacity = 256;
    dcache_capacity = 1024;
    validate_on_commit = true;
    max_fds = 1024;
  }

module IntKey = struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end

module BL = Rae_cache.Lru.Make (IntKey)
module BQ = Rae_cache.Two_q.Make (IntKey)
module IC = Rae_cache.Lru.Make (IntKey)

(* The block cache behind either replacement policy (ablation E-cache). *)
type bcache = Lru_c of bytes BL.t | Twoq_c of bytes BQ.t

let bc_create cfg =
  match cfg.cache_policy with
  | `Lru -> Lru_c (BL.create ~capacity:cfg.bcache_capacity ())
  | `Two_q -> Twoq_c (BQ.create ~capacity:cfg.bcache_capacity ())

let bc_find c k = match c with Lru_c c -> BL.find c k | Twoq_c c -> BQ.find c k
let bc_peek c k = match c with Lru_c c -> BL.peek c k | Twoq_c c -> BQ.peek c k
let bc_put c k v = match c with Lru_c c -> BL.put c k v | Twoq_c c -> BQ.put c k v
let bc_pin c k = match c with Lru_c c -> BL.pin c k | Twoq_c c -> BQ.pin c k
let bc_unpin c k = match c with Lru_c c -> BL.unpin c k | Twoq_c c -> BQ.unpin c k
let bc_clear c = match c with Lru_c c -> BL.clear c | Twoq_c c -> BQ.clear c
let bc_stats c = match c with Lru_c c -> BL.stats c | Twoq_c c -> BQ.stats c
let bc_reset_stats c = match c with Lru_c c -> BL.reset_stats c | Twoq_c c -> BQ.reset_stats c

type meta_kind = K_sb | K_bitmap | K_itable | K_dir | K_indirect

type fdinfo = { fino : Types.ino; fflags : Types.open_flags }

type stats = {
  ops_executed : int;
  commits : int;
  validations : int;
  bugs_fired : int;
}

type t = {
  dev : Device.t;
  cfg : config;
  geo : Layout.geometry;
  mutable mq : Blkmq.t;
  mutable journal : Journal.t;
  mutable sb : Superblock.t;
  mutable ibm : Bitmap.t;
  mutable bbm : Bitmap.t;
  bcache : bcache;
  icache : Inode.t IC.t;
  dcache : Rae_cache.Dentry.t;
  fds : (int, fdinfo) Hashtbl.t;
  orphans : (int, unit) Hashtbl.t;
  mutable time : int64;
  mutable txn : Journal.txn;
  txn_kinds : (int, meta_kind) Hashtbl.t;
  dirty_data : (int, unit) Hashtbl.t;
  det : Detector.t;
  bug_reg : Bug_registry.t;
  mutable ops_since_commit : int;
  mutable s_ops : int;
  mutable s_commits : int;
  mutable s_validations : int;
  mutable commit_hooks : (commit_seq:int64 -> unit) list;
  mutable tracer : Rae_obs.Tracer.t option;
  mutable events : Rae_obs.Events.t option;  (* flight recorder; bug triggers land here *)
  mutable par_pool : Rae_par.Pool.t option;  (* replay destage parallelism; None = sequential *)
}

let dir_kind_code = Types.kind_code Types.Directory

(* ---- lifecycle ---- *)

let min_journal_len = 16

let mkfs dev ~ninodes ?journal_len () =
  match journal_len with
  | Some j when j < min_journal_len ->
      Error
        (Printf.sprintf "journal of %d blocks cannot hold a full transaction (minimum %d)" j
           min_journal_len)
  | Some _ | None -> (
  match Mkfs.format dev ~ninodes ?journal_len () with
  | Error msg -> Error msg
  | Ok sb ->
      Journal.format dev sb.Superblock.geometry;
      Ok ())

let mount ?(config = default_config) ?(bugs = Bug_registry.none) ?pool dev =
  match Superblock.decode (Device.read dev 0) with
  | Error e -> Error ("superblock: " ^ Superblock.error_to_string e)
  | exception Rae_util.Codec.Decode_error msg -> Error ("superblock: " ^ msg)
  | Ok sb0 -> (
      let geo = sb0.Superblock.geometry in
      match Journal.replay ?pool dev geo with
      | Error msg -> Error ("journal replay: " ^ msg)
      | Ok _replayed -> (
          (* Re-read post-replay state. *)
          match Superblock.decode (Device.read dev 0) with
          | Error e -> Error ("superblock after replay: " ^ Superblock.error_to_string e)
          | Ok sb -> (
              let read_region start len = List.init len (fun i -> Device.read dev (start + i)) in
              let ibm =
                Bitmap.of_blocks_lenient
                  (read_region geo.Layout.inode_bitmap_start geo.Layout.inode_bitmap_len)
                  ~nbits:(geo.Layout.ninodes + 1)
              in
              let bbm =
                Bitmap.of_blocks_lenient
                  (read_region geo.Layout.block_bitmap_start geo.Layout.block_bitmap_len)
                  ~nbits:geo.Layout.nblocks
              in
              match (ibm, bbm) with
              | Error msg, _ | _, Error msg -> Error ("bitmaps: " ^ msg)
              | Ok ibm, Ok bbm -> (
                  match Journal.attach dev geo with
                  | Error msg -> Error ("journal: " ^ msg)
                  | Ok journal ->
                      let t =
                        {
                          dev;
                          cfg = config;
                          geo;
                          mq = Blkmq.create dev;
                          journal;
                          sb = { sb with Superblock.mount_count = sb.Superblock.mount_count + 1 };
                          ibm;
                          bbm;
                          bcache = bc_create config;
                          icache = IC.create ~capacity:config.icache_capacity ();
                          dcache = Rae_cache.Dentry.create ~capacity:config.dcache_capacity;
                          fds = Hashtbl.create 64;
                          orphans = Hashtbl.create 16;
                          time = sb.Superblock.fs_time;
                          txn = Journal.begin_txn journal;
                          txn_kinds = Hashtbl.create 32;
                          dirty_data = Hashtbl.create 32;
                          det = Detector.create ();
                          bug_reg = bugs;
                          ops_since_commit = 0;
                          s_ops = 0;
                          s_commits = 0;
                          s_validations = 0;
                          commit_hooks = [];
                          tracer = None;
                          events = None;
                          par_pool = pool;
                        }
                      in
                      Ok t))))

(* ---- block IO through the cache + blk-mq ---- *)

let bget t blk =
  match bc_find t.bcache blk with
  | Some b -> b
  | None ->
      let req = Blkmq.submit_read t.mq blk in
      let data = match Blkmq.wait t.mq req with Some d -> d | None -> assert false in
      bc_put t.bcache blk data;
      data

(* Install a metadata block: cached (pinned until commit) and journalled. *)
let bput_meta t blk data ~kind =
  bc_put t.bcache blk data;
  bc_pin t.bcache blk;
  Hashtbl.replace t.txn_kinds blk kind;
  Journal.txn_write t.txn blk data

(* Install a data block: cached (pinned) and queued for the pre-commit
   ordered flush. *)
let bput_data t blk data =
  bc_put t.bcache blk data;
  bc_pin t.bcache blk;
  Hashtbl.replace t.dirty_data blk ()

let flush_sb t =
  let sb =
    {
      t.sb with
      Superblock.fs_time = t.time;
      generation = Int64.add t.sb.Superblock.generation 1L;
      state = Superblock.Dirty;
    }
  in
  t.sb <- sb;
  bput_meta t 0 (Superblock.encode sb) ~kind:K_sb

let flush_bitmap_bit t which bit =
  let bm, start =
    match which with
    | `Inode -> (t.ibm, t.geo.Layout.inode_bitmap_start)
    | `Block -> (t.bbm, t.geo.Layout.block_bitmap_start)
  in
  let blocks = Bitmap.to_blocks bm ~block_size:Layout.block_size in
  let index = bit / Layout.bits_per_block in
  match List.nth_opt blocks index with
  | Some b -> bput_meta t (start + index) b ~kind:K_bitmap
  | None -> Detector.bug_fail ~bug:"bitmap-io" "bitmap block %d out of range" index

(* ---- validation at the commit barrier (Recon-style) ---- *)

let validate_txn t =
  t.s_validations <- t.s_validations + 1;
  List.iter
    (fun (blk, data) ->
      match Hashtbl.find_opt t.txn_kinds blk with
      | None -> ()
      | Some K_sb -> (
          match Superblock.decode data with
          | Error e ->
              Detector.validation_fail ~context:"superblock" "%s" (Superblock.error_to_string e)
          | Ok sb ->
              if sb.Superblock.free_inodes <> Bitmap.count_free t.ibm then
                Detector.validation_fail ~context:"superblock"
                  "free_inodes %d disagrees with inode bitmap (%d)" sb.Superblock.free_inodes
                  (Bitmap.count_free t.ibm);
              if sb.Superblock.free_blocks <> Bitmap.count_free t.bbm then
                Detector.validation_fail ~context:"superblock"
                  "free_blocks %d disagrees with block bitmap (%d)" sb.Superblock.free_blocks
                  (Bitmap.count_free t.bbm))
      | Some K_dir -> (
          match Dirent.validate data with
          | Ok () -> ()
          | Error e ->
              Detector.validation_fail ~context:"directory block" "block %d: %s" blk
                (Dirent.error_to_string e))
      | Some K_itable ->
          let base_ino =
            ((blk - t.geo.Layout.inode_table_start) * Layout.inodes_per_block) + 1
          in
          for slot = 0 to Layout.inodes_per_block - 1 do
            let pos = slot * Layout.inode_size in
            if not (Inode.is_free_slot data ~pos) then
              match Inode.decode data ~pos ~ino:(base_ino + slot) with
              | Ok _ -> ()
              | Error e ->
                  Detector.validation_fail ~context:"inode table" "inode %d: %s" (base_ino + slot)
                    (Inode.error_to_string e)
          done
      | Some K_indirect ->
          for i = 0 to Layout.pointers_per_block - 1 do
            let p = Rae_util.Codec.get_u32_int data (4 * i) in
            if p <> 0 && not (Reader.valid_data_block t.geo p) then
              Detector.validation_fail ~context:"indirect block" "block %d entry %d -> %d" blk i p
          done
      | Some K_bitmap -> ())
    (Journal.txn_writes t.txn)

let commit_work t =
  begin
    if t.cfg.validate_on_commit then validate_txn t;
    (* Ordered mode: data reaches the medium before the metadata that
       references it commits. *)
    Hashtbl.iter
      (fun blk () ->
        match bc_peek t.bcache blk with
        | Some data -> ignore (Blkmq.submit_write t.mq blk data)
        | None -> Detector.bug_fail ~bug:"writeback" "dirty data block %d lost from the cache" blk)
      t.dirty_data;
    Blkmq.drain t.mq;
    Hashtbl.iter (fun blk () -> bc_unpin t.bcache blk) t.dirty_data;
    Hashtbl.reset t.dirty_data;
    Journal.commit t.journal t.txn;
    Hashtbl.iter (fun blk _ -> bc_unpin t.bcache blk) t.txn_kinds;
    Hashtbl.reset t.txn_kinds;
    t.txn <- Journal.begin_txn t.journal;
    t.ops_since_commit <- 0;
    t.s_commits <- t.s_commits + 1;
    let commit_seq = Journal.commit_seq t.journal in
    List.iter (fun hook -> hook ~commit_seq) t.commit_hooks
  end

let commit t =
  if Journal.txn_block_count t.txn > 0 || Hashtbl.length t.dirty_data > 0 then
    match t.tracer with
    | Some tr -> Rae_obs.Tracer.with_span tr ~cat:"commit" "base.commit" (fun () -> commit_work t)
    | None -> commit_work t

let on_commit t hook = t.commit_hooks <- t.commit_hooks @ [ hook ]
let ops_since_commit t = t.ops_since_commit

(* ---- inode IO (trusting fast path) ---- *)

let load_inode t ino =
  if ino < 1 || ino > t.geo.Layout.ninodes then
    Detector.bug_fail ~bug:"wild-inode" "inode number %d out of range (oops)" ino;
  match IC.find t.icache ino with
  | Some inode -> inode
  | None ->
      let blk, pos = Layout.inode_location t.geo ino in
      let b = bget t blk in
      if Inode.is_free_slot b ~pos then
        Detector.bug_fail ~bug:"stale-entry" "dangling reference to free inode %d (oops)" ino;
      (match Types.kind_of_code (Rae_util.Codec.get_u16 b pos) with
      | Some _ -> ()
      | None -> Detector.bug_fail ~bug:"crafted-inode" "invalid inode kind for %d (oops)" ino);
      let inode = Inode.decode_nocheck b ~pos in
      IC.put t.icache ino inode;
      inode

let store_inode t ino inode =
  IC.put t.icache ino inode;
  let blk, pos = Layout.inode_location t.geo ino in
  let b = Bytes.copy (bget t blk) in
  Inode.encode inode ~ino b ~pos;
  bput_meta t blk b ~kind:K_itable

let clear_inode_slot t ino =
  IC.remove t.icache ino;
  let blk, pos = Layout.inode_location t.geo ino in
  let b = Bytes.copy (bget t blk) in
  Bytes.fill b pos Layout.inode_size '\000';
  bput_meta t blk b ~kind:K_itable

(* ---- allocation (trusting: plain bit flips, no double-alloc checks) ---- *)

let alloc_ino t =
  match Bitmap.find_free t.ibm ~from:1 with
  | None -> Error Errno.ENOSPC
  | Some ino ->
      Bitmap.set t.ibm ino;
      t.sb <- { t.sb with Superblock.free_inodes = t.sb.Superblock.free_inodes - 1 };
      flush_bitmap_bit t `Inode ino;
      Ok ino

let free_ino t ino =
  Bitmap.clear t.ibm ino;
  t.sb <- { t.sb with Superblock.free_inodes = t.sb.Superblock.free_inodes + 1 };
  clear_inode_slot t ino;
  flush_bitmap_bit t `Inode ino

(* [purpose] decides the dirty route for the freshly zeroed block.  Block
   allocation is next-fit: the bitmap's rotor resumes where the last
   allocation succeeded and wraps once, so an append-heavy workload stops
   re-scanning the allocated prefix.  Inode allocation above stays
   first-fit — inode numbers are application-visible and the spec model
   (and constrained-mode replay) expect lowest-free reuse. *)
let alloc_block t ~purpose =
  match Bitmap.find_free_next t.bbm ~lo:t.geo.Layout.data_start with
  | None -> Error Errno.ENOSPC
  | Some blk ->
      Bitmap.set t.bbm blk;
      t.sb <- { t.sb with Superblock.free_blocks = t.sb.Superblock.free_blocks - 1 };
      flush_bitmap_bit t `Block blk;
      let zero = Bytes.make Layout.block_size '\000' in
      (match purpose with
      | `Data -> bput_data t blk zero
      | `Dir -> bput_meta t blk zero ~kind:K_dir
      | `Indirect -> bput_meta t blk zero ~kind:K_indirect);
      Ok blk

let free_block t blk =
  Bitmap.clear t.bbm blk;
  t.sb <- { t.sb with Superblock.free_blocks = t.sb.Superblock.free_blocks + 1 };
  Journal.txn_revoke t.txn blk;
  flush_bitmap_bit t `Block blk

(* ---- logical -> physical mapping (trusting) ---- *)

let ppb = Layout.pointers_per_block
let ptr_get b i = Rae_util.Codec.get_u32_int b (4 * i)
let ptr_set b i v = Rae_util.Codec.set_u32_int b (4 * i) v

let get_block t inode idx =
  if idx < 0 || idx >= Layout.max_file_blocks then
    Detector.bug_fail ~bug:"wild-index" "logical block %d out of range (oops)" idx;
  if idx < Layout.direct_pointers then inode.Inode.direct.(idx)
  else
    let idx1 = idx - Layout.direct_pointers in
    if idx1 < ppb then
      if inode.Inode.indirect = 0 then 0 else ptr_get (bget t inode.Inode.indirect) idx1
    else
      let idx2 = idx1 - ppb in
      if inode.Inode.double_indirect = 0 then 0
      else
        let l1 = ptr_get (bget t inode.Inode.double_indirect) (idx2 / ppb) in
        if l1 = 0 then 0 else ptr_get (bget t l1) (idx2 mod ppb)

let set_block t inode idx phys =
  if idx < Layout.direct_pointers then begin
    let direct = Array.copy inode.Inode.direct in
    direct.(idx) <- phys;
    Ok { inode with Inode.direct }
  end
  else
    let idx1 = idx - Layout.direct_pointers in
    if idx1 < ppb then
      let ensure =
        if inode.Inode.indirect = 0 then
          Result.map
            (fun b -> (b, { inode with Inode.indirect = b }))
            (alloc_block t ~purpose:`Indirect)
        else Ok (inode.Inode.indirect, inode)
      in
      Result.map
        (fun (iblk, inode) ->
          let b = Bytes.copy (bget t iblk) in
          ptr_set b idx1 phys;
          bput_meta t iblk b ~kind:K_indirect;
          inode)
        ensure
    else
      let idx2 = idx1 - ppb in
      let ensure_d =
        if inode.Inode.double_indirect = 0 then
          Result.map
            (fun b -> (b, { inode with Inode.double_indirect = b }))
            (alloc_block t ~purpose:`Indirect)
        else Ok (inode.Inode.double_indirect, inode)
      in
      Result.bind ensure_d (fun (dblk, inode) ->
          let db = Bytes.copy (bget t dblk) in
          let l1_index = idx2 / ppb in
          let ensure_l1 =
            let l1 = ptr_get db l1_index in
            if l1 = 0 then
              Result.map
                (fun b ->
                  ptr_set db l1_index b;
                  bput_meta t dblk db ~kind:K_indirect;
                  b)
                (alloc_block t ~purpose:`Indirect)
            else Ok l1
          in
          Result.map
            (fun l1blk ->
              let lb = Bytes.copy (bget t l1blk) in
              ptr_set lb (idx2 mod ppb) phys;
              bput_meta t l1blk lb ~kind:K_indirect;
              inode)
            ensure_l1)

let shrink_blocks t inode ~keep =
  let old_n = Inode.blocks_for_size inode.Inode.size in
  for idx = keep to old_n - 1 do
    let phys = get_block t inode idx in
    if phys <> 0 then free_block t phys
  done;
  let direct = Array.copy inode.Inode.direct in
  for idx = keep to Layout.direct_pointers - 1 do
    if idx >= 0 then direct.(idx) <- 0
  done;
  let inode = { inode with Inode.direct } in
  let base1 = Layout.direct_pointers in
  let inode =
    if inode.Inode.indirect = 0 then inode
    else if keep <= base1 then begin
      free_block t inode.Inode.indirect;
      { inode with Inode.indirect = 0 }
    end
    else begin
      let b = Bytes.copy (bget t inode.Inode.indirect) in
      for i = keep - base1 to ppb - 1 do
        ptr_set b i 0
      done;
      bput_meta t inode.Inode.indirect b ~kind:K_indirect;
      inode
    end
  in
  let base2 = Layout.direct_pointers + ppb in
  if inode.Inode.double_indirect = 0 then inode
  else begin
    let db = Bytes.copy (bget t inode.Inode.double_indirect) in
    let keep2 = max 0 (keep - base2) in
    for i = 0 to ppb - 1 do
      let l1 = ptr_get db i in
      if l1 <> 0 then
        if i * ppb >= keep2 then begin
          free_block t l1;
          ptr_set db i 0
        end
        else if (i + 1) * ppb > keep2 then begin
          let lb = Bytes.copy (bget t l1) in
          for j = keep2 - (i * ppb) to ppb - 1 do
            ptr_set lb j 0
          done;
          bput_meta t l1 lb ~kind:K_indirect
        end
    done;
    if keep <= base2 then begin
      free_block t inode.Inode.double_indirect;
      { inode with Inode.double_indirect = 0 }
    end
    else begin
      bput_meta t inode.Inode.double_indirect db ~kind:K_indirect;
      inode
    end
  end

(* ---- file data IO ---- *)

let read_range t inode ~off ~len =
  let size = inode.Inode.size in
  if off >= size then ""
  else begin
    let len = min len (size - off) in
    let buf = Bytes.create len in
    let pos = ref 0 in
    while !pos < len do
      let abs = off + !pos in
      let idx = abs / Layout.block_size and boff = abs mod Layout.block_size in
      let chunk = min (Layout.block_size - boff) (len - !pos) in
      let phys = get_block t inode idx in
      if phys = 0 then Bytes.fill buf !pos chunk '\000'
      else begin
        let b = bget t phys in
        Bytes.blit b boff buf !pos chunk
      end;
      pos := !pos + chunk
    done;
    Bytes.to_string buf
  end

let write_range t inode ~off data =
  let len = String.length data in
  let rec go inode pos =
    if pos >= len then Ok inode
    else begin
      let abs = off + pos in
      let idx = abs / Layout.block_size and boff = abs mod Layout.block_size in
      let chunk = min (Layout.block_size - boff) (len - pos) in
      let phys = get_block t inode idx in
      let with_block =
        if phys <> 0 then Ok (inode, phys)
        else
          Result.bind (alloc_block t ~purpose:`Data) (fun blk ->
              Result.map (fun inode -> (inode, blk)) (set_block t inode idx blk))
      in
      match with_block with
      | Error e -> Error e
      | Ok (inode, phys) ->
          let b = Bytes.copy (bget t phys) in
          Bytes.blit_string data pos b boff chunk;
          bput_data t phys b;
          go inode (pos + chunk)
    end
  in
  Result.map (fun inode -> { inode with Inode.size = max inode.Inode.size (off + len) }) (go inode 0)

(* ---- directories (trusting walk; dentry cache in front) ---- *)

let dir_nblocks inode = Inode.blocks_for_size inode.Inode.size

let dir_block t inode idx =
  let phys = get_block t inode idx in
  if phys = 0 then
    Detector.bug_fail ~bug:"dir-hole" "directory hole at logical block %d (oops)" idx;
  (phys, bget t phys)

(* The base's kernel-like stance: a malformed directory block is a BUG. *)
let trusting_entries b =
  match Dirent.list b with
  | Ok entries -> entries
  | Error e ->
      Detector.bug_fail ~bug:"crafted-dirent" "corrupted directory entry: %s (oops)"
        (Dirent.error_to_string e)

let dir_scan t inode name =
  let n = dir_nblocks inode in
  let rec go idx =
    if idx >= n then None
    else
      let _, b = dir_block t inode idx in
      match List.find_opt (fun e -> String.equal e.Dirent.name name) (trusting_entries b) with
      | Some e -> Some e
      | None -> go (idx + 1)
  in
  go 0

(* Lookup one component with the dentry cache (positive and negative). *)
let dir_child t ~dino inode name =
  match Rae_cache.Dentry.find t.dcache ~dir:dino ~name with
  | Some (Rae_cache.Dentry.Present { ino; kind }) -> Some (ino, kind)
  | Some Rae_cache.Dentry.Absent -> None
  | None -> (
      match dir_scan t inode name with
      | Some e ->
          let kind =
            match Types.kind_of_code e.Dirent.kind_code with
            | Some k -> k
            | None ->
                Detector.bug_fail ~bug:"crafted-dirent" "entry %S has invalid kind (oops)" name
          in
          Rae_cache.Dentry.add t.dcache ~dir:dino ~name (Rae_cache.Dentry.Present { ino = e.Dirent.ino; kind });
          Some (e.Dirent.ino, kind)
      | None ->
          Rae_cache.Dentry.add t.dcache ~dir:dino ~name Rae_cache.Dentry.Absent;
          None)

let dir_list t inode =
  let n = dir_nblocks inode in
  let rec go idx acc = if idx >= n then acc else go (idx + 1) (acc @ trusting_entries (snd (dir_block t inode idx))) in
  go 0 []

let dir_is_empty t inode =
  List.for_all (fun e -> e.Dirent.name = "." || e.Dirent.name = "..") (dir_list t inode)

let dir_insert t dinode ~dino ~name ~ino ~kind_code =
  let n = dir_nblocks dinode in
  let rec try_existing idx =
    if idx >= n then None
    else begin
      let phys, b = dir_block t dinode idx in
      let b = Bytes.copy b in
      if Dirent.insert b ~name ~ino ~kind_code then begin
        bput_meta t phys b ~kind:K_dir;
        Some dinode
      end
      else try_existing (idx + 1)
    end
  in
  let update_dcache () =
    match Types.kind_of_code kind_code with
    | Some kind -> Rae_cache.Dentry.add t.dcache ~dir:dino ~name (Rae_cache.Dentry.Present { ino; kind })
    | None -> ()
  in
  match try_existing 0 with
  | Some dinode ->
      update_dcache ();
      Ok dinode
  | None ->
      Result.bind (alloc_block t ~purpose:`Dir) (fun blk ->
          let b = Dirent.empty_block () in
          ignore (Dirent.insert b ~name ~ino ~kind_code);
          bput_meta t blk b ~kind:K_dir;
          Result.map
            (fun dinode ->
              update_dcache ();
              { dinode with Inode.size = dinode.Inode.size + Layout.block_size })
            (set_block t dinode n blk))

let dir_remove t dinode ~dino ~name =
  let n = dir_nblocks dinode in
  let rec go idx =
    if idx >= n then false
    else begin
      let phys, b = dir_block t dinode idx in
      let b = Bytes.copy b in
      if Dirent.remove b name then begin
        bput_meta t phys b ~kind:K_dir;
        Rae_cache.Dentry.add t.dcache ~dir:dino ~name Rae_cache.Dentry.Absent;
        true
      end
      else go (idx + 1)
    end
  in
  go 0

let dir_set_dotdot t dinode ~parent =
  let phys, b = dir_block t dinode 0 in
  let b = Bytes.copy b in
  if not (Dirent.set_entry_ino b ".." parent) then
    Detector.bug_fail ~bug:"dir-structure" "directory missing \"..\" (oops)";
  bput_meta t phys b ~kind:K_dir

(* ---- path resolution (dcache-accelerated) ---- *)

let rec walk t ino components ~follow_last ~budget =
  match components with
  | [] -> Ok ino
  | name :: rest -> (
      let inode = load_inode t ino in
      match inode.Inode.kind with
      | Types.Regular | Types.Symlink -> Error Errno.ENOTDIR
      | Types.Directory -> (
          match dir_child t ~dino:ino inode name with
          | None -> Error Errno.ENOENT
          | Some (child, kind) -> (
              match kind with
              | Types.Symlink when rest <> [] || follow_last ->
                  if budget <= 0 then Error Errno.ELOOP
                  else
                    let cinode = load_inode t child in
                    let target = read_range t cinode ~off:0 ~len:cinode.Inode.size in
                    (match Path.parse target with
                    | Error _ -> Error Errno.ENOENT
                    | Ok target_components ->
                        walk t Types.root_ino (target_components @ rest) ~follow_last
                          ~budget:(budget - 1))
              | Types.Regular | Types.Directory | Types.Symlink ->
                  walk t child rest ~follow_last ~budget)))

let resolve t path ~follow_last =
  walk t Types.root_ino path ~follow_last ~budget:Types.max_symlink_depth

let resolve_parent t path =
  match Path.split_last path with
  | None -> Error Errno.EEXIST
  | Some (parent, name) -> (
      match resolve t parent ~follow_last:true with
      | Error e -> Error e
      | Ok pino ->
          let pinode = load_inode t pino in
          if pinode.Inode.kind <> Types.Directory then Error Errno.ENOTDIR
          else Ok (pino, pinode, name))

(* ---- fd table / orphans ---- *)

let alloc_fd t =
  let rec go i = if Hashtbl.mem t.fds i then go (i + 1) else i in
  go 0

let fd_refs t ino = Hashtbl.fold (fun _ f acc -> acc || f.fino = ino) t.fds false

let maybe_reclaim t ino =
  let inode = load_inode t ino in
  if inode.Inode.nlink = 0 && not (fd_refs t ino) then begin
    ignore (shrink_blocks t inode ~keep:0);
    Hashtbl.remove t.orphans ino;
    free_ino t ino
  end

(* ---- mutation epilogue ---- *)

(* Largest running transaction we let accumulate before forcing a commit:
   bounded both by a policy constant and by what the journal region can
   physically hold. *)
let txn_soft_limit t = max 4 (min 300 (t.geo.Layout.journal_len - 8))

let tick t =
  t.time <- Int64.add t.time 1L;
  t.time

let finish_mutation t =
  flush_sb t;
  t.ops_since_commit <- t.ops_since_commit + 1;
  if
    t.ops_since_commit >= t.cfg.commit_interval
    || Journal.txn_block_count t.txn > txn_soft_limit t
  then commit t

let touch t ino ~time =
  let inode = load_inode t ino in
  store_inode t ino { inode with Inode.mtime = time; ctime = time }

let guard f = try f () with Device.Io_error _ -> Error Errno.EIO

(* ---- operations ---- *)

let mode_ok mode = mode land lnot 0o777 = 0

let create_node t path ~mode ~kind ~content =
  match resolve_parent t path with
  | Error e -> Error e
  | Ok (pino, pinode, name) -> (
      match dir_child t ~dino:pino pinode name with
      | Some _ -> Error Errno.EEXIST
      | None -> (
          match alloc_ino t with
          | Error e -> Error e
          | Ok ino ->
              let time = tick t in
              let result =
                let base = Inode.empty kind ~mode ~time in
                match kind with
                | Types.Directory ->
                    Result.bind (alloc_block t ~purpose:`Dir) (fun blk ->
                        let b = Dirent.empty_block () in
                        ignore (Dirent.insert b ~name:"." ~ino ~kind_code:dir_kind_code);
                        ignore (Dirent.insert b ~name:".." ~ino:pino ~kind_code:dir_kind_code);
                        bput_meta t blk b ~kind:K_dir;
                        set_block t { base with Inode.nlink = 2; size = Layout.block_size } 0 blk)
                | Types.Regular -> Ok base
                | Types.Symlink -> write_range t { base with Inode.mode = 0o777 } ~off:0 content
              in
              (match result with
              | Error e ->
                  free_ino t ino;
                  t.time <- Int64.sub t.time 1L;
                  Error e
              | Ok inode -> (
                  store_inode t ino inode;
                  match dir_insert t pinode ~dino:pino ~name ~ino ~kind_code:(Types.kind_code kind) with
                  | Error e ->
                      ignore (shrink_blocks t inode ~keep:0);
                      free_ino t ino;
                      t.time <- Int64.sub t.time 1L;
                      Error e
                  | Ok pinode ->
                      let pinode =
                        if kind = Types.Directory then { pinode with Inode.nlink = pinode.Inode.nlink + 1 }
                        else pinode
                      in
                      store_inode t pino { pinode with Inode.mtime = time; ctime = time };
                      finish_mutation t;
                      Ok ino))))

let create t path ~mode =
  guard (fun () ->
      if path = [] then Error Errno.EEXIST
      else if not (mode_ok mode) then Error Errno.EINVAL
      else create_node t path ~mode ~kind:Types.Regular ~content:"")

let mkdir t path ~mode =
  guard (fun () ->
      if path = [] then Error Errno.EEXIST
      else if not (mode_ok mode) then Error Errno.EINVAL
      else create_node t path ~mode ~kind:Types.Directory ~content:"")

let symlink t ~target path =
  guard (fun () ->
      if path = [] then Error Errno.EEXIST
      else if String.length target = 0 then Error Errno.ENOENT
      else if String.length target > 4095 then Error Errno.ENAMETOOLONG
      else create_node t path ~mode:0o777 ~kind:Types.Symlink ~content:target)

let unlink t path =
  guard (fun () ->
      if path = [] then Error Errno.EISDIR
      else
        match resolve_parent t path with
        | Error e -> Error e
        | Ok (pino, pinode, name) -> (
            match dir_child t ~dino:pino pinode name with
            | None -> Error Errno.ENOENT
            | Some (ino, _) ->
                let inode = load_inode t ino in
                if inode.Inode.kind = Types.Directory then Error Errno.EISDIR
                else begin
                  let time = tick t in
                  ignore (dir_remove t pinode ~dino:pino ~name);
                  store_inode t ino { inode with Inode.nlink = inode.Inode.nlink - 1; ctime = time };
                  touch t pino ~time;
                  if inode.Inode.nlink - 1 = 0 then
                    if fd_refs t ino then Hashtbl.replace t.orphans ino ()
                    else maybe_reclaim t ino;
                  finish_mutation t;
                  Ok ()
                end))

let rmdir t path =
  guard (fun () ->
      if path = [] then Error Errno.EINVAL
      else
        match resolve_parent t path with
        | Error e -> Error e
        | Ok (pino, pinode, name) -> (
            match dir_child t ~dino:pino pinode name with
            | None -> Error Errno.ENOENT
            | Some (ino, _) ->
                let inode = load_inode t ino in
                if inode.Inode.kind <> Types.Directory then Error Errno.ENOTDIR
                else if not (dir_is_empty t inode) then Error Errno.ENOTEMPTY
                else begin
                  let time = tick t in
                  ignore (dir_remove t pinode ~dino:pino ~name);
                  ignore (shrink_blocks t inode ~keep:0);
                  free_ino t ino;
                  Rae_cache.Dentry.invalidate_dir t.dcache ~dir:ino;
                  let pinode = load_inode t pino in
                  store_inode t pino
                    { pinode with Inode.nlink = pinode.Inode.nlink - 1; mtime = time; ctime = time };
                  finish_mutation t;
                  Ok ()
                end))

let flags_valid (f : Types.open_flags) =
  (f.rd || f.wr)
  && (not (f.trunc && not f.wr))
  && (not (f.excl && not f.creat))
  && not (f.append && not f.wr)

let openf t path flags =
  guard (fun () ->
      if not (flags_valid flags) then Error Errno.EINVAL
      else if Hashtbl.length t.fds >= t.cfg.max_fds then Error Errno.EMFILE
      else
        match resolve t path ~follow_last:true with
        | Ok ino ->
            if flags.Types.excl then Error Errno.EEXIST
            else begin
              let inode = load_inode t ino in
              match inode.Inode.kind with
              | Types.Directory -> Error Errno.EISDIR
              | Types.Symlink -> Error Errno.ELOOP
              | Types.Regular ->
                  if flags.Types.trunc && inode.Inode.size > 0 then begin
                    let time = tick t in
                    let inode = shrink_blocks t inode ~keep:0 in
                    store_inode t ino { inode with Inode.size = 0; mtime = time; ctime = time };
                    finish_mutation t
                  end;
                  let fd = alloc_fd t in
                  Hashtbl.replace t.fds fd { fino = ino; fflags = flags };
                  Ok fd
            end
        | Error Errno.ENOENT when flags.Types.creat -> (
            match resolve_parent t path with
            | Error e -> Error e
            | Ok (pino, pinode, name) -> (
                match dir_child t ~dino:pino pinode name with
                | Some _ -> Error Errno.ENOENT (* dangling symlink *)
                | None -> (
                    match create_node t path ~mode:0o644 ~kind:Types.Regular ~content:"" with
                    | Error e -> Error e
                    | Ok ino ->
                        let fd = alloc_fd t in
                        Hashtbl.replace t.fds fd { fino = ino; fflags = flags };
                        Ok fd)))
        | Error e -> Error e)

let close t fd =
  guard (fun () ->
      match Hashtbl.find_opt t.fds fd with
      | None -> Error Errno.EBADF
      | Some { fino; _ } ->
          Hashtbl.remove t.fds fd;
          if Hashtbl.mem t.orphans fino then begin
            maybe_reclaim t fino;
            flush_sb t
          end;
          Ok ())

let pread t fd ~off ~len =
  guard (fun () ->
      match Hashtbl.find_opt t.fds fd with
      | None -> Error Errno.EBADF
      | Some { fino; fflags } ->
          if not fflags.Types.rd then Error Errno.EBADF
          else if off < 0 || len < 0 then Error Errno.EINVAL
          else Ok (read_range t (load_inode t fino) ~off ~len))

let pwrite t fd ~off data =
  guard (fun () ->
      match Hashtbl.find_opt t.fds fd with
      | None -> Error Errno.EBADF
      | Some { fino; fflags } ->
          if not fflags.Types.wr then Error Errno.EBADF
          else if off < 0 then Error Errno.EINVAL
          else
            let len = String.length data in
            if len = 0 then Ok 0
            else begin
              let inode = load_inode t fino in
              let eff_off = if fflags.Types.append then inode.Inode.size else off in
              if eff_off + len > Layout.max_file_size then Error Errno.EFBIG
              else
                let time = tick t in
                match write_range t inode ~off:eff_off data with
                | Error e ->
                    t.time <- Int64.sub t.time 1L;
                    let inode' = shrink_blocks t inode ~keep:(Inode.blocks_for_size inode.Inode.size) in
                    store_inode t fino inode';
                    flush_sb t;
                    Error e
                | Ok inode ->
                    store_inode t fino { inode with Inode.mtime = time; ctime = time };
                    finish_mutation t;
                    Ok len
            end)

let lookup t path = guard (fun () -> resolve t path ~follow_last:true)

let stat_of t ino =
  let inode = load_inode t ino in
  let size =
    match inode.Inode.kind with
    | Types.Regular | Types.Symlink -> inode.Inode.size
    | Types.Directory -> 0
  in
  {
    Types.st_ino = ino;
    st_kind = inode.Inode.kind;
    st_size = size;
    st_nlink = inode.Inode.nlink;
    st_mode = inode.Inode.mode;
    st_mtime = inode.Inode.mtime;
    st_ctime = inode.Inode.ctime;
  }

let stat t path =
  guard (fun () -> Result.map (fun ino -> stat_of t ino) (resolve t path ~follow_last:true))

let fstat t fd =
  guard (fun () ->
      match Hashtbl.find_opt t.fds fd with
      | None -> Error Errno.EBADF
      | Some { fino; _ } -> Ok (stat_of t fino))

let readdir t path =
  guard (fun () ->
      match resolve t path ~follow_last:true with
      | Error e -> Error e
      | Ok ino ->
          let inode = load_inode t ino in
          if inode.Inode.kind <> Types.Directory then Error Errno.ENOTDIR
          else
            Ok
              (dir_list t inode
              |> List.filter_map (fun e ->
                     if e.Dirent.name = "." || e.Dirent.name = ".." then None else Some e.Dirent.name)
              |> List.sort compare))

let rename t src dst =
  guard (fun () ->
      if src = [] || dst = [] then Error Errno.EINVAL
      else if Path.equal src dst then (
        match resolve_parent t src with
        | Error e -> Error e
        | Ok (pino, pinode, name) -> (
            match dir_child t ~dino:pino pinode name with
            | None -> Error Errno.ENOENT
            | Some _ -> Ok ()))
      else
        match resolve_parent t src with
        | Error e -> Error e
        | Ok (spino, spinode, sname) -> (
            match dir_child t ~dino:spino spinode sname with
            | None -> Error Errno.ENOENT
            | Some (sino, skind) -> (
                let src_is_dir = skind = Types.Directory in
                if src_is_dir && Path.is_prefix src ~of_:dst then Error Errno.EINVAL
                else
                  match resolve_parent t dst with
                  | Error e -> Error e
                  | Ok (dpino, dpinode, dname) -> (
                      let dst_existing = dir_child t ~dino:dpino dpinode dname in
                      match dst_existing with
                      | Some (dino, _) when dino = sino -> Ok ()
                      | _ -> (
                          let clear_destination () =
                            match dst_existing with
                            | None -> Ok `Nothing
                            | Some (dino, dkind) -> (
                                match (src_is_dir, dkind) with
                                | true, (Types.Regular | Types.Symlink) -> Error Errno.ENOTDIR
                                | true, Types.Directory ->
                                    if not (dir_is_empty t (load_inode t dino)) then
                                      Error Errno.ENOTEMPTY
                                    else Ok (`Replace_dir dino)
                                | false, Types.Directory -> Error Errno.EISDIR
                                | false, (Types.Regular | Types.Symlink) -> Ok (`Replace_file dino))
                          in
                          match clear_destination () with
                          | Error e -> Error e
                          | Ok disposition ->
                              let time = tick t in
                              (match disposition with
                              | `Nothing -> ()
                              | `Replace_dir dino ->
                                  ignore (dir_remove t (load_inode t dpino) ~dino:dpino ~name:dname);
                                  ignore (shrink_blocks t (load_inode t dino) ~keep:0);
                                  free_ino t dino;
                                  Rae_cache.Dentry.invalidate_dir t.dcache ~dir:dino;
                                  let dp = load_inode t dpino in
                                  store_inode t dpino { dp with Inode.nlink = dp.Inode.nlink - 1 }
                              | `Replace_file dino ->
                                  ignore (dir_remove t (load_inode t dpino) ~dino:dpino ~name:dname);
                                  let dinode = load_inode t dino in
                                  store_inode t dino
                                    { dinode with Inode.nlink = dinode.Inode.nlink - 1 };
                                  if dinode.Inode.nlink - 1 = 0 then
                                    if fd_refs t dino then Hashtbl.replace t.orphans dino ()
                                    else maybe_reclaim t dino);
                              let spinode = load_inode t spino in
                              ignore (dir_remove t spinode ~dino:spino ~name:sname);
                              let dpinode = load_inode t dpino in
                              (match
                                 dir_insert t dpinode ~dino:dpino ~name:dname ~ino:sino
                                   ~kind_code:(Types.kind_code skind)
                               with
                              | Error e -> Error e
                              | Ok dpinode ->
                                  store_inode t dpino dpinode;
                                  if src_is_dir && spino <> dpino then begin
                                    dir_set_dotdot t (load_inode t sino) ~parent:dpino;
                                    let sp = load_inode t spino in
                                    store_inode t spino { sp with Inode.nlink = sp.Inode.nlink - 1 };
                                    let dp = load_inode t dpino in
                                    store_inode t dpino { dp with Inode.nlink = dp.Inode.nlink + 1 }
                                  end;
                                  let s = load_inode t sino in
                                  store_inode t sino { s with Inode.ctime = time };
                                  touch t spino ~time;
                                  touch t dpino ~time;
                                  finish_mutation t;
                                  Ok ()))))))

let truncate t path ~size =
  guard (fun () ->
      if size < 0 then Error Errno.EINVAL
      else if size > Layout.max_file_size then Error Errno.EFBIG
      else
        match resolve t path ~follow_last:true with
        | Error e -> Error e
        | Ok ino -> (
            let inode = load_inode t ino in
            match inode.Inode.kind with
            | Types.Directory -> Error Errno.EISDIR
            | Types.Symlink -> Error Errno.EINVAL
            | Types.Regular ->
                let time = tick t in
                let keep = Inode.blocks_for_size size in
                let inode =
                  if size < inode.Inode.size then begin
                    let inode = shrink_blocks t inode ~keep in
                    (if size mod Layout.block_size <> 0 then
                       let idx = size / Layout.block_size in
                       let phys = get_block t inode idx in
                       if phys <> 0 then begin
                         let b = Bytes.copy (bget t phys) in
                         Bytes.fill b (size mod Layout.block_size)
                           (Layout.block_size - (size mod Layout.block_size))
                           '\000';
                         bput_data t phys b
                       end);
                    inode
                  end
                  else inode
                in
                store_inode t ino { inode with Inode.size = size; mtime = time; ctime = time };
                finish_mutation t;
                Ok ()))

let link t src dst =
  guard (fun () ->
      if src = [] || dst = [] then Error Errno.EINVAL
      else
        match resolve_parent t src with
        | Error e -> Error e
        | Ok (spino, spinode, sname) -> (
            match dir_child t ~dino:spino spinode sname with
            | None -> Error Errno.ENOENT
            | Some (sino, skind) -> (
                if skind = Types.Directory then Error Errno.EISDIR
                else
                  match resolve_parent t dst with
                  | Error e -> Error e
                  | Ok (dpino, dpinode, dname) -> (
                      match dir_child t ~dino:dpino dpinode dname with
                      | Some _ -> Error Errno.EEXIST
                      | None -> (
                          let time = tick t in
                          match
                            dir_insert t dpinode ~dino:dpino ~name:dname ~ino:sino
                              ~kind_code:(Types.kind_code skind)
                          with
                          | Error e ->
                              t.time <- Int64.sub t.time 1L;
                              Error e
                          | Ok dpinode ->
                              store_inode t dpino { dpinode with Inode.mtime = time; ctime = time };
                              let sinode = load_inode t sino in
                              store_inode t sino
                                { sinode with Inode.nlink = sinode.Inode.nlink + 1; ctime = time };
                              finish_mutation t;
                              Ok ())))))

let readlink t path =
  guard (fun () ->
      match resolve t path ~follow_last:false with
      | Error e -> Error e
      | Ok ino ->
          let inode = load_inode t ino in
          if inode.Inode.kind <> Types.Symlink then Error Errno.EINVAL
          else Ok (read_range t inode ~off:0 ~len:inode.Inode.size))

let chmod t path ~mode =
  guard (fun () ->
      if not (mode_ok mode) then Error Errno.EINVAL
      else
        match resolve t path ~follow_last:true with
        | Error e -> Error e
        | Ok ino ->
            let time = tick t in
            let inode = load_inode t ino in
            store_inode t ino { inode with Inode.mode = mode; ctime = time };
            finish_mutation t;
            Ok ())

let fsync t fd =
  guard (fun () ->
      match Hashtbl.find_opt t.fds fd with
      | None -> Error Errno.EBADF
      | Some _ ->
          commit t;
          Ok ())

let sync t =
  guard (fun () ->
      commit t;
      Ok ())

module Self = struct
  type nonrec t = t

  let create = create
  let mkdir = mkdir
  let unlink = unlink
  let rmdir = rmdir
  let openf = openf
  let close = close
  let pread = pread
  let pwrite = pwrite
  let lookup = lookup
  let stat = stat
  let fstat = fstat
  let readdir = readdir
  let rename = rename
  let truncate = truncate
  let link = link
  let symlink = symlink
  let readlink = readlink
  let chmod = chmod
  let fsync = fsync
  let sync = sync
end

module D = Fs_intf.Dispatch (Self)

(* ---- injected-bug application ---- *)

let apply_corruption t (spec : Bug_registry.spec) consequence op =
  match (consequence : Bug_registry.consequence) with
  | Bug_registry.Panic ->
      raise (Detector.Base_bug { bug = spec.Bug_registry.id; msg = spec.Bug_registry.modeled_after })
  | Bug_registry.Hang ->
      raise (Detector.Hang { bug = spec.Bug_registry.id; msg = spec.Bug_registry.modeled_after })
  | Bug_registry.Warn ->
      Detector.warn t.det ~bug:spec.Bug_registry.id spec.Bug_registry.modeled_after
  | Bug_registry.Corrupt_freecount ->
      t.sb <- { t.sb with Superblock.free_blocks = t.sb.Superblock.free_blocks + 7 }
  | Bug_registry.Corrupt_dirent -> (
      (* Scribble a rec_len in the root directory's first block — in the
         cache and the running transaction, exactly where an in-memory
         kernel bug would hit. *)
      match load_inode t Types.root_ino with
      | root ->
          let phys = get_block t root 0 in
          if phys <> 0 then begin
            let b = Bytes.copy (bget t phys) in
            Rae_util.Codec.set_u16 b 4 0;
            bput_meta t phys b ~kind:K_dir
          end)
  | Bug_registry.Corrupt_inode_size -> (
      (* Oversize the inode behind the op's fd (or the root as fallback). *)
      let target =
        match op with
        | Op.Pwrite (fd, _, _) | Op.Pread (fd, _, _) | Op.Fstat fd -> (
            match Hashtbl.find_opt t.fds fd with Some { fino; _ } -> Some fino | None -> None)
        | _ -> None
      in
      match target with
      | None -> ()
      | Some ino ->
          let inode = load_inode t ino in
          store_inode t ino { inode with Inode.size = Layout.max_file_size + 1 })
  | Bug_registry.Wrong_result -> ()

let exec t op =
  t.s_ops <- t.s_ops + 1;
  let fired = Bug_registry.fire t.bug_reg op in
  (match fired with
  | Some (spec, consequence) ->
      (* The registry trigger is the ground truth a postmortem wants next
         to the recovery it caused; spec ids are catalog literals, so the
         recorder write stays allocation-free. *)
      (match t.events with
      | Some ev -> Rae_obs.Events.record_bug_fired ev ~id:spec.Bug_registry.id
      | None -> ());
      apply_corruption t spec consequence op
  | None -> ());
  let outcome =
    try D.exec t op
    with Invalid_argument msg ->
      (* A wild pointer dereference: the trusting base walked garbage. *)
      raise (Detector.Base_bug { bug = "wild-pointer"; msg })
  in
  match fired with
  | Some (spec, Bug_registry.Wrong_result) -> (
      match outcome with
      | Ok (Op.St st) ->
          ignore spec;
          Ok (Op.St { st with Types.st_size = st.Types.st_size + 1 })
      | other -> other)
  | Some _ | None -> outcome

(* ---- unmount / reboot / download ---- *)

let unmount t =
  try
    commit t;
    t.sb <- { t.sb with Superblock.state = Superblock.Clean };
    flush_sb t;
    commit t;
    Ok ()
  with
  | Detector.Validation_failed { context; msg } -> Error (context ^ ": " ^ msg)
  | Device.Io_error msg -> Error msg

let contained_reboot t =
  (* Discard everything volatile: nothing in memory is trusted. *)
  Journal.abort t.journal t.txn;
  Hashtbl.reset t.txn_kinds;
  Hashtbl.reset t.dirty_data;
  bc_clear t.bcache;
  IC.clear t.icache;
  Rae_cache.Dentry.clear t.dcache;
  Hashtbl.reset t.fds;
  Hashtbl.reset t.orphans;
  Detector.clear t.det;
  t.mq <- Blkmq.create t.dev;
  (match t.tracer with Some tr -> Blkmq.set_tracer t.mq tr | None -> ());
  (* Recover the trusted on-disk state S0. *)
  let replay () =
    match t.tracer with
    | Some tr ->
        Rae_obs.Tracer.with_span tr ~cat:"recovery" "journal.replay" (fun () ->
            Journal.replay ?pool:t.par_pool t.dev t.geo)
    | None -> Journal.replay ?pool:t.par_pool t.dev t.geo
  in
  match replay () with
  | Error msg -> Error ("journal replay: " ^ msg)
  | Ok _ -> (
      match Superblock.decode (Device.read t.dev 0) with
      | Error e -> Error ("superblock: " ^ Superblock.error_to_string e)
      | Ok sb -> (
          let read_region start len = List.init len (fun i -> Device.read t.dev (start + i)) in
          let ibm =
            Bitmap.of_blocks_lenient
              (read_region t.geo.Layout.inode_bitmap_start t.geo.Layout.inode_bitmap_len)
              ~nbits:(t.geo.Layout.ninodes + 1)
          in
          let bbm =
            Bitmap.of_blocks_lenient
              (read_region t.geo.Layout.block_bitmap_start t.geo.Layout.block_bitmap_len)
              ~nbits:t.geo.Layout.nblocks
          in
          match (ibm, bbm) with
          | Error msg, _ | _, Error msg -> Error ("bitmaps: " ^ msg)
          | Ok ibm, Ok bbm -> (
              match Journal.attach t.dev t.geo with
              | Error msg -> Error ("journal: " ^ msg)
              | Ok journal ->
                  t.journal <- journal;
                  t.sb <- sb;
                  t.ibm <- ibm;
                  t.bbm <- bbm;
                  t.time <- sb.Superblock.fs_time;
                  t.txn <- Journal.begin_txn journal;
                  t.ops_since_commit <- 0;
                  Ok ())))

let region_of t blk =
  let g = t.geo in
  if blk = 0 then `Sb
  else if blk >= g.Layout.journal_start && blk < g.Layout.journal_start + g.Layout.journal_len then
    `Journal
  else if
    blk >= g.Layout.inode_bitmap_start && blk < g.Layout.inode_bitmap_start + g.Layout.inode_bitmap_len
  then `Ibmap
  else if
    blk >= g.Layout.block_bitmap_start && blk < g.Layout.block_bitmap_start + g.Layout.block_bitmap_len
  then `Bbmap
  else if
    blk >= g.Layout.inode_table_start && blk < g.Layout.inode_table_start + g.Layout.inode_table_len
  then `Itable
  else `Data

let download_metadata t ~blocks ~fd_table ~time =
  try
    (* Route every block through the same classification the base uses for
       its own structures; everything lands dirty in the running txn. *)
    let ibmap_updates = ref [] and bbmap_updates = ref [] in
    List.iter
      (fun (blk, data) ->
        match region_of t blk with
        | `Journal -> Detector.bug_fail ~bug:"download" "shadow produced a journal block %d" blk
        | `Sb -> (
            match Superblock.decode data with
            | Error e ->
                Detector.bug_fail ~bug:"download" "shadow superblock invalid: %s"
                  (Superblock.error_to_string e)
            | Ok sb ->
                t.sb <- sb;
                bput_meta t 0 data ~kind:K_sb)
        | `Ibmap ->
            ibmap_updates := (blk, data) :: !ibmap_updates;
            bput_meta t blk data ~kind:K_bitmap
        | `Bbmap ->
            bbmap_updates := (blk, data) :: !bbmap_updates;
            bput_meta t blk data ~kind:K_bitmap
        | `Itable ->
            (* Invalidate the covered icache slots; reload lazily. *)
            let base_ino = ((blk - t.geo.Layout.inode_table_start) * Layout.inodes_per_block) + 1 in
            for slot = 0 to Layout.inodes_per_block - 1 do
              IC.remove t.icache (base_ino + slot)
            done;
            bput_meta t blk data ~kind:K_itable
        | `Data ->
            (* Dir, indirect or file data: journal it wholesale; the kinds
               are unknown here so skip structural validation (the shadow
               already verified them). *)
            bc_put t.bcache blk data;
            bc_pin t.bcache blk;
            Journal.txn_write t.txn blk data;
            if Journal.txn_block_count t.txn > txn_soft_limit t then begin
              (* Chunk very large recoveries across several transactions. *)
              Hashtbl.iter (fun b _ -> bc_unpin t.bcache b) t.txn_kinds;
              Journal.commit t.journal t.txn;
              Hashtbl.reset t.txn_kinds;
              t.txn <- Journal.begin_txn t.journal;
              t.s_commits <- t.s_commits + 1
            end)
      blocks;
    (* Rebuild the in-memory bitmaps with the new content overlaid. *)
    let rebuild which updates =
      if updates <> [] then begin
        let start, len, nbits =
          match which with
          | `Inode ->
              (t.geo.Layout.inode_bitmap_start, t.geo.Layout.inode_bitmap_len, t.geo.Layout.ninodes + 1)
          | `Block -> (t.geo.Layout.block_bitmap_start, t.geo.Layout.block_bitmap_len, t.geo.Layout.nblocks)
        in
        let current =
          Bitmap.to_blocks (match which with `Inode -> t.ibm | `Block -> t.bbm)
            ~block_size:Layout.block_size
        in
        let merged =
          List.mapi
            (fun i b -> match List.assoc_opt (start + i) updates with Some d -> d | None -> b)
            (List.filteri (fun i _ -> i < len) current)
        in
        match Bitmap.of_blocks_lenient merged ~nbits with
        | Ok bm -> ( match which with `Inode -> t.ibm <- bm | `Block -> t.bbm <- bm)
        | Error msg -> Detector.bug_fail ~bug:"download" "shadow bitmap unreadable: %s" msg
      end
    in
    rebuild `Inode !ibmap_updates;
    rebuild `Block !bbmap_updates;
    (* Adopt the reconstructed descriptor table and orphan census. *)
    Hashtbl.reset t.fds;
    Hashtbl.reset t.orphans;
    List.iter
      (fun (fd, ino, flags) ->
        Hashtbl.replace t.fds fd { fino = ino; fflags = flags };
        let inode = load_inode t ino in
        if inode.Inode.nlink = 0 then Hashtbl.replace t.orphans ino ())
      fd_table;
    t.time <- time;
    flush_sb t;
    (* Make the recovered state durable immediately. *)
    commit t;
    Ok ()
  with
  | Detector.Base_bug { bug; msg } -> Error (bug ^ ": " ^ msg)
  | Detector.Validation_failed { context; msg } -> Error (context ^ ": " ^ msg)
  | Device.Io_error msg -> Error msg

(* ---- introspection ---- *)

let stats t =
  {
    ops_executed = t.s_ops;
    commits = t.s_commits;
    validations = t.s_validations;
    bugs_fired = Bug_registry.fired_count t.bug_reg;
  }

let detector t = t.det
let bugs t = t.bug_reg
let time t = t.time
let set_time t v = t.time <- v

let fd_table t =
  Hashtbl.fold (fun fd { fino; fflags } acc -> (fd, fino, fflags) :: acc) t.fds []
  |> List.sort compare

let fd_count t = Hashtbl.length t.fds
let fd_iter t f = Hashtbl.iter (fun fd { fino; fflags } -> f fd fino fflags) t.fds

let fd_lookup t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some { fino; fflags } -> Some (fino, fflags)
  | None -> None

let bcache_stats t = bc_stats t.bcache
let dcache_stats t = Rae_cache.Dentry.stats t.dcache
let icache_stats t = IC.stats t.icache
let journal_stats t = Journal.stats t.journal
let mq_stats t = Blkmq.stats t.mq

let set_tracer t tr =
  t.tracer <- Some tr;
  Blkmq.set_tracer t.mq tr

let set_events t ev = t.events <- Some ev
let set_par_pool t pool = t.par_pool <- pool

let register_obs reg t =
  let module M = Rae_obs.Metrics in
  M.register_counter reg ~help:"VFS operations executed by the base"
    ~reset:(fun () -> t.s_ops <- 0)
    "base_ops_total"
    (fun () -> t.s_ops);
  M.register_counter reg ~help:"group commits"
    ~reset:(fun () -> t.s_commits <- 0)
    "base_commits_total"
    (fun () -> t.s_commits);
  M.register_counter reg ~help:"commit-time validation passes"
    ~reset:(fun () -> t.s_validations <- 0)
    "base_validations_total"
    (fun () -> t.s_validations);
  M.register_counter reg ~help:"injected bugs fired" "base_bugs_fired_total" (fun () ->
      Bug_registry.fired_count t.bug_reg);
  M.register_counter reg ~help:"detector warnings (non-fatal)" "detector_warnings_total" (fun () ->
      Detector.warn_count t.det);
  M.register_gauge reg ~help:"operations since the last commit" "base_ops_since_commit" (fun () ->
      float_of_int t.ops_since_commit);
  M.register_gauge reg ~help:"open file descriptors" "base_open_fds" (fun () ->
      float_of_int (Hashtbl.length t.fds));
  M.register_gauge reg ~help:"orphaned inodes awaiting reap" "base_orphans" (fun () ->
      float_of_int (Hashtbl.length t.orphans));
  (* Caches: the containers live for the mount, so closing over [t] and
     sampling through the accessors stays correct across contained reboots. *)
  Rae_cache.Lru.register_stats reg ~prefix:"bcache"
    ~reset:(fun () -> bc_reset_stats t.bcache)
    (fun () -> bc_stats t.bcache);
  Rae_cache.Lru.register_stats reg ~prefix:"icache"
    ~reset:(fun () -> IC.reset_stats t.icache)
    (fun () -> IC.stats t.icache);
  Rae_cache.Lru.register_stats reg ~prefix:"dcache"
    ~reset:(fun () -> Rae_cache.Dentry.reset_stats t.dcache)
    (fun () -> Rae_cache.Dentry.stats t.dcache);
  (* Journal and queue layer are replaced by contained reboot: register
     through getters so samples always read the live instance. *)
  Journal.register_obs reg (fun () -> t.journal);
  Blkmq.register_obs reg (fun () -> t.mq)
