(** The base filesystem: the performance-oriented implementation.

    This is the left-hand side of the paper's Figure 2 — the filesystem a
    production system actually runs, with every component the shadow
    omits:

    - a {b dentry cache} with negative entries accelerating path lookup;
    - an {b inode cache} and a {b block cache} (LRU or 2Q, configurable —
      the policy ablation of DESIGN.md §5);
    - {b asynchronous IO} through the blk-mq style queueing layer, with
      write merging and batched dispatch;
    - {b group commit}: metadata updates accumulate in a running journal
      transaction that commits every [commit_interval] operations or at an
      [fsync]/[sync] barrier — creating exactly the volatile window
      between the applications' view and the on-disk state that RAE
      records (paper §3.2);
    - {b trusting fast paths}: on-disk structures are decoded without
      checksum verification; malformed structures raise
      {!Detector.Base_bug} — the kernel-crash analogue for the
      crafted-image bug class;
    - optional {b injected bugs} from {!Bug_registry}, evaluated before
      each operation.

    At each commit barrier the base can run a cheap metadata validation
    pass ("validate upon sync", §3.1) so that injected silent corruption
    is detected *before* it reaches the disk — the fault-model assumption
    the paper makes explicit. *)

type config = {
  commit_interval : int;  (** operations per group commit (default 64) *)
  cache_policy : [ `Lru | `Two_q ];
  bcache_capacity : int;
  icache_capacity : int;
  dcache_capacity : int;
  validate_on_commit : bool;
  max_fds : int;
}

val default_config : config

type t

val mkfs : Rae_block.Device.t -> ninodes:int -> ?journal_len:int -> unit -> (unit, string) result
(** Format the device (rfs image + journal). *)

val mount :
  ?config:config ->
  ?bugs:Bug_registry.t ->
  ?pool:Rae_par.Pool.t ->
  Rae_block.Device.t ->
  (t, string) result
(** Journal replay, then attach.  The superblock and bitmaps are parsed
    leniently (the base trusts its own image — deliberately).  [?pool]
    parallelizes the replay destage (see {!Rae_journal.Journal.replay})
    and is retained for contained reboots. *)

val unmount : t -> (unit, string) result
(** Commit everything and mark the superblock clean. *)

include Rae_vfs.Fs_intf.S with type t := t

val exec : t -> Rae_vfs.Op.t -> Rae_vfs.Op.outcome
(** Execute one operation.  May raise {!Detector.Base_bug}, {!Detector.Hang}
    or {!Detector.Validation_failed} — the runtime errors RAE recovers
    from.  (Plain [Error _] results are legal POSIX failures, not runtime
    errors.) *)

val commit : t -> unit
(** Force a group commit (also runs commit-time validation). *)

val ops_since_commit : t -> int

val on_commit : t -> (commit_seq:int64 -> unit) -> unit
(** Register a callback fired after every successful commit — the RAE
    oplog uses this to discard operations that are now durable.  The
    callback receives the journal's durable transaction sequence
    ({!Rae_journal.Journal.commit_seq}) so checkpoint machinery can label
    the trusted state S0 it is about to re-base on. *)

(* ---- the RAE integration surface (paper §3.2) ---- *)

val contained_reboot : t -> (unit, string) result
(** Discard all in-memory state (caches, fd table, running transaction),
    replay the journal, and reload from the trusted on-disk state S0.
    Applications are unaffected; open descriptors are restored separately
    via {!download_metadata}. *)

val download_metadata :
  t ->
  blocks:(int * bytes) list ->
  fd_table:(Rae_vfs.Types.fd * Rae_vfs.Types.ino * Rae_vfs.Types.open_flags) list ->
  time:int64 ->
  (unit, string) result
(** Absorb the shadow's output: install the dirty blocks through the
    base's own classification logic (superblock / bitmaps / inode table /
    data all take their normal in-memory routes, marked dirty in the
    running transaction), adopt the fd table and logical clock, and commit
    so the recovered state is durable. *)

(* ---- introspection ---- *)

type stats = {
  ops_executed : int;
  commits : int;
  validations : int;
  bugs_fired : int;
}

val stats : t -> stats
val detector : t -> Detector.t
val bugs : t -> Bug_registry.t
val time : t -> int64
val set_time : t -> int64 -> unit
val fd_table : t -> (Rae_vfs.Types.fd * Rae_vfs.Types.ino * Rae_vfs.Types.open_flags) list
(** Sorted snapshot of the descriptor table.  Comparators should prefer
    {!fd_count}/{!fd_iter}/{!fd_lookup}, which probe the live table
    without materializing a list. *)

val fd_count : t -> int

val fd_iter :
  t -> (Rae_vfs.Types.fd -> Rae_vfs.Types.ino -> Rae_vfs.Types.open_flags -> unit) -> unit

val fd_lookup :
  t -> Rae_vfs.Types.fd -> (Rae_vfs.Types.ino * Rae_vfs.Types.open_flags) option

val bcache_stats : t -> Rae_cache.Lru.stats
val dcache_stats : t -> Rae_cache.Lru.stats
val icache_stats : t -> Rae_cache.Lru.stats
val journal_stats : t -> Rae_journal.Journal.stats
val mq_stats : t -> Rae_block.Blkmq.stats

val set_tracer : t -> Rae_obs.Tracer.t -> unit
(** Attach a tracer: group commits emit a [base.commit] span, journal
    replay during contained reboot a [journal.replay] span, and the queue
    layer (re-attached across contained reboots) its destage spans. *)

val set_events : t -> Rae_obs.Events.t -> unit
(** Attach a flight recorder: every injected-bug trigger records a
    [Bug_fired] event with the catalog id, so a postmortem bundle shows
    the fault next to the recovery it caused. *)

val set_par_pool : t -> Rae_par.Pool.t option -> unit
(** Attach (or detach, with [None]) a domain pool used to parallelize the
    journal-replay destage during contained reboots. *)

val register_obs : Rae_obs.Metrics.t -> t -> unit
(** Register the base's counters and gauges — op/commit/validation counts,
    detector warnings, all three caches, the journal, and the blk-mq layer
    — with a metrics registry.  Samplers read the live instances, so they
    stay accurate across contained reboots. *)
