(* The clock is advanced from every domain that touches a disk (parallel
   fsck reads, parallel destage writes), so the counter is an atomic and
   [advance] is a CAS loop rather than a read-modify-write. *)
type t = { ns : int64 Atomic.t }

let create () = { ns = Atomic.make 0L }
let now t = Atomic.get t.ns

let advance t delta =
  if Int64.compare delta 0L < 0 then invalid_arg "Vclock.advance: negative delta";
  let rec loop () =
    let cur = Atomic.get t.ns in
    if not (Atomic.compare_and_set t.ns cur (Int64.add cur delta)) then loop ()
  in
  loop ()

let reset t = Atomic.set t.ns 0L

let pp_duration ppf ns =
  let f = Int64.to_float ns in
  if f < 1e3 then Format.fprintf ppf "%.0fns" f
  else if f < 1e6 then Format.fprintf ppf "%.2fus" (f /. 1e3)
  else if f < 1e9 then Format.fprintf ppf "%.2fms" (f /. 1e6)
  else Format.fprintf ppf "%.3fs" (f /. 1e9)
