(* CRC32C, slicing-by-8 implementation using the Castagnoli polynomial
   0x1EDC6F41 (reflected: 0x82F63B78), as used by ext4 metadata_csum,
   iSCSI and Btrfs.

   The arithmetic runs on native [int]s (every intermediate fits in 32
   bits, OCaml ints have 63): an [Int32]-typed loop boxes every
   intermediate, which made checksumming a 4 KiB block cost tens of
   microseconds and dominated every structural block write.  On top of
   that, the classic one-table loop still costs one dependent table
   lookup per byte; slicing-by-8 folds eight input bytes per iteration
   through eight precomputed tables whose lookups are mutually
   independent, which matters here because the superblock flush
   checksums a whole block on every shadow mutation.  Only the public
   interface speaks [Int32]. *)

let mask32 = 0xFFFFFFFF
let poly = 0x82F63B78

(* tables.(0) is the classic byte-at-a-time table; tables.(k).(v) equals
   the CRC of byte [v] followed by [k] zero bytes, so an 8-byte group can
   be folded in one step:

     crc' = T7[b0] ^ T6[b1] ^ ... ^ T0[b7]   with b0..b3 pre-xored
                                             against the running crc. *)
let tables =
  lazy
    (let t = Array.make_matrix 8 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         if !c land 1 <> 0 then c := (!c lsr 1) lxor poly else c := !c lsr 1
       done;
       t.(0).(n) <- !c
     done;
     for k = 1 to 7 do
       for n = 0 to 255 do
         let prev = t.(k - 1).(n) in
         t.(k).(n) <- t.(0).(prev land 0xFF) lxor (prev lsr 8)
       done
     done;
     t)

let crc32c ?(init = 0l) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Checksum.crc32c: out of bounds";
  let t = Lazy.force tables in
  let t0 = t.(0) and t1 = t.(1) and t2 = t.(2) and t3 = t.(3) in
  let t4 = t.(4) and t5 = t.(5) and t6 = t.(6) and t7 = t.(7) in
  let c = ref (Int32.to_int init land mask32 lxor mask32) in
  let i = ref pos in
  let stop = pos + len in
  (* All table indices are masked to [0, 255] and every table has 256
     entries; [i] stays within [pos, stop), which the guard above proved
     in bounds — so the unsafe accesses cannot be out of bounds. *)
  let byte j = Char.code (Bytes.unsafe_get b j) in
  while stop - !i >= 8 do
    let j = !i in
    let lo =
      !c
      lxor (byte j
           lor (byte (j + 1) lsl 8)
           lor (byte (j + 2) lsl 16)
           lor (byte (j + 3) lsl 24))
    in
    c :=
      Array.unsafe_get t7 (lo land 0xFF)
      lxor Array.unsafe_get t6 ((lo lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((lo lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 (lo lsr 24)
      lxor Array.unsafe_get t3 (byte (j + 4))
      lxor Array.unsafe_get t2 (byte (j + 5))
      lxor Array.unsafe_get t1 (byte (j + 6))
      lxor Array.unsafe_get t0 (byte (j + 7));
    i := j + 8
  done;
  while !i < stop do
    let idx = (!c lxor byte !i) land 0xFF in
    c := Array.unsafe_get t0 idx lxor (!c lsr 8);
    incr i
  done;
  Int32.of_int (!c lxor mask32)

let crc32c_string s =
  let b = Bytes.unsafe_of_string s in
  crc32c b ~pos:0 ~len:(Bytes.length b)

let verify b ~pos ~len ~expect = Int32.equal (crc32c b ~pos ~len) expect
