type latency = { read_ns : int64; write_ns : int64 }

let default_latency = { read_ns = 10_000L; write_ns = 20_000L }
let zero_latency = { read_ns = 0L; write_ns = 0L }

type t = {
  blocks : bytes array;
  block_size : int;
  latency : latency;
  clock : Rae_util.Vclock.t;
  (* Atomics: parallel destage and parallel fsck read/write one disk from
     several domains at once; the op counters must not drop increments. *)
  reads : int Atomic.t;
  writes : int Atomic.t;
}

let create ?(latency = default_latency) ?clock ~block_size ~nblocks () =
  if block_size <= 0 || nblocks <= 0 then invalid_arg "Disk.create: non-positive size";
  let clock = match clock with Some c -> c | None -> Rae_util.Vclock.create () in
  {
    blocks = Array.init nblocks (fun _ -> Bytes.make block_size '\000');
    block_size;
    latency;
    clock;
    reads = Atomic.make 0;
    writes = Atomic.make 0;
  }

let block_size t = t.block_size
let nblocks t = Array.length t.blocks
let clock t = t.clock

let check t blk what =
  if blk < 0 || blk >= Array.length t.blocks then
    invalid_arg (Printf.sprintf "Disk.%s: block %d out of range [0,%d)" what blk (Array.length t.blocks))

let read t blk =
  check t blk "read";
  Atomic.incr t.reads;
  Rae_util.Vclock.advance t.clock t.latency.read_ns;
  Bytes.copy t.blocks.(blk)

let write t blk data =
  check t blk "write";
  if Bytes.length data <> t.block_size then
    invalid_arg
      (Printf.sprintf "Disk.write: %d bytes to a %d-byte block" (Bytes.length data) t.block_size);
  Atomic.incr t.writes;
  Rae_util.Vclock.advance t.clock t.latency.write_ns;
  Bytes.blit data 0 t.blocks.(blk) 0 t.block_size

let read_into t blk buf =
  check t blk "read_into";
  if Bytes.length buf <> t.block_size then invalid_arg "Disk.read_into: buffer size mismatch";
  Atomic.incr t.reads;
  Rae_util.Vclock.advance t.clock t.latency.read_ns;
  Bytes.blit t.blocks.(blk) 0 buf 0 t.block_size

let reads t = Atomic.get t.reads
let writes t = Atomic.get t.writes

let reset_counters t =
  Atomic.set t.reads 0;
  Atomic.set t.writes 0

let snapshot t = Array.map Bytes.copy t.blocks

let restore t image =
  if Array.length image <> Array.length t.blocks then
    invalid_arg "Disk.restore: block count mismatch";
  Array.iteri
    (fun i b ->
      if Bytes.length b <> t.block_size then invalid_arg "Disk.restore: block size mismatch";
      Bytes.blit b 0 t.blocks.(i) 0 t.block_size)
    image

let save t path =
  try
    let oc = open_out_bin path in
    Array.iter (fun b -> output_bytes oc b) t.blocks;
    close_out oc;
    Ok ()
  with Sys_error msg -> Error msg

let load ?(latency = default_latency) path =
  try
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let block_size = 4096 in
    if len = 0 || len mod block_size <> 0 then begin
      close_in ic;
      Error (Printf.sprintf "%s: size %d is not a positive multiple of %d" path len block_size)
    end
    else begin
      let nblocks = len / block_size in
      let t = create ~latency ~block_size ~nblocks () in
      Array.iter (fun b -> really_input ic b 0 block_size) t.blocks;
      close_in ic;
      Ok t
    end
  with Sys_error msg -> Error msg

let corrupt_byte t ~block ~offset f =
  check t block "corrupt_byte";
  if offset < 0 || offset >= t.block_size then invalid_arg "Disk.corrupt_byte: offset";
  let b = t.blocks.(block) in
  Bytes.set b offset (f (Bytes.get b offset))
