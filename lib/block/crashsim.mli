(** Crash simulation: a write-buffering device with explicit flush barriers.

    Writes issued through this wrapper sit in a volatile buffer until
    {!Device.flush}; a simulated power failure ({!crash}) discards — or,
    with [~partial], applies an arbitrary subset of — the unflushed writes.
    The journal's crash-consistency tests drive all their IO through this
    wrapper and call {!crash} at adversarial points; the crash-point
    enumerator ({!Rae_crash}) records the full write/flush stream through
    the [trace] mode and re-materializes crash images offline. *)

type t

type event = Write of int * bytes | Flush
(** One element of the device-level persistence stream, as the wrapped
    device observed it. *)

val create : ?rng:Rae_util.Rng.t -> ?trace:bool -> Device.t -> t * Device.t
(** [create dev] returns the simulator handle and the wrapped device to
    hand to the filesystem under test.  [rng] drives partial-crash write
    selection (default: a fixed seed).  With [trace] every write and
    flush barrier is also appended to the {!events} stream. *)

val pending : t -> int
(** Unflushed writes currently buffered. *)

val events : t -> event array
(** The write/flush stream recorded so far, oldest first (empty unless
    [create ~trace:true]).  Payload bytes are private copies. *)

val crash : t -> unit
(** Power failure: every buffered write is lost. *)

val crash_partial : ?key:string -> t -> unit
(** Power failure where the device had started destaging: a subset of the
    buffered writes reaches the medium (oldest-first issue order — which,
    per block, reaches every image an arbitrary destage order could), the
    rest are lost.  Without [key] the subset is drawn from the simulator's
    rng and recorded in {!last_key}; with [key] a previously logged key is
    re-applied exactly, making any partial crash reproducible from a log
    line.  @raise Invalid_argument when [key] does not describe the
    currently buffered writes. *)

val last_key : t -> string option
(** Replayable description of the subset the last {!crash_partial}
    persisted ([None] before any partial crash). *)

val flushes : t -> int
(** Number of flush barriers observed. *)

(** {2 Subset-mask codec}

    Shared with the crash-point enumerator's image keys: bit [i] set means
    the [i]-th write (oldest first) persisted. *)

val mask_to_hex : bool array -> string
val mask_of_hex : n:int -> string -> bool array option
val partial_key : bool array -> string
val parse_partial_key : string -> bool array option
