(* Fault injection intentionally corrupts blocks underneath the
   filesystem (stuck/torn writes, bit flips), so its raw device writes
   are exempt from the persistence-ordering typestate. *)
[@@@lint_exempt "persist-order"]

type spec =
  | Read_error of { block : int; from_nth : int; count : int }
  | Flip_on_read of { block : int; byte : int; bit : int; from_nth : int; count : int }
  | Stuck_write of { block : int }
  | Torn_write of { block : int; keep_bytes : int }

type t = {
  specs : spec list;
  rng : Rae_util.Rng.t option;
  read_error_rate : float;
  flip_rate : float;
  read_counts : (int, int) Hashtbl.t;  (* per-block read counter *)
  mutable injected : int;
}

let create ?rng ?(read_error_rate = 0.0) ?(flip_rate = 0.0) specs =
  if (read_error_rate > 0.0 || flip_rate > 0.0) && rng = None then
    invalid_arg "Fault.create: probabilistic faults require an rng";
  { specs; rng; read_error_rate; flip_rate; read_counts = Hashtbl.create 64; injected = 0 }

let bump_read t blk =
  let n = (try Hashtbl.find t.read_counts blk with Not_found -> 0) + 1 in
  Hashtbl.replace t.read_counts blk n;
  n

let flip_bit data byte bit =
  if byte < Bytes.length data then begin
    let c = Char.code (Bytes.get data byte) in
    Bytes.set data byte (Char.chr (c lxor (1 lsl (bit land 7))))
  end

let wrap t (dev : Device.t) =
  let read blk =
    let nth = bump_read t blk in
    let fail_deterministic =
      List.exists
        (function
          | Read_error r -> r.block = blk && nth >= r.from_nth && nth < r.from_nth + r.count
          | Flip_on_read _ | Stuck_write _ | Torn_write _ -> false)
        t.specs
    in
    let fail_random =
      match t.rng with
      | Some rng when t.read_error_rate > 0.0 -> Rae_util.Rng.chance rng t.read_error_rate
      | Some _ | None -> false
    in
    if fail_deterministic || fail_random then begin
      t.injected <- t.injected + 1;
      raise (Device.Io_error (Printf.sprintf "simulated read error on block %d" blk))
    end;
    let data = dev.Device.dev_read blk in
    List.iter
      (function
        | Flip_on_read f when f.block = blk && nth >= f.from_nth && nth < f.from_nth + f.count ->
            t.injected <- t.injected + 1;
            flip_bit data f.byte f.bit
        | Flip_on_read _ | Read_error _ | Stuck_write _ | Torn_write _ -> ())
      t.specs;
    (match t.rng with
    | Some rng when t.flip_rate > 0.0 && Rae_util.Rng.chance rng t.flip_rate ->
        t.injected <- t.injected + 1;
        flip_bit data (Rae_util.Rng.int rng (Bytes.length data)) (Rae_util.Rng.int rng 8)
    | Some _ | None -> ());
    data
  in
  let write blk data =
    let stuck =
      List.exists (function Stuck_write s -> s.block = blk | _ -> false) t.specs
    in
    if stuck then t.injected <- t.injected + 1
    else
      let torn =
        List.find_opt (function Torn_write w -> w.block = blk | _ -> false) t.specs
      in
      match torn with
      | Some (Torn_write w) ->
          t.injected <- t.injected + 1;
          let partial = dev.Device.dev_read blk in
          Bytes.blit data 0 partial 0 (min w.keep_bytes (Bytes.length data));
          dev.Device.dev_write blk partial
      | Some (Read_error _ | Flip_on_read _ | Stuck_write _) | None ->
          dev.Device.dev_write blk data
  in
  { dev with Device.dev_read = read; dev_write = write }

let injected t = t.injected
