(* Crash simulation deliberately writes to the medium behind the
   journal's back: it models the volatile device cache losing or
   tearing buffered writes at a crash point.  Exempt from the
   persistence-ordering typestate — bypassing the protocol is the whole
   point of the module. *)
[@@@lint_exempt "persist-order"]

type t = {
  dev : Device.t;
  mutable buffer : (int * bytes) list;  (* newest first *)
  rng : Rae_util.Rng.t;
  mutable flushes : int;
}

let create ?rng dev =
  let rng = match rng with Some r -> r | None -> Rae_util.Rng.create 0x5EEDL in
  let t = { dev; buffer = []; rng; flushes = 0 } in
  let read blk =
    (* Reads must observe buffered writes (the device's volatile cache). *)
    match List.find_opt (fun (b, _) -> b = blk) t.buffer with
    | Some (_, data) -> Bytes.copy data
    | None -> t.dev.Device.dev_read blk
  in
  let write blk data = t.buffer <- (blk, Bytes.copy data) :: t.buffer in
  let flush () =
    t.flushes <- t.flushes + 1;
    List.iter (fun (blk, data) -> t.dev.Device.dev_write blk data) (List.rev t.buffer);
    t.buffer <- [];
    t.dev.Device.dev_flush ()
  in
  (t, { t.dev with Device.dev_read = read; dev_write = write; dev_flush = flush })

let pending t = List.length t.buffer

let crash t = t.buffer <- []

let crash_partial t =
  (* Destage a random subset in a random order; later writes to the same
     block may thereby be lost while earlier ones survive — the torn,
     reordered outcome a journal must tolerate. *)
  let writes = Array.of_list t.buffer in
  Rae_util.Rng.shuffle t.rng writes;
  Array.iter
    (fun (blk, data) ->
      if Rae_util.Rng.bool t.rng then t.dev.Device.dev_write blk data)
    writes;
  t.buffer <- []

let flushes t = t.flushes
