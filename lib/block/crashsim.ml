(* Crash simulation deliberately writes to the medium behind the
   journal's back: it models the volatile device cache losing or
   tearing buffered writes at a crash point.  Exempt from the
   persistence-ordering typestate — bypassing the protocol is the whole
   point of the module. *)
[@@@lint_exempt "persist-order"]

type event = Write of int * bytes | Flush

type t = {
  dev : Device.t;
  mutable buffer : (int * bytes) list;  (* newest first *)
  rng : Rae_util.Rng.t;
  mutable flushes : int;
  trace : bool;
  mutable events_rev : event list;  (* newest first; only when [trace] *)
  mutable last_key : string option;
}

let create ?rng ?(trace = false) dev =
  let rng = match rng with Some r -> r | None -> Rae_util.Rng.create 0x5EEDL in
  let t = { dev; buffer = []; rng; flushes = 0; trace; events_rev = []; last_key = None } in
  let read blk =
    (* Reads must observe buffered writes (the device's volatile cache). *)
    match List.find_opt (fun (b, _) -> b = blk) t.buffer with
    | Some (_, data) -> Bytes.copy data
    | None -> t.dev.Device.dev_read blk
  in
  let write blk data =
    let data = Bytes.copy data in
    if t.trace then t.events_rev <- Write (blk, data) :: t.events_rev;
    t.buffer <- (blk, data) :: t.buffer
  in
  let flush () =
    t.flushes <- t.flushes + 1;
    if t.trace then t.events_rev <- Flush :: t.events_rev;
    List.iter (fun (blk, data) -> t.dev.Device.dev_write blk data) (List.rev t.buffer);
    t.buffer <- [];
    t.dev.Device.dev_flush ()
  in
  (t, { t.dev with Device.dev_read = read; dev_write = write; dev_flush = flush })

let pending t = List.length t.buffer
let events t = Array.of_list (List.rev t.events_rev)

let crash t =
  t.buffer <- [];
  t.last_key <- None

(* ---- replayable persisted-subset keys ---- *)

let hex_digits = "0123456789abcdef"

let mask_to_hex mask =
  let n = Array.length mask in
  let digits = (n + 3) / 4 in
  String.init digits (fun d ->
      let v = ref 0 in
      for b = 0 to 3 do
        let i = (d * 4) + b in
        if i < n && mask.(i) then v := !v lor (1 lsl b)
      done;
      hex_digits.[!v])

let mask_of_hex ~n s =
  if String.length s <> (n + 3) / 4 then None
  else
    let bad = ref false in
    let digit c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | _ ->
          bad := true;
          0
    in
    let mask = Array.init n (fun i -> digit s.[i / 4] land (1 lsl (i mod 4)) <> 0) in
    if !bad then None else Some mask

let partial_key mask = Printf.sprintf "%d:%s" (Array.length mask) (mask_to_hex mask)

let parse_partial_key s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
      match int_of_string_opt (String.sub s 0 i) with
      | None -> None
      | Some n when n < 0 -> None
      | Some n -> (
          match mask_of_hex ~n (String.sub s (i + 1) (String.length s - i - 1)) with
          | None -> None
          | Some mask -> Some mask))

let crash_partial ?key t =
  (* Destage a subset of the buffered writes, oldest first; a later write
     to the same block may thereby be lost while an earlier one survives —
     the torn, reordered outcome a journal must tolerate.  (Applying an
     arbitrary subset in issue order reaches every image an arbitrary
     destage order could: per block, only which buffered version lands
     last matters.)  The chosen subset is captured as {!last_key} so the
     exact crash is replayable; [key] applies a previously logged one. *)
  let writes = Array.of_list (List.rev t.buffer) in
  let n = Array.length writes in
  let mask =
    match key with
    | None -> Array.init n (fun _ -> Rae_util.Rng.bool t.rng)
    | Some k -> (
        match parse_partial_key k with
        | Some mask when Array.length mask = n -> mask
        | Some _ | None ->
            invalid_arg "Crashsim.crash_partial: key does not match the buffered writes")
  in
  Array.iteri (fun i (blk, data) -> if mask.(i) then t.dev.Device.dev_write blk data) writes;
  t.last_key <- Some (partial_key mask);
  t.buffer <- []

let last_key t = t.last_key
let flushes t = t.flushes
