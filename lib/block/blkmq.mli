(** A blk-mq-style multi-queue asynchronous block layer.

    The paper names blk-mq as one of the performance-oriented components
    whose interactions make base filesystems buggy (§1, §2.3).  The base
    filesystem submits requests here; requests sit in per-queue software
    queues where same-block writes are merged, and complete in batches when
    the layer is kicked.  The shadow bypasses this layer entirely and reads
    the device synchronously — exactly the contrast Figure 2 draws. *)

type req
(** An in-flight request handle. *)

type stats = {
  submitted : int;
  completed : int;
  merged : int;  (** write requests absorbed by a later same-block write *)
  kicks : int;
  max_queue_depth : int;
}

type t

val create : ?nr_queues:int -> ?batch:int -> Device.t -> t
(** [create dev] builds the queueing layer; [nr_queues] software queues
    (default 4) are selected per-request round-robin, [batch] bounds how many
    requests one {!kick} dispatches per queue (default 32). *)

val submit_read : t -> int -> req
(** Enqueue a read of the given block.  The result is available from
    {!wait}. *)

val submit_write : t -> int -> bytes -> req
(** Enqueue a write.  If an earlier write to the same block is still queued
    in the same software queue it is merged (superseded). *)

val kick : t -> unit
(** Dispatch up to [batch] requests from every queue to the device. *)

val wait : t -> req -> bytes option
(** Drive the layer until [req] completes; [Some data] for reads, [None] for
    writes.  Propagates {!Device.Io_error} from the device. *)

val failed : req -> bool
(** True when the request completed with a device error (reported by the
    first {!wait}). *)

val drain : t -> unit
(** Complete everything outstanding and flush the device. *)

val in_flight : t -> int
val stats : t -> stats
val reset_stats : t -> unit

val set_tracer : t -> Rae_obs.Tracer.t -> unit
(** Attach a tracer; {!drain} then emits a [blkmq.destage] span whenever it
    actually has queued work to push out. *)

val register_obs : Rae_obs.Metrics.t -> ?prefix:string -> (unit -> t) -> unit
(** Register this layer's counters with a metrics registry.  The instance
    is re-read through the getter at every sample, so registration survives
    a contained reboot replacing the queue layer.  [prefix] defaults to
    ["blkmq"]. *)
