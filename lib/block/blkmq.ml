type rkind = Read | Write of bytes

type req = {
  block : int;
  kind : rkind;
  mutable state : [ `Queued | `Done of bytes option | `Failed of string | `Merged ];
}

type stats = {
  submitted : int;
  completed : int;
  merged : int;
  kicks : int;
  max_queue_depth : int;
}

type t = {
  dev : Device.t;
  queues : req Queue.t array;
  batch : int;
  mutable next_queue : int;
  mutable s_submitted : int;
  mutable s_completed : int;
  mutable s_merged : int;
  mutable s_kicks : int;
  mutable s_maxdepth : int;
  mutable tracer : Rae_obs.Tracer.t option;
}

let create ?(nr_queues = 4) ?(batch = 32) dev =
  if nr_queues <= 0 || batch <= 0 then invalid_arg "Blkmq.create";
  {
    dev;
    queues = Array.init nr_queues (fun _ -> Queue.create ());
    batch;
    next_queue = 0;
    s_submitted = 0;
    s_completed = 0;
    s_merged = 0;
    s_kicks = 0;
    s_maxdepth = 0;
    tracer = None;
  }

let set_tracer t tr = t.tracer <- Some tr

let depth t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues

let enqueue t req =
  let q = t.queues.(t.next_queue) in
  t.next_queue <- (t.next_queue + 1) mod Array.length t.queues;
  (* Write merging: a queued write to the same block is superseded by the
     new one, like request merging in the software queues of blk-mq. *)
  (match req.kind with
  | Write _ ->
      Queue.iter
        (fun r ->
          match (r.state, r.kind) with
          | `Queued, Write _ when r.block = req.block ->
              r.state <- `Merged;
              t.s_merged <- t.s_merged + 1
          | _ -> ())
        q
  | Read -> ());
  Queue.add req q;
  t.s_submitted <- t.s_submitted + 1;
  t.s_maxdepth <- max t.s_maxdepth (depth t)

let submit_read t block =
  let req = { block; kind = Read; state = `Queued } in
  enqueue t req;
  req

let submit_write t block data =
  let req = { block; kind = Write (Bytes.copy data); state = `Queued } in
  enqueue t req;
  req

let dispatch_one t req =
  match req.state with
  | `Done _ | `Failed _ | `Merged -> ()
  | `Queued -> (
      match req.kind with
      | Read -> (
          match t.dev.Device.dev_read req.block with
          | data ->
              req.state <- `Done (Some data);
              t.s_completed <- t.s_completed + 1
          | exception Device.Io_error msg ->
              req.state <- `Failed msg;
              t.s_completed <- t.s_completed + 1)
      | Write data -> (
          match t.dev.Device.dev_write req.block data with
          | () ->
              req.state <- `Done None;
              t.s_completed <- t.s_completed + 1
          | exception Device.Io_error msg ->
              req.state <- `Failed msg;
              t.s_completed <- t.s_completed + 1))

let kick t =
  t.s_kicks <- t.s_kicks + 1;
  Array.iter
    (fun q ->
      let n = min t.batch (Queue.length q) in
      for _ = 1 to n do
        let req = Queue.pop q in
        dispatch_one t req
      done)
    t.queues

let rec wait t req =
  match req.state with
  | `Done data -> data
  | `Failed msg -> raise (Device.Io_error msg)
  | `Merged -> None  (* superseded write: the merging write carries the data *)
  | `Queued ->
      kick t;
      wait t req

let failed req = match req.state with `Failed _ -> true | `Queued | `Done _ | `Merged -> false

let drain t =
  let flush_all () =
    while depth t > 0 do
      kick t
    done;
    Device.flush t.dev
  in
  match t.tracer with
  | Some tr when depth t > 0 -> Rae_obs.Tracer.with_span tr ~cat:"io" "blkmq.destage" flush_all
  | _ -> flush_all ()

let in_flight t = depth t

let stats t =
  {
    submitted = t.s_submitted;
    completed = t.s_completed;
    merged = t.s_merged;
    kicks = t.s_kicks;
    max_queue_depth = t.s_maxdepth;
  }

let reset_stats t =
  t.s_submitted <- 0;
  t.s_completed <- 0;
  t.s_merged <- 0;
  t.s_kicks <- 0;
  t.s_maxdepth <- 0

(* Registration goes through a getter so the sampled instance can change
   underneath the registry (a contained reboot replaces the queue layer). *)
let register_obs reg ?(prefix = "blkmq") get =
  let c name help sample =
    Rae_obs.Metrics.register_counter reg ~help
      ~reset:(fun () -> reset_stats (get ()))
      (prefix ^ "_" ^ name)
      (fun () -> sample (get ()))
  in
  c "submitted_total" "block requests submitted" (fun t -> t.s_submitted);
  c "completed_total" "block requests completed" (fun t -> t.s_completed);
  c "merged_total" "same-block writes merged in the software queues" (fun t -> t.s_merged);
  c "kicks_total" "dispatch kicks" (fun t -> t.s_kicks);
  Rae_obs.Metrics.register_gauge reg ~help:"high-water software queue depth"
    (prefix ^ "_max_queue_depth")
    (fun () -> float_of_int (get ()).s_maxdepth);
  Rae_obs.Metrics.register_gauge reg ~help:"requests currently queued"
    (prefix ^ "_in_flight")
    (fun () -> float_of_int (depth (get ())))
