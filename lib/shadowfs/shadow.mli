(** The shadow filesystem.

    The paper's robustness-first alternative implementation (§2.3, §3.3):

    - {b single-threaded, synchronous}: every operation runs to completion
      against the device, no queues, no asynchronous state.  Path lookup
      conceptually walks from the root inode; with [fast_paths] (the
      default) the walk is served from in-memory read caches — decoded
      inodes, per-directory name indexes and a generation-guarded
      resolution cache — that are provably coherent because every mutation
      funnels through the same few writers.  Setting [fast_paths] to
      [false] restores the literal walk-and-scan execution (the two are
      property-tested equivalent);
    - {b never writes to disk}: all updates land in a copy-on-write
      {!Overlay}; {!dirty_blocks} is the recovery hand-off payload;
    - {b extensive runtime checks}: with [checks] enabled (the default)
      every structural read verifies checksums and structure, every
      allocator transition is double-checked against the bitmaps, and the
      superblock summaries are revalidated after every mutation.  A failed
      check raises {!Violation} — the shadow refuses to continue on a bad
      image rather than corrupting further;
    - {b same API and on-disk format as the base}: it satisfies
      {!Rae_vfs.Fs_intf.S} over rfs images, so traces recorded against the
      base replay directly.

    [fsync]/[sync] are accepted as no-ops: the shadow has nothing volatile
    to flush because it never writes; during recovery RAE delegates real
    sync work back to the rebooted base (paper §3.3, "API support"). *)

exception Violation of string
(** An invariant check failed: the input image or a recorded operation is
    inconsistent.  Recovery aborts safely when this escapes. *)

type config = {
  checks : bool;  (** runtime invariant checking (default true) *)
  fsck_on_attach : bool;
      (** run the full {!Rae_fsck.Fsck.check} before accepting the image —
          the paper's verified-FSCK liveness requirement (default false
          here; RAE recovery turns it on) *)
  max_fds : int;
  fast_paths : bool;
      (** serve lookups from coherent in-memory caches and defer
          bitmap/superblock write-back to mutation boundaries (default
          true).  [false] gives the naive walk-everything execution —
          observably equivalent, and kept as the benchmark baseline. *)
  fsck_pool : Rae_par.Pool.t option;
      (** domain pool for the attach-time fsck's parallel passes (default
          [None]: sequential).  Emits a [par-fsck] span when active. *)
}

val default_config : config

type t

val attach : ?config:config -> ?tracer:Rae_obs.Tracer.t -> Rae_block.Device.t -> (t, string) result
(** Bind to an rfs image.  The device is wrapped read-only.  Validates the
    superblock and both bitmaps (strict); with [fsck_on_attach] the whole
    image (emitting an [fsck] span on [tracer] when one is supplied). *)

include Rae_vfs.Fs_intf.S with type t := t

val exec : t -> Rae_vfs.Op.t -> Rae_vfs.Op.outcome
(** Autonomous mode (paper §3.2): the shadow makes its own policy
    decisions (inode numbers, descriptor numbers, block placement). *)

type constrained_result =
  | Matches  (** re-execution reproduced the recorded outcome exactly *)
  | Divergence of Rae_vfs.Op.outcome
      (** what the shadow computed instead — a §4.3 discrepancy *)
  | Skipped_error
      (** the base had returned an error; the shadow omits the op (§3.2) *)
  | Skipped_sync  (** sync-family op: nothing for a never-writing shadow to do *)

val exec_constrained : t -> Rae_vfs.Op.recorded -> constrained_result
(** Constrained mode (paper §3.2): re-execute a recorded operation and
    validate the base's outcome — including its inode and descriptor
    allocations — rather than trusting the shadow's own answer blindly.
    On [Divergence] the shadow's state reflects the shadow's outcome (the
    trusted answer); the caller decides whether to continue. *)

type window_result = {
  w_ops : int;  (** entries processed (including skips) *)
  w_matches : int;
  w_divergences : int;
  w_skipped : int;  (** error-outcome and sync entries *)
}

val exec_constrained_window : t -> Rae_vfs.Op.recorded list -> window_result
(** Batched constrained execution: run a whole checkpoint-fold window in
    one pass, deferring the per-mutation superblock/bitmap write-back and
    summary re-check to the end of the window.  Equivalent to folding
    {!exec_constrained} over the list — every state comparison in this
    repository is view-level, and the only physical difference is the
    overlay superblock's generation count.  A {!Violation} raised mid-
    window still leaves the overlay write-back consistent before
    propagating.  Windows do not nest. *)

val dirty_blocks : t -> (int * bytes) list
(** The overlay: every block the shadow would have written. *)

val fd_table : t -> (Rae_vfs.Types.fd * Rae_vfs.Types.ino * Rae_vfs.Types.open_flags) list
(** Sorted snapshot of the descriptor table.  Comparators should prefer
    {!fd_count}/{!fd_iter}/{!fd_lookup}, which probe the live table
    without materializing a list. *)

val fd_count : t -> int

val fd_iter :
  t -> (Rae_vfs.Types.fd -> Rae_vfs.Types.ino -> Rae_vfs.Types.open_flags -> unit) -> unit

val fd_lookup :
  t -> Rae_vfs.Types.fd -> (Rae_vfs.Types.ino * Rae_vfs.Types.open_flags) option

val install_fd :
  t -> fd:Rae_vfs.Types.fd -> ino:Rae_vfs.Types.ino -> Rae_vfs.Types.open_flags -> (unit, string) result
(** Pre-seed the descriptor table during recovery: descriptors that were
    already open at the trusted on-disk state S0 (recorded by RAE at the
    last commit) are reinstated before the operation window is replayed.
    Validates that the inode is allocated and of a kind that can be open. *)

val time : t -> int64
val set_time : t -> int64 -> unit

type state = {
  st_overlay : (int * bytes) list;  (** the COW overlay, as {!dirty_blocks} *)
  st_fds : (Rae_vfs.Types.fd * Rae_vfs.Types.ino * Rae_vfs.Types.open_flags) list;
  st_time : int64;
}
(** A portable snapshot of everything a shadow instance holds beyond the
    device: the overlay, the descriptor table and the logical clock.  The
    warm-checkpoint subsystem exports this from a background instance and
    seeds recovery replay from it. *)

val export_state : t -> state
(** Snapshot the instance.  All block payloads are fresh copies, so the
    snapshot stays valid however the source instance evolves. *)

val attach_from : ?config:config -> state -> Rae_block.Device.t -> (t, string) result
(** Replay-from-state entry point: build a fresh instance over [dev] with
    the snapshot's overlay pre-loaded (imported {e before} the superblock
    and bitmaps are decoded, so the strict attach-time validation runs
    against the imported state), the descriptor table reinstated through
    {!install_fd}, and the clock restored.  Never runs fsck: the exporter
    was validating every operation as it folded them, which is the
    liveness argument a cold attach gets from [fsck_on_attach]. *)

val checks_performed : t -> int
(** Number of runtime invariant checks executed so far (bench E6). *)

val device_reads : t -> int
(** Blocks fetched from the device (overlay misses). *)
