module Device = Rae_block.Device

type t = {
  dev : Device.t;  (* read-only *)
  blocks : (int, bytes) Hashtbl.t;
  (* Atomic: parallel fsck reads through a freshly-attached overlay from
     several domains at once (the Hashtbl itself is read-only on that
     path, but the miss counter is not). *)
  device_reads : int Atomic.t;
}

let create dev = { dev = Device.read_only dev; blocks = Hashtbl.create 64; device_reads = Atomic.make 0 }

let read t blk =
  match Hashtbl.find_opt t.blocks blk with
  | Some b -> Bytes.copy b
  | None ->
      Atomic.incr t.device_reads;
      Device.read t.dev blk

let write t blk data =
  if blk < 0 || blk >= Device.nblocks t.dev then
    invalid_arg (Printf.sprintf "Overlay.write: block %d out of range" blk);
  if Bytes.length data <> Device.block_size t.dev then
    invalid_arg "Overlay.write: wrong block size";
  (* Re-use the stored buffer when the block is already shadowed: stored
     bytes never escape uncopied ([read]/[dirty] copy on the way out), so
     blitting in place is unobservable — and it keeps hot blocks
     (superblock, bitmaps, inode table, directories) from churning one
     promoted-then-garbage 4 KiB buffer per write. *)
  match Hashtbl.find_opt t.blocks blk with
  | Some stored -> Bytes.blit data 0 stored 0 (Bytes.length data)
  | None -> Hashtbl.add t.blocks blk (Bytes.copy data)

let view t blk f =
  match Hashtbl.find_opt t.blocks blk with
  | Some stored -> f stored
  | None ->
      Atomic.incr t.device_reads;
      f (Device.read t.dev blk)

let rmw t blk f =
  if blk < 0 || blk >= Device.nblocks t.dev then
    invalid_arg (Printf.sprintf "Overlay.rmw: block %d out of range" blk);
  match Hashtbl.find_opt t.blocks blk with
  | Some stored -> ignore (f stored : bool)
  | None ->
      Atomic.incr t.device_reads;
      (* The device hands back a fresh buffer, so ownership transfers to
         the overlay — but only if [f] actually changed it; an untouched
         block must not show up in the dirty set. *)
      let b = Device.read t.dev blk in
      if f b then Hashtbl.add t.blocks blk b

let import t blocks = List.iter (fun (blk, data) -> write t blk data) blocks
let mem t blk = Hashtbl.mem t.blocks blk

let dirty t =
  Hashtbl.fold (fun blk data acc -> (blk, Bytes.copy data) :: acc) t.blocks []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let dirty_count t = Hashtbl.length t.blocks
let block_size t = Device.block_size t.dev
let nblocks t = Device.nblocks t.dev
let reads_from_device t = Atomic.get t.device_reads
