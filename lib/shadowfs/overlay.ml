module Device = Rae_block.Device

type t = {
  dev : Device.t;  (* read-only *)
  blocks : (int, bytes) Hashtbl.t;
  mutable device_reads : int;
}

let create dev = { dev = Device.read_only dev; blocks = Hashtbl.create 64; device_reads = 0 }

let read t blk =
  match Hashtbl.find_opt t.blocks blk with
  | Some b -> Bytes.copy b
  | None ->
      t.device_reads <- t.device_reads + 1;
      Device.read t.dev blk

let write t blk data =
  if blk < 0 || blk >= Device.nblocks t.dev then
    invalid_arg (Printf.sprintf "Overlay.write: block %d out of range" blk);
  if Bytes.length data <> Device.block_size t.dev then
    invalid_arg "Overlay.write: wrong block size";
  Hashtbl.replace t.blocks blk (Bytes.copy data)

let import t blocks = List.iter (fun (blk, data) -> write t blk data) blocks
let mem t blk = Hashtbl.mem t.blocks blk

let dirty t =
  Hashtbl.fold (fun blk data acc -> (blk, Bytes.copy data) :: acc) t.blocks []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let dirty_count t = Hashtbl.length t.blocks
let block_size t = Device.block_size t.dev
let nblocks t = Device.nblocks t.dev
let reads_from_device t = t.device_reads
