open Rae_vfs
open Rae_format
module Device = Rae_block.Device

exception Violation of string

type config = {
  checks : bool;
  fsck_on_attach : bool;
  max_fds : int;
  fast_paths : bool;
  fsck_pool : Rae_par.Pool.t option;
}

let default_config =
  { checks = true; fsck_on_attach = false; max_fds = 1024; fast_paths = true; fsck_pool = None }

type fdinfo = { fino : Types.ino; fflags : Types.open_flags }

(* In-memory index over one directory's dirent blocks: name -> entry, plus
   a memoized sorted name listing for readdir.  Built lazily from the
   (validated) blocks, then maintained incrementally by the dirent
   mutators, and dropped whenever the directory's inode is freed.

   [loc] maps each name to the logical directory block holding its slot,
   so removal touches exactly one block.  [free_hint] bounds the insert
   scan: every dir block strictly below it is known to have no free slot
   (inserts advance it past blocks they found full; removals lower it). *)
type dir_index = {
  by_name : (string, Dirent.entry) Hashtbl.t;
  loc : (string, int) Hashtbl.t;
  mutable free_hint : int;
  mutable sorted : string list option;
}

type t = {
  ov : Overlay.t;
  reader : Reader.t;
  geo : Layout.geometry;
  cfg : config;
  mutable sb : Superblock.t;
  ibm : Bitmap.t;
  bbm : Bitmap.t;
  fds : (int, fdinfo) Hashtbl.t;
  orphans : (int, unit) Hashtbl.t;
  mutable time : int64;
  mutable nchecks : int;
  (* Fast-path state (all bypassed when [cfg.fast_paths] is false).
     [gen] is the namespace generation: bumped on every dirent mutation
     and inode free, it guards [rcache] — a resolution cached under an
     older generation is never believed.  [icache] holds decoded inodes
     (coherent because [write_inode]/[free_ino] are the only writers);
     [dcache] holds per-directory {!dir_index}es.  [ino_hint]/[fd_hint]
     are lowest-free allocation hints: every id strictly below the hint
     is allocated.  [batch] marks an {!exec_constrained_window} in
     flight: mutation epilogues then defer superblock/bitmap write-back
     and summary checks to the end of the window ([sb_dirty],
     [ibm_dirty], [bbm_dirty] track what is pending). *)
  mutable gen : int;
  icache : (int, Inode.t) Hashtbl.t;
  dcache : (int, dir_index) Hashtbl.t;
  rcache : (string list * bool, int * int) Hashtbl.t;
  mutable ino_hint : int;
  mutable fd_hint : int;
  mutable batch : bool;
  mutable sb_dirty : bool;
  mutable ibm_dirty : bool;
  mutable bbm_dirty : bool;
}

let violation fmt = Format.kasprintf (fun s -> raise (Violation s)) fmt

(* A runtime check: counted, and fatal when it fails.  The failure message
   is only formatted on failure — the success path must not pay for
   [kasprintf] (it used to, and it dominated the cost of every check). *)
let check t cond fmt =
  if t.cfg.checks then begin
    t.nchecks <- t.nchecks + 1;
    if not cond then Format.kasprintf (fun msg -> raise (Violation msg)) fmt
    else Format.ikfprintf ignore Format.str_formatter fmt
  end
  else Format.ikfprintf ignore Format.str_formatter fmt

let dir_kind_code = Types.kind_code Types.Directory

(* ---- attach ---- *)

let mk_t ov reader config ~ibm ~bbm ~time =
  {
    ov;
    reader;
    geo = Reader.geometry reader;
    cfg = config;
    sb = reader.Reader.sb;
    ibm;
    bbm;
    fds = Hashtbl.create 64;
    orphans = Hashtbl.create 16;
    time;
    nchecks = 0;
    gen = 0;
    icache = Hashtbl.create 256;
    dcache = Hashtbl.create 64;
    rcache = Hashtbl.create 256;
    ino_hint = 1;
    fd_hint = 0;
    batch = false;
    sb_dirty = false;
    ibm_dirty = false;
    bbm_dirty = false;
  }

let attach ?(config = default_config) ?tracer dev =
  let ov = Overlay.create dev in
  let read blk = Overlay.read ov blk in
  if config.fsck_on_attach then begin
    let run () = Rae_fsck.Fsck.check ?pool:config.fsck_pool read in
    let report =
      match tracer with
      | Some tr ->
          Rae_obs.Tracer.with_span tr ~cat:"recovery" "fsck" (fun () ->
              match config.fsck_pool with
              | Some p when Rae_par.Pool.size p > 1 ->
                  (* Nested span so traces show when the pool carried the
                     scan: fsck = total, par-fsck = the parallel passes. *)
                  Rae_obs.Tracer.with_span tr ~cat:"recovery" "par-fsck" run
              | Some _ | None -> run ())
      | None -> run ()
    in
    if not (Rae_fsck.Fsck.clean report) then
      Error
        (match Rae_fsck.Fsck.errors report with
        | [] -> "fsck rejected the image"
        | f :: _ -> Format.asprintf "fsck rejected the image: %a" Rae_fsck.Fsck.pp_finding f)
    else
      match Reader.attach read with
      | Error e -> Error (Reader.error_to_string e)
      | Ok reader -> (
          match (Reader.load_inode_bitmap reader, Reader.load_block_bitmap reader) with
          | Ok ibm, Ok bbm ->
              Ok (mk_t ov reader config ~ibm ~bbm ~time:reader.Reader.sb.Superblock.fs_time)
          | Error e, _ | _, Error e -> Error (Reader.error_to_string e))
  end
  else
    match Reader.attach read with
    | Error e -> Error (Reader.error_to_string e)
    | Ok reader -> (
        match (Reader.load_inode_bitmap reader, Reader.load_block_bitmap reader) with
        | Ok ibm, Ok bbm ->
            Ok (mk_t ov reader config ~ibm ~bbm ~time:reader.Reader.sb.Superblock.fs_time)
        | Error e, _ | _, Error e -> Error (Reader.error_to_string e))

(* ---- superblock / bitmap write-back (into the overlay) ---- *)

let flush_sb t =
  let sb =
    {
      t.sb with
      Superblock.fs_time = t.time;
      generation = Int64.add t.sb.Superblock.generation 1L;
      state = Superblock.Clean;
    }
  in
  t.sb <- sb;
  Overlay.write t.ov 0 (Superblock.encode sb)

let flush_bitmap t which =
  let bm, start =
    match which with
    | `Inode -> (t.ibm, t.geo.Layout.inode_bitmap_start)
    | `Block -> (t.bbm, t.geo.Layout.block_bitmap_start)
  in
  List.iteri (fun i b -> Overlay.write t.ov (start + i) b)
    (Bitmap.to_blocks bm ~block_size:Layout.block_size)

(* On the fast path a bitmap change only marks the bitmap dirty; the
   serialization into the overlay happens once per mutation (or once per
   fold window) instead of on every alloc/free.  Aborted mutations that
   allocated and then freed are net-zero: the overlay keeps its pre-op
   bitmap blocks, which equal the rolled-back in-memory bitmaps, so the
   op-boundary invariant "overlay == in-memory" still holds. *)
let mark_bitmap_dirty t which =
  if t.cfg.fast_paths then
    match which with
    | `Inode -> t.ibm_dirty <- true
    | `Block -> t.bbm_dirty <- true
  else flush_bitmap t which

let flush_dirty_bitmaps t =
  if t.ibm_dirty then begin
    t.ibm_dirty <- false;
    flush_bitmap t `Inode
  end;
  if t.bbm_dirty then begin
    t.bbm_dirty <- false;
    flush_bitmap t `Block
  end

(* Post-mutation summary invariant: superblock counters must agree with the
   bitmaps — the "validate upon sync" style check the base skips. *)
let check_summaries t =
  if t.cfg.checks then begin
    check t
      (Bitmap.count_free t.ibm = t.sb.Superblock.free_inodes)
      "superblock free_inodes diverges from the inode bitmap";
    check t
      (Bitmap.count_free t.bbm = t.sb.Superblock.free_blocks)
      "superblock free_blocks diverges from the block bitmap"
  end

(* ---- inode IO ---- *)

let inode_allocated t ino = ino >= 1 && ino <= t.geo.Layout.ninodes && Bitmap.test t.ibm ino

let read_inode_slow t ino =
  check t (inode_allocated t ino) "read of unallocated inode %d" ino;
  let blk, pos = Layout.inode_location t.geo ino in
  let b = Overlay.read t.ov blk in
  if t.cfg.checks then begin
    t.nchecks <- t.nchecks + 1;
    match Inode.decode b ~pos ~ino with
    | Ok inode -> inode
    | Error e -> violation "inode %d: %s" ino (Inode.error_to_string e)
  end
  else Inode.decode_nocheck b ~pos

(* The cache stays coherent because [write_inode] and [free_ino] are the
   only writers of inode slots, and both update it.  Nothing mutates a
   cached record in place: every updater builds [{ inode with ... }] and
   copies the [direct] array before changing it. *)
let read_inode t ino =
  if not t.cfg.fast_paths then read_inode_slow t ino
  else
    match Hashtbl.find_opt t.icache ino with
    | Some inode -> inode
    | None ->
        let inode = read_inode_slow t ino in
        Hashtbl.replace t.icache ino inode;
        inode

let write_inode t ino inode =
  let blk, pos = Layout.inode_location t.geo ino in
  Overlay.rmw t.ov blk (fun b ->
      Inode.encode inode ~ino b ~pos;
      true);
  if t.cfg.fast_paths then Hashtbl.replace t.icache ino inode

let clear_inode_slot t ino =
  let blk, pos = Layout.inode_location t.geo ino in
  Overlay.rmw t.ov blk (fun b ->
      Bytes.fill b pos Layout.inode_size '\000';
      true)

(* ---- allocation ---- *)

(* Namespace generation bump: invalidates every cached resolution. *)
let bump_gen t = t.gen <- t.gen + 1

(* Still exact lowest-free — the spec/shadow/base agreement depends on
   that — but the scan starts at the hint, below which every inode is
   known allocated.  Advancing the hint to the found id is safe even if
   the caller aborts and never claims it: the invariant only covers ids
   strictly below the hint. *)
let alloc_ino t =
  let from = if t.cfg.fast_paths then max 1 t.ino_hint else 1 in
  match Bitmap.find_free t.ibm ~from with
  | None -> Error Errno.ENOSPC
  | Some ino ->
      (match Bitmap.set_result t.ibm ino with
      | Ok () -> ()
      | Error msg -> violation "inode allocation: %s" msg);
      t.ino_hint <- ino;
      t.sb <- { t.sb with Superblock.free_inodes = t.sb.Superblock.free_inodes - 1 };
      mark_bitmap_dirty t `Inode;
      Ok ino

let free_ino t ino =
  (match Bitmap.clear_result t.ibm ino with
  | Ok () -> ()
  | Error msg -> violation "inode free: %s" msg);
  if ino < t.ino_hint then t.ino_hint <- ino;
  Hashtbl.remove t.icache ino;
  Hashtbl.remove t.dcache ino;
  bump_gen t;
  t.sb <- { t.sb with Superblock.free_inodes = t.sb.Superblock.free_inodes + 1 };
  clear_inode_slot t ino;
  mark_bitmap_dirty t `Inode

(* Next-fit, mirroring the base's allocator discipline (the rotor starts
   at zero on attach, so a fresh shadow is deterministic).  Constrained-
   mode replay compares operation outcomes, which never expose physical
   block numbers, so the shadow is free to place data wherever its own
   bitmap permits. *)
let alloc_block t =
  match Bitmap.find_free_next t.bbm ~lo:t.geo.Layout.data_start with
  | None -> Error Errno.ENOSPC
  | Some blk ->
      (match Bitmap.set_result t.bbm blk with
      | Ok () -> ()
      | Error msg -> violation "block allocation: %s" msg);
      t.sb <- { t.sb with Superblock.free_blocks = t.sb.Superblock.free_blocks - 1 };
      (* A fresh block must read as zeroes regardless of stale medium
         content. *)
      Overlay.write t.ov blk (Bytes.make Layout.block_size '\000');
      mark_bitmap_dirty t `Block;
      Ok blk

let free_block t blk =
  check t (Reader.valid_data_block t.geo blk) "freeing non-data block %d" blk;
  (match Bitmap.clear_result t.bbm blk with
  | Ok () -> ()
  | Error msg -> violation "block free: %s" msg);
  t.sb <- { t.sb with Superblock.free_blocks = t.sb.Superblock.free_blocks + 1 };
  mark_bitmap_dirty t `Block

(* ---- logical->physical block mapping ---- *)

let ppb = Layout.pointers_per_block

let get_block t inode idx =
  match Reader.file_block t.reader inode idx with
  | Ok blk -> blk
  | Error e -> violation "%s" (Reader.error_to_string e)

let ptr_get b i = Rae_util.Codec.get_u32_int b (4 * i)
let ptr_set b i v = Rae_util.Codec.set_u32_int b (4 * i) v

(* Point logical block [idx] of [inode] at [phys], allocating indirect
   blocks as needed.  Returns the updated inode (not yet written). *)
let set_block t inode idx phys =
  if idx < 0 || idx >= Layout.max_file_blocks then violation "set_block: index %d out of range" idx;
  if idx < Layout.direct_pointers then begin
    let direct = Array.copy inode.Inode.direct in
    direct.(idx) <- phys;
    Ok { inode with Inode.direct }
  end
  else
    let idx1 = idx - Layout.direct_pointers in
    if idx1 < ppb then
      let ensure =
        if inode.Inode.indirect = 0 then Result.map (fun b -> (b, { inode with Inode.indirect = b })) (alloc_block t)
        else Ok (inode.Inode.indirect, inode)
      in
      Result.map
        (fun (iblk, inode) ->
          Overlay.rmw t.ov iblk (fun b ->
              ptr_set b idx1 phys;
              true);
          inode)
        ensure
    else
      let idx2 = idx1 - ppb in
      let ensure_d =
        if inode.Inode.double_indirect = 0 then
          Result.map (fun b -> (b, { inode with Inode.double_indirect = b })) (alloc_block t)
        else Ok (inode.Inode.double_indirect, inode)
      in
      Result.bind ensure_d (fun (dblk, inode) ->
          let db = Overlay.read t.ov dblk in
          let l1_index = idx2 / ppb in
          let ensure_l1 =
            let l1 = ptr_get db l1_index in
            if l1 = 0 then
              Result.map
                (fun b ->
                  ptr_set db l1_index b;
                  Overlay.write t.ov dblk db;
                  b)
                (alloc_block t)
            else Ok l1
          in
          Result.map
            (fun l1blk ->
              let lb = Overlay.read t.ov l1blk in
              ptr_set lb (idx2 mod ppb) phys;
              Overlay.write t.ov l1blk lb;
              inode)
            ensure_l1)

(* Free all data blocks with logical index >= keep, then prune the pointer
   structures.  Returns the updated inode. *)
let shrink_blocks t inode ~keep =
  let old_n = Inode.blocks_for_size inode.Inode.size in
  for idx = keep to old_n - 1 do
    let phys = get_block t inode idx in
    if phys <> 0 then free_block t phys
  done;
  (* Direct pointers. *)
  let direct = Array.copy inode.Inode.direct in
  for idx = max keep 0 to Layout.direct_pointers - 1 do
    if idx >= keep then direct.(idx) <- 0
  done;
  let inode = { inode with Inode.direct } in
  (* Single indirect. *)
  let base1 = Layout.direct_pointers in
  let inode =
    if inode.Inode.indirect = 0 then inode
    else if keep <= base1 then begin
      free_block t inode.Inode.indirect;
      { inode with Inode.indirect = 0 }
    end
    else begin
      Overlay.rmw t.ov inode.Inode.indirect (fun b ->
          for i = keep - base1 to ppb - 1 do
            ptr_set b i 0
          done;
          true);
      inode
    end
  in
  (* Double indirect. *)
  let base2 = Layout.direct_pointers + ppb in
  let inode =
    if inode.Inode.double_indirect = 0 then inode
    else begin
      let db = Overlay.read t.ov inode.Inode.double_indirect in
      let keep2 = max 0 (keep - base2) in
      for i = 0 to ppb - 1 do
        let l1 = ptr_get db i in
        if l1 <> 0 then begin
          if i * ppb >= keep2 then begin
            free_block t l1;
            ptr_set db i 0
          end
          else if (i + 1) * ppb > keep2 then
            Overlay.rmw t.ov l1 (fun lb ->
                for j = keep2 - (i * ppb) to ppb - 1 do
                  ptr_set lb j 0
                done;
                true)
        end
      done;
      if keep <= base2 then begin
        free_block t inode.Inode.double_indirect;
        { inode with Inode.double_indirect = 0 }
      end
      else begin
        Overlay.write t.ov inode.Inode.double_indirect db;
        inode
      end
    end
  in
  inode

(* ---- file data IO ---- *)

let read_range t inode ~off ~len =
  let size = inode.Inode.size in
  if off >= size then ""
  else begin
    let len = min len (size - off) in
    let buf = Bytes.create len in
    let pos = ref 0 in
    while !pos < len do
      let abs = off + !pos in
      let idx = abs / Layout.block_size and boff = abs mod Layout.block_size in
      let chunk = min (Layout.block_size - boff) (len - !pos) in
      let phys = get_block t inode idx in
      if phys = 0 then Bytes.fill buf !pos chunk '\000'
      else Overlay.view t.ov phys (fun b -> Bytes.blit b boff buf !pos chunk);
      pos := !pos + chunk
    done;
    Bytes.to_string buf
  end

(* Write [data] at byte offset [off]; allocates blocks and extends the
   size.  Returns the updated inode or ENOSPC. *)
let write_range t inode ~off data =
  let len = String.length data in
  let rec go inode pos =
    if pos >= len then Ok inode
    else begin
      let abs = off + pos in
      let idx = abs / Layout.block_size and boff = abs mod Layout.block_size in
      let chunk = min (Layout.block_size - boff) (len - pos) in
      let phys = get_block t inode idx in
      let with_block =
        if phys <> 0 then Ok (inode, phys)
        else
          Result.bind (alloc_block t) (fun blk ->
              Result.map (fun inode -> (inode, blk)) (set_block t inode idx blk))
      in
      match with_block with
      | Error e -> Error e
      | Ok (inode, phys) ->
          Overlay.rmw t.ov phys (fun b ->
              Bytes.blit_string data pos b boff chunk;
              true);
          go inode (pos + chunk)
    end
  in
  Result.map (fun inode -> { inode with Inode.size = max inode.Inode.size (off + len) }) (go inode 0)

(* ---- directory operations ---- *)

let dir_nblocks inode = Inode.blocks_for_size inode.Inode.size

let dir_phys t inode idx =
  let phys = get_block t inode idx in
  check t (phys <> 0) "directory has a hole at block %d" idx;
  if phys = 0 then violation "directory hole at block %d" idx;
  phys

let dir_block t inode idx =
  let phys = dir_phys t inode idx in
  (phys, Overlay.read t.ov phys)

let dir_entries_of_block t b =
  if t.cfg.checks then begin
    t.nchecks <- t.nchecks + 1;
    match Dirent.list b with
    | Ok entries -> entries
    | Error e -> violation "directory block: %s" (Dirent.error_to_string e)
  end
  else Dirent.list_nocheck b

let dir_scan_find t inode name =
  let n = dir_nblocks inode in
  let rec go idx =
    if idx >= n then None
    else
      let _, b = dir_block t inode idx in
      match List.find_opt (fun e -> String.equal e.Dirent.name name) (dir_entries_of_block t b) with
      | Some e -> Some e
      | None -> go (idx + 1)
  in
  go 0

let dir_list t inode =
  let n = dir_nblocks inode in
  let rec go idx acc =
    if idx >= n then acc
    else
      let _, b = dir_block t inode idx in
      go (idx + 1) (acc @ dir_entries_of_block t b)
  in
  go 0 []

(* The lazily built per-directory index.  The backing blocks are validated
   by [dir_entries_of_block] at build time; afterwards they only change
   through the mutators below, each of which updates the index in step. *)
let dir_index t ~dino dinode =
  match Hashtbl.find_opt t.dcache dino with
  | Some ix -> ix
  | None ->
      let by_name = Hashtbl.create 16 in
      let loc = Hashtbl.create 16 in
      let n = dir_nblocks dinode in
      for idx = 0 to n - 1 do
        let _, b = dir_block t dinode idx in
        List.iter
          (fun e ->
            Hashtbl.replace by_name e.Dirent.name e;
            Hashtbl.replace loc e.Dirent.name idx)
          (dir_entries_of_block t b)
      done;
      let ix = { by_name; loc; free_hint = 0; sorted = None } in
      Hashtbl.replace t.dcache dino ix;
      ix

let dir_find t ~dino dinode name =
  if t.cfg.fast_paths then Hashtbl.find_opt (dir_index t ~dino dinode).by_name name
  else dir_scan_find t dinode name

let dir_is_empty t ~dino dinode =
  if t.cfg.fast_paths then begin
    let exception Nonempty in
    let ix = dir_index t ~dino dinode in
    try
      Hashtbl.iter
        (fun name _ -> if name <> "." && name <> ".." then raise Nonempty)
        ix.by_name;
      true
    with Nonempty -> false
  end
  else List.for_all (fun e -> e.Dirent.name = "." || e.Dirent.name = "..") (dir_list t dinode)

(* Names of a directory, "." and ".." excluded, sorted — the readdir view.
   Memoized on the index until the next entry mutation. *)
let dir_names t ~dino dinode =
  if t.cfg.fast_paths then begin
    let ix = dir_index t ~dino dinode in
    match ix.sorted with
    | Some names -> names
    | None ->
        let names =
          Hashtbl.fold
            (fun name _ acc -> if name = "." || name = ".." then acc else name :: acc)
            ix.by_name []
          |> List.sort compare
        in
        ix.sorted <- Some names;
        names
  end
  else
    dir_list t dinode
    |> List.filter_map (fun e ->
           if e.Dirent.name = "." || e.Dirent.name = ".." then None else Some e.Dirent.name)
    |> List.sort compare

(* Index maintenance for the dirent mutators: keep [by_name] in step when
   an index exists (else it will be rebuilt lazily from the blocks), and
   always bump the namespace generation. *)
let note_entry_added t ~dino entry =
  bump_gen t;
  match Hashtbl.find_opt t.dcache dino with
  | None -> ()
  | Some ix ->
      Hashtbl.replace ix.by_name entry.Dirent.name entry;
      ix.sorted <- None

let note_entry_removed t ~dino name =
  bump_gen t;
  match Hashtbl.find_opt t.dcache dino with
  | None -> ()
  | Some ix ->
      Hashtbl.remove ix.by_name name;
      ix.sorted <- None

(* Insert an entry, growing the directory by one block if necessary.
   Returns the updated directory inode.  On the fast path the scan for a
   free slot starts at the index's [free_hint] rather than block 0 — a
   growing directory would otherwise re-walk every full block on every
   insert, which turned one-directory workloads quadratic. *)
let dir_insert t ~dino dinode ~name ~ino ~kind_code =
  let n = dir_nblocks dinode in
  let ix = if t.cfg.fast_paths then Some (dir_index t ~dino dinode) else None in
  let placed idx =
    match ix with
    | Some ix ->
        ix.free_hint <- idx;
        Hashtbl.replace ix.loc name idx
    | None -> ()
  in
  let rec try_existing idx =
    if idx >= n then None
    else begin
      let phys = dir_phys t dinode idx in
      let inserted = ref false in
      Overlay.rmw t.ov phys (fun b ->
          inserted := Dirent.insert b ~name ~ino ~kind_code;
          !inserted);
      if !inserted then begin
        placed idx;
        Some dinode
      end
      else try_existing (idx + 1)
    end
  in
  let noted r =
    if Result.is_ok r then note_entry_added t ~dino { Dirent.ino; kind_code; name };
    r
  in
  let start = match ix with Some ix -> min ix.free_hint n | None -> 0 in
  match try_existing start with
  | Some dinode -> noted (Ok dinode)
  | None ->
      noted
        (Result.bind (alloc_block t) (fun blk ->
             let b = Dirent.empty_block () in
             if not (Dirent.insert b ~name ~ino ~kind_code) then
               violation "empty dir block refused insert";
             Overlay.write t.ov blk b;
             Result.map
               (fun dinode ->
                 placed n;
                 { dinode with Inode.size = dinode.Inode.size + Layout.block_size })
               (set_block t dinode n blk)))

(* Remove an entry.  On the fast path [loc] names the one block holding
   the slot; the full scan remains as the naive path and as a fallback. *)
let dir_remove t ~dino dinode ~name =
  let n = dir_nblocks dinode in
  let remove_at idx =
    if idx < 0 || idx >= n then false
    else begin
      let phys = dir_phys t dinode idx in
      let removed = ref false in
      Overlay.rmw t.ov phys (fun b ->
          removed := Dirent.remove b name;
          !removed);
      !removed
    end
  in
  let removed_at =
    let located =
      if t.cfg.fast_paths then
        match Hashtbl.find_opt (dir_index t ~dino dinode).loc name with
        | Some idx when remove_at idx -> Some idx
        | _ -> None
      else None
    in
    match located with
    | Some _ as r -> r
    | None ->
        let rec go idx =
          if idx >= n then None else if remove_at idx then Some idx else go (idx + 1)
        in
        go 0
  in
  match removed_at with
  | None -> false
  | Some idx ->
      (if t.cfg.fast_paths then begin
         let ix = dir_index t ~dino dinode in
         Hashtbl.remove ix.loc name;
         if idx < ix.free_hint then ix.free_hint <- idx
       end);
      note_entry_removed t ~dino name;
      true

let dir_set_dotdot t ~dino dinode ~parent =
  let phys = dir_phys t dinode 0 in
  let set = ref false in
  Overlay.rmw t.ov phys (fun b ->
      set := Dirent.set_entry_ino b ".." parent;
      !set);
  if not !set then violation "directory has no \"..\" entry";
  note_entry_added t ~dino { Dirent.ino = parent; kind_code = dir_kind_code; name = ".." }

(* ---- path resolution (from the root, with a generation-guarded cache) ---- *)

let rec walk t ino components ~follow_last ~budget =
  match components with
  | [] -> Ok ino
  | name :: rest -> (
      let inode = read_inode t ino in
      match inode.Inode.kind with
      | Types.Regular | Types.Symlink -> Error Errno.ENOTDIR
      | Types.Directory -> (
          match dir_find t ~dino:ino inode name with
          | None -> Error Errno.ENOENT
          | Some entry -> (
              let child = entry.Dirent.ino in
              check t (inode_allocated t child) "entry %S points to unallocated inode %d" name child;
              let cinode = read_inode t child in
              (if t.cfg.checks then
                 match Types.kind_of_code entry.Dirent.kind_code with
                 | Some k ->
                     check t (k = cinode.Inode.kind) "entry %S kind disagrees with inode %d" name child
                 | None -> violation "entry %S has invalid kind code" name);
              match cinode.Inode.kind with
              | Types.Symlink when rest <> [] || follow_last ->
                  if budget <= 0 then Error Errno.ELOOP
                  else
                    let target = read_range t cinode ~off:0 ~len:cinode.Inode.size in
                    (match Path.parse target with
                    | Error _ -> Error Errno.ENOENT
                    | Ok target_components ->
                        walk t Types.root_ino (target_components @ rest) ~follow_last
                          ~budget:(budget - 1))
              | Types.Regular | Types.Directory | Types.Symlink -> walk t child rest ~follow_last ~budget)))

(* Only successful resolutions are cached (a negative entry would also
   have to be invalidated on creation), and only believed while the
   namespace generation matches.  Symlink targets are immutable once
   created, so a cached resolution through a symlink can only go stale
   via namespace changes — which bump the generation. *)
let resolve t path ~follow_last =
  if not t.cfg.fast_paths then walk t Types.root_ino path ~follow_last ~budget:Types.max_symlink_depth
  else
    match Hashtbl.find_opt t.rcache (path, follow_last) with
    | Some (ino, g) when g = t.gen -> Ok ino
    | Some _ | None -> (
        let r = walk t Types.root_ino path ~follow_last ~budget:Types.max_symlink_depth in
        match r with
        | Ok ino ->
            if Hashtbl.length t.rcache > 512 then Hashtbl.reset t.rcache;
            Hashtbl.replace t.rcache (path, follow_last) (ino, t.gen);
            r
        | Error _ -> r)

let resolve_parent t path =
  match Path.split_last path with
  | None -> Error Errno.EEXIST
  | Some (parent, name) -> (
      match resolve t parent ~follow_last:true with
      | Error e -> Error e
      | Ok pino ->
          let pinode = read_inode t pino in
          if pinode.Inode.kind <> Types.Directory then Error Errno.ENOTDIR
          else Ok (pino, pinode, name))

(* ---- fd table ---- *)

(* Lowest-free, scanning from the hint (below which every fd is in use).
   [close] lowers the hint; [install_fd] only adds, which cannot break
   the invariant. *)
let alloc_fd t =
  let rec go i = if Hashtbl.mem t.fds i then go (i + 1) else i in
  let fd = go (if t.cfg.fast_paths then max 0 t.fd_hint else 0) in
  t.fd_hint <- fd;
  fd

(* Early exit on the first hit — the old [Hashtbl.fold] kept scanning the
   whole table after finding one. *)
let fd_refs t ino =
  let exception Found in
  try
    Hashtbl.iter (fun _ f -> if f.fino = ino then raise Found) t.fds;
    false
  with Found -> true

(* Reclaim a zero-linked file once nothing references it. *)
let maybe_reclaim t ino =
  let inode = read_inode t ino in
  if inode.Inode.nlink = 0 && not (fd_refs t ino) then begin
    let inode = shrink_blocks t inode ~keep:0 in
    ignore inode;
    Hashtbl.remove t.orphans ino;
    free_ino t ino
  end

(* ---- mutation epilogue ---- *)

let tick t =
  t.time <- Int64.add t.time 1L;
  t.time

(* Mutation epilogue.  Outside a fold window: write back any dirty
   bitmaps, flush the superblock and re-check the summary invariant.
   Inside a window ([batch]): just note that an epilogue is owed — the
   window runs it once at the end, amortizing the write-back and the
   summary check across the batched ops. *)
let finish_mutation t =
  if t.batch then t.sb_dirty <- true
  else begin
    flush_dirty_bitmaps t;
    flush_sb t;
    check_summaries t
  end

let touch t ino ~time =
  let inode = read_inode t ino in
  write_inode t ino { inode with Inode.mtime = time; ctime = time }

(* ---- guard: map device errors to EIO at the API boundary ---- *)

let guard f = try f () with Device.Io_error _ -> Error Errno.EIO

(* ---- the operations ---- *)

let mode_ok mode = mode land lnot 0o777 = 0

let create_node t path ~mode ~kind ~content =
  match resolve_parent t path with
  | Error e -> Error e
  | Ok (pino, pinode, name) -> (
      match dir_find t ~dino:pino pinode name with
      | Some _ -> Error Errno.EEXIST
      | None -> (
          match alloc_ino t with
          | Error e -> Error e
          | Ok ino ->
              let time = tick t in
              let result =
                let base = Inode.empty kind ~mode ~time in
                match kind with
                | Types.Directory ->
                    (* ".", "..", parent nlink bump. *)
                    Result.bind (alloc_block t) (fun blk ->
                        let b = Dirent.empty_block () in
                        ignore (Dirent.insert b ~name:"." ~ino ~kind_code:dir_kind_code);
                        ignore (Dirent.insert b ~name:".." ~ino:pino ~kind_code:dir_kind_code);
                        Overlay.write t.ov blk b;
                        let inode = { base with Inode.nlink = 2; size = Layout.block_size } in
                        Result.map (fun inode -> inode) (set_block t inode 0 blk))
                | Types.Regular -> Ok base
                | Types.Symlink ->
                    Result.map
                      (fun inode -> inode)
                      (write_range t { base with Inode.mode = 0o777 } ~off:0 content)
              in
              (match result with
              | Error e ->
                  (* Roll back the inode allocation; nothing else happened. *)
                  free_ino t ino;
                  t.time <- Int64.sub t.time 1L;
                  Error e
              | Ok inode -> (
                  write_inode t ino inode;
                  match dir_insert t ~dino:pino pinode ~name ~ino ~kind_code:(Types.kind_code kind) with
                  | Error e ->
                      let inode = shrink_blocks t inode ~keep:0 in
                      ignore inode;
                      free_ino t ino;
                      t.time <- Int64.sub t.time 1L;
                      Error e
                  | Ok pinode ->
                      let pinode =
                        if kind = Types.Directory then
                          { pinode with Inode.nlink = pinode.Inode.nlink + 1 }
                        else pinode
                      in
                      write_inode t pino { pinode with Inode.mtime = time; ctime = time };
                      finish_mutation t;
                      Ok ino))))

let create t path ~mode =
  guard (fun () ->
      if path = [] then Error Errno.EEXIST
      else if not (mode_ok mode) then Error Errno.EINVAL
      else create_node t path ~mode ~kind:Types.Regular ~content:"")

let mkdir t path ~mode =
  guard (fun () ->
      if path = [] then Error Errno.EEXIST
      else if not (mode_ok mode) then Error Errno.EINVAL
      else create_node t path ~mode ~kind:Types.Directory ~content:"")

let symlink t ~target path =
  guard (fun () ->
      if path = [] then Error Errno.EEXIST
      else if String.length target = 0 then Error Errno.ENOENT
      else if String.length target > 4095 then Error Errno.ENAMETOOLONG
      else create_node t path ~mode:0o777 ~kind:Types.Symlink ~content:target)

let unlink t path =
  guard (fun () ->
      if path = [] then Error Errno.EISDIR
      else
        match resolve_parent t path with
        | Error e -> Error e
        | Ok (pino, pinode, name) -> (
            match dir_find t ~dino:pino pinode name with
            | None -> Error Errno.ENOENT
            | Some entry ->
                let ino = entry.Dirent.ino in
                let inode = read_inode t ino in
                if inode.Inode.kind = Types.Directory then Error Errno.EISDIR
                else begin
                  let time = tick t in
                  ignore (dir_remove t ~dino:pino pinode ~name);
                  write_inode t ino { inode with Inode.nlink = inode.Inode.nlink - 1; ctime = time };
                  touch t pino ~time;
                  if inode.Inode.nlink - 1 = 0 then
                    if fd_refs t ino then Hashtbl.replace t.orphans ino ()
                    else maybe_reclaim t ino;
                  finish_mutation t;
                  Ok ()
                end))

let rmdir t path =
  guard (fun () ->
      if path = [] then Error Errno.EINVAL
      else
        match resolve_parent t path with
        | Error e -> Error e
        | Ok (pino, pinode, name) -> (
            match dir_find t ~dino:pino pinode name with
            | None -> Error Errno.ENOENT
            | Some entry ->
                let ino = entry.Dirent.ino in
                let inode = read_inode t ino in
                if inode.Inode.kind <> Types.Directory then Error Errno.ENOTDIR
                else if not (dir_is_empty t ~dino:ino inode) then Error Errno.ENOTEMPTY
                else begin
                  let time = tick t in
                  ignore (dir_remove t ~dino:pino pinode ~name);
                  let inode = shrink_blocks t inode ~keep:0 in
                  ignore inode;
                  free_ino t ino;
                  let pinode = read_inode t pino in
                  write_inode t pino
                    { pinode with Inode.nlink = pinode.Inode.nlink - 1; mtime = time; ctime = time };
                  finish_mutation t;
                  Ok ()
                end))

let flags_valid (f : Types.open_flags) =
  (f.rd || f.wr)
  && (not (f.trunc && not f.wr))
  && (not (f.excl && not f.creat))
  && not (f.append && not f.wr)

let openf t path flags =
  guard (fun () ->
      if not (flags_valid flags) then Error Errno.EINVAL
      else if Hashtbl.length t.fds >= t.cfg.max_fds then Error Errno.EMFILE
      else
        match resolve t path ~follow_last:true with
        | Ok ino ->
            if flags.Types.excl then Error Errno.EEXIST
            else begin
              let inode = read_inode t ino in
              match inode.Inode.kind with
              | Types.Directory -> Error Errno.EISDIR
              | Types.Symlink -> Error Errno.ELOOP
              | Types.Regular ->
                  if flags.Types.trunc && inode.Inode.size > 0 then begin
                    let time = tick t in
                    let inode = shrink_blocks t inode ~keep:0 in
                    write_inode t ino { inode with Inode.size = 0; mtime = time; ctime = time };
                    finish_mutation t
                  end;
                  let fd = alloc_fd t in
                  Hashtbl.replace t.fds fd { fino = ino; fflags = flags };
                  Ok fd
            end
        | Error Errno.ENOENT when flags.Types.creat -> (
            match resolve_parent t path with
            | Error e -> Error e
            | Ok (pino, pinode, name) -> (
                match dir_find t ~dino:pino pinode name with
                | Some _ -> Error Errno.ENOENT (* dangling symlink at the final hop *)
                | None -> (
                    match create_node t path ~mode:0o644 ~kind:Types.Regular ~content:"" with
                    | Error e -> Error e
                    | Ok ino ->
                        let fd = alloc_fd t in
                        Hashtbl.replace t.fds fd { fino = ino; fflags = flags };
                        Ok fd)))
        | Error e -> Error e)

let close t fd =
  guard (fun () ->
      match Hashtbl.find_opt t.fds fd with
      | None -> Error Errno.EBADF
      | Some { fino; _ } ->
          Hashtbl.remove t.fds fd;
          if fd < t.fd_hint then t.fd_hint <- fd;
          if Hashtbl.mem t.orphans fino then begin
            maybe_reclaim t fino;
            finish_mutation t
          end;
          Ok ())

let pread t fd ~off ~len =
  guard (fun () ->
      match Hashtbl.find_opt t.fds fd with
      | None -> Error Errno.EBADF
      | Some { fino; fflags } ->
          if not fflags.Types.rd then Error Errno.EBADF
          else if off < 0 || len < 0 then Error Errno.EINVAL
          else Ok (read_range t (read_inode t fino) ~off ~len))

let pwrite t fd ~off data =
  guard (fun () ->
      match Hashtbl.find_opt t.fds fd with
      | None -> Error Errno.EBADF
      | Some { fino; fflags } ->
          if not fflags.Types.wr then Error Errno.EBADF
          else if off < 0 then Error Errno.EINVAL
          else
            let len = String.length data in
            if len = 0 then Ok 0
            else begin
              let inode = read_inode t fino in
              let eff_off = if fflags.Types.append then inode.Inode.size else off in
              if eff_off + len > Layout.max_file_size then Error Errno.EFBIG
              else
                let time = tick t in
                match write_range t inode ~off:eff_off data with
                | Error e ->
                    t.time <- Int64.sub t.time 1L;
                    (* Partial allocations from a failed write remain in the
                       overlay bitmaps; roll back by shrinking to the old
                       block count. *)
                    let inode' = shrink_blocks t { inode with Inode.size = inode.Inode.size } ~keep:(Inode.blocks_for_size inode.Inode.size) in
                    write_inode t fino inode';
                    flush_sb t;
                    Error e
                | Ok inode ->
                    write_inode t fino { inode with Inode.mtime = time; ctime = time };
                    finish_mutation t;
                    Ok len
            end)

let lookup t path = guard (fun () -> resolve t path ~follow_last:true)

let stat_of t ino =
  let inode = read_inode t ino in
  let size =
    match inode.Inode.kind with
    | Types.Regular | Types.Symlink -> inode.Inode.size
    | Types.Directory -> 0
  in
  {
    Types.st_ino = ino;
    st_kind = inode.Inode.kind;
    st_size = size;
    st_nlink = inode.Inode.nlink;
    st_mode = inode.Inode.mode;
    st_mtime = inode.Inode.mtime;
    st_ctime = inode.Inode.ctime;
  }

let stat t path =
  guard (fun () -> Result.map (fun ino -> stat_of t ino) (resolve t path ~follow_last:true))

let fstat t fd =
  guard (fun () ->
      match Hashtbl.find_opt t.fds fd with
      | None -> Error Errno.EBADF
      | Some { fino; _ } -> Ok (stat_of t fino))

let readdir t path =
  guard (fun () ->
      match resolve t path ~follow_last:true with
      | Error e -> Error e
      | Ok ino ->
          let inode = read_inode t ino in
          if inode.Inode.kind <> Types.Directory then Error Errno.ENOTDIR
          else Ok (dir_names t ~dino:ino inode))

let rename t src dst =
  guard (fun () ->
      if src = [] || dst = [] then Error Errno.EINVAL
      else if Path.equal src dst then (
        match resolve_parent t src with
        | Error e -> Error e
        | Ok (pino, pinode, name) -> (
            match dir_find t ~dino:pino pinode name with
            | None -> Error Errno.ENOENT
            | Some _ -> Ok ()))
      else
        match resolve_parent t src with
        | Error e -> Error e
        | Ok (spino, spinode, sname) -> (
            match dir_find t ~dino:spino spinode sname with
            | None -> Error Errno.ENOENT
            | Some sentry -> (
                let sino = sentry.Dirent.ino in
                let sinode = read_inode t sino in
                let src_is_dir = sinode.Inode.kind = Types.Directory in
                if src_is_dir && Path.is_prefix src ~of_:dst then Error Errno.EINVAL
                else
                  match resolve_parent t dst with
                  | Error e -> Error e
                  | Ok (dpino, dpinode, dname) -> (
                      let dst_existing = dir_find t ~dino:dpino dpinode dname in
                      match dst_existing with
                      | Some dentry when dentry.Dirent.ino = sino -> Ok ()
                      | _ -> (
                          (* Validate/replace the destination. *)
                          let clear_destination () =
                            match dst_existing with
                            | None -> Ok `Nothing
                            | Some dentry -> (
                                let dino = dentry.Dirent.ino in
                                let dinode = read_inode t dino in
                                match (src_is_dir, dinode.Inode.kind) with
                                | true, (Types.Regular | Types.Symlink) -> Error Errno.ENOTDIR
                                | true, Types.Directory ->
                                    if not (dir_is_empty t ~dino dinode) then Error Errno.ENOTEMPTY
                                    else Ok (`Replace_dir dino)
                                | false, Types.Directory -> Error Errno.EISDIR
                                | false, (Types.Regular | Types.Symlink) -> Ok (`Replace_file dino))
                          in
                          match clear_destination () with
                          | Error e -> Error e
                          | Ok disposition ->
                              let time = tick t in
                              (* Drop the destination if it is replaced. *)
                              (match disposition with
                              | `Nothing -> ()
                              | `Replace_dir dino ->
                                  ignore (dir_remove t ~dino:dpino (read_inode t dpino) ~name:dname);
                                  let dinode = shrink_blocks t (read_inode t dino) ~keep:0 in
                                  ignore dinode;
                                  free_ino t dino;
                                  let dp = read_inode t dpino in
                                  write_inode t dpino { dp with Inode.nlink = dp.Inode.nlink - 1 }
                              | `Replace_file dino ->
                                  ignore (dir_remove t ~dino:dpino (read_inode t dpino) ~name:dname);
                                  let dinode = read_inode t dino in
                                  write_inode t dino
                                    { dinode with Inode.nlink = dinode.Inode.nlink - 1 };
                                  if dinode.Inode.nlink - 1 = 0 then
                                    if fd_refs t dino then Hashtbl.replace t.orphans dino ()
                                    else maybe_reclaim t dino);
                              (* Move the entry. *)
                              let spinode = read_inode t spino in
                              ignore (dir_remove t ~dino:spino spinode ~name:sname);
                              let dpinode = read_inode t dpino in
                              (match
                                 dir_insert t ~dino:dpino dpinode ~name:dname ~ino:sino
                                   ~kind_code:(Types.kind_code sinode.Inode.kind)
                               with
                              | Error e -> Error e
                              | Ok dpinode ->
                                  write_inode t dpino dpinode;
                                  (* Cross-parent directory moves: ".." and
                                     parent nlinks. *)
                                  if src_is_dir && spino <> dpino then begin
                                    dir_set_dotdot t ~dino:sino (read_inode t sino) ~parent:dpino;
                                    let sp = read_inode t spino in
                                    write_inode t spino { sp with Inode.nlink = sp.Inode.nlink - 1 };
                                    let dp = read_inode t dpino in
                                    write_inode t dpino { dp with Inode.nlink = dp.Inode.nlink + 1 }
                                  end;
                                  let s = read_inode t sino in
                                  write_inode t sino { s with Inode.ctime = time };
                                  touch t spino ~time;
                                  touch t dpino ~time;
                                  finish_mutation t;
                                  Ok ()))))))

let truncate t path ~size =
  guard (fun () ->
      if size < 0 then Error Errno.EINVAL
      else if size > Layout.max_file_size then Error Errno.EFBIG
      else
        match resolve t path ~follow_last:true with
        | Error e -> Error e
        | Ok ino -> (
            let inode = read_inode t ino in
            match inode.Inode.kind with
            | Types.Directory -> Error Errno.EISDIR
            | Types.Symlink -> Error Errno.EINVAL
            | Types.Regular ->
                let time = tick t in
                let keep = Inode.blocks_for_size size in
                let inode =
                  if size < inode.Inode.size then begin
                    let inode = shrink_blocks t inode ~keep in
                    (* Zero the tail of the final kept block so a later
                       extension reads zeroes. *)
                    (if size mod Layout.block_size <> 0 then
                       let idx = size / Layout.block_size in
                       let phys = get_block t inode idx in
                       if phys <> 0 then begin
                         let b = Overlay.read t.ov phys in
                         Bytes.fill b (size mod Layout.block_size)
                           (Layout.block_size - (size mod Layout.block_size))
                           '\000';
                         Overlay.write t.ov phys b
                       end);
                    inode
                  end
                  else inode
                in
                write_inode t ino { inode with Inode.size = size; mtime = time; ctime = time };
                finish_mutation t;
                Ok ()))

let link t src dst =
  guard (fun () ->
      if src = [] || dst = [] then Error Errno.EINVAL
      else
        match resolve_parent t src with
        | Error e -> Error e
        | Ok (spino, spinode, sname) -> (
            match dir_find t ~dino:spino spinode sname with
            | None -> Error Errno.ENOENT
            | Some sentry -> (
                let sino = sentry.Dirent.ino in
                let sinode = read_inode t sino in
                if sinode.Inode.kind = Types.Directory then Error Errno.EISDIR
                else
                  match resolve_parent t dst with
                  | Error e -> Error e
                  | Ok (dpino, dpinode, dname) -> (
                      match dir_find t ~dino:dpino dpinode dname with
                      | Some _ -> Error Errno.EEXIST
                      | None -> (
                          let time = tick t in
                          match
                            dir_insert t ~dino:dpino dpinode ~name:dname ~ino:sino
                              ~kind_code:(Types.kind_code sinode.Inode.kind)
                          with
                          | Error e ->
                              t.time <- Int64.sub t.time 1L;
                              Error e
                          | Ok dpinode ->
                              write_inode t dpino
                                { dpinode with Inode.mtime = time; ctime = time };
                              write_inode t sino
                                { sinode with Inode.nlink = sinode.Inode.nlink + 1; ctime = time };
                              finish_mutation t;
                              Ok ())))))

let readlink t path =
  guard (fun () ->
      match resolve t path ~follow_last:false with
      | Error e -> Error e
      | Ok ino ->
          let inode = read_inode t ino in
          if inode.Inode.kind <> Types.Symlink then Error Errno.EINVAL
          else Ok (read_range t inode ~off:0 ~len:inode.Inode.size))

let chmod t path ~mode =
  guard (fun () ->
      if not (mode_ok mode) then Error Errno.EINVAL
      else
        match resolve t path ~follow_last:true with
        | Error e -> Error e
        | Ok ino ->
            let time = tick t in
            let inode = read_inode t ino in
            write_inode t ino { inode with Inode.mode = mode; ctime = time };
            finish_mutation t;
            Ok ())

(* The shadow never writes to the device, so sync operations have nothing
   to flush; real durability is the rebooted base's job (paper §3.3). *)
let fsync t fd =
  match Hashtbl.find_opt t.fds fd with None -> Error Errno.EBADF | Some _ -> Ok ()

let sync _t = Ok ()

module Self = struct
  type nonrec t = t

  let create = create
  let mkdir = mkdir
  let unlink = unlink
  let rmdir = rmdir
  let openf = openf
  let close = close
  let pread = pread
  let pwrite = pwrite
  let lookup = lookup
  let stat = stat
  let fstat = fstat
  let readdir = readdir
  let rename = rename
  let truncate = truncate
  let link = link
  let symlink = symlink
  let readlink = readlink
  let chmod = chmod
  let fsync = fsync
  let sync = sync
end

module D = Fs_intf.Dispatch (Self)

let exec = D.exec

type constrained_result =
  | Matches
  | Divergence of Op.outcome
  | Skipped_error
  | Skipped_sync

let exec_constrained t { Op.op; outcome; seq = _ } =
  match outcome with
  | Error _ -> Skipped_error
  | Ok _ ->
      if Op.is_sync op then Skipped_sync
      else
        let shadow_outcome = exec t op in
        if Op.outcome_equal outcome shadow_outcome then Matches else Divergence shadow_outcome

type window_result = { w_ops : int; w_matches : int; w_divergences : int; w_skipped : int }

(* Execute a whole fold window in one batch: per-op mutation epilogues
   (superblock flush, bitmap write-back, summary checks) are deferred and
   run once at the end.  All equivalence comparisons in this repository
   are view-level (op outcomes, readdir/stat/read views, fd tables), so
   the only observable difference from per-op execution is the overlay's
   superblock generation count — which nothing checks for a specific
   value.  On a [Violation] the pending write-back still runs (so the
   overlay is not left behind the in-memory state) and the exception
   propagates; the checkpoint poisons the warm shadow in that case. *)
let exec_constrained_window t entries =
  if t.batch then invalid_arg "Shadow.exec_constrained_window: nested window";
  t.batch <- true;
  let finish () =
    t.batch <- false;
    if t.sb_dirty then begin
      t.sb_dirty <- false;
      flush_dirty_bitmaps t;
      flush_sb t
    end
  in
  let step acc r =
    match exec_constrained t r with
    | Matches -> { acc with w_ops = acc.w_ops + 1; w_matches = acc.w_matches + 1 }
    | Divergence _ -> { acc with w_ops = acc.w_ops + 1; w_divergences = acc.w_divergences + 1 }
    | Skipped_error | Skipped_sync -> { acc with w_ops = acc.w_ops + 1; w_skipped = acc.w_skipped + 1 }
  in
  let zero = { w_ops = 0; w_matches = 0; w_divergences = 0; w_skipped = 0 } in
  match List.fold_left step zero entries with
  | res ->
      finish ();
      check_summaries t;
      res
  | exception e ->
      finish ();
      raise e

(* ---- accessors ---- *)

let dirty_blocks t = Overlay.dirty t.ov

let fd_table t =
  Hashtbl.fold (fun fd { fino; fflags } acc -> (fd, fino, fflags) :: acc) t.fds []
  |> List.sort compare

let fd_count t = Hashtbl.length t.fds
let fd_iter t f = Hashtbl.iter (fun fd { fino; fflags } -> f fd fino fflags) t.fds

let fd_lookup t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some { fino; fflags } -> Some (fino, fflags)
  | None -> None

let install_fd t ~fd ~ino flags =
  if Hashtbl.mem t.fds fd then Error (Printf.sprintf "fd %d already installed" fd)
  else if not (inode_allocated t ino) then
    Error (Printf.sprintf "fd %d references unallocated inode %d" fd ino)
  else
    let inode = read_inode t ino in
    match inode.Inode.kind with
    | Types.Directory -> Error (Printf.sprintf "fd %d references a directory" fd)
    | Types.Symlink -> Error (Printf.sprintf "fd %d references a symlink" fd)
    | Types.Regular ->
        Hashtbl.replace t.fds fd { fino = ino; fflags = flags };
        if inode.Inode.nlink = 0 then Hashtbl.replace t.orphans ino ();
        Ok ()

let time t = t.time
let set_time t v = t.time <- v
let checks_performed t = t.nchecks
let device_reads t = Overlay.reads_from_device t.ov

(* ---- state export / replay-from-state ---- *)

type state = {
  st_overlay : (int * bytes) list;
  st_fds : (Types.fd * Types.ino * Types.open_flags) list;
  st_time : int64;
}

let export_state t = { st_overlay = Overlay.dirty t.ov; st_fds = fd_table t; st_time = t.time }

let attach_from ?(config = default_config) state dev =
  let ov = Overlay.create dev in
  match Overlay.import ov state.st_overlay with
  | exception Invalid_argument msg -> Error ("state import: " ^ msg)
  | () -> (
      let read blk = Overlay.read ov blk in
      match Reader.attach read with
      | Error e -> Error (Reader.error_to_string e)
      | Ok reader -> (
          match (Reader.load_inode_bitmap reader, Reader.load_block_bitmap reader) with
          | Ok ibm, Ok bbm ->
              let t = mk_t ov reader config ~ibm ~bbm ~time:state.st_time in
              let rec install = function
                | [] -> Ok t
                | (fd, ino, flags) :: rest -> (
                    match install_fd t ~fd ~ino flags with
                    | Ok () -> install rest
                    | Error msg -> Error ("state import: " ^ msg))
              in
              install state.st_fds
          | Error e, _ | _, Error e -> Error (Reader.error_to_string e)))
