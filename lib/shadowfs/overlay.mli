(** Copy-on-write block overlay.

    The shadow filesystem "never writes to the disk" (paper §2.3): it holds
    a {!Rae_block.Device.read_only} handle and funnels every would-be write
    into this in-memory overlay.  Reads consult the overlay first.  When
    recovery completes, {!dirty} is exactly the hand-off payload the base
    downloads into its caches. *)

type t

val create : Rae_block.Device.t -> t
(** Wraps the device behind a read-only view regardless of the handle
    passed in — defence in depth. *)

val read : t -> int -> bytes
(** Overlay content if present, else the device.  Returns a fresh copy. *)

val write : t -> int -> bytes -> unit
(** Stores a copy in the overlay; the device is never touched.
    @raise Invalid_argument on wrong-sized blocks or out-of-range block
    numbers. *)

val view : t -> int -> (bytes -> 'a) -> 'a
(** Zero-copy read access: [f] is applied to the live stored buffer (or
    to the device's fresh copy on an overlay miss) and must neither
    mutate nor retain it.  For read paths that immediately blit what they
    need out of the block, this replaces {!read}'s copy. *)

val rmw : t -> int -> (bytes -> bool) -> unit
(** In-place read-modify-write: [f] receives the block's current content
    and returns whether it modified it.  An already-shadowed block is
    mutated in place — no copy in, no copy out — which is what makes the
    hot mutation paths (inode writes, dirent edits) cheap; a block not
    yet shadowed is read from the device and enters the overlay only when
    [f] reports a modification.  [f] must not retain the buffer.
    @raise Invalid_argument on out-of-range block numbers. *)

val import : t -> (int * bytes) list -> unit
(** Bulk-preload overlay content, e.g. an exported {!dirty} list from
    another overlay over the same device.  Each block goes through
    {!write}, so the same validation and copy semantics apply. *)

val mem : t -> int -> bool
(** Is the block shadowed by the overlay? *)

val dirty : t -> (int * bytes) list
(** All overlaid blocks, sorted by block number; fresh copies. *)

val dirty_count : t -> int
val block_size : t -> int
val nblocks : t -> int

val reads_from_device : t -> int
(** Device reads that missed the overlay — the shadow's IO footprint. *)
