(** Transport abstraction: how bytes reach the {!Server}.

    A transport owns links (numbered by the transport itself) and reports
    edge-triggered events; {!Drive} binds any transport to a server,
    shuttling bytes both ways and running one scheduler turn per tick.
    Two implementations exist: the deterministic in-memory {!Loopback}
    (tests, benches, the demo) and the select-based Unix-socket loop in
    [bin/rfsd.ml] (the daemon). *)

type event =
  | Accepted of int  (** a new link appeared *)
  | Data of int * string  (** bytes arrived on a link *)
  | Closed of int  (** the peer went away *)

module type S = sig
  type t

  val poll : t -> event list
  (** Collect pending events.  Must not block indefinitely; an empty list
      means no activity. *)

  val send : t -> int -> string -> unit
  (** Queue bytes toward the peer.  Unknown links are ignored. *)

  val close : t -> int -> unit
  (** Drop a link (server-initiated). *)
end

module Drive (T : S) : sig
  type t

  val create : T.t -> Server.t -> t

  val tick : t -> int
  (** One event-loop turn: poll the transport into the server, run one
      scheduler {!Server.step}, flush server output back out, close links
      the server dropped.  Returns the number of requests dispatched. *)
end
