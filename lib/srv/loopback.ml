module Vclock = Rae_util.Vclock

type t = {
  srv : Server.t;
  lb_clock : Vclock.t;
  turn_latency : int64;
  eps : (int, endpoint) Hashtbl.t;
  mutable order : int list;  (* link ids, connect order *)
  mutable next_link : int;
  mutable activity : bool;  (* events polled or bytes sent this turn *)
  mutable tick_fn : unit -> int;
}

and endpoint = {
  ep_hub : t;
  ep_to_server : Buffer.t;
  ep_from_server : Buffer.t;
  mutable ep_client_closed : bool;
  mutable ep_server_closed : bool;
  mutable ep_announced : bool;
  mutable ep_close_announced : bool;
}

(* ---- the Transport.S implementation ---- *)

let poll t =
  let evs = ref [] in
  let dead = ref [] in
  List.iter
    (fun link ->
      match Hashtbl.find_opt t.eps link with
      | None -> ()
      | Some ep ->
          if not ep.ep_announced then begin
            ep.ep_announced <- true;
            evs := Transport.Accepted link :: !evs
          end;
          if Buffer.length ep.ep_to_server > 0 && not ep.ep_server_closed then begin
            let s = Buffer.contents ep.ep_to_server in
            Buffer.clear ep.ep_to_server;
            evs := Transport.Data (link, s) :: !evs
          end;
          if ep.ep_client_closed && not ep.ep_close_announced then begin
            ep.ep_close_announced <- true;
            evs := Transport.Closed link :: !evs
          end;
          if ep.ep_client_closed && ep.ep_server_closed then dead := link :: !dead)
    t.order;
  if !dead <> [] then begin
    List.iter (Hashtbl.remove t.eps) !dead;
    t.order <- List.filter (fun l -> not (List.mem l !dead)) t.order
  end;
  if !evs <> [] then t.activity <- true;
  List.rev !evs

let send t link s =
  match Hashtbl.find_opt t.eps link with
  | None -> ()
  | Some ep ->
      Buffer.add_string ep.ep_from_server s;
      t.activity <- true

let close t link =
  match Hashtbl.find_opt t.eps link with None -> () | Some ep -> ep.ep_server_closed <- true

module Drive = Transport.Drive (struct
  type nonrec t = t

  let poll = poll
  let send = send
  let close = close
end)

(* ---- hub API ---- *)

let create ?(turn_latency_ns = 0L) ?clock srv =
  let lb_clock = match clock with Some c -> c | None -> Vclock.create () in
  let t =
    {
      srv;
      lb_clock;
      turn_latency = turn_latency_ns;
      eps = Hashtbl.create 16;
      order = [];
      next_link = 1;
      activity = false;
      tick_fn = (fun () -> 0);
    }
  in
  let d = Drive.create t srv in
  t.tick_fn <- (fun () -> Drive.tick d);
  t

let server t = t.srv
let clock t = t.lb_clock

let pump t =
  t.activity <- false;
  let served = t.tick_fn () in
  if (t.activity || served > 0) && t.turn_latency > 0L then
    Vclock.advance t.lb_clock t.turn_latency;
  served

let pump_until_idle ?(max_turns = 10_000) t =
  let total = ref 0 in
  let turns = ref 0 in
  let continue = ref true in
  while !continue && !turns < max_turns do
    incr turns;
    let served = pump t in
    total := !total + served;
    if served = 0 && not t.activity then continue := false
  done;
  !total

let connect t =
  let link = t.next_link in
  t.next_link <- link + 1;
  let ep =
    {
      ep_hub = t;
      ep_to_server = Buffer.create 256;
      ep_from_server = Buffer.create 256;
      ep_client_closed = false;
      ep_server_closed = false;
      ep_announced = false;
      ep_close_announced = false;
    }
  in
  Hashtbl.replace t.eps link ep;
  t.order <- t.order @ [ link ];
  ep

let drain ep =
  let s = Buffer.contents ep.ep_from_server in
  Buffer.clear ep.ep_from_server;
  s

let recv = drain

let io ep =
  {
    Srv_client.io_send =
      (fun s -> if not (ep.ep_client_closed || ep.ep_server_closed) then Buffer.add_string ep.ep_to_server s);
    io_recv =
      (fun () ->
        if Buffer.length ep.ep_from_server > 0 then Some (drain ep)
        else if ep.ep_server_closed || ep.ep_client_closed then None
        else begin
          ignore (pump ep.ep_hub);
          if Buffer.length ep.ep_from_server > 0 then Some (drain ep) else Some ""
        end);
    io_close = (fun () -> ep.ep_client_closed <- true);
  }

let dial t () = Some (io (connect t))
