(** Client side of the serving protocol.

    A client owns one byte-stream {!io} to a server, speaks the {!Wire}
    protocol over it, and presents the ordinary {!Rae_vfs.Fs_intf.S}
    surface on top — so any code written against the filesystem interface
    runs unmodified against a remote controller.

    The client hides the protocol's failure modes behind plain outcomes:

    - [Busy] backpressure frames are retried transparently (bounded by
      [max_busy_retries]; exhaustion surfaces as [EAGAIN]);
    - a lost connection triggers the reconnect protocol when [reconnect]
      is on: the [dial] thunk is invoked for a fresh {!io}, the session
      re-attaches with a new [Hello], and every open file descriptor is
      re-validated — re-opened by its recorded path (with [creat]/[excl]/
      [trunc] stripped so re-attach never truncates or conflicts) and
      checked with [Fstat].  Descriptors that no longer resolve go stale
      and answer [EBADF] locally; client-visible fd numbers never change
      across reconnects.
    - [Note_degraded]/[Note_recovered] pushes are collected as
      {!notice}s for the application to inspect; they are never errors. *)

type io = {
  io_send : string -> unit;
  io_recv : unit -> string option;
      (** [Some ""] means nothing available yet (poll again); [None] means
          the connection is gone. *)
  io_close : unit -> unit;
}

type notice =
  | Degraded of string
  | Recovered of { seq : int; trigger : string; wall_us : int }

type config = {
  max_wait : int;
      (** bounded number of [io_recv] polls while waiting for one reply;
          exhaustion surfaces as [EIO] (default 10_000) *)
  max_busy_retries : int;  (** per-operation [Busy] retries (default 64) *)
  reconnect : bool;  (** re-dial and re-attach on a lost connection (default true) *)
}

val default_config : config

type t

val connect : ?config:config -> dial:(unit -> io option) -> unit -> (t, string) result
(** Dial and attach a session.  [dial] is retained for reconnects. *)

val session : t -> int
(** Server-assigned session id (of the current attachment). *)

val set_corr : t -> int -> unit
(** Set the correlation id stamped on every subsequent request (0 = none,
    the default).  The id rides the wire's v2 [Op_req] extension into the
    server's flight recorder, so a postmortem bundle can name the
    client-side request a recovery impacted — set it per logical
    application request for end-to-end correlation. *)

val corr : t -> int

val exec : t -> Rae_vfs.Op.t -> Rae_vfs.Op.outcome
(** Execute one operation remotely.  File descriptors in [op] and its
    outcome are client-side public descriptors; translation to the wire's
    session-virtual descriptors is internal.  Never raises. *)

include Rae_vfs.Fs_intf.S with type t := t
(** The filesystem API, routed through {!exec}. *)

val ping : t -> bool
val server_stats : t -> (Wire.server_stats, Rae_vfs.Errno.t) result

(** {1 Observability verbs (protocol v2)} *)

val metrics : t -> (string, Rae_vfs.Errno.t) result
(** The server's Prometheus exposition text. *)

val bundles : t -> (string list, Rae_vfs.Errno.t) result
(** Names of the black-box bundles the server has written. *)

val fetch_bundle : t -> string -> (string, Rae_vfs.Errno.t) result
(** Fetch one bundle's JSON by name ([ENOENT] if unknown; the connection
    stays up). *)

val detach : t -> unit
(** Orderly close: sends [Detach], waits briefly for the ack, closes the
    io.  Subsequent operations return [EIO] (no reconnect). *)

(** {1 Introspection} *)

val notices : t -> notice list
(** All recovery/degradation pushes observed, oldest first. *)

val recovered_seen : t -> int
(** Count of [Note_recovered] pushes observed. *)

val degraded : t -> string option
val busy_retries : t -> int
(** Total [Busy] frames absorbed by transparent retry. *)

val reconnects : t -> int
val stale_fds : t -> int
(** Descriptors invalidated by re-attach validation. *)
