open Rae_vfs

type io = {
  io_send : string -> unit;
  io_recv : unit -> string option;
  io_close : unit -> unit;
}

type notice =
  | Degraded of string
  | Recovered of { seq : int; trigger : string; wall_us : int }

type config = { max_wait : int; max_busy_retries : int; reconnect : bool }

let default_config = { max_wait = 10_000; max_busy_retries = 64; reconnect = true }

(* A client-visible descriptor.  [vfd] is the session-virtual descriptor
   the server knows; it changes on reconnect while the public number —
   the hashtable key — never does. *)
type fd_rec = {
  mutable vfd : int;
  fr_path : Path.t;
  fr_flags : Types.open_flags;
  mutable stale : bool;
}

type t = {
  config : config;
  dial : unit -> io option;
  mutable io : io option;  (* None = connection lost (or detached) *)
  mutable rx : string;  (* undecoded byte backlog *)
  mutable sid : int;
  mutable next_req : int;
  mutable corr : int;  (* correlation id stamped on every Op_req; 0 = none *)
  fds : (int, fd_rec) Hashtbl.t;  (* public fd -> record *)
  mutable notices_rev : notice list;
  mutable n_recovered : int;
  mutable degraded_reason : string option;
  mutable n_busy_retries : int;
  mutable n_reconnects : int;
  mutable n_stale : int;
  mutable detached : bool;
}

let record_notice t (frame : Wire.frame) =
  match frame with
  | Wire.Note_degraded { reason } ->
      t.degraded_reason <- Some reason;
      t.notices_rev <- Degraded reason :: t.notices_rev
  | Wire.Note_recovered { seq; trigger; wall_us } ->
      t.n_recovered <- t.n_recovered + 1;
      t.notices_rev <- Recovered { seq; trigger; wall_us } :: t.notices_rev
  | _ -> ()

let decode_one t =
  if t.rx = "" then `None
  else
    let buf = Bytes.unsafe_of_string t.rx in
    match Wire.decode buf ~pos:0 ~len:(Bytes.length buf) with
    | Wire.Frame (frame, consumed) ->
        t.rx <- String.sub t.rx consumed (String.length t.rx - consumed);
        `Frame frame
    | Wire.Need_more -> `None
    | Wire.Fail _ -> `Fail  (* desynchronized stream: the connection is dead *)

(* Wait for the frame [matcher] accepts, absorbing recovery notices and
   skipping stale replies on the way.  The recv budget bounds the total
   polls so a silent or babbling peer cannot hang the client. *)
let await t io matcher =
  let budget = ref t.config.max_wait in
  let rec next () =
    match decode_one t with
    | `Frame f -> Ok f
    | `Fail -> Error `Lost
    | `None ->
        if !budget <= 0 then Error `Timeout
        else begin
          decr budget;
          match io.io_recv () with
          | None -> Error `Lost
          | Some "" -> next ()
          | Some bytes ->
              t.rx <- (if t.rx = "" then bytes else t.rx ^ bytes);
              next ()
        end
  in
  let rec loop () =
    match next () with
    | Error _ as e -> e
    | Ok ((Wire.Note_degraded _ | Wire.Note_recovered _) as f) ->
        record_notice t f;
        loop ()
    | Ok (Wire.Err { errno; msg }) -> Error (`Srv (errno, msg))
    | Ok f -> ( match matcher f with Some v -> Ok v | None -> loop ())
  in
  loop ()

let fresh_req t =
  let req = t.next_req in
  t.next_req <- req + 1;
  req

(* One request/reply exchange with no retry logic; [op] already carries
   session-virtual descriptors. *)
let roundtrip t io op =
  let req = fresh_req t in
  io.io_send (Wire.encode (Wire.Op_req { req; corr = t.corr; op }));
  await t io (function
    | Wire.Op_reply { req = r; outcome } when r = req -> Some (`Reply outcome)
    | Wire.Busy { req = r; retry_after_ms = _ } when r = req -> Some `Busy
    | _ -> None)

let attach t io =
  t.rx <- "";
  io.io_send (Wire.encode (Wire.Hello { version = Wire.protocol_version }));
  match await t io (function Wire.Hello_ok { session; _ } -> Some session | _ -> None) with
  | Ok session ->
      t.sid <- session;
      Ok ()
  | Error `Lost -> Error "connection lost during hello"
  | Error `Timeout -> Error "no reply to hello"
  | Error (`Srv (errno, msg)) ->
      Error (Printf.sprintf "server refused attach: %s (%s)" msg (Errno.to_string errno))

(* Re-attach leaves creat/excl/trunc behind: re-validation must never
   create, conflict with or truncate what is already on disk. *)
let reattach_flags flags = { flags with Types.creat = false; excl = false; trunc = false }

let revalidate t io =
  let pubs = List.sort compare (Hashtbl.fold (fun pub _ acc -> pub :: acc) t.fds []) in
  List.iter
    (fun pub ->
      match Hashtbl.find_opt t.fds pub with
      | None -> ()
      | Some r when r.stale -> ()
      | Some r -> (
          let reopened =
            match roundtrip t io (Op.Open (r.fr_path, reattach_flags r.fr_flags)) with
            | Ok (`Reply (Ok (Op.Fd vfd))) -> (
                match roundtrip t io (Op.Fstat vfd) with
                | Ok (`Reply (Ok (Op.St _))) -> Some vfd
                | _ -> None)
            | _ -> None
          in
          match reopened with
          | Some vfd -> r.vfd <- vfd
          | None ->
              r.stale <- true;
              t.n_stale <- t.n_stale + 1))
    pubs

let try_reconnect t =
  if not t.config.reconnect then false
  else
    match t.dial () with
    | None -> false
    | Some io -> (
        match attach t io with
        | Ok () ->
            t.io <- Some io;
            t.n_reconnects <- t.n_reconnects + 1;
            revalidate t io;
            true
        | Error _ ->
            io.io_close ();
            false)

(* ---- descriptor translation ---- *)

let vfd_of t pub =
  match Hashtbl.find_opt t.fds pub with
  | Some r when not r.stale -> Ok r.vfd
  | Some _ | None -> Error Errno.EBADF

let translate_in t op =
  match op with
  | Op.Close pub -> Result.map (fun v -> Op.Close v) (vfd_of t pub)
  | Op.Pread (pub, off, len) -> Result.map (fun v -> Op.Pread (v, off, len)) (vfd_of t pub)
  | Op.Pwrite (pub, off, data) -> Result.map (fun v -> Op.Pwrite (v, off, data)) (vfd_of t pub)
  | Op.Fstat pub -> Result.map (fun v -> Op.Fstat v) (vfd_of t pub)
  | Op.Fsync pub -> Result.map (fun v -> Op.Fsync v) (vfd_of t pub)
  | op -> Ok op

(* POSIX-style allocation: the lowest unused public number, so client code
   that expects open/close cycles to reuse descriptor numbers behaves as it
   would on a local filesystem. *)
let alloc_pub t =
  let rec go n = if Hashtbl.mem t.fds n then go (n + 1) else n in
  go 0

let translate_out t op outcome =
  match (op, outcome) with
  | Op.Open (path, flags), Ok (Op.Fd vfd) ->
      let pub = alloc_pub t in
      Hashtbl.replace t.fds pub { vfd; fr_path = path; fr_flags = flags; stale = false };
      Ok (Op.Fd pub)
  | Op.Close pub, Ok Op.Unit ->
      Hashtbl.remove t.fds pub;
      outcome
  | _ -> outcome

(* ---- the retry/reconnect state machine ---- *)

let max_reconnects_per_op = 1

let rec attempt t op ~busy ~reconnected =
  match t.io with
  | None ->
      if reconnected < max_reconnects_per_op && try_reconnect t then
        attempt t op ~busy ~reconnected:(reconnected + 1)
      else Error Errno.EIO
  | Some io -> (
      match translate_in t op with
      | Error e -> Error e
      | Ok wire_op -> (
          match roundtrip t io wire_op with
          | Ok (`Reply outcome) -> translate_out t op outcome
          | Ok `Busy ->
              if busy >= t.config.max_busy_retries then Error Errno.EAGAIN
              else begin
                t.n_busy_retries <- t.n_busy_retries + 1;
                attempt t op ~busy:(busy + 1) ~reconnected
              end
          | Error (`Srv (errno, _)) ->
              (* the server rejected us at protocol level and is dropping
                 the connection; reconnecting would only repeat it *)
              io.io_close ();
              t.io <- None;
              Error errno
          | Error `Lost ->
              io.io_close ();
              t.io <- None;
              attempt t op ~busy ~reconnected
          | Error `Timeout -> Error Errno.EIO))

let exec t op =
  if t.detached then Error Errno.EIO
  else
    match op with
    | Op.Close pub when (match Hashtbl.find_opt t.fds pub with Some r -> r.stale | None -> false)
      ->
        (* the server-side descriptor died with the old session; closing
           still frees the client slot *)
        Hashtbl.remove t.fds pub;
        Ok Op.Unit
    | op -> attempt t op ~busy:0 ~reconnected:0

(* ---- session API ---- *)

let connect ?(config = default_config) ~dial () =
  match dial () with
  | None -> Error "dial failed"
  | Some io -> (
      let t =
        {
          config;
          dial;
          io = Some io;
          rx = "";
          sid = 0;
          next_req = 1;
          corr = 0;
          fds = Hashtbl.create 16;
          notices_rev = [];
          n_recovered = 0;
          degraded_reason = None;
          n_busy_retries = 0;
          n_reconnects = 0;
          n_stale = 0;
          detached = false;
        }
      in
      match attach t io with
      | Ok () -> Ok t
      | Error msg ->
          io.io_close ();
          Error msg)

let session t = t.sid
let set_corr t corr = t.corr <- corr
let corr t = t.corr

let ping t =
  match t.io with
  | None -> false
  | Some io -> (
      let token = fresh_req t in
      io.io_send (Wire.encode (Wire.Ping { token }));
      match await t io (function Wire.Pong { token = tk } when tk = token -> Some () | _ -> None)
      with
      | Ok () -> true
      | Error _ ->
          io.io_close ();
          t.io <- None;
          false)

let server_stats t =
  match t.io with
  | None -> Error Errno.EIO
  | Some io -> (
      io.io_send (Wire.encode Wire.Stats_req);
      match await t io (function Wire.Stats_reply s -> Some s | _ -> None) with
      | Ok s -> Ok s
      | Error (`Srv (errno, _)) ->
          io.io_close ();
          t.io <- None;
          Error errno
      | Error (`Lost | `Timeout) ->
          io.io_close ();
          t.io <- None;
          Error Errno.EIO)

(* One control request/reply over the live connection; connection loss
   or timeout closes the link (same policy as [server_stats]), but a
   served [Err] — e.g. ENOENT for an unknown bundle — leaves it open. *)
let control t frame matcher =
  match t.io with
  | None -> Error Errno.EIO
  | Some io -> (
      io.io_send (Wire.encode frame);
      match await t io matcher with
      | Ok v -> Ok v
      | Error (`Srv (errno, _)) -> Error errno
      | Error (`Lost | `Timeout) ->
          io.io_close ();
          t.io <- None;
          Error Errno.EIO)

let metrics t =
  control t Wire.Metrics_req (function Wire.Metrics_reply { text } -> Some text | _ -> None)

let bundles t =
  control t Wire.Bundles_req (function Wire.Bundles_reply { names } -> Some names | _ -> None)

let fetch_bundle t name =
  control t
    (Wire.Bundle_req { name })
    (function Wire.Bundle_reply { name = n; data } when n = name -> Some data | _ -> None)

let detach t =
  (match t.io with
  | Some io ->
      io.io_send (Wire.encode Wire.Detach);
      ignore (await t io (function Wire.Detach_ok -> Some () | _ -> None));
      io.io_close ()
  | None -> ());
  t.io <- None;
  t.detached <- true

(* ---- introspection ---- *)

let notices t = List.rev t.notices_rev
let recovered_seen t = t.n_recovered
let degraded t = t.degraded_reason
let busy_retries t = t.n_busy_retries
let reconnects t = t.n_reconnects
let stale_fds t = t.n_stale

(* ---- the Fs_intf.S surface ---- *)

let ino_of = function Ok (Op.Ino i) -> Ok i | Error e -> Error e | Ok _ -> Error Errno.EIO
let unit_of = function Ok Op.Unit -> Ok () | Error e -> Error e | Ok _ -> Error Errno.EIO
let fd_of = function Ok (Op.Fd fd) -> Ok fd | Error e -> Error e | Ok _ -> Error Errno.EIO
let data_of = function Ok (Op.Data s) -> Ok s | Error e -> Error e | Ok _ -> Error Errno.EIO
let len_of = function Ok (Op.Len n) -> Ok n | Error e -> Error e | Ok _ -> Error Errno.EIO
let st_of = function Ok (Op.St st) -> Ok st | Error e -> Error e | Ok _ -> Error Errno.EIO
let names_of = function Ok (Op.Names ns) -> Ok ns | Error e -> Error e | Ok _ -> Error Errno.EIO

let create t path ~mode = ino_of (exec t (Op.Create (path, mode)))
let mkdir t path ~mode = ino_of (exec t (Op.Mkdir (path, mode)))
let unlink t path = unit_of (exec t (Op.Unlink path))
let rmdir t path = unit_of (exec t (Op.Rmdir path))
let openf t path flags = fd_of (exec t (Op.Open (path, flags)))
let close t fd = unit_of (exec t (Op.Close fd))
let pread t fd ~off ~len = data_of (exec t (Op.Pread (fd, off, len)))
let pwrite t fd ~off data = len_of (exec t (Op.Pwrite (fd, off, data)))
let lookup t path = ino_of (exec t (Op.Lookup path))
let stat t path = st_of (exec t (Op.Stat path))
let fstat t fd = st_of (exec t (Op.Fstat fd))
let readdir t path = names_of (exec t (Op.Readdir path))
let rename t src dst = unit_of (exec t (Op.Rename (src, dst)))
let truncate t path ~size = unit_of (exec t (Op.Truncate (path, size)))
let link t src dst = unit_of (exec t (Op.Link (src, dst)))
let symlink t ~target link = ino_of (exec t (Op.Symlink (target, link)))
let readlink t path = data_of (exec t (Op.Readlink path))
let chmod t path ~mode = unit_of (exec t (Op.Chmod (path, mode)))
let fsync t fd = unit_of (exec t (Op.Fsync fd))
let sync t = unit_of (exec t Op.Sync)
