(** The serving core: a protocol state machine multiplexing many client
    sessions onto one {!Rae_core.Controller}.

    The server is transport-agnostic and byte-driven: a transport feeds it
    raw bytes per connection ({!feed}) and drains response bytes
    ({!output}); {!step} runs one scheduler turn.  A turn drains up to
    [batch_max] decoded requests across sessions — round-robin, one request
    per session per pass, each session capped at its
    [Session.max_ops_per_turn] rate quota — so dispatch overhead (the
    transport wakeup, recovery watermark check, notification sweep) is
    amortized over the whole batch while no client can monopolize a turn.

    Backpressure is refusal, not buffering: a request arriving on a session
    whose inflight queue is full is answered with a [Busy] frame carrying a
    retry-after hint and is dropped; server memory per session is bounded
    by [max_inflight] decoded requests plus transport buffers.

    Recovery transparency: requests dispatch through
    {!Rae_core.Controller.exec_for} (tagged with the session id and the
    client's correlation id for the flight recorder), so an operation
    that trips a base runtime error returns the shadow's
    answer and queued requests drain after hand-off.  After every turn the
    server compares the controller's recovery count against its watermark
    and pushes one [Note_recovered] frame (sequence number, trigger,
    wall-clock micros from {!Rae_core.Report}) per new recovery to every
    attached session; entering fail-stop pushes [Note_degraded] once. *)

type config = {
  batch_max : int;  (** requests dispatched per scheduler turn (default 64) *)
  session : Session.config;
  max_sessions : int;
  retry_after_ms : int;  (** hint carried by [Busy] frames *)
  idle_timeout : int;
      (** evict a session idle for this many turns, releasing its fds;
          [0] disables eviction *)
}

val default_config : config

type stats = {
  sessions : int;  (** currently attached *)
  conns_total : int;
  served : int;  (** operations dispatched to the controller *)
  busy : int;  (** Busy frames sent *)
  batches : int;  (** turns that dispatched at least one request *)
  frames_in : int;
  frames_out : int;
  evicted : int;
  queue_depth : int;  (** requests currently queued across sessions *)
  protocol_errors : int;
}

type t

val create : ?config:config -> ?now:(unit -> int64) -> Rae_core.Controller.t -> t
(** [now] feeds the per-op latency histogram (defaults to a CPU-time
    clock).

    The server adopts the controller's flight recorder (if any): session
    attach/evict/retry/detach land in it, dispatched ops carry their
    session id and the client's correlation id, and it registers itself
    as the controller's bundle context so postmortem bundles name the
    attached sessions and their in-flight [(req, corr)] pairs. *)

val set_metrics_source : t -> (unit -> string) -> unit
(** Provide the Prometheus exposition text served to [Metrics_req]
    frames (typically [fun () -> Rae_obs.Metrics.to_prometheus reg] over
    the registry everything is registered in).  Unset, [Metrics_req]
    answers with empty text. *)

(** {1 Transport edge} — one connection per client, identified by the id
    {!open_conn} returns.  All functions are total over ids: unknown or
    closed ids are ignored (reads return [""]). *)

val open_conn : t -> int
val feed : t -> int -> string -> unit
val output : t -> int -> string
val has_output : t -> int -> bool
val conn_closed : t -> int -> bool
(** The server dropped this connection (protocol error, detach, eviction);
    the transport should flush remaining {!output} and close the link. *)

val close_conn : t -> int -> unit
(** Transport-observed disconnect: releases the session's fds. *)

(** {1 Scheduling} *)

val step : t -> int
(** Run one scheduler turn; returns the number of requests dispatched. *)

val stats : t -> stats

val register_obs : Rae_obs.Metrics.t -> t -> unit
(** Frames in/out, dispatch/busy counters, session and queue-depth gauges,
    batch-size and per-op latency histograms — the serving path's [--metrics]
    surface. *)
