open Rae_vfs
module Controller = Rae_core.Controller
module Report = Rae_core.Report
module Metrics = Rae_obs.Metrics

type config = {
  batch_max : int;
  session : Session.config;
  max_sessions : int;
  retry_after_ms : int;
  idle_timeout : int;
}

let default_config =
  {
    batch_max = 64;
    session = Session.default_config;
    max_sessions = 256;
    retry_after_ms = 1;
    idle_timeout = 0;
  }

type stats = {
  sessions : int;
  conns_total : int;
  served : int;
  busy : int;
  batches : int;
  frames_in : int;
  frames_out : int;
  evicted : int;
  queue_depth : int;
  protocol_errors : int;
}

type conn = {
  cid : int;
  mutable session : Session.t option;  (* None until Hello *)
  mutable version : int;  (* negotiated at Hello; replies use this framing *)
  mutable rx : string;  (* undecoded byte backlog *)
  tx : Buffer.t;
  enc : Wire.encoder;  (* reused across frames: no per-frame allocation *)
  mutable closed : bool;
}

type t = {
  ctl : Controller.t;
  config : config;
  now : unit -> int64;
  events : Rae_obs.Events.t option;  (* the controller's flight recorder *)
  mutable metrics_src : (unit -> string) option;  (* Prometheus text for Metrics_req *)
  mutable dispatching : (int * int * int) option;  (* (session, req, corr) mid-dispatch *)
  conns : (int, conn) Hashtbl.t;
  mutable order : int list;  (* conn ids, attach order, for round-robin *)
  mutable cursor : int;  (* rotates the round-robin start point *)
  mutable next_cid : int;
  mutable tick : int;
  mutable seen_recoveries : int;
  mutable degraded_notified : bool;
  op_hist : Metrics.histogram;
  batch_hist : Metrics.histogram;
  mutable s_conns_total : int;
  mutable s_served : int;
  mutable s_busy : int;
  mutable s_batches : int;
  mutable s_frames_in : int;
  mutable s_frames_out : int;
  mutable s_evicted : int;
  mutable s_proto_errors : int;
}

let attached_sessions t =
  List.filter_map
    (fun cid ->
      match Hashtbl.find_opt t.conns cid with
      | Some conn when (not conn.closed) && conn.session <> None -> Some conn
      | _ -> None)
    t.order

let record_session t action ~session =
  match t.events with Some ev -> Rae_obs.Events.record_session ev action ~session | None -> ()

(* What a postmortem bundle reports as the sessions a recovery impacted:
   every attached session with its queued (req, corr) pairs — plus the
   request being dispatched right now, which is by construction the one
   whose op triggered the recovery — and the distinct client correlation
   ids across them. *)
let impacted_sessions_json t =
  let module J = Rae_obs.Jsonx in
  let one conn =
    match conn.session with
    | None -> None
    | Some s ->
        let sid = Session.id s in
        let inflight =
          (match t.dispatching with
          | Some (d_sid, req, corr) when d_sid = sid -> [ (req, corr) ]
          | _ -> [])
          @ Session.pending_entries s
        in
        let corrs =
          List.sort_uniq compare (List.filter_map (fun (_, c) -> if c = 0 then None else Some c) inflight)
        in
        Some
          (J.Obj
             [
               ("session", J.Int sid);
               ("open_fds", J.Int (Session.fd_count s));
               ( "inflight",
                 J.List
                   (List.map
                      (fun (req, corr) -> J.Obj [ ("req", J.Int req); ("corr", J.Int corr) ])
                      inflight) );
               ("corr_ids", J.List (List.map (fun c -> J.Int c) corrs));
             ])
  in
  J.List (List.filter_map one (attached_sessions t))

let create ?(config = default_config) ?now ctl =
  let now = match now with Some f -> f | None -> fun () -> Int64.of_float (Sys.time () *. 1e9) in
  let t =
  {
    ctl;
    config;
    now;
    events = Controller.events ctl;
    metrics_src = None;
    dispatching = None;
    conns = Hashtbl.create 32;
    order = [];
    cursor = 0;
    next_cid = 1;
    tick = 0;
    seen_recoveries = (Controller.stats ctl).Controller.recoveries;
    degraded_notified = false;
    op_hist = Metrics.histogram ();
    batch_hist = Metrics.histogram ();
    s_conns_total = 0;
    s_served = 0;
    s_busy = 0;
    s_frames_in = 0;
    s_frames_out = 0;
    s_batches = 0;
    s_evicted = 0;
    s_proto_errors = 0;
  }
  in
  (* Postmortem bundles written by this controller name the sessions and
     in-flight requests the recovery hit. *)
  Controller.set_bundle_context ctl (fun () ->
      [ ("impacted_sessions", impacted_sessions_json t) ]);
  t

let set_metrics_source t f = t.metrics_src <- Some f

(* ---- frame emission ---- *)

let send t conn frame =
  if not conn.closed then begin
    Wire.encode_into ~version:conn.version conn.enc frame conn.tx;
    t.s_frames_out <- t.s_frames_out + 1
  end

let release_session t conn =
  match conn.session with
  | None -> ()
  | Some session ->
      List.iter (fun (_vfd, fd) -> ignore (Controller.close t.ctl fd)) (Session.open_fds session);
      conn.session <- None

let drop t conn =
  release_session t conn;
  conn.closed <- true;
  conn.rx <- "";
  t.order <- List.filter (fun cid -> cid <> conn.cid) t.order

(* ---- transport edge ---- *)

let open_conn t =
  let cid = t.next_cid in
  t.next_cid <- cid + 1;
  t.s_conns_total <- t.s_conns_total + 1;
  Hashtbl.replace t.conns cid
    {
      cid;
      session = None;
      version = Wire.protocol_version;
      rx = "";
      tx = Buffer.create 256;
      enc = Wire.encoder ();
      closed = false;
    };
  t.order <- t.order @ [ cid ];
  cid

let protocol_error t conn msg =
  t.s_proto_errors <- t.s_proto_errors + 1;
  send t conn (Wire.Err { errno = Errno.EPROTO; msg });
  drop t conn

(* One decoded frame from connection [conn].  Control frames are answered
   immediately; operation requests go through admission control into the
   session queue and wait for a scheduler turn. *)
let handle_frame t conn frame =
  t.s_frames_in <- t.s_frames_in + 1;
  (match conn.session with
  | Some session -> Session.touch session ~tick:t.tick
  | None -> ());
  match (frame : Wire.frame) with
  | Wire.Hello { version } ->
      if conn.session <> None then protocol_error t conn "duplicate hello"
      else if version < Wire.min_protocol_version || version > Wire.protocol_version then begin
        t.s_proto_errors <- t.s_proto_errors + 1;
        send t conn
          (Wire.Err
             {
               errno = Errno.EPROTO;
               msg = Printf.sprintf "protocol version %d unsupported" version;
             });
        drop t conn
      end
      else if List.length (attached_sessions t) >= t.config.max_sessions then begin
        send t conn (Wire.Err { errno = Errno.EAGAIN; msg = "server full" });
        drop t conn
      end
      else begin
        let session = Session.create ~id:conn.cid t.config.session in
        Session.touch session ~tick:t.tick;
        conn.session <- Some session;
        (* Negotiate down to the client's version: every later frame on
           this connection — replies and pushes alike — uses it. *)
        conn.version <- version;
        record_session t `Attach ~session:conn.cid;
        send t conn (Wire.Hello_ok { session = conn.cid; version })
      end
  | Wire.Ping { token } -> send t conn (Wire.Pong { token })
  | Wire.Stats_req ->
      let cs = Controller.stats t.ctl in
      send t conn
        (Wire.Stats_reply
           {
             Wire.ws_sessions = List.length (attached_sessions t);
             ws_served = t.s_served;
             ws_busy = t.s_busy;
             ws_recoveries = cs.Controller.recoveries;
             ws_degraded = Controller.degraded t.ctl <> None;
           })
  | Wire.Detach ->
      (match conn.session with
      | Some session -> record_session t `Detach ~session:(Session.id session)
      | None -> ());
      send t conn Wire.Detach_ok;
      drop t conn
  | Wire.Op_req { req; corr; op } -> (
      match conn.session with
      | None -> protocol_error t conn "operation before hello"
      | Some session -> (
          match Session.enqueue session ~req ~corr op with
          | `Queued -> ()
          | `Busy ->
              Session.note_busy session;
              t.s_busy <- t.s_busy + 1;
              record_session t `Retry ~session:(Session.id session);
              send t conn (Wire.Busy { req; retry_after_ms = t.config.retry_after_ms })))
  | Wire.Metrics_req ->
      let text = match t.metrics_src with Some f -> f () | None -> "" in
      send t conn (Wire.Metrics_reply { text })
  | Wire.Bundles_req ->
      let names = List.map Filename.basename (Controller.bundles t.ctl) in
      send t conn (Wire.Bundles_reply { names })
  | Wire.Bundle_req { name } -> (
      (* Serve only bundles this controller wrote, matched by basename —
         the client never names a server path. *)
      let path =
        List.find_opt (fun p -> Filename.basename p = name) (Controller.bundles t.ctl)
      in
      match path with
      | None -> send t conn (Wire.Err { errno = Errno.ENOENT; msg = "no such bundle: " ^ name })
      | Some p -> (
          match Rae_obs.Blackbox.read_file p with
          | Ok data -> send t conn (Wire.Bundle_reply { name; data })
          | Error msg -> send t conn (Wire.Err { errno = Errno.EIO; msg })))
  | Wire.Hello_ok _ | Wire.Detach_ok | Wire.Pong _ | Wire.Stats_reply _ | Wire.Op_reply _
  | Wire.Busy _ | Wire.Err _ | Wire.Note_degraded _ | Wire.Note_recovered _
  | Wire.Metrics_reply _ | Wire.Bundles_reply _ | Wire.Bundle_reply _ ->
      protocol_error t conn "server-only frame from client"

let feed t cid bytes =
  match Hashtbl.find_opt t.conns cid with
  | None -> ()
  | Some conn when conn.closed -> ()
  | Some conn ->
      conn.rx <- (if conn.rx = "" then bytes else conn.rx ^ bytes);
      let buf = Bytes.unsafe_of_string conn.rx in
      let len = Bytes.length buf in
      let pos = ref 0 in
      let continue = ref true in
      while !continue && not conn.closed do
        match Wire.decode buf ~pos:!pos ~len:(len - !pos) with
        | Wire.Frame (frame, consumed) ->
            pos := !pos + consumed;
            handle_frame t conn frame
        | Wire.Need_more -> continue := false
        | Wire.Fail err ->
            protocol_error t conn (Format.asprintf "%a" Wire.pp_error err);
            continue := false
      done;
      if not conn.closed then
        conn.rx <- (if !pos = 0 then conn.rx else String.sub conn.rx !pos (len - !pos))

let output t cid =
  match Hashtbl.find_opt t.conns cid with
  | None -> ""
  | Some conn ->
      let s = Buffer.contents conn.tx in
      Buffer.clear conn.tx;
      if conn.closed && s = "" then Hashtbl.remove t.conns cid;
      s

let has_output t cid =
  match Hashtbl.find_opt t.conns cid with None -> false | Some conn -> Buffer.length conn.tx > 0

let conn_closed t cid =
  match Hashtbl.find_opt t.conns cid with None -> true | Some conn -> conn.closed

let close_conn t cid =
  match Hashtbl.find_opt t.conns cid with
  | None -> ()
  | Some conn ->
      drop t conn;
      if Buffer.length conn.tx = 0 then Hashtbl.remove t.conns cid

(* ---- dispatch ---- *)

(* Execute one request on the controller, translating virtual fds on the
   way in and binding/releasing them on the way out. *)
let dispatch t conn session (req, corr, op) =
  let outcome =
    match Session.translate session op with
    | Error e -> Error e
    | Ok real_op -> (
        let sid = Session.id session in
        (* Visible to the bundle context while the controller runs: if
           this op triggers a recovery, the postmortem names it. *)
        t.dispatching <- Some (sid, req, corr);
        let t0 = t.now () in
        let out =
          Fun.protect
            ~finally:(fun () -> t.dispatching <- None)
            (fun () -> Controller.exec_for t.ctl ~corr ~session:sid real_op)
        in
        Metrics.observe t.op_hist (Int64.sub (t.now ()) t0);
        match (op, out) with
        | Op.Open _, Ok (Op.Fd real) -> Ok (Op.Fd (Session.bind_fd session ~real))
        | Op.Close vfd, Ok Op.Unit ->
            Session.release_fd session ~vfd;
            out
        | _ -> out)
  in
  Session.note_served session;
  t.s_served <- t.s_served + 1;
  send t conn (Wire.Op_reply { req; outcome })

(* Round-robin over attached sessions: one request per session per pass,
   bounded by the global batch and the per-session rate quota.  The start
   point rotates each turn so equal-pressure sessions share first-dispatch
   latency. *)
let run_batch t =
  let ring = Array.of_list (attached_sessions t) in
  let n = Array.length ring in
  if n = 0 then 0
  else begin
    let taken = Array.make n 0 in
    let start = if n = 0 then 0 else t.cursor mod n in
    t.cursor <- t.cursor + 1;
    let served = ref 0 in
    let progressed = ref true in
    while !progressed && !served < t.config.batch_max do
      progressed := false;
      for i = 0 to n - 1 do
        let idx = (start + i) mod n in
        let conn = ring.(idx) in
        if !served < t.config.batch_max && not conn.closed then
          match conn.session with
          | Some session when taken.(idx) < t.config.session.Session.max_ops_per_turn -> (
              match Session.dequeue session with
              | Some entry ->
                  taken.(idx) <- taken.(idx) + 1;
                  incr served;
                  progressed := true;
                  Session.touch session ~tick:t.tick;
                  dispatch t conn session entry
              | None -> ())
          | Some _ | None -> ()
      done
    done;
    !served
  end

(* Push Note_recovered for every controller recovery past the watermark,
   and Note_degraded once when the controller enters fail-stop. *)
let broadcast_recovery_notes t =
  let cs = Controller.stats t.ctl in
  let recoveries = cs.Controller.recoveries in
  if recoveries > t.seen_recoveries then begin
    let reports = Controller.recoveries t.ctl in
    for seq = t.seen_recoveries + 1 to recoveries do
      let trigger, wall_us =
        match List.nth_opt reports (seq - 1) with
        | Some r ->
            ( Report.trigger_to_string r.Report.r_trigger,
              int_of_float (r.Report.r_wall_seconds *. 1e6) )
        | None -> ("unknown", 0)
      in
      List.iter
        (fun conn -> send t conn (Wire.Note_recovered { seq; trigger; wall_us }))
        (attached_sessions t)
    done;
    t.seen_recoveries <- recoveries
  end;
  match Controller.degraded t.ctl with
  | Some reason when not t.degraded_notified ->
      t.degraded_notified <- true;
      List.iter (fun conn -> send t conn (Wire.Note_degraded { reason })) (attached_sessions t)
  | Some _ | None -> ()

let evict_idle t =
  if t.config.idle_timeout > 0 then
    List.iter
      (fun conn ->
        match conn.session with
        | Some session
          when Session.pending session = 0
               && t.tick - Session.last_active session > t.config.idle_timeout ->
            t.s_evicted <- t.s_evicted + 1;
            record_session t `Evict ~session:(Session.id session);
            drop t conn
        | Some _ | None -> ())
      (attached_sessions t)

let step t =
  t.tick <- t.tick + 1;
  let served = run_batch t in
  if served > 0 then begin
    t.s_batches <- t.s_batches + 1;
    Metrics.observe t.batch_hist (Int64.of_int served)
  end;
  broadcast_recovery_notes t;
  evict_idle t;
  served

let queue_depth t =
  List.fold_left
    (fun acc conn ->
      match conn.session with Some s -> acc + Session.pending s | None -> acc)
    0 (attached_sessions t)

let stats t =
  {
    sessions = List.length (attached_sessions t);
    conns_total = t.s_conns_total;
    served = t.s_served;
    busy = t.s_busy;
    batches = t.s_batches;
    frames_in = t.s_frames_in;
    frames_out = t.s_frames_out;
    evicted = t.s_evicted;
    queue_depth = queue_depth t;
    protocol_errors = t.s_proto_errors;
  }

let register_obs reg t =
  Metrics.register_counter reg ~help:"frames decoded from clients"
    ~reset:(fun () -> t.s_frames_in <- 0)
    "rae_srv_frames_in_total"
    (fun () -> t.s_frames_in);
  Metrics.register_counter reg ~help:"frames sent to clients"
    ~reset:(fun () -> t.s_frames_out <- 0)
    "rae_srv_frames_out_total"
    (fun () -> t.s_frames_out);
  Metrics.register_counter reg ~help:"operations dispatched to the controller"
    ~reset:(fun () -> t.s_served <- 0)
    "rae_srv_ops_total"
    (fun () -> t.s_served);
  Metrics.register_counter reg ~help:"Busy (backpressure) frames sent"
    ~reset:(fun () -> t.s_busy <- 0)
    "rae_srv_busy_total"
    (fun () -> t.s_busy);
  Metrics.register_counter reg ~help:"scheduler turns that dispatched work"
    ~reset:(fun () -> t.s_batches <- 0)
    "rae_srv_batches_total"
    (fun () -> t.s_batches);
  Metrics.register_counter reg ~help:"sessions evicted for idleness"
    ~reset:(fun () -> t.s_evicted <- 0)
    "rae_srv_evicted_total"
    (fun () -> t.s_evicted);
  Metrics.register_counter reg ~help:"protocol violations that dropped a connection"
    ~reset:(fun () -> t.s_proto_errors <- 0)
    "rae_srv_protocol_errors_total"
    (fun () -> t.s_proto_errors);
  Metrics.register_gauge reg ~help:"currently attached sessions" "rae_srv_sessions" (fun () ->
      float_of_int (List.length (attached_sessions t)));
  Metrics.register_gauge reg ~help:"requests queued across sessions" "rae_srv_queue_depth"
    (fun () -> float_of_int (queue_depth t));
  Metrics.register_histogram reg ~help:"requests dispatched per scheduler turn"
    "rae_srv_batch_size" t.batch_hist;
  Metrics.register_histogram reg ~help:"per-operation dispatch latency (ns)" "rae_srv_op_ns"
    t.op_hist
