type event = Accepted of int | Data of int * string | Closed of int

module type S = sig
  type t

  val poll : t -> event list
  val send : t -> int -> string -> unit
  val close : t -> int -> unit
end

module Drive (T : S) = struct
  type t = {
    transport : T.t;
    server : Server.t;
    links : (int, int) Hashtbl.t;  (* transport link -> server conn id *)
  }

  let create transport server = { transport; server; links = Hashtbl.create 16 }

  let tick d =
    List.iter
      (fun ev ->
        match ev with
        | Accepted link -> Hashtbl.replace d.links link (Server.open_conn d.server)
        | Data (link, bytes) -> (
            match Hashtbl.find_opt d.links link with
            | Some cid -> Server.feed d.server cid bytes
            | None -> ())
        | Closed link -> (
            match Hashtbl.find_opt d.links link with
            | Some cid ->
                Server.close_conn d.server cid;
                Hashtbl.remove d.links link
            | None -> ()))
      (T.poll d.transport);
    let served = Server.step d.server in
    let dead = ref [] in
    Hashtbl.iter
      (fun link cid ->
        let out = Server.output d.server cid in
        if out <> "" then T.send d.transport link out;
        if Server.conn_closed d.server cid then dead := link :: !dead)
      d.links;
    List.iter
      (fun link ->
        T.close d.transport link;
        Hashtbl.remove d.links link)
      !dead;
    served
end
