open Rae_vfs

type config = { max_fds : int; max_inflight : int; max_ops_per_turn : int }

let default_config = { max_fds = 64; max_inflight = 16; max_ops_per_turn = 8 }

type t = {
  sid : int;
  config : config;
  queue : (int * int * Op.t) Queue.t;  (* req, corr, op *)
  mutable queued : int;
  fd_map : (int, int) Hashtbl.t;  (* virtual fd -> controller fd *)
  mutable next_vfd : int;
  mutable s_last_active : int;
  mutable s_served : int;
  mutable s_busy : int;
}

let create ~id config =
  {
    sid = id;
    config;
    queue = Queue.create ();
    queued = 0;
    fd_map = Hashtbl.create 16;
    next_vfd = 0;
    s_last_active = 0;
    s_served = 0;
    s_busy = 0;
  }

let id t = t.sid

let enqueue t ~req ~corr op =
  if t.queued >= t.config.max_inflight then `Busy
  else begin
    Queue.add (req, corr, op) t.queue;
    t.queued <- t.queued + 1;
    `Queued
  end

let dequeue t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some entry ->
      t.queued <- t.queued - 1;
      Some entry

let pending t = t.queued
let pending_entries t = Queue.fold (fun acc (req, corr, _op) -> (req, corr) :: acc) [] t.queue |> List.rev

let real_fd t vfd = Hashtbl.find_opt t.fd_map vfd

let translate t op =
  let lookup vfd k =
    match real_fd t vfd with Some fd -> Ok (k fd) | None -> Error Errno.EBADF
  in
  match op with
  | Op.Open _ when Hashtbl.length t.fd_map >= t.config.max_fds -> Error Errno.EMFILE
  | Op.Close vfd -> lookup vfd (fun fd -> Op.Close fd)
  | Op.Pread (vfd, off, len) -> lookup vfd (fun fd -> Op.Pread (fd, off, len))
  | Op.Pwrite (vfd, off, data) -> lookup vfd (fun fd -> Op.Pwrite (fd, off, data))
  | Op.Fstat vfd -> lookup vfd (fun fd -> Op.Fstat fd)
  | Op.Fsync vfd -> lookup vfd (fun fd -> Op.Fsync fd)
  | op -> Ok op

let bind_fd t ~real =
  let vfd = t.next_vfd in
  t.next_vfd <- t.next_vfd + 1;
  Hashtbl.replace t.fd_map vfd real;
  vfd

let release_fd t ~vfd = Hashtbl.remove t.fd_map vfd

let open_fds t =
  List.sort compare (Hashtbl.fold (fun vfd fd acc -> (vfd, fd) :: acc) t.fd_map [])

let fd_count t = Hashtbl.length t.fd_map
let touch t ~tick = t.s_last_active <- tick
let last_active t = t.s_last_active
let served t = t.s_served
let note_served t = t.s_served <- t.s_served + 1
let busy_sent t = t.s_busy
let note_busy t = t.s_busy <- t.s_busy + 1
