(** The rfs serving-layer wire protocol.

    Binary framing for the full {!Rae_vfs.Op} surface plus the
    session-control frames the server speaks (attach, detach, ping, stats,
    backpressure and recovery notifications).  Frames are length-prefixed
    with a checksummed header:

    {v
    offset  size  field
    0       2     magic 0x5253 ("RS")
    2       1     protocol version (1 or 2)
    3       1     frame type tag
    4       4     payload length (bytes)
    8       4     CRC32C over header bytes 0..7 ++ payload
    12      len   payload
    v}

    Version 2 appends a client-supplied {e correlation id} to [Op_req]
    (a trailing u32 extension, so v1 payloads are byte-identical and
    decode with [corr = 0]) and adds the observability frames
    ([Metrics_req]/[Bundles_req]/[Bundle_req] and replies).  Both
    versions decode; {!encode_into} takes the version to emit, so a
    server answers a v1 peer in v1 frames.

    Decoding is total: any malformed input — bad magic, unknown version or
    frame tag, inconsistent lengths, checksum mismatch, crafted path
    components, truncation — yields {!Fail} or {!Need_more}, never an
    exception.  A peer that receives [Fail] must treat the stream as
    desynchronized and drop the connection; there is no resynchronization
    scan. *)

val protocol_version : int
(** Newest version this codec speaks (2). *)

val min_protocol_version : int
(** Oldest version still decoded (1). *)

val tag_min_version : int -> int
(** Lowest protocol version in which a frame tag exists. *)

val header_bytes : int
val max_payload : int
(** Upper bound on a frame payload; a length field above this is rejected
    before any allocation, so a crafted header cannot OOM the peer. *)

type server_stats = {
  ws_sessions : int;  (** currently attached sessions *)
  ws_served : int;  (** operations executed on behalf of clients *)
  ws_busy : int;  (** Busy (backpressure) frames sent *)
  ws_recoveries : int;  (** controller recoveries observed *)
  ws_degraded : bool;
}

type frame =
  | Hello of { version : int }  (** client -> server: attach a session *)
  | Hello_ok of { session : int; version : int }
  | Detach  (** client -> server: orderly close; fds are released *)
  | Detach_ok
  | Ping of { token : int }
  | Pong of { token : int }
  | Stats_req
  | Stats_reply of server_stats
  | Op_req of { req : int; corr : int; op : Rae_vfs.Op.t }
      (** [corr] is the client-supplied correlation id threaded end to
          end (flight recorder, postmortem bundles); [0] means none.
          v1 frames decode with [corr = 0]. *)
  | Op_reply of { req : int; outcome : Rae_vfs.Op.outcome }
  | Busy of { req : int; retry_after_ms : int }
      (** backpressure: the request was *not* queued; retry after the hint *)
  | Err of { errno : Rae_vfs.Errno.t; msg : string }
      (** protocol-level rejection (bad hello, undecodable frame, ...) *)
  | Note_degraded of { reason : string }
      (** server push: the controller entered fail-stop *)
  | Note_recovered of { seq : int; trigger : string; wall_us : int }
      (** server push: recovery [seq] (1-based controller recovery count)
          completed; [trigger]/[wall_us] come from {!Rae_core.Report} so
          clients can correlate with server-side logs *)
  | Metrics_req  (** v2: ask for the server's Prometheus exposition *)
  | Metrics_reply of { text : string }
  | Bundles_req  (** v2: list available black-box bundles *)
  | Bundles_reply of { names : string list }
  | Bundle_req of { name : string }  (** v2: fetch one bundle by name *)
  | Bundle_reply of { name : string; data : string }

type error =
  | Bad_magic
  | Bad_version of int
  | Bad_length of int
  | Bad_checksum
  | Bad_payload of string  (** tag/field-level corruption detail *)

type decode_result =
  | Frame of frame * int  (** decoded frame and total bytes consumed *)
  | Need_more  (** the buffer holds a frame prefix; read more bytes *)
  | Fail of error  (** stream is corrupt; the connection must drop *)

val pp_error : Format.formatter -> error -> unit
val pp_frame : Format.formatter -> frame -> unit

val equal_frame : frame -> frame -> bool
(** Structural equality (outcome comparison via {!Rae_vfs.Op.outcome_equal}
    with exact timestamps). *)

type encoder
(** Reusable per-connection encode state: a payload buffer plus a
    growable scratch area, so the hot serving path serializes frames
    with no per-frame allocation. *)

val encoder : unit -> encoder

val encode_into : ?version:int -> encoder -> frame -> Buffer.t -> unit
(** Serialize one frame, header included, appending the bytes to the
    given output buffer (typically the connection's tx buffer).  The
    encoder's scratch state is clobbered; one encoder must not be shared
    across connections that encode concurrently.  [version] (default
    {!protocol_version}) selects the emitted frame version — a server
    talking to a v1 peer passes its negotiated version. *)

val encode : ?version:int -> frame -> string
(** Serialize one frame, header included.  Convenience wrapper over
    {!encode_into} with a throwaway encoder (tests, client one-shots);
    servers should hold an {!encoder} per connection instead. *)

val decode : bytes -> pos:int -> len:int -> decode_result
(** [decode buf ~pos ~len] attempts to decode one frame from
    [buf[pos..pos+len)].  Never raises. *)

val decode_string : string -> decode_result
(** Convenience wrapper over a whole string (tests, single-frame use). *)
