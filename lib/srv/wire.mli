(** The rfs serving-layer wire protocol.

    Version-1 binary framing for the full {!Rae_vfs.Op} surface plus the
    session-control frames the server speaks (attach, detach, ping, stats,
    backpressure and recovery notifications).  Frames are length-prefixed
    with a checksummed header:

    {v
    offset  size  field
    0       2     magic 0x5253 ("RS")
    2       1     protocol version (1)
    3       1     frame type tag
    4       4     payload length (bytes)
    8       4     CRC32C over header bytes 0..7 ++ payload
    12      len   payload
    v}

    Decoding is total: any malformed input — bad magic, unknown version or
    frame tag, inconsistent lengths, checksum mismatch, crafted path
    components, truncation — yields {!Fail} or {!Need_more}, never an
    exception.  A peer that receives [Fail] must treat the stream as
    desynchronized and drop the connection; there is no resynchronization
    scan. *)

val protocol_version : int
val header_bytes : int
val max_payload : int
(** Upper bound on a frame payload; a length field above this is rejected
    before any allocation, so a crafted header cannot OOM the peer. *)

type server_stats = {
  ws_sessions : int;  (** currently attached sessions *)
  ws_served : int;  (** operations executed on behalf of clients *)
  ws_busy : int;  (** Busy (backpressure) frames sent *)
  ws_recoveries : int;  (** controller recoveries observed *)
  ws_degraded : bool;
}

type frame =
  | Hello of { version : int }  (** client -> server: attach a session *)
  | Hello_ok of { session : int; version : int }
  | Detach  (** client -> server: orderly close; fds are released *)
  | Detach_ok
  | Ping of { token : int }
  | Pong of { token : int }
  | Stats_req
  | Stats_reply of server_stats
  | Op_req of { req : int; op : Rae_vfs.Op.t }
  | Op_reply of { req : int; outcome : Rae_vfs.Op.outcome }
  | Busy of { req : int; retry_after_ms : int }
      (** backpressure: the request was *not* queued; retry after the hint *)
  | Err of { errno : Rae_vfs.Errno.t; msg : string }
      (** protocol-level rejection (bad hello, undecodable frame, ...) *)
  | Note_degraded of { reason : string }
      (** server push: the controller entered fail-stop *)
  | Note_recovered of { seq : int; trigger : string; wall_us : int }
      (** server push: recovery [seq] (1-based controller recovery count)
          completed; [trigger]/[wall_us] come from {!Rae_core.Report} so
          clients can correlate with server-side logs *)

type error =
  | Bad_magic
  | Bad_version of int
  | Bad_length of int
  | Bad_checksum
  | Bad_payload of string  (** tag/field-level corruption detail *)

type decode_result =
  | Frame of frame * int  (** decoded frame and total bytes consumed *)
  | Need_more  (** the buffer holds a frame prefix; read more bytes *)
  | Fail of error  (** stream is corrupt; the connection must drop *)

val pp_error : Format.formatter -> error -> unit
val pp_frame : Format.formatter -> frame -> unit

val equal_frame : frame -> frame -> bool
(** Structural equality (outcome comparison via {!Rae_vfs.Op.outcome_equal}
    with exact timestamps). *)

type encoder
(** Reusable per-connection encode state: a payload buffer plus a
    growable scratch area, so the hot serving path serializes frames
    with no per-frame allocation. *)

val encoder : unit -> encoder

val encode_into : encoder -> frame -> Buffer.t -> unit
(** Serialize one frame, header included, appending the bytes to the
    given output buffer (typically the connection's tx buffer).  The
    encoder's scratch state is clobbered; one encoder must not be shared
    across connections that encode concurrently. *)

val encode : frame -> string
(** Serialize one frame, header included.  Convenience wrapper over
    {!encode_into} with a throwaway encoder (tests, client one-shots);
    servers should hold an {!encoder} per connection instead. *)

val decode : bytes -> pos:int -> len:int -> decode_result
(** [decode buf ~pos ~len] attempts to decode one frame from
    [buf[pos..pos+len)].  Never raises. *)

val decode_string : string -> decode_result
(** Convenience wrapper over a whole string (tests, single-frame use). *)
