(** Deterministic in-memory transport.

    Clients and server live in one process and exchange bytes through
    buffers; {!pump} runs one event-loop turn (poll, feed, schedule,
    flush).  All serving tests and benches run over this transport, so
    every interleaving is reproducible.

    Time: a loopback hub charges [turn_latency_ns] of simulated time to
    its {!Rae_util.Vclock} per pump that does work, modeling the
    transport wakeup and syscall cost a real event loop pays per turn
    regardless of batch size — which is precisely the cost request
    batching amortizes.  The default is 0 (pure function of the
    messages); benches set it to make batching effects measurable and
    deterministic. *)

type t
type endpoint

val create : ?turn_latency_ns:int64 -> ?clock:Rae_util.Vclock.t -> Server.t -> t
(** A hub serving [server].  [clock] defaults to a fresh clock at 0. *)

val server : t -> Server.t
val clock : t -> Rae_util.Vclock.t

val connect : t -> endpoint
(** A new client link; the server sees it accepted on the next {!pump}. *)

val recv : endpoint -> string
(** Drain whatever the server has buffered toward this endpoint, without
    pumping; [""] when nothing is waiting.  For callers that drive
    {!pump} themselves (pipelined bench clients). *)

val io : endpoint -> Srv_client.io
(** Byte-stream view of an endpoint for {!Srv_client}.  Its [io_recv]
    pumps the hub once when nothing is buffered, so a synchronous client
    blocks-and-progresses exactly like one on a real socket. *)

val dial : t -> unit -> Srv_client.io option
(** [Srv_client.connect ~dial:(dial hub)] — each call is a fresh link. *)

val pump : t -> int
(** One event-loop turn; returns requests dispatched.  Charges
    [turn_latency_ns] when the turn polled events or dispatched work. *)

val pump_until_idle : ?max_turns:int -> t -> int
(** Pump until a turn neither polls events nor dispatches (or [max_turns],
    default [10_000]); returns total requests dispatched. *)
