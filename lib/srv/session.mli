(** Per-client session state: fd virtualization, quotas, request queue.

    Each attached client owns a session that virtualizes its descriptor
    table onto the controller's shared table: clients speak {e virtual} fds,
    the session translates them to controller fds before dispatch and back
    after.  The translation layer is also where per-client quotas live — a
    bound on open descriptors ([EMFILE] past it) and an op-rate share
    enforced by the scheduler — so one misbehaving client cannot exhaust
    the shared table or starve its peers. *)

type config = {
  max_fds : int;  (** open-descriptor quota; [Open] past it fails [EMFILE] *)
  max_inflight : int;  (** bound on queued requests; excess earns [Busy] *)
  max_ops_per_turn : int;  (** op-rate quota: dispatch share per scheduler turn *)
}

val default_config : config

type t

val create : id:int -> config -> t
val id : t -> int

(** {1 Request queue (bounded)} *)

val enqueue : t -> req:int -> corr:int -> Rae_vfs.Op.t -> [ `Queued | `Busy ]
(** Admit a decoded request, or refuse it when [max_inflight] requests are
    already pending — the refusal is the backpressure signal; nothing is
    buffered for a refused request.  [corr] is the client's correlation
    id (0 = none), carried to dispatch and into the flight recorder. *)

val dequeue : t -> (int * int * Rae_vfs.Op.t) option
(** [(req, corr, op)]. *)

val pending : t -> int

val pending_entries : t -> (int * int) list
(** [(req, corr)] of every queued request, oldest first — what a
    postmortem bundle reports as the session's impacted in-flight ops. *)

(** {1 Descriptor virtualization} *)

val translate : t -> Rae_vfs.Op.t -> (Rae_vfs.Op.t, Rae_vfs.Errno.t) result
(** Rewrite the virtual fd in an fd-carrying operation to the controller
    fd.  Unknown virtual fds fail [EBADF] without touching the controller;
    an [Open] checks the [max_fds] quota here and fails [EMFILE]. *)

val bind_fd : t -> real:int -> int
(** Record a controller fd returned by a successful [Open] and allocate the
    virtual fd the client will see. *)

val release_fd : t -> vfd:int -> unit
(** Forget a mapping after a successful [Close]. *)

val open_fds : t -> (int * int) list
(** [(virtual, controller)] pairs, for re-validation and teardown. *)

val fd_count : t -> int

(** {1 Liveness} *)

val touch : t -> tick:int -> unit
val last_active : t -> int
val served : t -> int
val note_served : t -> unit
val busy_sent : t -> int
val note_busy : t -> unit
