(* The serving-layer wire codec.  Encoding builds payloads into a Buffer;
   decoding runs a bounds-checked Rae_util.Codec cursor over the payload
   slice, so every malformed input surfaces as a typed decode failure. *)

open Rae_vfs
module Codec = Rae_util.Codec
module Checksum = Rae_util.Checksum

(* v1: the PR 4 baseline.  v2 appends a correlation id to [Op_req] and
   adds the metrics/bundle observability frames; v1 frames still decode
   (corr reads back as 0) and [encode_into ~version:1] still emits
   byte-identical v1 frames, so old peers interoperate. *)
let protocol_version = 2
let min_protocol_version = 1
let magic = 0x5253 (* "RS" *)
let header_bytes = 12
let max_payload = 4 * 1024 * 1024

type server_stats = {
  ws_sessions : int;
  ws_served : int;
  ws_busy : int;
  ws_recoveries : int;
  ws_degraded : bool;
}

type frame =
  | Hello of { version : int }
  | Hello_ok of { session : int; version : int }
  | Detach
  | Detach_ok
  | Ping of { token : int }
  | Pong of { token : int }
  | Stats_req
  | Stats_reply of server_stats
  | Op_req of { req : int; corr : int; op : Op.t }
      (** [corr] is the client-supplied correlation id (0 = none); v1
          frames carry no corr bytes and decode with [corr = 0]. *)
  | Op_reply of { req : int; outcome : Op.outcome }
  | Busy of { req : int; retry_after_ms : int }
  | Err of { errno : Errno.t; msg : string }
  | Note_degraded of { reason : string }
  | Note_recovered of { seq : int; trigger : string; wall_us : int }
  | Metrics_req
  | Metrics_reply of { text : string }  (** Prometheus text exposition *)
  | Bundles_req
  | Bundles_reply of { names : string list }  (** black-box bundle directory listing *)
  | Bundle_req of { name : string }
  | Bundle_reply of { name : string; data : string }  (** one bundle's JSON *)

type error =
  | Bad_magic
  | Bad_version of int
  | Bad_length of int
  | Bad_checksum
  | Bad_payload of string

type decode_result = Frame of frame * int | Need_more | Fail of error

let pp_error ppf = function
  | Bad_magic -> Format.pp_print_string ppf "bad magic"
  | Bad_version v -> Format.fprintf ppf "unsupported protocol version %d" v
  | Bad_length n -> Format.fprintf ppf "implausible payload length %d" n
  | Bad_checksum -> Format.pp_print_string ppf "header/payload checksum mismatch"
  | Bad_payload msg -> Format.fprintf ppf "malformed payload: %s" msg

let pp_frame ppf = function
  | Hello { version } -> Format.fprintf ppf "hello(v%d)" version
  | Hello_ok { session; version } -> Format.fprintf ppf "hello_ok(session=%d, v%d)" session version
  | Detach -> Format.pp_print_string ppf "detach"
  | Detach_ok -> Format.pp_print_string ppf "detach_ok"
  | Ping { token } -> Format.fprintf ppf "ping(%d)" token
  | Pong { token } -> Format.fprintf ppf "pong(%d)" token
  | Stats_req -> Format.pp_print_string ppf "stats_req"
  | Stats_reply s ->
      Format.fprintf ppf "stats(sessions=%d served=%d busy=%d recoveries=%d degraded=%b)"
        s.ws_sessions s.ws_served s.ws_busy s.ws_recoveries s.ws_degraded
  | Op_req { req; corr; op } -> Format.fprintf ppf "op_req(#%d corr=%d %a)" req corr Op.pp op
  | Op_reply { req; outcome } -> Format.fprintf ppf "op_reply(#%d %a)" req Op.pp_outcome outcome
  | Busy { req; retry_after_ms } -> Format.fprintf ppf "busy(#%d retry_after=%dms)" req retry_after_ms
  | Err { errno; msg } -> Format.fprintf ppf "err(%a, %S)" Errno.pp errno msg
  | Note_degraded { reason } -> Format.fprintf ppf "note_degraded(%S)" reason
  | Note_recovered { seq; trigger; wall_us } ->
      Format.fprintf ppf "note_recovered(#%d %s %dus)" seq trigger wall_us
  | Metrics_req -> Format.pp_print_string ppf "metrics_req"
  | Metrics_reply { text } -> Format.fprintf ppf "metrics_reply(%d bytes)" (String.length text)
  | Bundles_req -> Format.pp_print_string ppf "bundles_req"
  | Bundles_reply { names } -> Format.fprintf ppf "bundles_reply(%d)" (List.length names)
  | Bundle_req { name } -> Format.fprintf ppf "bundle_req(%S)" name
  | Bundle_reply { name; data } ->
      Format.fprintf ppf "bundle_reply(%S, %d bytes)" name (String.length data)

let equal_frame a b =
  match (a, b) with
  | Op_reply x, Op_reply y ->
      x.req = y.req && Op.outcome_equal ~ignore_times:false x.outcome y.outcome
  | Op_reply _, _ | _, Op_reply _ -> false
  | a, b -> a = b

(* ---- frame type tags ---- *)

let tag_of_frame = function
  | Hello _ -> 1
  | Hello_ok _ -> 2
  | Detach -> 3
  | Detach_ok -> 4
  | Ping _ -> 5
  | Pong _ -> 6
  | Stats_req -> 7
  | Stats_reply _ -> 8
  | Op_req _ -> 9
  | Op_reply _ -> 10
  | Busy _ -> 11
  | Err _ -> 12
  | Note_degraded _ -> 13
  | Note_recovered _ -> 14
  | Metrics_req -> 15
  | Metrics_reply _ -> 16
  | Bundles_req -> 17
  | Bundles_reply _ -> 18
  | Bundle_req _ -> 19
  | Bundle_reply _ -> 20

(* Observability frames only exist from v2 on; Op_req's corr suffix is
   the other v2 extension. *)
let tag_min_version tag = if tag >= 15 then 2 else 1

(* ---- payload encoding ---- *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let add_u16 b v =
  add_u8 b v;
  add_u8 b (v lsr 8)

let add_u32 b v =
  add_u16 b (v land 0xffff);
  add_u16 b ((v lsr 16) land 0xffff)

let add_int b v = Buffer.add_int64_le b (Int64.of_int v)

let add_str16 b s =
  add_u16 b (String.length s);
  Buffer.add_string b s

let add_str32 b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let add_path b path =
  add_u16 b (List.length path);
  List.iter (fun c -> add_str16 b c) path

let add_flags b (f : Types.open_flags) =
  let bit c i = if c then 1 lsl i else 0 in
  add_u8 b
    (bit f.Types.rd 0 lor bit f.Types.wr 1 lor bit f.Types.creat 2 lor bit f.Types.excl 3
   lor bit f.Types.trunc 4 lor bit f.Types.append 5)

let add_op b op =
  let tag t = add_u8 b t in
  match op with
  | Op.Create (path, mode) ->
      tag 1;
      add_path b path;
      add_int b mode
  | Op.Mkdir (path, mode) ->
      tag 2;
      add_path b path;
      add_int b mode
  | Op.Unlink path ->
      tag 3;
      add_path b path
  | Op.Rmdir path ->
      tag 4;
      add_path b path
  | Op.Open (path, flags) ->
      tag 5;
      add_path b path;
      add_flags b flags
  | Op.Close fd ->
      tag 6;
      add_int b fd
  | Op.Pread (fd, off, len) ->
      tag 7;
      add_int b fd;
      add_int b off;
      add_int b len
  | Op.Pwrite (fd, off, data) ->
      tag 8;
      add_int b fd;
      add_int b off;
      add_str32 b data
  | Op.Lookup path ->
      tag 9;
      add_path b path
  | Op.Stat path ->
      tag 10;
      add_path b path
  | Op.Fstat fd ->
      tag 11;
      add_int b fd
  | Op.Readdir path ->
      tag 12;
      add_path b path
  | Op.Rename (src, dst) ->
      tag 13;
      add_path b src;
      add_path b dst
  | Op.Truncate (path, size) ->
      tag 14;
      add_path b path;
      add_int b size
  | Op.Link (src, dst) ->
      tag 15;
      add_path b src;
      add_path b dst
  | Op.Symlink (target, link) ->
      tag 16;
      add_str16 b target;
      add_path b link
  | Op.Readlink path ->
      tag 17;
      add_path b path
  | Op.Chmod (path, mode) ->
      tag 18;
      add_path b path;
      add_int b mode
  | Op.Fsync fd ->
      tag 19;
      add_int b fd
  | Op.Sync -> tag 20

let add_stat b (st : Types.stat) =
  add_int b st.Types.st_ino;
  add_u8 b (Types.kind_code st.Types.st_kind);
  add_int b st.Types.st_size;
  add_int b st.Types.st_nlink;
  add_int b st.Types.st_mode;
  Buffer.add_int64_le b st.Types.st_mtime;
  Buffer.add_int64_le b st.Types.st_ctime

let add_value b = function
  | Op.Unit -> add_u8 b 0
  | Op.Fd fd ->
      add_u8 b 1;
      add_int b fd
  | Op.Ino ino ->
      add_u8 b 2;
      add_int b ino
  | Op.Data s ->
      add_u8 b 3;
      add_str32 b s
  | Op.Len n ->
      add_u8 b 4;
      add_int b n
  | Op.St st ->
      add_u8 b 5;
      add_stat b st
  | Op.Names names ->
      add_u8 b 6;
      add_u32 b (List.length names);
      List.iter (fun n -> add_str16 b n) names

let add_outcome b = function
  | Ok v ->
      add_u8 b 0;
      add_value b v
  | Error e ->
      add_u8 b 1;
      add_u8 b (Errno.to_wire e)

let add_payload b ~version = function
  | Hello { version } -> add_u16 b version
  | Hello_ok { session; version } ->
      add_u32 b session;
      add_u16 b version
  | Detach | Detach_ok | Stats_req -> ()
  | Ping { token } -> add_int b token
  | Pong { token } -> add_int b token
  | Stats_reply s ->
      add_u32 b s.ws_sessions;
      add_int b s.ws_served;
      add_int b s.ws_busy;
      add_u32 b s.ws_recoveries;
      add_u8 b (if s.ws_degraded then 1 else 0)
  | Op_req { req; corr; op } ->
      add_u32 b req;
      add_op b op;
      (* The corr id rides as a trailing extension so a v1 payload stays
         byte-identical: old decoders never see the extra field. *)
      if version >= 2 then add_u32 b corr
  | Op_reply { req; outcome } ->
      add_u32 b req;
      add_outcome b outcome
  | Busy { req; retry_after_ms } ->
      add_u32 b req;
      add_u16 b retry_after_ms
  | Err { errno; msg } ->
      add_u8 b (Errno.to_wire errno);
      add_str16 b msg
  | Note_degraded { reason } -> add_str16 b reason
  | Note_recovered { seq; trigger; wall_us } ->
      add_u32 b seq;
      add_str16 b trigger;
      add_int b wall_us
  | Metrics_req | Bundles_req -> ()
  | Metrics_reply { text } -> add_str32 b text
  | Bundles_reply { names } ->
      add_u16 b (List.length names);
      List.iter (fun n -> add_str16 b n) names
  | Bundle_req { name } -> add_str16 b name
  | Bundle_reply { name; data } ->
      add_str16 b name;
      add_str32 b data

(* A reusable encoder: one payload buffer and one growable scratch area
   per connection, so the steady-state serving path allocates nothing per
   frame beyond what the transport itself copies out. *)
type encoder = { payload : Buffer.t; mutable scratch : Bytes.t }

let encoder () = { payload = Buffer.create 256; scratch = Bytes.create 256 }

let encode_into ?(version = protocol_version) enc frame out =
  Buffer.clear enc.payload;
  add_payload enc.payload ~version frame;
  let plen = Buffer.length enc.payload in
  let need = header_bytes + plen in
  if Bytes.length enc.scratch < need then
    enc.scratch <- Bytes.create (max need (2 * Bytes.length enc.scratch));
  let b = enc.scratch in
  Codec.set_u16 b 0 magic;
  Codec.set_u8 b 2 version;
  Codec.set_u8 b 3 (tag_of_frame frame);
  Codec.set_u32_int b 4 plen;
  Buffer.blit enc.payload 0 b header_bytes plen;
  let crc = Checksum.crc32c b ~pos:0 ~len:8 in
  let crc = Checksum.crc32c ~init:crc b ~pos:header_bytes ~len:plen in
  Codec.set_i32 b 8 crc;
  Buffer.add_subbytes out b 0 need

let encode ?version frame =
  let out = Buffer.create 64 in
  encode_into ?version (encoder ()) frame out;
  Buffer.contents out

(* ---- payload decoding ---- *)

let fail fmt = Format.kasprintf (fun s -> raise (Codec.Decode_error s)) fmt

let read_int c = Int64.to_int (Codec.Cursor.read_u64 c)

let read_str16 c =
  let len = Codec.Cursor.read_u16 c in
  Codec.Cursor.read_string c ~len

let read_str32 c =
  let len = Codec.Cursor.read_u32_int c in
  Codec.Cursor.read_string c ~len

(* Not List.init: the reader is effectful and must run strictly left to
   right, which List.init does not guarantee for long lists. *)
let read_list n f =
  let rec go acc i = if i >= n then List.rev acc else go (f () :: acc) (i + 1) in
  go [] 0

let read_path c =
  let n = Codec.Cursor.read_u16 c in
  read_list n (fun () ->
      let comp = read_str16 c in
      if not (Path.component_ok comp) then fail "bad path component %S" comp;
      comp)

let read_flags c =
  let bits = Codec.Cursor.read_u8 c in
  if bits land lnot 0x3f <> 0 then fail "unknown open-flag bits %#x" bits;
  let bit i = bits land (1 lsl i) <> 0 in
  {
    Types.rd = bit 0;
    wr = bit 1;
    creat = bit 2;
    excl = bit 3;
    trunc = bit 4;
    append = bit 5;
  }

let read_op c =
  match Codec.Cursor.read_u8 c with
  | 1 ->
      let path = read_path c in
      Op.Create (path, read_int c)
  | 2 ->
      let path = read_path c in
      Op.Mkdir (path, read_int c)
  | 3 -> Op.Unlink (read_path c)
  | 4 -> Op.Rmdir (read_path c)
  | 5 ->
      let path = read_path c in
      Op.Open (path, read_flags c)
  | 6 -> Op.Close (read_int c)
  | 7 ->
      let fd = read_int c in
      let off = read_int c in
      Op.Pread (fd, off, read_int c)
  | 8 ->
      let fd = read_int c in
      let off = read_int c in
      Op.Pwrite (fd, off, read_str32 c)
  | 9 -> Op.Lookup (read_path c)
  | 10 -> Op.Stat (read_path c)
  | 11 -> Op.Fstat (read_int c)
  | 12 -> Op.Readdir (read_path c)
  | 13 ->
      let src = read_path c in
      Op.Rename (src, read_path c)
  | 14 ->
      let path = read_path c in
      Op.Truncate (path, read_int c)
  | 15 ->
      let src = read_path c in
      Op.Link (src, read_path c)
  | 16 ->
      let target = read_str16 c in
      Op.Symlink (target, read_path c)
  | 17 -> Op.Readlink (read_path c)
  | 18 ->
      let path = read_path c in
      Op.Chmod (path, read_int c)
  | 19 -> Op.Fsync (read_int c)
  | 20 -> Op.Sync
  | t -> fail "unknown op tag %d" t

let read_stat c =
  let st_ino = read_int c in
  let st_kind =
    let code = Codec.Cursor.read_u8 c in
    match Types.kind_of_code code with Some k -> k | None -> fail "unknown stat kind %d" code
  in
  let st_size = read_int c in
  let st_nlink = read_int c in
  let st_mode = read_int c in
  let st_mtime = Codec.Cursor.read_u64 c in
  let st_ctime = Codec.Cursor.read_u64 c in
  { Types.st_ino; st_kind; st_size; st_nlink; st_mode; st_mtime; st_ctime }

let read_value c =
  match Codec.Cursor.read_u8 c with
  | 0 -> Op.Unit
  | 1 -> Op.Fd (read_int c)
  | 2 -> Op.Ino (read_int c)
  | 3 -> Op.Data (read_str32 c)
  | 4 -> Op.Len (read_int c)
  | 5 -> Op.St (read_stat c)
  | 6 ->
      let n = Codec.Cursor.read_u32_int c in
      if n > max_payload then fail "implausible name count %d" n;
      Op.Names
        (read_list n (fun () ->
             let name = read_str16 c in
             if not (Path.component_ok name) then fail "bad entry name %S" name;
             name))
  | t -> fail "unknown value tag %d" t

let read_outcome c : Op.outcome =
  match Codec.Cursor.read_u8 c with
  | 0 -> Ok (read_value c)
  | 1 -> Error (Errno.of_wire (Codec.Cursor.read_u8 c))
  | t -> fail "unknown outcome tag %d" t

let read_payload c ~version tag =
  if version < tag_min_version tag then
    fail "frame tag %d requires protocol version >= %d" tag (tag_min_version tag);
  match tag with
  | 1 -> Hello { version = Codec.Cursor.read_u16 c }
  | 2 ->
      let session = Codec.Cursor.read_u32_int c in
      Hello_ok { session; version = Codec.Cursor.read_u16 c }
  | 3 -> Detach
  | 4 -> Detach_ok
  | 5 -> Ping { token = read_int c }
  | 6 -> Pong { token = read_int c }
  | 7 -> Stats_req
  | 8 ->
      let ws_sessions = Codec.Cursor.read_u32_int c in
      let ws_served = read_int c in
      let ws_busy = read_int c in
      let ws_recoveries = Codec.Cursor.read_u32_int c in
      let ws_degraded =
        match Codec.Cursor.read_u8 c with
        | 0 -> false
        | 1 -> true
        | v -> fail "bad degraded flag %d" v
      in
      Stats_reply { ws_sessions; ws_served; ws_busy; ws_recoveries; ws_degraded }
  | 9 ->
      let req = Codec.Cursor.read_u32_int c in
      let op = read_op c in
      let corr = if version >= 2 then Codec.Cursor.read_u32_int c else 0 in
      Op_req { req; corr; op }
  | 10 ->
      let req = Codec.Cursor.read_u32_int c in
      Op_reply { req; outcome = read_outcome c }
  | 11 ->
      let req = Codec.Cursor.read_u32_int c in
      Busy { req; retry_after_ms = Codec.Cursor.read_u16 c }
  | 12 ->
      let errno = Errno.of_wire (Codec.Cursor.read_u8 c) in
      Err { errno; msg = read_str16 c }
  | 13 -> Note_degraded { reason = read_str16 c }
  | 14 ->
      let seq = Codec.Cursor.read_u32_int c in
      let trigger = read_str16 c in
      Note_recovered { seq; trigger; wall_us = read_int c }
  | 15 -> Metrics_req
  | 16 -> Metrics_reply { text = read_str32 c }
  | 17 -> Bundles_req
  | 18 ->
      let n = Codec.Cursor.read_u16 c in
      Bundles_reply { names = read_list n (fun () -> read_str16 c) }
  | 19 -> Bundle_req { name = read_str16 c }
  | 20 ->
      let name = read_str16 c in
      Bundle_reply { name; data = read_str32 c }
  | t -> fail "unknown frame tag %d" t

let decode buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then Fail (Bad_length len)
  else if len >= 2 && Codec.get_u16 buf pos <> magic then Fail Bad_magic
  else if len < header_bytes then Need_more
  else
    let version = Codec.get_u8 buf (pos + 2) in
    if version < min_protocol_version || version > protocol_version then
      Fail (Bad_version version)
    else
      let plen = Codec.get_u32_int buf (pos + 4) in
      if plen > max_payload then Fail (Bad_length plen)
      else if len < header_bytes + plen then Need_more
      else
        let crc = Checksum.crc32c buf ~pos ~len:8 in
        let crc = Checksum.crc32c ~init:crc buf ~pos:(pos + header_bytes) ~len:plen in
        if not (Int32.equal crc (Codec.get_i32 buf (pos + 8))) then Fail Bad_checksum
        else
          let tag = Codec.get_u8 buf (pos + 3) in
          let c = Codec.Cursor.of_bytes ~pos:(pos + header_bytes) buf in
          match read_payload c ~version tag with
          | frame ->
              if Codec.Cursor.pos c <> pos + header_bytes + plen then
                Fail (Bad_payload "trailing bytes in payload")
              else Frame (frame, header_bytes + plen)
          | exception Codec.Decode_error msg ->
              (* A length field inside the payload may legally point past the
                 payload end but inside the caller's buffer; the cursor is
                 bounded by the buffer, so clamp that case to Bad_payload
                 rather than over-reading into the next frame. *)
              Fail (Bad_payload msg)

let decode_string s =
  let b = Bytes.of_string s in
  decode b ~pos:0 ~len:(Bytes.length b)
