module Make (K : Lru.KEY) = struct
  module H = Hashtbl.Make (K)

  type 'v entry = { mutable value : 'v; mutable pinned : bool; where : [ `A1in | `Am ] }

  type 'v t = {
    table : 'v entry H.t;
    a1in : K.t Queue.t;  (* FIFO of probation keys *)
    mutable am : K.t list;  (* MRU-first LRU list of hot keys; small-n list ops *)
    ghosts : unit H.t;  (* A1out key set *)
    ghost_fifo : K.t Queue.t;
    capacity : int;
    kin : int;
    kout : int;
    on_evict : (K.t -> 'v -> unit) option;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
    mutable inserts : int;
  }

  let create ?on_evict ?(kin_ratio = 0.25) ?(kout_ratio = 0.5) ~capacity () =
    if capacity <= 0 then invalid_arg "Two_q.create: capacity must be positive";
    {
      table = H.create (2 * capacity);
      a1in = Queue.create ();
      am = [];
      ghosts = H.create capacity;
      ghost_fifo = Queue.create ();
      capacity;
      kin = max 1 (int_of_float (float_of_int capacity *. kin_ratio));
      kout = max 1 (int_of_float (float_of_int capacity *. kout_ratio));
      on_evict;
      hits = 0;
      misses = 0;
      evictions = 0;
      inserts = 0;
    }

  let length t = H.length t.table
  let ghost_length t = H.length t.ghosts

  let am_touch t key = t.am <- key :: List.filter (fun k -> not (K.equal k key)) t.am
  let am_remove t key = t.am <- List.filter (fun k -> not (K.equal k key)) t.am

  let ghost_add t key =
    if not (H.mem t.ghosts key) then begin
      H.replace t.ghosts key ();
      Queue.add key t.ghost_fifo;
      while H.length t.ghosts > t.kout do
        let victim = Queue.pop t.ghost_fifo in
        H.remove t.ghosts victim
      done
    end

  let evict_entry t key entry =
    H.remove t.table key;
    t.evictions <- t.evictions + 1;
    match t.on_evict with Some f -> f key entry.value | None -> ()

  (* Pop the first unpinned key of the A1in FIFO; requeue pinned ones. *)
  let pop_a1in_victim t =
    let n = Queue.length t.a1in in
    let rec go tried =
      if tried >= n then None
      else
        let key = Queue.pop t.a1in in
        match H.find_opt t.table key with
        | Some e when e.where = `A1in && not e.pinned -> Some (key, e)
        | Some e when e.where = `A1in ->
            Queue.add key t.a1in;
            go (tried + 1)
        | Some _ | None -> go tried (* stale queue residue: key moved or gone *)
    in
    go 0

  let pop_am_victim t =
    let rec go rev_keep = function
      | [] -> None
      | key :: rest -> (
          match H.find_opt t.table key with
          | Some e when not e.pinned ->
              t.am <- List.rev_append rev_keep rest;
              Some (key, e)
          | Some _ -> go (key :: rev_keep) rest
          | None -> go rev_keep rest)
    in
    (* LRU victim is at the tail: walk the reversed list. *)
    match go [] (List.rev t.am) with
    | None -> None
    | Some (key, e) ->
        t.am <- List.rev t.am;
        (* go already produced keep-list in tail order; restore MRU-first *)
        Some (key, e)

  let reclaim t =
    if H.length t.table >= t.capacity then begin
      (* 2Q reclaim: prefer evicting from A1in once it exceeds Kin; ghost
         the victim.  Otherwise evict the LRU of Am (no ghost). *)
      let a1in_size =
        Queue.fold (fun acc k -> match H.find_opt t.table k with Some e when e.where = `A1in -> acc + 1 | _ -> acc) 0 t.a1in
      in
      if a1in_size > t.kin then begin
        match pop_a1in_victim t with
        | Some (key, e) ->
            evict_entry t key e;
            ghost_add t key
        | None -> (
            match pop_am_victim t with
            | Some (key, e) -> evict_entry t key e
            | None -> ())
      end
      else
        match pop_am_victim t with
        | Some (key, e) -> evict_entry t key e
        | None -> (
            match pop_a1in_victim t with
            | Some (key, e) ->
                evict_entry t key e;
                ghost_add t key
            | None -> ())
    end

  let find t key =
    match H.find_opt t.table key with
    | Some e ->
        t.hits <- t.hits + 1;
        (* A hit in Am refreshes recency; a hit in A1in does NOT promote
           (classic 2Q: promotion happens only via the ghost queue). *)
        if e.where = `Am then am_touch t key;
        Some e.value
    | None ->
        t.misses <- t.misses + 1;
        None

  let peek t key = Option.map (fun e -> e.value) (H.find_opt t.table key)
  let mem t key = H.mem t.table key

  let put t key value =
    match H.find_opt t.table key with
    | Some e ->
        e.value <- value;
        if e.where = `Am then am_touch t key
    | None ->
        t.inserts <- t.inserts + 1;
        reclaim t;
        if H.mem t.ghosts key then begin
          (* Re-reference of a ghosted page: admit straight into Am. *)
          H.remove t.ghosts key;
          H.replace t.table key { value; pinned = false; where = `Am };
          am_touch t key
        end
        else begin
          H.replace t.table key { value; pinned = false; where = `A1in };
          Queue.add key t.a1in
        end

  let remove t key =
    match H.find_opt t.table key with
    | None -> ()
    | Some e ->
        H.remove t.table key;
        if e.where = `Am then am_remove t key

  let pin t key = match H.find_opt t.table key with Some e -> e.pinned <- true | None -> ()
  let unpin t key = match H.find_opt t.table key with Some e -> e.pinned <- false | None -> ()

  let clear t =
    H.reset t.table;
    Queue.clear t.a1in;
    t.am <- [];
    H.reset t.ghosts;
    Queue.clear t.ghost_fifo

  let iter t f = H.iter (fun k e -> f k e.value) t.table
  let fold t ~init ~f = H.fold (fun k e acc -> f acc k e.value) t.table init

  let stats t =
    { Lru.hits = t.hits; misses = t.misses; evictions = t.evictions; inserts = t.inserts }

  let reset_stats t =
    t.hits <- 0;
    t.misses <- 0;
    t.evictions <- 0;
    t.inserts <- 0
end
