module type KEY = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

type stats = { hits : int; misses : int; evictions : int; inserts : int }

module Make (K : KEY) = struct
  module H = Hashtbl.Make (K)

  type 'v node = {
    key : K.t;
    mutable value : 'v;
    mutable pinned : bool;
    mutable prev : 'v node option;  (* towards MRU *)
    mutable next : 'v node option;  (* towards LRU *)
  }

  type 'v t = {
    table : 'v node H.t;
    capacity : int;
    on_evict : (K.t -> 'v -> unit) option;
    mutable mru : 'v node option;
    mutable lru : 'v node option;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
    mutable inserts : int;
  }

  let create ?on_evict ~capacity () =
    if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
    {
      table = H.create (2 * capacity);
      capacity;
      on_evict;
      mru = None;
      lru = None;
      hits = 0;
      misses = 0;
      evictions = 0;
      inserts = 0;
    }

  let capacity t = t.capacity
  let length t = H.length t.table

  let detach t node =
    (match node.prev with Some p -> p.next <- node.next | None -> t.mru <- node.next);
    (match node.next with Some n -> n.prev <- node.prev | None -> t.lru <- node.prev);
    node.prev <- None;
    node.next <- None

  let push_front t node =
    node.next <- t.mru;
    node.prev <- None;
    (match t.mru with Some m -> m.prev <- Some node | None -> t.lru <- Some node);
    t.mru <- Some node

  let promote t node =
    detach t node;
    push_front t node

  let find t key =
    match H.find_opt t.table key with
    | Some node ->
        t.hits <- t.hits + 1;
        promote t node;
        Some node.value
    | None ->
        t.misses <- t.misses + 1;
        None

  let peek t key = Option.map (fun n -> n.value) (H.find_opt t.table key)
  let mem t key = H.mem t.table key

  let rec evict_from t node_opt =
    match node_opt with
    | None -> () (* everything pinned: allow growth *)
    | Some node ->
        if node.pinned then evict_from t node.prev
        else begin
          detach t node;
          H.remove t.table node.key;
          t.evictions <- t.evictions + 1;
          match t.on_evict with Some f -> f node.key node.value | None -> ()
        end

  let put t key value =
    match H.find_opt t.table key with
    | Some node ->
        node.value <- value;
        promote t node
    | None ->
        t.inserts <- t.inserts + 1;
        if H.length t.table >= t.capacity then evict_from t t.lru;
        let node = { key; value; pinned = false; prev = None; next = None } in
        H.replace t.table key node;
        push_front t node

  let remove t key =
    match H.find_opt t.table key with
    | None -> ()
    | Some node ->
        detach t node;
        H.remove t.table key

  let pin t key = match H.find_opt t.table key with Some n -> n.pinned <- true | None -> ()
  let unpin t key = match H.find_opt t.table key with Some n -> n.pinned <- false | None -> ()

  let pinned t key =
    match H.find_opt t.table key with Some n -> n.pinned | None -> false

  let clear t =
    H.reset t.table;
    t.mru <- None;
    t.lru <- None

  let iter t f = H.iter (fun k node -> f k node.value) t.table

  let fold t ~init ~f = H.fold (fun k node acc -> f acc k node.value) t.table init

  let stats t = { hits = t.hits; misses = t.misses; evictions = t.evictions; inserts = t.inserts }

  let reset_stats t =
    t.hits <- 0;
    t.misses <- 0;
    t.evictions <- 0;
    t.inserts <- 0
end

(* Shared by every cache exposing this [stats] shape (LRU, 2Q, dentry). *)
let register_stats reg ~prefix ?(reset = fun () -> ()) get =
  let c name help sample =
    Rae_obs.Metrics.register_counter reg ~help ~reset (prefix ^ "_" ^ name)
      (fun () -> sample (get ()))
  in
  c "hits_total" "cache hits" (fun s -> s.hits);
  c "misses_total" "cache misses" (fun s -> s.misses);
  c "evictions_total" "cache evictions" (fun s -> s.evictions);
  c "inserts_total" "cache inserts" (fun s -> s.inserts)
