(** A classic LRU cache with pinning.

    Functorized over the key type; used for the base filesystem's inode
    cache and (behind {!Policy}) its block cache.  Entries can be *pinned*
    (dirty blocks awaiting writeback): pinned entries are never chosen as
    eviction victims, which is how writeback interacts safely with
    eviction. *)

module type KEY = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

type stats = { hits : int; misses : int; evictions : int; inserts : int }

module Make (K : KEY) : sig
  type 'v t

  val create : ?on_evict:(K.t -> 'v -> unit) -> capacity:int -> unit -> 'v t
  (** @raise Invalid_argument when [capacity <= 0]. *)

  val capacity : 'v t -> int
  val length : 'v t -> int

  val find : 'v t -> K.t -> 'v option
  (** Hit promotes the entry to most-recently-used. *)

  val peek : 'v t -> K.t -> 'v option
  (** Hit without promotion and without touching hit/miss statistics. *)

  val mem : 'v t -> K.t -> bool

  val put : 'v t -> K.t -> 'v -> unit
  (** Insert or replace; may evict the least-recently-used unpinned entry
      (the [on_evict] hook fires for it).  When every entry is pinned the
      cache grows beyond capacity rather than evicting pinned data. *)

  val remove : 'v t -> K.t -> unit
  val pin : 'v t -> K.t -> unit
  val unpin : 'v t -> K.t -> unit
  val pinned : 'v t -> K.t -> bool
  val clear : 'v t -> unit
  (** Drop everything, pinned included, without firing [on_evict] — the
      contained-reboot "do not trust, do not write back" path. *)

  val iter : 'v t -> (K.t -> 'v -> unit) -> unit
  val fold : 'v t -> init:'a -> f:('a -> K.t -> 'v -> 'a) -> 'a
  val stats : 'v t -> stats
  val reset_stats : 'v t -> unit
end

val register_stats :
  Rae_obs.Metrics.t -> prefix:string -> ?reset:(unit -> unit) -> (unit -> stats) -> unit
(** Register a [stats] sampler as [<prefix>_{hits,misses,evictions,inserts}_total]
    counters.  Shared by every cache exposing this record (LRU, 2Q, dentry);
    [reset] is wired into the registry's reset hook. *)
