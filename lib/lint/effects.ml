(* Interprocedural effect inference: one cross-unit fixpoint over the
   call graph assigning every definition an effect signature —

     raw-write      touches a raw block-write sink (directly or via call)
     raw-flush      touches a raw flush/barrier sink
     bypass-write   originates a raw write outside the sanctioned
                    writers (the def itself references the sink and is
                    neither a [persist_writers] entry nor exempted)
     bypass-flush   same for flush
     journal-append opens/appends a journal transaction
     journal-commit makes a transaction durable
     shadow-mutate  writes a mutable field of shadow/spec state
     global-mutate  writes a toplevel mutable cell or a mutable record
                    field
     may-raise      the extension constructors the def can raise,
                    transitively

   plus, for the purity rule, the shortest call-path distance from the
   def to every reachable purity sink (with the next hop recorded, so
   witness chains can be reconstructed without re-running a search).

   Monotone worklist fixpoint: bits and raise-sets only grow, sink
   distances only shrink, so termination is structural.  Callee effects
   propagate unconditionally except the bypass bits, which exist to
   place blame: they stay on the originating definition. *)

module S = Set.Make (String)

let b_raw_write = 1
let b_raw_flush = 2
let b_bypass_write = 4
let b_bypass_flush = 8
let b_j_append = 16
let b_j_commit = 32
let b_shadow_mut = 64
let b_global_mut = 128

(* Callee-propagated subset (bypass stays home). *)
let propagated = b_raw_write lor b_raw_flush lor b_j_append lor b_j_commit lor b_shadow_mut lor b_global_mut

let effect_names bits =
  List.filter_map
    (fun (b, n) -> if bits land b <> 0 then Some n else None)
    [
      (b_raw_write, "raw-write"); (b_raw_flush, "raw-flush");
      (b_bypass_write, "bypass-write"); (b_bypass_flush, "bypass-flush");
      (b_j_append, "journal-append"); (b_j_commit, "journal-commit");
      (b_shadow_mut, "shadow-mutate"); (b_global_mut, "global-mutate");
    ]
  [@@ocamlformat "disable"]

type sinkpath = { sp_dist : int; sp_via : string option }

type summary = {
  mutable bits : int;
  mutable raises : S.t;
  mutable sinks : (string * sinkpath) list;  (* concrete sink name -> shortest path *)
}

type t = {
  cfg : Lintcfg.t;
  summaries : (string, summary) Hashtbl.t;
  unit_attrs : (string, string list) Hashtbl.t;
}

let summary t name = Hashtbl.find_opt t.summaries name
let may_raise t name = match summary t name with Some s -> S.elements s.raises | None -> []
let has s bit = s.bits land bit <> 0

(* [@@lint_exempt scope] on the def, or [@@@lint_exempt scope] on its
   unit; scope "all" covers everything. *)
let def_exempt t scope (d : Analysis.def) =
  let covers l = List.mem scope l || List.mem "all" l in
  covers d.Analysis.d_attrs
  ||
  match Hashtbl.find_opt t.unit_attrs d.Analysis.d_unit with
  | Some l -> covers l
  | None -> false

let is_allowed_writer t (d : Analysis.def) =
  Lintcfg.name_in_list t.cfg.Lintcfg.persist_writers d.Analysis.d_name
  || def_exempt t "persist-order" d

let rec iter_tree f (tr : Analysis.ptree) =
  match tr with
  | Analysis.P_seq l | Analysis.P_alt l -> List.iter (iter_tree f) l
  | Analysis.P_try (b, hs) ->
      iter_tree f b;
      List.iter (iter_tree f) hs
  | Analysis.P_local (_, b) -> iter_tree f b
  | Analysis.P_ref _ | Analysis.P_lit _ | Analysis.P_field _ -> f tr

let purity_sink_match (cfg : Lintcfg.t) name = Lintcfg.name_in_list cfg.Lintcfg.purity_sinks name

let infer (cfg : Lintcfg.t) (analyses : Analysis.unit_analysis list) (graph : Analysis.graph) =
  let unit_attrs = Hashtbl.create 32 in
  List.iter
    (fun (a : Analysis.unit_analysis) ->
      if a.Analysis.a_attrs <> [] then Hashtbl.replace unit_attrs a.Analysis.a_unit a.Analysis.a_attrs)
    analyses;
  let summaries = Hashtbl.create 1024 in
  let t = { cfg; summaries; unit_attrs } in
  let get name =
    match Hashtbl.find_opt summaries name with
    | Some s -> s
    | None ->
        let s = { bits = 0; raises = S.empty; sinks = [] } in
        Hashtbl.replace summaries name s;
        s
  in
  (* Per-def write accesses drive the mutate bits. *)
  let shadow_write (tgt : Analysis.target) =
    match tgt with
    | Analysis.T_field f ->
        List.exists (fun p -> String.starts_with ~prefix:p f) cfg.Lintcfg.shadow_state_types
    | Analysis.T_global _ -> false
  in
  let global_write (tgt : Analysis.target) =
    match tgt with
    | Analysis.T_field _ -> true
    | Analysis.T_global g -> (
        match Hashtbl.find_opt graph.Analysis.nodes g with
        | Some d -> d.Analysis.d_cell <> None
        | None -> false)
  in
  (* Direct (intra-def) effects. *)
  Hashtbl.iter
    (fun name (d : Analysis.def) ->
      let s = get name in
      let allowed = is_allowed_writer t d in
      List.iter
        (fun (r, _) ->
          if Lintcfg.name_in_list cfg.Lintcfg.persist_raw_sinks r then begin
            s.bits <- s.bits lor b_raw_write;
            if not allowed then s.bits <- s.bits lor b_bypass_write
          end;
          if Lintcfg.name_in_list cfg.Lintcfg.persist_flush_sinks r then begin
            s.bits <- s.bits lor b_raw_flush;
            if not allowed then s.bits <- s.bits lor b_bypass_flush
          end;
          if Lintcfg.name_in_list cfg.Lintcfg.journal_append_fns r then
            s.bits <- s.bits lor b_j_append;
          if Lintcfg.name_in_list cfg.Lintcfg.journal_commit_fns r then
            s.bits <- s.bits lor b_j_commit)
        d.Analysis.d_refs;
      (* Reading a device function field is a raw write/flush in waiting:
         crashsim/fault grab [t.dev_write] and call it. *)
      iter_tree
        (fun n ->
          match n with
          | Analysis.P_field (f, _) ->
              if List.mem f cfg.Lintcfg.persist_sink_fields then begin
                s.bits <- s.bits lor b_raw_write;
                if not allowed then s.bits <- s.bits lor b_bypass_write
              end;
              if List.mem f cfg.Lintcfg.persist_flush_fields then begin
                s.bits <- s.bits lor b_raw_flush;
                if not allowed then s.bits <- s.bits lor b_bypass_flush
              end
          | _ -> ())
        d.Analysis.d_tree;
      s.raises <- S.union s.raises (S.of_list d.Analysis.d_raises))
    graph.Analysis.nodes;
  List.iter
    (fun (a : Analysis.unit_analysis) ->
      List.iter
        (fun (c : Analysis.access) ->
          if c.Analysis.c_kind = Analysis.Acc_write then begin
            let s = get c.Analysis.c_def in
            if shadow_write c.Analysis.c_target then s.bits <- s.bits lor b_shadow_mut;
            if global_write c.Analysis.c_target then s.bits <- s.bits lor b_global_mut
          end)
        a.Analysis.a_accesses)
    analyses;
  (* Reverse edges: callee def -> calling defs. *)
  let callers : (string, string list) Hashtbl.t = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun name (d : Analysis.def) ->
      List.iter
        (fun (r, _) ->
          if Hashtbl.mem graph.Analysis.nodes r then
            Hashtbl.replace callers r (name :: Option.value ~default:[] (Hashtbl.find_opt callers r)))
        d.Analysis.d_refs)
    graph.Analysis.nodes;
  (* Worklist: re-derive a def's summary from its callees; on change,
     requeue its callers. *)
  let queue = Queue.create () in
  let queued : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  let enqueue n =
    if not (Hashtbl.mem queued n) then begin
      Hashtbl.replace queued n ();
      Queue.add n queue
    end
  in
  Hashtbl.iter (fun name _ -> enqueue name) graph.Analysis.nodes;
  let sink_add s sink dist via =
    match List.assoc_opt sink s.sinks with
    | Some sp when sp.sp_dist <= dist -> false
    | _ ->
        s.sinks <-
          (sink, { sp_dist = dist; sp_via = via }) :: List.remove_assoc sink s.sinks;
        true
  in
  while not (Queue.is_empty queue) do
    let name = Queue.take queue in
    Hashtbl.remove queued name;
    match Hashtbl.find_opt graph.Analysis.nodes name with
    | None -> ()
    | Some d ->
        let s = get name in
        let changed = ref false in
        List.iter
          (fun (r, _) ->
            if purity_sink_match cfg r then
              if sink_add s r 1 None then changed := true;
            match Hashtbl.find_opt summaries r with
            | Some cs when Hashtbl.mem graph.Analysis.nodes r ->
                let nb = s.bits lor (cs.bits land propagated) in
                if nb <> s.bits then begin
                  s.bits <- nb;
                  changed := true
                end;
                if not (S.subset cs.raises s.raises) then begin
                  s.raises <- S.union s.raises cs.raises;
                  changed := true
                end;
                List.iter
                  (fun (sink, sp) ->
                    if sink_add s sink (sp.sp_dist + 1) (Some r) then changed := true)
                  cs.sinks
            | _ -> ())
          d.Analysis.d_refs;
        if !changed then
          List.iter enqueue (Option.value ~default:[] (Hashtbl.find_opt callers name))
  done;
  t

(* Reconstruct the witness call chain def -> ... -> sink recorded by the
   shortest-distance fixpoint. *)
let sink_chain t name sink =
  let rec go name acc fuel =
    if fuel <= 0 then List.rev (sink :: acc)
    else
      match summary t name with
      | None -> List.rev (sink :: acc)
      | Some s -> (
          match List.assoc_opt sink s.sinks with
          | None | Some { sp_via = None; _ } -> List.rev (sink :: name :: acc)
          | Some { sp_via = Some via; _ } -> go via (name :: acc) (fuel - 1))
  in
  go name [] 64

let sink_distance t name sink =
  match summary t name with
  | None -> None
  | Some s -> Option.map (fun sp -> sp.sp_dist) (List.assoc_opt sink s.sinks)

let sinks_of t name = match summary t name with Some s -> List.map fst s.sinks | None -> []
