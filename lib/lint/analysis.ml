(* One pass over a unit's typed AST (Tast_iterator) collecting everything
   the rules and the effect inference consume:

   - a def-level reference graph (value definition -> referenced global
     values), with the extension constructors each definition builds;
   - an ordered control-flow tree ([ptree]) per definition — sequencing,
     branching, exception scopes, let-bound local functions (deferred),
     calls carrying a literal first argument, and record-field reads —
     the input to the path-sensitive typestate rules (persist-order,
     phase-order);
   - mutable-state accesses: reads/writes of toplevel cells (refs,
     Hashtbls, Buffers, ...) and of mutable record fields, keyed by the
     enclosing definition — the input to the domain-safety pre-pass;
   - [@@@lint_exempt "scope"] / [@@lint_exempt "scope"] attributes,
     unit- and definition-level;
   - try/match-exception sites, with catch-all classification and the
     references made inside the guarded body;
   - every dotted value identifier, with the instantiated first-argument
     type when the identifier is used at an arrow type (poly-compare and
     partial-call rules).

   Names are normalized as in [Cmt_load]: local module aliases
   ([module Device = Rae_block.Device]) are substituted at the path head,
   and unqualified locals are prefixed with their unit name — so a local
   [phase] in [Rae_core.Controller] and the toplevel defs share the
   "Unit.name" form.  Mutable record fields are named through their
   record type: "Rae_obs.Events.t.clock". *)

type loc = { l_file : string; l_line : int }

let loc_of (l : Location.t) =
  { l_file = l.Location.loc_start.Lexing.pos_fname; l_line = l.Location.loc_start.Lexing.pos_lnum }

(* Ordered control-flow tree.  [P_local] is a let-bound function whose
   body runs only when referenced ([P_ref] of the same name later in the
   tree); anonymous functions are inlined at their occurrence (they are
   overwhelmingly iterator callbacks that do run there).  A loop body
   appears as Alt [nothing; body; body] so cross-iteration orderings are
   visible to the typestate evaluators. *)
type ptree =
  | P_seq of ptree list
  | P_alt of ptree list  (* exactly one branch runs *)
  | P_try of ptree * ptree list  (* guarded body, exception handlers *)
  | P_ref of string * loc  (* use of a value (call or first-class) *)
  | P_lit of string * string * loc  (* apply of [fn] with a literal first argument *)
  | P_field of string * loc  (* read of record field "Type.field" *)
  | P_local of string * ptree  (* let-bound local function, deferred *)

type access_kind = Acc_read | Acc_write

type target =
  | T_global of string  (* a named value; meaningful when it is a toplevel cell *)
  | T_field of string  (* "Type.field" *)

type access = { c_def : string; c_target : target; c_kind : access_kind; c_loc : loc }

type def = {
  d_name : string;
  d_unit : string;
  d_loc : loc;
  mutable d_refs : (string * loc) list;  (* newest first *)
  mutable d_raises : string list;
  mutable d_tree : ptree;
  mutable d_attrs : string list;  (* lint_exempt scopes on this binding *)
  mutable d_cell : string option;  (* allocator kind when the def IS a mutable cell *)
}

type try_site = {
  t_unit : string;
  t_loc : loc;
  t_catchall : bool;  (* has a wildcard/var handler that does not re-raise *)
  t_handles_notfound : bool;
  t_body_refs : (string * loc) list;
  t_body_raises : string list;
  t_body_first_line : int;
  t_body_last_line : int;
}

type ident_hit = {
  h_path : string;  (* normalized, e.g. "Stdlib.List.hd" *)
  h_loc : loc;
  h_arg_type : string option;  (* normalized head constructor of the first argument *)
}

type unit_analysis = {
  a_unit : string;
  a_source : string;
  a_defs : def list;
  a_tries : try_site list;
  a_idents : ident_hit list;
  a_accesses : access list;
  a_attrs : string list;  (* unit-level lint_exempt scopes *)
}

(* ---- path normalization ---- *)

let resolve_path ~aliases ~unit p =
  let name = Path.name p in
  let head = Path.head p in
  if Ident.global head then Cmt_load.normalize name
  else
    let hname = Ident.name head in
    let rest = String.sub name (String.length hname) (String.length name - String.length hname) in
    match Hashtbl.find_opt aliases hname with
    | Some target -> Cmt_load.normalize (target ^ rest)
    | None -> Cmt_load.normalize (unit ^ "." ^ name)

(* "Type.field" for a record label, through the instantiated record
   type, so [t.dev_write] names "Rae_block.Device.t.dev_write" no matter
   where the access happens. *)
let field_name ~aliases ~unit (lbl : Types.label_description) =
  match Types.get_desc lbl.Types.lbl_res with
  | Types.Tconstr (p, _, _) ->
      Some (resolve_path ~aliases ~unit p ^ "." ^ lbl.Types.lbl_name)
  | _ -> None

(* ---- attributes ---- *)

let attr_string (a : Parsetree.attribute) =
  match a.Parsetree.attr_payload with
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Parsetree.Pstr_eval
              ({ pexp_desc = Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

(* [@@@lint_exempt "persist-order"] (unit) / [@@lint_exempt "..."] (def).
   A payload-less attribute exempts every scope. *)
let lint_exempt_scopes attrs =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      if String.equal a.Parsetree.attr_name.Location.txt "lint_exempt" then
        Some (match attr_string a with Some s -> s | None -> "all")
      else None)
    attrs

(* ---- stdlib mutators/readers of mutable containers ---- *)

(* fn name -> argument index holding the mutated / read container.
   [Stdlib.!] doubles as the unwrapping step for [!cell.(i) <- v]. *)
let mutator_table =
  [
    ("Stdlib.:=", 0); ("Stdlib.incr", 0); ("Stdlib.decr", 0);
    ("Stdlib.Hashtbl.replace", 0); ("Stdlib.Hashtbl.add", 0); ("Stdlib.Hashtbl.remove", 0);
    ("Stdlib.Hashtbl.reset", 0); ("Stdlib.Hashtbl.clear", 0);
    ("Stdlib.Hashtbl.filter_map_inplace", 1);
    ("Stdlib.Buffer.add_char", 0); ("Stdlib.Buffer.add_string", 0);
    ("Stdlib.Buffer.add_bytes", 0); ("Stdlib.Buffer.add_subbytes", 0);
    ("Stdlib.Buffer.clear", 0); ("Stdlib.Buffer.reset", 0); ("Stdlib.Buffer.truncate", 0);
    ("Stdlib.Queue.push", 1); ("Stdlib.Queue.add", 1); ("Stdlib.Queue.pop", 0);
    ("Stdlib.Queue.take", 0); ("Stdlib.Queue.clear", 0); ("Stdlib.Queue.transfer", 0);
    ("Stdlib.Array.set", 0); ("Stdlib.Array.unsafe_set", 0); ("Stdlib.Array.fill", 0);
    ("Stdlib.Array.blit", 2); ("Stdlib.Array.sort", 1); ("Stdlib.Array.fast_sort", 1);
    ("Stdlib.Bytes.set", 0); ("Stdlib.Bytes.unsafe_set", 0); ("Stdlib.Bytes.fill", 0);
    ("Stdlib.Bytes.blit", 2); ("Stdlib.Bytes.blit_string", 2);
    ("Stdlib.Atomic.set", 0); ("Stdlib.Atomic.exchange", 0);
    ("Stdlib.Atomic.compare_and_set", 0); ("Stdlib.Atomic.fetch_and_add", 0);
    ("Stdlib.Atomic.incr", 0); ("Stdlib.Atomic.decr", 0);
  ]
  [@@ocamlformat "disable"]

let reader_table =
  [
    ("Stdlib.!", 0);
    ("Stdlib.Hashtbl.find", 0); ("Stdlib.Hashtbl.find_opt", 0); ("Stdlib.Hashtbl.find_all", 0);
    ("Stdlib.Hashtbl.mem", 0); ("Stdlib.Hashtbl.length", 0); ("Stdlib.Hashtbl.iter", 1);
    ("Stdlib.Hashtbl.fold", 1); ("Stdlib.Hashtbl.copy", 0); ("Stdlib.Hashtbl.to_seq", 0);
    ("Stdlib.Buffer.contents", 0); ("Stdlib.Buffer.length", 0); ("Stdlib.Buffer.to_bytes", 0);
    ("Stdlib.Buffer.nth", 0); ("Stdlib.Buffer.sub", 0);
    ("Stdlib.Queue.length", 0); ("Stdlib.Queue.peek", 0); ("Stdlib.Queue.peek_opt", 0);
    ("Stdlib.Queue.is_empty", 0); ("Stdlib.Queue.iter", 1); ("Stdlib.Queue.fold", 2);
    ("Stdlib.Array.get", 0); ("Stdlib.Array.unsafe_get", 0); ("Stdlib.Array.length", 0);
    ("Stdlib.Array.iter", 1); ("Stdlib.Array.iteri", 1); ("Stdlib.Array.fold_left", 2);
    ("Stdlib.Array.map", 1); ("Stdlib.Array.mapi", 1); ("Stdlib.Array.to_list", 0);
    ("Stdlib.Array.sub", 0); ("Stdlib.Array.copy", 0); ("Stdlib.Array.exists", 1);
    ("Stdlib.Array.mem", 1); ("Stdlib.Array.memq", 1);
    ("Stdlib.Bytes.get", 0); ("Stdlib.Bytes.unsafe_get", 0); ("Stdlib.Bytes.length", 0);
    ("Stdlib.Bytes.sub", 0); ("Stdlib.Bytes.copy", 0); ("Stdlib.Bytes.to_string", 0);
    ("Stdlib.Atomic.get", 0);
  ]
  [@@ocamlformat "disable"]

let allocator_kind (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_apply ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, _) -> (
      match Path.name p with
      | "Stdlib.ref" -> Some "ref"
      | "Stdlib.Hashtbl.create" -> Some "hashtbl"
      | "Stdlib.Buffer.create" -> Some "buffer"
      | "Stdlib.Queue.create" -> Some "queue"
      | "Stdlib.Atomic.make" -> Some "atomic"
      | "Stdlib.Array.make" | "Stdlib.Array.init" | "Stdlib.Array.create_float" -> Some "array"
      | "Stdlib.Bytes.create" | "Stdlib.Bytes.make" -> Some "bytes"
      | _ -> None)
  | _ -> None

(* ---- pattern helpers ---- *)

let rec pattern_is_catchall : Typedtree.pattern -> bool =
 fun p ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_any | Typedtree.Tpat_var _ -> true
  | Typedtree.Tpat_alias (p, _, _) -> pattern_is_catchall p
  | Typedtree.Tpat_or (a, b, _) -> pattern_is_catchall a || pattern_is_catchall b
  | _ -> false

let rec pattern_bound_var : Typedtree.pattern -> string option =
 fun p ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, _) -> Some (Ident.name id)
  | Typedtree.Tpat_alias (p, id, _) -> (
      match pattern_bound_var p with Some v -> Some v | None -> Some (Ident.name id))
  | _ -> None

let rec pattern_matches_ctor name : Typedtree.pattern -> bool =
 fun p ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_construct (_, cd, _, _) -> String.equal cd.Types.cstr_name name
  | Typedtree.Tpat_alias (p, _, _) -> pattern_matches_ctor name p
  | Typedtree.Tpat_or (a, b, _) -> pattern_matches_ctor name a || pattern_matches_ctor name b
  | _ -> false

(* Does [e] re-raise the exception bound to [var]?  Recognizes
   [raise var] / [raise_notrace var] anywhere in the handler body. *)
let reraises var e =
  let found = ref false in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_apply ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, args) -> (
        match Path.name p with
        | "Stdlib.raise" | "Stdlib.raise_notrace" -> (
            match args with
            | (_, Some { Typedtree.exp_desc = Typedtree.Texp_ident (Path.Pident id, _, _); _ }) :: _
              when String.equal (Ident.name id) var ->
                found := true
            | _ -> ())
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

(* ---- instantiated first-argument type of an identifier use ---- *)

let first_arg_type ~aliases ~unit ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, t1, _, _) -> (
      match Types.get_desc t1 with
      | Types.Tconstr (p, _, _) -> Some (resolve_path ~aliases ~unit p)
      | _ -> None)
  | _ -> None

let is_function (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with Typedtree.Texp_function _ -> true | _ -> false

(* ---- the walk ---- *)

let analyze_unit ~unit ~source (str : Typedtree.structure) =
  let aliases : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let defs : (string, def) Hashtbl.t = Hashtbl.create 64 in
  let def_order = ref [] in
  let tries = ref [] in
  let idents = ref [] in
  let accesses = ref [] in
  let unit_attrs = ref [] in
  let get_def name loc =
    match Hashtbl.find_opt defs name with
    | Some d -> d
    | None ->
        let d =
          {
            d_name = name;
            d_unit = unit;
            d_loc = loc;
            d_refs = [];
            d_raises = [];
            d_tree = P_seq [];
            d_attrs = [];
            d_cell = None;
          }
        in
        Hashtbl.replace defs name d;
        def_order := d :: !def_order;
        d
  in
  let init = get_def (unit ^ ".%init") { l_file = source; l_line = 1 } in
  let current = ref init in
  (* Tree collection: the innermost collector receives the nodes the walk
     emits; [collect] brackets a sub-walk into its own subtree. *)
  let init_nodes = ref [] in
  let tree_stack = ref [ init_nodes ] in
  let emit n = match !tree_stack with top :: _ -> top := n :: !top | [] -> () in
  let collect f =
    let c = ref [] in
    tree_stack := c :: !tree_stack;
    f ();
    (tree_stack := match !tree_stack with _ :: rest -> rest | [] -> []);
    P_seq (List.rev !c)
  in
  let with_def d attrs f =
    let saved = !current in
    current := d;
    d.d_attrs <- lint_exempt_scopes attrs @ d.d_attrs;
    let tree = collect f in
    (d.d_tree <-
       (match d.d_tree with P_seq [] -> tree | existing -> P_seq [ existing; tree ]));
    current := saved
  in
  (* Slice the refs/raises a sub-walk of the current def added. *)
  let slice f =
    let d = !current in
    let refs0 = d.d_refs and raises0 = d.d_raises in
    let n_refs = List.length refs0 and n_raises = List.length raises0 in
    f ();
    let take n l =
      let rec go acc n l =
        if n <= 0 then List.rev acc
        else match l with [] -> List.rev acc | x :: tl -> go (x :: acc) (n - 1) tl
      in
      go [] n l
    in
    let new_refs = take (List.length d.d_refs - n_refs) d.d_refs in
    let new_raises = take (List.length d.d_raises - n_raises) d.d_raises in
    (new_refs, new_raises)
  in
  let record_access target kind loc =
    accesses := { c_def = !current.d_name; c_target = target; c_kind = kind; c_loc = loc } :: !accesses
  in
  (* The container argument of a mutator/reader call, unwrapped through
     [!cell] so [!names.(i) <- s] targets [names]. *)
  let rec target_of (e : Typedtree.expression) =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> Some (T_global (resolve_path ~aliases ~unit p))
    | Typedtree.Texp_field (_, _, lbl) ->
        Option.map (fun f -> T_field f) (field_name ~aliases ~unit lbl)
    | Typedtree.Texp_apply ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, [ (_, Some arg) ])
      when String.equal (Path.name p) "Stdlib.!" ->
        target_of arg
    | _ -> None
  in
  let record_try ~loc ~body_loc ~body_refs ~body_raises ~catchall ~notfound =
    tries :=
      {
        t_unit = unit;
        t_loc = loc;
        t_catchall = catchall;
        t_handles_notfound = notfound;
        t_body_refs = body_refs;
        t_body_raises = body_raises;
        t_body_first_line = body_loc.Location.loc_start.Lexing.pos_lnum;
        t_body_last_line = body_loc.Location.loc_end.Lexing.pos_lnum;
      }
      :: !tries
  in
  (* Classify a list of exception-handler (value) cases. *)
  let classify_handlers cases =
    let catchall =
      List.exists
        (fun (pat, rhs) ->
          pattern_is_catchall pat
          && not (match pattern_bound_var pat with Some v -> reraises v rhs | None -> false))
        cases
    in
    let notfound =
      catchall || List.exists (fun (pat, _) -> pattern_matches_ctor "Not_found" pat) cases
    in
    (catchall, notfound)
  in
  let expr sub (e : Typedtree.expression) =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) ->
        let name = resolve_path ~aliases ~unit p in
        let loc = loc_of e.Typedtree.exp_loc in
        let d = !current in
        d.d_refs <- (name, loc) :: d.d_refs;
        emit (P_ref (name, loc));
        if String.contains name '.' then
          idents :=
            {
              h_path = name;
              h_loc = loc;
              h_arg_type = first_arg_type ~aliases ~unit e.Typedtree.exp_type;
            }
            :: !idents
    | Typedtree.Texp_construct (_, cd, _) -> (
        (match cd.Types.cstr_tag with
        | Types.Cstr_extension (p, _) ->
            let d = !current in
            d.d_raises <- resolve_path ~aliases ~unit p :: d.d_raises
        | _ -> ());
        Tast_iterator.default_iterator.expr sub e)
    | Typedtree.Texp_apply (f, args) ->
        sub.Tast_iterator.expr sub f;
        let loc = loc_of e.Typedtree.exp_loc in
        let fname =
          match f.Typedtree.exp_desc with
          | Typedtree.Texp_ident (p, _, _) -> Some (resolve_path ~aliases ~unit p)
          | _ -> None
        in
        (* A call whose first actual argument is a string literal: the
           shape of phase markers ([phase "seed" ...]).  Emitted before
           the argument walk so the marker precedes its own body. *)
        (match (fname, List.filter_map snd args) with
        | Some fn, { Typedtree.exp_desc = Typedtree.Texp_constant (Asttypes.Const_string (s, _, _)); _ } :: _
          ->
            emit (P_lit (fn, s, loc))
        | _ -> ());
        List.iter (fun (_, a) -> Option.iter (sub.Tast_iterator.expr sub) a) args;
        (* Mutable-container access through a known stdlib entry point. *)
        let arg_at i = match List.nth_opt args i with Some (_, a) -> a | None -> None in
        (match fname with
        | Some fn -> (
            let record table kind =
              match List.assoc_opt fn table with
              | Some i -> (
                  match Option.bind (arg_at i) target_of with
                  | Some t -> record_access t kind loc
                  | None -> ())
              | None -> ()
            in
            record mutator_table Acc_write;
            record reader_table Acc_read)
        | None -> ())
    | Typedtree.Texp_field (r, _, lbl) ->
        sub.Tast_iterator.expr sub r;
        let loc = loc_of e.Typedtree.exp_loc in
        (match field_name ~aliases ~unit lbl with
        | Some f ->
            emit (P_field (f, loc));
            if lbl.Types.lbl_mut = Asttypes.Mutable then record_access (T_field f) Acc_read loc
        | None -> ())
    | Typedtree.Texp_setfield (r, _, lbl, v) ->
        sub.Tast_iterator.expr sub r;
        sub.Tast_iterator.expr sub v;
        (match field_name ~aliases ~unit lbl with
        | Some f -> record_access (T_field f) Acc_write (loc_of e.Typedtree.exp_loc)
        | None -> ())
    | Typedtree.Texp_let (_, vbs, body) ->
        List.iter
          (fun vb ->
            match (pattern_bound_var vb.Typedtree.vb_pat, is_function vb.Typedtree.vb_expr) with
            | Some v, true ->
                (* Local function: its body runs where it is referenced,
                   not where it is bound. *)
                let t = collect (fun () -> sub.Tast_iterator.expr sub vb.Typedtree.vb_expr) in
                emit (P_local (unit ^ "." ^ v, t))
            | _ -> sub.Tast_iterator.expr sub vb.Typedtree.vb_expr)
          vbs;
        sub.Tast_iterator.expr sub body
    | Typedtree.Texp_ifthenelse (c, t, eo) ->
        sub.Tast_iterator.expr sub c;
        let bt = collect (fun () -> sub.Tast_iterator.expr sub t) in
        let be =
          match eo with
          | Some e -> collect (fun () -> sub.Tast_iterator.expr sub e)
          | None -> P_seq []
        in
        emit (P_alt [ bt; be ])
    | Typedtree.Texp_while (c, b) ->
        sub.Tast_iterator.expr sub c;
        let bt = collect (fun () -> sub.Tast_iterator.expr sub b) in
        emit (P_alt [ P_seq []; P_seq [ bt; bt ] ])
    | Typedtree.Texp_for (_, _, lo, hi, _, b) ->
        sub.Tast_iterator.expr sub lo;
        sub.Tast_iterator.expr sub hi;
        let bt = collect (fun () -> sub.Tast_iterator.expr sub b) in
        emit (P_alt [ P_seq []; P_seq [ bt; bt ] ])
    | Typedtree.Texp_try (body, cases) ->
        let body_tree = ref (P_seq []) in
        let body_refs, body_raises =
          slice (fun () -> body_tree := collect (fun () -> sub.Tast_iterator.expr sub body))
        in
        let handlers = List.map (fun c -> (c.Typedtree.c_lhs, c.Typedtree.c_rhs)) cases in
        let catchall, notfound = classify_handlers handlers in
        if catchall || notfound then
          record_try ~loc:(loc_of e.Typedtree.exp_loc) ~body_loc:body.Typedtree.exp_loc ~body_refs
            ~body_raises ~catchall ~notfound;
        let handler_trees =
          List.map
            (fun c ->
              collect (fun () ->
                  Option.iter (sub.Tast_iterator.expr sub) c.Typedtree.c_guard;
                  sub.Tast_iterator.expr sub c.Typedtree.c_rhs))
            cases
        in
        emit (P_try (!body_tree, handler_trees))
    | Typedtree.Texp_match (scrut, cases, _) ->
        let scrut_tree = ref (P_seq []) in
        let body_refs, body_raises =
          slice (fun () -> scrut_tree := collect (fun () -> sub.Tast_iterator.expr sub scrut))
        in
        let value_cases, exn_cases =
          List.fold_right
            (fun c (vs, es) ->
              match Typedtree.split_pattern c.Typedtree.c_lhs with
              | _, Some exn_pat -> (vs, (exn_pat, c) :: es)
              | Some _, None -> ((c.Typedtree.c_lhs, c) :: vs, es)
              | None, None -> (vs, es))
            cases ([], [])
        in
        (if exn_cases <> [] then
           let handlers = List.map (fun (p, c) -> (p, c.Typedtree.c_rhs)) exn_cases in
           let catchall, notfound = classify_handlers handlers in
           if catchall || notfound then
             record_try ~loc:(loc_of e.Typedtree.exp_loc) ~body_loc:scrut.Typedtree.exp_loc
               ~body_refs ~body_raises ~catchall ~notfound);
        let case_tree (_, c) =
          collect (fun () ->
              Option.iter (sub.Tast_iterator.expr sub) c.Typedtree.c_guard;
              sub.Tast_iterator.expr sub c.Typedtree.c_rhs)
        in
        let exn_trees = List.map case_tree exn_cases in
        let value_trees = List.map case_tree value_cases in
        if exn_trees <> [] then emit (P_try (!scrut_tree, exn_trees))
        else emit !scrut_tree;
        if value_trees <> [] then emit (P_alt value_trees)
    | _ -> Tast_iterator.default_iterator.expr sub e
  in
  let structure_item sub (si : Typedtree.structure_item) =
    match si.Typedtree.str_desc with
    | Typedtree.Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let loc = loc_of vb.Typedtree.vb_pat.Typedtree.pat_loc in
            let name =
              match pattern_bound_var vb.Typedtree.vb_pat with Some v -> v | None -> "%init"
            in
            let d = get_def (unit ^ "." ^ name) loc in
            if name <> "%init" then
              (match allocator_kind vb.Typedtree.vb_expr with
              | Some kind -> d.d_cell <- Some kind
              | None -> ());
            with_def d vb.Typedtree.vb_attributes (fun () ->
                sub.Tast_iterator.expr sub vb.Typedtree.vb_expr))
          vbs
    | Typedtree.Tstr_module mb ->
        (match (mb.Typedtree.mb_id, mb.Typedtree.mb_expr.Typedtree.mod_desc) with
        | Some id, Typedtree.Tmod_ident (p, _) ->
            Hashtbl.replace aliases (Ident.name id) (resolve_path ~aliases ~unit p)
        | _ -> ());
        Tast_iterator.default_iterator.structure_item sub si
    | Typedtree.Tstr_attribute a ->
        unit_attrs := lint_exempt_scopes [ a ] @ !unit_attrs;
        Tast_iterator.default_iterator.structure_item sub si
    | _ -> Tast_iterator.default_iterator.structure_item sub si
  in
  let it = { Tast_iterator.default_iterator with expr; structure_item } in
  it.structure it str;
  init.d_tree <- P_seq (List.rev !init_nodes);
  {
    a_unit = unit;
    a_source = source;
    a_defs = List.rev !def_order;
    a_tries = List.rev !tries;
    a_idents = List.rev !idents;
    a_accesses = List.rev !accesses;
    a_attrs = !unit_attrs;
  }

(* ---- cross-unit graph ---- *)

type graph = { nodes : (string, def) Hashtbl.t }

let build_graph analyses =
  let nodes = Hashtbl.create 1024 in
  List.iter
    (fun a ->
      List.iter
        (fun d ->
          match Hashtbl.find_opt nodes d.d_name with
          | None -> Hashtbl.replace nodes d.d_name d
          | Some existing ->
              (* Same name from another unit's walk (merged module paths):
                 union the edges. *)
              existing.d_refs <- d.d_refs @ existing.d_refs;
              existing.d_raises <- d.d_raises @ existing.d_raises;
              existing.d_attrs <- d.d_attrs @ existing.d_attrs;
              (if existing.d_cell = None then existing.d_cell <- d.d_cell);
              existing.d_tree <- P_seq [ existing.d_tree; d.d_tree ])
        a.a_defs)
    analyses;
  { nodes }
