(* One pass over a unit's typed AST (Tast_iterator) collecting everything
   the rules consume:

   - a def-level reference graph (value definition -> referenced global
     values), with the extension constructors each definition builds —
     the raw material for reachability (shadow-purity) and may-raise
     (no-swallow) analyses;
   - try/match-exception sites, with catch-all classification and the
     references made inside the guarded body;
   - every dotted value identifier, with the instantiated first-argument
     type when the identifier is used at an arrow type (poly-compare and
     partial-call rules).

   Names are normalized as in [Cmt_load]: local module aliases
   ([module Device = Rae_block.Device]) are substituted at the path head,
   and unqualified locals are prefixed with their unit name. *)

type loc = { l_file : string; l_line : int }

let loc_of (l : Location.t) =
  { l_file = l.Location.loc_start.Lexing.pos_fname; l_line = l.Location.loc_start.Lexing.pos_lnum }

type def = {
  d_name : string;
  d_loc : loc;
  mutable d_refs : (string * loc) list;  (* newest first *)
  mutable d_raises : string list;
}

type try_site = {
  t_unit : string;
  t_loc : loc;
  t_catchall : bool;  (* has a wildcard/var handler that does not re-raise *)
  t_handles_notfound : bool;
  t_body_refs : (string * loc) list;
  t_body_raises : string list;
  t_body_first_line : int;
  t_body_last_line : int;
}

type ident_hit = {
  h_path : string;  (* normalized, e.g. "Stdlib.List.hd" *)
  h_loc : loc;
  h_arg_type : string option;  (* normalized head constructor of the first argument *)
}

type unit_analysis = {
  a_unit : string;
  a_source : string;
  a_defs : def list;
  a_tries : try_site list;
  a_idents : ident_hit list;
}

(* ---- path normalization ---- *)

let resolve_path ~aliases ~unit p =
  let name = Path.name p in
  let head = Path.head p in
  if Ident.global head then Cmt_load.normalize name
  else
    let hname = Ident.name head in
    let rest = String.sub name (String.length hname) (String.length name - String.length hname) in
    match Hashtbl.find_opt aliases hname with
    | Some target -> Cmt_load.normalize (target ^ rest)
    | None -> Cmt_load.normalize (unit ^ "." ^ name)

(* ---- pattern helpers ---- *)

let rec pattern_is_catchall : Typedtree.pattern -> bool =
 fun p ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_any | Typedtree.Tpat_var _ -> true
  | Typedtree.Tpat_alias (p, _, _) -> pattern_is_catchall p
  | Typedtree.Tpat_or (a, b, _) -> pattern_is_catchall a || pattern_is_catchall b
  | _ -> false

let rec pattern_bound_var : Typedtree.pattern -> string option =
 fun p ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, _) -> Some (Ident.name id)
  | Typedtree.Tpat_alias (p, id, _) -> (
      match pattern_bound_var p with Some v -> Some v | None -> Some (Ident.name id))
  | _ -> None

let rec pattern_matches_ctor name : Typedtree.pattern -> bool =
 fun p ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_construct (_, cd, _, _) -> String.equal cd.Types.cstr_name name
  | Typedtree.Tpat_alias (p, _, _) -> pattern_matches_ctor name p
  | Typedtree.Tpat_or (a, b, _) -> pattern_matches_ctor name a || pattern_matches_ctor name b
  | _ -> false

(* Does [e] re-raise the exception bound to [var]?  Recognizes
   [raise var] / [raise_notrace var] anywhere in the handler body. *)
let reraises var e =
  let found = ref false in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_apply ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, args) -> (
        match Path.name p with
        | "Stdlib.raise" | "Stdlib.raise_notrace" -> (
            match args with
            | (_, Some { Typedtree.exp_desc = Typedtree.Texp_ident (Path.Pident id, _, _); _ }) :: _
              when String.equal (Ident.name id) var ->
                found := true
            | _ -> ())
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

(* ---- instantiated first-argument type of an identifier use ---- *)

let first_arg_type ~aliases ~unit ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, t1, _, _) -> (
      match Types.get_desc t1 with
      | Types.Tconstr (p, _, _) -> Some (resolve_path ~aliases ~unit p)
      | _ -> None)
  | _ -> None

(* ---- the walk ---- *)

let analyze_unit ~unit ~source (str : Typedtree.structure) =
  let aliases : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let defs : (string, def) Hashtbl.t = Hashtbl.create 64 in
  let def_order = ref [] in
  let tries = ref [] in
  let idents = ref [] in
  let get_def name loc =
    match Hashtbl.find_opt defs name with
    | Some d -> d
    | None ->
        let d = { d_name = name; d_loc = loc; d_refs = []; d_raises = [] } in
        Hashtbl.replace defs name d;
        def_order := d :: !def_order;
        d
  in
  let init = get_def (unit ^ ".%init") { l_file = source; l_line = 1 } in
  let current = ref init in
  let with_def d f =
    let saved = !current in
    current := d;
    f ();
    current := saved
  in
  (* Slice the refs/raises a sub-walk of the current def added. *)
  let slice f =
    let d = !current in
    let refs0 = d.d_refs and raises0 = d.d_raises in
    let n_refs = List.length refs0 and n_raises = List.length raises0 in
    f ();
    let take n l =
      let rec go acc n l = if n <= 0 then List.rev acc else
        match l with [] -> List.rev acc | x :: tl -> go (x :: acc) (n - 1) tl
      in
      go [] n l
    in
    let new_refs = take (List.length d.d_refs - n_refs) d.d_refs in
    let new_raises = take (List.length d.d_raises - n_raises) d.d_raises in
    (new_refs, new_raises)
  in
  let record_try ~loc ~body_loc ~body_refs ~body_raises ~catchall ~notfound =
    tries :=
      {
        t_unit = unit;
        t_loc = loc;
        t_catchall = catchall;
        t_handles_notfound = notfound;
        t_body_refs = body_refs;
        t_body_raises = body_raises;
        t_body_first_line = body_loc.Location.loc_start.Lexing.pos_lnum;
        t_body_last_line = body_loc.Location.loc_end.Lexing.pos_lnum;
      }
      :: !tries
  in
  (* Classify a list of exception-handler (value) cases. *)
  let classify_handlers cases =
    let catchall =
      List.exists
        (fun (pat, rhs) ->
          pattern_is_catchall pat
          && not (match pattern_bound_var pat with Some v -> reraises v rhs | None -> false))
        cases
    in
    let notfound =
      catchall || List.exists (fun (pat, _) -> pattern_matches_ctor "Not_found" pat) cases
    in
    (catchall, notfound)
  in
  let expr sub (e : Typedtree.expression) =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) ->
        let name = resolve_path ~aliases ~unit p in
        let loc = loc_of e.Typedtree.exp_loc in
        let d = !current in
        d.d_refs <- (name, loc) :: d.d_refs;
        if String.contains name '.' then
          idents :=
            { h_path = name; h_loc = loc; h_arg_type = first_arg_type ~aliases ~unit e.Typedtree.exp_type }
            :: !idents
    | Typedtree.Texp_construct (_, cd, _) -> (
        (match cd.Types.cstr_tag with
        | Types.Cstr_extension (p, _) ->
            let d = !current in
            d.d_raises <- resolve_path ~aliases ~unit p :: d.d_raises
        | _ -> ());
        Tast_iterator.default_iterator.expr sub e)
    | Typedtree.Texp_try (body, cases) ->
        let body_refs, body_raises = slice (fun () -> sub.Tast_iterator.expr sub body) in
        let handlers = List.map (fun c -> (c.Typedtree.c_lhs, c.Typedtree.c_rhs)) cases in
        let catchall, notfound = classify_handlers handlers in
        if catchall || notfound then
          record_try ~loc:(loc_of e.Typedtree.exp_loc) ~body_loc:body.Typedtree.exp_loc ~body_refs
            ~body_raises ~catchall ~notfound;
        List.iter (fun c -> sub.Tast_iterator.case sub c) cases
    | Typedtree.Texp_match (scrut, cases, _) ->
        let body_refs, body_raises = slice (fun () -> sub.Tast_iterator.expr sub scrut) in
        let handlers =
          List.filter_map
            (fun c ->
              match Typedtree.split_pattern c.Typedtree.c_lhs with
              | _, Some exn_pat -> Some (exn_pat, c.Typedtree.c_rhs)
              | _, None -> None)
            cases
        in
        (if handlers <> [] then
           let catchall, notfound = classify_handlers handlers in
           if catchall || notfound then
             record_try ~loc:(loc_of e.Typedtree.exp_loc) ~body_loc:scrut.Typedtree.exp_loc
               ~body_refs ~body_raises ~catchall ~notfound);
        List.iter (fun c -> sub.Tast_iterator.case sub c) cases
    | _ -> Tast_iterator.default_iterator.expr sub e
  in
  let structure_item sub (si : Typedtree.structure_item) =
    match si.Typedtree.str_desc with
    | Typedtree.Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let loc = loc_of vb.Typedtree.vb_pat.Typedtree.pat_loc in
            let name =
              match pattern_bound_var vb.Typedtree.vb_pat with Some v -> v | None -> "%init"
            in
            let d = get_def (unit ^ "." ^ name) loc in
            with_def d (fun () -> sub.Tast_iterator.expr sub vb.Typedtree.vb_expr))
          vbs
    | Typedtree.Tstr_module mb ->
        (match (mb.Typedtree.mb_id, mb.Typedtree.mb_expr.Typedtree.mod_desc) with
        | Some id, Typedtree.Tmod_ident (p, _) ->
            Hashtbl.replace aliases (Ident.name id) (resolve_path ~aliases ~unit p)
        | _ -> ());
        Tast_iterator.default_iterator.structure_item sub si
    | _ -> Tast_iterator.default_iterator.structure_item sub si
  in
  let it = { Tast_iterator.default_iterator with expr; structure_item } in
  it.structure it str;
  {
    a_unit = unit;
    a_source = source;
    a_defs = List.rev !def_order;
    a_tries = List.rev !tries;
    a_idents = List.rev !idents;
  }

(* ---- cross-unit graph ---- *)

type graph = { nodes : (string, def) Hashtbl.t }

let build_graph analyses =
  let nodes = Hashtbl.create 1024 in
  List.iter
    (fun a ->
      List.iter
        (fun d ->
          match Hashtbl.find_opt nodes d.d_name with
          | None -> Hashtbl.replace nodes d.d_name d
          | Some existing ->
              (* Same name from another unit's walk (merged module paths):
                 union the edges. *)
              existing.d_refs <- d.d_refs @ existing.d_refs;
              existing.d_raises <- d.d_raises @ existing.d_raises)
        a.a_defs)
    analyses;
  { nodes }

(* Transitive may-raise set of a node, memoized; cycles contribute their
   directly-recorded raises. *)
let may_raise graph =
  let memo : (string, string list) Hashtbl.t = Hashtbl.create 256 in
  let in_progress : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec go name =
    match Hashtbl.find_opt memo name with
    | Some r -> r
    | None ->
        if Hashtbl.mem in_progress name then []
        else (
          Hashtbl.replace in_progress name ();
          let result =
            match Hashtbl.find_opt graph.nodes name with
            | None -> []
            | Some d ->
                List.fold_left
                  (fun acc (r, _) -> List.rev_append (go r) acc)
                  d.d_raises d.d_refs
          in
          Hashtbl.remove in_progress name;
          let result = List.sort_uniq String.compare result in
          Hashtbl.replace memo name result;
          result)
  in
  go
