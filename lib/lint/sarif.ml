(* Minimal SARIF 2.1.0 emitter so findings render as CI annotations.
   One run, one driver, one result per finding; the suppression key goes
   into partialFingerprints so external dashboards can track findings
   across line drift the same way lint.baseline does. *)

let version = "2.1.0"
let schema = "https://json.schemastore.org/sarif-2.1.0.json"

let severity_level = function Finding.Error -> "error" | Finding.Warning -> "warning"

let of_result ~rules (kept : Finding.t list) =
  let open Rae_obs.Jsonx in
  let rule_objs =
    List.map
      (fun r ->
        Obj [ ("id", Str r); ("name", Str r); ("defaultConfiguration", Obj [ ("level", Str "error") ]) ])
      rules
  in
  let result (f : Finding.t) =
    Obj
      [
        ("ruleId", Str f.Finding.rule);
        ("level", Str (severity_level f.Finding.severity));
        ("message", Obj [ ("text", Str f.Finding.message) ]);
        ( "locations",
          List
            [
              Obj
                [
                  ( "physicalLocation",
                    Obj
                      [
                        ("artifactLocation", Obj [ ("uri", Str f.Finding.file) ]);
                        ("region", Obj [ ("startLine", Int (max 1 f.Finding.line)) ]);
                      ] );
                ];
            ] );
        ("partialFingerprints", Obj [ ("raeLintKey/v1", Str f.Finding.key) ]);
      ]
  in
  Obj
    [
      ("$schema", Str schema);
      ("version", Str version);
      ( "runs",
        List
          [
            Obj
              [
                ( "tool",
                  Obj
                    [
                      ( "driver",
                        Obj
                          [
                            ("name", Str "rae_lint");
                            ("informationUri", Str "README.md");
                            ("rules", List rule_objs);
                          ] );
                    ] );
                ("results", List (List.map result kept));
              ];
          ] );
    ]

let to_string ~rules kept = Rae_obs.Jsonx.to_string ~pretty:true (of_result ~rules kept)
