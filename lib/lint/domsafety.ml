(* Domain-safety pre-pass: the work-list for parallel recovery
   (ROADMAP item 2).

   For every region the roadmap wants on separate domains (fsck passes,
   journal-replay destaging, the checkpoint fold, constrained replay) we
   compute the set of definitions reachable from the region roots over
   the cross-unit call graph, then catalogue every mutable cell those
   definitions touch:

   - toplevel cells: definitions whose right-hand side is a mutable
     allocator (ref / Hashtbl.create / Buffer.create / Queue.create /
     Array.make / Bytes.create / Atomic.make);
   - mutable record fields, named through their record type
     ("Rae_obs.Events.t.clock").

   A reference to a toplevel cell that is not consumed by a recognized
   reader/mutator counts as an escape (the cell was passed somewhere the
   analysis cannot follow) and is treated as a write.

   Each (region, cell) pair is classified, in precedence order:
     guarded-declared      config [guarded_cells] prefix match
     domain-local-declared config [domain_local_cells] prefix match
     guarded-atomic        the cell IS an Atomic.t
     guarded-inferred      every in-region writing definition uses
                           Stdlib.Mutex or Stdlib.Atomic
     read-only             no in-region writes
     finding               anything else -> rule domain-safety fires

   The full catalogue — including the justifications for declared
   entries — is emitted as machine-readable JSON (domain_escape.json)
   so the multicore PR starts from a reviewed list, not a rescan. *)

let rule_name = "domain-safety"

type cell_class =
  | Guarded_declared of string
  | Domain_local_declared of string
  | Guarded_atomic
  | Guarded_inferred
  | Read_only
  | Escape

let class_label = function
  | Guarded_declared _ -> "guarded-declared"
  | Domain_local_declared _ -> "domain-local-declared"
  | Guarded_atomic -> "guarded-atomic"
  | Guarded_inferred -> "guarded-inferred"
  | Read_only -> "read-only"
  | Escape -> "finding"

type site = { s_def : string; s_loc : Analysis.loc; s_escape : bool }

type cell_report = {
  r_cell : string;
  r_kind : string;  (* ref / hashtbl / buffer / ... / field *)
  r_class : cell_class;
  r_writes : site list;
  r_reads : int;
}

type region_report = {
  g_region : string;
  g_roots : string list;
  g_defs : int;  (* reachable definitions *)
  g_cells : cell_report list;
}

(* Definitions reachable from the region roots. *)
let region_defs (graph : Analysis.graph) roots =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  Hashtbl.iter
    (fun name _ ->
      if List.exists (fun p -> Lintcfg.name_matches p name || String.starts_with ~prefix:p name) roots
      then begin
        Hashtbl.replace seen name ();
        Queue.add name queue
      end)
    graph.Analysis.nodes;
  while not (Queue.is_empty queue) do
    let name = Queue.take queue in
    match Hashtbl.find_opt graph.Analysis.nodes name with
    | None -> ()
    | Some d ->
        List.iter
          (fun (r, _) ->
            if Hashtbl.mem graph.Analysis.nodes r && not (Hashtbl.mem seen r) then begin
              Hashtbl.replace seen r ();
              Queue.add r queue
            end)
          d.Analysis.d_refs
  done;
  seen

let uses_sync_primitive (d : Analysis.def) =
  List.exists
    (fun (r, _) ->
      String.starts_with ~prefix:"Stdlib.Mutex." r || String.starts_with ~prefix:"Stdlib.Atomic." r)
    d.Analysis.d_refs

let analyze (cfg : Lintcfg.t) (analyses : Analysis.unit_analysis list) (graph : Analysis.graph) =
  (* cell name -> allocator kind, for toplevel cells *)
  let cell_kind name =
    match Hashtbl.find_opt graph.Analysis.nodes name with
    | Some d -> d.Analysis.d_cell
    | None -> None
  in
  (* def -> its recognized accesses *)
  let by_def : (string, Analysis.access list) Hashtbl.t = Hashtbl.create 512 in
  List.iter
    (fun (a : Analysis.unit_analysis) ->
      List.iter
        (fun (c : Analysis.access) ->
          Hashtbl.replace by_def c.Analysis.c_def
            (c :: Option.value ~default:[] (Hashtbl.find_opt by_def c.Analysis.c_def)))
        a.Analysis.a_accesses)
    analyses;
  List.map
    (fun (region, roots) ->
      let members = region_defs graph roots in
      (* (cell, kind) -> reads count, write sites *)
      let cells : (string, string * int ref * site list ref) Hashtbl.t = Hashtbl.create 64 in
      let touch name kind =
        match Hashtbl.find_opt cells name with
        | Some c -> c
        | None ->
            let c = (kind, ref 0, ref []) in
            Hashtbl.replace cells name c;
            c
      in
      Hashtbl.iter
        (fun def_name () ->
          match Hashtbl.find_opt graph.Analysis.nodes def_name with
          | None -> ()
          | Some d ->
              let accs = Option.value ~default:[] (Hashtbl.find_opt by_def def_name) in
              (* recognized reads/writes *)
              let consumed : (string, int) Hashtbl.t = Hashtbl.create 8 in
              List.iter
                (fun (c : Analysis.access) ->
                  let record name kind =
                    let _, reads, writes = touch name kind in
                    match c.Analysis.c_kind with
                    | Analysis.Acc_read -> incr reads
                    | Analysis.Acc_write ->
                        writes := { s_def = def_name; s_loc = c.Analysis.c_loc; s_escape = false } :: !writes
                  in
                  match c.Analysis.c_target with
                  | Analysis.T_field f -> record f "field"
                  | Analysis.T_global g -> (
                      match cell_kind g with
                      | Some kind ->
                          Hashtbl.replace consumed g
                            (1 + Option.value ~default:0 (Hashtbl.find_opt consumed g));
                          record g kind
                      | None -> ()))
                accs;
              (* escapes: references to a toplevel cell beyond the
                 recognized accesses *)
              let refcount : (string, int * Analysis.loc) Hashtbl.t = Hashtbl.create 8 in
              List.iter
                (fun (r, loc) ->
                  if cell_kind r <> None then
                    match Hashtbl.find_opt refcount r with
                    | Some (n, l) -> Hashtbl.replace refcount r (n + 1, l)
                    | None -> Hashtbl.replace refcount r (1, loc))
                d.Analysis.d_refs;
              Hashtbl.iter
                (fun cell (n, loc) ->
                  if n > Option.value ~default:0 (Hashtbl.find_opt consumed cell) then begin
                    let _, _, writes =
                      touch cell (Option.value ~default:"cell" (cell_kind cell))
                    in
                    writes := { s_def = def_name; s_loc = loc; s_escape = true } :: !writes
                  end)
                refcount)
        members;
      let reports =
        Hashtbl.fold
          (fun cell (kind, reads, writes) acc ->
            let cls =
              match Lintcfg.assoc_prefix cfg.Lintcfg.guarded_cells cell with
              | Some why -> Guarded_declared why
              | None -> (
                  match Lintcfg.assoc_prefix cfg.Lintcfg.domain_local_cells cell with
                  | Some why -> Domain_local_declared why
                  | None ->
                      if kind = "atomic" then Guarded_atomic
                      else if !writes = [] then Read_only
                      else if
                        List.for_all
                          (fun s ->
                            match Hashtbl.find_opt graph.Analysis.nodes s.s_def with
                            | Some d -> uses_sync_primitive d
                            | None -> false)
                          !writes
                      then Guarded_inferred
                      else Escape)
            in
            { r_cell = cell; r_kind = kind; r_class = cls; r_writes = List.rev !writes; r_reads = !reads }
            :: acc)
          cells []
      in
      {
        g_region = region;
        g_roots = roots;
        g_defs = Hashtbl.length members;
        g_cells = List.sort (fun a b -> String.compare a.r_cell b.r_cell) reports;
      })
    cfg.Lintcfg.domain_regions

(* ---- findings ---- *)

let findings reports =
  List.concat_map
    (fun g ->
      List.filter_map
        (fun c ->
          match (c.r_class, c.r_writes) with
          | Escape, w :: _ ->
              Some
                {
                  Finding.rule = rule_name;
                  severity = Finding.Error;
                  file = w.s_loc.Analysis.l_file;
                  line = w.s_loc.Analysis.l_line;
                  key = g.g_region ^ ":" ^ c.r_cell;
                  message =
                    Printf.sprintf
                      "mutable cell %s is written by %s on the %s parallel region without a \
                       guard%s; protect it with Mutex/Atomic, prove it domain-local \
                       (lintcfg.domain_local_cells), or restructure the state"
                      c.r_cell w.s_def g.g_region
                      (if w.s_escape then " (cell escapes to an unanalyzed callee)" else "");
                }
          | _ -> None)
        g.g_cells)
    reports

(* ---- domain_escape.json ---- *)

let to_json reports =
  let open Rae_obs.Jsonx in
  Obj
    [
      ("schema", Str "rae-domain-escape/1");
      ( "regions",
        List
          (List.map
             (fun g ->
               Obj
                 [
                   ("region", Str g.g_region);
                   ("roots", List (List.map (fun r -> Str r) g.g_roots));
                   ("reachable_defs", Int g.g_defs);
                   ( "cells",
                     List
                       (List.map
                          (fun c ->
                            Obj
                              ([
                                 ("cell", Str c.r_cell);
                                 ("kind", Str c.r_kind);
                                 ("class", Str (class_label c.r_class));
                               ]
                              @ (match c.r_class with
                                | Guarded_declared why | Domain_local_declared why ->
                                    [ ("why", Str why) ]
                                | _ -> [])
                              @ [
                                  ("reads", Int c.r_reads);
                                  ( "writes",
                                    List
                                      (List.map
                                         (fun s ->
                                           Obj
                                             [
                                               ("def", Str s.s_def);
                                               ("file", Str s.s_loc.Analysis.l_file);
                                               ("line", Int s.s_loc.Analysis.l_line);
                                               ("escape", Bool s.s_escape);
                                             ])
                                         c.r_writes) );
                                ]))
                          g.g_cells) );
                 ])
             reports) );
    ]
