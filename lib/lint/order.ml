(* Path-sensitive typestate evaluation over the per-definition
   control-flow trees ([Analysis.ptree]), shared by the two ordering
   rules:

   - persist-order: SquirrelFS-style persistence typestate.  Raw block
     writes must happen under an open journal transaction and data may
     destage only after the commit; flushing mid-transaction reorders
     the barrier against the commit record.
   - phase-order: the recovery phases (Controller.phase "...") must be
     invoked in the declared order on every path, where re-entering the
     first phase starts a new recovery attempt (the seeded->cold
     fallback and retries re-begin with a contained reboot).

   The evaluator tracks a *set* of abstract states (ints): branches
   fork it, join points union it.  [P_try] handlers are entered from
   every state the guarded body touched, since the exception can fire
   at any point inside.  Let-bound local functions are inlined at their
   call sites (their events happen there); the rules choose what else a
   leaf means via [classify]. *)

type 'ev decision =
  | Ev of 'ev * Analysis.loc  (* an event for the state machine *)
  | Expand of string * Analysis.ptree  (* inline a named tree (cycle-guarded) *)
  | Skip

let norm l = List.sort_uniq compare l

(* Evaluate [tree] from entry state-set [init].  [step st ev loc]
   advances one state (reporting findings by side effect); the result is
   the union over in-states.  Returns the exit state-set. *)
let eval ~classify ~step ~init tree =
  let env : (string, Analysis.ptree) Hashtbl.t = Hashtbl.create 8 in
  let active : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  (* returns (exit states, all states current at some point) *)
  let rec go states tr =
    match tr with
    | Analysis.P_seq l ->
        List.fold_left (fun (st, touched) sub ->
            let st', touched' = go st sub in
            (st', norm (touched' @ touched)))
          (states, states) l
    | Analysis.P_alt [] -> (states, states)
    | Analysis.P_alt branches ->
        let outs = List.map (go states) branches in
        (norm (List.concat_map fst outs), norm (states @ List.concat_map snd outs))
    | Analysis.P_try (body, handlers) ->
        let body_out, body_touched = go states body in
        let outs = List.map (go body_touched) handlers in
        ( norm (body_out @ List.concat_map fst outs),
          norm (body_touched @ List.concat_map snd outs) )
    | Analysis.P_local (name, t) ->
        Hashtbl.replace env name t;
        (states, states)
    | Analysis.P_ref (name, _) when Hashtbl.find_opt env name <> None -> (
        match Hashtbl.find_opt env name with
        | Some t -> expand states name t
        | None -> (states, states))
    | Analysis.P_ref _ | Analysis.P_lit _ | Analysis.P_field _ -> (
        match classify tr with
        | Skip -> (states, states)
        | Ev (ev, loc) ->
            let out = norm (List.map (fun s -> step s ev loc) states) in
            (out, norm (states @ out))
        | Expand (name, t) -> expand states name t)
  and expand states name t =
    if Hashtbl.mem active name then (states, states)
    else begin
      Hashtbl.replace active name ();
      let r = go states t in
      Hashtbl.remove active name;
      r
    end
  in
  fst (go init tree)

(* Findings deduplicated by (file, line, key): loop bodies are evaluated
   twice and state-set evaluation can replay the same event. *)
let make_reporter rule =
  let seen : (string * int * string, unit) Hashtbl.t = Hashtbl.create 32 in
  let findings = ref [] in
  let report ~(loc : Analysis.loc) ~key msg =
    let k = (loc.Analysis.l_file, loc.Analysis.l_line, key) in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.replace seen k ();
      findings :=
        {
          Finding.rule;
          severity = Finding.Error;
          file = loc.Analysis.l_file;
          line = loc.Analysis.l_line;
          message = msg;
          key;
        }
        :: !findings
    end
  in
  (report, findings)

(* ---- persist-order ---- *)

type pevent = Write of string | Flush of string | Append | Commit

(* states *)
let st_clean = 0
let st_intxn = 1
let st_committed = 2

let persist_rule_name = "persist-order"

let persist (cfg : Lintcfg.t) (eff : Effects.t) (graph : Analysis.graph) =
  let report, findings = make_reporter persist_rule_name in
  let classify (leaf : Analysis.ptree) =
    match leaf with
    | Analysis.P_ref (r, loc) ->
        if Lintcfg.name_in_list cfg.Lintcfg.persist_raw_sinks r then Ev (Write r, loc)
        else if Lintcfg.name_in_list cfg.Lintcfg.persist_flush_sinks r then Ev (Flush r, loc)
        else if Lintcfg.name_in_list cfg.Lintcfg.journal_commit_fns r then Ev (Commit, loc)
        else if Lintcfg.name_in_list cfg.Lintcfg.journal_append_fns r then Ev (Append, loc)
        else begin
          (* Cross-definition: a callee that commits (or appends to) the
             journal advances the caller's typestate.  A callee's raw
             write is NOT replayed here — it is reported once, at the
             callee's own definition. *)
          match Effects.summary eff r with
          | Some s when Effects.has s Effects.b_j_commit -> Ev (Commit, loc)
          | Some s when Effects.has s Effects.b_j_append -> Ev (Append, loc)
          | _ -> Skip
        end
    | Analysis.P_field (f, loc) ->
        if List.mem f cfg.Lintcfg.persist_sink_fields then Ev (Write f, loc)
        else if List.mem f cfg.Lintcfg.persist_flush_fields then Ev (Flush f, loc)
        else Skip
    | _ -> Skip (* P_lit: the callee was already seen as P_ref *)
  in
  let step st ev (loc : Analysis.loc) =
    match ev with
    | Append -> st_intxn
    | Commit -> st_committed
    | Write sink ->
        if st = st_clean then
          report ~loc ~key:("journal-bypass:" ^ sink)
            (Printf.sprintf
               "raw block write %s outside any journal transaction; durable mutations must flow \
                through the journal protocol (begin_txn/txn_write ... commit)"
               sink)
        else if st = st_intxn then
          report ~loc ~key:("destage-before-commit:" ^ sink)
            (Printf.sprintf
               "raw block write %s inside an open journal transaction before commit; destage must \
                follow the commit record (commit-before-destage)"
               sink);
        st
    | Flush sink ->
        if st = st_intxn then
          report ~loc ~key:("flush-before-commit:" ^ sink)
            (Printf.sprintf
               "flush barrier %s inside an open journal transaction before commit; the barrier \
                reorders against the commit record"
               sink);
        st
  in
  Hashtbl.iter
    (fun _name (d : Analysis.def) ->
      if
        (not (Effects.is_allowed_writer eff d))
        && not (Lintcfg.is_exempt cfg d.Analysis.d_unit)
      then ignore (eval ~classify ~step ~init:[ st_clean ] d.Analysis.d_tree))
    graph.Analysis.nodes;
  List.rev !findings

(* ---- phase-order ---- *)

let phase_rule_name = "phase-order"

(* One protocol: every call of [marker] with a literal phase name, in
   the marker's home unit, must respect the declared order.  States are
   the index of the last phase entered (-1 = nothing yet); entering the
   first phase resets the automaton (a fresh recovery attempt), which is
   what legalizes the seeded->cold fallback and retry loops. *)
let check_protocol (eff : Effects.t) (graph : Analysis.graph) report marker order =
  let home_unit =
    match String.rindex_opt marker '.' with
    | Some i -> String.sub marker 0 i
    | None -> marker
  in
  let index name =
    let rec go i = function
      | [] -> None
      | p :: _ when String.equal p name -> Some i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 order
  in
  let classify (leaf : Analysis.ptree) =
    match leaf with
    | Analysis.P_lit (fn, name, loc) when String.equal fn marker -> Ev (name, loc)
    | Analysis.P_ref (r, _)
      when (not (String.equal r marker)) && String.starts_with ~prefix:(home_unit ^ ".") r -> (
        match Hashtbl.find_opt graph.Analysis.nodes r with
        | Some d -> Expand (r, d.Analysis.d_tree)
        | None -> Skip)
    | _ -> Skip
  in
  let step st name (loc : Analysis.loc) =
    match index name with
    | None ->
        report ~loc ~key:("unknown-phase:" ^ name)
          (Printf.sprintf "recovery phase %S is not in the declared phase order for %s" name marker);
        st
    | Some 0 -> 0 (* new recovery attempt: reset *)
    | Some idx ->
        if st >= idx then
          report ~loc ~key:("phase-order:" ^ name)
            (Printf.sprintf
               "recovery phase %S entered out of order (last phase was %S); declared order: %s" name
               (if st >= 0 then Option.value ~default:"<none>" (List.nth_opt order st)
                else "<none>")
               (String.concat " -> " order));
        idx
  in
  ignore eff;
  Hashtbl.iter
    (fun name (d : Analysis.def) ->
      if String.starts_with ~prefix:(home_unit ^ ".") name then
        ignore (eval ~classify ~step ~init:[ -1 ] d.Analysis.d_tree))
    graph.Analysis.nodes

let phases (cfg : Lintcfg.t) (eff : Effects.t) (graph : Analysis.graph) =
  let report, findings = make_reporter phase_rule_name in
  List.iter
    (fun (marker, order) -> check_protocol eff graph report marker order)
    cfg.Lintcfg.phase_protocols;
  List.rev !findings
