(* Lint configuration: the invariants the rules enforce, expressed as
   data so tests can aim the rules at fixture modules.  [default] encodes
   this repository's ground truth.

   Names are "normalized": compilation-unit separators ("__") are
   rewritten to ".", so [Rae_block__Device.write] and
   [Rae_block.Device.write] are the same name.  Entries with a trailing
   '.' are prefixes covering a whole module; cell names are either
   global value paths ("Rae_vfs.Intern.ids") or field paths on a record
   type ("Rae_obs.Events.t.total"). *)

type t = {
  libraries : (string * string list) list;
      (* library -> allowed dependency libraries (self always allowed).
         Libraries absent from this table are not layer-checked, and
         imports of unknown libraries (stdlib, fmt, ...) are ignored. *)
  purity_roots : string list;
      (* normalized unit-name prefixes whose every definition must not
         reach a write-path sink (rule shadow-purity). *)
  purity_sinks : string list;
      (* normalized value names; a trailing '.' makes the entry a prefix
         covering a whole module. *)
  signal_exceptions : string list;
      (* normalized extension-constructor names that carry runtime-error
         signals; catch-all handlers that can absorb one are flagged. *)
  ondisk_types : string list;
      (* normalized type-constructor paths of on-disk structures for
         which polymorphic compare/equality is forbidden. *)
  partial_fns : (string * string) list;
      (* normalized stdlib value -> suggested replacement. *)
  exempt_units : string list;
      (* normalized unit-name prefixes exempt from the partial-call and
         swallow rules (test executables and the like). *)
  (* ---- persistence-ordering typestate (rule persist-order) ---- *)
  persist_raw_sinks : string list;
      (* raw (journal-bypassing) block-write value paths *)
  persist_flush_sinks : string list;  (* raw barrier/flush value paths *)
  persist_sink_fields : string list;
      (* record fields that ARE the raw write path when read (function
         fields of the device record), as "Type.field" *)
  persist_flush_fields : string list;
  journal_append_fns : string list;
      (* opening / appending to a journal transaction *)
  journal_commit_fns : string list;  (* making a transaction durable *)
  persist_writers : string list;
      (* def-name prefixes allowed to touch the raw sinks: the journal
         itself, the block layer the sinks live in, mkfs/fsck-repair
         (which write outside the journal protocol by design), and the
         ordered-mode data destage. *)
  (* ---- domain-safety pre-pass (rule domain-safety) ---- *)
  domain_regions : (string * string list) list;
      (* region name -> def-name prefixes of the code ROADMAP item 2
         wants on separate domains.  Every global mutable cell (or
         mutable record field) written by code reachable from a region
         root must be guarded, declared domain-local, or it is a
         finding — the work-list for the multicore PR. *)
  guarded_cells : (string * string) list;
      (* cell prefix -> justification.  For cells whose guard the
         analysis cannot see (e.g. ring slots made exclusive by an
         Atomic fetch-and-add): the declaration is recorded verbatim in
         domain_escape.json so it stays reviewable. *)
  domain_local_cells : (string * string) list;
      (* cell prefix -> ownership justification (state owned by the
         instance a single domain holds, e.g. a shadow being folded). *)
  shadow_state_types : string list;
      (* type prefixes whose field mutation counts as the shadow-mutate
         effect *)
  (* ---- recovery-phase ordering (rule phase-order) ---- *)
  phase_protocols : (string * string list) list;
      (* phase-marker function -> declared phase order.  Every call of
         the marker with a literal phase name, on every path through the
         marker's unit, must respect this order; the first phase resets
         the automaton (a new recovery attempt). *)
}

(* Layering ground truth.  This intentionally duplicates the dune
   stanzas: the rule checks the compiled import tables, so a dependency
   smuggled in through a loosened stanza still fails the gate. *)
let default_libraries =
  [
    ("util", []);
    ("obs", [ "util" ]);
    ("vfs", [ "util" ]);
    (* the domain pool sits at the bottom of the cone beside util: pure
       stdlib (Domain/Atomic/Mutex), so any layer may parallelize *)
    ("par", []);
    ("block", [ "util"; "obs" ]);
    ("format", [ "util"; "vfs"; "block" ]);
    ("journal", [ "util"; "obs"; "block"; "format"; "par" ]);
    ("cache", [ "util"; "obs"; "vfs" ]);
    ("fsck", [ "util"; "vfs"; "block"; "format"; "par" ]);
    ("shadowfs", [ "util"; "obs"; "vfs"; "block"; "format"; "fsck"; "par" ]);
    ("specfs", [ "util"; "vfs"; "format" ]);
    ("basefs", [ "util"; "obs"; "vfs"; "block"; "format"; "journal"; "cache"; "par" ]);
    ("workload", [ "util"; "vfs" ]);
    ("bugstudy", [ "util" ]);
    ( "core",
      [
        "util"; "obs"; "vfs"; "block"; "format"; "journal"; "cache"; "fsck"; "basefs"; "shadowfs";
        "specfs"; "workload"; "par";
      ] );
    (* the crash engine sits beside srv at the top of the cone: it drives
       the whole stack (base mounts, controller recoveries, the shadow
       oracle) but nothing depends on it *)
    ( "crash",
      [
        "util"; "obs"; "vfs"; "block"; "format"; "journal"; "cache"; "fsck"; "basefs"; "shadowfs";
        "specfs"; "workload"; "core"; "par";
      ] );
    ("lint", [ "util"; "obs" ]);
    (* srv's direct deps are util/obs/vfs/core; the rest of core's allowed
       set rides along because the controller's interface pulls those cmis
       into srv's import tables. *)
    ( "srv",
      [
        "util"; "obs"; "vfs"; "block"; "format"; "journal"; "cache"; "fsck"; "basefs"; "shadowfs";
        "workload"; "core"; "par";
      ] );
  ]

(* Must match Rae_core.Controller.phase_names; test_lint pins the two
   lists together.  Declared here (not read from the controller) so the
   lint library keeps its shallow dependency cone — and so a drive-by
   edit to phase_names that forgets the declared protocol fails a test
   rather than silently re-teaching the rule. *)
let default_phase_order =
  [
    "contained-reboot";
    "shadow-attach";
    "fd-reinstate";
    "seed";
    "constrained-replay";
    "inflight-autonomous";
    "metadata-download";
    "resume";
    "delegated-sync";
  ]

let default =
  {
    libraries = default_libraries;
    (* Rae_core.Checkpoint holds a live warm shadow: it inherits the
       shadow's never-writes-to-disk obligation even though it lives in
       the core library. *)
    purity_roots = [ "Rae_shadowfs."; "Rae_fsck.Fsck"; "Rae_core.Checkpoint" ];
    purity_sinks =
      [
        "Rae_block.Device.write";
        "Rae_block.Device.flush";
        "Rae_block.Disk.write";
        "Rae_block.Disk.restore";
        "Rae_block.Disk.save";
        "Rae_block.Disk.corrupt_byte";
        "Rae_block.Blkmq.enqueue";
        "Rae_block.Blkmq.submit_write";
        "Rae_block.Blkmq.dispatch_one";
        "Rae_block.Blkmq.kick";
        "Rae_journal.Journal.";
        "Rae_basefs.Base.";
      ];
    signal_exceptions =
      [
        "Rae_shadowfs.Shadow.Violation";
        "Rae_basefs.Detector.Base_bug";
        "Rae_basefs.Detector.Hang";
        "Rae_basefs.Detector.Validation_failed";
      ];
    ondisk_types =
      [
        "Rae_format.Superblock.t";
        "Rae_format.Inode.t";
        "Rae_format.Dirent.entry";
        "Rae_format.Bitmap.t";
      ];
    partial_fns =
      [
        ("Stdlib.List.hd", "match on the list");
        ("Stdlib.List.tl", "match on the list");
        ("Stdlib.List.nth", "List.nth_opt");
        ("Stdlib.Option.get", "match on the option");
        ("Stdlib.Hashtbl.find", "Hashtbl.find_opt, or handle Not_found at the call site");
      ];
    exempt_units = [ "Dune.exe" ];
    (* Raw block writes: everything that reaches the medium without going
       through the journal's transaction protocol. *)
    persist_raw_sinks =
      [
        "Rae_block.Device.write";
        "Rae_block.Disk.write";
        "Rae_block.Disk.restore";
        "Rae_block.Disk.corrupt_byte";
        "Rae_block.Blkmq.submit_write";
        "Rae_block.Blkmq.enqueue";
      ];
    persist_flush_sinks = [ "Rae_block.Device.flush"; "Rae_block.Blkmq.kick" ];
    persist_sink_fields = [ "Rae_block.Device.t.dev_write" ];
    persist_flush_fields = [ "Rae_block.Device.t.dev_flush" ];
    journal_append_fns = [ "Rae_journal.Journal.begin_txn"; "Rae_journal.Journal.txn_write" ];
    journal_commit_fns = [ "Rae_journal.Journal.commit" ];
    persist_writers =
      [
        (* the sinks' own home *)
        "Rae_block.Device.";
        "Rae_block.Disk.";
        "Rae_block.Blkmq.";
        (* the one sanctioned writer of durable metadata *)
        "Rae_journal.Journal.";
        (* writes outside the journal protocol by design: formatting a
           fresh image, and fsck repair (runs before any journal is
           trusted, with its own flush barriers) *)
        "Rae_format.Mkfs.";
        "Rae_fsck.Repair.";
        (* ordered-mode data destage: data blocks reach the medium
           before the metadata commit that references them (base.ml
           commit_work), exactly like ext4 data=ordered *)
        "Rae_basefs.Base.commit_work";
        (* the crash enumerator materializes crash images by raw disk
           writes onto scratch disks — it *models* torn persistence, so
           it is outside the journal protocol by definition *)
        "Rae_crash.";
      ];
    domain_regions =
      [
        ("fsck-pass", [ "Rae_fsck.Fsck." ]);
        ("journal-replay", [ "Rae_journal.Journal.replay" ]);
        ("ckpt-fold", [ "Rae_core.Checkpoint.fold" ]);
        ("constrained-replay", [ "Rae_shadowfs.Shadow.exec_constrained" ]);
        (* PR 10 parallel roots: code that now actually runs on worker
           domains.  The pool's worker loop is the generic root (every
           parallel_for body executes under it); the other three are the
           per-layer entry points the pool is handed. *)
        ("par-pool", [ "Rae_par.Pool." ]);
        ("par-destage", [ "Rae_journal.Journal.destage_parallel" ]);
        ("par-fold", [ "Rae_core.Checkpoint.worker_loop" ]);
        ("par-crash-sweep", [ "Rae_crash.Engine.sweep_workloads" ]);
      ];
    guarded_cells =
      [
        (* Flight-recorder ring slots: the slot index comes from an
           Atomic.fetch_and_add on Events.t.total, so concurrent writers
           touch disjoint slots; the per-slot arrays carry no ordering of
           their own.  (The analysis sees the Atomic on [total] but
           cannot prove slot disjointness.) *)
        ("Rae_obs.Events.t.e_", "slot exclusivity via Atomic fetch-and-add on Events.t.total");
        (* The tracer's internal helpers (now/push) mutate state but
           only ever run under the per-tracer mutex taken by the public
           mutators; the analysis sees the helper defs without the
           lock. *)
        ("Rae_obs.Tracer.t.", "public mutators and export serialize on the per-tracer mutex");
        (* The pool's own bookkeeping: each deque's items list is only
           touched under that deque's dmu; batch publication and the
           idle/work waits run under the pool mutex; callers serialize on
           exec_mu; the join counter and stats counters are Atomics. *)
        ("Rae_par.Pool.", "deque items under per-deque dmu; batch publication under pool mu; join/stats are Atomics");
        (* The async fold queue: every field of the async record is
           mutated only with amu held (enqueue, worker pop, barrier,
           quiesce); the worker runs fold bodies outside amu but flags
           itself busy under it first. *)
        ("Rae_core.Checkpoint.async_st.", "queue, counters and worker flags mutated only under amu");
      ]
      [@ocamlformat "disable"];
    domain_local_cells =
      [
        (* A shadow (and its overlay/chunk/cache state) is owned by the
           domain replaying into it: parallel constrained replay gives
           each group its own seeded shadow and cross-checks at merge
           points, so intra-shadow state never crosses domains. *)
        ("Rae_shadowfs.", "shadow instance owned by the replaying domain");
        ("Rae_specfs.", "spec state embedded in a domain-owned shadow");
        ("Rae_fsck.", "per-pass scan state; pFSCK decomposition is per block group");
        (* The journal replay destager partitions by home block; its
           in-memory state is rebuilt per replay invocation. *)
        ("Rae_journal.", "replay-local transaction scan state");
        (* Checkpoint bookkeeping (fold cursor, stats, the warm shadow
           handle): with async folding the background worker is the only
           writer while it is flagged busy, and the owning domain writes
           only after quiescing it (cut/poison/seed all drain first), so
           at any instant exactly one domain mutates instance state.
           Unsynchronized hot-path reads (due/valid) tolerate staleness
           by design. *)
        ("Rae_core.Checkpoint.t.", "single-writer handoff: worker while busy, owner after quiesce");
        (* The medium: per-block writes are disjoint by construction in
           every planned decomposition (block groups / home blocks). *)
        ("Rae_block.Disk.t.", "block-granular partitioning; per-domain write sets disjoint");
        ("Rae_block.Blkmq.t.", "one queue per destaging domain");
        (* Each crash sweep owns its recording, scratch disks and stats;
           the one cross-sweep cell (the bundle sequence) is an Atomic. *)
        ("Rae_crash.", "sweep state owned by the driving domain; scratch disks per point");
        (* The parallel crash sweep gives every workload a fresh image,
           fresh recording and fresh mounts, so the whole base-fs cone it
           reaches — mount state, detector, bug registry — is owned by
           the sweeping domain for that workload's lifetime. *)
        ("Rae_basefs.", "per-workload mount/detector/registry instances owned by the sweeping domain");
        ("Rae_block.Crashsim.t.", "crash-sim device created and consumed by one recording sweep");
        ("Rae_block.Blkmq.req.", "request owned by its submitting queue's domain until completion");
        ("Rae_format.Bitmap.t.", "bitmap embedded in a domain-owned image or scan ctx");
        ("Rae_util.Rng.t.", "rng instance owned by its creating domain");
      ];
    shadow_state_types = [ "Rae_shadowfs."; "Rae_specfs." ];
    phase_protocols = [ ("Rae_core.Controller.phase", default_phase_order) ];
  }

let unit_matches prefix unit =
  String.equal unit prefix
  || String.starts_with ~prefix unit
  || String.equal prefix (unit ^ ".")

let is_exempt t unit = List.exists (fun p -> unit_matches p unit) t.exempt_units

(* Value-name matcher shared by the sink/writer lists: a trailing '.'
   makes the entry a prefix covering a whole module. *)
let name_matches entry name =
  if String.length entry > 0 && entry.[String.length entry - 1] = '.' then
    String.starts_with ~prefix:entry name
  else String.equal entry name

let name_in_list l name = List.exists (fun e -> name_matches e name) l

let assoc_prefix l name =
  List.find_map
    (fun (prefix, v) -> if String.starts_with ~prefix name then Some v else None)
    l
