(* Lint configuration: the invariants the rules enforce, expressed as
   data so tests can aim the rules at fixture modules.  [default] encodes
   this repository's ground truth.

   Names are "normalized": compilation-unit separators ("__") are
   rewritten to ".", so [Rae_block__Device.write] and
   [Rae_block.Device.write] are the same name. *)

type t = {
  libraries : (string * string list) list;
      (* library -> allowed dependency libraries (self always allowed).
         Libraries absent from this table are not layer-checked, and
         imports of unknown libraries (stdlib, fmt, ...) are ignored. *)
  purity_roots : string list;
      (* normalized unit-name prefixes whose every definition must not
         reach a write-path sink (rule shadow-purity). *)
  purity_sinks : string list;
      (* normalized value names; a trailing '.' makes the entry a prefix
         covering a whole module. *)
  signal_exceptions : string list;
      (* normalized extension-constructor names that carry runtime-error
         signals; catch-all handlers that can absorb one are flagged. *)
  ondisk_types : string list;
      (* normalized type-constructor paths of on-disk structures for
         which polymorphic compare/equality is forbidden. *)
  partial_fns : (string * string) list;
      (* normalized stdlib value -> suggested replacement. *)
  exempt_units : string list;
      (* normalized unit-name prefixes exempt from the partial-call and
         swallow rules (test executables and the like). *)
}

(* Layering ground truth.  This intentionally duplicates the dune
   stanzas: the rule checks the compiled import tables, so a dependency
   smuggled in through a loosened stanza still fails the gate. *)
let default_libraries =
  [
    ("util", []);
    ("obs", [ "util" ]);
    ("vfs", [ "util" ]);
    ("block", [ "util"; "obs" ]);
    ("format", [ "util"; "vfs"; "block" ]);
    ("journal", [ "util"; "obs"; "block"; "format" ]);
    ("cache", [ "util"; "obs"; "vfs" ]);
    ("fsck", [ "util"; "vfs"; "block"; "format" ]);
    ("shadowfs", [ "util"; "obs"; "vfs"; "block"; "format"; "fsck" ]);
    ("specfs", [ "util"; "vfs"; "format" ]);
    ("basefs", [ "util"; "obs"; "vfs"; "block"; "format"; "journal"; "cache" ]);
    ("workload", [ "util"; "vfs" ]);
    ("bugstudy", [ "util" ]);
    ( "core",
      [
        "util"; "obs"; "vfs"; "block"; "format"; "journal"; "cache"; "fsck"; "basefs"; "shadowfs";
        "workload";
      ] );
    ("lint", [ "util"; "obs" ]);
    (* srv's direct deps are util/obs/vfs/core; the rest of core's allowed
       set rides along because the controller's interface pulls those cmis
       into srv's import tables. *)
    ( "srv",
      [
        "util"; "obs"; "vfs"; "block"; "format"; "journal"; "cache"; "fsck"; "basefs"; "shadowfs";
        "workload"; "core";
      ] );
  ]

let default =
  {
    libraries = default_libraries;
    (* Rae_core.Checkpoint holds a live warm shadow: it inherits the
       shadow's never-writes-to-disk obligation even though it lives in
       the core library. *)
    purity_roots = [ "Rae_shadowfs."; "Rae_fsck.Fsck"; "Rae_core.Checkpoint" ];
    purity_sinks =
      [
        "Rae_block.Device.write";
        "Rae_block.Device.flush";
        "Rae_block.Disk.write";
        "Rae_block.Disk.restore";
        "Rae_block.Disk.save";
        "Rae_block.Disk.corrupt_byte";
        "Rae_block.Blkmq.enqueue";
        "Rae_block.Blkmq.submit_write";
        "Rae_block.Blkmq.dispatch_one";
        "Rae_block.Blkmq.kick";
        "Rae_journal.Journal.";
        "Rae_basefs.Base.";
      ];
    signal_exceptions =
      [
        "Rae_shadowfs.Shadow.Violation";
        "Rae_basefs.Detector.Base_bug";
        "Rae_basefs.Detector.Hang";
        "Rae_basefs.Detector.Validation_failed";
      ];
    ondisk_types =
      [
        "Rae_format.Superblock.t";
        "Rae_format.Inode.t";
        "Rae_format.Dirent.entry";
        "Rae_format.Bitmap.t";
      ];
    partial_fns =
      [
        ("Stdlib.List.hd", "match on the list");
        ("Stdlib.List.tl", "match on the list");
        ("Stdlib.List.nth", "List.nth_opt");
        ("Stdlib.Option.get", "match on the option");
        ("Stdlib.Hashtbl.find", "Hashtbl.find_opt, or handle Not_found at the call site");
      ];
    exempt_units = [ "Dune.exe" ];
  }

let unit_matches prefix unit =
  String.equal unit prefix
  || String.starts_with ~prefix unit
  || String.equal prefix (unit ^ ".")

let is_exempt t unit = List.exists (fun p -> unit_matches p unit) t.exempt_units
