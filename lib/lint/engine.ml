(* Tie the pieces together: scan .cmt trees, run every rule, apply the
   suppression baseline, and expose run statistics to the rae_obs
   metrics registry so `lint_rfs --metrics` composes with the rest of
   the observability surface. *)

type stats = {
  files_scanned : int;
  units_loaded : int;
  load_skipped : int;
  rules_run : int;
  findings : int;  (* unsuppressed *)
  suppressed : int;
  unused_baseline : int;
  by_rule : (string * int) list;  (* unsuppressed, every rule present *)
  wall_s : float;
}

type result = {
  kept : Finding.t list;  (* unsuppressed, sorted by position *)
  hidden : Finding.t list;  (* suppressed by the baseline *)
  unused : Baseline.entry list;
  skipped : string list;  (* unreadable cmt files *)
  domain : Domsafety.region_report list;  (* full domain-safety catalogue *)
  stats : stats;
}

let run ?(config = Lintcfg.default) ?(baseline = Baseline.empty) ~dirs () =
  let t0 = Sys.time () in
  let load = Cmt_load.scan dirs in
  if load.Cmt_load.units = [] then
    Error
      (Printf.sprintf "no readable .cmt files under %s (build first: dune build)"
         (String.concat " " dirs))
  else begin
    let analyses =
      List.filter_map
        (fun (u : Cmt_load.unit_info) ->
          Option.map
            (fun str ->
              Analysis.analyze_unit ~unit:u.Cmt_load.ui_unit ~source:u.Cmt_load.ui_source str)
            u.Cmt_load.ui_structure)
        load.Cmt_load.units
    in
    let graph = Analysis.build_graph analyses in
    let eff = Effects.infer config analyses graph in
    let domain = Domsafety.analyze config analyses graph in
    let findings = Rules.run config load.Cmt_load.units analyses graph eff domain in
    let kept, hidden, unused = Baseline.apply baseline findings in
    let kept = List.sort Finding.compare_by_pos kept in
    let by_rule =
      List.map
        (fun r ->
          (r, List.length (List.filter (fun (f : Finding.t) -> f.Finding.rule = r) kept)))
        Rules.all_rules
    in
    Ok
      {
        kept;
        hidden;
        unused;
        skipped = load.Cmt_load.skipped;
        domain;
        stats =
          {
            files_scanned = load.Cmt_load.files;
            units_loaded = List.length load.Cmt_load.units;
            load_skipped = List.length load.Cmt_load.skipped;
            rules_run = List.length Rules.all_rules;
            findings = List.length kept;
            suppressed = List.length hidden;
            unused_baseline = List.length unused;
            by_rule;
            wall_s = Sys.time () -. t0;
          };
      }
  end

let has_errors result =
  List.exists (fun (f : Finding.t) -> f.Finding.severity = Finding.Error) result.kept

(* ---- rae_obs integration ---- *)

let register_obs registry (s : stats) =
  let open Rae_obs.Metrics in
  register_counter registry ~help:"cmt files scanned by the last lint run" "rae_lint_files_scanned"
    (fun () -> s.files_scanned);
  register_counter registry ~help:"compilation units analyzed" "rae_lint_units" (fun () ->
      s.units_loaded);
  register_counter registry ~help:"lint rules run" "rae_lint_rules" (fun () -> s.rules_run);
  register_counter registry ~help:"unsuppressed findings" "rae_lint_findings" (fun () -> s.findings);
  register_counter registry ~help:"findings suppressed by the baseline" "rae_lint_suppressed"
    (fun () -> s.suppressed);
  register_counter registry ~help:"baseline entries that matched nothing" "rae_lint_unused_baseline"
    (fun () -> s.unused_baseline);
  register_gauge registry ~help:"lint wall time (seconds, CPU clock)" "rae_lint_wall_seconds"
    (fun () -> s.wall_s);
  List.iter
    (fun (rule, n) ->
      register_counter registry
        ~help:(Printf.sprintf "unsuppressed findings from rule %s" rule)
        (Printf.sprintf "rae_lint_findings_%s"
           (String.map (fun c -> if c = '-' then '_' else c) rule))
        (fun () -> n))
    s.by_rule

let stats_to_json (s : stats) =
  Printf.sprintf
    {|{"files_scanned":%d,"units_loaded":%d,"load_skipped":%d,"rules_run":%d,"findings":%d,"suppressed":%d,"unused_baseline":%d,"wall_s":%.6f,"by_rule":{%s}}|}
    s.files_scanned s.units_loaded s.load_skipped s.rules_run s.findings s.suppressed
    s.unused_baseline s.wall_s
    (String.concat ","
       (List.map (fun (r, n) -> Printf.sprintf {|"%s":%d|} (Finding.json_escape r) n) s.by_rule))

let to_json result =
  Printf.sprintf {|{"stats":%s,"findings":[%s],"suppressed":[%s]}|}
    (stats_to_json result.stats)
    (String.concat "," (List.map Finding.to_json result.kept))
    (String.concat "," (List.map Finding.to_json result.hidden))
