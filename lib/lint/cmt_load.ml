(* Load dune-emitted .cmt files (typed ASTs) via compiler-libs.  The
   loader is deliberately forgiving: a cmt written by a different
   compiler, or one holding an interface instead of an implementation,
   is skipped with a note rather than aborting the whole run. *)

type unit_info = {
  ui_unit : string;  (* normalized unit name, e.g. "Rae_shadowfs.Shadow" *)
  ui_library : string option;  (* "shadowfs" for "Rae_shadowfs.Shadow" *)
  ui_source : string;  (* compile-time path, e.g. "lib/shadowfs/shadow.ml" *)
  ui_imports : string list;  (* normalized imported unit names *)
  ui_structure : Typedtree.structure option;
}

(* "Rae_block__Device" -> "Rae_block.Device" *)
let normalize name =
  let n = String.length name in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && name.[!i] = '_' && name.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b name.[!i];
      incr i
    end
  done;
  Buffer.contents b

(* Library owning a normalized unit name: the first path component,
   lowercased, with the wrapping "rae_" prefix dropped.
   "Rae_shadowfs.Shadow" -> "shadowfs"; "Lint_fixtures.Bad" ->
   "lint_fixtures"; "Stdlib.List" -> "stdlib". *)
let library_of_unit unit =
  let head = match String.index_opt unit '.' with Some i -> String.sub unit 0 i | None -> unit in
  if head = "" then None
  else
    let head = String.lowercase_ascii head in
    if String.starts_with ~prefix:"rae_" head then
      Some (String.sub head 4 (String.length head - 4))
    else Some head

let load_cmt path =
  match Cmt_format.read_cmt path with
  | exception exn -> Error (Printf.sprintf "%s: %s" path (Printexc.to_string exn))
  | cmt ->
      let unit = normalize cmt.Cmt_format.cmt_modname in
      let source =
        match cmt.Cmt_format.cmt_sourcefile with Some s -> s | None -> path
      in
      let imports =
        List.filter_map
          (fun (name, _) -> if name = cmt.Cmt_format.cmt_modname then None else Some (normalize name))
          cmt.Cmt_format.cmt_imports
      in
      let structure =
        match cmt.Cmt_format.cmt_annots with
        | Cmt_format.Implementation str -> Some str
        | _ -> None
      in
      Ok
        {
          ui_unit = unit;
          ui_library = library_of_unit unit;
          ui_source = source;
          ui_imports = imports;
          ui_structure = structure;
        }

(* Recursively collect *.cmt under [dirs] (dune hides them in dot-dirs
   like .rae_util.objs, so dot-directories are descended into). *)
let find_cmts dirs =
  let out = ref [] in
  let rec walk path =
    match Sys.is_directory path with
    | exception Sys_error _ -> ()
    | true ->
        let entries = try Sys.readdir path with Sys_error _ -> [||] in
        Array.iter (fun e -> walk (Filename.concat path e)) entries
    | false -> if Filename.check_suffix path ".cmt" then out := path :: !out
  in
  List.iter walk dirs;
  List.sort String.compare !out

type load_result = { units : unit_info list; skipped : string list; files : int }

let scan dirs =
  let files = find_cmts dirs in
  let units, skipped =
    List.fold_left
      (fun (units, skipped) f ->
        match load_cmt f with
        | Ok u -> (u :: units, skipped)
        | Error msg -> (units, msg :: skipped))
      ([], []) files
  in
  { units = List.rev units; skipped = List.rev skipped; files = List.length files }
