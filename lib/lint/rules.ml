(* The rule set.  Every rule consumes the per-unit analyses plus the
   interprocedural effect signatures ([Effects]) computed once per run —
   reachability questions are answered from the fixpoint, not re-walked
   per rule.

   1. shadow-purity   — no write-path sink reachable from shadow/fsck
                        read-path definitions (paper: the shadow never
                        writes to disk).  Effect-based: a root unit is
                        impure iff a definition's effect signature
                        records a path to a purity sink.
   2. no-swallow      — no catch-all exception handler that can absorb a
                        runtime-error signal (Shadow.Violation, detector
                        bug exceptions), using the transitive may-raise
                        sets from the fixpoint.
   3. persist-order   — SquirrelFS-style persistence typestate: raw
                        block writes must be dominated by an open
                        journal transaction and destage only after the
                        commit; mid-transaction flushes reorder the
                        barrier (Order.persist).
   4. domain-safety   — unguarded mutable cells written by code on the
                        planned parallel regions (Domsafety).
   5. phase-order     — the recovery phases must be entered in the
                        declared order on every path, including the
                        seeded fallback (Order.phases).
   6. layering        — the module-dependency DAG, checked from compiled
                        import tables rather than dune stanzas.
   7. poly-compare    — no polymorphic compare/equality on on-disk
                        structures, where structural compare hides
                        format bugs.
   8. partial-call    — no partial stdlib calls (List.hd, Option.get,
                        unhandled Hashtbl.find) in library code. *)

let rule_purity = "shadow-purity"
let rule_swallow = "no-swallow"
let rule_persist = Order.persist_rule_name
let rule_domain = Domsafety.rule_name
let rule_phase = Order.phase_rule_name
let rule_layering = "layering"
let rule_polycmp = "poly-compare"
let rule_partial = "partial-call"

let all_rules =
  [
    rule_purity; rule_swallow; rule_persist; rule_domain; rule_phase; rule_layering; rule_polycmp;
    rule_partial;
  ]

let finding ~rule ~file ~line ~key message =
  { Finding.rule; severity = Finding.Error; file; line; message; key }

(* ---- 1. shadow purity ---- *)

let purity (cfg : Lintcfg.t) analyses (eff : Effects.t) =
  let findings = ref [] in
  List.iter
    (fun (a : Analysis.unit_analysis) ->
      if List.exists (fun p -> Lintcfg.unit_matches p a.Analysis.a_unit) cfg.Lintcfg.purity_roots
      then begin
        (* All sinks any definition of this root unit can reach, each
           reported once, from the definition with the shortest witness
           chain (ties: first definition in source order). *)
        let sinks =
          List.sort_uniq String.compare
            (List.concat_map (fun (d : Analysis.def) -> Effects.sinks_of eff d.Analysis.d_name)
               a.Analysis.a_defs)
        in
        List.iter
          (fun sink ->
            let best =
              List.fold_left
                (fun acc (d : Analysis.def) ->
                  match Effects.sink_distance eff d.Analysis.d_name sink with
                  | None -> acc
                  | Some dist -> (
                      match acc with
                      | Some (_, bd) when bd <= dist -> acc
                      | _ -> Some (d, dist)))
                None a.Analysis.a_defs
            in
            match best with
            | None -> ()
            | Some (d, _) ->
                let chain = Effects.sink_chain eff d.Analysis.d_name sink in
                findings :=
                  finding ~rule:rule_purity ~file:d.Analysis.d_loc.Analysis.l_file
                    ~line:d.Analysis.d_loc.Analysis.l_line ~key:sink
                    (Printf.sprintf "write-path sink %s is reachable from read-path unit %s: %s"
                       sink a.Analysis.a_unit
                       (String.concat " -> " chain))
                  :: !findings)
          sinks
      end)
    analyses;
  List.rev !findings

(* ---- 2. no swallowed runtime-error signals ---- *)

let swallow (cfg : Lintcfg.t) analyses (eff : Effects.t) =
  let findings = ref [] in
  List.iter
    (fun (a : Analysis.unit_analysis) ->
      if not (Lintcfg.is_exempt cfg a.Analysis.a_unit) then
        List.iter
          (fun (t : Analysis.try_site) ->
            if t.Analysis.t_catchall then begin
              let direct =
                List.filter
                  (fun s -> List.mem s cfg.Lintcfg.signal_exceptions)
                  t.Analysis.t_body_raises
              in
              let via_call =
                List.filter_map
                  (fun (r, _) ->
                    let raised = Effects.may_raise eff r in
                    match
                      List.find_opt (fun s -> List.mem s raised) cfg.Lintcfg.signal_exceptions
                    with
                    | Some s -> Some (s, r)
                    | None -> None)
                  t.Analysis.t_body_refs
              in
              match (direct, via_call) with
              | [], [] -> ()
              | s :: _, _ ->
                  findings :=
                    finding ~rule:rule_swallow ~file:t.Analysis.t_loc.Analysis.l_file
                      ~line:t.Analysis.t_loc.Analysis.l_line ~key:s
                      (Printf.sprintf
                         "catch-all handler absorbs runtime-error signal %s raised in the guarded \
                          body; match the intended exceptions explicitly"
                         s)
                    :: !findings
              | [], (s, via) :: _ ->
                  findings :=
                    finding ~rule:rule_swallow ~file:t.Analysis.t_loc.Analysis.l_file
                      ~line:t.Analysis.t_loc.Analysis.l_line ~key:s
                      (Printf.sprintf
                         "catch-all handler can absorb runtime-error signal %s (reachable via %s); \
                          match the intended exceptions explicitly"
                         s via)
                    :: !findings
            end)
          a.Analysis.a_tries)
    analyses;
  List.rev !findings

(* ---- 6. layering ---- *)

let layering (cfg : Lintcfg.t) (units : Cmt_load.unit_info list) =
  let known lib = List.mem_assoc lib cfg.Lintcfg.libraries in
  let findings = ref [] in
  List.iter
    (fun (u : Cmt_load.unit_info) ->
      match u.Cmt_load.ui_library with
      | Some lib when known lib ->
          let allowed = match List.assoc_opt lib cfg.Lintcfg.libraries with Some l -> l | None -> [] in
          let bad =
            List.sort_uniq String.compare
              (List.filter_map
                 (fun import ->
                   match Cmt_load.library_of_unit import with
                   | Some ilib when known ilib && ilib <> lib && not (List.mem ilib allowed) ->
                       Some ilib
                   | _ -> None)
                 u.Cmt_load.ui_imports)
          in
          List.iter
            (fun ilib ->
              findings :=
                finding ~rule:rule_layering ~file:u.Cmt_load.ui_source ~line:1 ~key:ilib
                  (Printf.sprintf
                     "library %s must not depend on library %s (unit %s imports it); the module DAG \
                      forbids this edge"
                     lib ilib u.Cmt_load.ui_unit)
                :: !findings)
            bad
      | _ -> ())
    units;
  List.rev !findings

(* ---- 7. polymorphic compare on on-disk structures ---- *)

let poly_ops =
  [
    "Stdlib.="; "Stdlib.<>"; "Stdlib.compare"; "Stdlib.<"; "Stdlib.>"; "Stdlib.<="; "Stdlib.>=";
    "Stdlib.min"; "Stdlib.max";
  ]

let polycmp (cfg : Lintcfg.t) analyses =
  let findings = ref [] in
  List.iter
    (fun (a : Analysis.unit_analysis) ->
      List.iter
        (fun (h : Analysis.ident_hit) ->
          if List.mem h.Analysis.h_path poly_ops then
            match h.Analysis.h_arg_type with
            | Some ty when List.mem ty cfg.Lintcfg.ondisk_types ->
                let op =
                  match String.rindex_opt h.Analysis.h_path '.' with
                  | Some i ->
                      String.sub h.Analysis.h_path (i + 1) (String.length h.Analysis.h_path - i - 1)
                  | None -> h.Analysis.h_path
                in
                findings :=
                  finding ~rule:rule_polycmp ~file:h.Analysis.h_loc.Analysis.l_file
                    ~line:h.Analysis.h_loc.Analysis.l_line ~key:ty
                    (Printf.sprintf
                       "polymorphic %s on on-disk structure %s; structural compare hides format \
                        bugs — use a field-aware equality"
                       op ty)
                  :: !findings
            | _ -> ())
        a.Analysis.a_idents)
    analyses;
  List.rev !findings

(* ---- 8. partial stdlib calls ---- *)

let partial (cfg : Lintcfg.t) analyses =
  let findings = ref [] in
  List.iter
    (fun (a : Analysis.unit_analysis) ->
      if not (Lintcfg.is_exempt cfg a.Analysis.a_unit) then
        let handled_ranges =
          List.filter_map
            (fun (t : Analysis.try_site) ->
              if t.Analysis.t_handles_notfound then
                Some (t.Analysis.t_body_first_line, t.Analysis.t_body_last_line)
              else None)
            a.Analysis.a_tries
        in
        let in_handled_range line =
          List.exists (fun (lo, hi) -> line >= lo && line <= hi) handled_ranges
        in
        List.iter
          (fun (h : Analysis.ident_hit) ->
            match List.assoc_opt h.Analysis.h_path cfg.Lintcfg.partial_fns with
            | None -> ()
            | Some suggestion ->
                let is_find = String.equal h.Analysis.h_path "Stdlib.Hashtbl.find" in
                if not (is_find && in_handled_range h.Analysis.h_loc.Analysis.l_line) then
                  findings :=
                    finding ~rule:rule_partial ~file:h.Analysis.h_loc.Analysis.l_file
                      ~line:h.Analysis.h_loc.Analysis.l_line ~key:h.Analysis.h_path
                      (Printf.sprintf "partial call %s; prefer %s" h.Analysis.h_path suggestion)
                    :: !findings)
          a.Analysis.a_idents)
    analyses;
  List.rev !findings

let run (cfg : Lintcfg.t) (units : Cmt_load.unit_info list) analyses graph (eff : Effects.t)
    (domain : Domsafety.region_report list) =
  purity cfg analyses eff
  @ swallow cfg analyses eff
  @ Order.persist cfg eff graph
  @ Domsafety.findings domain
  @ Order.phases cfg eff graph
  @ layering cfg units
  @ polycmp cfg analyses
  @ partial cfg analyses
