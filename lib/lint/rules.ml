(* The rule set.  Each rule consumes the per-unit analyses (and the
   cross-unit graph where it needs reachability) and yields findings.

   1. shadow-purity   — no write-path sink reachable from shadow/fsck
                        read-path definitions (paper: the shadow never
                        writes to disk).
   2. no-swallow      — no catch-all exception handler that can absorb a
                        runtime-error signal (Shadow.Violation, detector
                        bug exceptions): the error-detection channel.
   3. layering        — the module-dependency DAG, checked from compiled
                        import tables rather than dune stanzas.
   4. poly-compare    — no polymorphic compare/equality on on-disk
                        structures, where structural compare hides
                        format bugs.
   5. partial-call    — no partial stdlib calls (List.hd, Option.get,
                        unhandled Hashtbl.find) in library code. *)

let rule_purity = "shadow-purity"
let rule_swallow = "no-swallow"
let rule_layering = "layering"
let rule_polycmp = "poly-compare"
let rule_partial = "partial-call"

let all_rules = [ rule_purity; rule_swallow; rule_layering; rule_polycmp; rule_partial ]

let finding ~rule ~file ~line ~key message =
  { Finding.rule; severity = Finding.Error; file; line; message; key }

(* ---- 1. shadow purity ---- *)

let sink_match (cfg : Lintcfg.t) name =
  List.exists
    (fun s ->
      if String.length s > 0 && s.[String.length s - 1] = '.' then String.starts_with ~prefix:s name
      else String.equal s name)
    cfg.Lintcfg.purity_sinks

let purity (cfg : Lintcfg.t) analyses (graph : Analysis.graph) =
  let findings = ref [] in
  List.iter
    (fun (a : Analysis.unit_analysis) ->
      if List.exists (fun p -> Lintcfg.unit_matches p a.Analysis.a_unit) cfg.Lintcfg.purity_roots
      then begin
        (* Breadth-first from every definition of the root unit; report
           one finding per sink hit, with the shortest call chain. *)
        let pred : (string, string) Hashtbl.t = Hashtbl.create 64 in
        let seen_sinks = ref [] in
        let visited : (string, unit) Hashtbl.t = Hashtbl.create 256 in
        let queue = Queue.create () in
        List.iter
          (fun (d : Analysis.def) ->
            Hashtbl.replace visited d.Analysis.d_name ();
            Queue.add d.Analysis.d_name queue)
          a.Analysis.a_defs;
        while not (Queue.is_empty queue) do
          let name = Queue.take queue in
          match Hashtbl.find_opt graph.Analysis.nodes name with
          | None -> ()
          | Some d ->
              List.iter
                (fun (r, _loc) ->
                  if sink_match cfg r then begin
                    if not (List.mem_assoc r !seen_sinks) then begin
                      (* Reconstruct the chain root -> ... -> name -> r. *)
                      let rec chain n acc =
                        match Hashtbl.find_opt pred n with
                        | Some p -> chain p (n :: acc)
                        | None -> n :: acc
                      in
                      let path = chain name [ r ] in
                      seen_sinks := (r, (d, path)) :: !seen_sinks
                    end
                  end
                  else if not (Hashtbl.mem visited r) && Hashtbl.mem graph.Analysis.nodes r
                  then begin
                    Hashtbl.replace visited r ();
                    Hashtbl.replace pred r name;
                    Queue.add r queue
                  end)
                d.Analysis.d_refs
        done;
        List.iter
          (fun (sink, ((d : Analysis.def), path)) ->
            ignore d;
            let root = match path with r :: _ -> r | [] -> a.Analysis.a_unit in
            let root_loc =
              match Hashtbl.find_opt graph.Analysis.nodes root with
              | Some rd -> rd.Analysis.d_loc
              | None -> { Analysis.l_file = a.Analysis.a_source; l_line = 1 }
            in
            findings :=
              finding ~rule:rule_purity ~file:root_loc.Analysis.l_file
                ~line:root_loc.Analysis.l_line ~key:sink
                (Printf.sprintf
                   "write-path sink %s is reachable from read-path unit %s: %s" sink
                   a.Analysis.a_unit (String.concat " -> " path))
              :: !findings)
          (List.rev !seen_sinks)
      end)
    analyses;
  List.rev !findings

(* ---- 2. no swallowed runtime-error signals ---- *)

let swallow (cfg : Lintcfg.t) analyses (graph : Analysis.graph) =
  let may_raise = Analysis.may_raise graph in
  let findings = ref [] in
  List.iter
    (fun (a : Analysis.unit_analysis) ->
      if not (Lintcfg.is_exempt cfg a.Analysis.a_unit) then
        List.iter
          (fun (t : Analysis.try_site) ->
            if t.Analysis.t_catchall then begin
              let direct =
                List.filter
                  (fun s -> List.mem s cfg.Lintcfg.signal_exceptions)
                  t.Analysis.t_body_raises
              in
              let via_call =
                List.filter_map
                  (fun (r, _) ->
                    let raised = may_raise r in
                    match
                      List.find_opt (fun s -> List.mem s raised) cfg.Lintcfg.signal_exceptions
                    with
                    | Some s -> Some (s, r)
                    | None -> None)
                  t.Analysis.t_body_refs
              in
              match (direct, via_call) with
              | [], [] -> ()
              | s :: _, _ ->
                  findings :=
                    finding ~rule:rule_swallow ~file:t.Analysis.t_loc.Analysis.l_file
                      ~line:t.Analysis.t_loc.Analysis.l_line ~key:s
                      (Printf.sprintf
                         "catch-all handler absorbs runtime-error signal %s raised in the guarded \
                          body; match the intended exceptions explicitly"
                         s)
                    :: !findings
              | [], (s, via) :: _ ->
                  findings :=
                    finding ~rule:rule_swallow ~file:t.Analysis.t_loc.Analysis.l_file
                      ~line:t.Analysis.t_loc.Analysis.l_line ~key:s
                      (Printf.sprintf
                         "catch-all handler can absorb runtime-error signal %s (reachable via %s); \
                          match the intended exceptions explicitly"
                         s via)
                    :: !findings
            end)
          a.Analysis.a_tries)
    analyses;
  List.rev !findings

(* ---- 3. layering ---- *)

let layering (cfg : Lintcfg.t) (units : Cmt_load.unit_info list) =
  let known lib = List.mem_assoc lib cfg.Lintcfg.libraries in
  let findings = ref [] in
  List.iter
    (fun (u : Cmt_load.unit_info) ->
      match u.Cmt_load.ui_library with
      | Some lib when known lib ->
          let allowed = match List.assoc_opt lib cfg.Lintcfg.libraries with Some l -> l | None -> [] in
          let bad =
            List.sort_uniq String.compare
              (List.filter_map
                 (fun import ->
                   match Cmt_load.library_of_unit import with
                   | Some ilib when known ilib && ilib <> lib && not (List.mem ilib allowed) ->
                       Some ilib
                   | _ -> None)
                 u.Cmt_load.ui_imports)
          in
          List.iter
            (fun ilib ->
              findings :=
                finding ~rule:rule_layering ~file:u.Cmt_load.ui_source ~line:1 ~key:ilib
                  (Printf.sprintf
                     "library %s must not depend on library %s (unit %s imports it); the module DAG \
                      forbids this edge"
                     lib ilib u.Cmt_load.ui_unit)
                :: !findings)
            bad
      | _ -> ())
    units;
  List.rev !findings

(* ---- 4. polymorphic compare on on-disk structures ---- *)

let poly_ops =
  [
    "Stdlib.="; "Stdlib.<>"; "Stdlib.compare"; "Stdlib.<"; "Stdlib.>"; "Stdlib.<="; "Stdlib.>=";
    "Stdlib.min"; "Stdlib.max";
  ]

let polycmp (cfg : Lintcfg.t) analyses =
  let findings = ref [] in
  List.iter
    (fun (a : Analysis.unit_analysis) ->
      List.iter
        (fun (h : Analysis.ident_hit) ->
          if List.mem h.Analysis.h_path poly_ops then
            match h.Analysis.h_arg_type with
            | Some ty when List.mem ty cfg.Lintcfg.ondisk_types ->
                let op =
                  match String.rindex_opt h.Analysis.h_path '.' with
                  | Some i ->
                      String.sub h.Analysis.h_path (i + 1) (String.length h.Analysis.h_path - i - 1)
                  | None -> h.Analysis.h_path
                in
                findings :=
                  finding ~rule:rule_polycmp ~file:h.Analysis.h_loc.Analysis.l_file
                    ~line:h.Analysis.h_loc.Analysis.l_line ~key:ty
                    (Printf.sprintf
                       "polymorphic %s on on-disk structure %s; structural compare hides format \
                        bugs — use a field-aware equality"
                       op ty)
                  :: !findings
            | _ -> ())
        a.Analysis.a_idents)
    analyses;
  List.rev !findings

(* ---- 5. partial stdlib calls ---- *)

let partial (cfg : Lintcfg.t) analyses =
  let findings = ref [] in
  List.iter
    (fun (a : Analysis.unit_analysis) ->
      if not (Lintcfg.is_exempt cfg a.Analysis.a_unit) then
        let handled_ranges =
          List.filter_map
            (fun (t : Analysis.try_site) ->
              if t.Analysis.t_handles_notfound then
                Some (t.Analysis.t_body_first_line, t.Analysis.t_body_last_line)
              else None)
            a.Analysis.a_tries
        in
        let in_handled_range line =
          List.exists (fun (lo, hi) -> line >= lo && line <= hi) handled_ranges
        in
        List.iter
          (fun (h : Analysis.ident_hit) ->
            match List.assoc_opt h.Analysis.h_path cfg.Lintcfg.partial_fns with
            | None -> ()
            | Some suggestion ->
                let is_find = String.equal h.Analysis.h_path "Stdlib.Hashtbl.find" in
                if not (is_find && in_handled_range h.Analysis.h_loc.Analysis.l_line) then
                  findings :=
                    finding ~rule:rule_partial ~file:h.Analysis.h_loc.Analysis.l_file
                      ~line:h.Analysis.h_loc.Analysis.l_line ~key:h.Analysis.h_path
                      (Printf.sprintf "partial call %s; prefer %s" h.Analysis.h_path suggestion)
                    :: !findings)
          a.Analysis.a_idents)
    analyses;
  List.rev !findings

let run (cfg : Lintcfg.t) (units : Cmt_load.unit_info list) analyses graph =
  purity cfg analyses graph
  @ swallow cfg analyses graph
  @ layering cfg units
  @ polycmp cfg analyses
  @ partial cfg analyses
