(* A single lint finding: which rule fired, where, and a stable [key]
   used for suppression-baseline matching (keys survive line drift;
   locations do not). *)

type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  message : string;
  key : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let compare_by_pos a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
  | c -> c

let to_human f =
  Printf.sprintf "%s:%d: %s [%s] %s" f.file f.line (severity_to_string f.severity) f.rule f.message

(* ---- minimal JSON ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf {|{"rule":"%s","severity":"%s","file":"%s","line":%d,"key":"%s","message":"%s"}|}
    (json_escape f.rule)
    (severity_to_string f.severity)
    (json_escape f.file) f.line (json_escape f.key) (json_escape f.message)
