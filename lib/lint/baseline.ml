(* Checked-in suppression baseline.  One entry per line:

     rule<TAB>file<TAB>key

   '#' starts a comment.  A finding is suppressed when an entry matches
   its (rule, file, key) triple — the key is content-derived (the
   offending symbol, sink, or import), so entries survive line drift.
   Unused entries are reported so the baseline can only shrink. *)

type entry = { e_rule : string; e_file : string; e_key : string }

type t = entry list

let empty : t = []

let entry_to_line e = Printf.sprintf "%s\t%s\t%s" e.e_rule e.e_file e.e_key

let of_string s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.split_on_char '\t' line with
           | [ e_rule; e_file; e_key ] -> Some (Ok { e_rule; e_file; e_key })
           | _ -> Some (Error line))

let parse s =
  let entries, bad =
    List.partition_map (function Ok e -> Left e | Error l -> Right l) (of_string s)
  in
  (entries, bad)

let of_findings findings =
  List.map
    (fun (f : Finding.t) -> { e_rule = f.Finding.rule; e_file = f.Finding.file; e_key = f.Finding.key })
    findings
  |> List.sort_uniq compare

let to_string (t : t) =
  let b = Buffer.create 256 in
  Buffer.add_string b "# rae_lint suppression baseline: rule<TAB>file<TAB>key per line.\n";
  Buffer.add_string b "# Regenerate with: lint_rfs --write-baseline\n";
  List.iter
    (fun e ->
      Buffer.add_string b (entry_to_line e);
      Buffer.add_char b '\n')
    (List.sort_uniq compare t);
  Buffer.contents b

let matches e (f : Finding.t) =
  String.equal e.e_rule f.Finding.rule
  && String.equal e.e_file f.Finding.file
  && String.equal e.e_key f.Finding.key

(* Partition findings into (kept, suppressed); also return baseline
   entries that matched nothing. *)
let apply (t : t) findings =
  let used : (entry, unit) Hashtbl.t = Hashtbl.create 16 in
  let kept, suppressed =
    List.partition
      (fun f ->
        match List.find_opt (fun e -> matches e f) t with
        | Some e ->
            Hashtbl.replace used e ();
            false
        | None -> true)
      findings
  in
  let unused = List.filter (fun e -> not (Hashtbl.mem used e)) t in
  (kept, suppressed, unused)

(* Entries present in [next] but not [prev], and vice versa — the diff
   summary printed by lint_rfs --update-baseline. *)
let diff ~prev ~next =
  let added = List.filter (fun e -> not (List.mem e prev)) (List.sort_uniq compare next) in
  let removed = List.filter (fun e -> not (List.mem e next)) (List.sort_uniq compare prev) in
  (added, removed)

let load path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    parse s
  end
  else ([], [])
