(* fsck.rfs: check an rfs image for consistency, optionally repairing
   what has a unique safe fix (preen).  Exit status 0 = clean (warnings
   allowed), 1 = structural errors, 2 = unreadable. *)

open Cmdliner

let run image verbose preen =
  match Rae_block.Disk.load image with
  | Error msg ->
      Printf.eprintf "cannot read %s: %s\n" image msg;
      exit 2
  | Ok disk ->
      let dev = Rae_block.Device.of_disk disk in
      (if preen then
         match Rae_fsck.Repair.repair dev with
         | Ok [] -> Printf.printf "%s: nothing to repair\n" image
         | Ok actions ->
             List.iter
               (fun a -> Format.printf "repaired: %a@." Rae_fsck.Repair.pp_action a)
               actions;
             (match Rae_block.Disk.save disk image with
             | Ok () -> ()
             | Error msg ->
                 Printf.eprintf "cannot write %s: %s\n" image msg;
                 exit 2)
         | Error msg ->
             Printf.eprintf "%s: repair refused: %s\n" image msg;
             exit 1);
      let report = Rae_fsck.Fsck.check_device dev in
      if verbose || report.Rae_fsck.Fsck.findings <> [] then
        Format.printf "%a@." Rae_fsck.Fsck.pp_report report
      else
        Printf.printf "%s: clean (%d inodes, %d directories, %d blocks referenced)\n" image
          report.Rae_fsck.Fsck.inodes_checked report.Rae_fsck.Fsck.dirs_walked
          report.Rae_fsck.Fsck.blocks_referenced;
      exit (if Rae_fsck.Fsck.clean report then 0 else 1)

let image = Arg.(required & pos 0 (some file) None & info [] ~docv:"IMAGE" ~doc:"Image file to check.")
let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the full report even when clean.")
let preen = Arg.(value & flag & info [ "p"; "repair" ] ~doc:"Apply safe repairs (preen) before checking.")

let cmd =
  Cmd.v (Cmd.info "rae_fsck" ~doc:"Check an rfs image") Term.(const run $ image $ verbose $ preen)

let () = exit (Cmd.eval cmd)
