bin/debugfs_rfs.ml: Arg Cmd Cmdliner Format List Printf Rae_block Rae_format Rae_journal Rae_shadowfs Rae_vfs Term
