bin/fsck_rfs.mli:
