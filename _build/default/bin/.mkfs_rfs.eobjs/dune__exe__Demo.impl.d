bin/demo.ml: Arg Cmd Cmdliner Format List Op Printf Rae_basefs Rae_block Rae_core Rae_format Rae_fsck Rae_util Rae_vfs Rae_workload Result String Term
