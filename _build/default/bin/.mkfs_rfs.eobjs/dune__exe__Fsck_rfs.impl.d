bin/fsck_rfs.ml: Arg Cmd Cmdliner Format List Printf Rae_block Rae_fsck Term
