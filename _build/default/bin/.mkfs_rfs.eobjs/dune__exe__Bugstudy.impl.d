bin/bugstudy.ml: Arg Cmd Cmdliner Format List Printf Rae_bugstudy Term
