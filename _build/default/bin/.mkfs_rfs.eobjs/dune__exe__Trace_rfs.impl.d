bin/trace_rfs.ml: Arg Cmd Cmdliner Format List Printf Rae_basefs Rae_block Rae_core Rae_util Rae_workload String Term
