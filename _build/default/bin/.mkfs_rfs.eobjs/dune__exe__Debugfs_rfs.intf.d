bin/debugfs_rfs.mli:
