bin/demo.mli:
