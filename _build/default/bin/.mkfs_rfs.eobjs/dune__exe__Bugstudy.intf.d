bin/bugstudy.mli:
