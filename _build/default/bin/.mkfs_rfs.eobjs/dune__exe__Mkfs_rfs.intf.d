bin/mkfs_rfs.mli:
