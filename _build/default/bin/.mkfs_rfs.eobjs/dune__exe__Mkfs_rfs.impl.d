bin/mkfs_rfs.ml: Arg Cmd Cmdliner Printf Rae_basefs Rae_block Rae_format Sys Term
