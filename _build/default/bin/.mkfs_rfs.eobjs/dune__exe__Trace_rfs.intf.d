bin/trace_rfs.mli:
