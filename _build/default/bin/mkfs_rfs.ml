(* mkfs.rfs: create a fresh rfs image file (format + journal). *)

open Cmdliner

let run image nblocks ninodes journal_len force =
  if Sys.file_exists image && not force then begin
    Printf.eprintf "%s exists; use --force to overwrite\n" image;
    exit 1
  end;
  let disk =
    Rae_block.Disk.create ~latency:Rae_block.Disk.zero_latency
      ~block_size:Rae_format.Layout.block_size ~nblocks ()
  in
  let dev = Rae_block.Device.of_disk disk in
  let ninodes =
    match ninodes with Some n -> n | None -> Rae_format.Mkfs.default_ninodes ~nblocks
  in
  match Rae_basefs.Base.mkfs dev ~ninodes ?journal_len () with
  | Error msg ->
      Printf.eprintf "mkfs failed: %s\n" msg;
      exit 1
  | Ok () -> (
      match Rae_block.Disk.save disk image with
      | Error msg ->
          Printf.eprintf "cannot write %s: %s\n" image msg;
          exit 1
      | Ok () ->
          Printf.printf "created %s: %d blocks (%d KiB), %d inodes, journal %d blocks\n" image
            nblocks
            (nblocks * Rae_format.Layout.block_size / 1024)
            ninodes
            (match journal_len with Some j -> j | None -> Rae_format.Layout.default_journal_blocks))

let image = Arg.(required & pos 0 (some string) None & info [] ~docv:"IMAGE" ~doc:"Image file to create.")
let nblocks = Arg.(value & opt int 2048 & info [ "b"; "blocks" ] ~docv:"N" ~doc:"Total blocks (4 KiB each).")
let ninodes = Arg.(value & opt (some int) None & info [ "i"; "inodes" ] ~docv:"N" ~doc:"Inode count (default: blocks/4).")
let journal = Arg.(value & opt (some int) None & info [ "j"; "journal" ] ~docv:"N" ~doc:"Journal blocks (default 64).")
let force = Arg.(value & flag & info [ "f"; "force" ] ~doc:"Overwrite an existing file.")

let cmd =
  Cmd.v
    (Cmd.info "rae_mkfs" ~doc:"Create an rfs filesystem image")
    Term.(const run $ image $ nblocks $ ninodes $ journal $ force)

let () = exit (Cmd.eval cmd)
