(* Regenerate the paper's Table 1 and Figure 1 from the bug corpus, with
   optional CSV output and per-record listing. *)

open Cmdliner
module T = Rae_bugstudy.Taxonomy
module Study = Rae_bugstudy.Study

let csv_table table =
  let row name (c : Study.cell_counts) =
    Printf.printf "%s,%d,%d,%d,%d,%d\n" name c.Study.no_crash c.Study.crash c.Study.warn
      c.Study.unknown (Study.cell_total c)
  in
  Printf.printf "determinism,no_crash,crash,warn,unknown,total\n";
  row "deterministic" table.Study.deterministic;
  row "non_deterministic" table.Study.non_deterministic;
  row "unknown" table.Study.unknown_det

let csv_fig series =
  Printf.printf "year,crash,warn,no_crash,unknown,total\n";
  List.iter
    (fun (year, (c : Study.cell_counts)) ->
      Printf.printf "%d,%d,%d,%d,%d,%d\n" year c.Study.crash c.Study.warn c.Study.no_crash
        c.Study.unknown (Study.cell_total c))
    series

let run csv list_records =
  let corpus = Rae_bugstudy.Corpus.records () in
  let table = Study.table1 corpus in
  let series = Study.fig1 corpus in
  if csv then begin
    csv_table table;
    print_newline ();
    csv_fig series
  end
  else begin
    Printf.printf "Table 1: study of filesystem bugs (Linux ext4; %d bugs since %d)\n\n"
      (List.length corpus) Rae_bugstudy.Corpus.first_year;
    Format.printf "%a@.@." Study.pp_table1 table;
    Format.printf "%a@." Study.pp_fig1 series;
    Printf.printf "\nDetectable deterministic bugs (Crash + WARN): %d/%d\n"
      (Study.detectable_deterministic table)
      (Study.cell_total table.Study.deterministic)
  end;
  if list_records then begin
    Printf.printf "\n%-4s %-5s %-18s %-10s %s\n" "id" "year" "determinism" "conseq" "title";
    List.iter
      (fun r ->
        Printf.printf "%-4d %-5d %-18s %-10s %s\n" r.T.id r.T.fix_year
          (T.determinism_to_string (T.classify_determinism r))
          (T.consequence_to_string (T.classify_consequence r))
          r.T.title)
      corpus
  end

let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of tables.")
let list_records = Arg.(value & flag & info [ "l"; "list" ] ~doc:"List every corpus record.")

let cmd =
  Cmd.v
    (Cmd.info "rae_bugstudy" ~doc:"Regenerate the paper's bug study (Table 1 / Figure 1)")
    Term.(const run $ csv $ list_records)

let () = exit (Cmd.eval cmd)
