(* trace_rfs: generate, validate and replay textual operation traces
   against rfs images — the paper's §4.3 record/replay workflow as a
   command-line tool.

     trace_rfs gen --profile varmail -n 500 --seed 7 -o run.trace
     trace_rfs check run.trace
     trace_rfs replay run.trace image.rfs [--rae] [--bugs id,id]
*)

open Cmdliner
module Trace = Rae_workload.Trace
module W = Rae_workload.Workload
module Base = Rae_basefs.Base
module Controller = Rae_core.Controller
module Bug_registry = Rae_basefs.Bug_registry

let cmd_gen profile_name count seed output =
  match W.profile_of_name profile_name with
  | None ->
      Printf.eprintf "unknown profile %s (known: %s)\n" profile_name
        (String.concat ", " (List.map W.profile_name W.all_profiles));
      exit 1
  | Some profile -> (
      let ops = W.ops profile (Rae_util.Rng.create seed) ~count in
      match Trace.save output ops with
      | Ok () -> Printf.printf "wrote %d ops to %s\n" (List.length ops) output
      | Error msg ->
          Printf.eprintf "cannot write %s: %s\n" output msg;
          exit 1)

let cmd_check trace_file =
  match Trace.load trace_file with
  | Ok ops -> Format.printf "%s: valid, %a@." trace_file W.pp_summary ops
  | Error msg ->
      Printf.eprintf "%s: %s\n" trace_file msg;
      exit 1

let cmd_replay trace_file image use_rae bug_ids save =
  let ops =
    match Trace.load trace_file with
    | Ok ops -> ops
    | Error msg ->
        Printf.eprintf "%s: %s\n" trace_file msg;
        exit 1
  in
  match Rae_block.Disk.load image with
  | Error msg ->
      Printf.eprintf "cannot read %s: %s\n" image msg;
      exit 2
  | Ok disk -> (
      let dev = Rae_block.Device.of_disk disk in
      let bugs =
        Bug_registry.arm ~rng:(Rae_util.Rng.create 1L)
          (List.filter_map Bug_registry.find bug_ids)
      in
      match Base.mount ~bugs dev with
      | Error msg ->
          Printf.eprintf "mount: %s\n" msg;
          exit 1
      | Ok base ->
          let okc = ref 0 and errc = ref 0 in
          let bump = function Ok _ -> incr okc | Error _ -> incr errc in
          (if use_rae then begin
             let ctl = Controller.make ~device:dev base in
             List.iter (fun op -> bump (Controller.exec ctl op)) ops;
             ignore (Controller.sync ctl);
             let s = Controller.stats ctl in
             Printf.printf "replayed %d ops under RAE: %d ok, %d error, %d recoveries\n"
               (List.length ops) !okc !errc s.Controller.recoveries;
             List.iter
               (fun r -> Format.printf "%a@." Rae_core.Report.pp_recovery r)
               (Controller.recoveries ctl)
           end
           else begin
             (try List.iter (fun op -> bump (Base.exec base op)) ops
              with
             | Rae_basefs.Detector.Base_bug { bug; msg } ->
                 Printf.printf "base CRASHED: [%s] %s\n" bug msg
             | Rae_basefs.Detector.Hang { bug; msg } ->
                 Printf.printf "base HUNG: [%s] %s\n" bug msg
             | Rae_basefs.Detector.Validation_failed { context; msg } ->
                 Printf.printf "base VALIDATION FAILED: [%s] %s\n" context msg);
             (try ignore (Base.unmount base) with _ -> ());
             Printf.printf "replayed on raw base: %d ok, %d error\n" !okc !errc
           end);
          if save then (
            match Rae_block.Disk.save disk image with
            | Ok () -> Printf.printf "image updated: %s\n" image
            | Error msg ->
                Printf.eprintf "cannot save %s: %s\n" image msg;
                exit 1))

let profile = Arg.(value & opt string "varmail" & info [ "profile" ] ~docv:"NAME")
let count = Arg.(value & opt int 500 & info [ "n" ] ~docv:"N")
let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED")
let output = Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
let trace_pos = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE")
let image_pos = Arg.(required & pos 1 (some file) None & info [] ~docv:"IMAGE")
let use_rae = Arg.(value & flag & info [ "rae" ] ~doc:"Replay through the RAE controller.")
let bugs_opt = Arg.(value & opt (list string) [] & info [ "bugs" ] ~docv:"IDS")
let save = Arg.(value & flag & info [ "save" ] ~doc:"Write the mutated image back.")

let cmds =
  [
    Cmd.v (Cmd.info "gen" ~doc:"Generate a workload trace")
      Term.(const cmd_gen $ profile $ count $ seed $ output);
    Cmd.v (Cmd.info "check" ~doc:"Validate a trace file") Term.(const cmd_check $ trace_pos);
    Cmd.v (Cmd.info "replay" ~doc:"Replay a trace against an image")
      Term.(const cmd_replay $ trace_pos $ image_pos $ use_rae $ bugs_opt $ save);
  ]

let () = exit (Cmd.eval (Cmd.group (Cmd.info "trace_rfs" ~doc:"Operation-trace tooling") cmds))
