(* Tests for rae_bugstudy: the classification pipeline must reproduce the
   paper's Table 1 exactly and Figure 1's structure. *)

module T = Rae_bugstudy.Taxonomy
module Corpus = Rae_bugstudy.Corpus
module Study = Rae_bugstudy.Study

let corpus = Corpus.records ()
let table = Study.table1 corpus

let test_corpus_size () =
  Alcotest.(check int) "256 bugs" 256 (List.length corpus);
  Alcotest.(check int) "size constant" 256 Corpus.size;
  Alcotest.(check int) "ids unique" 256
    (List.length (List.sort_uniq compare (List.map (fun r -> r.T.id) corpus)))

let test_corpus_deterministic () =
  Alcotest.(check bool) "same corpus every call" true (Corpus.records () = corpus)

(* The exact published Table 1. *)
let test_table1_deterministic_row () =
  let c = table.Study.deterministic in
  Alcotest.(check int) "no crash" 68 c.Study.no_crash;
  Alcotest.(check int) "crash" 78 c.Study.crash;
  Alcotest.(check int) "warn" 11 c.Study.warn;
  Alcotest.(check int) "unknown" 8 c.Study.unknown;
  Alcotest.(check int) "total" 165 (Study.cell_total c)

let test_table1_nondeterministic_row () =
  let c = table.Study.non_deterministic in
  Alcotest.(check int) "no crash" 31 c.Study.no_crash;
  Alcotest.(check int) "crash" 26 c.Study.crash;
  Alcotest.(check int) "warn" 19 c.Study.warn;
  Alcotest.(check int) "unknown" 7 c.Study.unknown;
  Alcotest.(check int) "total" 83 (Study.cell_total c)

let test_table1_unknown_row () =
  let c = table.Study.unknown_det in
  Alcotest.(check int) "no crash" 5 c.Study.no_crash;
  Alcotest.(check int) "crash" 2 c.Study.crash;
  Alcotest.(check int) "warn" 1 c.Study.warn;
  Alcotest.(check int) "unknown" 0 c.Study.unknown;
  Alcotest.(check int) "total" 8 (Study.cell_total c)

let test_grand_total () = Alcotest.(check int) "256 total" 256 (Study.grand_total table)

let test_headline_claims () =
  (* §2.1: "deterministic bugs are prevalent (165/256), and a significant
     portion cause crashes or warnings that are detected as runtime
     errors (89/165)". *)
  Alcotest.(check int) "165 deterministic" 165 (Study.cell_total table.Study.deterministic);
  Alcotest.(check int) "89 detectable" 89 (Study.detectable_deterministic table)

let test_fig1_structure () =
  let series = Study.fig1 corpus in
  Alcotest.(check int) "11 years" 11 (List.length series);
  Alcotest.(check (list int)) "years 2013..2023"
    (List.init 11 (fun i -> 2013 + i))
    (List.map fst series);
  let total = List.fold_left (fun acc (_, c) -> acc + Study.cell_total c) 0 series in
  Alcotest.(check int) "sums to 165 deterministic bugs" 165 total

let test_fig1_trend () =
  (* §2.1: "more bugs are fixed in recent years". *)
  let series = Study.fig1 corpus in
  let year y = Study.cell_total (List.assoc y series) in
  Alcotest.(check bool) "2022 is the peak" true
    (List.for_all (fun (y, c) -> y = 2022 || Study.cell_total c <= year 2022) series);
  let early = year 2013 + year 2014 + year 2015 in
  let late = year 2021 + year 2022 + year 2023 in
  Alcotest.(check bool) "recent years dominate" true (late > 2 * early)

let test_classifier_determinism_rules () =
  let base =
    {
      T.id = 0;
      title = "t";
      fix_year = 2020;
      subsystem = "extents";
      source = T.Bugzilla;
      has_reproducer = true;
      involves_threading = false;
      involves_inflight_io = false;
      symptom_in_commit = Some T.Oops_or_bug;
      analyzable = true;
    }
  in
  Alcotest.(check string) "reproducible+serial = det" "Deterministic"
    (T.determinism_to_string (T.classify_determinism base));
  Alcotest.(check string) "no reproducer = nondet" "Non-Deterministic"
    (T.determinism_to_string (T.classify_determinism { base with T.has_reproducer = false }));
  Alcotest.(check string) "threading = nondet" "Non-Deterministic"
    (T.determinism_to_string (T.classify_determinism { base with T.involves_threading = true }));
  Alcotest.(check string) "inflight io = nondet" "Non-Deterministic"
    (T.determinism_to_string (T.classify_determinism { base with T.involves_inflight_io = true }));
  Alcotest.(check string) "unanalyzable = unknown" "Unknown"
    (T.determinism_to_string (T.classify_determinism { base with T.analyzable = false }))

let test_classifier_consequence_rules () =
  let with_symptom s =
    {
      T.id = 0;
      title = "t";
      fix_year = 2020;
      subsystem = "jbd2";
      source = T.Reported_by_tag;
      has_reproducer = true;
      involves_threading = false;
      involves_inflight_io = false;
      symptom_in_commit = s;
      analyzable = true;
    }
  in
  let conseq s = T.consequence_to_string (T.classify_consequence (with_symptom s)) in
  Alcotest.(check string) "oops = crash" "Crash" (conseq (Some T.Oops_or_bug));
  Alcotest.(check string) "warn hit = warn" "WARN" (conseq (Some T.Warn_hit));
  Alcotest.(check string) "corruption = no crash" "No Crash" (conseq (Some T.Data_corruption));
  Alcotest.(check string) "perf = no crash" "No Crash" (conseq (Some T.Performance_issue));
  Alcotest.(check string) "permission = no crash" "No Crash" (conseq (Some T.Permission_issue));
  Alcotest.(check string) "freeze = no crash" "No Crash" (conseq (Some T.Freeze_or_deadlock));
  Alcotest.(check string) "no stated symptom = unknown" "Unknown" (conseq None)

let test_detected_at_runtime () =
  Alcotest.(check bool) "crash detected" true (T.is_detected_at_runtime T.Crash);
  Alcotest.(check bool) "warn detected" true (T.is_detected_at_runtime T.Warn);
  Alcotest.(check bool) "no-crash not" false (T.is_detected_at_runtime T.No_crash);
  Alcotest.(check bool) "unknown not" false (T.is_detected_at_runtime T.Unknown_consequence)

let test_corpus_covers_attribute_space () =
  let some f = List.exists f corpus in
  Alcotest.(check bool) "both sources" true
    (some (fun r -> r.T.source = T.Bugzilla) && some (fun r -> r.T.source = T.Reported_by_tag));
  Alcotest.(check bool) "threading bugs present" true (some (fun r -> r.T.involves_threading));
  Alcotest.(check bool) "inflight-io bugs present" true (some (fun r -> r.T.involves_inflight_io));
  Alcotest.(check bool) "no-reproducer bugs present" true (some (fun r -> not r.T.has_reproducer));
  Alcotest.(check bool) "several subsystems" true
    (List.length (List.sort_uniq compare (List.map (fun r -> r.T.subsystem) corpus)) >= 8);
  Alcotest.(check bool) "years within bounds" true
    (List.for_all (fun r -> r.T.fix_year >= Corpus.first_year && r.T.fix_year <= Corpus.last_year) corpus)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_rendering () =
  let t1 = Format.asprintf "%a" Study.pp_table1 table in
  Alcotest.(check bool) "table mentions the 165 row" true
    (contains t1 "165" && contains t1 "Deterministic" && contains t1 "256");
  let f1 = Format.asprintf "%a" Study.pp_fig1 (Study.fig1 corpus) in
  Alcotest.(check bool) "figure mentions 2013 and 2023" true
    (contains f1 "2013" && contains f1 "2023")

let () =
  Alcotest.run "rae_bugstudy"
    [
      ( "corpus",
        [
          Alcotest.test_case "size" `Quick test_corpus_size;
          Alcotest.test_case "deterministic generation" `Quick test_corpus_deterministic;
          Alcotest.test_case "attribute coverage" `Quick test_corpus_covers_attribute_space;
        ] );
      ( "table1",
        [
          Alcotest.test_case "deterministic row" `Quick test_table1_deterministic_row;
          Alcotest.test_case "non-deterministic row" `Quick test_table1_nondeterministic_row;
          Alcotest.test_case "unknown row" `Quick test_table1_unknown_row;
          Alcotest.test_case "grand total" `Quick test_grand_total;
          Alcotest.test_case "headline claims" `Quick test_headline_claims;
        ] );
      ( "fig1",
        [
          Alcotest.test_case "structure" `Quick test_fig1_structure;
          Alcotest.test_case "trend" `Quick test_fig1_trend;
        ] );
      ( "classifiers",
        [
          Alcotest.test_case "determinism rules" `Quick test_classifier_determinism_rules;
          Alcotest.test_case "consequence rules" `Quick test_classifier_consequence_rules;
          Alcotest.test_case "runtime detectability" `Quick test_detected_at_runtime;
        ] );
      ("render", [ Alcotest.test_case "pp functions" `Quick test_rendering ]);
    ]
