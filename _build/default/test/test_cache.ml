(* Tests for rae_cache: LRU, 2Q, dentry cache. *)

module IntKey = struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end

module L = Rae_cache.Lru.Make (IntKey)
module Q = Rae_cache.Two_q.Make (IntKey)
module Dentry = Rae_cache.Dentry
module Types = Rae_vfs.Types

(* ---- LRU ---- *)

let test_lru_hit_miss () =
  let c = L.create ~capacity:2 () in
  Alcotest.(check (option string)) "miss" None (L.find c 1);
  L.put c 1 "one";
  Alcotest.(check (option string)) "hit" (Some "one") (L.find c 1);
  let s = L.stats c in
  Alcotest.(check (pair int int)) "stats" (1, 1) (s.Rae_cache.Lru.hits, s.Rae_cache.Lru.misses)

let test_lru_eviction_order () =
  let evicted = ref [] in
  let c = L.create ~on_evict:(fun k _ -> evicted := k :: !evicted) ~capacity:2 () in
  L.put c 1 "a";
  L.put c 2 "b";
  ignore (L.find c 1) (* promote 1 *);
  L.put c 3 "c" (* evicts 2, the LRU *);
  Alcotest.(check (list int)) "evicted LRU" [ 2 ] !evicted;
  Alcotest.(check bool) "1 kept" true (L.mem c 1);
  Alcotest.(check bool) "3 present" true (L.mem c 3)

let test_lru_peek_no_promote () =
  let c = L.create ~capacity:2 () in
  L.put c 1 "a";
  L.put c 2 "b";
  ignore (L.peek c 1) (* does not promote *);
  L.put c 3 "c";
  Alcotest.(check bool) "1 evicted despite peek" false (L.mem c 1)

let test_lru_pinning () =
  let evicted = ref [] in
  let c = L.create ~on_evict:(fun k _ -> evicted := k :: !evicted) ~capacity:2 () in
  L.put c 1 "a";
  L.pin c 1;
  L.put c 2 "b";
  L.put c 3 "c" (* must evict 2, not pinned 1 *);
  Alcotest.(check bool) "pinned survives" true (L.mem c 1);
  Alcotest.(check (list int)) "evicted unpinned" [ 2 ] !evicted;
  L.unpin c 1;
  L.put c 4 "d";
  Alcotest.(check bool) "unpinned now evictable" false (L.mem c 1)

let test_lru_all_pinned_grows () =
  let c = L.create ~capacity:2 () in
  L.put c 1 "a";
  L.put c 2 "b";
  L.pin c 1;
  L.pin c 2;
  L.put c 3 "c";
  Alcotest.(check int) "grows past capacity" 3 (L.length c)

let test_lru_replace_updates () =
  let c = L.create ~capacity:2 () in
  L.put c 1 "a";
  L.put c 1 "a2";
  Alcotest.(check (option string)) "replaced" (Some "a2") (L.find c 1);
  Alcotest.(check int) "no duplicate" 1 (L.length c)

let test_lru_remove_clear () =
  let c = L.create ~capacity:4 () in
  L.put c 1 "a";
  L.put c 2 "b";
  L.remove c 1;
  Alcotest.(check bool) "removed" false (L.mem c 1);
  L.clear c;
  Alcotest.(check int) "cleared" 0 (L.length c);
  (* After clear the recency list must be coherent: inserts still work. *)
  L.put c 3 "c";
  Alcotest.(check (option string)) "usable after clear" (Some "c") (L.find c 3)

let prop_lru_capacity_respected =
  QCheck2.Test.make ~name:"lru never exceeds capacity (unpinned)" ~count:200
    QCheck2.Gen.(list_size (int_bound 100) (int_bound 20))
    (fun keys ->
      let c = L.create ~capacity:5 () in
      List.iter (fun k -> L.put c k (string_of_int k)) keys;
      L.length c <= 5)

let prop_lru_contains_recent =
  QCheck2.Test.make ~name:"lru keeps the most recent insert" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (int_bound 20))
    (fun keys ->
      let c = L.create ~capacity:3 () in
      List.iter (fun k -> L.put c k "v") keys;
      L.mem c (List.nth keys (List.length keys - 1)))

(* ---- 2Q ---- *)

let test_twoq_basic () =
  let c = Q.create ~capacity:4 () in
  Q.put c 1 "a";
  Alcotest.(check (option string)) "hit" (Some "a") (Q.find c 1);
  Alcotest.(check (option string)) "miss" None (Q.find c 2)

let test_twoq_ghost_promotion () =
  let c = Q.create ~capacity:4 ~kin_ratio:0.5 ~kout_ratio:1.0 () in
  (* Fill A1in and push 1 out into the ghost queue. *)
  Q.put c 1 "a";
  Q.put c 2 "b";
  Q.put c 3 "c";
  Q.put c 4 "d";
  Q.put c 5 "e";
  Q.put c 6 "f";
  Alcotest.(check bool) "ghosts exist" true (Q.ghost_length c > 0);
  Alcotest.(check bool) "1 evicted" false (Q.mem c 1);
  (* Re-admitting a ghosted key goes to Am (hot). *)
  Q.put c 1 "a'";
  Alcotest.(check (option string)) "readmitted" (Some "a'") (Q.find c 1)

let test_twoq_scan_resistance () =
  (* A hot working set re-admitted via ghosts survives a long scan better
     than it would under plain LRU semantics: after the scan, hot keys
     readmitted from ghosts sit in Am while scan pages wash through A1in. *)
  let c = Q.create ~capacity:8 ~kin_ratio:0.25 ~kout_ratio:2.0 () in
  let hot = [ 1; 2 ] in
  (* Establish the hot set in Am via ghost promotion. *)
  List.iter (fun k -> Q.put c k "hot") hot;
  for i = 100 to 120 do Q.put c i "wash" done;
  List.iter (fun k -> Q.put c k "hot") hot (* from ghosts -> Am *);
  (* Long scan of cold keys. *)
  for i = 200 to 260 do Q.put c i "scan" done;
  List.iter
    (fun k -> Alcotest.(check bool) (Printf.sprintf "hot %d survives scan" k) true (Q.mem c k))
    hot

let test_twoq_pinning () =
  let c = Q.create ~capacity:2 ~kin_ratio:1.0 () in
  Q.put c 1 "a";
  Q.pin c 1;
  for i = 2 to 10 do Q.put c i "x" done;
  Alcotest.(check bool) "pinned survives" true (Q.mem c 1);
  Q.unpin c 1

let test_twoq_remove_clear () =
  let c = Q.create ~capacity:4 () in
  Q.put c 1 "a";
  Q.put c 2 "b";
  Q.remove c 1;
  Alcotest.(check bool) "removed" false (Q.mem c 1);
  Q.clear c;
  Alcotest.(check int) "cleared" 0 (Q.length c);
  Alcotest.(check int) "ghosts cleared" 0 (Q.ghost_length c)

let prop_twoq_capacity =
  QCheck2.Test.make ~name:"2q stays within capacity (unpinned)" ~count:200
    QCheck2.Gen.(list_size (int_bound 200) (int_bound 40))
    (fun keys ->
      let c = Q.create ~capacity:8 () in
      List.iter (fun k -> Q.put c k "v") keys;
      Q.length c <= 8)

let prop_twoq_find_after_put =
  QCheck2.Test.make ~name:"2q: last put always findable" ~count:200
    QCheck2.Gen.(list_size (int_range 1 100) (int_bound 30))
    (fun keys ->
      let c = Q.create ~capacity:6 () in
      List.iter (fun k -> Q.put c k (string_of_int k)) keys;
      let last = List.nth keys (List.length keys - 1) in
      Q.peek c last = Some (string_of_int last))

(* ---- Dentry ---- *)

let test_dentry_positive_negative () =
  let d = Dentry.create ~capacity:16 in
  Dentry.add d ~dir:1 ~name:"a" (Dentry.Present { ino = 5; kind = Types.Regular });
  Dentry.add d ~dir:1 ~name:"gone" Dentry.Absent;
  (match Dentry.find d ~dir:1 ~name:"a" with
  | Some (Dentry.Present { ino; _ }) -> Alcotest.(check int) "positive" 5 ino
  | _ -> Alcotest.fail "expected positive entry");
  (match Dentry.find d ~dir:1 ~name:"gone" with
  | Some Dentry.Absent -> ()
  | _ -> Alcotest.fail "expected negative entry");
  Alcotest.(check bool) "unknown is None" true (Dentry.find d ~dir:1 ~name:"other" = None)

let test_dentry_scoped_by_dir () =
  let d = Dentry.create ~capacity:16 in
  Dentry.add d ~dir:1 ~name:"x" (Dentry.Present { ino = 5; kind = Types.Regular });
  Alcotest.(check bool) "same name other dir missing" true (Dentry.find d ~dir:2 ~name:"x" = None)

let test_dentry_invalidate () =
  let d = Dentry.create ~capacity:16 in
  Dentry.add d ~dir:1 ~name:"x" (Dentry.Present { ino = 5; kind = Types.Regular });
  Dentry.add d ~dir:1 ~name:"y" (Dentry.Present { ino = 6; kind = Types.Regular });
  Dentry.add d ~dir:2 ~name:"z" (Dentry.Present { ino = 7; kind = Types.Regular });
  Dentry.invalidate d ~dir:1 ~name:"x";
  Alcotest.(check bool) "x dropped" true (Dentry.find d ~dir:1 ~name:"x" = None);
  Alcotest.(check bool) "y kept" true (Dentry.find d ~dir:1 ~name:"y" <> None);
  Dentry.invalidate_dir d ~dir:1;
  Alcotest.(check bool) "y dropped with dir" true (Dentry.find d ~dir:1 ~name:"y" = None);
  Alcotest.(check bool) "other dir kept" true (Dentry.find d ~dir:2 ~name:"z" <> None);
  Dentry.clear d;
  Alcotest.(check int) "cleared" 0 (Dentry.length d)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rae_cache"
    [
      ( "lru",
        [
          Alcotest.test_case "hit/miss" `Quick test_lru_hit_miss;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "peek no promote" `Quick test_lru_peek_no_promote;
          Alcotest.test_case "pinning" `Quick test_lru_pinning;
          Alcotest.test_case "all pinned grows" `Quick test_lru_all_pinned_grows;
          Alcotest.test_case "replace" `Quick test_lru_replace_updates;
          Alcotest.test_case "remove/clear" `Quick test_lru_remove_clear;
          q prop_lru_capacity_respected;
          q prop_lru_contains_recent;
        ] );
      ( "two_q",
        [
          Alcotest.test_case "basic" `Quick test_twoq_basic;
          Alcotest.test_case "ghost promotion" `Quick test_twoq_ghost_promotion;
          Alcotest.test_case "scan resistance" `Quick test_twoq_scan_resistance;
          Alcotest.test_case "pinning" `Quick test_twoq_pinning;
          Alcotest.test_case "remove/clear" `Quick test_twoq_remove_clear;
          q prop_twoq_capacity;
          q prop_twoq_find_after_put;
        ] );
      ( "dentry",
        [
          Alcotest.test_case "positive/negative" `Quick test_dentry_positive_negative;
          Alcotest.test_case "scoped by dir" `Quick test_dentry_scoped_by_dir;
          Alcotest.test_case "invalidation" `Quick test_dentry_invalidate;
        ] );
    ]
