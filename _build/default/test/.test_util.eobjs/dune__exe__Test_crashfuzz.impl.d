test/test_crashfuzz.ml: Alcotest Format Int64 List Path QCheck2 QCheck_alcotest Rae_basefs Rae_block Rae_format Rae_fsck Rae_util Rae_vfs Rae_workload Result String Types
