test/test_crashfuzz.mli:
