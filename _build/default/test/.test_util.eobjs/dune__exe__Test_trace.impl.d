test/test_trace.ml: Alcotest Filename List Op Path QCheck2 QCheck_alcotest Rae_specfs Rae_util Rae_vfs Rae_workload Result String Sys Types
