test/test_format.ml: Alcotest Array Bitmap Bytes Dirent Hashtbl Inode Layout List Mkfs Printf QCheck2 QCheck_alcotest Rae_block Rae_format Rae_util Rae_vfs Reader Result String Superblock
