test/test_vfs.ml: Alcotest Errno Fs_intf List Op Path Printf QCheck2 QCheck_alcotest Rae_vfs String Types
