test/test_basefs.mli:
