test/test_bugstudy.mli:
