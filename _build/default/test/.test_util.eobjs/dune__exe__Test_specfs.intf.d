test/test_specfs.mli:
