test/test_largefile.ml: Alcotest Errno Format List Op Path Printf Rae_basefs Rae_block Rae_format Rae_fsck Rae_shadowfs Rae_specfs Rae_vfs Result String Types
