test/test_inflight.mli:
