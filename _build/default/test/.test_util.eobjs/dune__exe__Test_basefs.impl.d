test/test_basefs.ml: Alcotest Errno Format List Op Path Printf QCheck2 QCheck_alcotest Rae_basefs Rae_block Rae_cache Rae_format Rae_fsck Rae_specfs Rae_util Rae_vfs Rae_workload Result String Types
