test/test_largefile.mli:
