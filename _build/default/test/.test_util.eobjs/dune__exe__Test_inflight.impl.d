test/test_inflight.ml: Alcotest Format List Op Path Printf Rae_basefs Rae_block Rae_core Rae_format Rae_fsck Rae_specfs Rae_vfs Result Types
