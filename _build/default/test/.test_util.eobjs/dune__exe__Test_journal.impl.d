test/test_journal.ml: Alcotest Bytes Char Crashsim Device Disk Fault List QCheck2 QCheck_alcotest Rae_block Rae_format Rae_journal Result
