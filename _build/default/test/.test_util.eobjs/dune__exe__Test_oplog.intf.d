test/test_oplog.mli:
