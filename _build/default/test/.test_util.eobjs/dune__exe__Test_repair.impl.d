test/test_repair.ml: Alcotest Array Bytes Char Dirent Format Inode Layout List Rae_basefs Rae_block Rae_format Rae_fsck Rae_util Rae_vfs Rae_workload Reader Result String Superblock
