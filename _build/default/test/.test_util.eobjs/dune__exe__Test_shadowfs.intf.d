test/test_shadowfs.mli:
