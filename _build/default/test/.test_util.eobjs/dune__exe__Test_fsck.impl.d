test/test_fsck.ml: Alcotest Array Bytes Char Dirent Format Inode Layout List Mkfs Printf QCheck2 QCheck_alcotest Rae_block Rae_format Rae_fsck Rae_vfs Result Superblock
