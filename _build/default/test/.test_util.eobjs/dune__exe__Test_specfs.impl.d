test/test_specfs.ml: Alcotest Errno List Op Path QCheck2 QCheck_alcotest Rae_specfs Rae_vfs Result String Types
