test/test_shadowfs.ml: Alcotest Bytes Errno Format List Op Path QCheck2 QCheck_alcotest Rae_block Rae_format Rae_shadowfs Rae_specfs Rae_util Rae_vfs Rae_workload Result String Types
