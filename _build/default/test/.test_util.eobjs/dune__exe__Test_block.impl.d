test/test_block.ml: Alcotest Blkmq Bytes Crashsim Device Disk Fault List Rae_block Rae_util
