test/test_differential.ml: Alcotest Format List Op Option Path Printf QCheck2 QCheck_alcotest Rae_basefs Rae_core Rae_vfs Rae_workload String
