test/test_bugstudy.ml: Alcotest Format List Rae_bugstudy String
