test/test_workload.ml: Alcotest Format List Op Printf Rae_specfs Rae_util Rae_vfs Rae_workload String
