test/test_core.ml: Alcotest Errno Format List Op Path Printf QCheck2 QCheck_alcotest Rae_basefs Rae_block Rae_core Rae_format Rae_fsck Rae_specfs Rae_util Rae_vfs Rae_workload Result String Types
