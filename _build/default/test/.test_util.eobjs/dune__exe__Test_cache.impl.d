test/test_cache.ml: Alcotest Hashtbl Int List Printf QCheck2 QCheck_alcotest Rae_cache Rae_vfs
