test/test_util.ml: Alcotest Array Bytes Checksum Codec Format Fun Hashtbl Int32 Int64 QCheck2 QCheck_alcotest Rae_util Rng String Vclock
