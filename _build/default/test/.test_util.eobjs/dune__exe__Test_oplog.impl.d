test/test_oplog.ml: Alcotest Errno Format List Op Path Rae_core Rae_vfs String Types
