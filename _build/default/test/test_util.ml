(* Unit and property tests for rae_util: checksums, codecs, RNG, clock. *)

open Rae_util

let check_i32 = Alcotest.testable (fun ppf v -> Format.fprintf ppf "0x%08lx" v) Int32.equal

(* ---- Checksum ---- *)

let test_crc32c_known_vectors () =
  (* Canonical CRC32C test vectors (RFC 3720 appendix / kernel selftests). *)
  Alcotest.check check_i32 "empty" 0x00000000l (Checksum.crc32c_string "");
  Alcotest.check check_i32 "123456789" 0xE3069283l (Checksum.crc32c_string "123456789");
  let zeros32 = String.make 32 '\000' in
  Alcotest.check check_i32 "32 zeros" 0x8A9136AAl (Checksum.crc32c_string zeros32)

let test_crc32c_differs_on_flip () =
  let b = Bytes.of_string "the quick brown fox" in
  let c1 = Checksum.crc32c b ~pos:0 ~len:(Bytes.length b) in
  Bytes.set b 3 'X';
  let c2 = Checksum.crc32c b ~pos:0 ~len:(Bytes.length b) in
  Alcotest.(check bool) "flip changes checksum" false (Int32.equal c1 c2)

let test_crc32c_bounds () =
  let b = Bytes.create 8 in
  Alcotest.check_raises "negative pos" (Invalid_argument "Checksum.crc32c: out of bounds")
    (fun () -> ignore (Checksum.crc32c b ~pos:(-1) ~len:4));
  Alcotest.check_raises "overlong" (Invalid_argument "Checksum.crc32c: out of bounds") (fun () ->
      ignore (Checksum.crc32c b ~pos:4 ~len:8))

let test_verify () =
  let b = Bytes.of_string "payload" in
  let c = Checksum.crc32c b ~pos:0 ~len:7 in
  Alcotest.(check bool) "verify ok" true (Checksum.verify b ~pos:0 ~len:7 ~expect:c);
  Alcotest.(check bool) "verify bad" false
    (Checksum.verify b ~pos:0 ~len:7 ~expect:(Int32.add c 1l))

(* ---- Codec ---- *)

let test_codec_roundtrip_fixed () =
  let b = Bytes.make 64 '\000' in
  Codec.set_u8 b 0 0xAB;
  Codec.set_u16 b 1 0xBEEF;
  Codec.set_u32 b 3 0xDEADBEEFL;
  Codec.set_u64 b 7 0x0123456789ABCDEFL;
  Codec.set_u32_int b 15 4294967295;
  Alcotest.(check int) "u8" 0xAB (Codec.get_u8 b 0);
  Alcotest.(check int) "u16" 0xBEEF (Codec.get_u16 b 1);
  Alcotest.(check int64) "u32" 0xDEADBEEFL (Codec.get_u32 b 3);
  Alcotest.(check int64) "u64" 0x0123456789ABCDEFL (Codec.get_u64 b 7);
  Alcotest.(check int) "u32_int max" 4294967295 (Codec.get_u32_int b 15)

let test_codec_bounds () =
  let b = Bytes.create 4 in
  let raises f = try f (); false with Codec.Decode_error _ -> true in
  Alcotest.(check bool) "u16 over end" true (raises (fun () -> ignore (Codec.get_u16 b 3)));
  Alcotest.(check bool) "u32 over end" true (raises (fun () -> ignore (Codec.get_u32 b 1)));
  Alcotest.(check bool) "u64 over end" true (raises (fun () -> ignore (Codec.get_u64 b 0)));
  Alcotest.(check bool) "negative offset" true (raises (fun () -> ignore (Codec.get_u8 b (-1))));
  Alcotest.(check bool) "set over end" true (raises (fun () -> Codec.set_u32 b 1 0L))

let test_cursor () =
  let b = Bytes.make 32 '\000' in
  let c = Codec.Cursor.of_bytes b in
  Codec.Cursor.write_u8 c 7;
  Codec.Cursor.write_u16 c 300;
  Codec.Cursor.write_u32_int c 70000;
  Codec.Cursor.write_string c "abc";
  Codec.Cursor.pad_to c 16;
  Codec.Cursor.write_u64 c 42L;
  Alcotest.(check int) "cursor pos after writes" 24 (Codec.Cursor.pos c);
  let r = Codec.Cursor.of_bytes b in
  Alcotest.(check int) "u8" 7 (Codec.Cursor.read_u8 r);
  Alcotest.(check int) "u16" 300 (Codec.Cursor.read_u16 r);
  Alcotest.(check int) "u32" 70000 (Codec.Cursor.read_u32_int r);
  Alcotest.(check string) "string" "abc" (Codec.Cursor.read_string r ~len:3);
  Codec.Cursor.seek r 16;
  Alcotest.(check int64) "u64" 42L (Codec.Cursor.read_u64 r)

let prop_u32_roundtrip =
  QCheck2.Test.make ~name:"codec u32 roundtrip" ~count:500
    QCheck2.Gen.(pair (int_bound 59) ui64)
    (fun (off, v) ->
      let v = Int64.logand v 0xFFFFFFFFL in
      let b = Bytes.make 64 '\000' in
      Codec.set_u32 b off v;
      Int64.equal (Codec.get_u32 b off) v)

let prop_u64_roundtrip =
  QCheck2.Test.make ~name:"codec u64 roundtrip" ~count:500
    QCheck2.Gen.(pair (int_bound 56) ui64)
    (fun (off, v) ->
      let b = Bytes.make 64 '\000' in
      Codec.set_u64 b off v;
      Int64.equal (Codec.get_u64 b off) v)

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_int_range () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 5 9 in
    Alcotest.(check bool) "int_in range" true (v >= 5 && v <= 9)
  done

let test_rng_invalid () =
  let rng = Rng.create 1L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.int_in: empty range") (fun () ->
      ignore (Rng.int_in rng 5 4));
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

let test_rng_pick_weighted () =
  let rng = Rng.create 3L in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3000 do
    let v = Rng.pick_weighted rng [ (1, "a"); (0, "never"); (9, "b") ] in
    Hashtbl.replace counts v ((try Hashtbl.find counts v with Not_found -> 0) + 1)
  done;
  Alcotest.(check bool) "never has weight 0" false (Hashtbl.mem counts "never");
  let a = try Hashtbl.find counts "a" with Not_found -> 0 in
  let b = try Hashtbl.find counts "b" with Not_found -> 0 in
  Alcotest.(check bool) "roughly 1:9" true (b > 5 * a)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 11L in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_rng_split_independent () =
  let a = Rng.create 5L in
  let b = Rng.split a in
  let va = Rng.next a and vb = Rng.next b in
  Alcotest.(check bool) "different streams" false (Int64.equal va vb)

let prop_chance_bounds =
  QCheck2.Test.make ~name:"rng float in [0,bound)" ~count:200 QCheck2.Gen.(float_range 0.001 100.)
    (fun bound ->
      let rng = Rng.create 99L in
      let v = Rng.float rng bound in
      v >= 0.0 && v < bound)

(* ---- Vclock ---- *)

let test_vclock () =
  let c = Vclock.create () in
  Alcotest.(check int64) "starts at 0" 0L (Vclock.now c);
  Vclock.advance c 500L;
  Vclock.advance c 1500L;
  Alcotest.(check int64) "accumulates" 2000L (Vclock.now c);
  Alcotest.check_raises "negative" (Invalid_argument "Vclock.advance: negative delta") (fun () ->
      Vclock.advance c (-1L));
  Vclock.reset c;
  Alcotest.(check int64) "reset" 0L (Vclock.now c)

let test_vclock_pp () =
  let s ns = Format.asprintf "%a" Vclock.pp_duration ns in
  Alcotest.(check string) "ns" "500ns" (s 500L);
  Alcotest.(check string) "us" "1.50us" (s 1500L);
  Alcotest.(check string) "ms" "2.00ms" (s 2_000_000L);
  Alcotest.(check string) "s" "3.000s" (s 3_000_000_000L)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rae_util"
    [
      ( "checksum",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32c_known_vectors;
          Alcotest.test_case "bit flip detected" `Quick test_crc32c_differs_on_flip;
          Alcotest.test_case "bounds" `Quick test_crc32c_bounds;
          Alcotest.test_case "verify" `Quick test_verify;
        ] );
      ( "codec",
        [
          Alcotest.test_case "fixed roundtrip" `Quick test_codec_roundtrip_fixed;
          Alcotest.test_case "bounds checked" `Quick test_codec_bounds;
          Alcotest.test_case "cursor" `Quick test_cursor;
          q prop_u32_roundtrip;
          q prop_u64_roundtrip;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "int ranges" `Quick test_rng_int_range;
          Alcotest.test_case "invalid args" `Quick test_rng_invalid;
          Alcotest.test_case "weighted pick" `Quick test_rng_pick_weighted;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          q prop_chance_bounds;
        ] );
      ( "vclock",
        [
          Alcotest.test_case "advance/reset" `Quick test_vclock;
          Alcotest.test_case "duration pp" `Quick test_vclock_pp;
        ] );
    ]
