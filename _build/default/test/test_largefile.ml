(* Large and sparse file coverage: the single- and double-indirect block
   chains of the format, exercised identically on the base, the shadow and
   the spec; plus ENOSPC behaviour on the base. *)

open Rae_vfs
module Base = Rae_basefs.Base
module Shadow = Rae_shadowfs.Shadow
module Spec = Rae_specfs.Spec
module Disk = Rae_block.Disk
module Device = Rae_block.Device
module Layout = Rae_format.Layout
module Fsck = Rae_fsck.Fsck

let p = Path.parse_exn
let ok = Result.get_ok
let bs = Layout.block_size

(* Offsets probing each mapping region: direct (0..11), single indirect
   (12..1035), double indirect (1036..). *)
let probe_offsets =
  [
    0;
    (* last direct block *) (11 * bs) + 17;
    (* first indirect *) 12 * bs;
    (* deep in indirect *) 800 * bs;
    (* first double-indirect *) (12 + 1024) * bs;
    (* second L1 page of the double-indirect tree *) (12 + 1024 + 1500) * bs;
  ]

let mk_base () =
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks:8192 () in
  let dev = Device.of_disk disk in
  ignore (ok (Base.mkfs dev ~ninodes:64 ()));
  (dev, ok (Base.mount dev))

let mk_shadow () =
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks:8192 () in
  let dev = Device.of_disk disk in
  ignore (ok (Rae_format.Mkfs.format dev ~ninodes:64 ()));
  (dev, ok (Shadow.attach dev))

(* Write a tagged chunk at each probe offset, then verify reads, stats and
   hole semantics — through any Fs_intf-style exec function. *)
let sparse_scenario exec fs =
  let fd =
    match exec fs (Op.Open (p "/sparse", Types.flags_create)) with
    | Ok (Op.Fd fd) -> fd
    | other -> Alcotest.failf "open: %s" (Format.asprintf "%a" Op.pp_outcome other)
  in
  List.iteri
    (fun i off ->
      let tag = Printf.sprintf "<chunk-%d>" i in
      match exec fs (Op.Pwrite (fd, off, tag)) with
      | Ok (Op.Len n) -> Alcotest.(check int) "full write" (String.length tag) n
      | other -> Alcotest.failf "pwrite@%d: %s" off (Format.asprintf "%a" Op.pp_outcome other))
    probe_offsets;
  (* Size = end of the last chunk. *)
  let last = List.nth probe_offsets (List.length probe_offsets - 1) in
  let expect_size = last + String.length (Printf.sprintf "<chunk-%d>" (List.length probe_offsets - 1)) in
  (match exec fs (Op.Fstat fd) with
  | Ok (Op.St st) -> Alcotest.(check int) "sparse size" expect_size st.Types.st_size
  | other -> Alcotest.failf "fstat: %s" (Format.asprintf "%a" Op.pp_outcome other));
  (* Every chunk reads back; holes read as zeros. *)
  List.iteri
    (fun i off ->
      let tag = Printf.sprintf "<chunk-%d>" i in
      match exec fs (Op.Pread (fd, off, String.length tag)) with
      | Ok (Op.Data d) -> Alcotest.(check string) (Printf.sprintf "chunk %d" i) tag d
      | other -> Alcotest.failf "pread@%d: %s" off (Format.asprintf "%a" Op.pp_outcome other))
    probe_offsets;
  (match exec fs (Op.Pread (fd, 5 * bs, 64)) with
  | Ok (Op.Data d) -> Alcotest.(check string) "hole is zeros" (String.make 64 '\000') d
  | other -> Alcotest.failf "hole read: %s" (Format.asprintf "%a" Op.pp_outcome other));
  (* Shrink under the double-indirect boundary, then under direct. *)
  (match exec fs (Op.Truncate (p "/sparse", (12 + 1024) * bs)) with
  | Ok Op.Unit -> ()
  | other -> Alcotest.failf "truncate: %s" (Format.asprintf "%a" Op.pp_outcome other));
  (match exec fs (Op.Pread (fd, 12 * bs, 11)) with
  | Ok (Op.Data d) -> Alcotest.(check string) "indirect chunk survives" "<chunk-2>\000\000" d
  | other -> Alcotest.failf "post-truncate read: %s" (Format.asprintf "%a" Op.pp_outcome other));
  (match exec fs (Op.Truncate (p "/sparse", 100)) with
  | Ok Op.Unit -> ()
  | other -> Alcotest.failf "truncate2: %s" (Format.asprintf "%a" Op.pp_outcome other));
  (match exec fs (Op.Fstat fd) with
  | Ok (Op.St st) -> Alcotest.(check int) "shrunk" 100 st.Types.st_size
  | other -> Alcotest.failf "fstat2: %s" (Format.asprintf "%a" Op.pp_outcome other));
  ignore (exec fs (Op.Close fd))

let test_sparse_on_spec () = sparse_scenario Spec.exec (Spec.make ())

let test_sparse_on_base () =
  let dev, b = mk_base () in
  sparse_scenario Base.exec b;
  ignore (ok (Base.unmount b));
  Alcotest.(check bool) "fsck clean (indirects freed)" true (Fsck.clean (Fsck.check_device dev))

let test_sparse_on_shadow () =
  let _dev, s = mk_shadow () in
  sparse_scenario Shadow.exec s

let test_three_way_agreement () =
  (* The same sparse trace, op by op, on all three implementations. *)
  let ops =
    List.concat
      [
        [ Op.Open (p "/f", Types.flags_create) ];
        List.concat_map
          (fun off -> [ Op.Pwrite (0, off, "DATA"); Op.Pread (0, off, 4); Op.Fstat 0 ])
          probe_offsets;
        [ Op.Truncate (p "/f", 500 * bs); Op.Fstat 0; Op.Truncate (p "/f", 0); Op.Close 0 ];
      ]
  in
  let sp = Spec.make () in
  let _, b = mk_base () in
  let _, s = mk_shadow () in
  List.iteri
    (fun i op ->
      let a = Spec.exec sp op and bo = Base.exec b op and so = Shadow.exec s op in
      if not (Op.outcome_equal a bo) then
        Alcotest.failf "op %d %s: spec vs base" i (Op.to_string op);
      if not (Op.outcome_equal a so) then
        Alcotest.failf "op %d %s: spec vs shadow" i (Op.to_string op))
    ops

let test_base_enospc_and_aftermath () =
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks:128 () in
  let dev = Device.of_disk disk in
  ignore (ok (Base.mkfs dev ~ninodes:16 ~journal_len:16 ()));
  let b = ok (Base.mount dev) in
  let fd = ok (Base.openf b (p "/big") Types.flags_create) in
  (match Base.pwrite b fd ~off:0 (String.make (200 * bs) 'x') with
  | Error Errno.ENOSPC -> ()
  | Error e -> Alcotest.failf "expected ENOSPC, got %s" (Errno.to_string e)
  | Ok n -> Alcotest.failf "wrote %d on a full disk" n);
  (* The filesystem keeps working and the image has no structural errors
     (block leaks from the aborted write are warnings, not errors). *)
  ignore (ok (Base.close b fd));
  ignore (ok (Base.unlink b (p "/big")));
  ignore (ok (Base.create b (p "/small") ~mode:0o644));
  ignore (ok (Base.unmount b));
  let report = Fsck.check_device dev in
  Alcotest.(check (list string)) "no structural errors" []
    (List.map (fun f -> Format.asprintf "%a" Fsck.pp_finding f) (Fsck.errors report))

let test_tiny_journal_rejected () =
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks:128 () in
  let dev = Device.of_disk disk in
  match Base.mkfs dev ~ninodes:16 ~journal_len:8 () with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted a journal too small for one transaction"

let test_max_file_size_enforced () =
  let sp = Spec.make () in
  let fd = ok (Spec.openf sp (p "/f") Types.flags_create) in
  (match Spec.pwrite sp fd ~off:Layout.max_file_size "x" with
  | Error Errno.EFBIG -> ()
  | _ -> Alcotest.fail "spec allowed write past max size");
  let _, s = mk_shadow () in
  let fd2 = ok (Shadow.openf s (p "/f") Types.flags_create) in
  match Shadow.pwrite s fd2 ~off:Layout.max_file_size "x" with
  | Error Errno.EFBIG -> ()
  | _ -> Alcotest.fail "shadow allowed write past max size"

let () =
  Alcotest.run "rae_largefile"
    [
      ( "sparse+indirect",
        [
          Alcotest.test_case "spec" `Quick test_sparse_on_spec;
          Alcotest.test_case "base" `Quick test_sparse_on_base;
          Alcotest.test_case "shadow" `Quick test_sparse_on_shadow;
          Alcotest.test_case "three-way agreement" `Quick test_three_way_agreement;
        ] );
      ( "limits",
        [
          Alcotest.test_case "base ENOSPC aftermath" `Quick test_base_enospc_and_aftermath;
          Alcotest.test_case "tiny journal rejected" `Quick test_tiny_journal_rejected;
          Alcotest.test_case "max file size" `Quick test_max_file_size_enforced;
        ] );
    ]
