(* Tests for rae_vfs: errno, types, paths, the operation AST. *)

open Rae_vfs

let path_testable = Alcotest.testable Path.pp Path.equal

(* ---- Errno ---- *)

let test_errno_strings () =
  List.iter
    (fun e ->
      let s = Errno.to_string e in
      Alcotest.(check bool) "uppercase E-code" true (String.length s > 1 && s.[0] = 'E'))
    Errno.all;
  Alcotest.(check int) "all distinct" (List.length Errno.all)
    (List.length (List.sort_uniq compare (List.map Errno.to_string Errno.all)))

(* ---- Path parsing ---- *)

let ok s = match Path.parse s with Ok p -> p | Error e -> Alcotest.failf "parse %S: %a" s Path.pp_error e

let test_parse_basic () =
  Alcotest.check path_testable "root" [] (ok "/");
  Alcotest.check path_testable "simple" [ "a"; "b" ] (ok "/a/b");
  Alcotest.check path_testable "trailing slash" [ "a" ] (ok "/a/");
  Alcotest.check path_testable "double slash" [ "a"; "b" ] (ok "/a//b");
  Alcotest.check path_testable "dot" [ "a"; "b" ] (ok "/a/./b");
  Alcotest.check path_testable "dotdot" [ "b" ] (ok "/a/../b");
  Alcotest.check path_testable "dotdot at root" [ "b" ] (ok "/../b");
  Alcotest.check path_testable "all dots" [] (ok "/a/..")

let test_parse_errors () =
  let is_err s = match Path.parse s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "relative" true (is_err "a/b");
  Alcotest.(check bool) "empty" true (is_err "");
  Alcotest.(check bool) "NUL in component" true (is_err "/a\000b");
  Alcotest.(check bool) "overlong component" true (is_err ("/" ^ String.make 256 'x'))

let test_parse_exn () =
  Alcotest.(check bool) "ok case" true (Path.parse_exn "/x" = [ "x" ]);
  (match Path.parse_exn "relative" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

let test_component_ok () =
  Alcotest.(check bool) "normal" true (Path.component_ok "file.txt");
  Alcotest.(check bool) "max length" true (Path.component_ok (String.make 255 'a'));
  Alcotest.(check bool) "too long" false (Path.component_ok (String.make 256 'a'));
  Alcotest.(check bool) "empty" false (Path.component_ok "");
  Alcotest.(check bool) "dot" false (Path.component_ok ".");
  Alcotest.(check bool) "dotdot" false (Path.component_ok "..");
  Alcotest.(check bool) "slash" false (Path.component_ok "a/b");
  Alcotest.(check bool) "nul" false (Path.component_ok "a\000")

let test_to_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Path.to_string (ok s)))
    [ "/"; "/a"; "/a/b/c"; "/deep/ly/nest/ed/path" ]

let test_split_last () =
  Alcotest.(check (option (pair path_testable Alcotest.string)))
    "root has no parent" None (Path.split_last []);
  Alcotest.(check (option (pair path_testable Alcotest.string)))
    "basic" (Some ([ "a" ], "b"))
    (Path.split_last [ "a"; "b" ])

let test_is_prefix () =
  Alcotest.(check bool) "root prefixes all" true (Path.is_prefix [] ~of_:[ "a" ]);
  Alcotest.(check bool) "self" true (Path.is_prefix [ "a" ] ~of_:[ "a" ]);
  Alcotest.(check bool) "proper" true (Path.is_prefix [ "a" ] ~of_:[ "a"; "b" ]);
  Alcotest.(check bool) "not prefix" false (Path.is_prefix [ "a"; "b" ] ~of_:[ "a" ]);
  Alcotest.(check bool) "diverging" false (Path.is_prefix [ "a" ] ~of_:[ "b"; "a" ])

let prop_parse_normalizes =
  (* to_string ∘ parse is idempotent: reparsing a printed path is identity. *)
  let gen_component =
    QCheck2.Gen.(map (fun s -> if Path.component_ok s then s else "c") (string_size (int_range 1 8)))
  in
  QCheck2.Test.make ~name:"parse/print roundtrip" ~count:300
    QCheck2.Gen.(list_size (int_bound 6) gen_component)
    (fun components ->
      let p1 = Path.parse_exn ("/" ^ String.concat "/" components) in
      let p2 = Path.parse_exn (Path.to_string p1) in
      Path.equal p1 p2)

(* ---- Types ---- *)

let test_kind_codes () =
  List.iter
    (fun k -> Alcotest.(check bool) "roundtrip" true (Types.kind_of_code (Types.kind_code k) = Some k))
    [ Types.Regular; Types.Directory; Types.Symlink ];
  Alcotest.(check bool) "0 invalid" true (Types.kind_of_code 0 = None);
  Alcotest.(check bool) "4 invalid" true (Types.kind_of_code 4 = None)

let mk_stat ?(mtime = 5L) () =
  {
    Types.st_ino = 3;
    st_kind = Types.Regular;
    st_size = 100;
    st_nlink = 1;
    st_mode = 0o644;
    st_mtime = mtime;
    st_ctime = mtime;
  }

let test_stat_equal () =
  let a = mk_stat () in
  Alcotest.(check bool) "reflexive" true (Types.stat_equal a a);
  Alcotest.(check bool) "time differs" false (Types.stat_equal a (mk_stat ~mtime:6L ()));
  Alcotest.(check bool) "ignore_times" true
    (Types.stat_equal ~ignore_times:true a (mk_stat ~mtime:6L ()))

(* ---- Op ---- *)

let sample_ops =
  let p = Path.parse_exn in
  [
    Op.Create (p "/f", 0o644);
    Op.Mkdir (p "/d", 0o755);
    Op.Unlink (p "/f");
    Op.Rmdir (p "/d");
    Op.Open (p "/f", Types.flags_create);
    Op.Close 3;
    Op.Pread (3, 0, 10);
    Op.Pwrite (3, 0, "hello");
    Op.Lookup (p "/f");
    Op.Stat (p "/f");
    Op.Fstat 3;
    Op.Readdir (p "/");
    Op.Rename (p "/a", p "/b");
    Op.Truncate (p "/f", 10);
    Op.Link (p "/f", p "/g");
    Op.Symlink ("/f", p "/l");
    Op.Readlink (p "/l");
    Op.Chmod (p "/f", 0o600);
    Op.Fsync 3;
    Op.Sync;
  ]

let test_op_kinds_cover () =
  let kinds = List.sort_uniq compare (List.map Op.kind sample_ops) in
  Alcotest.(check int) "every op kind exercised" (List.length Op.all_kinds) (List.length kinds)

let test_is_mutation () =
  let p = Path.parse_exn in
  Alcotest.(check bool) "create mutates" true (Op.is_mutation (Op.Create (p "/f", 0o644)));
  Alcotest.(check bool) "pread does not" false (Op.is_mutation (Op.Pread (0, 0, 1)));
  Alcotest.(check bool) "open rd does not" false (Op.is_mutation (Op.Open (p "/f", Types.flags_ro)));
  Alcotest.(check bool) "open creat does" true (Op.is_mutation (Op.Open (p "/f", Types.flags_create)));
  Alcotest.(check bool) "sync is sync" true (Op.is_sync Op.Sync);
  Alcotest.(check bool) "fsync is sync" true (Op.is_sync (Op.Fsync 1));
  Alcotest.(check bool) "close not sync" false (Op.is_sync (Op.Close 1))

let test_op_pp_total () =
  List.iter
    (fun op ->
      let s = Op.to_string op in
      Alcotest.(check bool) (Printf.sprintf "pp of %s nonempty" s) true (String.length s > 0))
    sample_ops

let test_value_equal () =
  Alcotest.(check bool) "data eq" true (Op.value_equal (Op.Data "x") (Op.Data "x"));
  Alcotest.(check bool) "data neq" false (Op.value_equal (Op.Data "x") (Op.Data "y"));
  Alcotest.(check bool) "cross-constructor" false (Op.value_equal (Op.Len 1) (Op.Fd 1));
  Alcotest.(check bool) "names order matters" false
    (Op.value_equal (Op.Names [ "a"; "b" ]) (Op.Names [ "b"; "a" ]));
  let st1 = Op.St (mk_stat ()) and st2 = Op.St (mk_stat ~mtime:9L ()) in
  Alcotest.(check bool) "stat times ignored" true (Op.value_equal ~ignore_times:true st1 st2)

let test_outcome_equal () =
  Alcotest.(check bool) "ok vs error" false
    (Op.outcome_equal (Ok Op.Unit) (Error Errno.EIO));
  Alcotest.(check bool) "error eq" true
    (Op.outcome_equal (Error Errno.ENOENT) (Error Errno.ENOENT));
  Alcotest.(check bool) "error neq" false
    (Op.outcome_equal (Error Errno.ENOENT) (Error Errno.EEXIST))

(* Dispatch: a minimal FS stub to verify op→function mapping. *)
module Stub = struct
  type t = { mutable trace : string list }

  let record t name = t.trace <- name :: t.trace

  let create t _ ~mode:_ = record t "create"; Ok 1
  let mkdir t _ ~mode:_ = record t "mkdir"; Ok 2
  let unlink t _ = record t "unlink"; Ok ()
  let rmdir t _ = record t "rmdir"; Ok ()
  let openf t _ _ = record t "openf"; Ok 3
  let close t _ = record t "close"; Ok ()
  let pread t _ ~off:_ ~len:_ = record t "pread"; Ok "data"
  let pwrite t _ ~off:_ s = record t "pwrite"; Ok (String.length s)
  let lookup t _ = record t "lookup"; Ok 1
  let stat t _ = record t "stat"; Ok (mk_stat ())
  let fstat t _ = record t "fstat"; Ok (mk_stat ())
  let readdir t _ = record t "readdir"; Ok [ "x" ]
  let rename t _ _ = record t "rename"; Ok ()
  let truncate t _ ~size:_ = record t "truncate"; Ok ()
  let link t _ _ = record t "link"; Ok ()
  let symlink t ~target:_ _ = record t "symlink"; Ok 4
  let readlink t _ = record t "readlink"; Ok "/t"
  let chmod t _ ~mode:_ = record t "chmod"; Ok ()
  let fsync t _ = record t "fsync"; Ok ()
  let sync t = record t "sync"; Ok ()
end

module SD = Fs_intf.Dispatch (Stub)

let test_dispatch_covers_all () =
  let stub = { Stub.trace = [] } in
  List.iter (fun op -> ignore (SD.exec stub op)) sample_ops;
  Alcotest.(check int) "one call per op" (List.length sample_ops) (List.length stub.Stub.trace);
  Alcotest.(check int) "all distinct functions" (List.length sample_ops)
    (List.length (List.sort_uniq compare stub.Stub.trace))

let test_dispatch_values () =
  let stub = { Stub.trace = [] } in
  let p = Path.parse_exn in
  Alcotest.(check bool) "create returns ino" true
    (SD.exec stub (Op.Create (p "/f", 0o644)) = Ok (Op.Ino 1));
  Alcotest.(check bool) "pwrite returns len" true
    (SD.exec stub (Op.Pwrite (0, 0, "abcde")) = Ok (Op.Len 5));
  Alcotest.(check bool) "readdir returns names" true
    (SD.exec stub (Op.Readdir (p "/")) = Ok (Op.Names [ "x" ]))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rae_vfs"
    [
      ("errno", [ Alcotest.test_case "codes well-formed" `Quick test_errno_strings ]);
      ( "path",
        [
          Alcotest.test_case "parse basics" `Quick test_parse_basic;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "parse_exn" `Quick test_parse_exn;
          Alcotest.test_case "component_ok" `Quick test_component_ok;
          Alcotest.test_case "to_string roundtrip" `Quick test_to_string_roundtrip;
          Alcotest.test_case "split_last" `Quick test_split_last;
          Alcotest.test_case "is_prefix" `Quick test_is_prefix;
          q prop_parse_normalizes;
        ] );
      ( "types",
        [
          Alcotest.test_case "kind codes" `Quick test_kind_codes;
          Alcotest.test_case "stat equality" `Quick test_stat_equal;
        ] );
      ( "op",
        [
          Alcotest.test_case "kinds cover" `Quick test_op_kinds_cover;
          Alcotest.test_case "is_mutation" `Quick test_is_mutation;
          Alcotest.test_case "pp total" `Quick test_op_pp_total;
          Alcotest.test_case "value equality" `Quick test_value_equal;
          Alcotest.test_case "outcome equality" `Quick test_outcome_equal;
          Alcotest.test_case "dispatch covers all ops" `Quick test_dispatch_covers_all;
          Alcotest.test_case "dispatch value mapping" `Quick test_dispatch_values;
        ] );
    ]
