(* Tests for rae_workload: determinism, shape, and that profile workloads
   mostly succeed against the specification. *)

open Rae_vfs
module W = Rae_workload.Workload
module Spec = Rae_specfs.Spec
module Rng = Rae_util.Rng

let test_deterministic () =
  List.iter
    (fun profile ->
      let a = W.ops profile (Rng.create 5L) ~count:150 in
      let b = W.ops profile (Rng.create 5L) ~count:150 in
      Alcotest.(check bool)
        (W.profile_name profile ^ " deterministic")
        true (a = b))
    W.all_profiles;
  let a = W.uniform (Rng.create 5L) ~count:150 and b = W.uniform (Rng.create 5L) ~count:150 in
  Alcotest.(check bool) "uniform deterministic" true (a = b)

let test_seed_sensitivity () =
  let a = W.uniform (Rng.create 1L) ~count:100 and b = W.uniform (Rng.create 2L) ~count:100 in
  Alcotest.(check bool) "different seeds differ" false (a = b)

let test_profile_names_roundtrip () =
  List.iter
    (fun profile ->
      Alcotest.(check bool)
        (W.profile_name profile)
        true
        (W.profile_of_name (W.profile_name profile) = Some profile))
    W.all_profiles;
  Alcotest.(check bool) "unknown name" true (W.profile_of_name "nope" = None)

let test_uniform_covers_kinds () =
  let ops = W.uniform (Rng.create 3L) ~count:2000 in
  let kinds = List.sort_uniq compare (List.map Op.kind ops) in
  Alcotest.(check int) "all 20 kinds appear" (List.length Op.all_kinds) (List.length kinds)

let test_uniform_mutations_no_sync () =
  let ops = W.uniform_mutations (Rng.create 3L) ~count:2000 in
  Alcotest.(check bool) "no sync ops" true (List.for_all (fun op -> not (Op.is_sync op)) ops)

let success_rate ops =
  let sp = Spec.make () in
  let okc = List.fold_left (fun acc op -> match Spec.exec sp op with Ok _ -> acc + 1 | Error _ -> acc) 0 ops in
  float_of_int okc /. float_of_int (List.length ops)

let test_profiles_mostly_succeed () =
  List.iter
    (fun profile ->
      let ops = W.ops profile (Rng.create 11L) ~count:400 in
      let rate = success_rate ops in
      Alcotest.(check bool)
        (Printf.sprintf "%s success rate %.2f >= 0.95" (W.profile_name profile) rate)
        true (rate >= 0.95))
    W.all_profiles

let test_profile_shapes () =
  let count_kind ops k = List.length (List.filter (fun o -> Op.kind o = k) ops) in
  let varmail = W.ops W.Varmail (Rng.create 9L) ~count:400 in
  Alcotest.(check bool) "varmail is fsync-heavy" true (count_kind varmail Op.K_fsync > 20);
  let web = W.ops W.Webserver (Rng.create 9L) ~count:400 in
  Alcotest.(check bool) "webserver is read-heavy" true
    (count_kind web Op.K_pread > count_kind web Op.K_pwrite);
  let meta = W.ops W.Metadata (Rng.create 9L) ~count:400 in
  Alcotest.(check bool) "metadata has few writes" true
    (count_kind meta Op.K_pwrite = 0);
  let seq = W.ops W.Sequential_write (Rng.create 9L) ~count:100 in
  Alcotest.(check bool) "seqwrite is writes" true (count_kind seq Op.K_pwrite >= 98)

let test_requested_counts () =
  List.iter
    (fun profile ->
      let ops = W.ops profile (Rng.create 1L) ~count:300 in
      let n = List.length ops in
      Alcotest.(check bool)
        (Printf.sprintf "%s count %d within [300, 320]" (W.profile_name profile) n)
        true
        (n >= 300 && n <= 320))
    W.all_profiles

let test_pp_summary () =
  let ops = W.uniform (Rng.create 1L) ~count:50 in
  let s = Format.asprintf "%a" W.pp_summary ops in
  Alcotest.(check bool) "summary mentions total" true
    (String.length s > 0 && String.sub s 0 2 = "50")

let () =
  Alcotest.run "rae_workload"
    [
      ( "generators",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "profile names" `Quick test_profile_names_roundtrip;
          Alcotest.test_case "uniform covers all kinds" `Quick test_uniform_covers_kinds;
          Alcotest.test_case "mutations exclude sync" `Quick test_uniform_mutations_no_sync;
          Alcotest.test_case "profiles mostly succeed" `Quick test_profiles_mostly_succeed;
          Alcotest.test_case "profile shapes" `Quick test_profile_shapes;
          Alcotest.test_case "requested counts" `Quick test_requested_counts;
          Alcotest.test_case "summary pp" `Quick test_pp_summary;
        ] );
    ]
