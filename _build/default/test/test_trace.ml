(* Tests for rae_workload's Trace module: serialization roundtrips, parse
   robustness, replay determinism. *)

open Rae_vfs
module Trace = Rae_workload.Trace
module W = Rae_workload.Workload
module Spec = Rae_specfs.Spec

let p = Path.parse_exn

let sample_ops =
  [
    Op.Create (p "/file with space", 0o644);
    Op.Mkdir (p "/d", 0o755);
    Op.Unlink (p "/file with space");
    Op.Rmdir (p "/d");
    Op.Open (p "/f", Types.flags_excl);
    Op.Close 3;
    Op.Pread (3, 100, 4096);
    Op.Pwrite (3, 0, "binary\000data\nwith \"quotes\" and \xffbytes");
    Op.Lookup (p "/f");
    Op.Stat (p "/");
    Op.Fstat 0;
    Op.Readdir (p "/d");
    Op.Rename (p "/a", p "/b");
    Op.Truncate (p "/f", 12345);
    Op.Link (p "/f", p "/g");
    Op.Symlink ("/target path", p "/ln");
    Op.Readlink (p "/ln");
    Op.Chmod (p "/f", 0o600);
    Op.Fsync 7;
    Op.Sync;
  ]

let test_line_roundtrip () =
  List.iter
    (fun op ->
      let line = Trace.op_to_line op in
      match Trace.op_of_line line with
      | Ok op' ->
          if op <> op' then
            Alcotest.failf "roundtrip changed %s -> %s via %S" (Op.to_string op) (Op.to_string op')
              line
      | Error msg -> Alcotest.failf "cannot reparse %S: %s" line msg)
    sample_ops

let test_bulk_roundtrip () =
  match Trace.of_string (Trace.to_string sample_ops) with
  | Ok ops -> Alcotest.(check bool) "equal" true (ops = sample_ops)
  | Error msg -> Alcotest.failf "bulk parse: %s" msg

let test_comments_and_blanks () =
  let text = "# a comment\n\ncreate \"/x\" 644\n   \nsync\n# trailing\n" in
  match Trace.of_string text with
  | Ok [ Op.Create (path, 0o644); Op.Sync ] ->
      Alcotest.(check string) "path" "/x" (Path.to_string path)
  | Ok ops -> Alcotest.failf "parsed %d ops" (List.length ops)
  | Error msg -> Alcotest.failf "parse: %s" msg

let test_bad_lines_reported_with_number () =
  let text = "create \"/x\" 644\nnot-an-op 42\n" in
  match Trace.of_string text with
  | Error msg -> Alcotest.(check bool) "names line 2" true (String.length msg > 0 && String.sub msg 0 7 = "line 2:")
  | Ok _ -> Alcotest.fail "accepted garbage"

let test_bad_flags_rejected () =
  match Trace.op_of_line "open \"/f\" rz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad flags"

let test_bad_path_rejected () =
  match Trace.op_of_line "create \"relative\" 644" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a relative path"

let test_file_roundtrip () =
  let path = Filename.temp_file "rae_trace" ".txt" in
  (match Trace.save path sample_ops with Ok () -> () | Error m -> Alcotest.fail m);
  (match Trace.load path with
  | Ok ops -> Alcotest.(check bool) "file roundtrip" true (ops = sample_ops)
  | Error msg -> Alcotest.failf "load: %s" msg);
  Sys.remove path

let prop_generated_traces_roundtrip =
  QCheck2.Test.make ~name:"generated workloads roundtrip through text" ~count:50
    QCheck2.Gen.(pair ui64 (int_range 10 150))
    (fun (seed, count) ->
      let ops = W.uniform (Rae_util.Rng.create seed) ~count in
      match Trace.of_string (Trace.to_string ops) with
      | Ok ops' -> ops = ops'
      | Error _ -> false)

let test_replay_matches_direct_execution () =
  let ops = W.ops W.Metadata (Rae_util.Rng.create 4L) ~count:200 in
  (* Execute directly... *)
  let sp1 = Spec.make () in
  let direct = List.map (fun op -> Spec.exec sp1 op) ops in
  (* ...and via save/load/replay. *)
  let text = Trace.to_string ops in
  let reloaded = Result.get_ok (Trace.of_string text) in
  let sp2 = Spec.make () in
  let replayed = Trace.replay ~exec:Spec.exec sp2 reloaded in
  Alcotest.(check bool) "same outcomes" true
    (List.for_all2 (fun a (_, b) -> Op.outcome_equal a b) direct replayed)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rae_trace"
    [
      ( "serialization",
        [
          Alcotest.test_case "per-line roundtrip" `Quick test_line_roundtrip;
          Alcotest.test_case "bulk roundtrip" `Quick test_bulk_roundtrip;
          Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
          Alcotest.test_case "bad line numbers" `Quick test_bad_lines_reported_with_number;
          Alcotest.test_case "bad flags" `Quick test_bad_flags_rejected;
          Alcotest.test_case "bad path" `Quick test_bad_path_rejected;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          q prop_generated_traces_roundtrip;
        ] );
      ( "replay",
        [ Alcotest.test_case "replay == direct" `Quick test_replay_matches_direct_execution ] );
    ]
