(* Autonomous-mode coverage: EVERY operation kind can be the in-flight
   operation at the moment the base panics, and RAE must return the
   POSIX-correct result for it (paper §3.2: the shadow "allows in-flight
   operations to complete").

   Table-driven: for each op kind, a small setup script plus a trigger op
   of that kind; a panic bug armed on the Nth op of that kind fires
   exactly on the trigger. *)

open Rae_vfs
module Base = Rae_basefs.Base
module Bug_registry = Rae_basefs.Bug_registry
module Controller = Rae_core.Controller
module Spec = Rae_specfs.Spec
module Disk = Rae_block.Disk
module Device = Rae_block.Device

let p = Path.parse_exn
let ok = Result.get_ok
let bs = Rae_format.Layout.block_size

(* (kind, setup ops, trigger op).  The trigger is the FIRST op of its kind
   in the whole script, so the bug arms with n = 1. *)
let cases =
  [
    (Op.K_create, [], Op.Create (p "/t", 0o644));
    (Op.K_mkdir, [], Op.Mkdir (p "/d", 0o755));
    (Op.K_unlink, [ Op.Create (p "/t", 0o644) ], Op.Unlink (p "/t"));
    (Op.K_rmdir, [ Op.Mkdir (p "/d", 0o755) ], Op.Rmdir (p "/d"));
    (Op.K_open, [ Op.Create (p "/t", 0o644) ], Op.Open (p "/t", Types.flags_rw));
    (Op.K_close, [ Op.Open (p "/t", Types.flags_create) ], Op.Close 0);
    (Op.K_pread, [ Op.Open (p "/t", Types.flags_create); Op.Pwrite (0, 0, "hello") ], Op.Pread (0, 1, 3));
    (Op.K_pwrite, [ Op.Open (p "/t", Types.flags_create) ], Op.Pwrite (0, 0, "payload"));
    (Op.K_lookup, [ Op.Create (p "/t", 0o644) ], Op.Lookup (p "/t"));
    (Op.K_stat, [ Op.Create (p "/t", 0o644) ], Op.Stat (p "/t"));
    (Op.K_fstat, [ Op.Open (p "/t", Types.flags_create) ], Op.Fstat 0);
    (Op.K_readdir, [ Op.Mkdir (p "/d", 0o755); Op.Create (p "/d/x", 0o644) ], Op.Readdir (p "/d"));
    (Op.K_rename, [ Op.Create (p "/t", 0o644) ], Op.Rename (p "/t", p "/u"));
    (Op.K_truncate, [ Op.Open (p "/t", Types.flags_create); Op.Pwrite (0, 0, "longcontent") ],
     Op.Truncate (p "/t", 4));
    (Op.K_link, [ Op.Create (p "/t", 0o644) ], Op.Link (p "/t", p "/hard"));
    (Op.K_symlink, [], Op.Symlink ("/t", p "/ln"));
    (Op.K_readlink, [ Op.Symlink ("/t", p "/ln") ], Op.Readlink (p "/ln"));
    (Op.K_chmod, [ Op.Create (p "/t", 0o644) ], Op.Chmod (p "/t", 0o400));
    (Op.K_fsync, [ Op.Open (p "/t", Types.flags_create); Op.Pwrite (0, 0, "x") ], Op.Fsync 0);
    (Op.K_sync, [ Op.Create (p "/t", 0o644) ], Op.Sync);
  ]

let run_case (kind, setup, trigger) =
  let bug =
    {
      Bug_registry.id = "inflight-panic";
      determinism = Bug_registry.Deterministic;
      trigger = Bug_registry.Nth_op_of_kind (kind, 1);
      consequence = Bug_registry.Panic;
      modeled_after = "in-flight coverage";
    }
  in
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks:2048 () in
  let dev = Device.of_disk disk in
  ignore (ok (Base.mkfs dev ~ninodes:256 ()));
  let base = ok (Base.mount ~bugs:(Bug_registry.arm [ bug ]) dev) in
  let ctl = Controller.make ~device:dev base in
  let sp = Spec.make () in
  let name = Op.kind_to_string kind in
  List.iteri
    (fun i op ->
      Alcotest.(check bool)
        (Printf.sprintf "%s setup %d" name i)
        true
        (Op.outcome_equal (Spec.exec sp op) (Controller.exec ctl op)))
    setup;
  (* The trigger op panics the base; its result must still be correct. *)
  let want = Spec.exec sp trigger and got = Controller.exec ctl trigger in
  if not (Op.outcome_equal want got) then
    Alcotest.failf "in-flight %s: spec %s, RAE %s" name
      (Format.asprintf "%a" Op.pp_outcome want)
      (Format.asprintf "%a" Op.pp_outcome got);
  Alcotest.(check int) (name ^ " recovered once") 1 (Controller.stats ctl).Controller.recoveries;
  (* The system remains usable and consistent. *)
  Alcotest.(check bool) (name ^ " still alive") true
    (Result.is_ok (Controller.create ctl (p "/after") ~mode:0o644));
  ignore (ok (Controller.sync ctl));
  Alcotest.(check bool)
    (name ^ " fsck clean")
    true
    (Rae_fsck.Fsck.clean (Rae_fsck.Fsck.check_device dev))

let () =
  Alcotest.run "rae_inflight"
    [
      ( "in-flight op kinds",
        List.map
          (fun ((kind, _, _) as case) ->
            Alcotest.test_case (Op.kind_to_string kind) `Quick (fun () -> run_case case))
          cases );
    ]
