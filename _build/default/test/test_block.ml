(* Tests for rae_block: disk, device, fault injection, blk-mq, crashsim. *)

open Rae_block

let bs = 4096

let mk_disk ?(nblocks = 64) () = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks ()

let block_of_char c = Bytes.make bs c

(* ---- Disk ---- *)

let test_disk_rw () =
  let d = mk_disk () in
  Alcotest.(check int) "nblocks" 64 (Disk.nblocks d);
  Alcotest.(check bool) "fresh reads zero" true (Bytes.equal (Disk.read d 0) (block_of_char '\000'));
  Disk.write d 5 (block_of_char 'x');
  Alcotest.(check bool) "read back" true (Bytes.equal (Disk.read d 5) (block_of_char 'x'))

let test_disk_read_is_copy () =
  let d = mk_disk () in
  Disk.write d 1 (block_of_char 'a');
  let b = Disk.read d 1 in
  Bytes.fill b 0 bs 'z';
  Alcotest.(check bool) "medium unchanged" true (Bytes.equal (Disk.read d 1) (block_of_char 'a'))

let test_disk_bounds () =
  let d = mk_disk () in
  (try ignore (Disk.read d 64); Alcotest.fail "expected out of range" with Invalid_argument _ -> ());
  (try ignore (Disk.read d (-1)); Alcotest.fail "expected out of range" with Invalid_argument _ -> ());
  try Disk.write d 0 (Bytes.make 10 'x'); Alcotest.fail "expected size mismatch"
  with Invalid_argument _ -> ()

let test_disk_latency_clock () =
  let d = Disk.create ~latency:{ Disk.read_ns = 100L; write_ns = 250L } ~block_size:bs ~nblocks:4 () in
  ignore (Disk.read d 0);
  Disk.write d 0 (block_of_char 'q');
  ignore (Disk.read d 1);
  Alcotest.(check int64) "2 reads + 1 write" 450L (Rae_util.Vclock.now (Disk.clock d))

let test_disk_counters () =
  let d = mk_disk () in
  ignore (Disk.read d 0);
  ignore (Disk.read d 1);
  Disk.write d 2 (block_of_char 'w');
  Alcotest.(check (pair int int)) "counters" (2, 1) (Disk.reads d, Disk.writes d);
  Disk.reset_counters d;
  Alcotest.(check (pair int int)) "reset" (0, 0) (Disk.reads d, Disk.writes d)

let test_disk_snapshot_restore () =
  let d = mk_disk () in
  Disk.write d 3 (block_of_char 'a');
  let snap = Disk.snapshot d in
  Disk.write d 3 (block_of_char 'b');
  Disk.write d 4 (block_of_char 'c');
  Disk.restore d snap;
  Alcotest.(check bool) "block 3 restored" true (Bytes.equal (Disk.read d 3) (block_of_char 'a'));
  Alcotest.(check bool) "block 4 restored" true (Bytes.equal (Disk.read d 4) (block_of_char '\000'))

let test_disk_corrupt_byte () =
  let d = mk_disk () in
  Disk.write d 7 (block_of_char 'a');
  Disk.corrupt_byte d ~block:7 ~offset:100 (fun _ -> 'Z');
  let b = Disk.read d 7 in
  Alcotest.(check char) "corrupted" 'Z' (Bytes.get b 100);
  Alcotest.(check char) "neighbours intact" 'a' (Bytes.get b 99)

(* ---- Device ---- *)

let test_device_read_only () =
  let d = mk_disk () in
  let dev = Device.read_only (Device.of_disk d) in
  ignore (Device.read dev 0);
  (try Device.write dev 0 (block_of_char 'x'); Alcotest.fail "write must raise"
   with Device.Read_only_device -> ());
  try Device.flush dev; Alcotest.fail "flush must raise" with Device.Read_only_device -> ()

let test_device_counting () =
  let dev, counts = Device.counting (Device.of_disk (mk_disk ())) in
  ignore (Device.read dev 0);
  ignore (Device.read dev 1);
  Device.write dev 2 (block_of_char 'x');
  Alcotest.(check (pair int int)) "counted" (2, 1) (counts ())

(* ---- Fault ---- *)

let test_fault_read_error_window () =
  let d = mk_disk () in
  let f = Fault.create [ Fault.Read_error { block = 3; from_nth = 2; count = 2 } ] in
  let dev = Fault.wrap f (Device.of_disk d) in
  ignore (Device.read dev 3) (* 1st: ok *);
  (try ignore (Device.read dev 3); Alcotest.fail "2nd read must fail" with Device.Io_error _ -> ());
  (try ignore (Device.read dev 3); Alcotest.fail "3rd read must fail" with Device.Io_error _ -> ());
  ignore (Device.read dev 3) (* 4th: ok again *);
  Alcotest.(check int) "two injections" 2 (Fault.injected f)

let test_fault_flip_on_read () =
  let d = mk_disk () in
  Disk.write d 1 (block_of_char 'a');
  let f = Fault.create [ Fault.Flip_on_read { block = 1; byte = 10; bit = 0; from_nth = 1; count = 1 } ] in
  let dev = Fault.wrap f (Device.of_disk d) in
  let b1 = Device.read dev 1 in
  Alcotest.(check bool) "first read corrupted" false (Bytes.get b1 10 = 'a');
  let b2 = Device.read dev 1 in
  Alcotest.(check char) "second read clean (transient)" 'a' (Bytes.get b2 10);
  Alcotest.(check bool) "medium intact" true (Bytes.equal (Disk.read d 1) (block_of_char 'a'))

let test_fault_stuck_write () =
  let d = mk_disk () in
  Disk.write d 2 (block_of_char 'o');
  let f = Fault.create [ Fault.Stuck_write { block = 2 } ] in
  let dev = Fault.wrap f (Device.of_disk d) in
  Device.write dev 2 (block_of_char 'n');
  Alcotest.(check bool) "write lost" true (Bytes.equal (Disk.read d 2) (block_of_char 'o'))

let test_fault_torn_write () =
  let d = mk_disk () in
  Disk.write d 4 (block_of_char 'o');
  let f = Fault.create [ Fault.Torn_write { block = 4; keep_bytes = 100 } ] in
  let dev = Fault.wrap f (Device.of_disk d) in
  Device.write dev 4 (block_of_char 'n');
  let b = Disk.read d 4 in
  Alcotest.(check char) "head written" 'n' (Bytes.get b 0);
  Alcotest.(check char) "head written to 99" 'n' (Bytes.get b 99);
  Alcotest.(check char) "tail torn" 'o' (Bytes.get b 100)

let test_fault_probabilistic_requires_rng () =
  try
    ignore (Fault.create ~read_error_rate:0.5 []);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_fault_probabilistic_rate () =
  let d = mk_disk () in
  let rng = Rae_util.Rng.create 1L in
  let f = Fault.create ~rng ~read_error_rate:0.5 [] in
  let dev = Fault.wrap f (Device.of_disk d) in
  let failures = ref 0 in
  for _ = 1 to 200 do
    try ignore (Device.read dev 0) with Device.Io_error _ -> incr failures
  done;
  Alcotest.(check bool) "roughly half fail" true (!failures > 50 && !failures < 150)

(* ---- Blkmq ---- *)

let test_blkmq_read_write () =
  let d = mk_disk () in
  let mq = Blkmq.create (Device.of_disk d) in
  let w = Blkmq.submit_write mq 3 (block_of_char 'k') in
  Alcotest.(check bool) "write completes" true (Blkmq.wait mq w = None);
  let r = Blkmq.submit_read mq 3 in
  (match Blkmq.wait mq r with
  | Some data -> Alcotest.(check bool) "read returns write" true (Bytes.equal data (block_of_char 'k'))
  | None -> Alcotest.fail "read returned no data")

let test_blkmq_write_merging () =
  let d = mk_disk () in
  let mq = Blkmq.create ~nr_queues:1 (Device.of_disk d) in
  let _w1 = Blkmq.submit_write mq 5 (block_of_char 'a') in
  let _w2 = Blkmq.submit_write mq 5 (block_of_char 'b') in
  Blkmq.drain mq;
  Alcotest.(check bool) "last write wins" true (Bytes.equal (Disk.read d 5) (block_of_char 'b'));
  Alcotest.(check int) "one merge" 1 (Blkmq.stats mq).Blkmq.merged;
  Alcotest.(check int) "only one device write" 1 (Disk.writes d)

let test_blkmq_no_cross_block_merge () =
  let d = mk_disk () in
  let mq = Blkmq.create ~nr_queues:1 (Device.of_disk d) in
  ignore (Blkmq.submit_write mq 1 (block_of_char 'a'));
  ignore (Blkmq.submit_write mq 2 (block_of_char 'b'));
  Blkmq.drain mq;
  Alcotest.(check int) "no merges" 0 (Blkmq.stats mq).Blkmq.merged;
  Alcotest.(check int) "two writes" 2 (Disk.writes d)

let test_blkmq_stats_and_depth () =
  let d = mk_disk () in
  let mq = Blkmq.create ~nr_queues:2 ~batch:4 (Device.of_disk d) in
  let reqs = List.init 10 (fun i -> Blkmq.submit_read mq (i mod 8)) in
  Alcotest.(check int) "in flight before kick" 10 (Blkmq.in_flight mq);
  List.iter (fun r -> ignore (Blkmq.wait mq r)) reqs;
  let s = Blkmq.stats mq in
  Alcotest.(check int) "submitted" 10 s.Blkmq.submitted;
  Alcotest.(check int) "completed" 10 s.Blkmq.completed;
  Alcotest.(check bool) "max depth tracked" true (s.Blkmq.max_queue_depth >= 5);
  Alcotest.(check int) "drained" 0 (Blkmq.in_flight mq)

let test_blkmq_device_error_propagates () =
  let d = mk_disk () in
  let f = Fault.create [ Fault.Read_error { block = 0; from_nth = 1; count = 10 } ] in
  let mq = Blkmq.create (Fault.wrap f (Device.of_disk d)) in
  let r = Blkmq.submit_read mq 0 in
  (try ignore (Blkmq.wait mq r); Alcotest.fail "expected Io_error" with Device.Io_error _ -> ());
  Alcotest.(check bool) "marked failed" true (Blkmq.failed r)

(* ---- Crashsim ---- *)

let test_crashsim_buffering () =
  let d = mk_disk () in
  let sim, dev = Crashsim.create (Device.of_disk d) in
  Device.write dev 1 (block_of_char 'x');
  Alcotest.(check int) "buffered" 1 (Crashsim.pending sim);
  Alcotest.(check bool) "medium untouched" true (Bytes.equal (Disk.read d 1) (block_of_char '\000'));
  Alcotest.(check bool) "read sees buffer" true (Bytes.equal (Device.read dev 1) (block_of_char 'x'));
  Device.flush dev;
  Alcotest.(check int) "drained" 0 (Crashsim.pending sim);
  Alcotest.(check bool) "medium updated" true (Bytes.equal (Disk.read d 1) (block_of_char 'x'))

let test_crashsim_crash_loses_pending () =
  let d = mk_disk () in
  let sim, dev = Crashsim.create (Device.of_disk d) in
  Device.write dev 1 (block_of_char 'a');
  Device.flush dev;
  Device.write dev 1 (block_of_char 'b');
  Device.write dev 2 (block_of_char 'c');
  Crashsim.crash sim;
  Alcotest.(check bool) "flushed survives" true (Bytes.equal (Disk.read d 1) (block_of_char 'a'));
  Alcotest.(check bool) "pending lost" true (Bytes.equal (Disk.read d 2) (block_of_char '\000'))

let test_crashsim_partial_subset () =
  (* Partial crash applies a subset: each block ends up either old or new. *)
  let d = mk_disk () in
  let rng = Rae_util.Rng.create 7L in
  let sim, dev = Crashsim.create ~rng (Device.of_disk d) in
  for blk = 0 to 19 do
    Device.write dev blk (block_of_char 'n')
  done;
  Crashsim.crash_partial sim;
  let applied = ref 0 in
  for blk = 0 to 19 do
    let b = Disk.read d blk in
    let c = Bytes.get b 0 in
    Alcotest.(check bool) "old or new" true (c = 'n' || c = '\000');
    if c = 'n' then incr applied
  done;
  Alcotest.(check bool) "a strict subset applied" true (!applied > 0 && !applied < 20)

let test_crashsim_flush_ordering () =
  let d = mk_disk () in
  let sim, dev = Crashsim.create (Device.of_disk d) in
  Device.write dev 1 (block_of_char 'a');
  Device.write dev 1 (block_of_char 'b');
  Device.flush dev;
  Alcotest.(check bool) "last write wins on flush" true (Bytes.equal (Disk.read d 1) (block_of_char 'b'));
  Alcotest.(check int) "one flush" 1 (Crashsim.flushes sim)

let () =
  Alcotest.run "rae_block"
    [
      ( "disk",
        [
          Alcotest.test_case "read/write" `Quick test_disk_rw;
          Alcotest.test_case "read returns copy" `Quick test_disk_read_is_copy;
          Alcotest.test_case "bounds" `Quick test_disk_bounds;
          Alcotest.test_case "latency charges clock" `Quick test_disk_latency_clock;
          Alcotest.test_case "counters" `Quick test_disk_counters;
          Alcotest.test_case "snapshot/restore" `Quick test_disk_snapshot_restore;
          Alcotest.test_case "corrupt_byte" `Quick test_disk_corrupt_byte;
        ] );
      ( "device",
        [
          Alcotest.test_case "read_only enforced" `Quick test_device_read_only;
          Alcotest.test_case "counting wrapper" `Quick test_device_counting;
        ] );
      ( "fault",
        [
          Alcotest.test_case "read error window" `Quick test_fault_read_error_window;
          Alcotest.test_case "flip on read (transient)" `Quick test_fault_flip_on_read;
          Alcotest.test_case "stuck write" `Quick test_fault_stuck_write;
          Alcotest.test_case "torn write" `Quick test_fault_torn_write;
          Alcotest.test_case "probabilistic needs rng" `Quick test_fault_probabilistic_requires_rng;
          Alcotest.test_case "probabilistic rate" `Quick test_fault_probabilistic_rate;
        ] );
      ( "blkmq",
        [
          Alcotest.test_case "read/write" `Quick test_blkmq_read_write;
          Alcotest.test_case "write merging" `Quick test_blkmq_write_merging;
          Alcotest.test_case "no cross-block merge" `Quick test_blkmq_no_cross_block_merge;
          Alcotest.test_case "stats and depth" `Quick test_blkmq_stats_and_depth;
          Alcotest.test_case "device error propagates" `Quick test_blkmq_device_error_propagates;
        ] );
      ( "crashsim",
        [
          Alcotest.test_case "buffering" `Quick test_crashsim_buffering;
          Alcotest.test_case "crash loses pending" `Quick test_crashsim_crash_loses_pending;
          Alcotest.test_case "partial crash subset" `Quick test_crashsim_partial_subset;
          Alcotest.test_case "flush ordering" `Quick test_crashsim_flush_ordering;
        ] );
    ]
