(* Tests for rae_fsck: a fresh image is clean; every injected corruption
   class is detected with the right finding code. *)

open Rae_format
module Disk = Rae_block.Disk
module Device = Rae_block.Device
module Fsck = Rae_fsck.Fsck
module Types = Rae_vfs.Types

let bs = Layout.block_size

let mk_image ?(nblocks = 256) ?(ninodes = 64) () =
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks () in
  let dev = Device.of_disk disk in
  let sb = Result.get_ok (Mkfs.format dev ~ninodes ()) in
  (disk, dev, sb)

let has_code report code =
  List.exists (fun f -> f.Fsck.code = code) report.Fsck.findings

let check_finds ?(also_ok = false) disk code msg =
  let report = Fsck.check_device (Device.of_disk disk) in
  if also_ok then Alcotest.(check bool) (msg ^ ": still clean") true (Fsck.clean report)
  else Alcotest.(check bool) (msg ^ ": not clean") false (Fsck.clean report);
  Alcotest.(check bool)
    (Printf.sprintf "%s: finds %s" msg (Fsck.code_to_string code))
    true (has_code report code)

let test_fresh_image_clean () =
  let disk, _, _ = mk_image () in
  let report = Fsck.check_device (Device.of_disk disk) in
  Alcotest.(check bool) "clean" true (Fsck.clean report);
  Alcotest.(check (list string)) "no findings" []
    (List.map (fun f -> Format.asprintf "%a" Fsck.pp_finding f) report.Fsck.findings);
  Alcotest.(check int) "root walked" 1 report.Fsck.dirs_walked;
  Alcotest.(check int) "one inode" 1 report.Fsck.inodes_checked

let test_superblock_corruption () =
  let disk, _, _ = mk_image () in
  Disk.corrupt_byte disk ~block:0 ~offset:0 (fun _ -> 'X');
  check_finds disk Fsck.Sb_invalid "magic corrupted"

let test_superblock_count_drift () =
  let disk, dev, sb = mk_image () in
  let crafted = { sb with Superblock.free_blocks = sb.Superblock.free_blocks - 5 } in
  Device.write dev 0 (Superblock.encode crafted);
  check_finds disk Fsck.Count_mismatch "free count drift"

let test_inode_corruption () =
  let disk, _, sb = mk_image () in
  let g = sb.Superblock.geometry in
  (* Flip a byte in the root inode (inode table slot 0 of its block). *)
  Disk.corrupt_byte disk ~block:g.Layout.inode_table_start ~offset:8 (fun _ -> '\xff');
  check_finds disk Fsck.Inode_invalid "root inode corrupted"

let test_inode_bitmap_drift () =
  let disk, dev, sb = mk_image () in
  let g = sb.Superblock.geometry in
  (* Mark inode 5 allocated in the bitmap while its slot stays free. *)
  let b = Device.read dev g.Layout.inode_bitmap_start in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lor (1 lsl 5)));
  Device.write dev g.Layout.inode_bitmap_start b;
  check_finds disk Fsck.Ibmap_invalid "inode bitmap drift"

let test_dirent_corruption () =
  let disk, _, sb = mk_image () in
  let g = sb.Superblock.geometry in
  (* The root directory's data block: zero the rec_len of the first
     record — the classic crafted-image lockup shape. *)
  Disk.corrupt_byte disk ~block:g.Layout.data_start ~offset:4 (fun _ -> '\000');
  Disk.corrupt_byte disk ~block:g.Layout.data_start ~offset:5 (fun _ -> '\000');
  check_finds disk Fsck.Dirent_invalid "rec_len zero"

let test_dot_entry_mismatch () =
  let disk, _, sb = mk_image () in
  let g = sb.Superblock.geometry in
  (* "." entry of the root points to inode 1: scribble its ino to 2. *)
  Disk.corrupt_byte disk ~block:g.Layout.data_start ~offset:0 (fun _ -> '\002');
  check_finds disk Fsck.Dot_mismatch "dot points elsewhere"

let test_block_bitmap_leak () =
  let disk, dev, sb = mk_image () in
  let g = sb.Superblock.geometry in
  (* Mark a free data block as allocated; also fix sb counts so only the
     leak (a warning) plus count mismatch appear; leaks alone keep clean. *)
  let bbm_blk = g.Layout.block_bitmap_start in
  let target = g.Layout.data_start + 10 in
  let b = Device.read dev bbm_blk in
  Bytes.set b (target / 8) (Char.chr (Char.code (Bytes.get b (target / 8)) lor (1 lsl (target mod 8))));
  Device.write dev bbm_blk b;
  let crafted = { sb with Superblock.free_blocks = sb.Superblock.free_blocks - 1 } in
  Device.write dev 0 (Superblock.encode crafted);
  let report = Fsck.check_device (Device.of_disk disk) in
  Alcotest.(check bool) "leak found" true (has_code report Fsck.Bitmap_leak);
  Alcotest.(check bool) "leak is only a warning" true (Fsck.clean report)

let test_block_bitmap_missing () =
  let disk, dev, sb = mk_image () in
  let g = sb.Superblock.geometry in
  (* Clear the root directory block's bit. *)
  let bbm_blk = g.Layout.block_bitmap_start in
  let target = g.Layout.data_start in
  let b = Device.read dev bbm_blk in
  Bytes.set b (target / 8)
    (Char.chr (Char.code (Bytes.get b (target / 8)) land lnot (1 lsl (target mod 8)) land 0xFF));
  Device.write dev bbm_blk b;
  check_finds disk Fsck.Bitmap_missing "referenced block marked free"

(* Build a slightly richer image by hand: root + one file, to exercise
   nlink and pointer checks. *)
let with_file () =
  let disk, dev, sb = mk_image () in
  let g = sb.Superblock.geometry in
  let file_ino = 2 in
  let file_blk = g.Layout.data_start + 1 in
  (* File inode. *)
  let inode =
    {
      (Inode.empty Types.Regular ~mode:0o644 ~time:1L) with
      Inode.size = 5;
      direct = Array.init 12 (fun i -> if i = 0 then file_blk else 0);
    }
  in
  let iblk, ioff = Layout.inode_location g file_ino in
  let itable = Device.read dev iblk in
  Inode.encode inode ~ino:file_ino itable ~pos:ioff;
  Device.write dev iblk itable;
  (* Data. *)
  let data = Bytes.make bs '\000' in
  Bytes.blit_string "hello" 0 data 0 5;
  Device.write dev file_blk data;
  (* Directory entry in root. *)
  let root_blk = Device.read dev g.Layout.data_start in
  assert (Dirent.insert root_blk ~name:"f" ~ino:file_ino ~kind_code:(Types.kind_code Types.Regular));
  Device.write dev g.Layout.data_start root_blk;
  (* Bitmaps + superblock counts. *)
  let ibm_b = Device.read dev g.Layout.inode_bitmap_start in
  Bytes.set ibm_b 0 (Char.chr (Char.code (Bytes.get ibm_b 0) lor (1 lsl file_ino)));
  Device.write dev g.Layout.inode_bitmap_start ibm_b;
  let bbm_b = Device.read dev g.Layout.block_bitmap_start in
  Bytes.set bbm_b (file_blk / 8)
    (Char.chr (Char.code (Bytes.get bbm_b (file_blk / 8)) lor (1 lsl (file_blk mod 8))));
  Device.write dev g.Layout.block_bitmap_start bbm_b;
  let sb' =
    { sb with Superblock.free_blocks = sb.Superblock.free_blocks - 1;
      free_inodes = sb.Superblock.free_inodes - 1 }
  in
  Device.write dev 0 (Superblock.encode sb');
  (disk, dev, sb', g, file_ino, file_blk)

let test_hand_built_file_clean () =
  let disk, _, _, _, _, _ = with_file () in
  let report = Fsck.check_device (Device.of_disk disk) in
  Alcotest.(check (list string)) "no findings" []
    (List.map (fun f -> Format.asprintf "%a" Fsck.pp_finding f) report.Fsck.findings);
  Alcotest.(check int) "two inodes" 2 report.Fsck.inodes_checked

let test_nlink_mismatch () =
  let disk, dev, _, g, file_ino, _ = with_file () in
  (* Rewrite the file inode with nlink = 2 while only one entry refers. *)
  let iblk, ioff = Layout.inode_location g file_ino in
  let itable = Device.read dev iblk in
  let inode = Result.get_ok (Inode.decode itable ~pos:ioff ~ino:file_ino) in
  Inode.encode { inode with Inode.nlink = 2 } ~ino:file_ino itable ~pos:ioff;
  Device.write dev iblk itable;
  check_finds disk Fsck.Nlink_mismatch "nlink too high"

let test_unreachable_inode () =
  let disk, dev, _, g, file_ino, _ = with_file () in
  (* Remove the directory entry but keep the inode allocated. *)
  let root_blk = Device.read dev g.Layout.data_start in
  assert (Dirent.remove root_blk "f");
  Device.write dev g.Layout.data_start root_blk;
  ignore file_ino;
  check_finds disk Fsck.Unreachable_inode "entry removed, inode kept"

let test_orphan_inode_warning () =
  let disk, dev, _, g, file_ino, _ = with_file () in
  (* nlink = 0 + no entry: a legitimate crash leftover, warning only.
     Note: nlink 0 inodes fail strict decode, so fsck reports the slot as
     invalid instead.  Craft it with nlink 0 via decode_nocheck/encode. *)
  let root_blk = Device.read dev g.Layout.data_start in
  assert (Dirent.remove root_blk "f");
  Device.write dev g.Layout.data_start root_blk;
  let iblk, ioff = Layout.inode_location g file_ino in
  let itable = Device.read dev iblk in
  let inode = Inode.decode_nocheck itable ~pos:ioff in
  Inode.encode { inode with Inode.nlink = 0 } ~ino:file_ino itable ~pos:ioff;
  Device.write dev iblk itable;
  let report = Fsck.check_device (Device.of_disk disk) in
  (* nlink=0 fails Inode.decode's field validation: accept either the
     orphan warning or the invalid-inode error, but the image must not be
     reported fully clean. *)
  Alcotest.(check bool) "flagged" true
    (has_code report Fsck.Orphan_inode || has_code report Fsck.Inode_invalid)

let test_bad_pointer () =
  let disk, dev, _, g, file_ino, _ = with_file () in
  let iblk, ioff = Layout.inode_location g file_ino in
  let itable = Device.read dev iblk in
  let inode = Result.get_ok (Inode.decode itable ~pos:ioff ~ino:file_ino) in
  let direct = Array.copy inode.Inode.direct in
  direct.(0) <- 3 (* a metadata block *);
  Inode.encode { inode with Inode.direct } ~ino:file_ino itable ~pos:ioff;
  Device.write dev iblk itable;
  check_finds disk Fsck.Bad_pointer "pointer into metadata"

let test_double_referenced_block () =
  let disk, dev, _, g, file_ino, file_blk = with_file () in
  (* Point a second logical block at the same physical block. *)
  let iblk, ioff = Layout.inode_location g file_ino in
  let itable = Device.read dev iblk in
  let inode = Result.get_ok (Inode.decode itable ~pos:ioff ~ino:file_ino) in
  let direct = Array.copy inode.Inode.direct in
  direct.(1) <- file_blk;
  Inode.encode { inode with Inode.direct; size = 2 * bs } ~ino:file_ino itable ~pos:ioff;
  Device.write dev iblk itable;
  check_finds disk Fsck.Double_ref "same block twice"

let test_dir_size_unaligned () =
  let disk, dev, _, g, _, _ = with_file () in
  let iblk, ioff = Layout.inode_location g 1 in
  let itable = Device.read dev iblk in
  let root = Result.get_ok (Inode.decode itable ~pos:ioff ~ino:1) in
  Inode.encode { root with Inode.size = 100 } ~ino:1 itable ~pos:ioff;
  Device.write dev iblk itable;
  check_finds disk Fsck.Size_invalid "dir size unaligned"

let test_io_error_during_check () =
  let disk, _, _ = mk_image () in
  let fault =
    Rae_block.Fault.create [ Rae_block.Fault.Read_error { block = 0; from_nth = 1; count = 100 } ]
  in
  let dev = Rae_block.Fault.wrap fault (Device.of_disk disk) in
  let report = Fsck.check_device dev in
  Alcotest.(check bool) "not clean" false (Fsck.clean report)

let prop_random_corruption_never_crashes =
  (* Fuzz: arbitrary single-byte corruptions anywhere on the image must
     never make fsck raise — it reports findings instead.  (It MAY still
     report clean when the byte lands in a don't-care region.) *)
  QCheck2.Test.make ~name:"fsck total on corrupt images" ~count:150
    QCheck2.Gen.(pair (int_bound 255) (pair (int_bound (bs - 1)) (int_bound 255)))
    (fun (blk, (off, v)) ->
      let disk, _, _, _, _, _ = with_file () in
      let blk = blk mod Disk.nblocks disk in
      Disk.corrupt_byte disk ~block:blk ~offset:off (fun _ -> Char.chr v);
      let report = Fsck.check_device (Device.of_disk disk) in
      ignore report.Fsck.findings;
      true)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rae_fsck"
    [
      ( "clean",
        [
          Alcotest.test_case "fresh image" `Quick test_fresh_image_clean;
          Alcotest.test_case "hand-built file image" `Quick test_hand_built_file_clean;
        ] );
      ( "detection",
        [
          Alcotest.test_case "superblock corruption" `Quick test_superblock_corruption;
          Alcotest.test_case "count drift" `Quick test_superblock_count_drift;
          Alcotest.test_case "inode corruption" `Quick test_inode_corruption;
          Alcotest.test_case "inode bitmap drift" `Quick test_inode_bitmap_drift;
          Alcotest.test_case "dirent rec_len 0" `Quick test_dirent_corruption;
          Alcotest.test_case "dot mismatch" `Quick test_dot_entry_mismatch;
          Alcotest.test_case "block bitmap leak (warn)" `Quick test_block_bitmap_leak;
          Alcotest.test_case "block bitmap missing" `Quick test_block_bitmap_missing;
          Alcotest.test_case "nlink mismatch" `Quick test_nlink_mismatch;
          Alcotest.test_case "unreachable inode" `Quick test_unreachable_inode;
          Alcotest.test_case "orphan inode" `Quick test_orphan_inode_warning;
          Alcotest.test_case "bad pointer" `Quick test_bad_pointer;
          Alcotest.test_case "double-referenced block" `Quick test_double_referenced_block;
          Alcotest.test_case "dir size unaligned" `Quick test_dir_size_unaligned;
          Alcotest.test_case "io errors reported" `Quick test_io_error_during_check;
        ] );
      ("fuzz", [ q prop_random_corruption_never_crashes ]);
    ]
