(* Tests for fsck repair (preen): each repairable damage class is fixed
   and verified; structural damage is refused. *)

open Rae_format
module Disk = Rae_block.Disk
module Device = Rae_block.Device
module Fsck = Rae_fsck.Fsck
module Repair = Rae_fsck.Repair
module Base = Rae_basefs.Base
module Types = Rae_vfs.Types

let p = Rae_vfs.Path.parse_exn
let ok = Result.get_ok
let bs = Layout.block_size

(* A populated, clean image built through the base filesystem. *)
let populated_image () =
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks:1024 () in
  let dev = Device.of_disk disk in
  ignore (ok (Base.mkfs dev ~ninodes:128 ()));
  let b = ok (Base.mount dev) in
  ignore (ok (Base.mkdir b (p "/d") ~mode:0o755));
  let fd = ok (Base.openf b (p "/d/file") Types.flags_create) in
  ignore (ok (Base.pwrite b fd ~off:0 (String.make 5000 'x')));
  ignore (ok (Base.close b fd));
  ignore (ok (Base.link b (p "/d/file") (p "/d/link")));
  ignore (ok (Base.unmount b));
  (disk, dev)

let geometry dev =
  (ok (Reader.attach (fun blk -> Device.read dev blk))).Reader.sb.Superblock.geometry

let rewrite_inode dev ino f =
  let g = geometry dev in
  let blk, pos = Layout.inode_location g ino in
  let b = Device.read dev blk in
  let inode = ok (Inode.decode b ~pos ~ino) in
  Inode.encode (f inode) ~ino b ~pos;
  Device.write dev blk b

let test_clean_image_no_actions () =
  let _disk, dev = populated_image () in
  match Repair.repair dev with
  | Ok [] -> ()
  | Ok actions ->
      Alcotest.failf "unexpected actions on a clean image: %s"
        (String.concat "; " (List.map (Format.asprintf "%a" Repair.pp_action) actions))
  | Error msg -> Alcotest.failf "repair failed: %s" msg

let test_fix_free_counts () =
  let _disk, dev = populated_image () in
  let sb = ok (Superblock.decode (Device.read dev 0)) in
  Device.write dev 0
    (Superblock.encode { sb with Superblock.free_blocks = sb.Superblock.free_blocks - 3 });
  Alcotest.(check bool) "broken before" false (Fsck.clean (Fsck.check_device dev));
  (match Repair.repair dev with
  | Ok actions ->
      Alcotest.(check bool) "count fix reported" true
        (List.exists (function Repair.Fixed_free_counts _ -> true | _ -> false) actions)
  | Error msg -> Alcotest.failf "repair failed: %s" msg);
  Alcotest.(check bool) "clean after" true (Fsck.clean (Fsck.check_device dev))

let test_release_orphan () =
  let _disk, dev = populated_image () in
  let g = geometry dev in
  (* Fabricate an orphan: allocate inode 10 with nlink 0 + a data block. *)
  let data_blk = g.Layout.data_start + 50 in
  let inode =
    {
      (Inode.empty Types.Regular ~mode:0o644 ~time:1L) with
      Inode.nlink = 0;
      size = 100;
      direct = Array.init 12 (fun i -> if i = 0 then data_blk else 0);
    }
  in
  let blk, pos = Layout.inode_location g 10 in
  let b = Device.read dev blk in
  Inode.encode inode ~ino:10 b ~pos;
  Device.write dev blk b;
  (* Mark it allocated (inode bitmap + block bitmap + counts). *)
  let ib = Device.read dev g.Layout.inode_bitmap_start in
  Bytes.set ib (10 / 8) (Char.chr (Char.code (Bytes.get ib (10 / 8)) lor (1 lsl (10 mod 8))));
  Device.write dev g.Layout.inode_bitmap_start ib;
  let bb = Device.read dev g.Layout.block_bitmap_start in
  Bytes.set bb (data_blk / 8)
    (Char.chr (Char.code (Bytes.get bb (data_blk / 8)) lor (1 lsl (data_blk mod 8))));
  Device.write dev g.Layout.block_bitmap_start bb;
  let sb = ok (Superblock.decode (Device.read dev 0)) in
  Device.write dev 0
    (Superblock.encode
       { sb with Superblock.free_inodes = sb.Superblock.free_inodes - 1;
         free_blocks = sb.Superblock.free_blocks - 1 });
  (match Repair.repair dev with
  | Ok actions ->
      Alcotest.(check bool) "orphan released" true
        (List.exists
           (function Repair.Released_orphan { ino = 10; blocks_freed = 1 } -> true | _ -> false)
           actions)
  | Error msg -> Alcotest.failf "repair failed: %s" msg);
  Alcotest.(check bool) "clean after" true (Fsck.clean (Fsck.check_device dev))

let test_release_unreachable () =
  let _disk, dev = populated_image () in
  (* Remove the directory entries for /d/file and /d/link while keeping
     the inode allocated: an unreachable inode with nlink 2. *)
  let g = geometry dev in
  (* Find /d's dir block: read root, find "d", read its inode. *)
  let reader = ok (Reader.attach (fun blk -> Device.read dev blk)) in
  let root = ok (Reader.read_inode reader 1) in
  let root_blk = ok (Reader.read_file_block reader root 0) in
  let d_ino =
    match Dirent.find root_blk "d" with
    | Some (Ok e) -> e.Dirent.ino
    | _ -> Alcotest.fail "no /d"
  in
  let d_inode = ok (Reader.read_inode reader d_ino) in
  let d_blk_phys = ok (Reader.file_block reader d_inode 0) in
  let d_blk = Device.read dev d_blk_phys in
  Alcotest.(check bool) "removed file" true (Dirent.remove d_blk "file");
  Alcotest.(check bool) "removed link" true (Dirent.remove d_blk "link");
  Device.write dev d_blk_phys d_blk;
  ignore g;
  Alcotest.(check bool) "broken before" false (Fsck.clean (Fsck.check_device dev));
  (match Repair.repair dev with
  | Ok actions ->
      Alcotest.(check bool) "unreachable released" true
        (List.exists
           (function Repair.Released_unreachable { nlink = 2; _ } -> true | _ -> false)
           actions)
  | Error msg -> Alcotest.failf "repair failed: %s" msg);
  Alcotest.(check bool) "clean after" true (Fsck.clean (Fsck.check_device dev))

let test_fix_nlink () =
  let _disk, dev = populated_image () in
  (* /d/file has nlink 2 (a hard link exists); forge nlink 5. *)
  let reader = ok (Reader.attach (fun blk -> Device.read dev blk)) in
  let root = ok (Reader.read_inode reader 1) in
  let root_blk = ok (Reader.read_file_block reader root 0) in
  let d_ino =
    match Dirent.find root_blk "d" with Some (Ok e) -> e.Dirent.ino | _ -> Alcotest.fail "no /d"
  in
  let d_inode = ok (Reader.read_inode reader d_ino) in
  let d_blk = ok (Reader.read_file_block reader d_inode 0) in
  let file_ino =
    match Dirent.find d_blk "file" with Some (Ok e) -> e.Dirent.ino | _ -> Alcotest.fail "no file"
  in
  rewrite_inode dev file_ino (fun i -> { i with Inode.nlink = 5 });
  (match Repair.repair dev with
  | Ok actions ->
      Alcotest.(check bool) "nlink fixed to 2" true
        (List.exists
           (function Repair.Fixed_nlink { was = 5; now = 2; _ } -> true | _ -> false)
           actions)
  | Error msg -> Alcotest.failf "repair failed: %s" msg);
  Alcotest.(check bool) "clean after" true (Fsck.clean (Fsck.check_device dev))

let test_free_leaked_block () =
  let _disk, dev = populated_image () in
  let g = geometry dev in
  let leak = g.Layout.data_start + 70 in
  let bb = Device.read dev g.Layout.block_bitmap_start in
  Bytes.set bb (leak / 8) (Char.chr (Char.code (Bytes.get bb (leak / 8)) lor (1 lsl (leak mod 8))));
  Device.write dev g.Layout.block_bitmap_start bb;
  let sb = ok (Superblock.decode (Device.read dev 0)) in
  Device.write dev 0
    (Superblock.encode { sb with Superblock.free_blocks = sb.Superblock.free_blocks - 1 });
  (match Repair.repair dev with
  | Ok actions ->
      Alcotest.(check bool) "leak freed" true
        (List.exists (function Repair.Freed_leaked_block b -> b = leak | _ -> false) actions)
  | Error msg -> Alcotest.failf "repair failed: %s" msg);
  Alcotest.(check bool) "clean after" true (Fsck.clean (Fsck.check_device dev))

let test_refuses_structural_damage () =
  let disk, dev = populated_image () in
  let g = geometry dev in
  (* Malform the root directory block: no unique safe fix. *)
  Disk.corrupt_byte disk ~block:g.Layout.data_start ~offset:4 (fun _ -> '\000');
  Disk.corrupt_byte disk ~block:g.Layout.data_start ~offset:5 (fun _ -> '\000');
  match Repair.repair dev with
  | Error _ -> ()
  | Ok actions ->
      Alcotest.failf "repaired the unrepairable: %s"
        (String.concat "; " (List.map (Format.asprintf "%a" Repair.pp_action) actions))

let test_repair_after_partial_crash () =
  (* Crash-partial leftovers (orphans, leaks) must be preen-able. *)
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks:2048 () in
  let raw = Device.of_disk disk in
  ignore (ok (Base.mkfs raw ~ninodes:256 ()));
  let sim, dev = Rae_block.Crashsim.create ~rng:(Rae_util.Rng.create 3L) raw in
  let b = ok (Base.mount ~config:{ Base.default_config with Base.commit_interval = 8 } dev) in
  let ops = Rae_workload.Workload.ops Rae_workload.Workload.Varmail (Rae_util.Rng.create 3L) ~count:200 in
  List.iteri (fun i op -> if i < 150 then ignore (Base.exec b op)) ops;
  Rae_block.Crashsim.crash_partial sim;
  (* Journal replay via a fresh mount, then unmount cleanly. *)
  let b2 = ok (Base.mount raw) in
  ignore (ok (Base.unmount b2));
  (match Repair.repair raw with
  | Ok _actions -> ()
  | Error msg -> Alcotest.failf "repair failed: %s" msg);
  Alcotest.(check bool) "clean after preen" true (Fsck.clean (Fsck.check_device raw))

let () =
  Alcotest.run "rae_repair"
    [
      ( "repair",
        [
          Alcotest.test_case "clean image: no actions" `Quick test_clean_image_no_actions;
          Alcotest.test_case "free counts" `Quick test_fix_free_counts;
          Alcotest.test_case "orphan released" `Quick test_release_orphan;
          Alcotest.test_case "unreachable released" `Quick test_release_unreachable;
          Alcotest.test_case "nlink fixed" `Quick test_fix_nlink;
          Alcotest.test_case "leaked block freed" `Quick test_free_leaked_block;
          Alcotest.test_case "refuses structural damage" `Quick test_refuses_structural_damage;
          Alcotest.test_case "preen after crash" `Quick test_repair_after_partial_crash;
        ] );
    ]
