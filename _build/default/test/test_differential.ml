(* Tests for rae_core's differential-testing harness (paper §4.3's testing
   phase): healthy implementations agree; seeded bugs are localized. *)

open Rae_vfs
module D = Rae_core.Differential
module Bug_registry = Rae_basefs.Bug_registry
module W = Rae_workload.Workload

let p = Path.parse_exn

let test_agreement_uniform () =
  List.iter
    (fun seed ->
      let r = D.run_seeded ~count:600 ~seed () in
      if not (D.agreement r) then
        Alcotest.failf "disagreement (seed %Ld): %s" seed (Format.asprintf "%a" D.pp_result r);
      Alcotest.(check int) "all ops ran" 600 r.D.ops_run)
    [ 1L; 2L; 3L ]

let test_agreement_profiles () =
  List.iter
    (fun profile ->
      let r = D.run_seeded ~count:400 ~profile ~seed:5L () in
      if not (D.agreement r) then
        Alcotest.failf "%s disagreement: %s" (W.profile_name profile)
          (Format.asprintf "%a" D.pp_result r))
    W.all_profiles

let prop_agreement =
  QCheck2.Test.make ~name:"base and shadow agree on random traces" ~count:20
    QCheck2.Gen.(pair ui64 (int_range 30 200))
    (fun (seed, count) -> D.agreement (D.run_seeded ~count ~seed ()))

let arm id = Bug_registry.arm (Option.to_list (Bug_registry.find id))

let test_wrong_result_bug_localized () =
  (* The wrong-result bug: the harness must pinpoint the exact op. *)
  let ops =
    [ Op.Create (p "/f", 0o644) ]
    @ List.init 20 (fun _ -> Op.Stat (p "/f"))
  in
  let r = D.run ~bugs:(arm "stat-size-skew") ops in
  Alcotest.(check int) "one mismatch" 1 (List.length r.D.mismatches);
  (match r.D.mismatches with
  | [ m ] ->
      Alcotest.(check int) "at the 20th stat" 20 m.D.m_index;
      Alcotest.(check bool) "it is a stat" true (Op.kind m.D.m_op = Op.K_stat)
  | _ -> Alcotest.fail "expected exactly one mismatch");
  Alcotest.(check bool) "flagged as disagreement" false (D.agreement r)

let test_base_crash_reported () =
  let ops = [ Op.Mkdir (p "/d", 0o755); Op.Create (p "/d/pwn", 0o644); Op.Stat (p "/d") ] in
  let r = D.run ~bugs:(arm "crafted-name-panic") ops in
  Alcotest.(check bool) "base crash captured" true (r.D.base_crashed <> None);
  Alcotest.(check int) "stopped at the crash" 1 r.D.ops_run;
  Alcotest.(check bool) "not agreement" false (D.agreement r)

let test_silent_corruption_diverges_state () =
  (* The free-count corruption is internal only — API outcomes stay equal —
     but forcing a sync makes the base's validation fire, which the harness
     reports as a crash. *)
  let ops =
    List.init 30 (fun i -> Op.Create (p (Printf.sprintf "/f%02d" i), 0o644)) @ [ Op.Sync ]
  in
  let r = D.run ~bugs:(arm "mballoc-freecount") ops in
  Alcotest.(check bool) "caught via validation or mismatch" true
    (r.D.base_crashed <> None || not r.D.final_state_equal || r.D.mismatches <> [])

let test_pp_result_renders () =
  let r = D.run_seeded ~count:50 ~seed:9L () in
  Alcotest.(check bool) "prints" true (String.length (Format.asprintf "%a" D.pp_result r) > 0)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rae_differential"
    [
      ( "agreement",
        [
          Alcotest.test_case "uniform traces" `Quick test_agreement_uniform;
          Alcotest.test_case "profile traces" `Quick test_agreement_profiles;
          q prop_agreement;
        ] );
      ( "bug hunting",
        [
          Alcotest.test_case "wrong result localized" `Quick test_wrong_result_bug_localized;
          Alcotest.test_case "base crash reported" `Quick test_base_crash_reported;
          Alcotest.test_case "silent corruption surfaces" `Quick test_silent_corruption_diverges_state;
          Alcotest.test_case "rendering" `Quick test_pp_result_renders;
        ] );
    ]
