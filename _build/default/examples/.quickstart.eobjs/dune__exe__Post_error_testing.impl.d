examples/post_error_testing.ml: Errno Format List Path Printf Rae_basefs Rae_block Rae_core Rae_format Rae_vfs Result Types
