examples/varmail_recovery.mli:
