examples/varmail_recovery.ml: Format List Op Printf Rae_basefs Rae_block Rae_core Rae_format Rae_fsck Rae_specfs Rae_util Rae_vfs Rae_workload Result String
