examples/quickstart.ml: Errno Format Option Path Printf Rae_basefs Rae_block Rae_core Rae_format Rae_fsck Rae_vfs Result String Types
