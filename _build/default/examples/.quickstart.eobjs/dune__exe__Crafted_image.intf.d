examples/crafted_image.mli:
