examples/quickstart.mli:
