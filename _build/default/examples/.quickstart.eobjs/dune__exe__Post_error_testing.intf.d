examples/post_error_testing.mli:
