examples/crafted_image.ml: Errno Format Op Path Printf Rae_basefs Rae_block Rae_core Rae_format Rae_fsck Rae_shadowfs Rae_vfs Result
