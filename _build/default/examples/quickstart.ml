(* Quickstart: create a filesystem, wrap it in the RAE controller, use the
   POSIX-like API, and watch one injected kernel-style bug get masked.

   Run with:  dune exec examples/quickstart.exe *)

open Rae_vfs
module Base = Rae_basefs.Base
module Controller = Rae_core.Controller
module Bug_registry = Rae_basefs.Bug_registry

let p = Path.parse_exn
let ok = Result.get_ok

let () =
  (* 1. A simulated 32 MiB block device. *)
  let disk =
    Rae_block.Disk.create ~block_size:Rae_format.Layout.block_size ~nblocks:8192 ()
  in
  let dev = Rae_block.Device.of_disk disk in

  (* 2. mkfs + mount the performance-oriented base filesystem.  We arm one
     bug from the catalog: a NULL-dereference analogue that fires whenever
     a path mentions the component "pwn" (the crafted-input class). *)
  ok (Base.mkfs dev ~ninodes:1024 ());
  let bugs = Bug_registry.arm (Option.to_list (Bug_registry.find "crafted-name-panic")) in
  let base = ok (Base.mount ~bugs dev) in

  (* 3. Wrap it in the RAE controller: same API, transparent recovery. *)
  let fs = Controller.make ~device:dev base in

  (* 4. Ordinary filesystem work. *)
  ignore (ok (Controller.mkdir fs (p "/projects") ~mode:0o755));
  let fd = ok (Controller.openf fs (p "/projects/notes.txt") Types.flags_create) in
  ignore (ok (Controller.pwrite fs fd ~off:0 "shadow filesystems are neat\n"));
  ignore (ok (Controller.close fs fd));
  Printf.printf "wrote /projects/notes.txt\n";

  (* 5. This operation would crash a kernel filesystem: the armed bug
     panics the base.  RAE reboots the base in place, replays the recorded
     window on the shadow, hands the state back, and returns the correct
     result — the application never notices. *)
  (match Controller.create fs (p "/projects/pwn") ~mode:0o644 with
  | Ok ino -> Printf.printf "created /projects/pwn (ino %d) despite a base panic\n" ino
  | Error e -> Printf.printf "unexpected error: %s\n" (Errno.to_string e));

  (* 6. Proof of life: everything is still there and consistent. *)
  let names = ok (Controller.readdir fs (p "/projects")) in
  Printf.printf "/projects contains: %s\n" (String.concat ", " names);
  let fd = ok (Controller.openf fs (p "/projects/notes.txt") Types.flags_ro) in
  Printf.printf "notes.txt: %s" (ok (Controller.pread fs fd ~off:0 ~len:100));
  ignore (ok (Controller.close fs fd));

  let stats = Controller.stats fs in
  Printf.printf "recoveries: %d, recorded window now: %d ops\n" stats.Controller.recoveries
    stats.Controller.window;
  (match Controller.last_recovery fs with
  | Some r -> Format.printf "%a@." Rae_core.Report.pp_recovery r
  | None -> ());

  ignore (ok (Controller.sync fs));
  let report = Rae_fsck.Fsck.check_device dev in
  Printf.printf "final fsck: %s\n" (if Rae_fsck.Fsck.clean report then "clean" else "ERRORS")
