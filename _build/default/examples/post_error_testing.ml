(* The shadow as a post-error testing tool (paper §4.3): "running the
   shadow is an effective way to stress the bug in the base, as the
   sequence and outputs are recorded...  Disagreements between the base
   and shadow indicate bugs in the base or missing conditions in the
   shadow.  Either way, reporting the discrepancies is necessary."

   Here the base carries a wrong-result bug: the 20th stat returns a size
   off by one.  Nothing detects it in-line — no panic, no warning, no
   failed validation.  When an unrelated recovery later replays the
   recorded window through the shadow, the constrained-mode cross-check
   exposes the lie, with the exact operation and both answers.

   Run with:  dune exec examples/post_error_testing.exe *)

open Rae_vfs
module Base = Rae_basefs.Base
module Bug_registry = Rae_basefs.Bug_registry
module Controller = Rae_core.Controller
module Report = Rae_core.Report

let p = Path.parse_exn
let ok = Result.get_ok

let () =
  let disk =
    Rae_block.Disk.create ~block_size:Rae_format.Layout.block_size ~nblocks:4096 ()
  in
  let dev = Rae_block.Device.of_disk disk in
  ok (Base.mkfs dev ~ninodes:512 ());
  let bugs =
    Bug_registry.arm
      (List.filter_map Bug_registry.find [ "stat-size-skew"; "crafted-name-panic" ])
  in
  let base = ok (Base.mount ~bugs dev) in
  let fs = Controller.make ~device:dev base in

  let fd = ok (Controller.openf fs (p "/report.txt") Types.flags_create) in
  ignore (ok (Controller.pwrite fs fd ~off:0 "12345"));
  ignore (ok (Controller.close fs fd));

  Printf.printf "stat sizes observed by the application:\n  ";
  for i = 1 to 20 do
    match Controller.stat fs (p "/report.txt") with
    | Ok st -> Printf.printf "%d%s" st.Types.st_size (if i = 20 then "\n" else " ")
    | Error e -> Printf.printf "(%s) " (Errno.to_string e)
  done;
  Printf.printf "  (the 20th answer is wrong — and nothing noticed)\n\n";
  Printf.printf "recoveries so far: %d, discrepancies so far: %d\n"
    (Controller.stats fs).Controller.recoveries
    (Controller.stats fs).Controller.discrepancies;

  Printf.printf "\nNow an unrelated operation panics the base and forces a recovery...\n";
  ignore (Controller.create fs (p "/pwn") ~mode:0o644);

  Printf.printf "\ndiscrepancy reports from the constrained-mode cross-check:\n";
  List.iter
    (fun d -> Format.printf "  %a@." Report.pp_discrepancy d)
    (Controller.discrepancies fs);
  match Controller.discrepancies fs with
  | [] -> Printf.printf "(none — unexpected)\n"
  | _ :: _ ->
      Printf.printf
        "\n=> The recorded outputs doubled as a regression test against the verified\n\
         shadow: a silent wrong-result bug in the base became a concrete, replayable\n\
         bug report.\n"
