(* Crafted-image attack: the bug class the paper's study highlights —
   "a user mounts a crafted disk image and issues operations to trigger a
   null-pointer dereference or use-after-free in the kernel; such images
   can bypass FSCK" (§2.1).

   This example shows the three players:
   - the base's trusting fast path crashes on the crafted directory block
     (as the kernel does);
   - the shadow's validating reads refuse it with a typed violation;
   - under RAE the process survives: the controller degrades to EIO
     instead of dying, because the shadow's fsck rejects the image as an
     unrecoverable S0.

   Run with:  dune exec examples/crafted_image.exe *)

open Rae_vfs
module Base = Rae_basefs.Base
module Shadow = Rae_shadowfs.Shadow
module Controller = Rae_core.Controller
module Detector = Rae_basefs.Detector
module Layout = Rae_format.Layout

let p = Path.parse_exn
let ok = Result.get_ok

let craft_image () =
  let disk = Rae_block.Disk.create ~block_size:Layout.block_size ~nblocks:2048 () in
  let dev = Rae_block.Device.of_disk disk in
  ok (Base.mkfs dev ~ninodes:256 ());
  (* Put some innocent content on it. *)
  let b = ok (Base.mount dev) in
  ignore (ok (Base.create b (p "/readme") ~mode:0o644));
  ignore (ok (Base.unmount b));
  (* The attack: zero the rec_len of the first record in the root
     directory block — the classic lockup/oops shape.  Note the dirent
     area carries no checksum (as in ext2/ext4 without metadata_csum for
     dirents), so this image still "looks" fine superficially. *)
  let g =
    (ok (Rae_format.Reader.attach (fun blk -> Rae_block.Disk.read disk blk)))
      .Rae_format.Reader.sb.Rae_format.Superblock.geometry
  in
  Rae_block.Disk.corrupt_byte disk ~block:g.Layout.data_start ~offset:4 (fun _ -> '\000');
  Rae_block.Disk.corrupt_byte disk ~block:g.Layout.data_start ~offset:5 (fun _ -> '\000');
  (disk, dev)

let () =
  Printf.printf "== 1. What fsck says about the crafted image ==\n";
  let _disk, dev = craft_image () in
  let report = Rae_fsck.Fsck.check_device dev in
  Format.printf "%a@." Rae_fsck.Fsck.pp_report report;

  Printf.printf "\n== 2. The base filesystem's trusting fast path ==\n";
  let _disk2, dev2 = craft_image () in
  let base = ok (Base.mount dev2) in
  (match Base.exec base (Op.Lookup (p "/readme")) with
  | exception Detector.Base_bug { bug; msg } ->
      Printf.printf "base OOPSed (kernel crash analogue): [%s] %s\n" bug msg
  | outcome -> Format.printf "base returned %a (unexpected)@." Op.pp_outcome outcome);

  Printf.printf "\n== 3. The shadow's validating read path ==\n";
  let _disk3, dev3 = craft_image () in
  let shadow = ok (Shadow.attach dev3) in
  (match Shadow.lookup shadow (p "/readme") with
  | exception Shadow.Violation msg -> Printf.printf "shadow refused safely: %s\n" msg
  | Ok _ | Error _ -> Printf.printf "shadow returned a result (unexpected)\n");

  Printf.printf "\n== 4. The same attack under the RAE controller ==\n";
  let _disk4, dev4 = craft_image () in
  let base4 = ok (Base.mount dev4) in
  let ctl = Controller.make ~device:dev4 base4 in
  (match Controller.lookup ctl (p "/readme") with
  | Error Errno.EIO ->
      Printf.printf "application got EIO — ugly, but the \"machine\" did not crash.\n"
  | Ok ino -> Printf.printf "lookup -> ino %d (unexpected)\n" ino
  | Error e -> Printf.printf "lookup -> %s\n" (Errno.to_string e));
  (match Controller.degraded ctl with
  | Some reason -> Printf.printf "controller degraded with reason: %s\n" reason
  | None -> Printf.printf "controller still healthy\n");
  match Controller.last_recovery ctl with
  | Some r -> Format.printf "%a@." Rae_core.Report.pp_recovery r
  | None -> ()
