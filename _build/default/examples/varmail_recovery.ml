(* A mail-server day in the life: a varmail workload (create / append /
   fsync / read / delete) runs over a base filesystem with several real
   ext4 bug classes armed.  The application-visible story: every operation
   keeps returning POSIX-correct results while RAE masks panics, hangs and
   silent corruption under the hood.

   Run with:  dune exec examples/varmail_recovery.exe *)

open Rae_vfs
module Base = Rae_basefs.Base
module Bug_registry = Rae_basefs.Bug_registry
module Controller = Rae_core.Controller
module Report = Rae_core.Report
module Spec = Rae_specfs.Spec
module W = Rae_workload.Workload

let ok = Result.get_ok

let () =
  let disk =
    Rae_block.Disk.create ~block_size:Rae_format.Layout.block_size ~nblocks:8192 ()
  in
  let dev = Rae_block.Device.of_disk disk in
  ok (Base.mkfs dev ~ninodes:1024 ());
  let bug_ids = [ "orphan-close-uaf"; "fsync-deadlock"; "mballoc-freecount" ] in
  let bugs =
    Bug_registry.arm ~rng:(Rae_util.Rng.create 1L) (List.filter_map Bug_registry.find bug_ids)
  in
  let base =
    ok (Base.mount ~config:{ Base.default_config with Base.commit_interval = 16 } ~bugs dev)
  in
  let fs = Controller.make ~device:dev base in
  Printf.printf "armed bugs: %s\n\n" (String.concat ", " bug_ids);

  (* The oracle runs beside the real system: every outcome is compared. *)
  let oracle = Spec.make () in
  let ops = W.ops W.Varmail (Rae_util.Rng.create 2024L) ~count:3000 in
  let mismatches = ref 0 in
  let recoveries_seen = ref 0 in
  List.iteri
    (fun i op ->
      let expected = Spec.exec oracle op in
      let got = Controller.exec fs op in
      if not (Op.outcome_equal expected got) then begin
        incr mismatches;
        Format.printf "MISMATCH at op %d %a: expected %a, got %a@." i Op.pp op Op.pp_outcome
          expected Op.pp_outcome got
      end;
      let s = Controller.stats fs in
      if s.Controller.recoveries > !recoveries_seen then begin
        recoveries_seen := s.Controller.recoveries;
        match Controller.last_recovery fs with
        | Some r ->
            Printf.printf "op %5d: recovery #%d triggered by %s — window %d, %.2f ms\n" i
              s.Controller.recoveries
              (Report.trigger_to_string r.Report.r_trigger)
              r.Report.r_window
              (r.Report.r_wall_seconds *. 1000.)
        | None -> ()
      end)
    ops;

  let s = Controller.stats fs in
  Printf.printf "\n%d operations, %d recoveries, %d spec mismatches\n" s.Controller.ops
    s.Controller.recoveries !mismatches;
  Printf.printf "oplog: %d recorded over the run, high-water window %d\n"
    s.Controller.total_recorded s.Controller.max_window;
  ignore (Controller.sync fs);
  Printf.printf "final fsck: %s\n"
    (if Rae_fsck.Fsck.clean (Rae_fsck.Fsck.check_device dev) then "clean" else "ERRORS");
  if !mismatches = 0 && s.Controller.recoveries > 0 then
    Printf.printf
      "\n=> The mail server observed fully POSIX-correct behaviour while the base\n\
       filesystem panicked/hung/corrupted itself %d time(s).  That is the paper's\n\
       availability claim, end to end.\n"
      s.Controller.recoveries
