(** Repair (preen) mode.

    The paper's roadmap wants a *verified* checker because the shadow's
    liveness guarantee only holds on valid images (§4.3); a practical
    deployment also wants the checker to fix what it safely can.  This
    module repairs the classes of damage that have a unique safe fix:

    - superblock free counts recomputed from the bitmaps;
    - orphan inodes (allocated, nlink = 0, unreachable — crash leftovers)
      released together with their blocks;
    - unreachable inodes with nlink > 0 released likewise (a real e2fsck
      would reattach them under /lost+found; releasing is the conservative
      preen simplification, and the action log says exactly what was
      dropped);
    - leaked blocks (marked allocated, referenced by nothing) freed;
    - inode link counts rewritten to the observed reference count.

    Structural corruption (bad superblock, invalid inodes, malformed
    directory blocks, doubly-referenced blocks) is *not* repaired — those
    have no unique safe fix and repair refuses rather than guessing. *)

type action =
  | Fixed_free_counts of { free_inodes : int; free_blocks : int }
  | Released_orphan of { ino : int; blocks_freed : int }
  | Released_unreachable of { ino : int; nlink : int; blocks_freed : int }
  | Freed_leaked_block of int
  | Fixed_nlink of { ino : int; was : int; now : int }

val pp_action : Format.formatter -> action -> unit

val repair : Rae_block.Device.t -> (action list, string) result
(** Check the image, apply every safe fix, and verify the result: returns
    the actions taken iff the post-repair image passes {!Fsck.check} with
    no errors.  Returns [Error] (image unmodified or partially repaired —
    stated in the message) when structural damage remains. *)
