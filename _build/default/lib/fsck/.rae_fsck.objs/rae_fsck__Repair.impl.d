lib/fsck/repair.ml: Bitmap Bytes Dirent Format Fsck Hashtbl Inode Layout List Printf Rae_block Rae_format Rae_vfs Reader Result Superblock
