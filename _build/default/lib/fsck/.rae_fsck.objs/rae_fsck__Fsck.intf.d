lib/fsck/fsck.mli: Format Rae_block
