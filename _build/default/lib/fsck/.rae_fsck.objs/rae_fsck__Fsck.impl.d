lib/fsck/fsck.ml: Bitmap Dirent Format Hashtbl Inode Layout List Rae_block Rae_format Rae_util Rae_vfs Reader String Superblock
