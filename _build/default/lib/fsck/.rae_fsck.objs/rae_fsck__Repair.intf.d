lib/fsck/repair.mli: Format Rae_block
