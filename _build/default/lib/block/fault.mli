(** Fault injection at the device boundary.

    Models the *transient hardware faults* of the paper's fault model
    (§3.1): media read errors, silent bit corruption on the read path (the
    "cores that don't count" class), and torn writes.  Faults are specified
    as a deterministic plan so every test is reproducible; a probabilistic
    mode driven by a seeded {!Rae_util.Rng} is available for soak tests. *)

type spec =
  | Read_error of { block : int; from_nth : int; count : int }
      (** The [from_nth]-th and following reads of [block] raise
          {!Device.Io_error}, [count] times in total. *)
  | Flip_on_read of { block : int; byte : int; bit : int; from_nth : int; count : int }
      (** Returned data has one bit flipped — the medium is intact, the read
          path corrupts silently.  Checksums in the format catch this. *)
  | Stuck_write of { block : int }
      (** Writes to [block] are acknowledged but never reach the medium
          (lost write). *)
  | Torn_write of { block : int; keep_bytes : int }
      (** Only the first [keep_bytes] of each write to [block] reach the
          medium. *)

type t

val create : ?rng:Rae_util.Rng.t -> ?read_error_rate:float -> ?flip_rate:float -> spec list -> t
(** [create plan] builds injection state.  [read_error_rate]/[flip_rate]
    add i.i.d. probabilistic faults on top of the deterministic plan
    (default 0.0; requires [rng] if positive). *)

val wrap : t -> Device.t -> Device.t
(** Interpose the fault plan on a device. *)

val injected : t -> int
(** Number of faults injected so far. *)
