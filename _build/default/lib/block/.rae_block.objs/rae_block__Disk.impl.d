lib/block/disk.ml: Array Bytes Printf Rae_util
