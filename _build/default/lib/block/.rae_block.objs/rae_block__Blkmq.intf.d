lib/block/blkmq.mli: Device
