lib/block/blkmq.ml: Array Bytes Device Queue
