lib/block/crashsim.ml: Array Bytes Device List Rae_util
