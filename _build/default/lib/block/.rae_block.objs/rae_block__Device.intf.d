lib/block/device.mli: Disk
