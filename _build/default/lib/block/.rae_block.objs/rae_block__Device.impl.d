lib/block/device.ml: Disk
