lib/block/fault.ml: Bytes Char Device Hashtbl List Printf Rae_util
