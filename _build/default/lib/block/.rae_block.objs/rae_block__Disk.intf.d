lib/block/disk.mli: Rae_util
