lib/block/fault.mli: Device Rae_util
