lib/block/crashsim.mli: Device Rae_util
