(** In-memory simulated disk.

    The paper's experiments run against real block devices; we substitute a
    RAM-backed block store with a configurable latency model charged to a
    virtual clock (see DESIGN.md §2).  The disk supports whole-image
    snapshot/restore, which the crash-consistency tests use to simulate
    power failure at arbitrary points. *)

type latency = { read_ns : int64; write_ns : int64 }

val default_latency : latency
(** 10us reads / 20us writes — NVMe-flash-like ratios. *)

val zero_latency : latency

type t

val create : ?latency:latency -> ?clock:Rae_util.Vclock.t -> block_size:int -> nblocks:int -> unit -> t
(** [create ~block_size ~nblocks ()] makes a zero-filled disk.
    @raise Invalid_argument if sizes are non-positive. *)

val block_size : t -> int
val nblocks : t -> int
val clock : t -> Rae_util.Vclock.t

val read : t -> int -> bytes
(** [read t blk] returns a fresh copy of block [blk] and charges read
    latency.  @raise Invalid_argument if [blk] is out of range. *)

val write : t -> int -> bytes -> unit
(** [write t blk data] stores a copy of [data] (must be exactly one block)
    and charges write latency. *)

val read_into : t -> int -> bytes -> unit
(** Zero-allocation variant used by the block cache. *)

val reads : t -> int
(** Number of block reads served since creation (or the last counter
    reset). *)

val writes : t -> int
val reset_counters : t -> unit

val snapshot : t -> bytes array
(** Deep copy of the current image. *)

val restore : t -> bytes array -> unit
(** Overwrite the image from a snapshot taken on a same-shaped disk.
    @raise Invalid_argument on shape mismatch. *)

val corrupt_byte : t -> block:int -> offset:int -> (char -> char) -> unit
(** Directly mutate one byte on the medium, bypassing the device interface —
    the "transient hardware fault / crafted image" injection primitive used
    by the fsck and shadow invariant-check tests. *)

val save : t -> string -> (unit, string) result
(** Write the raw image to a file (the CLI tools' persistence format). *)

val load : ?latency:latency -> string -> (t, string) result
(** Read a raw image file created by {!save}; the file size must be a
    multiple of 4096 (the image's block size). *)
