(** First-class block device handles.

    A [Device.t] is the capability through which a filesystem touches
    storage.  The shadow filesystem receives a {!read_only} handle — the
    paper's invariant that "the shadow never writes to the disk" is thereby
    enforced by construction, not by convention. *)

exception Io_error of string
(** Raised by a faulty device (see {!Fault}); filesystems map it to
    [Errno.EIO]. *)

exception Read_only_device
(** Raised when writing through a {!read_only} handle.  Reaching this is a
    bug in the shadow, never expected behaviour. *)

type t = {
  dev_read : int -> bytes;
  dev_write : int -> bytes -> unit;
  dev_flush : unit -> unit;
  dev_block_size : int;
  dev_nblocks : int;
}

val of_disk : Disk.t -> t
val read : t -> int -> bytes
val write : t -> int -> bytes -> unit
val flush : t -> unit
val block_size : t -> int
val nblocks : t -> int

val read_only : t -> t
(** A handle whose write and flush raise {!Read_only_device}. *)

val counting : t -> t * (unit -> int * int)
(** [counting dev] wraps [dev]; the returned thunk reports the (reads,
    writes) issued through the wrapper. *)
