exception Io_error of string
exception Read_only_device

type t = {
  dev_read : int -> bytes;
  dev_write : int -> bytes -> unit;
  dev_flush : unit -> unit;
  dev_block_size : int;
  dev_nblocks : int;
}

let of_disk disk =
  {
    dev_read = Disk.read disk;
    dev_write = Disk.write disk;
    dev_flush = (fun () -> ());
    dev_block_size = Disk.block_size disk;
    dev_nblocks = Disk.nblocks disk;
  }

let read t blk = t.dev_read blk
let write t blk data = t.dev_write blk data
let flush t = t.dev_flush ()
let block_size t = t.dev_block_size
let nblocks t = t.dev_nblocks

let read_only t =
  {
    t with
    dev_write = (fun _ _ -> raise Read_only_device);
    dev_flush = (fun () -> raise Read_only_device);
  }

let counting t =
  let reads = ref 0 and writes = ref 0 in
  let wrapped =
    {
      t with
      dev_read =
        (fun blk ->
          incr reads;
          t.dev_read blk);
      dev_write =
        (fun blk data ->
          incr writes;
          t.dev_write blk data);
    }
  in
  (wrapped, fun () -> (!reads, !writes))
