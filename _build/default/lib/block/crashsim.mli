(** Crash simulation: a write-buffering device with explicit flush barriers.

    Writes issued through this wrapper sit in a volatile buffer until
    {!Device.flush}; a simulated power failure ({!crash}) discards — or,
    with [~partial], applies an arbitrary subset of — the unflushed writes.
    The journal's crash-consistency tests drive all their IO through this
    wrapper and call {!crash} at adversarial points. *)

type t

val create : ?rng:Rae_util.Rng.t -> Device.t -> t * Device.t
(** [create dev] returns the simulator handle and the wrapped device to
    hand to the filesystem under test.  [rng] drives partial-crash write
    selection (default: a fixed seed). *)

val pending : t -> int
(** Unflushed writes currently buffered. *)

val crash : t -> unit
(** Power failure: every buffered write is lost. *)

val crash_partial : t -> unit
(** Power failure where the device had started destaging: a random subset
    (possibly reordered) of buffered writes reaches the medium, the rest are
    lost.  This is the adversarial model journaling must survive. *)

val flushes : t -> int
(** Number of flush barriers observed. *)
