open Rae_vfs
module Base = Rae_basefs.Base
module Shadow = Rae_shadowfs.Shadow
module Detector = Rae_basefs.Detector

type mismatch = {
  m_index : int;
  m_op : Op.t;
  m_base : Op.outcome;
  m_shadow : Op.outcome;
}

type result = {
  ops_run : int;
  mismatches : mismatch list;
  base_crashed : string option;
  shadow_violation : string option;
  final_state_equal : bool;
}

let agreement r =
  r.mismatches = [] && r.base_crashed = None && r.shadow_violation = None && r.final_state_equal

let pp_mismatch ppf m =
  Format.fprintf ppf "op %d %a: base %a, shadow %a" m.m_index Op.pp m.m_op Op.pp_outcome m.m_base
    Op.pp_outcome m.m_shadow

let pp_result ppf r =
  Format.fprintf ppf "@[<v>differential: %d ops, %d mismatches%s%s, final states %s@,"
    r.ops_run (List.length r.mismatches)
    (match r.base_crashed with Some m -> ", base crashed: " ^ m | None -> "")
    (match r.shadow_violation with Some m -> ", shadow violation: " ^ m | None -> "")
    (if r.final_state_equal then "equal" else "DIFFER");
  List.iter (fun m -> Format.fprintf ppf "  %a@," pp_mismatch m) r.mismatches;
  Format.fprintf ppf "@]"

(* Walk both trees through their public APIs and compare contents. *)
let states_equal base shadow =
  let exception Differ in
  let rec walk path =
    let b_names = Base.readdir base path in
    let s_names = Shadow.readdir shadow path in
    match (b_names, s_names) with
    | Ok b, Ok s ->
        if b <> s then raise Differ;
        List.iter
          (fun name ->
            let child = Path.append path name in
            let b_st = Base.stat base child and s_st = Shadow.stat shadow child in
            match (b_st, s_st) with
            | Ok b, Ok s ->
                if not (Types.stat_equal b s) then raise Differ;
                (match b.Types.st_kind with
                | Types.Directory -> walk child
                | Types.Regular ->
                    let read fs_open fs_read fs_close =
                      match fs_open child with
                      | Ok fd ->
                          let data = fs_read fd b.Types.st_size in
                          ignore (fs_close fd);
                          data
                      | Error _ -> raise Differ
                    in
                    let b_data =
                      read
                        (fun p -> Base.openf base p Types.flags_ro)
                        (fun fd len -> Base.pread base fd ~off:0 ~len)
                        (fun fd -> Base.close base fd)
                    in
                    let s_data =
                      read
                        (fun p -> Shadow.openf shadow p Types.flags_ro)
                        (fun fd len -> Shadow.pread shadow fd ~off:0 ~len)
                        (fun fd -> Shadow.close shadow fd)
                    in
                    if b_data <> s_data then raise Differ
                | Types.Symlink ->
                    (* stat follows; a symlink kind here is unreachable,
                       but compare targets via readlink when both agree. *)
                    if Base.readlink base child <> Shadow.readlink shadow child then raise Differ)
            | Error e1, Error e2 when Errno.equal e1 e2 ->
                (* A dangling symlink: compare the link itself. *)
                if Base.readlink base child <> Shadow.readlink shadow child then raise Differ
            | _ -> raise Differ)
          b
    | Error e1, Error e2 when Errno.equal e1 e2 -> ()
    | _ -> raise Differ
  in
  match walk [] with
  | () -> Base.fd_table base = Shadow.fd_table shadow
  | exception Differ -> false

let run ?(nblocks = 8192) ?(ninodes = 1024) ?base_config ?bugs ops =
  let fresh () =
    let disk =
      Rae_block.Disk.create ~latency:Rae_block.Disk.zero_latency
        ~block_size:Rae_format.Layout.block_size ~nblocks ()
    in
    let dev = Rae_block.Device.of_disk disk in
    match Rae_basefs.Base.mkfs dev ~ninodes () with
    | Ok () -> dev
    | Error msg -> invalid_arg ("Differential.run: mkfs failed: " ^ msg)
  in
  let base_dev = fresh () and shadow_dev = fresh () in
  let base =
    match Base.mount ?config:base_config ?bugs base_dev with
    | Ok b -> b
    | Error msg -> invalid_arg ("Differential.run: mount failed: " ^ msg)
  in
  let shadow =
    match Shadow.attach shadow_dev with
    | Ok s -> s
    | Error msg -> invalid_arg ("Differential.run: shadow attach failed: " ^ msg)
  in
  let mismatches = ref [] in
  let base_crashed = ref None and shadow_violation = ref None in
  let ran = ref 0 in
  (try
     List.iteri
       (fun i op ->
         let b_out =
           match Base.exec base op with
           | o -> o
           | exception Detector.Base_bug { bug; msg } ->
               base_crashed := Some (Printf.sprintf "[%s] %s (at op %d)" bug msg i);
               raise Exit
           | exception Detector.Hang { bug; msg } ->
               base_crashed := Some (Printf.sprintf "hang [%s] %s (at op %d)" bug msg i);
               raise Exit
           | exception Detector.Validation_failed { context; msg } ->
               base_crashed := Some (Printf.sprintf "validation [%s] %s (at op %d)" context msg i);
               raise Exit
         in
         let s_out =
           match Shadow.exec shadow op with
           | o -> o
           | exception Shadow.Violation msg ->
               shadow_violation := Some (Printf.sprintf "%s (at op %d)" msg i);
               raise Exit
         in
         incr ran;
         if not (Op.outcome_equal b_out s_out) then
           mismatches := { m_index = i; m_op = op; m_base = b_out; m_shadow = s_out } :: !mismatches)
       ops
   with Exit -> ());
  let final_state_equal =
    if !base_crashed = None && !shadow_violation = None then states_equal base shadow else false
  in
  {
    ops_run = !ran;
    mismatches = List.rev !mismatches;
    base_crashed = !base_crashed;
    shadow_violation = !shadow_violation;
    final_state_equal;
  }

let run_seeded ?(count = 1000) ?profile ~seed () =
  let rng = Rae_util.Rng.create seed in
  let ops =
    match profile with
    | Some p -> Rae_workload.Workload.ops p rng ~count
    | None -> Rae_workload.Workload.uniform rng ~count
  in
  run ops
