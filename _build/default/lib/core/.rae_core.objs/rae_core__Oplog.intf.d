lib/core/oplog.mli: Rae_vfs
