lib/core/controller.mli: Rae_basefs Rae_block Rae_vfs Report
