lib/core/differential.mli: Format Rae_basefs Rae_vfs Rae_workload
