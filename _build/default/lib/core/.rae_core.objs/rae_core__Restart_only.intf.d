lib/core/restart_only.mli: Rae_basefs Rae_vfs
