lib/core/oplog.ml: List Op Rae_vfs Types
