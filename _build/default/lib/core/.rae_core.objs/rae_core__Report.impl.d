lib/core/report.ml: Format List Printf Rae_vfs
