lib/core/restart_only.ml: Errno Op Rae_basefs Rae_vfs
