lib/core/report.mli: Format Rae_vfs
