lib/core/controller.ml: Errno Format List Op Oplog Rae_basefs Rae_block Rae_shadowfs Rae_vfs Report Sys
