lib/core/differential.ml: Errno Format List Op Path Printf Rae_basefs Rae_block Rae_format Rae_shadowfs Rae_util Rae_vfs Rae_workload Types
