(** The baseline RAE is measured against: restart-only recovery.

    Paper §1: without RAE, "in many cases, the best approach is simply to
    crash and recover from known on-disk state, and suffer the resulting
    loss of availability and related negative consequences."  This
    controller implements exactly that: on a detected runtime error it
    performs the contained reboot (journal replay back to the last
    committed state S0) and nothing else —

    - the in-flight operation fails with [EIO];
    - every open file descriptor dies ([EBADF] afterwards);
    - the volatile operation window since the last commit is silently
      lost: completed, acknowledged operations are rolled back, which
      applications observe as state regressions.

    Comparing this controller against {!Controller} under the same
    workload and bug load quantifies what the shadow buys (bench E11). *)

type t

type stats = {
  ops : int;
  restarts : int;
  lost_window_ops : int;  (** acknowledged operations rolled back *)
}

val make : Rae_basefs.Base.t -> t

val exec : t -> Rae_vfs.Op.t -> Rae_vfs.Op.outcome
(** Never raises; detected runtime errors surface as [EIO] plus a restart. *)

val stats : t -> stats
