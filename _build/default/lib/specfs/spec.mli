(** The executable specification filesystem.

    A pure, map-based model of POSIX-subset filesystem semantics.  This
    plays the role the paper assigns to the formal specification of the
    verified shadow: the shadow and the base are both property-tested
    against it ("lightweight formal methods", as the paper's AWS S3
    citation), and the end-to-end recovery tests use it as the oracle for
    "the resulting essential filesystem states adhere to the API semantics"
    (paper §2.2, state reconstruction).

    Semantics notes shared by every implementation in this repository:
    - inode and fd numbers are allocated lowest-free, so correct
      implementations agree on them exactly;
    - logical time ticks once per successful state-changing operation;
      [st_mtime]/[st_ctime] carry these ticks;
    - directories report [st_size = 0]; symlinks report the target length;
    - symlink targets are stored verbatim and must parse as absolute paths
      at traversal time (else [ENOENT]); at most
      {!Rae_vfs.Types.max_symlink_depth} indirections ([ELOOP]);
    - hard links to directories are refused with [EISDIR];
    - unlinked-but-open files survive until the last descriptor closes
      (orphan semantics). *)

type t

val make : ?max_fds:int -> ?max_file_size:int -> unit -> t
(** A fresh filesystem containing only the root directory.  [max_fds]
    defaults to 1024; [max_file_size] to {!Rae_format.Layout.max_file_size}. *)

include Rae_vfs.Fs_intf.S with type t := t

val exec : t -> Rae_vfs.Op.t -> Rae_vfs.Op.outcome
(** {!Rae_vfs.Fs_intf.Dispatch} applied to this module. *)

(** A pure snapshot of the *essential state* (paper §2.2: on-disk
    structures and file descriptors), used to compare implementations. *)
module State : sig
  type entry = {
    e_path : string;  (** canonical absolute path *)
    e_ino : Rae_vfs.Types.ino;
    e_kind : Rae_vfs.Types.kind;
    e_size : int;
    e_nlink : int;
    e_mode : int;
    e_content : string;  (** file data, or symlink target; "" for dirs *)
  }

  type fd_entry = { f_fd : Rae_vfs.Types.fd; f_ino : Rae_vfs.Types.ino; f_flags : Rae_vfs.Types.open_flags }

  type t = { entries : entry list; fds : fd_entry list; time : int64 }
  (** [entries] sorted by path; [fds] sorted by fd. *)

  val equal : ?ignore_times:bool -> t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val diff : t -> t -> string list
  (** Human-readable differences, empty when equal. *)
end

val snapshot : t -> State.t
(** Walk the tree and dump the essential state. *)

val time : t -> int64
val set_time : t -> int64 -> unit
(** Used when replaying a suffix of a trace from a known logical time. *)

val open_fds : t -> (Rae_vfs.Types.fd * Rae_vfs.Types.ino * Rae_vfs.Types.open_flags) list
val copy : t -> t
(** Independent deep copy (cheap: the model is persistent inside). *)
