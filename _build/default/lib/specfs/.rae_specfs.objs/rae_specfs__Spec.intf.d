lib/specfs/spec.mli: Format Rae_vfs
