lib/specfs/spec.ml: Bytes Errno Format Fs_intf Hashtbl Int Int64 List Map Path Printf Rae_format Rae_vfs Result Stdlib String Types
