lib/cache/dentry.ml: Hashtbl List Lru Rae_vfs String
