lib/cache/two_q.ml: Hashtbl List Lru Option Queue
