lib/cache/two_q.mli: Lru
