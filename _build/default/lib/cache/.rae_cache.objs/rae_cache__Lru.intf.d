lib/cache/lru.mli:
