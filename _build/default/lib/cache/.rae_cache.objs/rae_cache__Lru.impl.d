lib/cache/lru.ml: Hashtbl Option
