lib/cache/dentry.mli: Lru Rae_vfs
