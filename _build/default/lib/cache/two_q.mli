(** The 2Q cache replacement policy (Johnson & Shasha, VLDB '94), the
    policy the paper names when listing the "sophisticated caching
    structures and policies (e.g., LRU 2Q)" a shadow filesystem omits.

    Structure: newly-admitted pages enter a FIFO probation queue [A1in];
    on eviction from [A1in] their *keys* are remembered in a ghost queue
    [A1out]; a page re-referenced while ghosted is promoted into the main
    LRU queue [Am].  Scans therefore wash through [A1in] without polluting
    [Am] — the property the cache-policy ablation bench demonstrates. *)

module Make (K : Lru.KEY) : sig
  type 'v t

  val create :
    ?on_evict:(K.t -> 'v -> unit) ->
    ?kin_ratio:float ->
    ?kout_ratio:float ->
    capacity:int ->
    unit ->
    'v t
  (** [kin_ratio] sizes [A1in] (default 0.25 of capacity), [kout_ratio]
      sizes the ghost queue (default 0.5).  Pinned entries are exempt from
      eviction, as in {!Lru}. *)

  val find : 'v t -> K.t -> 'v option
  val peek : 'v t -> K.t -> 'v option
  val mem : 'v t -> K.t -> bool
  val put : 'v t -> K.t -> 'v -> unit
  val remove : 'v t -> K.t -> unit
  val pin : 'v t -> K.t -> unit
  val unpin : 'v t -> K.t -> unit
  val clear : 'v t -> unit
  val length : 'v t -> int
  val iter : 'v t -> (K.t -> 'v -> unit) -> unit
  val fold : 'v t -> init:'a -> f:('a -> K.t -> 'v -> 'a) -> 'a
  val stats : 'v t -> Lru.stats
  val reset_stats : 'v t -> unit

  val ghost_length : 'v t -> int
  (** Occupancy of [A1out], exposed for tests. *)
end
