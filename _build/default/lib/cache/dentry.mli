(** The dentry cache: (directory inode, name) -> lookup result.

    Caches both positive entries (the child's inode number and kind) and
    negative entries (the name is known absent) — negative dentries are a
    notorious source of base-filesystem bugs, which is exactly why the
    paper's shadow "does not use a dentry cache, and instead always performs
    path lookup from the root inode" (§3.3).  The lookup-depth bench (E7)
    measures what that choice costs. *)

type result = Present of { ino : Rae_vfs.Types.ino; kind : Rae_vfs.Types.kind } | Absent

type t

val create : capacity:int -> t
val find : t -> dir:Rae_vfs.Types.ino -> name:string -> result option
val add : t -> dir:Rae_vfs.Types.ino -> name:string -> result -> unit

val invalidate : t -> dir:Rae_vfs.Types.ino -> name:string -> unit
(** Drop one entry (on create/unlink/rename of [name] in [dir]). *)

val invalidate_dir : t -> dir:Rae_vfs.Types.ino -> unit
(** Drop every entry under a directory (on rmdir or rename of the directory
    itself). *)

val clear : t -> unit
(** Contained reboot: drop the whole cache. *)

val length : t -> int
val stats : t -> Lru.stats
val reset_stats : t -> unit
