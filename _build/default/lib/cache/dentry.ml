type result = Present of { ino : Rae_vfs.Types.ino; kind : Rae_vfs.Types.kind } | Absent

module Key = struct
  type t = int * string

  let equal (d1, n1) (d2, n2) = d1 = d2 && String.equal n1 n2
  let hash = Hashtbl.hash
end

module L = Lru.Make (Key)

type t = result L.t

let create ~capacity = L.create ~capacity ()
let find t ~dir ~name = L.find t (dir, name)
let add t ~dir ~name result = L.put t (dir, name) result
let invalidate t ~dir ~name = L.remove t (dir, name)

let invalidate_dir t ~dir =
  let victims = L.fold t ~init:[] ~f:(fun acc (d, n) _ -> if d = dir then (d, n) :: acc else acc) in
  List.iter (L.remove t) victims

let clear = L.clear
let length = L.length
let stats = L.stats
let reset_stats = L.reset_stats
