(** On-disk layout of the "rfs" format.

    The format is deliberately ext4-shaped — superblock, inode and block
    bitmaps, an inode table of fixed-size checksummed inodes with
    direct/indirect/double-indirect pointers, variable-[rec_len] directory
    blocks and a physical journal region — because the paper's whole premise
    is that base and shadow share one on-disk format, and the bug study's
    "crafted image" class attacks exactly these structures.

    Disk layout (in [block_size] units):
    {v
      block 0                 superblock
      1 .. journal_len        journal
      ..                      inode bitmap
      ..                      block bitmap
      ..                      inode table
      data_start .. nblocks   data blocks
    v}

    Block number 0 can never be a data block, so 0 serves as the
    "unallocated" sentinel in block pointers; likewise inode 0 is invalid
    and inode 1 is the root directory. *)

val block_size : int
(** 4096. *)

val inode_size : int
(** 256 bytes; 16 inodes per block. *)

val inodes_per_block : int
val bits_per_block : int
val magic : int64
(** Superblock magic, "RAEF" little-endian. *)

val version : int
val default_journal_blocks : int
val pointers_per_block : int
(** u32 block pointers in an indirect block (1024). *)

val direct_pointers : int
(** 12, as ext2/ext4. *)

val max_file_blocks : int
(** Data blocks addressable per file: direct + indirect + double. *)

val max_file_size : int

type geometry = {
  nblocks : int;
  ninodes : int;
  journal_start : int;
  journal_len : int;
  inode_bitmap_start : int;
  inode_bitmap_len : int;
  block_bitmap_start : int;
  block_bitmap_len : int;
  inode_table_start : int;
  inode_table_len : int;
  data_start : int;
}

val compute : nblocks:int -> ninodes:int -> ?journal_len:int -> unit -> (geometry, string) result
(** Compute the region layout for a disk of [nblocks] blocks and an inode
    table of [ninodes].  Fails if the metadata does not fit or leaves no
    data blocks. *)

val inode_location : geometry -> int -> int * int
(** [inode_location g ino] is [(block, offset_in_block)] of inode [ino] in
    the inode table.
    @raise Invalid_argument if [ino] is outside [1, ninodes]. *)

val data_block_count : geometry -> int
val pp_geometry : Format.formatter -> geometry -> unit
