type t = { bits : Bytes.t; nbits : int }

let create ~nbits =
  if nbits <= 0 then invalid_arg "Bitmap.create: nbits must be positive";
  { bits = Bytes.make ((nbits + 7) / 8) '\000'; nbits }

let nbits t = t.nbits
let copy t = { bits = Bytes.copy t.bits; nbits = t.nbits }

let check t i what =
  if i < 0 || i >= t.nbits then
    invalid_arg (Printf.sprintf "Bitmap.%s: index %d outside [0,%d)" what i t.nbits)

let test t i =
  check t i "test";
  Char.code (Bytes.get t.bits (i / 8)) land (1 lsl (i mod 8)) <> 0

let set t i =
  check t i "set";
  let byte = i / 8 in
  Bytes.set t.bits byte (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl (i mod 8))))

let clear t i =
  check t i "clear";
  let byte = i / 8 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) land lnot (1 lsl (i mod 8)) land 0xFF))

let set_result t i =
  if i < 0 || i >= t.nbits then Error (Printf.sprintf "bit %d out of range" i)
  else if test t i then Error (Printf.sprintf "bit %d already set (double allocation)" i)
  else begin
    set t i;
    Ok ()
  end

let clear_result t i =
  if i < 0 || i >= t.nbits then Error (Printf.sprintf "bit %d out of range" i)
  else if not (test t i) then Error (Printf.sprintf "bit %d already clear (double free)" i)
  else begin
    clear t i;
    Ok ()
  end

let find_free t ~from =
  let rec go i = if i >= t.nbits then None else if not (test t i) then Some i else go (i + 1) in
  if from < 0 || from >= t.nbits then None else go from

let count_set t =
  let popcount_byte c =
    let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
    go (Char.code c) 0
  in
  let total = ref 0 in
  for byte = 0 to Bytes.length t.bits - 1 do
    total := !total + popcount_byte (Bytes.get t.bits byte)
  done;
  (* Padding bits in the final byte are always zero in memory. *)
  !total

let count_free t = t.nbits - count_set t

let to_blocks t ~block_size =
  let nblocks = (Bytes.length t.bits + block_size - 1) / block_size in
  let nblocks = max nblocks 1 in
  let out = List.init nblocks (fun _ -> Bytes.make block_size '\xff') in
  List.iteri
    (fun bi block ->
      let src_off = bi * block_size in
      let len = min block_size (Bytes.length t.bits - src_off) in
      if len > 0 then Bytes.blit t.bits src_off block 0 len)
    out;
  (* Mask padding bits inside the last partially-used byte: in-range bits
     keep their value, out-of-range bits are forced to 1. *)
  let last_byte = (t.nbits - 1) / 8 in
  let used_bits = ((t.nbits - 1) mod 8) + 1 in
  if used_bits < 8 then begin
    let bi = last_byte / block_size and off = last_byte mod block_size in
    let block = List.nth out bi in
    let v = Char.code (Bytes.get block off) in
    let mask_high = lnot ((1 lsl used_bits) - 1) land 0xFF in
    Bytes.set block off (Char.chr (v lor mask_high))
  end;
  out

let parse blocks ~nbits ~strict =
  if nbits <= 0 then Error "nbits must be positive"
  else
    let needed_bytes = (nbits + 7) / 8 in
    let total_bytes = List.fold_left (fun acc b -> acc + Bytes.length b) 0 blocks in
    if total_bytes < needed_bytes then
      Error (Printf.sprintf "bitmap blocks hold %d bytes, need %d" total_bytes needed_bytes)
    else begin
      let flat = Bytes.create total_bytes in
      let off = ref 0 in
      List.iter
        (fun b ->
          Bytes.blit b 0 flat !off (Bytes.length b);
          off := !off + Bytes.length b)
        blocks;
      let t = { bits = Bytes.sub flat 0 needed_bytes; nbits } in
      (* Clear the in-memory padding bits of the final byte. *)
      let used_bits = ((nbits - 1) mod 8) + 1 in
      let padding_ok = ref true in
      if used_bits < 8 then begin
        let v = Char.code (Bytes.get t.bits (needed_bytes - 1)) in
        let mask_high = lnot ((1 lsl used_bits) - 1) land 0xFF in
        if v land mask_high <> mask_high then padding_ok := false;
        Bytes.set t.bits (needed_bytes - 1) (Char.chr (v land ((1 lsl used_bits) - 1)))
      end;
      (* Bytes past needed_bytes must be all-ones in strict mode. *)
      if strict then begin
        for i = needed_bytes to total_bytes - 1 do
          if Bytes.get flat i <> '\xff' then padding_ok := false
        done;
        if not !padding_ok then Error "bitmap padding bits are not all-ones" else Ok t
      end
      else Ok t
    end

let of_blocks blocks ~nbits = parse blocks ~nbits ~strict:true
let of_blocks_lenient blocks ~nbits = parse blocks ~nbits ~strict:false

let equal a b = a.nbits = b.nbits && Bytes.equal a.bits b.bits

let iter_set t f =
  for i = 0 to t.nbits - 1 do
    if test t i then f i
  done

let pp ppf t =
  Format.fprintf ppf "bitmap<%d bits, %d set>" t.nbits (count_set t)
