(** Checked, read-only access to an rfs image.

    Parameterised over a block-read function, so the shadow can layer its
    copy-on-write overlay underneath and fsck can read the raw device; both
    get the same *validating* decode paths (checksums verified, pointers
    bounds-checked, directory blocks structurally validated).  The base
    filesystem deliberately does not use this module — it has its own
    trusting fast paths, mirroring the paper's base/shadow asymmetry. *)

type t = { read : int -> bytes; sb : Superblock.t }

type error = { context : string; problem : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val attach : (int -> bytes) -> (t, error) result
(** Read and validate the superblock. *)

val geometry : t -> Layout.geometry

val load_inode_bitmap : t -> (Bitmap.t, error) result
(** Strict parse ({!Bitmap.of_blocks}); bit 0 (invalid inode) must be set. *)

val load_block_bitmap : t -> (Bitmap.t, error) result
(** Strict parse; all metadata blocks (0 .. data_start-1) must be marked
    allocated. *)

val read_inode : t -> int -> (Inode.t, error) result
(** Checksum-verified inode read.  Reports an error for a free (all-zero)
    slot — use {!read_inode_opt} when free is expected. *)

val read_inode_opt : t -> int -> (Inode.t option, error) result
(** [Ok None] for a free slot. *)

val file_block : t -> Inode.t -> int -> (int, error) result
(** Physical block number backing logical block [idx] of the file ([0] for
    a hole).  Walks the direct / single-indirect / double-indirect chain
    with bounds checks at every hop. *)

val read_file_block : t -> Inode.t -> int -> (bytes, error) result
(** The content of logical block [idx]; holes read as zeroes. *)

val read_file : t -> Inode.t -> (string, error) result
(** The first [size] bytes of the file. *)

val iter_file_blocks :
  t -> Inode.t -> f:(idx:int -> phys:int -> (unit, error) result) -> (unit, error) result
(** Apply [f] to every *allocated* block of the file, including the
    indirect blocks themselves (reported with [idx = -1]).  Stops at the
    first error. *)

val valid_data_block : Layout.geometry -> int -> bool
(** Is [blk] a legal data block number? *)
