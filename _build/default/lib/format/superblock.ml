open Rae_util

type state = Clean | Dirty

let state_to_string = function Clean -> "clean" | Dirty -> "dirty"
let state_code = function Clean -> 1 | Dirty -> 2
let state_of_code = function 1 -> Some Clean | 2 -> Some Dirty | _ -> None

type t = {
  geometry : Layout.geometry;
  free_blocks : int;
  free_inodes : int;
  mount_count : int;
  state : state;
  fs_time : int64;
  generation : int64;
}

type error =
  | Bad_magic of int64
  | Bad_version of int
  | Bad_checksum
  | Bad_block_size of int
  | Bad_geometry of string
  | Bad_state of int
  | Bad_counts of string

let error_to_string = function
  | Bad_magic m -> Printf.sprintf "bad magic 0x%Lx" m
  | Bad_version v -> Printf.sprintf "unsupported version %d" v
  | Bad_checksum -> "superblock checksum mismatch"
  | Bad_block_size b -> Printf.sprintf "bad block size %d" b
  | Bad_geometry msg -> "inconsistent geometry: " ^ msg
  | Bad_state s -> Printf.sprintf "invalid state code %d" s
  | Bad_counts msg -> "free counts out of range: " ^ msg

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

(* Field offsets within block 0. *)
let off_magic = 0
let off_version = 8
let off_block_size = 12
let off_nblocks = 16
let off_ninodes = 24
let off_journal_start = 28
let off_journal_len = 32
let off_ibmap_start = 36
let off_ibmap_len = 40
let off_bbmap_start = 44
let off_bbmap_len = 48
let off_itable_start = 52
let off_itable_len = 56
let off_data_start = 60
let off_free_blocks = 64
let off_free_inodes = 68
let off_mount_count = 72
let off_state = 76
let off_fs_time = 80
let off_generation = 88
let off_checksum = 4092

let encode sb =
  let b = Bytes.make Layout.block_size '\000' in
  let g = sb.geometry in
  Codec.set_u64 b off_magic Layout.magic;
  Codec.set_u32_int b off_version Layout.version;
  Codec.set_u32_int b off_block_size Layout.block_size;
  Codec.set_u64 b off_nblocks (Int64.of_int g.Layout.nblocks);
  Codec.set_u32_int b off_ninodes g.Layout.ninodes;
  Codec.set_u32_int b off_journal_start g.Layout.journal_start;
  Codec.set_u32_int b off_journal_len g.Layout.journal_len;
  Codec.set_u32_int b off_ibmap_start g.Layout.inode_bitmap_start;
  Codec.set_u32_int b off_ibmap_len g.Layout.inode_bitmap_len;
  Codec.set_u32_int b off_bbmap_start g.Layout.block_bitmap_start;
  Codec.set_u32_int b off_bbmap_len g.Layout.block_bitmap_len;
  Codec.set_u32_int b off_itable_start g.Layout.inode_table_start;
  Codec.set_u32_int b off_itable_len g.Layout.inode_table_len;
  Codec.set_u32_int b off_data_start g.Layout.data_start;
  Codec.set_u32_int b off_free_blocks sb.free_blocks;
  Codec.set_u32_int b off_free_inodes sb.free_inodes;
  Codec.set_u32_int b off_mount_count sb.mount_count;
  Codec.set_u32_int b off_state (state_code sb.state);
  Codec.set_u64 b off_fs_time sb.fs_time;
  Codec.set_u64 b off_generation sb.generation;
  Codec.set_i32 b off_checksum (Checksum.crc32c b ~pos:0 ~len:off_checksum);
  b

let parse b =
  if Bytes.length b <> Layout.block_size then Error (Bad_block_size (Bytes.length b))
  else
    let m = Codec.get_u64 b off_magic in
    if not (Int64.equal m Layout.magic) then Error (Bad_magic m)
    else
      let version = Codec.get_u32_int b off_version in
      if version <> Layout.version then Error (Bad_version version)
      else if
        not
          (Checksum.verify b ~pos:0 ~len:off_checksum ~expect:(Codec.get_i32 b off_checksum))
      then Error Bad_checksum
      else
        let bs = Codec.get_u32_int b off_block_size in
        if bs <> Layout.block_size then Error (Bad_block_size bs)
        else
          let state_raw = Codec.get_u32_int b off_state in
          match state_of_code state_raw with
          | None -> Error (Bad_state state_raw)
          | Some state ->
              let geometry =
                {
                  Layout.nblocks = Int64.to_int (Codec.get_u64 b off_nblocks);
                  ninodes = Codec.get_u32_int b off_ninodes;
                  journal_start = Codec.get_u32_int b off_journal_start;
                  journal_len = Codec.get_u32_int b off_journal_len;
                  inode_bitmap_start = Codec.get_u32_int b off_ibmap_start;
                  inode_bitmap_len = Codec.get_u32_int b off_ibmap_len;
                  block_bitmap_start = Codec.get_u32_int b off_bbmap_start;
                  block_bitmap_len = Codec.get_u32_int b off_bbmap_len;
                  inode_table_start = Codec.get_u32_int b off_itable_start;
                  inode_table_len = Codec.get_u32_int b off_itable_len;
                  data_start = Codec.get_u32_int b off_data_start;
                }
              in
              Ok
                {
                  geometry;
                  free_blocks = Codec.get_u32_int b off_free_blocks;
                  free_inodes = Codec.get_u32_int b off_free_inodes;
                  mount_count = Codec.get_u32_int b off_mount_count;
                  state;
                  fs_time = Codec.get_u64 b off_fs_time;
                  generation = Codec.get_u64 b off_generation;
                }

let validate_geometry sb =
  let g = sb.geometry in
  let expected =
    Layout.compute ~nblocks:g.Layout.nblocks ~ninodes:g.Layout.ninodes
      ~journal_len:g.Layout.journal_len ()
  in
  match expected with
  | Error msg -> Error (Bad_geometry msg)
  | Ok e ->
      if e <> g then Error (Bad_geometry "region layout does not match computed layout")
      else if sb.free_blocks < 0 || sb.free_blocks > Layout.data_block_count g then
        Error (Bad_counts (Printf.sprintf "free_blocks=%d" sb.free_blocks))
      else if sb.free_inodes < 0 || sb.free_inodes > g.Layout.ninodes then
        Error (Bad_counts (Printf.sprintf "free_inodes=%d" sb.free_inodes))
      else Ok sb

let decode b = Result.bind (parse b) validate_geometry
let decode_unchecked b = parse b

let make geometry ~free_blocks ~free_inodes =
  { geometry; free_blocks; free_inodes; mount_count = 0; state = Clean; fs_time = 0L; generation = 0L }

let with_state sb state = { sb with state }

let pp ppf sb =
  Format.fprintf ppf "superblock { %a; free_blocks=%d; free_inodes=%d; mounts=%d; %s; time=%Ld; gen=%Ld }"
    Layout.pp_geometry sb.geometry sb.free_blocks sb.free_inodes sb.mount_count
    (state_to_string sb.state) sb.fs_time sb.generation
