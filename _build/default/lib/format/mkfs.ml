module Device = Rae_block.Device

let default_ninodes ~nblocks = max 16 (nblocks / 4)

let format dev ~ninodes ?journal_len () =
  let nblocks = Device.nblocks dev in
  if Device.block_size dev <> Layout.block_size then
    Error
      (Printf.sprintf "device block size %d; rfs requires %d" (Device.block_size dev)
         Layout.block_size)
  else
    match Layout.compute ~nblocks ~ninodes ?journal_len () with
    | Error msg -> Error msg
    | Ok g ->
        let root_block = g.Layout.data_start in
        if root_block >= nblocks then Error "no room for the root directory block"
        else begin
          (* Block bitmap: metadata region + root directory block. *)
          let bbm = Bitmap.create ~nbits:nblocks in
          for blk = 0 to g.Layout.data_start - 1 do
            Bitmap.set bbm blk
          done;
          Bitmap.set bbm root_block;
          (* Inode bitmap: bit 0 (invalid) and the root inode. *)
          let ibm = Bitmap.create ~nbits:(ninodes + 1) in
          Bitmap.set ibm 0;
          Bitmap.set ibm Rae_vfs.Types.root_ino;
          (* Root inode. *)
          let root =
            {
              (Inode.empty Rae_vfs.Types.Directory ~mode:0o755 ~time:0L) with
              Inode.nlink = 2;
              size = Layout.block_size;
              direct =
                Array.init Layout.direct_pointers (fun i -> if i = 0 then root_block else 0);
            }
          in
          (* Root directory block: "." and "..", both the root itself. *)
          let root_dir = Dirent.empty_block () in
          let dir_kind = Rae_vfs.Types.kind_code Rae_vfs.Types.Directory in
          let ok1 = Dirent.insert root_dir ~name:"." ~ino:Rae_vfs.Types.root_ino ~kind_code:dir_kind in
          let ok2 = Dirent.insert root_dir ~name:".." ~ino:Rae_vfs.Types.root_ino ~kind_code:dir_kind in
          assert (ok1 && ok2);
          (* Zero-fill metadata regions that are partially used. *)
          let zero = Bytes.make Layout.block_size '\000' in
          for blk = g.Layout.inode_table_start to g.Layout.inode_table_start + g.Layout.inode_table_len - 1
          do
            Device.write dev blk zero
          done;
          (* Write the root inode into its table slot. *)
          let iblk, ioff = Layout.inode_location g Rae_vfs.Types.root_ino in
          let itable_block = Bytes.make Layout.block_size '\000' in
          Inode.encode root ~ino:Rae_vfs.Types.root_ino itable_block ~pos:ioff;
          Device.write dev iblk itable_block;
          (* Bitmaps. *)
          List.iteri
            (fun i b -> Device.write dev (g.Layout.inode_bitmap_start + i) b)
            (Bitmap.to_blocks ibm ~block_size:Layout.block_size);
          List.iteri
            (fun i b -> Device.write dev (g.Layout.block_bitmap_start + i) b)
            (Bitmap.to_blocks bbm ~block_size:Layout.block_size);
          (* Root directory data. *)
          Device.write dev root_block root_dir;
          (* Superblock last: free counts exclude the root block / root inode. *)
          let sb =
            Superblock.make g
              ~free_blocks:(Layout.data_block_count g - 1)
              ~free_inodes:(ninodes - 1)
          in
          Device.write dev 0 (Superblock.encode sb);
          Device.flush dev;
          Ok sb
        end
