open Rae_util

type t = {
  kind : Rae_vfs.Types.kind;
  mode : int;
  nlink : int;
  size : int;
  mtime : int64;
  ctime : int64;
  direct : int array;
  indirect : int;
  double_indirect : int;
  generation : int;
}

type error =
  | Bad_kind of int
  | Bad_checksum of { ino : int }
  | Bad_field of string

let error_to_string = function
  | Bad_kind k -> Printf.sprintf "invalid kind code %d" k
  | Bad_checksum { ino } -> Printf.sprintf "inode %d checksum mismatch" ino
  | Bad_field msg -> "invalid inode field: " ^ msg

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let zero =
  {
    kind = Rae_vfs.Types.Regular;
    mode = 0;
    nlink = 0;
    size = 0;
    mtime = 0L;
    ctime = 0L;
    direct = Array.make Layout.direct_pointers 0;
    indirect = 0;
    double_indirect = 0;
    generation = 0;
  }

let empty kind ~mode ~time =
  {
    zero with
    kind;
    mode = mode land 0o777;
    nlink = 1;
    mtime = time;
    ctime = time;
    direct = Array.make Layout.direct_pointers 0;
  }

(* Offsets within the 256-byte slot. *)
let off_kind = 0
let off_mode = 2
let off_nlink = 4
let off_size = 8
let off_mtime = 16
let off_ctime = 24
let off_direct = 32 (* 12 * 4 = 48 bytes *)
let off_indirect = 80
let off_double = 84
let off_generation = 88
let off_checksum = 252

let is_free_slot b ~pos =
  let rec go i = i >= Layout.inode_size || (Bytes.get b (pos + i) = '\000' && go (i + 1)) in
  go 0

let encode inode ~ino b ~pos =
  Bytes.fill b pos Layout.inode_size '\000';
  Codec.set_u16 b (pos + off_kind) (Rae_vfs.Types.kind_code inode.kind);
  Codec.set_u16 b (pos + off_mode) (inode.mode land 0o777);
  Codec.set_u16 b (pos + off_nlink) inode.nlink;
  Codec.set_u64 b (pos + off_size) (Int64.of_int inode.size);
  Codec.set_u64 b (pos + off_mtime) inode.mtime;
  Codec.set_u64 b (pos + off_ctime) inode.ctime;
  Array.iteri (fun i blk -> Codec.set_u32_int b (pos + off_direct + (4 * i)) blk) inode.direct;
  Codec.set_u32_int b (pos + off_indirect) inode.indirect;
  Codec.set_u32_int b (pos + off_double) inode.double_indirect;
  Codec.set_u32_int b (pos + off_generation) inode.generation;
  (* Seed the checksum with the inode number so a slot blitted to the wrong
     table position fails verification. *)
  let seed = Checksum.crc32c_string (string_of_int ino) in
  Codec.set_i32 b (pos + off_checksum)
    (Checksum.crc32c ~init:seed b ~pos ~len:off_checksum)

let parse b ~pos =
  {
    kind =
      (match Rae_vfs.Types.kind_of_code (Codec.get_u16 b (pos + off_kind)) with
      | Some k -> k
      | None -> Rae_vfs.Types.Regular (* caller validates separately *));
    mode = Codec.get_u16 b (pos + off_mode);
    nlink = Codec.get_u16 b (pos + off_nlink);
    size = Int64.to_int (Codec.get_u64 b (pos + off_size));
    mtime = Codec.get_u64 b (pos + off_mtime);
    ctime = Codec.get_u64 b (pos + off_ctime);
    direct = Array.init Layout.direct_pointers (fun i -> Codec.get_u32_int b (pos + off_direct + (4 * i)));
    indirect = Codec.get_u32_int b (pos + off_indirect);
    double_indirect = Codec.get_u32_int b (pos + off_double);
    generation = Codec.get_u32_int b (pos + off_generation);
  }

let decode_nocheck b ~pos = parse b ~pos

let decode b ~pos ~ino =
  let kind_raw = Codec.get_u16 b (pos + off_kind) in
  match Rae_vfs.Types.kind_of_code kind_raw with
  | None -> Error (Bad_kind kind_raw)
  | Some _ ->
      let seed = Checksum.crc32c_string (string_of_int ino) in
      let expect = Codec.get_i32 b (pos + off_checksum) in
      if not (Int32.equal (Checksum.crc32c ~init:seed b ~pos ~len:off_checksum) expect) then
        Error (Bad_checksum { ino })
      else
        let inode = parse b ~pos in
        (* nlink = 0 is legal on an allocated inode: an orphan kept alive by
           open descriptors (fsck reports it as a warning when at rest). *)
        if inode.size < 0 then Error (Bad_field "negative size")
        else if inode.size > Layout.max_file_size then Error (Bad_field "size exceeds maximum")
        else if inode.mode land lnot 0o777 <> 0 then Error (Bad_field "mode has non-permission bits")
        else Ok inode

let equal a b =
  a.kind = b.kind && a.mode = b.mode && a.nlink = b.nlink && a.size = b.size
  && Int64.equal a.mtime b.mtime && Int64.equal a.ctime b.ctime
  && a.direct = b.direct && a.indirect = b.indirect && a.double_indirect = b.double_indirect
  && a.generation = b.generation

let pp ppf i =
  Format.fprintf ppf
    "inode { %a mode=%03o nlink=%d size=%d direct=[%s] ind=%d dind=%d gen=%d }"
    Rae_vfs.Types.pp_kind i.kind i.mode i.nlink i.size
    (String.concat "," (List.map string_of_int (Array.to_list i.direct)))
    i.indirect i.double_indirect i.generation

let blocks_for_size size = (size + Layout.block_size - 1) / Layout.block_size
