lib/format/dirent.ml: Bytes Codec Format Layout List Printf Rae_util Rae_vfs Result String
