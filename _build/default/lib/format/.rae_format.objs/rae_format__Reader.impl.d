lib/format/reader.ml: Array Bitmap Bytes Codec Format Inode Layout List Printf Rae_util Result Superblock
