lib/format/dirent.mli: Format
