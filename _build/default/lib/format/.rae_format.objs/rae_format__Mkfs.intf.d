lib/format/mkfs.mli: Rae_block Superblock
