lib/format/layout.mli: Format
