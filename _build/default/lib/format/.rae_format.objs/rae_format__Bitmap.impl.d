lib/format/bitmap.ml: Bytes Char Format List Printf
