lib/format/mkfs.ml: Array Bitmap Bytes Dirent Inode Layout List Printf Rae_block Rae_vfs Superblock
