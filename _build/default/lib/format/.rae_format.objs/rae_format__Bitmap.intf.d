lib/format/bitmap.mli: Format
