lib/format/superblock.mli: Format Layout
