lib/format/reader.mli: Bitmap Format Inode Layout Superblock
