lib/format/layout.ml: Format Printf
