lib/format/inode.mli: Format Rae_vfs
