lib/format/superblock.ml: Bytes Checksum Codec Format Int64 Layout Printf Rae_util Result
