lib/format/inode.ml: Array Bytes Checksum Codec Format Int32 Int64 Layout List Printf Rae_util Rae_vfs String
